# Convenience targets for the ccdem reproduction.

GO ?= go

.PHONY: all build test test-short race cover bench perfgate perfgate-update fuzz chaos validate campaign figures fleet fleet-scale svc svc-chaos telemetry obs clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...
	$(GO) run ./cmd/ccdem-fleet -devices 12 -duration 5 -faults 1 -hardened -workers 4 > /dev/null

# Short fuzz pass over every parser boundary (decoders must never panic
# on hostile input; raise FUZZTIME for a real session) and the tile/naive
# differential fuzzers (the optimized pixel pipeline must stay
# byte-identical to its brute-force oracle).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzReadParams -fuzztime $(FUZZTIME) ./internal/app
	$(GO) test -fuzz FuzzReadScript -fuzztime $(FUZZTIME) ./internal/input
	$(GO) test -fuzz FuzzReadPPM -fuzztime $(FUZZTIME) ./internal/framebuffer
	$(GO) test -fuzz FuzzGridCompare -fuzztime $(FUZZTIME) ./internal/framebuffer
	$(GO) test -fuzz FuzzAccumulatorCodec -fuzztime $(FUZZTIME) ./internal/fleet
	$(GO) test -fuzz FuzzTileCompose -fuzztime $(FUZZTIME) ./internal/surface
	$(GO) test -fuzz FuzzTileCompare -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -fuzz FuzzPaletteCompose -fuzztime $(FUZZTIME) ./internal/surface
	$(GO) test -fuzz FuzzPaletteCompare -fuzztime $(FUZZTIME) ./internal/framebuffer

# Benchmark-regression gate over the pinned hot-path suite (see
# cmd/ccdem-bench): medians of repeated runs vs results/bench_baseline.json.
# Any allocs/op growth fails; ns/op beyond the threshold fails unless
# PERFGATE_FLAGS adds -warn-time (what CI uses on shared runners).
PERFGATE_FLAGS ?=
perfgate:
	$(GO) run ./cmd/ccdem-bench -count 5 -benchtime 200ms $(PERFGATE_FLAGS)

# Refresh the committed baseline on a quiet machine after an intentional
# performance change.
perfgate-update:
	$(GO) run ./cmd/ccdem-bench -count 5 -benchtime 300ms -update

# The chaos campaign: display quality under injected faults, hardened
# vs unhardened (see DESIGN.md §9).
chaos:
	$(GO) run ./cmd/ccdem -duration 60 -csv results/chaos_60s.csv chaos \
		| tee results/chaos_60s.txt

cover:
	$(GO) test -cover ./...

# One pass over every per-figure benchmark (fast; raise -benchtime for
# statistically meaningful timings).
bench:
	$(GO) test -run XXX -bench . -benchmem -benchtime 1x ./...

# Qualitative shape checks against the paper; exits non-zero on failure.
validate:
	$(GO) run ./cmd/ccdem -duration 60 validate

# The full reference campaign with exported artifacts (≈5 minutes).
campaign:
	mkdir -p results/figures
	$(GO) run ./cmd/ccdem -duration 180 -svg results/figures \
		-csv results/campaign_180s.csv all | tee results/full_campaign_180s.txt

figures:
	mkdir -p results/figures
	$(GO) run ./cmd/ccdem -duration 60 -svg results/figures fig2
	$(GO) run ./cmd/ccdem -duration 60 -svg results/figures fig7

# Small-cohort fleet smoke run (see cmd/ccdem-fleet -help for real studies).
fleet:
	$(GO) run ./cmd/ccdem-fleet -devices 24 -duration 10 -progress

# Fleet-scale smoke (DESIGN.md §11): a 100k-device streamed campaign —
# O(workers) memory, device reuse, batched dispatch — timed on the normal
# build, then the streamed path again under the race detector on a small
# cohort. Short sessions keep the 100k run to minutes; EXPERIMENTS.md has
# the measured 1M-device numbers.
FLEET_SCALE_DEVICES ?= 100000
fleet-scale:
	time $(GO) run ./cmd/ccdem-fleet -devices $(FLEET_SCALE_DEVICES) \
		-duration 1 -stream -batch 64 -progress > /dev/null
	$(GO) test -race -run 'TestStreamedCohort|TestPoolBatch' ./internal/fleet
	$(GO) run -race ./cmd/ccdem-fleet -devices 200 -duration 2 \
		-stream -batch 16 -workers 8 > /dev/null

# Campaign service smoke (DESIGN.md §12): boot ccdem-svc, run a 2-way
# subprocess-sharded campaign over the HTTP API, and diff its merged
# result against the direct single-process streaming run — the two must
# be byte-identical. Needs curl and jq.
svc:
	./scripts/svc_smoke.sh

# Fault-tolerance smoke (DESIGN.md §14): kill a shard worker mid-shard
# and watch the retry finish the campaign, then kill -9 the daemon
# mid-campaign and watch a restart over the same -state-dir resume it —
# both byte-identical to the direct run. Needs curl and jq.
svc-chaos:
	./scripts/svc_chaos.sh

# Telemetry smoke (DESIGN.md §13): boot the daemon with JSON logs and the
# pprof listener, run a sharded campaign, and validate every telemetry
# surface — /metrics against the strict Prometheus parser, the campaign
# trace for spans from the daemon plus one process per shard worker,
# structured log correlation, and pprof reachability. Needs curl and jq.
telemetry:
	./scripts/telemetry_smoke.sh

# Sample observability artifacts from a short fleet run: a Perfetto-loadable
# trace (open at https://ui.perfetto.dev) and the merged metrics dump.
obs:
	mkdir -p results/obs
	$(GO) run ./cmd/ccdem-fleet -devices 24 -duration 10 -seed 42 \
		-trace-out results/obs/fleet-trace.json -metrics \
		> results/obs/fleet-aggregate.json 2> results/obs/fleet-metrics.txt
	@echo "wrote results/obs/fleet-trace.json (Perfetto), fleet-metrics.txt, fleet-aggregate.json"

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
