// Ablation benchmarks for the design choices DESIGN.md calls out: the
// section rule vs the paper's discarded naive controller, the governor's
// control period, the touch-boost hold window, the comparison-grid size,
// and the panel technology (LCD vs OLED). Each reports the power/quality
// trade-off it moves.
package ccdem_test

import (
	"fmt"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/input"
	"ccdem/internal/power"
	"ccdem/internal/sim"
)

// ablationRun measures one configuration on one app with a fixed script.
func ablationRun(b *testing.B, cfg ccdem.Config, appName string, dur sim.Time) ccdem.Stats {
	b.Helper()
	p, ok := app.ByName(appName)
	if !ok {
		b.Fatalf("app %q not in catalog", appName)
	}
	dev, err := ccdem.NewDevice(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dev.InstallApp(p); err != nil {
		b.Fatal(err)
	}
	mk, err := input.NewMonkey(99, input.DefaultMonkeyConfig())
	if err != nil {
		b.Fatal(err)
	}
	dev.PlayScript(mk.Script(dur, 720, 1280))
	dev.Run(dur)
	return dev.Stats()
}

// BenchmarkAblationNaiveControl contrasts the paper's section rule with
// its discarded headroom-less first design on an interactive game: the
// naive controller saves more power but collapses display quality because
// it can never measure content above its current refresh rate.
func BenchmarkAblationNaiveControl(b *testing.B) {
	dur := 30 * sim.Second
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, ccdem.Config{Governor: ccdem.GovernorOff}, "Jelly Splash", dur)
		naive := ablationRun(b, ccdem.Config{Governor: ccdem.GovernorNaive}, "Jelly Splash", dur)
		sect := ablationRun(b, ccdem.Config{Governor: ccdem.GovernorSection}, "Jelly Splash", dur)
		if i == b.N-1 {
			b.ReportMetric(base.MeanPowerMW-naive.MeanPowerMW, "naive-saved-mW")
			b.ReportMetric(100*naive.DisplayQuality, "naive-quality-%")
			b.ReportMetric(base.MeanPowerMW-sect.MeanPowerMW, "section-saved-mW")
			b.ReportMetric(100*sect.DisplayQuality, "section-quality-%")
		}
	}
}

// BenchmarkAblationControlPeriod sweeps the governor's control period:
// shorter periods track content bursts faster (higher quality) at the cost
// of less time spent at low refresh rates.
func BenchmarkAblationControlPeriod(b *testing.B) {
	for _, period := range []sim.Time{125 * sim.Millisecond, 250 * sim.Millisecond,
		500 * sim.Millisecond, sim.Second, 2 * sim.Second} {
		period := period
		b.Run(period.String(), func(b *testing.B) {
			var st ccdem.Stats
			for i := 0; i < b.N; i++ {
				st = ablationRun(b, ccdem.Config{
					Governor:      ccdem.GovernorSection,
					ControlPeriod: period,
				}, "Facebook", 30*sim.Second)
			}
			b.ReportMetric(st.MeanPowerMW, "mW")
			b.ReportMetric(100*st.DisplayQuality, "quality-%")
		})
	}
}

// BenchmarkAblationBoostHold sweeps the touch-boost hold window: longer
// holds protect fling tails (quality) but spend more time at 60 Hz.
func BenchmarkAblationBoostHold(b *testing.B) {
	for _, hold := range []sim.Time{100 * sim.Millisecond, 300 * sim.Millisecond,
		600 * sim.Millisecond, 1200 * sim.Millisecond} {
		hold := hold
		b.Run(hold.String(), func(b *testing.B) {
			var st ccdem.Stats
			for i := 0; i < b.N; i++ {
				st = ablationRun(b, ccdem.Config{
					Governor:  ccdem.GovernorSectionBoost,
					BoostHold: hold,
				}, "Facebook", 30*sim.Second)
			}
			b.ReportMetric(st.MeanPowerMW, "mW")
			b.ReportMetric(100*st.DisplayQuality, "quality-%")
		})
	}
}

// BenchmarkAblationGridSize sweeps the governor's comparison grid: sparser
// grids cost less CPU but misclassify small changes (the Figure 6
// trade-off, here measured end-to-end through governor behaviour).
func BenchmarkAblationGridSize(b *testing.B) {
	for _, samples := range []int{2304, 9216, 36864, 147456} {
		samples := samples
		b.Run(fmt.Sprintf("%dpx", samples), func(b *testing.B) {
			var st ccdem.Stats
			for i := 0; i < b.N; i++ {
				st = ablationRun(b, ccdem.Config{
					Governor:     ccdem.GovernorSection,
					MeterSamples: samples,
				}, "PokoPang", 30*sim.Second)
			}
			b.ReportMetric(st.MeanPowerMW, "mW")
			b.ReportMetric(100*st.DisplayQuality, "quality-%")
			b.ReportMetric(st.Breakdown[power.MeterOver]/st.Duration.Seconds(), "meter-mW")
		})
	}
}

// BenchmarkAblationOLEDPanel swaps the LCD for an OLED panel model (the
// related-work panel class): refresh-rate savings persist, and total power
// now tracks content luminance as well.
func BenchmarkAblationOLEDPanel(b *testing.B) {
	oled := power.DefaultParams()
	oled.Panel = power.OLEDPanel{BaseMW: 50, PerHzMW: 3.0, MaxEmissionMW: 700}
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, ccdem.Config{Governor: ccdem.GovernorOff, PowerParams: &oled},
			"Jelly Splash", 30*sim.Second)
		gov := ablationRun(b, ccdem.Config{Governor: ccdem.GovernorSectionBoost, PowerParams: &oled},
			"Jelly Splash", 30*sim.Second)
		if i == b.N-1 {
			b.ReportMetric(base.MeanPowerMW, "oled-baseline-mW")
			b.ReportMetric(base.MeanPowerMW-gov.MeanPowerMW, "oled-saved-mW")
			b.ReportMetric(100*gov.DisplayQuality, "oled-quality-%")
		}
	}
}
