// Whole-device allocation contract: the steady-state frame pipeline —
// app render, V-Sync composition, grid metering, governor control, power
// integration — runs allocation-free once warmed up. This is the hard
// gate behind BenchmarkDeviceSteadyState's 0 allocs/op; perfgate keeps it
// from regressing on CI, this test keeps it from regressing anywhere.
package ccdem_test

import (
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/sim"
)

func TestDeviceSteadyStateZeroAlloc(t *testing.T) {
	p, ok := app.ByName("Jelly Splash")
	if !ok {
		t.Fatal("Jelly Splash not in catalog")
	}
	dev, err := ccdem.NewDevice(ccdem.Config{
		Governor:            ccdem.GovernorSectionBoost,
		TraceInterval:       -1, // trace and power recorders append to
		PowerSampleInterval: -1, // series; lean mode disables both
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.InstallApp(p); err != nil {
		t.Fatal(err)
	}
	// Warm-up: grow the event free list, rate-counter rings and scratch
	// buffers to their steady-state sizes.
	dev.Run(3 * sim.Second)
	if allocs := testing.AllocsPerRun(5, func() { dev.Run(sim.Second) }); allocs != 0 {
		t.Errorf("steady-state device run allocates %.1f per virtual second, want 0", allocs)
	}
	if frames, _ := dev.Meter().Totals(); frames == 0 {
		t.Fatal("device simulated no frames")
	}
}

// TestLeanModeStatsFallback: with the power sampler disabled, Stats must
// still report a meaningful mean power via the model's lifetime average,
// and Traces must degrade gracefully (empty, not nil panics).
func TestLeanModeStatsFallback(t *testing.T) {
	p, _ := app.ByName("Facebook")
	dev, err := ccdem.NewDevice(ccdem.Config{
		Governor:            ccdem.GovernorSectionBoost,
		TraceInterval:       -1,
		PowerSampleInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.InstallApp(p); err != nil {
		t.Fatal(err)
	}
	dev.Run(5 * sim.Second)
	s := dev.Stats()
	if s.MeanPowerMW <= 0 {
		t.Errorf("lean-mode MeanPowerMW = %v, want > 0 (model fallback)", s.MeanPowerMW)
	}
	tr := dev.Traces()
	if tr.Power != nil {
		t.Errorf("lean mode recorded %d power samples, want none", len(tr.Power))
	}
	if tr.Content.Len() != 0 {
		t.Errorf("lean mode recorded %d trace points, want none", tr.Content.Len())
	}
}
