// Benchmarks regenerating every measured figure and table of the paper's
// evaluation. Each benchmark executes the corresponding experiment on the
// simulated device (virtual durations are shortened relative to the
// paper's ≈3-minute runs; use cmd/ccdem for full-length campaigns) and
// reports the experiment's headline quantities as benchmark metrics, so
// `go test -bench=.` reproduces the paper's result shapes in one sweep.
package ccdem_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"runtime"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/experiments"
	"ccdem/internal/fleet"
	"ccdem/internal/input"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

// benchOpts shortens runs to keep the full bench sweep around a minute.
func benchOpts() experiments.Options {
	return experiments.Options{Duration: 20 * sim.Second, Seed: 1}
}

// BenchmarkFig2FrameRateTraces regenerates Figure 2: baseline frame-rate
// traces of Facebook vs Jelly Splash against the fixed 60 Hz refresh.
func BenchmarkFig2FrameRateTraces(b *testing.B) {
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, tr := range r.Traces {
		switch tr.App {
		case "Facebook":
			b.ReportMetric(tr.FrameRate.Mean(), "facebook-fps")
		case "Jelly Splash":
			b.ReportMetric(tr.FrameRate.Mean(), "jellysplash-fps")
		}
	}
}

// BenchmarkFig3Redundancy regenerates Figure 3: meaningful vs redundant
// frame rates across the 30-app catalog on the unmanaged baseline.
func BenchmarkFig3Redundancy(b *testing.B) {
	var r *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.ShareAboveRedundant(app.Game, 20), "games-%>20redundant")
	var redundant []float64
	for _, row := range r.Rows {
		redundant = append(redundant, row.RedundantFPS)
	}
	b.ReportMetric(trace.Mean(redundant), "mean-redundant-fps")
}

// BenchmarkFig6MeterAccuracy regenerates Figure 6: metering error and
// device-scale comparison cost per grid size on the dot wallpaper.
func BenchmarkFig6MeterAccuracy(b *testing.B) {
	var r *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, g := range r.Grids {
		b.ReportMetric(g.ErrorRate, "err%-"+g.Label)
	}
}

// BenchmarkFig7ControlTraces regenerates Figure 7: content/refresh traces
// under section control alone and with touch boosting.
func BenchmarkFig7ControlTraces(b *testing.B) {
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, tr := range r.Traces {
		if tr.App == "Facebook" {
			switch tr.Mode {
			case ccdem.GovernorSection:
				b.ReportMetric(tr.DroppedFPS, "fb-section-dropped-fps")
			case ccdem.GovernorSectionBoost:
				b.ReportMetric(tr.DroppedFPS, "fb-boost-dropped-fps")
			}
		}
	}
}

// BenchmarkFig8PowerTraces regenerates Figure 8: power saved over time for
// Facebook and Jelly Splash against the baseline on identical scripts.
func BenchmarkFig8PowerTraces(b *testing.B) {
	var r *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, tr := range r.Traces {
		if tr.Mode != ccdem.GovernorSection {
			continue
		}
		switch tr.App {
		case "Facebook":
			b.ReportMetric(tr.MeanSavedMW, "fb-saved-mW")
		case "Jelly Splash":
			b.ReportMetric(tr.MeanSavedMW, "js-saved-mW")
		}
	}
}

// The 30-app campaign behind Figures 9–11 and Table 1 is expensive; it
// runs once and is shared by the four benchmarks that view it. The first
// benchmark to run pays the campaign cost inside its timed region.
var (
	suiteOnce sync.Once
	suiteRes  *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	for i := 0; i < b.N; i++ {
		suiteOnce.Do(func() {
			suiteRes, suiteErr = experiments.RunSuite(benchOpts())
		})
	}
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteRes
}

// BenchmarkFig9PowerSave regenerates Figure 9: per-app power saving.
func BenchmarkFig9PowerSave(b *testing.B) {
	s := benchSuite(b)
	var general, games []float64
	for _, r := range s.Category(app.General) {
		general = append(general, r.SavedMW(ccdem.GovernorSection))
	}
	for _, r := range s.Category(app.Game) {
		games = append(games, r.SavedMW(ccdem.GovernorSection))
	}
	b.ReportMetric(trace.Mean(general), "general-saved-mW")
	b.ReportMetric(trace.Mean(games), "games-saved-mW")
}

// BenchmarkFig10ContentRate regenerates Figure 10: estimated vs actual
// content rates per app.
func BenchmarkFig10ContentRate(b *testing.B) {
	s := benchSuite(b)
	var sectDrop, boostDrop []float64
	for _, r := range s.Runs {
		sectDrop = append(sectDrop, r.Section.DroppedFPS)
		boostDrop = append(boostDrop, r.Boost.DroppedFPS)
	}
	b.ReportMetric(trace.Percentile(sectDrop, 80), "section-dropped-p80-fps")
	b.ReportMetric(trace.Percentile(boostDrop, 80), "boost-dropped-p80-fps")
}

// BenchmarkFig11DisplayQuality regenerates Figure 11: display quality per
// app.
func BenchmarkFig11DisplayQuality(b *testing.B) {
	s := benchSuite(b)
	var sect, boost []float64
	for _, r := range s.Runs {
		sect = append(sect, 100*r.Section.DisplayQuality)
		boost = append(boost, 100*r.Boost.DisplayQuality)
	}
	b.ReportMetric(trace.Percentile(sect, 20), "section-quality-p20-%")
	b.ReportMetric(trace.Percentile(boost, 20), "boost-quality-p20-%")
}

// BenchmarkTable1Summary regenerates Table 1: category × method summary of
// saved power and display quality.
func BenchmarkTable1Summary(b *testing.B) {
	s := benchSuite(b)
	for _, row := range s.Table1() {
		label := row.Cat.String()
		if row.Mode == ccdem.GovernorSectionBoost {
			label += "+boost"
		}
		b.ReportMetric(row.SavedPct, label+"-saved-%")
		b.ReportMetric(row.QualityPct, label+"-quality-%")
	}
}

// BenchmarkCompareE3 runs the extension experiment pitting the paper's
// refresh-rate control against E3-style frame-rate adaptation (related
// work [16]) on two representative apps; the gap is the
// refresh-proportional panel power only refresh control can reclaim.
func BenchmarkCompareE3(b *testing.B) {
	p, _ := app.ByName("Jelly Splash")
	mk, err := input.NewMonkey(1, input.DefaultMonkeyConfig())
	if err != nil {
		b.Fatal(err)
	}
	sc := mk.Script(20*sim.Second, 720, 1280)
	run := func(mode ccdem.GovernorMode) ccdem.Stats {
		dev, err := ccdem.NewDevice(ccdem.Config{Governor: mode})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dev.InstallApp(p); err != nil {
			b.Fatal(err)
		}
		dev.PlayScript(sc)
		dev.Run(20 * sim.Second)
		return dev.Stats()
	}
	var base, e3, full ccdem.Stats
	for i := 0; i < b.N; i++ {
		base = run(ccdem.GovernorOff)
		e3 = run(ccdem.GovernorE3)
		full = run(ccdem.GovernorSectionBoost)
	}
	b.ReportMetric(base.MeanPowerMW-e3.MeanPowerMW, "e3-saved-mW")
	b.ReportMetric(base.MeanPowerMW-full.MeanPowerMW, "ccdem-saved-mW")
	b.ReportMetric(100*e3.DisplayQuality, "e3-quality-%")
	b.ReportMetric(100*full.DisplayQuality, "ccdem-quality-%")
}

// BenchmarkFleetScaling measures the fleet engine's multi-core speedup: a
// fixed 30-device cohort at 1/2/4/8 workers. Results are bit-identical at
// every width (per-device seeding is sharded from the fleet seed), so the
// only thing that changes is wall-clock time; on a single-core host all
// widths degenerate to the sequential time.
func BenchmarkFleetScaling(b *testing.B) {
	cohort := fleet.Cohort{
		Devices: 30,
		Seed:    1,
		Session: 10 * sim.Second,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var agg fleet.Aggregate
			for i := 0; i < b.N; i++ {
				r, err := cohort.Run(context.Background(), fleet.Pool{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				agg = r.Aggregate
			}
			b.ReportMetric(agg.MeanSavedMW, "fleet-saved-mW")
			b.ReportMetric(agg.QualityPctMean, "fleet-quality-%")
			b.ReportMetric(float64(cohort.Devices)*cohort.Session.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "device-s/s")
		})
	}
}

// fleetBenchCohort is the light-interaction streamed cohort pinned by the
// fleet throughput and memory gates: sparse touches on one app keep each
// device's session cheap, so the measurement is dominated by per-device
// setup cost — exactly what device reuse, streaming aggregation and
// batched scheduling eliminate — rather than by frame simulation.
func fleetBenchCohort(devices int) fleet.Cohort {
	return fleet.Cohort{
		Devices: devices,
		Seed:    99,
		Session: 2 * sim.Second,
		Stream:  true,
		Profiles: []fleet.Profile{{
			Name: "idler", Weight: 1, TouchIntensity: 0.2,
			Apps: []fleet.AppShare{{Name: "Facebook", Weight: 1}},
		}},
	}
}

// BenchmarkFleetThroughput gates cohort execution speed: devices fully
// simulated (baseline + managed segments) per wall second on the streamed,
// device-reusing, batch-scheduled path.
func BenchmarkFleetThroughput(b *testing.B) {
	cohort := fleetBenchCohort(32)
	pool := fleet.Pool{Workers: 8, Batch: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cohort.Run(context.Background(), pool); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cohort.Devices)*float64(b.N)/b.Elapsed().Seconds(), "devices/s")
}

// BenchmarkCohortMemory gates the streamed campaign's memory footprint:
// B/op must stay dominated by the per-worker recycled devices and the
// per-device scripts, not per-device result retention or reconstruction.
// The per-device byte metric makes the O(workers) claim visible — it must
// not grow with the cohort (compare devices=64 vs devices=256). The sub-
// benchmark names use '=' rather than a trailing -N so the perfgate parser's
// GOMAXPROCS-suffix stripping cannot eat the device count.
func BenchmarkCohortMemory(b *testing.B) {
	for _, devices := range []int{64, 256} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			cohort := fleetBenchCohort(devices)
			pool := fleet.Pool{Workers: 2, Batch: 16}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cohort.Run(context.Background(), pool); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(b.N)/float64(devices), "B/device")
		})
	}
}

// BenchmarkObsOverhead quantifies the observability layer's cost on the
// same governed-device run, disabled (nil sinks — the default) vs enabled
// (recorder + metrics registry attached). The disabled variant is the
// overhead contract: it must match the plain simulation, since disabled
// instrumentation is a nil check per hook.
func BenchmarkObsOverhead(b *testing.B) {
	p, _ := app.ByName("Jelly Splash")
	mk, err := input.NewMonkey(1, input.DefaultMonkeyConfig())
	if err != nil {
		b.Fatal(err)
	}
	sc := mk.Script(10*sim.Second, 720, 1280)
	run := func(b *testing.B, rec *obs.Recorder, reg *obs.Registry) {
		dev, err := ccdem.NewDevice(ccdem.Config{
			Governor: ccdem.GovernorSectionBoost,
			Recorder: rec,
			Metrics:  reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dev.InstallApp(p); err != nil {
			b.Fatal(err)
		}
		dev.PlayScript(sc)
		dev.Run(10 * sim.Second)
		dev.FinishObs()
	}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, nil, nil)
		}
		b.ReportMetric(10*float64(b.N)/b.Elapsed().Seconds(), "virtual-s/s")
	})
	b.Run("enabled", func(b *testing.B) {
		var events uint64
		for i := 0; i < b.N; i++ {
			rec := obs.NewRecorder(0)
			run(b, rec, obs.NewRegistry())
			events = rec.Total()
		}
		b.ReportMetric(10*float64(b.N)/b.Elapsed().Seconds(), "virtual-s/s")
		b.ReportMetric(float64(events), "events/run")
	})
}

// BenchmarkDeviceSimulation measures raw simulation throughput: virtual
// seconds simulated per wall second for a full governed device running a
// 60 fps game.
func BenchmarkDeviceSimulation(b *testing.B) {
	p, _ := app.ByName("Jelly Splash")
	mk, err := input.NewMonkey(1, input.DefaultMonkeyConfig())
	if err != nil {
		b.Fatal(err)
	}
	sc := mk.Script(10*sim.Second, 720, 1280)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev, err := ccdem.NewDevice(ccdem.Config{Governor: ccdem.GovernorSectionBoost})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dev.InstallApp(p); err != nil {
			b.Fatal(err)
		}
		dev.PlayScript(sc)
		dev.Run(10 * sim.Second)
	}
	b.ReportMetric(10*float64(b.N)/b.Elapsed().Seconds(), "virtual-s/s")
}

// BenchmarkDeviceSteadyState measures the per-frame hot path with setup
// excluded: one governed device built outside the timed region, run in
// one-virtual-second increments. Trace and power sampling are disabled
// (negative intervals) so the loop exercises exactly the steady-state frame
// pipeline — render, compose, meter, govern — which must not allocate.
func BenchmarkDeviceSteadyState(b *testing.B) {
	benchDeviceSteadyState(b, false)
}

// BenchmarkDeviceSteadyStateNoPalette is the same device on the raw-tile
// oracle (palette compression and the app state memo off) — the
// comparison row that keeps the palette path's cost visible in the gate.
func BenchmarkDeviceSteadyStateNoPalette(b *testing.B) {
	benchDeviceSteadyState(b, true)
}

func benchDeviceSteadyState(b *testing.B, noPalette bool) {
	p, _ := app.ByName("Jelly Splash")
	dev, err := ccdem.NewDevice(ccdem.Config{
		Governor:            ccdem.GovernorSectionBoost,
		NoPalette:           noPalette,
		TraceInterval:       -1,
		PowerSampleInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dev.InstallApp(p); err != nil {
		b.Fatal(err)
	}
	dev.Run(2 * sim.Second) // warm up pools and ring buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Run(sim.Second)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "virtual-s/s")
}
