// Package ccdem is a full-system reproduction of "Content-centric Display
// Energy Management for Mobile Devices" (Kim, Jung, Cha — DAC 2014).
//
// The paper's scheme measures the content rate — the number of frames per
// second whose pixels genuinely change — by comparing a sparse grid of
// framebuffer samples against the previous frame (double buffering), and
// drives the panel's refresh rate from it through a section table with
// headroom, boosted to maximum on touch events. The result is display-path
// power reduction with negligible display-quality loss.
//
// Because the original runs on a kernel-modified Samsung Galaxy S3 LTE
// driven by Monkey scripts and measured with a Monsoon power monitor, this
// package ships the whole substrate as a deterministic simulation: an
// Android-style surface manager with V-Sync-gated composition, a panel
// with the S3's five refresh levels, a component power model with a
// Monsoon-style sampler, 30 application workload models, and a Monkey
// script generator. See DESIGN.md for the substitution rationale and
// EXPERIMENTS.md for paper-vs-measured results for every figure and table.
//
// The entry point is Device:
//
//	dev, err := ccdem.NewDevice(ccdem.Config{Governor: ccdem.GovernorSectionBoost})
//	...
//	params, _ := app.ByName("Jelly Splash")
//	model, err := dev.InstallApp(params)
//	dev.PlayScript(script)
//	dev.Run(60 * sim.Second)
//	stats := dev.Stats()
package ccdem

import (
	"fmt"

	"ccdem/internal/app"
	"ccdem/internal/core"
	"ccdem/internal/display"
	"ccdem/internal/fault"
	"ccdem/internal/framebuffer"
	"ccdem/internal/input"
	"ccdem/internal/obs"
	"ccdem/internal/power"
	"ccdem/internal/sim"
	"ccdem/internal/surface"
	"ccdem/internal/trace"
	"ccdem/internal/wallpaper"
)

// GovernorMode selects the refresh-rate management policy — the paper's
// three measured configurations.
type GovernorMode int

// Governor modes.
const (
	// GovernorOff is the Android baseline: fixed maximum refresh rate.
	GovernorOff GovernorMode = iota
	// GovernorSection enables section-based refresh control only.
	GovernorSection
	// GovernorSectionBoost enables section control plus touch boosting
	// (the paper's full system).
	GovernorSectionBoost
	// GovernorNaive is the paper's discarded first design (§3.2): refresh
	// set to the smallest level covering the measured content rate, with
	// no headroom. Kept as an ablation — it ratchets downward because
	// V-Sync hides content above the current refresh rate.
	GovernorNaive
	// GovernorE3 is the related-work comparison baseline (Han et al.,
	// SenSys 2013 — the paper's reference [16]): interaction-aware
	// frame-rate adaptation. The panel stays at maximum refresh; the
	// latch pace is throttled toward the content rate instead. It saves
	// render energy on redundant frames but none of the
	// refresh-proportional panel power.
	GovernorE3
	// GovernorIdleTimeout is the content-blind adaptive-refresh policy of
	// later production phones: maximum rate while touching (plus a
	// timeout), minimum rate when idle, no framebuffer metering. Kept as
	// a comparison showing why content awareness matters for autonomous
	// content (video, games).
	GovernorIdleTimeout
)

// String implements fmt.Stringer.
func (g GovernorMode) String() string {
	switch g {
	case GovernorOff:
		return "baseline"
	case GovernorSection:
		return "section"
	case GovernorSectionBoost:
		return "section+boost"
	case GovernorNaive:
		return "naive"
	case GovernorE3:
		return "e3-framerate"
	case GovernorIdleTimeout:
		return "idle-timeout"
	default:
		return fmt.Sprintf("mode(%d)", int(g))
	}
}

// Config assembles a simulated device. The zero value, after defaulting,
// is the paper's experimental platform: a 720×1280 Galaxy S3 LTE panel
// with refresh levels {20,24,30,40,60} Hz at 50% brightness, metering on
// the 9K grid with a 1 s window, 500 ms control period and 300 ms boost hold.
type Config struct {
	Width, Height int   // screen size; default 720×1280
	RefreshLevels []int // supported rates; default display.GalaxyS3Levels
	// FastUpswitch marks LTPO-class panels that can raise the refresh
	// rate mid-interval; the paper's S3 cannot (default false).
	FastUpswitch bool

	Brightness float64 // backlight 0..1; 0 defaults to the paper's 50%

	MeterSamples  int      // comparison grid size; default 9216 (9K)
	MeterWindow   sim.Time // rate window; default 1 s
	ControlPeriod sim.Time // governor period; default 500 ms
	BoostHold     sim.Time // boost hold after last touch; default 300 ms

	// MeterEarlyExit stops grid comparison at the first differing sample
	// (extension; classification unchanged, metering cost reduced).
	MeterEarlyExit bool
	// NaivePixels forces the pre-tile brute-force pixel pipeline:
	// full-rect composition blits and full-lattice grid comparison on
	// every frame. The default (false) runs the tile-tracked pipeline —
	// damage-only composition with per-tile content signatures, direct
	// scanout of a sole full-screen surface, and tile-delta grid
	// comparison — which produces bit-identical framebuffer contents,
	// meter verdicts, decision traces and statistics. The naive path is
	// kept as the differential-testing oracle, mirroring the lean-mode
	// pattern of the negative trace/sample intervals.
	NaivePixels bool
	// NoPalette disables the palette-compressed tile representation and
	// the app state memo built on it while keeping the rest of the tile
	// pipeline (damage-only composition, signatures, tile-delta
	// comparison). The default (false, palettes on) stores tiles of at
	// most 16 colors as 4-bit index planes, which shrinks the bytes every
	// blit, hash and compare touches; decisions, traces and statistics
	// are bit-identical either way, and this raw-tile path is the
	// differential-testing oracle for the palette layer. Implied by
	// NaivePixels (the naive pipeline has no tiles to compress).
	NoPalette bool
	// DownHysteresis requires this many consecutive down indications
	// before the governor lowers the rate (extension; 0 = paper's
	// behaviour).
	DownHysteresis int

	Governor GovernorMode

	PowerParams *power.Params // nil defaults to power.DefaultParams()
	// PowerSampleInterval is the Monsoon-style sampling period; 0 defaults
	// to 100 ms. A negative value disables the sampler entirely — Stats
	// then reports the model's lifetime mean instead of a sample mean, and
	// Traces carries no power samples. Benchmarks use this to measure the
	// steady-state frame path without recorder appends.
	PowerSampleInterval sim.Time
	// TraceInterval is the rate/refresh trace sampling period; 0 defaults
	// to 250 ms. A negative value disables trace recording (Traces series
	// stay empty), the benchmark-lean counterpart to PowerSampleInterval.
	TraceInterval sim.Time

	// Recorder, if non-nil, receives the device's decision events (frame
	// latches, grid compares, section transitions, touch boosts). Nil —
	// the default — disables event recording entirely: no hooks beyond a
	// nil check are installed and the simulation is byte-identical.
	Recorder *obs.Recorder
	// Metrics, if non-nil, receives the device's counters, gauges and
	// histograms. Live hooks feed the compare-cost and decision histograms
	// and refresh-level residency during the run; FinishObs snapshots the
	// lifetime totals at the end. Nil disables metrics entirely.
	Metrics *obs.Registry

	// Faults, if non-nil, injects deterministic faults into the device's
	// panel switching, content metering, touch delivery and app pacing
	// (see internal/fault). Nil — the default — installs no hooks.
	Faults *fault.Injector
	// Hardening, if non-nil, enables the governor's fail-safe hardening
	// (verified switches with retry, anomaly watchdog pinning maximum
	// refresh). Only meaningful for the core.Governor modes (section,
	// section+boost, naive).
	Hardening *core.HardeningConfig
}

func (c *Config) applyDefaults() {
	if c.Width == 0 {
		c.Width = 720
	}
	if c.Height == 0 {
		c.Height = 1280
	}
	if c.RefreshLevels == nil {
		c.RefreshLevels = display.GalaxyS3Levels
	}
	if c.Brightness == 0 {
		c.Brightness = 0.5
	}
	if c.MeterSamples == 0 {
		c.MeterSamples = 9216
	}
	if c.MeterWindow == 0 {
		c.MeterWindow = sim.Second
	}
	if c.ControlPeriod == 0 {
		c.ControlPeriod = 500 * sim.Millisecond
	}
	if c.BoostHold == 0 {
		c.BoostHold = 300 * sim.Millisecond
	}
	if c.PowerParams == nil {
		p := power.DefaultParams()
		c.PowerParams = &p
	}
	if c.PowerSampleInterval == 0 {
		c.PowerSampleInterval = 100 * sim.Millisecond
	}
	if c.TraceInterval == 0 {
		c.TraceInterval = 250 * sim.Millisecond
	}
	// Negative intervals mean "disabled" and pass through unchanged.
}

// Device is a fully assembled simulated phone: panel, surface manager,
// power model, optional governor, and the workloads installed on it.
type Device struct {
	cfg Config

	eng      *sim.Engine
	panel    *display.Panel
	mgr      *surface.Manager
	model    *power.Model
	pwrMeter *power.Meter
	meter    *core.Meter
	gov      *core.Governor
	limiter  *core.FrameLimiter
	idleGov  *core.IdleGovernor
	replayer *input.Replayer

	apps       []*app.Model
	wallpapers []*wallpaper.Wallpaper

	started   bool
	recording bool
	frameLog  []core.FrameRecord

	// displayedContent counts latched frames that visibly changed the
	// screen (DirtyPixels > 0) — the meter-independent ground truth
	// behind Stats.TrueQuality.
	displayedContent uint64

	obsDone     bool
	obsLastRate int      // rate whose residency interval is open
	obsRateT    sim.Time // start of that interval

	// Recorded traces (sampled every TraceInterval).
	contentTrace  *trace.Series
	frameTrace    *trace.Series
	refreshTrace  *trace.Series
	intendedTrace *trace.Series

	oled bool
	// Per-frame OLED luminance scratch (built once when the panel is OLED).
	lumaGrid framebuffer.Grid
	lumaBuf  []framebuffer.Color

	// grid is the meter's comparison lattice, cached so Reset can reuse it
	// when the screen and sample count are unchanged.
	grid framebuffer.Grid
}

// NewDevice assembles a device from cfg (defaults applied).
func NewDevice(cfg Config) (*Device, error) {
	d := &Device{}
	if err := d.init(cfg, false); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset reinitializes the device in place for a new run under cfg, as if
// freshly constructed by NewDevice, while reusing every large allocation:
// the engine's event pool, the framebuffer, detached surface buffers, the
// meter's double-buffered lattice and rate-counter rings, the comparison
// grid and trace/sample storage (when dimensions, sample counts and
// windows are unchanged — the steady-state fleet path). This is what lets
// a cohort run one device per worker across millions of tasks with a
// per-task allocation cost that approaches the input script alone.
//
// Pixel buffers are deliberately NOT cleared. A reset device is
// bit-identical to a fresh one for clients that fully paint their surface
// before the first frame — every app and wallpaper in the catalog does
// (their initial paint fills the whole buffer) — because the first latch
// composes the surface's full bounds over the framebuffer and the meter's
// comparison history is discarded. A hypothetical client that composes
// pixels it never painted would see prior-run content instead of zeros.
//
// All objects previously obtained from the device (apps, surfaces,
// governor, tickers, handles) are invalidated. On error the device is in
// an unspecified state and must not be reused.
func (d *Device) Reset(cfg Config) error { return d.init(cfg, true) }

// init builds (reuse=false) or recycles (reuse=true) the device's full
// object graph from cfg.
func (d *Device) init(cfg Config, reuse bool) error {
	cfg.applyDefaults()
	if cfg.Brightness < 0 || cfg.Brightness > 1 {
		return fmt.Errorf("ccdem: brightness %v out of [0,1]", cfg.Brightness)
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return fmt.Errorf("ccdem: invalid screen %dx%d", cfg.Width, cfg.Height)
	}
	// d.cfg still holds the previous run's config; these decide which
	// dimension-keyed allocations survive the reset.
	sameScreen := reuse && d.cfg.Width == cfg.Width && d.cfg.Height == cfg.Height
	sameGrid := sameScreen && d.cfg.MeterSamples == cfg.MeterSamples

	if reuse {
		d.eng.Reset()
	} else {
		d.eng = sim.NewEngine()
	}
	panelCfg := display.Config{
		Levels:       cfg.RefreshLevels,
		FastUpswitch: cfg.FastUpswitch,
	}
	if reuse {
		if err := d.panel.Reset(panelCfg); err != nil {
			return err
		}
	} else {
		panel, err := display.NewPanel(d.eng, panelCfg)
		if err != nil {
			return err
		}
		d.panel = panel
	}
	if sameScreen {
		d.mgr.Reset()
	} else {
		d.mgr = surface.NewManager(d.eng, cfg.Width, cfg.Height)
	}
	if cfg.NaivePixels {
		d.mgr.SetComposeMode(surface.ComposeNaive)
	} else {
		d.mgr.SetComposeMode(surface.ComposeTiles)
	}
	d.mgr.SetPalettes(!cfg.NaivePixels && !cfg.NoPalette)
	if reuse {
		if err := d.model.Reset(*cfg.PowerParams, d.panel.Rate(), cfg.Brightness); err != nil {
			return err
		}
	} else {
		model, err := power.NewModel(d.eng, *cfg.PowerParams, d.panel.Rate(), cfg.Brightness)
		if err != nil {
			return err
		}
		d.model = model
	}
	if cfg.PowerSampleInterval > 0 {
		if reuse && d.pwrMeter != nil {
			if err := d.pwrMeter.Reset(cfg.PowerSampleInterval); err != nil {
				return err
			}
		} else {
			pwrMeter, err := power.NewMeter(d.eng, d.model, cfg.PowerSampleInterval)
			if err != nil {
				return err
			}
			d.pwrMeter = pwrMeter
		}
	} else {
		d.pwrMeter = nil
	}
	// In the baseline configuration the meter still observes frames so the
	// reported statistics are comparable, but — like the paper's offline
	// §2.2 analysis — it charges no energy: the unmodified system runs no
	// metering.
	var onCompare func(sim.Time)
	if cfg.Governor != GovernorOff {
		onCompare = d.model.MeterCompare
	}
	if h := cfg.Metrics.Histogram("compare_cost_us", obs.CompareCostBucketsUS); h != nil {
		inner := onCompare
		onCompare = func(d sim.Time) {
			h.Observe(float64(d))
			if inner != nil {
				inner(d)
			}
		}
	}
	if !sameGrid {
		d.grid = framebuffer.GridForSamples(cfg.Width, cfg.Height, cfg.MeterSamples)
	}
	meterCfg := core.MeterConfig{
		Grid:      d.grid,
		Window:    cfg.MeterWindow,
		Cost:      power.DefaultCompareCost(),
		OnCompare: onCompare,
		EarlyExit: cfg.MeterEarlyExit,
		Recorder:  cfg.Recorder,
		Tiles:     !cfg.NaivePixels,
	}
	if cfg.Faults != nil {
		meterCfg.Fault = cfg.Faults.MeterHook
	}
	if reuse {
		if err := d.meter.Reset(meterCfg); err != nil {
			return err
		}
	} else {
		meter, err := core.NewMeter(meterCfg)
		if err != nil {
			return err
		}
		d.meter = meter
	}
	if reuse {
		d.replayer.Reset()
		d.contentTrace.Reset()
		d.frameTrace.Reset()
		d.refreshTrace.Reset()
		d.intendedTrace.Reset()
	} else {
		d.replayer = input.NewReplayer(d.eng)
		d.contentTrace = trace.NewSeries("content rate (fps)")
		d.frameTrace = trace.NewSeries("frame rate (fps)")
		d.refreshTrace = trace.NewSeries("refresh rate (Hz)")
		d.intendedTrace = trace.NewSeries("actual content rate (fps)")
	}

	d.cfg = cfg
	d.gov = nil
	d.limiter = nil
	d.idleGov = nil
	clear(d.apps)
	d.apps = d.apps[:0]
	clear(d.wallpapers)
	d.wallpapers = d.wallpapers[:0]
	d.started = false
	d.recording = false
	d.frameLog = d.frameLog[:0]
	d.displayedContent = 0
	d.obsDone = false
	d.obsLastRate = 0
	d.obsRateT = 0

	_, d.oled = cfg.PowerParams.Panel.(power.OLEDPanel)
	if d.oled && (d.lumaBuf == nil || !sameScreen) {
		// The OLED luminance estimate runs on every latched frame; build
		// its coarse lattice and scratch buffer once so the frame path
		// stays allocation-free.
		d.lumaGrid = framebuffer.GridForSamples(cfg.Width, cfg.Height, lumaSamples)
		d.lumaBuf = make([]framebuffer.Color, d.lumaGrid.Samples())
	}

	panel, mgr, model, meter := d.panel, d.mgr, d.model, d.meter

	// Observability wiring. Every hook below is gated on the corresponding
	// sink being non-nil, so a device without obs installs nothing extra
	// and simulates byte-identically.
	mgr.SetRecorder(cfg.Recorder)
	panel.SetRecorder(cfg.Recorder)
	d.replayer.SetRecorder(cfg.Recorder)
	if cfg.Faults != nil {
		cfg.Faults.Bind(cfg.Recorder)
		panel.SetSwitchFault(cfg.Faults.PanelSwitch)
		d.replayer.SetFault(cfg.Faults.TouchFault)
	}
	if cfg.Metrics != nil {
		d.obsLastRate = panel.Rate()
		panel.OnRateChange(func(t sim.Time, _, newHz int) {
			d.flushResidency(t)
			d.obsLastRate = newHz
		})
		touches := cfg.Metrics.Counter("touch_events_total")
		d.replayer.Subscribe(func(input.Event) { touches.Inc() })
	}

	// Compose → framebuffer observers: render-cost accounting and — when
	// the governor is on — the content meter. The baseline configuration
	// also meters (read-only) so frame/content statistics are comparable,
	// matching how the paper measures meaningful frame rates of unmanaged
	// apps in §2.2.
	panel.OnVSync(mgr.VSync)
	mgr.OnFrame(func(fi surface.FrameInfo) {
		model.FrameRendered(fi.RenderedPx)
		if fi.DirtyPixels > 0 {
			// Ground truth for TrueQuality: the frame visibly changed the
			// screen, whatever the (possibly faulted) meter concluded.
			d.displayedContent++
		}
		if d.gov != nil {
			d.gov.NoteFrame(fi.DirtyPixels)
		}
		content := d.meter.ObserveFrame(fi.T, mgr.Framebuffer())
		if d.recording {
			d.frameLog = append(d.frameLog, core.FrameRecord{
				T: fi.T, Content: content, RenderedPx: fi.RenderedPx,
			})
		}
		if d.oled {
			model.SetMeanLuminance(d.sampleLuma(mgr.Framebuffer()))
		}
	})
	panel.OnRateChange(func(_ sim.Time, _, newHz int) { model.SetRefreshRate(newHz) })

	switch cfg.Governor {
	case GovernorOff:
		// Android baseline: nothing to manage.
	case GovernorE3:
		limiter, err := core.NewFrameLimiter(d.eng, meter, core.FrameLimiterConfig{
			MaxFPS:          float64(panel.MaxRate()),
			ControlPeriod:   cfg.ControlPeriod,
			InteractionHold: cfg.BoostHold,
		})
		if err != nil {
			return err
		}
		d.limiter = limiter
		mgr.SetLatchGate(limiter.Gate)
		d.replayer.Subscribe(limiter.HandleTouch)
	case GovernorIdleTimeout:
		idleGov, err := core.NewIdleGovernor(d.eng, panel, core.IdleGovernorConfig{
			IdleTimeout: cfg.BoostHold * 5, // timeout scale: several boost holds
			CheckPeriod: cfg.ControlPeriod,
		})
		if err != nil {
			return err
		}
		d.idleGov = idleGov
		d.replayer.Subscribe(idleGov.HandleTouch)
	default:
		policy := core.PolicySection
		if cfg.Governor == GovernorNaive {
			policy = core.PolicyNaive
		}
		gov, err := core.NewGovernor(d.eng, panel, meter, core.GovernorConfig{
			Policy:         policy,
			ControlPeriod:  cfg.ControlPeriod,
			BoostEnabled:   cfg.Governor == GovernorSectionBoost,
			BoostHold:      cfg.BoostHold,
			DownHysteresis: cfg.DownHysteresis,
			Recorder:       cfg.Recorder,
			Hardening:      cfg.Hardening,
		})
		if err != nil {
			return err
		}
		if h := cfg.Metrics.Histogram("decision_content_rate_fps", obs.RateBucketsFPS); h != nil {
			gov.OnDecision(func(dec core.Decision) { h.Observe(dec.ContentRate) })
		}
		d.gov = gov
		d.replayer.Subscribe(gov.HandleTouch)
	}
	return nil
}

// flushResidency closes the open refresh-level residency interval at t,
// crediting its duration to the per-level counter.
func (d *Device) flushResidency(t sim.Time) {
	if span := t - d.obsRateT; span > 0 {
		d.cfg.Metrics.Counter(fmt.Sprintf("refresh_residency_us_hz%d", d.obsLastRate)).Add(uint64(span))
	}
	d.obsRateT = t
}

// lumaSamples is the size of the coarse luminance lattice: resampling the
// full buffer would duplicate the meter's work; ~1K points are plenty for
// the panel model.
const lumaSamples = 1024

// sampleLuma estimates mean screen luminance from the device's coarse
// lattice, cheap enough (and allocation-free) to run per frame.
func (d *Device) sampleLuma(fb *framebuffer.Buffer) float64 {
	d.lumaGrid.Sample(fb, d.lumaBuf)
	sum := 0.0
	for _, c := range d.lumaBuf {
		sum += c.Luminance()
	}
	return sum / float64(len(d.lumaBuf))
}

// Engine exposes the simulation engine (for scheduling custom events in
// examples and tests).
func (d *Device) Engine() *sim.Engine { return d.eng }

// Panel exposes the display panel.
func (d *Device) Panel() *display.Panel { return d.panel }

// SurfaceManager exposes the composition layer.
func (d *Device) SurfaceManager() *surface.Manager { return d.mgr }

// Meter exposes the content-rate meter.
func (d *Device) Meter() *core.Meter { return d.meter }

// Governor exposes the refresh governor (nil unless a refresh-control
// mode is active).
func (d *Device) Governor() *core.Governor { return d.gov }

// FrameLimiter exposes the E3-style frame limiter (nil unless GovernorE3).
func (d *Device) FrameLimiter() *core.FrameLimiter { return d.limiter }

// PowerModel exposes the energy model.
func (d *Device) PowerModel() *power.Model { return d.model }

// InstallApp instantiates an application workload on the device and wires
// it to the touch input path. The first installed app is the foreground
// app whose intended content rate defines display quality.
func (d *Device) InstallApp(p app.Params) (*app.Model, error) {
	m, err := app.New(p)
	if err != nil {
		return nil, err
	}
	m.Attach(d.eng, d.mgr)
	m.SetStateMemo(!d.cfg.NaivePixels && !d.cfg.NoPalette)
	if d.cfg.Faults != nil {
		m.SetStall(d.cfg.Faults.AppStalled)
	}
	d.replayer.Subscribe(m.HandleTouch)
	d.apps = append(d.apps, m)
	return m, nil
}

// InstallWallpaper instantiates a live-wallpaper workload (used by the
// metering-accuracy experiments).
func (d *Device) InstallWallpaper(cfg wallpaper.Config) (*wallpaper.Wallpaper, error) {
	wp, err := wallpaper.New(cfg)
	if err != nil {
		return nil, err
	}
	wp.Attach(d.eng, d.mgr)
	d.wallpapers = append(d.wallpapers, wp)
	return wp, nil
}

// PlayScript schedules an input script starting at the current virtual
// time.
func (d *Device) PlayScript(s input.Script) { d.replayer.Play(s) }

// RecordFrames toggles frame-log recording. A recorded baseline log feeds
// core.PredictSection, the offline what-if estimator.
func (d *Device) RecordFrames(on bool) { d.recording = on }

// FrameLog returns the recorded frame log (nil when recording was never
// enabled). The slice is owned by the device.
func (d *Device) FrameLog() []core.FrameRecord { return d.frameLog }

// Run starts the device on first call (panel, power sampling, governor,
// trace recording) and advances the simulation by duration. It may be
// called repeatedly to run in increments.
func (d *Device) Run(duration sim.Time) {
	if !d.started {
		d.started = true
		d.cfg.Recorder.DeviceStart(d.eng.Now())
		d.panel.Start()
		if d.pwrMeter != nil {
			d.pwrMeter.Start()
		}
		if d.gov != nil {
			d.gov.Start()
		}
		if d.limiter != nil {
			d.limiter.Start()
		}
		if d.idleGov != nil {
			d.idleGov.Start()
		}
		if d.cfg.TraceInterval > 0 {
			d.eng.Every(d.eng.Now()+d.cfg.TraceInterval, d.cfg.TraceInterval, d.recordTraces)
		}
	}
	d.eng.RunUntil(d.eng.Now() + duration)
}

func (d *Device) recordTraces() {
	now := d.eng.Now()
	d.contentTrace.Add(now, d.meter.ContentRate(now))
	d.frameTrace.Add(now, d.meter.FrameRate(now))
	d.refreshTrace.Add(now, float64(d.panel.Rate()))
	intended := 0.0
	for _, m := range d.apps {
		intended += m.IntendedRate(now)
	}
	d.intendedTrace.Add(now, intended)
}

// Traces bundles the recorded time series of a run.
type Traces struct {
	Content  *trace.Series  // measured content rate (fps)
	Frame    *trace.Series  // measured frame rate (fps)
	Refresh  *trace.Series  // refresh rate (Hz)
	Intended *trace.Series  // app ground-truth content rate (fps)
	Power    []power.Sample // Monsoon-style power samples
}

// Stats summarizes a run, mirroring the quantities the paper reports.
type Stats struct {
	Mode     GovernorMode
	Duration sim.Time

	MeanPowerMW float64
	PowerStdMW  float64
	EnergyMJ    float64
	Breakdown   map[power.Component]float64

	FrameRate     float64 // mean framebuffer updates per second
	ContentRate   float64 // mean measured content rate (fps)
	RedundantRate float64 // FrameRate − ContentRate
	IntendedRate  float64 // app ground-truth content rate (fps)

	// DisplayQuality is the paper's metric: estimated content rate over
	// actual content rate, in [0,1]. It is computed from the *meter's*
	// content count, so a faulted meter corrupts it.
	DisplayQuality float64
	// DroppedFPS is the mean rate of intended content updates that never
	// reached the screen.
	DroppedFPS float64

	// DisplayedRate is the rate of latched frames that visibly changed
	// the screen — ground truth independent of the meter.
	DisplayedRate float64
	// TrueQuality is DisplayedRate over IntendedRate, in [0,1]: the
	// fraction of intended content updates that actually reached the
	// screen. Under fault injection this is the honest quality metric;
	// without faults it tracks DisplayQuality.
	TrueQuality float64

	MeanRefreshHz   float64
	RefreshSwitches uint64
	BoostCount      uint64

	// Robustness accounting (zero without fault injection / hardening).
	FaultsInjected uint64   // faults the injector fired
	SwitchRetries  uint64   // panel switch requests re-issued
	FailSafeEnters uint64   // fail-safe episodes entered
	FailSafeExits  uint64   // fail-safe episodes cleanly recovered
	FailSafeTime   sim.Time // cumulative time pinned at max refresh
}

// Stats computes the run summary so far.
func (d *Device) Stats() Stats {
	now := d.eng.Now()
	dur := now.Seconds()
	s := Stats{
		Mode:     d.cfg.Governor,
		Duration: now,
	}
	if dur <= 0 {
		return s
	}
	if d.pwrMeter != nil {
		s.MeanPowerMW = d.pwrMeter.MeanMW()
		s.PowerStdMW = trace.Std(d.pwrMeter.Values())
	} else {
		// Sampler disabled: fall back to the model's lifetime mean.
		s.MeanPowerMW = d.model.MeanPowerMW()
	}
	s.EnergyMJ = d.model.EnergyMJ()
	s.Breakdown = d.model.Breakdown()

	frames, content := d.meter.Totals()
	s.FrameRate = float64(frames) / dur
	s.ContentRate = float64(content) / dur
	s.RedundantRate = s.FrameRate - s.ContentRate

	var intended uint64
	for _, m := range d.apps {
		intended += m.IntendedTotal()
	}
	for _, wp := range d.wallpapers {
		intended += wp.ContentFrames()
	}
	s.IntendedRate = float64(intended) / dur
	if intended > 0 {
		q := float64(content) / float64(intended)
		if q > 1 {
			q = 1
		}
		s.DisplayQuality = q
		if drop := s.IntendedRate - s.ContentRate; drop > 0 {
			s.DroppedFPS = drop
		}
	} else {
		s.DisplayQuality = 1
	}

	s.DisplayedRate = float64(d.displayedContent) / dur
	if intended > 0 {
		q := float64(d.displayedContent) / float64(intended)
		if q > 1 {
			q = 1
		}
		s.TrueQuality = q
	} else {
		s.TrueQuality = 1
	}

	s.MeanRefreshHz = d.panel.MeanRate()
	s.RefreshSwitches = d.panel.Switches()
	if d.gov != nil {
		s.BoostCount = d.gov.Booster().Touches()
		s.SwitchRetries = d.gov.SwitchRetries()
		s.FailSafeEnters = d.gov.FailSafeEnters()
		s.FailSafeExits = d.gov.FailSafeExits()
		s.FailSafeTime = d.gov.FailSafeTime()
	}
	s.FaultsInjected = d.cfg.Faults.Total()
	return s
}

// FinishObs closes out the device's observability at the end of a run: it
// records the DeviceEnd event, flushes the open refresh-residency interval,
// and snapshots the lifetime totals (frame, refresh, governor and power
// statistics) into the metrics registry. Call it once, after the last Run
// increment; with no Recorder or Metrics configured it does nothing. It
// never perturbs the simulation — a run with obs enabled behaves
// identically to one without.
func (d *Device) FinishObs() {
	if d.obsDone {
		return
	}
	d.obsDone = true
	now := d.eng.Now()
	d.cfg.Recorder.DeviceEnd(now)
	reg := d.cfg.Metrics
	if reg == nil {
		return
	}
	d.flushResidency(now)

	frames, content := d.meter.Totals()
	reg.Counter("frames_total").Add(frames)
	reg.Counter("content_frames_total").Add(content)
	reg.Counter("redundant_frames_total").Add(d.meter.TotalRedundant())
	reg.Counter("vsync_refreshes_total").Add(d.panel.Refreshes())
	reg.Counter("refresh_switches_total").Add(d.panel.Switches())
	reg.Counter("deferred_latches_total").Add(d.mgr.DeferredLatches())
	reg.Counter("sim_time_us").Add(uint64(now))
	// Palette and memo counters are registered unconditionally so scrape
	// targets see the series (at zero) even on -no-palette devices.
	palTiles, palPromos := d.mgr.PaletteStats()
	reg.Counter("fb_palette_tiles").Add(uint64(palTiles))
	reg.Counter("fb_palette_promotions_total").Add(palPromos)
	var memoHits, memoMisses uint64
	for _, m := range d.apps {
		h, ms := m.MemoStats()
		memoHits += h
		memoMisses += ms
	}
	reg.Counter("app_memo_hits_total").Add(memoHits)
	reg.Counter("app_memo_misses_total").Add(memoMisses)
	if d.gov != nil {
		reg.Counter("governor_decisions_total").Add(d.gov.Decisions())
		reg.Counter("touch_boosts_total").Add(d.gov.Booster().Touches())
		reg.Counter("boost_transitions_total").Add(d.gov.BoostTransitions())
		if d.gov.Hardened() {
			reg.Counter("panel_switch_retries_total").Add(d.gov.SwitchRetries())
			reg.Counter("failsafe_enters_total").Add(d.gov.FailSafeEnters())
			reg.Counter("failsafe_exits_total").Add(d.gov.FailSafeExits())
			reg.Counter("failsafe_time_us").Add(uint64(d.gov.FailSafeTime()))
		}
	}
	if d.cfg.Faults.Enabled() {
		counts := d.cfg.Faults.Counts()
		for _, c := range fault.Classes() {
			reg.Counter("faults_injected_total_" + c.String()).Add(counts[c])
		}
		reg.Counter("faults_injected_total").Add(d.cfg.Faults.Total())
	}

	s := d.Stats()
	reg.Gauge("mean_refresh_hz").Set(s.MeanRefreshHz)
	reg.Histogram("device_power_mw", obs.PowerBucketsMW).Observe(s.MeanPowerMW)
	reg.Histogram("device_quality_pct", obs.QualityBucketsPct).Observe(s.DisplayQuality * 100)
	reg.Histogram("device_refresh_hz", obs.RateBucketsFPS).Observe(s.MeanRefreshHz)
}

// Traces returns the recorded time series. With a negative
// PowerSampleInterval the Power slice is nil; with a negative TraceInterval
// the series are present but empty.
func (d *Device) Traces() Traces {
	tr := Traces{
		Content:  d.contentTrace,
		Frame:    d.frameTrace,
		Refresh:  d.refreshTrace,
		Intended: d.intendedTrace,
	}
	if d.pwrMeter != nil {
		tr.Power = d.pwrMeter.Samples()
	}
	return tr
}
