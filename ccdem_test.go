package ccdem

import (
	"testing"

	"ccdem/internal/app"
	"ccdem/internal/input"
	"ccdem/internal/power"
	"ccdem/internal/sim"
	"ccdem/internal/wallpaper"
)

func mustDevice(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func mustApp(t *testing.T, d *Device, name string) *app.Model {
	t.Helper()
	p, ok := app.ByName(name)
	if !ok {
		t.Fatalf("app %q not in catalog", name)
	}
	m, err := d.InstallApp(p)
	if err != nil {
		t.Fatalf("InstallApp(%s): %v", name, err)
	}
	return m
}

func script(t *testing.T, seed int64, length sim.Time) input.Script {
	t.Helper()
	mk, err := input.NewMonkey(seed, input.DefaultMonkeyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return mk.Script(length, 720, 1280)
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(Config{Brightness: 2}); err == nil {
		t.Error("brightness 2 accepted")
	}
	if _, err := NewDevice(Config{Width: -1}); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := NewDevice(Config{RefreshLevels: []int{0}}); err == nil {
		t.Error("zero refresh level accepted")
	}
}

func TestGovernorModeString(t *testing.T) {
	if GovernorOff.String() != "baseline" || GovernorSection.String() != "section" ||
		GovernorSectionBoost.String() != "section+boost" {
		t.Error("mode strings wrong")
	}
	if GovernorMode(9).String() == "" {
		t.Error("unknown mode empty")
	}
}

func TestBaselineRunsAtSixtyHz(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorOff})
	mustApp(t, d, "Jelly Splash")
	d.Run(10 * sim.Second)
	st := d.Stats()
	if st.MeanRefreshHz < 59.5 {
		t.Errorf("baseline mean refresh = %v, want 60", st.MeanRefreshHz)
	}
	if st.RefreshSwitches != 0 {
		t.Errorf("baseline switched rates %d times", st.RefreshSwitches)
	}
	// Jelly Splash at 60 Hz: ~60 fps frames, ~10 fps content.
	if st.FrameRate < 55 {
		t.Errorf("frame rate = %v, want ≈60", st.FrameRate)
	}
	if st.ContentRate < 8 || st.ContentRate > 13 {
		t.Errorf("content rate = %v, want ≈10", st.ContentRate)
	}
	if st.DisplayQuality < 0.95 {
		t.Errorf("baseline quality = %v, want ≈1", st.DisplayQuality)
	}
}

func TestSectionGovernorReducesPowerOnRedundantApp(t *testing.T) {
	run := func(mode GovernorMode) Stats {
		d := mustDevice(t, Config{Governor: mode})
		mustApp(t, d, "Jelly Splash")
		d.Run(20 * sim.Second)
		return d.Stats()
	}
	base := run(GovernorOff)
	sect := run(GovernorSection)
	saved := base.MeanPowerMW - sect.MeanPowerMW
	if saved < 100 {
		t.Errorf("section governor saved %v mW on Jelly Splash, want ≫100", saved)
	}
	if sect.MeanRefreshHz > 35 {
		t.Errorf("section mean refresh = %v Hz, want well below 60", sect.MeanRefreshHz)
	}
	// Idle Jelly Splash content ≈10 fps fits under every level, so no
	// quality loss even without boost.
	if sect.DisplayQuality < 0.9 {
		t.Errorf("section quality = %v", sect.DisplayQuality)
	}
}

func TestBoostImprovesQualityUnderInteraction(t *testing.T) {
	sc := script(t, 77, 30*sim.Second)
	run := func(mode GovernorMode) Stats {
		d := mustDevice(t, Config{Governor: mode})
		mustApp(t, d, "Facebook")
		d.PlayScript(sc)
		d.Run(30 * sim.Second)
		return d.Stats()
	}
	sect := run(GovernorSection)
	boost := run(GovernorSectionBoost)
	if boost.DisplayQuality <= sect.DisplayQuality {
		t.Errorf("boost quality %v not above section quality %v",
			boost.DisplayQuality, sect.DisplayQuality)
	}
	if boost.DisplayQuality < 0.9 {
		t.Errorf("boost quality = %v, want ≥0.9", boost.DisplayQuality)
	}
	if boost.BoostCount == 0 {
		t.Error("no boosts recorded despite script interaction")
	}
	// Boosting costs a little power relative to section-only.
	if boost.MeanPowerMW < sect.MeanPowerMW {
		t.Errorf("boost power %v below section power %v — boost should cost a little",
			boost.MeanPowerMW, sect.MeanPowerMW)
	}
}

func TestIdenticalScriptsAreReproducible(t *testing.T) {
	run := func() Stats {
		d := mustDevice(t, Config{Governor: GovernorSectionBoost})
		mustApp(t, d, "Daum Maps")
		d.PlayScript(script(t, 5, 15*sim.Second))
		d.Run(15 * sim.Second)
		return d.Stats()
	}
	a, b := run(), run()
	if a.MeanPowerMW != b.MeanPowerMW || a.FrameRate != b.FrameRate || a.ContentRate != b.ContentRate {
		t.Errorf("paired runs differ: %+v vs %+v", a, b)
	}
}

func TestDeviceTraces(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorSection})
	mustApp(t, d, "Jelly Splash")
	d.Run(5 * sim.Second)
	tr := d.Traces()
	if tr.Content.Len() == 0 || tr.Refresh.Len() == 0 || tr.Frame.Len() == 0 || tr.Intended.Len() == 0 {
		t.Fatal("empty traces")
	}
	if len(tr.Power) == 0 {
		t.Fatal("no power samples")
	}
	// Refresh trace values must be panel levels.
	for _, p := range tr.Refresh.Points {
		ok := false
		for _, l := range d.Panel().Levels() {
			if float64(l) == p.V {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("refresh trace value %v is not a panel level", p.V)
		}
	}
}

func TestInstallWallpaper(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorOff})
	wp, err := d.InstallWallpaper(wallpaper.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(5 * sim.Second)
	if wp.ContentFrames() < 90 {
		t.Errorf("wallpaper content frames = %d, want ≈100", wp.ContentFrames())
	}
	// The default wallpaper is the paper's *hard* metering case: 4 px dots
	// slip past the 9K grid on some frames (the Figure 6 error source), so
	// measured quality sits below 1 even at 60 Hz.
	st := d.Stats()
	if st.DisplayQuality < 0.5 || st.DisplayQuality > 1 {
		t.Errorf("wallpaper quality at 60 Hz = %v, want in (0.5, 1]", st.DisplayQuality)
	}
}

func TestRunIncrements(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorOff})
	mustApp(t, d, "Weather")
	d.Run(2 * sim.Second)
	d.Run(3 * sim.Second)
	if got := d.Stats().Duration; got != 5*sim.Second {
		t.Errorf("duration = %v, want 5s", got)
	}
}

func TestStatsZeroDuration(t *testing.T) {
	d := mustDevice(t, Config{})
	st := d.Stats()
	if st.Duration != 0 || st.MeanPowerMW != 0 {
		t.Errorf("zero-run stats = %+v", st)
	}
}

func TestBaselineChargesNoMeterEnergy(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorOff})
	mustApp(t, d, "Jelly Splash")
	d.Run(5 * sim.Second)
	if e := d.Stats().Breakdown; e[powerMeterComponent()] != 0 {
		t.Errorf("baseline meter energy = %v, want 0", e[powerMeterComponent()])
	}
	dg := mustDevice(t, Config{Governor: GovernorSection})
	mustApp(t, dg, "Jelly Splash")
	dg.Run(5 * sim.Second)
	if e := dg.Stats().Breakdown; e[powerMeterComponent()] == 0 {
		t.Error("governed run charged no meter energy")
	}
}

// powerMeterComponent avoids importing power in half the test file's call
// sites; it just names the meter component.
func powerMeterComponent() power.Component { return power.MeterOver }
