// Command ccdem-bench is the benchmark-regression gate for the simulation
// kernel's hot path. It runs (or reads) the pinned benchmark suite,
// aggregates repeated runs into medians, and compares them against the
// committed baseline in results/bench_baseline.json:
//
//   - allocs/op growth over baseline always fails (the steady-state frame
//     path is contractually allocation-free);
//   - ns/op growth beyond -threshold fails, unless -warn-time downgrades
//     time regressions to warnings (for shared CI runners whose timings
//     are not comparable to the baseline host).
//
// Examples:
//
//	ccdem-bench                            # run suite, gate against baseline
//	ccdem-bench -count 5 -benchtime 200ms  # CI settings
//	ccdem-bench -update                    # refresh the committed baseline
//	go test -bench . -benchmem ./... | ccdem-bench -input -
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"

	"ccdem/internal/buildinfo"
	"ccdem/internal/perfgate"
)

// suiteRegex pins the gated benchmarks: the hot-path kernels (grid sample,
// pixel diff, fill, meter observe), the tile pipeline against its naive
// oracle (compose and compare, whose naive rows double as the comparison
// baseline), the palette representation against the raw-tile oracle
// (blit and hash rows, plus the whole-device no-palette steady state),
// the event engine (cold-start and steady-state), the
// whole-device paths (per-op setup and zero-alloc steady state), and the
// fleet campaign path (streamed throughput and memory footprint —
// single-op cohorts, cheap enough to gate). Heavier figure-regeneration
// benchmarks are deliberately excluded — they are too slow for a
// -benchtime 200ms gate.
const suiteRegex = `^(BenchmarkGridSample9K|BenchmarkDiffPixelsFullHD|BenchmarkFillSprite|` +
	`BenchmarkMeterObserve9K|BenchmarkTileCompare|BenchmarkTileCompose|` +
	`BenchmarkPaletteBlit|BenchmarkPaletteHash|` +
	`BenchmarkEngineScheduleAndRun|BenchmarkEngineSteadyState|` +
	`BenchmarkDeviceSimulation|BenchmarkDeviceSteadyState|BenchmarkDeviceSteadyStateNoPalette|` +
	`BenchmarkFleetThroughput|BenchmarkCohortMemory)$`

// suitePackages lists the packages holding the pinned benchmarks.
var suitePackages = []string{
	".",
	"./internal/framebuffer",
	"./internal/core",
	"./internal/sim",
	"./internal/surface",
}

func main() {
	var (
		baseline  = flag.String("baseline", "results/bench_baseline.json", "baseline JSON path")
		input     = flag.String("input", "", "read bench output from this file ('-' = stdin) instead of running go test")
		update    = flag.Bool("update", false, "write the measured results back to the baseline instead of gating")
		threshold = flag.Float64("threshold", 0.10, "allowed fractional ns/op growth before failing")
		warnTime  = flag.Bool("warn-time", false, "downgrade time regressions to warnings (alloc growth still fails)")
		report    = flag.String("report", "", "also write the report to this file")
		count     = flag.Int("count", 3, "benchmark repetitions (median is gated)")
		benchtime = flag.String("benchtime", "200ms", "go test -benchtime per benchmark")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "ccdem-bench")
		return
	}
	if err := run(*baseline, *input, *update, *threshold, *warnTime, *report, *count, *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "ccdem-bench:", err)
		os.Exit(1)
	}
}

func run(baselinePath, input string, update bool, threshold float64, warnTime bool, reportPath string, count int, benchtime string) error {
	var raw io.Reader
	switch input {
	case "-":
		raw = os.Stdin
	case "":
		out, err := runSuite(count, benchtime)
		if err != nil {
			return err
		}
		raw = bytes.NewReader(out)
	default:
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		raw = f
	}
	results, err := perfgate.Parse(raw)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found")
	}

	if update {
		base, err := perfgate.LoadBaseline(baselinePath)
		if os.IsNotExist(err) {
			base = &perfgate.Baseline{}
		} else if err != nil {
			return err
		}
		base.Note = fmt.Sprintf("pinned suite, medians of -count %d -benchtime %s runs; refresh with `make perfgate-update`", count, benchtime)
		base.Update(results)
		if err := base.Save(baselinePath); err != nil {
			return err
		}
		fmt.Printf("updated %s with %d benchmark(s)\n", baselinePath, len(results))
		return nil
	}

	base, err := perfgate.LoadBaseline(baselinePath)
	if err != nil {
		return fmt.Errorf("load baseline (run with -update to create it): %w", err)
	}
	rep := perfgate.Compare(base, results, perfgate.Options{
		Threshold:    threshold,
		WarnTimeOnly: warnTime,
	})
	if err := rep.Write(os.Stdout); err != nil {
		return err
	}
	if reportPath != "" {
		var buf bytes.Buffer
		if err := rep.Write(&buf); err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	if rep.Failed() {
		return fmt.Errorf("benchmark regression gate failed")
	}
	return nil
}

// runSuite executes the pinned benchmarks via go test, echoing output to
// stderr as it arrives so long runs show progress.
func runSuite(count int, benchtime string) ([]byte, error) {
	args := []string{
		"test", "-run", "^$", "-bench", suiteRegex, "-benchmem",
		"-count", fmt.Sprint(count), "-benchtime", benchtime,
	}
	args = append(args, suitePackages...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = io.MultiWriter(&out, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %w", args, err)
	}
	return out.Bytes(), nil
}
