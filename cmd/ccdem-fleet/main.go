// Command ccdem-fleet runs a population of simulated devices in parallel
// and reports fleet-wide statistics: what the paper's scheme saves across
// many heterogeneous users rather than on one phone. Devices are expanded
// from declarative user profiles (app mixes over the 30-app catalog,
// session lengths, touch intensity), seeded deterministically from one
// fleet seed, and aggregated into power-saving percentiles, a
// display-quality CDF, and a battery-hours distribution.
//
// Results are bit-identical for a given (spec, seed) at any -workers
// value.
//
// Examples:
//
//	ccdem-fleet -devices 1000 -duration 60 -seed 42
//	ccdem-fleet -spec cohort.json -workers 8 -format csv > fleet.csv
//	ccdem-fleet -write-spec cohort.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"ccdem/internal/fleet"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// obsFlags bundles the observability surface of the command.
type obsFlags struct {
	traceOut   string // Chrome trace-event JSON output path
	traceSched bool   // add the (non-deterministic) pool-scheduler track
	metrics    bool   // dump the merged fleet registry to stderr
}

func main() {
	var (
		devices  = flag.Int("devices", 100, "number of simulated devices")
		workers  = flag.Int("workers", 0, "concurrent device runs (0 = all cores)")
		seed     = flag.Int64("seed", 1, "fleet seed; device i derives its own seed from it")
		duration = flag.Int("duration", 60, "nominal session seconds per device (before per-profile jitter)")
		mode     = flag.String("mode", "", "managed configuration: section | section+boost | naive | e3-framerate | idle-timeout (default section+boost)")
		samples  = flag.Int("samples", 9216, "metering grid pixels")
		specPath = flag.String("spec", "", "cohort specification JSON (see -write-spec for a template); explicit flags override its scalars")
		format   = flag.String("format", "json", "output format: json | csv")
		perDev   = flag.Bool("per-device", false, "include per-device rows in JSON output (CSV always emits them)")
		progress = flag.Bool("progress", false, "report completed devices on stderr")
		writeTo  = flag.String("write-spec", "", "write the default cohort as a spec template to this file and exit")

		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of every device's managed session to this file (open in Perfetto or chrome://tracing)")
		traceSched = flag.Bool("trace-sched", false, "with -trace-out: add the pool scheduler's wall-clock task spans as an extra track (not reproducible across runs)")
		metrics    = flag.Bool("metrics", false, "dump the merged fleet metrics registry to stderr after the run")
		pprofOut   = flag.String("pprof", "", "write a CPU profile of the whole invocation to this file")
	)
	flag.Parse()
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccdem-fleet: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccdem-fleet: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if err := run(*devices, *workers, *seed, *duration, *mode, *samples,
		*specPath, *format, *perDev, *progress, *writeTo,
		obsFlags{traceOut: *traceOut, traceSched: *traceSched, metrics: *metrics}); err != nil {
		fmt.Fprintf(os.Stderr, "ccdem-fleet: %v\n", err)
		os.Exit(1)
	}
}

func run(devices, workers int, seed int64, duration int, mode string, samples int,
	specPath, format string, perDev, progress bool, writeTo string, of obsFlags) error {
	if format != "json" && format != "csv" {
		return fmt.Errorf("unknown format %q (want json or csv)", format)
	}
	cohort := fleet.Cohort{
		Devices:      devices,
		Seed:         seed,
		Session:      sim.Time(duration) * sim.Second,
		MeterSamples: samples,
	}
	if mode != "" {
		g, err := fleet.ParseGovernor(mode)
		if err != nil {
			return err
		}
		cohort.Governor = g
	}

	if writeTo != "" {
		f, err := os.Create(writeTo)
		if err != nil {
			return err
		}
		if err := fleet.WriteSpec(f, cohort); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return err
		}
		spec, err := fleet.ReadSpec(f)
		f.Close()
		if err != nil {
			return err
		}
		// The spec is the cohort; flags the user typed explicitly still win.
		set := map[string]bool{}
		flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
		if !set["devices"] {
			cohort.Devices = spec.Devices
		}
		if !set["seed"] {
			cohort.Seed = spec.Seed
		}
		if !set["duration"] {
			cohort.Session = spec.Session
		}
		if !set["mode"] {
			cohort.Governor = spec.Governor
		}
		if !set["samples"] {
			cohort.MeterSamples = spec.MeterSamples
		}
		cohort.Pack = spec.Pack
		cohort.Profiles = spec.Profiles
	}

	pool := fleet.Pool{Workers: workers}
	if progress {
		pool.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfleet: %d/%d devices", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if of.traceOut != "" || of.metrics {
		cohort.Obs = obs.NewCollector(0)
	}
	if of.traceSched {
		pool.Spans = obs.NewSpanLog()
	}
	result, err := cohort.Run(context.Background(), pool)
	if err != nil {
		return err
	}
	if err := writeObs(cohort.Obs, pool.Spans, of); err != nil {
		return err
	}
	if format == "csv" {
		return result.WriteCSV(os.Stdout)
	}
	return result.WriteJSON(os.Stdout, perDev)
}

// writeObs exports the collected fleet observability: the Perfetto trace
// (plus the scheduler track with -trace-sched) to -trace-out and, with
// -metrics, the merged fleet registry dump to stderr.
func writeObs(c *obs.Collector, spans *obs.SpanLog, of obsFlags) error {
	if c == nil {
		return nil
	}
	if of.traceOut != "" {
		tr := c.Trace()
		if spans != nil {
			// The scheduler track gets its own Perfetto process after the
			// device tracks; wall-clock spans are inherently not
			// reproducible, which is why they are opt-in.
			tr.AddSpans(len(c.Tracks())+1, "pool scheduler", spans.Spans())
		}
		f, err := os.Create(of.traceOut)
		if err != nil {
			return err
		}
		if err := tr.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d tracks written to %s (open in https://ui.perfetto.dev)\n",
			len(c.Tracks()), of.traceOut)
	}
	if of.metrics {
		fmt.Fprintln(os.Stderr, "\nmerged fleet metrics:")
		if err := c.WriteMetrics(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}
