// Command ccdem-fleet runs a population of simulated devices in parallel
// and reports fleet-wide statistics: what the paper's scheme saves across
// many heterogeneous users rather than on one phone. Devices are expanded
// from declarative user profiles (app mixes over the 30-app catalog,
// session lengths, touch intensity), seeded deterministically from one
// fleet seed, and aggregated into power-saving percentiles, a
// display-quality CDF, and a battery-hours distribution.
//
// Results are bit-identical for a given (spec, seed) at any -workers
// value.
//
// Examples:
//
//	ccdem-fleet -devices 1000 -duration 60 -seed 42
//	ccdem-fleet -spec cohort.json -workers 8 -format csv > fleet.csv
//	ccdem-fleet -write-spec cohort.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"ccdem/internal/buildinfo"
	"ccdem/internal/fault"
	"ccdem/internal/fleet"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// obsFlags bundles the observability surface of the command.
type obsFlags struct {
	traceOut    string // Chrome trace-event JSON output path
	traceSched  bool   // add the (non-deterministic) pool-scheduler track
	metrics     bool   // dump the merged fleet registry to stderr
	metricsProm string // write the merged registry as Prometheus exposition to this file
	sample      int    // keep observability for ~1 in N devices (0/1 = all)
}

// runConfig is the command's full flag surface, validated in run.
type runConfig struct {
	devices  int
	workers  int
	seed     int64
	duration int     // nominal session seconds per device
	mode     string  // managed governor configuration ("" = default)
	samples  int     // metering grid pixels
	faults   float64 // fault intensity: scales fault.DefaultPlan (0 = off)
	hardened bool    // enable governor fail-safe hardening
	naivePix bool    // force the brute-force pixel pipeline (tile oracle)
	noPal    bool    // disable palette-compressed tiles (palette oracle)
	failFast bool    // abort the campaign on the first device failure
	timeout  time.Duration
	specPath string
	format   string // json | csv
	perDev   bool
	stream   bool // streaming aggregation: O(workers) memory
	batch    int  // task indices claimed per worker dispatch
	progress bool
	writeTo  string
	shard    string   // run one shard "i/n" and emit its wire document
	merge    bool     // merge shard documents instead of running devices
	shardIn  []string // positional args: shard files for -merge-shards
	obs      obsFlags
}

func main() {
	var c runConfig
	flag.IntVar(&c.devices, "devices", 100, "number of simulated devices")
	flag.IntVar(&c.workers, "workers", 0, "concurrent device runs (0 = all cores)")
	flag.Int64Var(&c.seed, "seed", 1, "fleet seed; device i derives its own seed from it")
	flag.IntVar(&c.duration, "duration", 60, "nominal session seconds per device (before per-profile jitter)")
	flag.StringVar(&c.mode, "mode", "", "managed configuration: section | section+boost | naive | e3-framerate | idle-timeout (default section+boost)")
	flag.IntVar(&c.samples, "samples", 9216, "metering grid pixels")
	flag.Float64Var(&c.faults, "faults", 0, "fault intensity injected into managed segments: scales the default fault plan (0 = off, 1 = reference chaos mix)")
	flag.BoolVar(&c.hardened, "hardened", false, "enable governor fail-safe hardening on managed segments")
	flag.BoolVar(&c.naivePix, "naive-pixels", false, "force the brute-force pixel pipeline (no tile signatures); results are byte-identical to the default tile path — this is the differential-testing oracle")
	flag.BoolVar(&c.noPal, "no-palette", false, "disable palette-compressed tile surfaces and the app state memo (keeps the tile pipeline); results are byte-identical to the default palette path — this is the palette layer's differential-testing oracle")
	flag.BoolVar(&c.failFast, "fail-fast", false, "abort the campaign on the first device failure instead of aggregating the survivors")
	flag.DurationVar(&c.timeout, "task-timeout", 0, "wall-clock budget per device simulation; a device exceeding it is reported failed (0 = unlimited)")
	flag.StringVar(&c.specPath, "spec", "", "cohort specification JSON (see -write-spec for a template); explicit flags override its scalars")
	flag.StringVar(&c.format, "format", "json", "output format: json | csv")
	flag.BoolVar(&c.perDev, "per-device", false, "include per-device rows in JSON output (CSV always emits them)")
	flag.BoolVar(&c.stream, "stream", false, "aggregate on the fly in O(workers) memory instead of retaining per-device rows; the aggregate is byte-identical, CSV rows are emitted in completion order, and JSON is aggregate-only (incompatible with -per-device)")
	flag.IntVar(&c.batch, "batch", 0, "device indices each worker claims per dispatch (0 = one at a time); larger batches amortize scheduling overhead on huge fleets")
	flag.BoolVar(&c.progress, "progress", false, "report completed devices on stderr")
	flag.StringVar(&c.writeTo, "write-spec", "", "write the default cohort as a spec template to this file and exit")
	flag.StringVar(&c.shard, "shard", "", "run only shard i/n of the cohort (e.g. 0/4) and write its accumulator shard document to stdout; merge the documents with -merge-shards")
	flag.BoolVar(&c.merge, "merge-shards", false, "merge the shard documents named as arguments (- for stdin) into the campaign result; byte-identical to the unsharded streaming run")

	flag.StringVar(&c.obs.traceOut, "trace-out", "", "write a Chrome trace-event JSON of every device's managed session to this file (open in Perfetto or chrome://tracing)")
	flag.BoolVar(&c.obs.traceSched, "trace-sched", false, "with -trace-out: add the pool scheduler's wall-clock task spans as an extra track (not reproducible across runs)")
	flag.BoolVar(&c.obs.metrics, "metrics", false, "dump the merged fleet metrics registry to stderr after the run")
	flag.StringVar(&c.obs.metricsProm, "metrics-prom", "", "write the merged fleet metrics registry to this file in Prometheus text exposition format (- for stderr); scrape-compatible with ccdem-obscheck -prom")
	flag.IntVar(&c.obs.sample, "obs-sample", 0, "with -trace-out/-metrics: keep observability for roughly 1 in N devices, chosen deterministically by name hash (0 or 1 = all); bounds observability memory on huge fleets")
	pprofOut := flag.String("pprof", "", "write a CPU profile of the whole invocation to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "ccdem-fleet")
		return
	}
	c.shardIn = flag.Args()
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccdem-fleet: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccdem-fleet: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if err := run(c); err != nil {
		fmt.Fprintf(os.Stderr, "ccdem-fleet: %v\n", err)
		os.Exit(1)
	}
}

// validate rejects flag mistakes at the command boundary, before they can
// panic deep inside the metering grid or Monkey generator.
func (c runConfig) validate() error {
	if c.devices <= 0 {
		return fmt.Errorf("-devices must be positive, got %d", c.devices)
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %d", c.duration)
	}
	if c.samples <= 0 {
		return fmt.Errorf("-samples must be positive, got %d", c.samples)
	}
	if c.faults < 0 {
		return fmt.Errorf("-faults must be non-negative, got %g", c.faults)
	}
	if c.naivePix && c.noPal {
		return fmt.Errorf("-naive-pixels already runs without palettes; drop -no-palette (each flag selects one differential oracle)")
	}
	if c.timeout < 0 {
		return fmt.Errorf("-task-timeout must be non-negative, got %v", c.timeout)
	}
	if c.format != "json" && c.format != "csv" {
		return fmt.Errorf("unknown format %q (want json or csv)", c.format)
	}
	if c.stream && c.perDev {
		return fmt.Errorf("-stream does not retain per-device rows; drop -per-device or use -format csv for streamed rows")
	}
	if c.batch < 0 {
		return fmt.Errorf("-batch must be non-negative, got %d", c.batch)
	}
	if c.obs.sample < 0 {
		return fmt.Errorf("-obs-sample must be non-negative, got %d", c.obs.sample)
	}
	if c.shard != "" {
		if c.merge {
			return fmt.Errorf("-shard and -merge-shards are different halves of a distributed run; use one")
		}
		if c.format == "csv" || c.perDev {
			return fmt.Errorf("-shard emits an accumulator shard document, not rows; drop -format csv / -per-device")
		}
	}
	if c.merge {
		if len(c.shardIn) == 0 {
			return fmt.Errorf("-merge-shards needs shard document files as arguments")
		}
		if c.format == "csv" || c.perDev {
			return fmt.Errorf("shard documents carry no per-device rows; -merge-shards output is aggregate JSON only")
		}
	} else if len(c.shardIn) > 0 {
		return fmt.Errorf("unexpected arguments %v (shard files are only read with -merge-shards)", c.shardIn)
	}
	return nil
}

// runMerge is the -merge-shards path: decode every shard document, merge
// in shard order, and write the campaign result.
func runMerge(c runConfig) error {
	shards := make([]*fleet.Shard, 0, len(c.shardIn))
	for _, path := range c.shardIn {
		var r io.Reader = os.Stdin
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		shard, err := fleet.DecodeShard(r)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		shards = append(shards, shard)
	}
	result, err := fleet.MergeShards(shards)
	if err != nil {
		return err
	}
	if len(result.Failed) > 0 {
		fmt.Fprintf(os.Stderr, "ccdem-fleet: %d devices failed; aggregate covers the survivors\n", len(result.Failed))
	}
	return result.WriteJSON(os.Stdout, false)
}

func run(c runConfig) error {
	if err := c.validate(); err != nil {
		return err
	}
	if c.merge {
		return runMerge(c)
	}
	cohort := fleet.Cohort{
		Devices:      c.devices,
		Seed:         c.seed,
		Session:      sim.Time(c.duration) * sim.Second,
		MeterSamples: c.samples,
		Hardened:     c.hardened,
		NaivePixels:  c.naivePix,
		NoPalette:    c.noPal,
		FailFast:     c.failFast,
	}
	if c.faults > 0 {
		plan := fault.DefaultPlan().Scale(c.faults)
		cohort.Faults = &plan
	}
	if c.mode != "" {
		g, err := fleet.ParseGovernor(c.mode)
		if err != nil {
			return err
		}
		cohort.Governor = g
	}

	if c.writeTo != "" {
		f, err := os.Create(c.writeTo)
		if err != nil {
			return err
		}
		if err := fleet.WriteSpec(f, cohort); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if c.specPath != "" {
		f, err := os.Open(c.specPath)
		if err != nil {
			return err
		}
		spec, err := fleet.ReadSpec(f)
		f.Close()
		if err != nil {
			return err
		}
		// The spec is the cohort; flags the user typed explicitly still win.
		set := map[string]bool{}
		flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
		if !set["devices"] {
			cohort.Devices = spec.Devices
		}
		if !set["seed"] {
			cohort.Seed = spec.Seed
		}
		if !set["duration"] {
			cohort.Session = spec.Session
		}
		if !set["mode"] {
			cohort.Governor = spec.Governor
		}
		if !set["samples"] {
			cohort.MeterSamples = spec.MeterSamples
		}
		if !set["naive-pixels"] {
			cohort.NaivePixels = spec.NaivePixels
		}
		if !set["no-palette"] {
			cohort.NoPalette = spec.NoPalette
		}
		cohort.Pack = spec.Pack
		cohort.Profiles = spec.Profiles
	}

	pool := fleet.Pool{Workers: c.workers, TaskTimeout: c.timeout, Batch: c.batch}
	if c.progress {
		pool.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfleet: %d/%d devices", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if c.obs.traceOut != "" || c.obs.metrics || c.obs.metricsProm != "" {
		cohort.Obs = obs.NewCollector(0)
		cohort.Obs.SetSample(c.obs.sample)
	}
	if c.obs.traceSched {
		pool.Spans = obs.NewSpanLog()
	}
	if c.shard != "" {
		index, count, err := fleet.ParseShard(c.shard)
		if err != nil {
			return err
		}
		cohort.ShardIndex, cohort.ShardCount = index, count
		shard, err := cohort.RunShard(context.Background(), pool)
		if err != nil {
			return err
		}
		if err := writeObs(cohort.Obs, pool.Spans, c.obs); err != nil {
			return err
		}
		if len(shard.Failed) > 0 {
			fmt.Fprintf(os.Stderr, "ccdem-fleet: shard %s: %d devices failed\n", c.shard, len(shard.Failed))
		}
		return shard.Encode(os.Stdout)
	}
	var sinkErr error
	if c.stream {
		cohort.Stream = true
		if c.format == "csv" {
			// Streamed CSV: header up front, then one row per surviving
			// device as it completes — per-device output without retaining
			// a single result. Rows arrive in completion order; the device
			// column re-orders downstream (sort -t, -k1 -n).
			if err := fleet.WriteCSVHeader(os.Stdout); err != nil {
				return err
			}
			cohort.Sink = func(d fleet.DeviceResult) {
				if sinkErr == nil {
					sinkErr = d.WriteCSVRow(os.Stdout)
				}
			}
		}
	}
	result, err := cohort.Run(context.Background(), pool)
	if err != nil {
		return err
	}
	if sinkErr != nil {
		return sinkErr
	}
	if err := writeObs(cohort.Obs, pool.Spans, c.obs); err != nil {
		return err
	}
	if len(result.Failed) > 0 {
		fmt.Fprintf(os.Stderr, "ccdem-fleet: %d of %d devices failed; aggregate covers the survivors\n",
			len(result.Failed), cohort.Devices)
	}
	if c.format == "csv" {
		if c.stream {
			return nil // rows already emitted by the sink
		}
		return result.WriteCSV(os.Stdout)
	}
	return result.WriteJSON(os.Stdout, c.perDev)
}

// writeObs exports the collected fleet observability: the Perfetto trace
// (plus the scheduler track with -trace-sched) to -trace-out, the merged
// fleet registry dump to stderr with -metrics, and the same registry in
// Prometheus text exposition format to -metrics-prom.
func writeObs(c *obs.Collector, spans *obs.SpanLog, of obsFlags) error {
	if c == nil {
		return nil
	}
	if of.traceOut != "" {
		tr := c.Trace()
		if spans != nil {
			// The scheduler track gets its own Perfetto process after the
			// device tracks; wall-clock spans are inherently not
			// reproducible, which is why they are opt-in.
			tr.AddSpans(len(c.Tracks())+1, "pool scheduler", spans.Spans())
		}
		f, err := os.Create(of.traceOut)
		if err != nil {
			return err
		}
		if err := tr.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d tracks written to %s (open in https://ui.perfetto.dev)\n",
			len(c.Tracks()), of.traceOut)
	}
	if of.metrics {
		fmt.Fprintln(os.Stderr, "\nmerged fleet metrics:")
		if err := c.WriteMetrics(os.Stderr); err != nil {
			return err
		}
	}
	if of.metricsProm != "" {
		merged, err := c.MergedMetrics()
		if err != nil {
			return err
		}
		if of.metricsProm == "-" {
			return merged.WritePrometheus(os.Stderr)
		}
		f, err := os.Create(of.metricsProm)
		if err != nil {
			return err
		}
		if err := merged.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
