package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ccdem/internal/obs"
)

// testConfig is a small healthy cohort; tests tweak the fields they probe.
func testConfig() runConfig {
	return runConfig{
		devices:  4,
		seed:     1,
		duration: 3,
		samples:  1024,
		format:   "json",
	}
}

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	errRun := fn()
	os.Stdout = old
	f.Close()
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestRunJSON(t *testing.T) {
	c := testConfig()
	c.workers = 2
	c.perDev = true
	out := capture(t, func() error { return run(c) })
	var doc struct {
		Devices   []json.RawMessage `json:"devices"`
		Aggregate struct {
			Devices     int     `json:"devices"`
			MeanSavedMW float64 `json:"mean_saved_mw"`
		} `json:"aggregate"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if doc.Aggregate.Devices != 4 || len(doc.Devices) != 4 {
		t.Errorf("devices = %d/%d, want 4", doc.Aggregate.Devices, len(doc.Devices))
	}
}

func TestRunCSV(t *testing.T) {
	c := testConfig()
	c.devices = 3
	c.mode = "section"
	c.format = "csv"
	out := capture(t, func() error { return run(c) })
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want header + 3 rows\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "device,profile,") {
		t.Errorf("missing header: %s", lines[0])
	}
}

func TestRunFaultyHardenedJSON(t *testing.T) {
	c := testConfig()
	c.faults = 1
	c.hardened = true
	c.perDev = true
	out := capture(t, func() error { return run(c) })
	if !strings.Contains(out, `"faults"`) {
		t.Errorf("faulted run reports no fault counters:\n%s", out)
	}
}

// TestRunMetricsPromExposition: -metrics-prom writes a parseable
// Prometheus exposition carrying the palette and memo counter families
// (counters gain the conventional _total suffix on export).
func TestRunMetricsPromExposition(t *testing.T) {
	c := testConfig()
	c.obs.metricsProm = filepath.Join(t.TempDir(), "fleet.prom")
	capture(t, func() error { return run(c) })
	f, err := os.Open(c.obs.metricsProm)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := obs.ParsePrometheus(f)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, want := range []string{
		"fb_palette_tiles_total",
		"fb_palette_promotions_total",
		"app_memo_hits_total",
		"app_memo_misses_total",
		"frames_total",
	} {
		if fams[want] == nil {
			t.Errorf("family %s missing from exposition", want)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*runConfig)
	}{
		{"unknown mode", func(c *runConfig) { c.mode = "warp-speed" }},
		{"unknown format", func(c *runConfig) { c.format = "xml" }},
		{"missing spec file", func(c *runConfig) { c.specPath = "no-such-spec.json" }},
		{"zero devices", func(c *runConfig) { c.devices = 0 }},
		{"negative duration", func(c *runConfig) { c.duration = -3 }},
		{"zero samples", func(c *runConfig) { c.samples = 0 }},
		{"negative fault scale", func(c *runConfig) { c.faults = -1 }},
		{"both pixel oracles", func(c *runConfig) { c.naivePix = true; c.noPal = true }},
		{"negative task timeout", func(c *runConfig) { c.timeout = -time.Second }},
		{"shard with csv", func(c *runConfig) { c.shard = "0/2"; c.format = "csv" }},
		{"shard with per-device", func(c *runConfig) { c.shard = "0/2"; c.perDev = true }},
		{"shard and merge together", func(c *runConfig) { c.shard = "0/2"; c.merge = true; c.shardIn = []string{"x"} }},
		{"malformed shard position", func(c *runConfig) { c.shard = "two/four" }},
		{"shard index out of range", func(c *runConfig) { c.shard = "4/4" }},
		{"merge without files", func(c *runConfig) { c.merge = true }},
		{"merge with csv", func(c *runConfig) { c.merge = true; c.shardIn = []string{"x"}; c.format = "csv" }},
		{"merge missing file", func(c *runConfig) { c.merge = true; c.shardIn = []string{"no-such-shard.json"} }},
		{"stray arguments", func(c *runConfig) { c.shardIn = []string{"stray.json"} }},
	}
	for _, tc := range cases {
		c := testConfig()
		tc.mutate(&c)
		if err := run(c); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestWriteSpecThenRun(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "cohort.json")
	c := testConfig()
	c.devices = 5
	c.seed = 9
	c.duration = 4
	c.writeTo = spec
	if err := run(c); err != nil {
		t.Fatalf("write-spec: %v", err)
	}
	c.writeTo = ""
	c.specPath = spec
	out := capture(t, func() error { return run(c) })
	if !strings.Contains(out, "\"aggregate\"") {
		t.Errorf("spec-driven run produced no aggregate:\n%s", out)
	}
}

// TestShardMergeMatchesDirect drives the CLI halves of a distributed
// run: N -shard invocations, one -merge-shards invocation, and requires
// the merged output to be byte-identical to the direct streaming run.
func TestShardMergeMatchesDirect(t *testing.T) {
	dir := t.TempDir()
	base := testConfig()
	base.devices = 11
	base.seed = 5
	base.workers = 2

	const shards = 3
	var files []string
	for i := 0; i < shards; i++ {
		c := base
		c.shard = fmt.Sprintf("%d/%d", i, shards)
		doc := capture(t, func() error { return run(c) })
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}
	merge := base
	merge.merge = true
	merge.shardIn = files
	got := capture(t, func() error { return run(merge) })

	direct := base
	direct.stream = true
	want := capture(t, func() error { return run(direct) })
	if got != want {
		t.Errorf("merged shard output differs from direct streaming run:\n got: %s\nwant: %s", got, want)
	}
}
