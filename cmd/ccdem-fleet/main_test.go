package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	errRun := fn()
	os.Stdout = old
	f.Close()
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestRunJSON(t *testing.T) {
	out := capture(t, func() error {
		return run(4, 2, 1, 3, "", 1024, "", "json", true, false, "", obsFlags{})
	})
	var doc struct {
		Devices   []json.RawMessage `json:"devices"`
		Aggregate struct {
			Devices     int     `json:"devices"`
			MeanSavedMW float64 `json:"mean_saved_mw"`
		} `json:"aggregate"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if doc.Aggregate.Devices != 4 || len(doc.Devices) != 4 {
		t.Errorf("devices = %d/%d, want 4", doc.Aggregate.Devices, len(doc.Devices))
	}
}

func TestRunCSV(t *testing.T) {
	out := capture(t, func() error {
		return run(3, 0, 1, 3, "section", 1024, "", "csv", false, false, "", obsFlags{})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want header + 3 rows\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "device,profile,") {
		t.Errorf("missing header: %s", lines[0])
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(3, 0, 1, 3, "warp-speed", 1024, "", "json", false, false, "", obsFlags{}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(3, 0, 1, 3, "", 1024, "", "xml", false, false, "", obsFlags{}); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(3, 0, 1, 3, "", 1024, "no-such-spec.json", "json", false, false, "", obsFlags{}); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestWriteSpecThenRun(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "cohort.json")
	if err := run(5, 0, 9, 4, "", 1024, "", "json", false, false, spec, obsFlags{}); err != nil {
		t.Fatalf("write-spec: %v", err)
	}
	out := capture(t, func() error {
		return run(5, 0, 9, 4, "", 1024, spec, "json", false, false, "", obsFlags{})
	})
	if !strings.Contains(out, "\"aggregate\"") {
		t.Errorf("spec-driven run produced no aggregate:\n%s", out)
	}
}
