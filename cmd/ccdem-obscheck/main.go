// Command ccdem-obscheck validates telemetry artifacts — the CI teeth
// behind the daemon's observability surfaces. It checks a Prometheus
// text exposition document against the strict in-repo parser (names,
// escapes, TYPE declarations, histogram bucket monotonicity and
// _sum/_count consistency) and a Chrome trace-event JSON document for
// structural expectations (minimum distinct process count, required span
// names).
//
// Examples:
//
//	curl -fsS localhost:7700/metrics | ccdem-obscheck -prom - -require svc_jobs_submitted_total
//	ccdem-obscheck -trace trace.json -min-pids 3 -spans dispatch,run,encode,merge
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ccdem/internal/obs"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccdem-obscheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	promPath := fs.String("prom", "", "Prometheus text exposition file to validate (- for stdin)")
	require := fs.String("require", "", "comma-separated metric family names that must be present (with -prom)")
	tracePath := fs.String("trace", "", "Chrome trace-event JSON file to validate (- for stdin)")
	minPids := fs.Int("min-pids", 0, "minimum distinct process ids among complete (ph=X) trace events")
	spans := fs.String("spans", "", "comma-separated span names the trace must contain")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *promPath == "" && *tracePath == "" {
		fmt.Fprintln(stderr, "ccdem-obscheck: nothing to check (want -prom and/or -trace)")
		return 2
	}
	if *promPath != "" {
		if err := checkProm(*promPath, *require, stdout); err != nil {
			fmt.Fprintf(stderr, "ccdem-obscheck: %v\n", err)
			return 1
		}
	}
	if *tracePath != "" {
		if err := checkTrace(*tracePath, *minPids, *spans, stdout); err != nil {
			fmt.Fprintf(stderr, "ccdem-obscheck: %v\n", err)
			return 1
		}
	}
	return 0
}

func open(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func checkProm(path, require string, stdout io.Writer) error {
	r, err := open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	fams, err := obs.ParsePrometheus(r)
	if err != nil {
		return err
	}
	for _, name := range splitList(require) {
		if fams[name] == nil {
			return fmt.Errorf("prom: required family %s absent", name)
		}
	}
	fmt.Fprintf(stdout, "ccdem-obscheck: prom ok (%d families)\n", len(fams))
	return nil
}

func checkTrace(path string, minPids int, spans string, stdout io.Writer) error {
	r, err := open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		PID  int    `json:"pid"`
	}
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return fmt.Errorf("trace: not a JSON event array: %w", err)
	}
	pids := map[int]bool{}
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		pids[ev.PID] = true
		names[ev.Name] = true
	}
	if len(pids) < minPids {
		return fmt.Errorf("trace: spans from %d processes, want at least %d", len(pids), minPids)
	}
	for _, name := range splitList(spans) {
		if !names[name] {
			return fmt.Errorf("trace: no %q span (have %d span events)", name, len(names))
		}
	}
	fmt.Fprintf(stdout, "ccdem-obscheck: trace ok (%d events, %d processes)\n", len(events), len(pids))
	return nil
}
