// Command ccdem-run executes a single measurement run — one application,
// one governor mode, one deterministic Monkey script — and exports its
// results for offline analysis: a JSON stats summary, optional CSV/JSON
// traces, and an optional end-of-run screenshot.
//
// Examples:
//
//	ccdem-run -app "Jelly Splash" -mode section+boost -duration 60
//	ccdem-run -app Facebook -mode baseline -csv run.csv -screenshot run.ppm
//	ccdem-run -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/buildinfo"
	"ccdem/internal/input"
	"ccdem/internal/report"
	"ccdem/internal/sim"
)

var modes = map[string]ccdem.GovernorMode{
	"baseline":      ccdem.GovernorOff,
	"section":       ccdem.GovernorSection,
	"section+boost": ccdem.GovernorSectionBoost,
	"naive":         ccdem.GovernorNaive,
	"e3":            ccdem.GovernorE3,
	"idle-timeout":  ccdem.GovernorIdleTimeout,
}

func main() {
	var (
		appName    = flag.String("app", "Jelly Splash", "catalog application to run")
		modeName   = flag.String("mode", "section+boost", "baseline | section | section+boost | naive | e3 | idle-timeout")
		duration   = flag.Int("duration", 60, "seconds of virtual time")
		seed       = flag.Int64("seed", 1, "Monkey script seed")
		samples    = flag.Int("samples", 9216, "metering grid pixels")
		csvPath    = flag.String("csv", "", "write aligned 1s-bucket traces to this CSV file")
		jsonPath   = flag.String("traces", "", "write native-resolution traces to this JSON file")
		screenshot = flag.String("screenshot", "", "write the final framebuffer to this PPM file")
		scriptIn   = flag.String("script", "", "replay this JSON script instead of generating one")
		scriptOut  = flag.String("save-script", "", "write the generated script to this JSON file")
		reportPath = flag.String("report", "", "write a full session report (markdown) to this file")
		appFile    = flag.String("app-file", "", "load custom workloads from this JSON file (see app.WriteParams format); -app then selects by name within it")
		list       = flag.Bool("list", false, "list catalog applications and exit")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "ccdem-run")
		return
	}

	if *list {
		for _, p := range app.Catalog() {
			fmt.Printf("%-16s %s\n", p.Name, p.Cat)
		}
		return
	}
	if err := run(*appName, *modeName, *duration, *seed, *samples,
		*csvPath, *jsonPath, *screenshot, *scriptIn, *scriptOut, *reportPath, *appFile); err != nil {
		fmt.Fprintf(os.Stderr, "ccdem-run: %v\n", err)
		os.Exit(1)
	}
}

func run(appName, modeName string, duration int, seed int64, samples int,
	csvPath, jsonPath, screenshot, scriptIn, scriptOut, reportPath, appFile string) error {
	mode, ok := modes[modeName]
	if !ok {
		return fmt.Errorf("unknown mode %q", modeName)
	}
	if duration <= 0 && scriptIn == "" {
		return fmt.Errorf("-duration must be positive, got %d", duration)
	}
	if samples <= 0 {
		return fmt.Errorf("-samples must be positive, got %d", samples)
	}
	p, err := resolveApp(appName, appFile)
	if err != nil {
		return err
	}
	dev, err := ccdem.NewDevice(ccdem.Config{Governor: mode, MeterSamples: samples})
	if err != nil {
		return err
	}
	appName = p.Name
	if _, err := dev.InstallApp(p); err != nil {
		return err
	}

	var script input.Script
	dur := sim.Time(duration) * sim.Second
	if scriptIn != "" {
		f, err := os.Open(scriptIn)
		if err != nil {
			return err
		}
		script, err = input.ReadScript(f)
		f.Close()
		if err != nil {
			return err
		}
		dur = script.Length
	} else {
		mk, err := input.NewMonkey(seed, input.DefaultMonkeyConfig())
		if err != nil {
			return err
		}
		script = mk.Script(dur, 720, 1280)
	}
	if scriptOut != "" {
		if err := writeFile(scriptOut, script.WriteJSON); err != nil {
			return err
		}
	}
	dev.PlayScript(script)
	dev.Run(dur)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dev.Stats()); err != nil {
		return err
	}

	if csvPath != "" {
		if err := writeFile(csvPath, func(w io.Writer) error {
			return dev.ExportTracesCSV(w, sim.Second)
		}); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := writeFile(jsonPath, dev.ExportTracesJSON); err != nil {
			return err
		}
	}
	if screenshot != "" {
		if err := writeFile(screenshot, dev.Screenshot); err != nil {
			return err
		}
	}
	if reportPath != "" {
		session := report.Session{
			Title:  fmt.Sprintf("%s under %s", appName, modeName),
			App:    appName,
			Stats:  dev.Stats(),
			Traces: dev.Traces(),
			Notes: []string{
				fmt.Sprintf("seed %d, %d metering pixels", seed, samples),
				fmt.Sprintf("script: %d gestures over %s", len(script.Gestures), script.Length),
			},
		}
		if err := writeFile(reportPath, func(w io.Writer) error {
			return report.Write(w, session)
		}); err != nil {
			return err
		}
	}
	return nil
}

// resolveApp finds the workload: from a custom JSON file when given
// (selecting by -app name, or the sole entry), otherwise from the
// built-in catalog.
func resolveApp(appName, appFile string) (app.Params, error) {
	if appFile == "" {
		p, ok := app.ByName(appName)
		if !ok {
			return app.Params{}, fmt.Errorf("app %q not in catalog (use -list)", appName)
		}
		return p, nil
	}
	f, err := os.Open(appFile)
	if err != nil {
		return app.Params{}, err
	}
	defer f.Close()
	ps, err := app.ReadParams(f)
	if err != nil {
		return app.Params{}, err
	}
	if len(ps) == 1 {
		return ps[0], nil
	}
	for _, p := range ps {
		if p.Name == appName {
			return p, nil
		}
	}
	return app.Params{}, fmt.Errorf("app %q not found in %s (%d workloads)", appName, appFile, len(ps))
}

// writeFile creates path and streams fn's output into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
