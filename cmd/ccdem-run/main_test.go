package main

import (
	"os"
	"path/filepath"
	"testing"

	"ccdem"
	"ccdem/internal/app"
)

func TestModesComplete(t *testing.T) {
	// Every governor mode is reachable from the CLI.
	want := map[ccdem.GovernorMode]bool{
		ccdem.GovernorOff: true, ccdem.GovernorSection: true,
		ccdem.GovernorSectionBoost: true, ccdem.GovernorNaive: true,
		ccdem.GovernorE3: true, ccdem.GovernorIdleTimeout: true,
	}
	got := map[ccdem.GovernorMode]bool{}
	for _, m := range modes {
		got[m] = true
	}
	for m := range want {
		if !got[m] {
			t.Errorf("mode %v not reachable from CLI", m)
		}
	}
}

func TestResolveAppFromCatalog(t *testing.T) {
	p, err := resolveApp("Jelly Splash", "")
	if err != nil || p.Name != "Jelly Splash" {
		t.Errorf("resolveApp catalog: %v %v", p.Name, err)
	}
	if _, err := resolveApp("nope", ""); err == nil {
		t.Error("unknown catalog app accepted")
	}
}

func TestResolveAppFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "apps.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	custom := []app.Params{
		{Name: "alpha", Cat: app.General, Style: app.StylePulse,
			IdleContentFPS: 1, IdleInvalidateFPS: 2, TouchContentFPS: 3, TouchInvalidateFPS: 4},
		{Name: "beta", Cat: app.Game, Style: app.StyleSprites,
			IdleContentFPS: 10, IdleInvalidateFPS: 60, TouchContentFPS: 20, TouchInvalidateFPS: 60,
			FullScreenRender: true},
	}
	if err := app.WriteParams(f, custom); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p, err := resolveApp("beta", path)
	if err != nil || p.Name != "beta" {
		t.Errorf("resolveApp by name: %v %v", p.Name, err)
	}
	if _, err := resolveApp("gamma", path); err == nil {
		t.Error("missing name in multi-app file accepted")
	}
	if _, err := resolveApp("x", filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}

	// Single-entry file: the sole workload is selected regardless of -app.
	single := filepath.Join(dir, "one.json")
	f2, _ := os.Create(single)
	if err := app.WriteParams(f2, custom[:1]); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	p, err = resolveApp("whatever", single)
	if err != nil || p.Name != "alpha" {
		t.Errorf("single-entry resolve: %v %v", p.Name, err)
	}
}

// TestRunRejectsBadInput: flag mistakes fail with a friendly error instead
// of panicking in the metering grid or the Monkey generator.
func TestRunRejectsBadInput(t *testing.T) {
	cases := []struct {
		name              string
		mode              string
		duration, samples int
	}{
		{"unknown mode", "turbo", 5, 1024},
		{"zero duration", "section", 0, 1024},
		{"negative duration", "section", -5, 1024},
		{"zero samples", "section", 5, 0},
		{"negative samples", "section", 5, -16},
	}
	for _, tc := range cases {
		err := run("Weather", tc.mode, tc.duration, 1, tc.samples, "", "", "", "", "", "", "")
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "t.csv")
	rep := filepath.Join(dir, "t.md")
	shot := filepath.Join(dir, "t.ppm")
	scr := filepath.Join(dir, "t.json")
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	devnull, _ := os.Open(os.DevNull)
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	err := run("Weather", "section", 5, 1, 2304, csv, "", shot, "", scr, rep, "")
	os.Stdout = old
	devnull.Close()
	null.Close()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, path := range []string{csv, rep, shot, scr} {
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty", path)
		}
	}
}
