// Command ccdem-scenario runs a multi-phase usage scenario from a JSON
// file under one or more governor configurations and reports per-phase
// power, battery impact and display quality.
//
// Usage:
//
//	ccdem-scenario -file day.json                 # baseline vs full system
//	ccdem-scenario -file day.json -mode section   # one configuration
//	ccdem-scenario -example > day.json            # print a starter file
//
// The scenario format is defined by internal/scenario: phases reference
// catalog apps by name or embed custom workloads (see app.WriteParams).
package main

import (
	"flag"
	"fmt"
	"os"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/battery"
	"ccdem/internal/buildinfo"
	"ccdem/internal/scenario"
	"ccdem/internal/sim"
)

var modes = map[string]ccdem.GovernorMode{
	"baseline":      ccdem.GovernorOff,
	"section":       ccdem.GovernorSection,
	"section+boost": ccdem.GovernorSectionBoost,
	"naive":         ccdem.GovernorNaive,
	"e3":            ccdem.GovernorE3,
	"idle-timeout":  ccdem.GovernorIdleTimeout,
}

func main() {
	file := flag.String("file", "", "scenario JSON file")
	mode := flag.String("mode", "", "run a single configuration instead of the baseline-vs-managed pair")
	example := flag.Bool("example", false, "print a starter scenario to stdout and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "ccdem-scenario")
		return
	}

	if *example {
		if err := printExample(); err != nil {
			fail(err)
		}
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "ccdem-scenario: -file is required (or -example)")
		os.Exit(2)
	}
	if err := run(*file, *mode); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ccdem-scenario: %v\n", err)
	os.Exit(1)
}

func printExample() error {
	get := func(name string) app.Params {
		p, ok := app.ByName(name)
		if !ok {
			panic("catalog changed: " + name)
		}
		return p
	}
	sc := scenario.Scenario{
		Name: "example evening",
		Phases: []scenario.Phase{
			{App: get("KakaoTalk"), Duration: 60 * sim.Second, Seed: 1},
			{App: get("Jelly Splash"), Duration: 60 * sim.Second, Seed: 2},
			{App: get("MX Player"), Duration: 60 * sim.Second},
		},
	}
	return sc.WriteJSON(os.Stdout)
}

func run(path, modeName string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sc, err := scenario.ReadScenario(f)
	f.Close()
	if err != nil {
		return err
	}

	if modeName != "" {
		mode, ok := modes[modeName]
		if !ok {
			return fmt.Errorf("unknown mode %q", modeName)
		}
		res, err := scenario.Run(ccdem.Config{Governor: mode}, sc)
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	}

	// Paired: baseline vs full system, plus battery impact.
	base, err := scenario.Run(ccdem.Config{Governor: ccdem.GovernorOff}, sc)
	if err != nil {
		return err
	}
	managed, err := scenario.Run(ccdem.Config{Governor: ccdem.GovernorSectionBoost}, sc)
	if err != nil {
		return err
	}
	fmt.Println("Baseline:")
	fmt.Print(base)
	fmt.Println("\nManaged (section + touch boosting):")
	fmt.Print(managed)

	var slices []battery.UsageSlice
	for i := range base.Phases {
		slices = append(slices, battery.UsageSlice{
			Name:       fmt.Sprintf("%d:%s", i+1, base.Phases[i].App),
			Weight:     base.Phases[i].Duration.Seconds(),
			BaselineMW: base.Phases[i].MeanPowerMW,
			ManagedMW:  managed.Phases[i].MeanPowerMW,
		})
	}
	est, err := battery.GalaxyS3Pack.Estimate(battery.Mix{Slices: slices})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(est)
	fmt.Printf("\n  display quality under management: %.1f%%\n", 100*managed.Total.DisplayQuality)
	return nil
}
