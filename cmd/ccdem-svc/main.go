// Command ccdem-svc is the campaign service daemon: a long-running HTTP
// server that accepts fleet cohort specs as asynchronous jobs, shards
// each campaign across worker subprocesses (one per shard, the daemon
// re-executing itself in -shard-worker mode), streams live per-job
// progress, and serves the centrally merged result — byte-identical to a
// single-process `ccdem-fleet -spec ... -stream` run of the same spec.
//
// Examples:
//
//	ccdem-svc -listen 127.0.0.1:7700
//	curl -s -d @job.json localhost:7700/api/jobs
//	curl -s localhost:7700/api/jobs/job-0001/watch
//	curl -s localhost:7700/api/jobs/job-0001/result
//
// SIGINT/SIGTERM stop admission, cancel running campaigns, and drain
// within -shutdown-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccdem/internal/buildinfo"
	"ccdem/internal/svc"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccdem-svc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:7700", "address to serve the job API on (port 0 picks a free port, reported on stderr)")
	maxJobs := fs.Int("max-jobs", 2, "campaigns running concurrently; further submissions queue")
	local := fs.Bool("local", false, "run shards in-process instead of one worker subprocess per shard")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "drain budget after SIGINT/SIGTERM before giving up on running jobs")
	shardWorker := fs.String("shard-worker", "", "internal: run one shard at position i/n — job document on stdin, shard document on stdout, progress on stderr")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Fprint(stdout, "ccdem-svc")
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *shardWorker != "" {
		if err := svc.RunWorker(ctx, *shardWorker, stdin, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
			return 1
		}
		return 0
	}

	runner := svc.Runner(svc.LocalRunner{})
	if !*local {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(stderr, "ccdem-svc: locating own executable for shard workers: %v (use -local)\n", err)
			return 1
		}
		runner = svc.ProcRunner{Exe: exe, Args: []string{"-shard-worker"}}
	}

	m := svc.NewManager(svc.Config{Runner: runner, MaxJobs: *maxJobs})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ccdem-svc: listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: svc.Handler(m)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	// Restore default signal handling so a second signal kills outright.
	stop()
	fmt.Fprintf(stderr, "ccdem-svc: shutting down (budget %v)\n", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	m.BeginShutdown()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "ccdem-svc: draining http: %v\n", err)
	}
	if err := m.Wait(sctx); err != nil {
		fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
		return 1
	}
	return 0
}
