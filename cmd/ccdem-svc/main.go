// Command ccdem-svc is the campaign service daemon: a long-running HTTP
// server that accepts fleet cohort specs as asynchronous jobs, shards
// each campaign across worker subprocesses (one per shard, the daemon
// re-executing itself in -shard-worker mode), streams live per-job
// progress, and serves the centrally merged result — byte-identical to a
// single-process `ccdem-fleet -spec ... -stream` run of the same spec.
//
// Examples:
//
//	ccdem-svc -listen 127.0.0.1:7700
//	curl -s -d @job.json localhost:7700/api/jobs
//	curl -s localhost:7700/api/jobs/job-0001/watch
//	curl -s localhost:7700/api/jobs/job-0001/result
//
// SIGINT/SIGTERM stop admission, cancel running campaigns, and drain
// within -shutdown-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccdem/internal/buildinfo"
	"ccdem/internal/obs"
	"ccdem/internal/svc"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccdem-svc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:7700", "address to serve the job API on (port 0 picks a free port, reported on stderr)")
	maxJobs := fs.Int("max-jobs", 2, "campaigns running concurrently; further submissions queue")
	local := fs.Bool("local", false, "run shards in-process instead of one worker subprocess per shard")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "drain budget after SIGINT/SIGTERM before giving up on running jobs")
	shardWorker := fs.String("shard-worker", "", "internal: run one shard at position i/n — job document on stdin, shard document on stdout, progress on stderr")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")
	debugAddr := fs.String("debug-addr", "", "optional address for the net/http/pprof profiling endpoints (off when empty)")
	stateDir := fs.String("state-dir", "", "directory for crash-safe job persistence: specs are journaled and campaigns checkpointed so a restarted daemon resumes incomplete jobs (off when empty)")
	checkpointEvery := fs.Int("checkpoint-every", 1, "completed shards between checkpoint writes under -state-dir")
	shardRetries := fs.Int("shard-retries", 3, "attempts per shard (first try included) before the campaign fails")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *checkpointEvery < 1 {
		fmt.Fprintf(stderr, "ccdem-svc: -checkpoint-every must be at least 1, got %d\n", *checkpointEvery)
		return 2
	}
	if *shardRetries < 1 {
		fmt.Fprintf(stderr, "ccdem-svc: -shard-retries must be at least 1, got %d\n", *shardRetries)
		return 2
	}
	if *version {
		buildinfo.Fprint(stdout, "ccdem-svc")
		return 0
	}
	logger, err := obs.NewLogger(stderr, *logFormat)
	if err != nil {
		fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *shardWorker != "" {
		if err := svc.RunWorker(ctx, *shardWorker, stdin, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
			return 1
		}
		return 0
	}

	runner := svc.Runner(svc.LocalRunner{})
	if !*local {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(stderr, "ccdem-svc: locating own executable for shard workers: %v (use -local)\n", err)
			return 1
		}
		runner = svc.ProcRunner{Exe: exe, Args: []string{"-shard-worker"}}
	}

	var store *svc.Store
	if *stateDir != "" {
		store, err = svc.OpenStore(*stateDir)
		if err != nil {
			fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
			return 1
		}
	}
	m := svc.NewManager(svc.Config{
		Runner:          runner,
		MaxJobs:         *maxJobs,
		Logger:          logger,
		Store:           store,
		CheckpointEvery: *checkpointEvery,
		Retry:           svc.RetryPolicy{MaxAttempts: *shardRetries},
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
		return 1
	}
	// The listen report stays the first stderr line — the smoke scripts
	// and tests parse the bound address out of it.
	fmt.Fprintf(stderr, "ccdem-svc: listening on http://%s\n", ln.Addr())
	// Resume journaled jobs after the listen line (tests parse stderr
	// order) but before serving, so recovered IDs can't collide with new
	// submissions.
	if store != nil {
		resumed, err := m.Recover()
		if err != nil {
			fmt.Fprintf(stderr, "ccdem-svc: recovering jobs: %v\n", err)
			return 1
		}
		if resumed > 0 {
			logger.Info("recovered incomplete jobs", "jobs", resumed, "dir", store.Dir())
		}
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "ccdem-svc: debug listener: %v\n", err)
			return 1
		}
		// An explicit mux rather than http.DefaultServeMux: profiling is
		// opt-in and stays off the job API listener.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(stderr, "ccdem-svc: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go http.Serve(dln, dmux)
	}
	srv := &http.Server{Handler: svc.Handler(m)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	// Restore default signal handling so a second signal kills outright.
	stop()
	fmt.Fprintf(stderr, "ccdem-svc: shutting down (budget %v)\n", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	m.BeginShutdown()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "ccdem-svc: draining http: %v\n", err)
	}
	if err := m.Wait(sctx); err != nil {
		fmt.Fprintf(stderr, "ccdem-svc: %v\n", err)
		return 1
	}
	return 0
}
