package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ccdem/internal/fleet"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
	"ccdem/internal/svc"
)

// TestMain doubles the test binary as its own shard worker: when the
// harness (ProcRunner) re-executes it with -shard-worker, run the real
// worker entry point instead of the test suite. This is what makes the
// multi-process tests below genuine subprocess runs.
func TestMain(m *testing.M) {
	for i, arg := range os.Args[1:] {
		if arg == "-shard-worker" || strings.HasPrefix(arg, "-shard-worker=") {
			os.Exit(realMain(os.Args[1+i:], os.Stdin, os.Stdout, os.Stderr))
		}
	}
	os.Exit(m.Run())
}

// testSpecDoc serializes a small deterministic cohort spec.
func testSpecDoc(t *testing.T, devices int) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := fleet.WriteSpec(&buf, fleet.Cohort{
		Devices:      devices,
		Seed:         7,
		Session:      2 * sim.Second,
		MeterSamples: 256,
	})
	if err != nil {
		t.Fatalf("WriteSpec: %v", err)
	}
	return buf.Bytes()
}

// procRunner returns a Runner that shards through real subprocesses of
// this test binary.
func procRunner() svc.ProcRunner {
	return svc.ProcRunner{Exe: os.Args[0], Args: []string{"-shard-worker"}}
}

// TestDaemonShardedMatchesDirect is the acceptance proof: a campaign
// sharded across separate worker processes, merged centrally, must be
// byte-identical to the single-process streaming run of the same spec.
func TestDaemonShardedMatchesDirect(t *testing.T) {
	doc := testSpecDoc(t, 24)
	m := svc.NewManager(svc.Config{Runner: procRunner(), MaxJobs: 2})
	defer m.Shutdown(context.Background())

	job, err := m.Submit(svc.JobSpec{Spec: doc, Shards: 3, Workers: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	var p svc.Progress
	for {
		if p = job.Progress(); p.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", p.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.State != svc.StateDone {
		t.Fatalf("state = %s (error %q), want done", p.State, p.Error)
	}
	if p.Done != 24 || p.ShardsDone != 3 {
		t.Fatalf("terminal progress = %+v, want 24 devices over 3 shards", p)
	}

	result, ok := job.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	var got bytes.Buffer
	if err := result.WriteJSON(&got, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	cohort, err := fleet.ReadSpec(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	cohort.Stream = true
	direct, err := cohort.Run(context.Background(), fleet.Pool{Workers: 4})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	var want bytes.Buffer
	if err := direct.WriteJSON(&want, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("multi-process sharded result differs from single-process run:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
}

// TestCampaignTraceMultiProcess is the telemetry acceptance proof: a
// campaign sharded across real worker subprocesses must assemble one
// Perfetto (Chrome trace-event) document with the daemon and one process
// per shard worker, carrying dispatch/run/encode/merge spans — the
// worker-side spans having crossed the wire inside the shard documents.
func TestCampaignTraceMultiProcess(t *testing.T) {
	m := svc.NewManager(svc.Config{Runner: procRunner(), MaxJobs: 1})
	defer m.Shutdown(context.Background())

	job, err := m.Submit(svc.JobSpec{Spec: testSpecDoc(t, 16), Shards: 2, Workers: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	var p svc.Progress
	for {
		if p = job.Progress(); p.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", p.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.State != svc.StateDone {
		t.Fatalf("state = %s (error %q), want done", p.State, p.Error)
	}
	if p.StageS[svc.StageRun] <= 0 {
		t.Errorf("no %s stage timing in terminal progress: %+v", svc.StageRun, p.StageS)
	}
	if _, ok := p.StageS[svc.StageMerge]; !ok {
		t.Errorf("no %s stage timing in terminal progress: %+v", svc.StageMerge, p.StageS)
	}
	if p.CPUS <= 0 {
		t.Errorf("no worker CPU recorded for a subprocess campaign: cpu_s = %v", p.CPUS)
	}

	var buf bytes.Buffer
	if err := job.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	spanPids := map[string]map[float64]bool{}
	pids := map[float64]bool{}
	for _, ev := range events {
		if ev["ph"] != "X" {
			continue
		}
		name, _ := ev["name"].(string)
		pid, _ := ev["pid"].(float64)
		pids[pid] = true
		if spanPids[name] == nil {
			spanPids[name] = map[float64]bool{}
		}
		spanPids[name][pid] = true
	}
	if len(pids) < 3 {
		t.Errorf("trace spans %d processes, want daemon + 2 shard workers", len(pids))
	}
	for _, name := range []string{"dispatch", "run", "encode", "merge"} {
		if len(spanPids[name]) == 0 {
			t.Errorf("trace has no %q span (families: %v)", name, spanPids)
		}
	}
	// The worker-side spans must come from distinct worker processes.
	for _, name := range []string{"run", "encode"} {
		if len(spanPids[name]) < 2 {
			t.Errorf("%q spans come from %d processes, want one per shard worker", name, len(spanPids[name]))
		}
	}
}

// TestWorkerModeRoundTrip drives the -shard-worker entry point directly
// through realMain, the way the daemon invokes it.
func TestWorkerModeRoundTrip(t *testing.T) {
	spec := svc.JobSpec{Spec: testSpecDoc(t, 10), Shards: 2}
	specDoc, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var merged []*fleet.Shard
	for i := 0; i < 2; i++ {
		var stdout, stderr bytes.Buffer
		code := realMain([]string{"-shard-worker", fmt.Sprintf("%d/2", i)},
			bytes.NewReader(specDoc), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("worker %d exited %d: %s", i, code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "ccdem-shard-progress ") {
			t.Errorf("worker %d emitted no progress lines: %q", i, stderr.String())
		}
		shard, err := fleet.DecodeShard(&stdout)
		if err != nil {
			t.Fatalf("worker %d output: %v", i, err)
		}
		merged = append(merged, shard)
	}
	result, err := fleet.MergeShards(merged)
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	if result.Aggregate.Devices != 10 {
		t.Fatalf("merged devices = %d, want 10", result.Aggregate.Devices)
	}
}

func TestWorkerModeRejectsBadInput(t *testing.T) {
	cases := []struct {
		name  string
		shard string
		stdin string
	}{
		{"bad position", "2/2", `{"spec": {"version":1,"devices":4,"profiles":[]}}`},
		{"malformed position", "x/y", `{}`},
		{"malformed spec", "0/1", `{"spec": nope`},
		{"unknown field", "0/1", `{"bogus": 1}`},
		{"shard count mismatch", "0/3", `{"spec": {"version":1,"devices":4,"profiles":[]}, "shards": 2}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := realMain([]string{"-shard-worker", tc.shard},
				strings.NewReader(tc.stdin), &stdout, &stderr)
			if code == 0 {
				t.Fatalf("worker accepted bad input, stderr: %s", stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("no diagnostic on stderr")
			}
		})
	}
}

// TestDaemonEndToEnd boots the real daemon loop (signal handling, HTTP
// serving, graceful drain) in-process on a free port and runs one
// subprocess-sharded campaign through the HTTP API.
func TestDaemonEndToEnd(t *testing.T) {
	// realMain reports the bound address on stderr; capture it through a
	// pipe so the test can find the port.
	stderrR, stderrW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{"-listen", "127.0.0.1:0", "-shutdown-timeout", "30s", "-log-format", "json"},
			strings.NewReader(""), io.Discard, stderrW)
	}()
	lines := make(chan string, 256)
	go func() {
		buf := make([]byte, 4096)
		var pending []byte
		for {
			n, err := stderrR.Read(buf)
			pending = append(pending, buf[:n]...)
			for {
				i := bytes.IndexByte(pending, '\n')
				if i < 0 {
					break
				}
				lines <- string(pending[:i])
				pending = pending[i+1:]
			}
			if err != nil {
				close(lines)
				return
			}
		}
	}()
	var base string
	select {
	case line := <-lines:
		i := strings.Index(line, "http://")
		if i < 0 {
			t.Fatalf("first daemon line %q does not report the listen address", line)
		}
		base = line[i:]
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported its listen address")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body, err := json.Marshal(svc.JobSpec{Spec: testSpecDoc(t, 12), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/api/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/jobs: %v", err)
	}
	var submitted svc.Progress
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/api/jobs/" + submitted.ID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("job status Cache-Control = %q, want no-store", cc)
		}
		var p svc.Progress
		json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if p.State.Terminal() {
			if p.State != svc.StateDone {
				t.Fatalf("job finished %s: %s", p.State, p.Error)
			}
			if p.StageS[svc.StageRun] <= 0 {
				t.Errorf("terminal progress carries no run stage timing: %+v", p)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", p.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Scrape /metrics and hold it to the exposition format: the in-repo
	// parser validates names, types, and histogram invariants.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text format: %v", err)
	}
	if f := fams["svc_jobs_submitted_total"]; f == nil || f.Type != "counter" ||
		f.Sample("svc_jobs_submitted_total", nil) == nil ||
		f.Sample("svc_jobs_submitted_total", nil).Value < 1 {
		t.Errorf("svc_jobs_submitted_total missing or zero: %+v", f)
	}
	if f := fams["svc_job_duration_s"]; f == nil || f.Type != "histogram" {
		t.Errorf("svc_job_duration_s histogram missing: %+v", f)
	}
	if f := fams["ccdem_build_info"]; f == nil {
		t.Error("ccdem_build_info missing from /metrics")
	}
	if f := fams["svc_job_state"]; f == nil ||
		f.Sample("svc_job_state", map[string]string{"job": submitted.ID, "state": "done"}) == nil {
		t.Errorf("svc_job_state{job=%q,state=\"done\"} missing", submitted.ID)
	}

	// The campaign trace endpoint serves the merged multi-process trace.
	resp, err = http.Get(base + "/api/jobs/" + submitted.ID + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	var events []map[string]any
	err = json.NewDecoder(resp.Body).Decode(&events)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("trace endpoint: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace endpoint returned an empty event array")
	}

	// SIGTERM the daemon (ourselves — signal.NotifyContext catches it)
	// and require a clean, prompt exit.
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down after SIGINT")
	}
	stderrW.Close()

	// With -log-format json the daemon's stderr (past the listen line)
	// carries structured records, including worker-subprocess records
	// relayed with job/shard correlation attrs.
	var all []string
	for line := range lines {
		all = append(all, line)
	}
	assertRecord := func(substrs ...string) {
		t.Helper()
		for _, line := range all {
			if !strings.HasPrefix(line, "{") {
				continue
			}
			ok := true
			for _, s := range substrs {
				if !strings.Contains(line, s) {
					ok = false
					break
				}
			}
			if ok {
				return
			}
		}
		t.Errorf("no JSON log record containing %q in daemon stderr:\n%s", substrs, strings.Join(all, "\n"))
	}
	assertRecord(`"msg":"job submitted"`, `"job":"`+submitted.ID+`"`)
	assertRecord(`"msg":"job finished"`, `"state":"done"`)
	assertRecord(`"msg":"shard complete"`, `"job":"`+submitted.ID+`"`, `"shard":`)
}

func TestBadLogFormatRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-log-format", "yaml"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "log format") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestDebugAddrServesPprof boots the daemon with the opt-in profiling
// listener and fetches a pprof endpoint from it.
func TestDebugAddrServesPprof(t *testing.T) {
	stderrR, stderrW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{"-listen", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"},
			strings.NewReader(""), io.Discard, stderrW)
	}()
	found := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrR)
		for sc.Scan() {
			if i := strings.Index(sc.Text(), "pprof on http://"); i >= 0 {
				found <- sc.Text()[i+len("pprof on "):]
				return
			}
		}
		close(found)
	}()
	var debugBase string
	select {
	case line, ok := <-found:
		if !ok {
			t.Fatal("daemon never reported the pprof address")
		}
		debugBase = line
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported the pprof address")
	}
	resp, err := http.Get(debugBase + "cmdline")
	if err != nil {
		t.Fatalf("GET pprof cmdline: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof cmdline = %d, %d bytes", resp.StatusCode, len(body))
	}
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down after SIGINT")
	}
	stderrW.Close()
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-version"}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "ccdem-svc ") {
		t.Fatalf("version output = %q", stdout.String())
	}
}

// directRunJSON runs the spec single-process in streaming mode — the
// byte-identity reference for the fault-injection tests.
func directRunJSON(t *testing.T, doc []byte) []byte {
	t.Helper()
	cohort, err := fleet.ReadSpec(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	cohort.Stream = true
	direct, err := cohort.Run(context.Background(), fleet.Pool{Workers: 2})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	var want bytes.Buffer
	if err := direct.WriteJSON(&want, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return want.Bytes()
}

// TestDaemonSurvivesWorkerCrash is the worker-loss acceptance proof with
// real subprocesses: a shard worker that dies mid-shard — SIGKILL at a
// chosen device index, a hard exit, or a truncated stdout document — is
// re-dispatched, and the campaign still merges to the exact bytes of the
// unfaulted single-process run. The crash plan is armed through a file
// so exactly one attempt crashes and the retry runs clean.
func TestDaemonSurvivesWorkerCrash(t *testing.T) {
	cases := []struct {
		name string
		mode string
	}{
		// SIGKILL after 2 completed devices: the kill -9-mid-shard case.
		{"sigkill mid shard", "shard=1,after=2,mode=kill"},
		// Hard exit mid-shard: a worker that died with a status.
		{"exit code mid shard", "shard=1,after=2,mode=exit:3"},
		// Stdout cut off mid-document: the corrupt-shard-doc case.
		{"truncated shard doc", "shard=1,mode=truncate:40"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			armFile := filepath.Join(t.TempDir(), "crash-armed")
			if err := os.WriteFile(armFile, []byte("armed"), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Setenv(svc.CrashEnv, tc.mode+",file="+armFile)

			doc := testSpecDoc(t, 24)
			m := svc.NewManager(svc.Config{
				Runner: procRunner(),
				Retry:  svc.RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond},
			})
			defer m.Shutdown(context.Background())
			job, err := m.Submit(svc.JobSpec{Spec: doc, Shards: 3, Workers: 2})
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			deadline := time.Now().Add(60 * time.Second)
			var p svc.Progress
			for {
				if p = job.Progress(); p.State.Terminal() {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job stuck in state %s", p.State)
				}
				time.Sleep(10 * time.Millisecond)
			}
			if p.State != svc.StateDone {
				t.Fatalf("state = %s (error %q), want done despite the crash", p.State, p.Error)
			}
			if p.Retries < 1 {
				t.Errorf("Progress.Retries = %d, want at least one re-dispatch", p.Retries)
			}
			if _, err := os.Stat(armFile); !os.IsNotExist(err) {
				t.Errorf("crash never fired: arming file still present (%v)", err)
			}

			result, ok := job.Result()
			if !ok {
				t.Fatal("done job has no result")
			}
			var got bytes.Buffer
			if err := result.WriteJSON(&got, false); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			if want := directRunJSON(t, doc); !bytes.Equal(got.Bytes(), want) {
				t.Errorf("crash-recovered campaign differs from unfaulted run:\n got: %s\nwant: %s", got.Bytes(), want)
			}
		})
	}
}

// TestWorkerRejectsMalformedCrashPlan: a typo'd chaos plan must fail the
// worker loudly, not silently run a clean campaign.
func TestWorkerRejectsMalformedCrashPlan(t *testing.T) {
	t.Setenv(svc.CrashEnv, "shard=1,mode=explode")
	spec := svc.JobSpec{Spec: testSpecDoc(t, 4)}
	specDoc, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-shard-worker", "0/1"}, bytes.NewReader(specDoc), &stdout, &stderr)
	if code == 0 {
		t.Fatalf("worker accepted malformed crash plan, stderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "crash plan") {
		t.Errorf("stderr = %q, want a crash-plan diagnostic", stderr.String())
	}
}

// TestDaemonFlagValidation: the fault-tolerance flags reject nonsense
// with usage exits.
func TestDaemonFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero checkpoint cadence", []string{"-state-dir", "x", "-checkpoint-every", "0"}, "-checkpoint-every"},
		{"zero retries", []string{"-shard-retries", "0"}, "-shard-retries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := realMain(tc.args, strings.NewReader(""), &stdout, &stderr); code != 2 {
				t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr = %q, want mention of %s", stderr.String(), tc.want)
			}
		})
	}
}

// TestDaemonStateDirResume boots the real daemon with -state-dir, parks
// a campaign behind a crashing worker long enough to checkpoint nothing,
// kills the daemon's jobs via SIGTERM drain, then boots a second daemon
// over the same state dir and watches the SAME job ID finish with a
// byte-identical result — the end-to-end daemon-loss resume path.
func TestDaemonStateDirResume(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "state")
	doc := testSpecDoc(t, 24)
	want := directRunJSON(t, doc)

	startDaemon := func() (base string, sigint func(), exited chan int) {
		stderrR, stderrW, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		exited = make(chan int, 1)
		go func() {
			exited <- realMain([]string{
				"-listen", "127.0.0.1:0",
				"-state-dir", stateDir,
				"-checkpoint-every", "1",
				"-shutdown-timeout", "30s",
			}, strings.NewReader(""), io.Discard, stderrW)
			stderrW.Close()
		}()
		sc := bufio.NewScanner(stderrR)
		lineCh := make(chan string, 1)
		go func() {
			if sc.Scan() {
				lineCh <- sc.Text()
			}
			close(lineCh)
			// Keep draining so daemon writes never block.
			for sc.Scan() {
			}
		}()
		select {
		case line := <-lineCh:
			i := strings.Index(line, "http://")
			if i < 0 {
				t.Fatalf("first daemon line %q does not report the listen address", line)
			}
			base = line[i:]
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never reported its listen address")
		}
		proc, err := os.FindProcess(os.Getpid())
		if err != nil {
			t.Fatal(err)
		}
		return base, func() { proc.Signal(os.Interrupt) }, exited
	}

	// Daemon 1: submit, wait for at least one shard to checkpoint, drain.
	base, sigint, exited := startDaemon()
	body, err := json.Marshal(svc.JobSpec{Spec: doc, Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/jobs: %v", err)
	}
	var submitted svc.Progress
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	ckptPath := filepath.Join(stateDir, submitted.ID+".ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckptPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared at %s", ckptPath)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// "Crash" daemon 1. SIGTERM stands in for kill -9 here because both
	// daemons share this test process; the no-warning hard-kill variant
	// is covered by scripts/svc_chaos.sh. Either way the journal and
	// checkpoint stay: only a *user* cancel removes state.
	sigint()
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("daemon 1 exited %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon 1 did not exit")
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("checkpoint did not survive the daemon: %v", err)
	}

	// Daemon 2 over the same state dir: the job must come back under its
	// original ID and run to completion.
	base, sigint, exited = startDaemon()
	deadline = time.Now().Add(60 * time.Second)
	var p svc.Progress
	for {
		resp, err := http.Get(base + "/api/jobs/" + submitted.ID)
		if err != nil {
			t.Fatalf("GET recovered job: %v", err)
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			t.Fatalf("recovered daemon does not know job %s", submitted.ID)
		}
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatalf("decoding progress: %v", err)
		}
		resp.Body.Close()
		if p.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in state %s", p.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.State != svc.StateDone {
		t.Fatalf("recovered job finished %s: %s", p.State, p.Error)
	}
	if p.ResumedShards < 1 {
		t.Errorf("ResumedShards = %d, want at least the checkpointed shard", p.ResumedShards)
	}
	resp, err = http.Get(base + "/api/jobs/" + submitted.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d, %v", resp.StatusCode, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed daemon result differs from unfaulted run:\n got: %s\nwant: %s", got, want)
	}
	// Terminal cleanup: nothing left to resurrect on a third boot.
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("state dir not cleaned after completion: %s", e.Name())
	}
	sigint()
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("daemon 2 exited %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon 2 did not exit")
	}
}
