package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"ccdem/internal/fleet"
	"ccdem/internal/sim"
	"ccdem/internal/svc"
)

// TestMain doubles the test binary as its own shard worker: when the
// harness (ProcRunner) re-executes it with -shard-worker, run the real
// worker entry point instead of the test suite. This is what makes the
// multi-process tests below genuine subprocess runs.
func TestMain(m *testing.M) {
	for i, arg := range os.Args[1:] {
		if arg == "-shard-worker" || strings.HasPrefix(arg, "-shard-worker=") {
			os.Exit(realMain(os.Args[1+i:], os.Stdin, os.Stdout, os.Stderr))
		}
	}
	os.Exit(m.Run())
}

// testSpecDoc serializes a small deterministic cohort spec.
func testSpecDoc(t *testing.T, devices int) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := fleet.WriteSpec(&buf, fleet.Cohort{
		Devices:      devices,
		Seed:         7,
		Session:      2 * sim.Second,
		MeterSamples: 256,
	})
	if err != nil {
		t.Fatalf("WriteSpec: %v", err)
	}
	return buf.Bytes()
}

// procRunner returns a Runner that shards through real subprocesses of
// this test binary.
func procRunner() svc.ProcRunner {
	return svc.ProcRunner{Exe: os.Args[0], Args: []string{"-shard-worker"}}
}

// TestDaemonShardedMatchesDirect is the acceptance proof: a campaign
// sharded across separate worker processes, merged centrally, must be
// byte-identical to the single-process streaming run of the same spec.
func TestDaemonShardedMatchesDirect(t *testing.T) {
	doc := testSpecDoc(t, 24)
	m := svc.NewManager(svc.Config{Runner: procRunner(), MaxJobs: 2})
	defer m.Shutdown(context.Background())

	job, err := m.Submit(svc.JobSpec{Spec: doc, Shards: 3, Workers: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	var p svc.Progress
	for {
		if p = job.Progress(); p.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", p.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.State != svc.StateDone {
		t.Fatalf("state = %s (error %q), want done", p.State, p.Error)
	}
	if p.Done != 24 || p.ShardsDone != 3 {
		t.Fatalf("terminal progress = %+v, want 24 devices over 3 shards", p)
	}

	result, ok := job.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	var got bytes.Buffer
	if err := result.WriteJSON(&got, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	cohort, err := fleet.ReadSpec(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	cohort.Stream = true
	direct, err := cohort.Run(context.Background(), fleet.Pool{Workers: 4})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	var want bytes.Buffer
	if err := direct.WriteJSON(&want, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("multi-process sharded result differs from single-process run:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
}

// TestWorkerModeRoundTrip drives the -shard-worker entry point directly
// through realMain, the way the daemon invokes it.
func TestWorkerModeRoundTrip(t *testing.T) {
	spec := svc.JobSpec{Spec: testSpecDoc(t, 10), Shards: 2}
	specDoc, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var merged []*fleet.Shard
	for i := 0; i < 2; i++ {
		var stdout, stderr bytes.Buffer
		code := realMain([]string{"-shard-worker", fmt.Sprintf("%d/2", i)},
			bytes.NewReader(specDoc), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("worker %d exited %d: %s", i, code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "ccdem-shard-progress ") {
			t.Errorf("worker %d emitted no progress lines: %q", i, stderr.String())
		}
		shard, err := fleet.DecodeShard(&stdout)
		if err != nil {
			t.Fatalf("worker %d output: %v", i, err)
		}
		merged = append(merged, shard)
	}
	result, err := fleet.MergeShards(merged)
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	if result.Aggregate.Devices != 10 {
		t.Fatalf("merged devices = %d, want 10", result.Aggregate.Devices)
	}
}

func TestWorkerModeRejectsBadInput(t *testing.T) {
	cases := []struct {
		name  string
		shard string
		stdin string
	}{
		{"bad position", "2/2", `{"spec": {"version":1,"devices":4,"profiles":[]}}`},
		{"malformed position", "x/y", `{}`},
		{"malformed spec", "0/1", `{"spec": nope`},
		{"unknown field", "0/1", `{"bogus": 1}`},
		{"shard count mismatch", "0/3", `{"spec": {"version":1,"devices":4,"profiles":[]}, "shards": 2}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := realMain([]string{"-shard-worker", tc.shard},
				strings.NewReader(tc.stdin), &stdout, &stderr)
			if code == 0 {
				t.Fatalf("worker accepted bad input, stderr: %s", stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("no diagnostic on stderr")
			}
		})
	}
}

// TestDaemonEndToEnd boots the real daemon loop (signal handling, HTTP
// serving, graceful drain) in-process on a free port and runs one
// subprocess-sharded campaign through the HTTP API.
func TestDaemonEndToEnd(t *testing.T) {
	// realMain reports the bound address on stderr; capture it through a
	// pipe so the test can find the port.
	stderrR, stderrW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{"-listen", "127.0.0.1:0", "-shutdown-timeout", "30s"},
			strings.NewReader(""), io.Discard, stderrW)
	}()
	lines := make(chan string, 16)
	go func() {
		buf := make([]byte, 4096)
		var pending []byte
		for {
			n, err := stderrR.Read(buf)
			pending = append(pending, buf[:n]...)
			for {
				i := bytes.IndexByte(pending, '\n')
				if i < 0 {
					break
				}
				lines <- string(pending[:i])
				pending = pending[i+1:]
			}
			if err != nil {
				close(lines)
				return
			}
		}
	}()
	var base string
	select {
	case line := <-lines:
		i := strings.Index(line, "http://")
		if i < 0 {
			t.Fatalf("first daemon line %q does not report the listen address", line)
		}
		base = line[i:]
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported its listen address")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body, err := json.Marshal(svc.JobSpec{Spec: testSpecDoc(t, 12), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/api/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/jobs: %v", err)
	}
	var submitted svc.Progress
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/api/jobs/" + submitted.ID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var p svc.Progress
		json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if p.State.Terminal() {
			if p.State != svc.StateDone {
				t.Fatalf("job finished %s: %s", p.State, p.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", p.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGTERM the daemon (ourselves — signal.NotifyContext catches it)
	// and require a clean, prompt exit.
	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down after SIGINT")
	}
	stderrW.Close()
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-version"}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "ccdem-svc ") {
		t.Fatalf("version output = %q", stdout.String())
	}
}
