// Command ccdem regenerates the figures and tables of "Content-centric
// Display Energy Management for Mobile Devices" (DAC 2014) on the
// simulated device.
//
// Usage:
//
//	ccdem [flags] <experiment>
//
// where <experiment> is one of: fig2, fig3, fig6, fig7, fig8, fig9,
// fig10, fig11, table1, summary, chaos, all. "summary" prints the
// conclusion's headline numbers; "chaos" measures display quality under
// injected faults (scaled by -faults), hardened vs unhardened; "all" runs
// everything (fig9–11, table1 and summary share one measurement
// campaign).
//
// Flags:
//
//	-duration N    seconds of virtual time per run (default 180, the paper's ≈3 min)
//	-seed N        Monkey script seed (default 1)
//	-samples N     governor comparison-grid pixels (default 9216)
//	-workers N     concurrent app runs in campaign experiments (default all cores)
//	-trace-out F   write a Chrome trace-event JSON (Perfetto-loadable) of every run
//	-metrics       dump the merged metrics registry to stderr after the experiment
//	-pprof F       write a CPU profile of the whole invocation
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"

	"ccdem/internal/buildinfo"
	"ccdem/internal/experiments"
	"ccdem/internal/fault"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

func main() {
	duration := flag.Int("duration", 180, "seconds of virtual time per run")
	seed := flag.Int64("seed", 1, "Monkey script seed")
	samples := flag.Int("samples", 9216, "governor comparison-grid pixels")
	workers := flag.Int("workers", 0, "concurrent app runs in campaign experiments (0 = all cores); results are identical at any value")
	faults := flag.Float64("faults", 1, "fault intensity for the chaos experiment: scales the default fault plan (0 disables, 1 = reference mix)")
	noPal := flag.Bool("no-palette", false, "disable palette-compressed tile surfaces and the app state memo; results are byte-identical to the default palette path — this is the palette layer's differential-testing oracle")
	naivePix := flag.Bool("naive-pixels", false, "force the brute-force pixel pipeline (no tile signatures, no palettes); results are byte-identical to the default tile path — this is the tile layer's differential-testing oracle")
	csvPath := flag.String("csv", "", "also write the experiment's data rows as CSV to this file (table experiments only)")
	svgDir := flag.String("svg", "", "also write the experiment's figures as SVG files into this directory")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of every run to this file (open in Perfetto or chrome://tracing)")
	metrics := flag.Bool("metrics", false, "dump the merged metrics registry to stderr after the experiment")
	pprofOut := flag.String("pprof", "", "write a CPU profile of the whole invocation to this file")
	flag.Usage = usage
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "ccdem")
		return
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccdem: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccdem: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	opts := experiments.Options{
		Duration:     sim.Time(*duration) * sim.Second,
		Seed:         *seed,
		MeterSamples: *samples,
		Parallelism:  *workers,
		NoPalette:    *noPal,
		NaivePixels:  *naivePix,
	}
	if *traceOut != "" || *metrics {
		opts.Obs = obs.NewCollector(0)
	}
	if err := run(flag.Arg(0), opts, *faults, *csvPath, *svgDir); err != nil {
		fmt.Fprintf(os.Stderr, "ccdem: %v\n", err)
		os.Exit(1)
	}
	if err := writeObs(opts.Obs, *traceOut, *metrics); err != nil {
		fmt.Fprintf(os.Stderr, "ccdem: %v\n", err)
		os.Exit(1)
	}
}

// writeObs exports the collected observability: the Perfetto trace to
// traceOut and, with metrics set, the merged registry dump to stderr.
func writeObs(c *obs.Collector, traceOut string, metrics bool) error {
	if c == nil {
		return nil
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := c.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d tracks written to %s (open in https://ui.perfetto.dev)\n",
			len(c.Tracks()), traceOut)
	}
	if metrics {
		fmt.Fprintln(os.Stderr, "\nmerged metrics:")
		if err := c.WriteMetrics(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: ccdem [flags] <experiment>

experiments:
  fig2     frame-rate traces, Facebook vs Jelly Splash (baseline)
  fig3     meaningful vs redundant frame rate, 30 apps
  fig6     metering accuracy & cost vs compared pixels
  fig7     content/refresh traces under section control and +boost
  fig8     power-save traces, Facebook and Jelly Splash
  fig9     per-app power saving (full campaign)
  fig10    estimated vs actual content rate (full campaign)
  fig11    display quality per app (full campaign)
  table1   summary table (full campaign)
  summary  conclusion headline numbers (full campaign)
  compare  extension: this scheme vs E3-style frame-rate adaptation [16]
  frontier extension: quality-power frontier vs OLED DVS [3,4,15]
  scaling  extension: the scheme on 90 Hz / 120 Hz LTPO panels
  chaos    extension: display quality under injected faults, hardened vs unhardened (-faults scales intensity)
  validate qualitative shape checks against the paper (exit 1 on failure)
  all      everything above except compare, chaos and validate

flags:
`)
	flag.PrintDefaults()
}

// csvWriter is implemented by the table-shaped experiment results.
type csvWriter interface {
	WriteCSV(io.Writer) error
}

// saveCSV writes r's data rows to path when both are set.
func saveCSV(path string, r csvWriter) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// saveSVG writes one figure file into dir when set.
func saveSVG(dir, filename string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, filename))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(name string, opts experiments.Options, faults float64, csvPath, svgDir string) error {
	if opts.Duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", opts.Duration)
	}
	if opts.MeterSamples <= 0 {
		return fmt.Errorf("-samples must be positive, got %d", opts.MeterSamples)
	}
	if faults < 0 {
		return fmt.Errorf("-faults must be non-negative, got %g", faults)
	}
	if opts.NaivePixels && opts.NoPalette {
		return fmt.Errorf("-naive-pixels already runs without palettes; drop -no-palette (each flag selects one differential oracle)")
	}
	plan := fault.DefaultPlan().Scale(faults)
	opts.FaultPlan = &plan
	needSuite := map[string]bool{
		"fig9": true, "fig10": true, "fig11": true, "table1": true, "summary": true, "all": true,
	}
	var suite *experiments.Suite
	if needSuite[name] {
		fmt.Fprintf(os.Stderr, "running 30-app campaign (3 configurations × %v each)...\n", opts.Duration)
		var err error
		suite, err = experiments.RunSuite(opts)
		if err != nil {
			return err
		}
	}
	emit := func(s string) { fmt.Println(s) }
	switch name {
	case "fig2":
		r, err := experiments.Fig2(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		if err := saveSVG(svgDir, "fig2.svg", r.WriteSVG); err != nil {
			return err
		}
	case "fig3":
		r, err := experiments.Fig3(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		if err := saveCSV(csvPath, r); err != nil {
			return err
		}
		if err := saveSVG(svgDir, "fig3.svg", r.WriteSVG); err != nil {
			return err
		}
	case "fig6":
		r, err := experiments.Fig6(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		if err := saveCSV(csvPath, r); err != nil {
			return err
		}
		if err := saveSVG(svgDir, "fig6.svg", r.WriteSVG); err != nil {
			return err
		}
	case "fig7":
		r, err := experiments.Fig7(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		for i := range r.Traces {
			i := i
			if err := saveSVG(svgDir, fmt.Sprintf("fig7-%c.svg", 'a'+i), func(w io.Writer) error {
				return r.WriteSVG(w, i)
			}); err != nil {
				return err
			}
		}
	case "fig8":
		r, err := experiments.Fig8(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		if err := saveSVG(svgDir, "fig8.svg", r.WriteSVG); err != nil {
			return err
		}
	case "fig9":
		emit(suite.Fig9())
		if err := saveCSV(csvPath, suite); err != nil {
			return err
		}
		if err := saveSVG(svgDir, "fig9.svg", suite.WriteFig9SVG); err != nil {
			return err
		}
	case "fig10":
		emit(suite.Fig10())
	case "fig11":
		emit(suite.Fig11())
		if err := saveSVG(svgDir, "fig11.svg", suite.WriteFig11SVG); err != nil {
			return err
		}
	case "table1":
		emit(suite.Table1String())
	case "scaling":
		r, err := experiments.Scaling(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		if err := saveCSV(csvPath, r); err != nil {
			return err
		}
	case "frontier":
		r, err := experiments.Frontier(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		if err := saveCSV(csvPath, r); err != nil {
			return err
		}
	case "validate":
		r, err := experiments.Validate(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		if !r.Pass() {
			os.Exit(1)
		}
	case "compare":
		fmt.Fprintf(os.Stderr, "running scheme comparison (30 apps × 4 configurations × %v)...\n", opts.Duration)
		r, err := experiments.CompareSchemes(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		if err := saveCSV(csvPath, r); err != nil {
			return err
		}
	case "chaos":
		fmt.Fprintf(os.Stderr, "running chaos campaign (30 apps × 3 configurations × %v, fault scale %g)...\n",
			opts.Duration, faults)
		r, err := experiments.Chaos(opts)
		if err != nil {
			return err
		}
		emit(r.String())
		if err := saveCSV(csvPath, r); err != nil {
			return err
		}
	case "summary":
		emitSummary(suite)
	case "all":
		fig2, err := experiments.Fig2(opts)
		if err != nil {
			return err
		}
		emit(fig2.String())
		if err := saveSVG(svgDir, "fig2.svg", fig2.WriteSVG); err != nil {
			return err
		}
		fig3, err := experiments.Fig3(opts)
		if err != nil {
			return err
		}
		emit(fig3.String())
		if err := saveSVG(svgDir, "fig3.svg", fig3.WriteSVG); err != nil {
			return err
		}
		fig6, err := experiments.Fig6(opts)
		if err != nil {
			return err
		}
		emit(fig6.String())
		if err := saveSVG(svgDir, "fig6.svg", fig6.WriteSVG); err != nil {
			return err
		}
		fig7, err := experiments.Fig7(opts)
		if err != nil {
			return err
		}
		emit(fig7.String())
		for i := range fig7.Traces {
			i := i
			if err := saveSVG(svgDir, fmt.Sprintf("fig7-%c.svg", 'a'+i), func(w io.Writer) error {
				return fig7.WriteSVG(w, i)
			}); err != nil {
				return err
			}
		}
		fig8, err := experiments.Fig8(opts)
		if err != nil {
			return err
		}
		emit(fig8.String())
		if err := saveSVG(svgDir, "fig8.svg", fig8.WriteSVG); err != nil {
			return err
		}
		emit(suite.Fig9())
		emit(suite.Fig10())
		emit(suite.Fig11())
		emit(suite.Table1String())
		emitSummary(suite)
		if err := saveSVG(svgDir, "fig9.svg", suite.WriteFig9SVG); err != nil {
			return err
		}
		if err := saveSVG(svgDir, "fig11.svg", suite.WriteFig11SVG); err != nil {
			return err
		}
		if err := saveCSV(csvPath, suite); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

func emitSummary(s *experiments.Suite) {
	saved, quality := s.OverallSummary()
	fmt.Printf("Conclusion summary (all 30 apps, section + touch boosting):\n")
	fmt.Printf("  mean power reduction: %.0f mW (paper: ≈230 mW)\n", saved)
	fmt.Printf("  mean display quality: %.1f%% (paper: ≈95%%)\n", quality)
}
