package main

import (
	"strings"
	"testing"

	"ccdem/internal/experiments"
	"ccdem/internal/sim"
)

// TestRunRejectsBadInput: flag mistakes produce friendly errors instead of
// panics deep inside the metering grid or the Monkey generator.
func TestRunRejectsBadInput(t *testing.T) {
	good := experiments.Options{Duration: 5 * sim.Second, Seed: 1, MeterSamples: 1024}
	cases := []struct {
		name   string
		exp    string
		opts   experiments.Options
		faults float64
	}{
		{"unknown experiment", "fig99", good, 1},
		{"zero duration", "fig6", experiments.Options{Seed: 1, MeterSamples: 1024}, 1},
		{"negative duration", "fig6", experiments.Options{Duration: -sim.Second, MeterSamples: 1024}, 1},
		{"zero samples", "fig6", experiments.Options{Duration: 5 * sim.Second}, 1},
		{"negative samples", "fig6", experiments.Options{Duration: 5 * sim.Second, MeterSamples: -3}, 1},
		{"negative fault scale", "chaos", good, -0.5},
		{"both pixel oracles", "fig6", experiments.Options{Duration: 5 * sim.Second, Seed: 1, MeterSamples: 1024, NaivePixels: true, NoPalette: true}, 1},
	}
	for _, tc := range cases {
		if err := run(tc.exp, tc.opts, tc.faults, "", ""); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRunUnknownExperimentNamesIt(t *testing.T) {
	err := run("figonehundred", experiments.Options{Duration: sim.Second, MeterSamples: 64}, 1, "", "")
	if err == nil || !strings.Contains(err.Error(), "figonehundred") {
		t.Errorf("error does not name the experiment: %v", err)
	}
}
