package ccdem_test

import (
	"fmt"
	"log"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/core"
	"ccdem/internal/display"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

// Example reproduces the library's core loop: install a catalog workload,
// drive it with a deterministic Monkey script, and compare the managed
// configuration against the Android baseline. Because the whole stack is
// deterministic, even the output is exact.
func Example() {
	monkey, err := input.NewMonkey(42, input.DefaultMonkeyConfig())
	if err != nil {
		log.Fatal(err)
	}
	script := monkey.Script(30*sim.Second, 720, 1280)
	game, _ := app.ByName("Jelly Splash")

	run := func(mode ccdem.GovernorMode) ccdem.Stats {
		dev, err := ccdem.NewDevice(ccdem.Config{Governor: mode})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dev.InstallApp(game); err != nil {
			log.Fatal(err)
		}
		dev.PlayScript(script)
		dev.Run(30 * sim.Second)
		return dev.Stats()
	}

	base := run(ccdem.GovernorOff)
	full := run(ccdem.GovernorSectionBoost)
	fmt.Printf("baseline: %.0f mW at %.0f Hz\n", base.MeanPowerMW, base.MeanRefreshHz)
	fmt.Printf("managed:  saved %.0f mW, quality %.0f%%\n",
		base.MeanPowerMW-full.MeanPowerMW, 100*full.DisplayQuality)
	// Output:
	// baseline: 1023 mW at 60 Hz
	// managed:  saved 290 mW, quality 99%
}

// ExampleNewDevice shows the zero-configuration path: the default Config
// is the paper's Galaxy S3 platform.
func ExampleNewDevice() {
	dev, err := ccdem.NewDevice(ccdem.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dev.Panel().Levels())
	fmt.Println(dev.Meter().GridSamples())
	// Output:
	// [20 24 30 40 60]
	// 9216
}

// ExampleDevice_Stats demonstrates reading a governed run's summary.
func ExampleDevice_Stats() {
	dev, err := ccdem.NewDevice(ccdem.Config{Governor: ccdem.GovernorSection})
	if err != nil {
		log.Fatal(err)
	}
	player, _ := app.ByName("MX Player")
	if _, err := dev.InstallApp(player); err != nil {
		log.Fatal(err)
	}
	dev.Run(30 * sim.Second) // hands-off video playback
	st := dev.Stats()
	fmt.Printf("content %.0f fps displayed at %.0f Hz, quality %.0f%%\n",
		st.ContentRate, float64(dev.Panel().Rate()), 100*st.DisplayQuality)
	// Output:
	// content 24 fps displayed at 30 Hz, quality 100%
}

// ExampleConfig_refreshLevels shows the section table deriving itself from
// a custom panel (the device-independence of Eq. 1).
func ExampleConfig_refreshLevels() {
	eng := sim.NewEngine()
	panel, err := display.NewPanel(eng, display.Config{Levels: display.ModernLTPO.Levels})
	if err != nil {
		log.Fatal(err)
	}
	table, err := core.NewSectionTable(panel.Levels())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.Thresholds())
	fmt.Println(table.RateFor(24), table.RateFor(50), table.RateFor(100))
	// Output:
	// [0.5 5.5 17 27 39 54 75]
	// 30 60 120
}
