// Appswitch: the governor adapting across an app switch. The session
// starts in a 60 fps casual game (high content rate → high refresh),
// then the user switches to a mostly-static messenger (content rate near
// zero → the governor walks the panel down to 20 Hz). The power trace
// steps down with it — content-centric management needs no per-app
// configuration, it just follows the pixels.
//
// Run with:
//
//	go run ./examples/appswitch
package main

import (
	"fmt"
	"log"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/input"
	"ccdem/internal/power"
	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

func main() {
	dev, err := ccdem.NewDevice(ccdem.Config{Governor: ccdem.GovernorSectionBoost})
	if err != nil {
		log.Fatal(err)
	}
	gameParams, ok := app.ByName("Cookie Run")
	if !ok {
		log.Fatal("Cookie Run not in catalog")
	}
	kakaoParams, ok := app.ByName("KakaoTalk")
	if !ok {
		log.Fatal("KakaoTalk not in catalog")
	}
	game, err := dev.InstallApp(gameParams)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: 30 s of gameplay with light interaction.
	mk, err := input.NewMonkey(21, input.DefaultMonkeyConfig())
	if err != nil {
		log.Fatal(err)
	}
	dev.PlayScript(mk.Script(30*sim.Second, 720, 1280))
	dev.Run(30 * sim.Second)
	gamePhase := dev.Stats()

	// Switch: background the game, foreground the messenger.
	game.Pause()
	if _, err := dev.InstallApp(kakaoParams); err != nil {
		log.Fatal(err)
	}
	dev.Run(30 * sim.Second)
	total := dev.Stats()

	tr := dev.Traces()
	width := 60
	fmt.Println("App switch at t=30s: Cookie Run (60 fps game) → KakaoTalk (static messenger)")
	fmt.Printf("\n  content rate [0..60] %s\n", trace.Sparkline(tr.Content.Values(), width))
	fmt.Printf("  refresh rate [0..60] %s\n", trace.Sparkline(tr.Refresh.Values(), width))
	pw := make([]float64, len(tr.Power))
	for i, s := range tr.Power {
		pw[i] = s.MW
	}
	fmt.Printf("  power        [mW]    %s\n\n", trace.Sparkline(pw, width))

	// Per-phase means from the refresh trace.
	phase1 := tr.Refresh.Between(0, 30*sim.Second)
	phase2 := tr.Refresh.Between(32*sim.Second, 60*sim.Second) // skip the transition
	fmt.Printf("  gameplay:   mean refresh %.1f Hz, mean power %.0f mW\n",
		phase1.Mean(), gamePhase.MeanPowerMW)
	phase2Power := meanPower(tr.Power, 32*sim.Second, 60*sim.Second)
	fmt.Printf("  messenger:  mean refresh %.1f Hz, mean power %.0f mW\n",
		phase2.Mean(), phase2Power)
	fmt.Printf("\n  whole session: %.0f mW mean, display quality %.1f%%\n",
		total.MeanPowerMW, 100*total.DisplayQuality)
	fmt.Printf("  the switch itself needed no policy change: the governor follows content.\n")
}

// meanPower averages the power samples within [t0, t1).
func meanPower(samples []power.Sample, t0, t1 sim.Time) float64 {
	sum, n := 0.0, 0
	for _, s := range samples {
		if s.T >= t0 && s.T < t1 {
			sum += s.MW
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
