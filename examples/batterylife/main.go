// Batterylife: translate the paper's milliwatts into hours. The example
// measures a realistic usage mix (messaging-heavy with some gaming and
// video) under the baseline and under the full system, then feeds the
// results to the battery model of the paper's target device (Galaxy S3,
// 2100 mAh) to estimate the screen-on-time gain.
//
// Run with:
//
//	go run ./examples/batterylife
package main

import (
	"fmt"
	"log"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/battery"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

// mix is a plausible day of screen time: mostly messaging and feeds, some
// gaming, some video.
var mix = []struct {
	app    string
	weight float64
}{
	{"KakaoTalk", 3.0},
	{"Facebook", 2.0},
	{"Naver", 1.5},
	{"Jelly Splash", 1.5},
	{"Cookie Run", 1.0},
	{"MX Player", 1.0},
}

func main() {
	const duration = 60 * sim.Second
	var slices []battery.UsageSlice
	for _, m := range mix {
		params, ok := app.ByName(m.app)
		if !ok {
			log.Fatalf("%s not in catalog", m.app)
		}
		base := measure(params, ccdem.GovernorOff, duration)
		managed := measure(params, ccdem.GovernorSectionBoost, duration)
		slices = append(slices, battery.UsageSlice{
			Name:       m.app,
			Weight:     m.weight,
			BaselineMW: base,
			ManagedMW:  managed,
		})
	}
	est, err := battery.GalaxyS3Pack.Estimate(battery.Mix{Slices: slices})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(est)
	fmt.Println("\n  (display-path management alone; radios and standby excluded)")
}

func measure(params app.Params, mode ccdem.GovernorMode, duration sim.Time) float64 {
	dev, err := ccdem.NewDevice(ccdem.Config{Governor: mode})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dev.InstallApp(params); err != nil {
		log.Fatal(err)
	}
	mk, err := input.NewMonkey(12, input.DefaultMonkeyConfig())
	if err != nil {
		log.Fatal(err)
	}
	dev.PlayScript(mk.Script(duration, 720, 1280))
	dev.Run(duration)
	return dev.Stats().MeanPowerMW
}
