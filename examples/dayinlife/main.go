// Dayinlife: a composed usage session end-to-end. A scenario strings
// together a realistic stretch of phone use — messaging, a feed scroll,
// a gaming break, an episode of video, more messaging — runs it once on
// the Android baseline and once under the paper's full system, and
// converts the outcome to battery hours on the Galaxy S3's 2100 mAh pack.
//
// Run with:
//
//	go run ./examples/dayinlife
package main

import (
	"fmt"
	"log"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/battery"
	"ccdem/internal/scenario"
	"ccdem/internal/sim"
)

func phases() []scenario.Phase {
	get := func(name string) app.Params {
		p, ok := app.ByName(name)
		if !ok {
			log.Fatalf("%s not in catalog", name)
		}
		return p
	}
	return []scenario.Phase{
		{App: get("KakaoTalk"), Duration: 40 * sim.Second, Seed: 11},
		{App: get("Facebook"), Duration: 40 * sim.Second, Seed: 12},
		{App: get("Jelly Splash"), Duration: 40 * sim.Second, Seed: 13},
		{App: get("MX Player"), Duration: 40 * sim.Second}, // hands-off video
		{App: get("KakaoTalk"), Duration: 20 * sim.Second, Seed: 14},
	}
}

func main() {
	sc := scenario.Scenario{Name: "evening session", Phases: phases()}

	base, err := scenario.Run(ccdem.Config{Governor: ccdem.GovernorOff}, sc)
	if err != nil {
		log.Fatal(err)
	}
	managed, err := scenario.Run(ccdem.Config{Governor: ccdem.GovernorSectionBoost}, sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Baseline (fixed 60 Hz):")
	fmt.Print(base)
	fmt.Println("\nManaged (section control + touch boosting):")
	fmt.Print(managed)

	// Battery impact, weighting the mix by phase duration.
	var slices []battery.UsageSlice
	for i := range base.Phases {
		slices = append(slices, battery.UsageSlice{
			Name:       fmt.Sprintf("%d:%s", i+1, base.Phases[i].App),
			Weight:     base.Phases[i].Duration.Seconds(),
			BaselineMW: base.Phases[i].MeanPowerMW,
			ManagedMW:  managed.Phases[i].MeanPowerMW,
		})
	}
	est, err := battery.GalaxyS3Pack.Estimate(battery.Mix{Slices: slices})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(est)
	fmt.Printf("\n  display quality under management: %.1f%%\n", 100*managed.Total.DisplayQuality)
}
