// Fleet: the population-scale question the paper's single-device
// evaluation cannot answer — what does content-centric display energy
// management save across a thousand heterogeneous users? The example
// expands the default user profiles (messagers, browsers, gamers,
// viewers) into a 1 000-device cohort, runs every device twice — section
// control alone and with touch boosting — on identical per-device
// scripts, and compares the two fleets: power-saving percentiles and the
// battery-hours distribution, with the display-quality cost of dropping
// the boost.
//
// Run with:
//
//	go run ./examples/fleet
//	go run ./examples/fleet -devices 100 -duration 20   # quicker pass
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"ccdem"
	"ccdem/internal/fleet"
	"ccdem/internal/sim"
)

func main() {
	devices := flag.Int("devices", 1000, "cohort size")
	duration := flag.Int("duration", 30, "nominal session seconds per device")
	workers := flag.Int("workers", 0, "concurrent device runs (0 = all cores)")
	flag.Parse()

	run := func(gov ccdem.GovernorMode) fleet.Aggregate {
		cohort := fleet.Cohort{
			Devices:  *devices,
			Seed:     42,
			Session:  sim.Time(*duration) * sim.Second,
			Governor: gov,
		}
		pool := fleet.Pool{Workers: *workers, OnProgress: func(done, total int) {
			if done%100 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d devices", gov, done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}}
		r, err := cohort.Run(context.Background(), pool)
		if err != nil {
			log.Fatal(err)
		}
		return r.Aggregate
	}

	section := run(ccdem.GovernorSection)
	boost := run(ccdem.GovernorSectionBoost)

	fmt.Printf("Fleet of %d devices, %d s sessions, default population profiles\n\n", *devices, *duration)
	fmt.Print("Section control + touch boosting (the paper's full system):\n")
	fmt.Print(boost)
	fmt.Print("\nSection control alone:\n")
	fmt.Print(section)

	fmt.Printf("\nHeadline (p50/p95 across users):\n")
	fmt.Printf("  power saving   +boost: %.1f%% / %.1f%%   section-only: %.1f%% / %.1f%%\n",
		boost.SavedPctP50, boost.SavedPctP95, section.SavedPctP50, section.SavedPctP95)
	fmt.Printf("  battery gained +boost: %.2f h / %.2f h   section-only: %.2f h / %.2f h\n",
		boost.ExtraHoursP50, boost.ExtraHoursP95, section.ExtraHoursP50, section.ExtraHoursP95)
	fmt.Printf("  touch boosting spends %.0f mW of the mean saving to lift the worst 5%% of users' display quality from %.1f%% to %.1f%%\n",
		section.MeanSavedMW-boost.MeanSavedMW, section.QualityPctP5, boost.QualityPctP5)
}
