// Gamesession: watch the governor follow a game's content rate in real
// time. A casual game (the paper's Jelly Splash archetype) renders at
// 60 fps regardless of how fast its board actually changes; the governor
// tracks the measured content rate through the section table, spikes to
// 60 Hz on touches, and decays back afterwards. The example prints the
// live trace as sparklines plus a component energy breakdown.
//
// Run with:
//
//	go run ./examples/gamesession
package main

import (
	"fmt"
	"log"
	"sort"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/core"
	"ccdem/internal/input"
	"ccdem/internal/power"
	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

func main() {
	dev, err := ccdem.NewDevice(ccdem.Config{Governor: ccdem.GovernorSectionBoost})
	if err != nil {
		log.Fatal(err)
	}
	game, ok := app.ByName("PokoPang")
	if !ok {
		log.Fatal("PokoPang not in catalog")
	}
	if _, err := dev.InstallApp(game); err != nil {
		log.Fatal(err)
	}

	// A lively session: short think times, lots of swipes.
	monkey, err := input.NewMonkey(7, input.MonkeyConfig{
		MeanIdle:      3 * sim.Second,
		MinIdle:       800 * sim.Millisecond,
		TapFraction:   0.3,
		SwipeFraction: 0.6,
		MoveRate:      100,
	})
	if err != nil {
		log.Fatal(err)
	}
	script := monkey.Script(90*sim.Second, 720, 1280)
	dev.PlayScript(script)

	// Observe every governor decision as it happens.
	decisions, boosted := 0, 0
	dev.Governor().OnDecision(func(d core.Decision) {
		decisions++
		if d.Boosted {
			boosted++
		}
	})
	dev.Run(90 * sim.Second)

	st := dev.Stats()
	tr := dev.Traces()
	width := 72
	fmt.Printf("PokoPang, 90 s session under %s control\n\n", st.Mode)
	fmt.Printf("  content rate [0..60] %s\n", trace.Sparkline(tr.Content.Values(), width))
	fmt.Printf("  refresh rate [0..60] %s\n", trace.Sparkline(tr.Refresh.Values(), width))
	powerVals := make([]float64, len(tr.Power))
	for i, s := range tr.Power {
		powerVals[i] = s.MW
	}
	fmt.Printf("  power        [mW]    %s\n\n", trace.Sparkline(powerVals, width))

	fmt.Printf("  mean power        %7.0f mW (±%.0f)\n", st.MeanPowerMW, st.PowerStdMW)
	fmt.Printf("  mean refresh      %7.1f Hz (%d switches, %d touch events)\n",
		st.MeanRefreshHz, st.RefreshSwitches, st.BoostCount)
	fmt.Printf("  frame rate        %7.1f fps (%.1f content, %.1f redundant)\n",
		st.FrameRate, st.ContentRate, st.RedundantRate)
	fmt.Printf("  display quality   %7.1f%%\n\n", 100*st.DisplayQuality)

	fmt.Println("  energy breakdown:")
	type comp struct {
		c power.Component
		e float64
	}
	var comps []comp
	total := 0.0
	for c, e := range st.Breakdown {
		comps = append(comps, comp{c, e})
		total += e
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].e > comps[j].e })
	for _, c := range comps {
		fmt.Printf("    %-8s %8.0f mJ (%4.1f%%)\n", c.c, c.e, 100*c.e/total)
	}
	fmt.Printf("\n  governor took %d decisions, %d while boosted\n", decisions, boosted)
	fmt.Printf("  section table: %s\n", dev.Governor().Table())
}
