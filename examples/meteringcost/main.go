// Meteringcost: explore the accuracy-versus-cost trade-off of the
// grid-based comparison (the engineering heart of the paper's §3.1).
// The example runs the hostile small-dot wallpaper against each of the
// paper's five grid sizes, reporting the metering error, the modeled
// comparison time at Galaxy-S3 scale, the measured comparison time on
// this host, and whether the grid fits the 16.67 ms V-Sync budget.
//
// Run with:
//
//	go run ./examples/meteringcost
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"ccdem/internal/core"
	"ccdem/internal/framebuffer"
	"ccdem/internal/power"
	"ccdem/internal/sim"
	"ccdem/internal/surface"
	"ccdem/internal/wallpaper"
)

func main() {
	grids := []struct {
		label      string
		cols, rows int
	}{
		{"2K", 36, 64},
		{"4K", 48, 85},
		{"9K", 72, 128},
		{"36K", 144, 256},
		{"921K", 720, 1280},
	}
	cost := power.DefaultCompareCost()

	fmt.Println("Grid-based comparison: accuracy vs cost (30 s of dot wallpaper)")
	fmt.Printf("  %-14s %9s %9s %13s %13s %8s\n",
		"grid", "pixels", "error", "S3 model", "host actual", "budget")
	for _, g := range grids {
		truth, measured, hostPerCompare := run(g.cols, g.rows)
		errRate := 0.0
		if truth > 0 {
			errRate = 100 * math.Abs(float64(measured)-float64(truth)) / float64(truth)
		}
		px := g.cols * g.rows
		fits := "ok"
		if !cost.FitsVSyncBudget(px, 60) {
			fits = "MISS"
		}
		fmt.Printf("  %-4s (%3dx%-4d) %9d %8.1f%% %10.2f ms %10.4f ms %8s\n",
			g.label, g.cols, g.rows, px, errRate,
			cost.Duration(px).Milliseconds(),
			hostPerCompare.Seconds()*1000, fits)
	}
	fmt.Println("\n  \"MISS\" = comparison cannot complete within one 60 Hz V-Sync interval")
	fmt.Println("  (16.67 ms) at device scale — the paper's case against full-frame diffing.")
}

// run executes the wallpaper against one grid and returns ground truth,
// measured content frames, and the mean measured host time per comparison.
func run(cols, rows int) (truth, measured uint64, perCompare time.Duration) {
	eng := sim.NewEngine()
	mgr := surface.NewManager(eng, 720, 1280)
	wp, err := wallpaper.New(wallpaper.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	wp.Attach(eng, mgr)
	meter, err := core.NewMeter(core.MeterConfig{
		Grid:   framebuffer.NewGrid(720, 1280, cols, rows),
		Window: sim.Second,
		Cost:   power.DefaultCompareCost(),
	})
	if err != nil {
		log.Fatal(err)
	}
	var hostTime time.Duration
	var compares int
	mgr.OnFrame(func(fi surface.FrameInfo) {
		t0 := time.Now()
		meter.ObserveFrame(fi.T, mgr.Framebuffer())
		hostTime += time.Since(t0)
		compares++
	})
	eng.Every(sim.Hz(60), sim.Hz(60), func() { mgr.VSync(eng.Now(), 60) })
	eng.RunUntil(30 * sim.Second)
	_, content := meter.Totals()
	if compares > 0 {
		perCompare = hostTime / time.Duration(compares)
	}
	return wp.ContentFrames(), content, perCompare
}
