// Observability: run one governed application with the decision-event
// recorder and metrics registry attached, print the event-stream summary
// and the metrics dump, and export a Perfetto-loadable trace.
//
// Run with:
//
//	go run ./examples/obs
//
// then open obs-trace.json at https://ui.perfetto.dev (or chrome://tracing)
// to see the device's frame latches, grid compares, section transitions
// and touch boosts on a per-subsystem timeline.
package main

import (
	"fmt"
	"log"
	"os"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/input"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

func main() {
	monkey, err := input.NewMonkey(42, input.DefaultMonkeyConfig())
	if err != nil {
		log.Fatal(err)
	}
	script := monkey.Script(60*sim.Second, 720, 1280)

	jelly, ok := app.ByName("Jelly Splash")
	if !ok {
		log.Fatal("Jelly Splash not in catalog")
	}

	// A Collector hands out one (recorder, registry) pair per run and
	// later assembles them into one trace. A single run could also build
	// obs.NewRecorder / obs.NewRegistry directly.
	collector := obs.NewCollector(0)
	rec, reg := collector.Device("Jelly Splash [section+boost]")

	dev, err := ccdem.NewDevice(ccdem.Config{
		Governor: ccdem.GovernorSectionBoost,
		Recorder: rec,
		Metrics:  reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dev.InstallApp(jelly); err != nil {
		log.Fatal(err)
	}
	dev.PlayScript(script)
	dev.Run(60 * sim.Second)
	dev.FinishObs()

	// The event stream: every frame latch, grid compare, rate transition
	// and touch boost the run made, in order.
	kinds := map[obs.Kind]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	fmt.Printf("recorded %d events (%d dropped by the ring):\n", rec.Total(), rec.Dropped())
	for k := obs.KindDeviceStart; k <= obs.KindVSyncMissed; k++ {
		if n := kinds[k]; n > 0 {
			fmt.Printf("  %-24s %6d\n", k, n)
		}
	}

	fmt.Println("\nmetrics:")
	if err := reg.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("obs-trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := collector.WriteTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote obs-trace.json — open it at https://ui.perfetto.dev")
}
