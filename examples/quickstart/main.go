// Quickstart: assemble a simulated Galaxy-S3-class device, run one
// application under the Android baseline and under the paper's full
// system (section-based refresh control + touch boosting), and compare
// power and display quality.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

func main() {
	// The same deterministic Monkey script drives every configuration, so
	// the comparison is paired exactly as in the paper's methodology.
	monkey, err := input.NewMonkey(42, input.DefaultMonkeyConfig())
	if err != nil {
		log.Fatal(err)
	}
	script := monkey.Script(60*sim.Second, 720, 1280)

	jelly, ok := app.ByName("Jelly Splash")
	if !ok {
		log.Fatal("Jelly Splash not in catalog")
	}

	run := func(mode ccdem.GovernorMode) ccdem.Stats {
		dev, err := ccdem.NewDevice(ccdem.Config{Governor: mode})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dev.InstallApp(jelly); err != nil {
			log.Fatal(err)
		}
		dev.PlayScript(script)
		dev.Run(60 * sim.Second)
		return dev.Stats()
	}

	baseline := run(ccdem.GovernorOff)
	full := run(ccdem.GovernorSectionBoost)

	fmt.Println("Jelly Splash, 60 s Monkey session on the simulated Galaxy S3:")
	fmt.Printf("  %-22s %8s %12s %10s %9s\n", "configuration", "power", "refresh", "frames", "quality")
	for _, st := range []ccdem.Stats{baseline, full} {
		fmt.Printf("  %-22s %6.0f mW %9.1f Hz %6.1f fps %8.1f%%\n",
			st.Mode, st.MeanPowerMW, st.MeanRefreshHz, st.FrameRate, 100*st.DisplayQuality)
	}
	saved := baseline.MeanPowerMW - full.MeanPowerMW
	fmt.Printf("\n  power saved: %.0f mW (%.1f%%) with display quality at %.1f%%\n",
		saved, 100*saved/baseline.MeanPowerMW, 100*full.DisplayQuality)
	fmt.Printf("  the governor eliminated %.1f redundant fps of a %.1f fps frame stream\n",
		baseline.RedundantRate-full.RedundantRate, baseline.FrameRate)
}
