// Videoplayer: the section table in its natural habitat. A 24 fps video
// (the paper's MX Player workload) needs nowhere near 60 Hz of refresh:
// the governor measures ≈24 fps of content and — per the section table's
// headroom rule — settles the panel at 30 Hz, halving the
// refresh-dependent panel power while displaying every video frame.
//
// The example also shows why the naive "smallest refresh ≥ content"
// policy fails: at 24 Hz the meter could never observe content above
// 24 fps, so the governor intentionally keeps one level of headroom.
//
// Run with:
//
//	go run ./examples/videoplayer
package main

import (
	"fmt"
	"log"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/sim"
)

func main() {
	player, ok := app.ByName("MX Player")
	if !ok {
		log.Fatal("MX Player not in catalog")
	}

	run := func(mode ccdem.GovernorMode) ccdem.Stats {
		dev, err := ccdem.NewDevice(ccdem.Config{Governor: mode})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dev.InstallApp(player); err != nil {
			log.Fatal(err)
		}
		// Hands-off playback: no input script, the video just plays.
		dev.Run(120 * sim.Second)
		return dev.Stats()
	}

	baseline := run(ccdem.GovernorOff)
	governed := run(ccdem.GovernorSection)

	fmt.Println("MX Player: 120 s of 24 fps video playback")
	fmt.Printf("  %-12s %9s %11s %12s %9s\n", "mode", "power", "refresh", "content", "quality")
	for _, st := range []ccdem.Stats{baseline, governed} {
		fmt.Printf("  %-12s %6.0f mW %8.1f Hz %8.1f fps %8.1f%%\n",
			st.Mode, st.MeanPowerMW, st.MeanRefreshHz, st.ContentRate, 100*st.DisplayQuality)
	}

	saved := baseline.MeanPowerMW - governed.MeanPowerMW
	fmt.Printf("\n  the governor settles at ≈30 Hz (content 24 fps → section 22–27 → 30 Hz),\n")
	fmt.Printf("  saving %.0f mW (%.1f%%) with no dropped video frames beyond V-Sync beating.\n",
		saved, 100*saved/baseline.MeanPowerMW)
}
