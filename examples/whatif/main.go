// Whatif: estimate the paper's savings *before* deploying refresh control.
// The scheme needs a kernel modification; a deployment decision wants the
// expected saving first. This example records a baseline (fixed 60 Hz)
// frame log — something a lightweight userspace tracer could collect on an
// unmodified phone — and feeds it to the offline predictor, then verifies
// the prediction against an actual governed simulation of the same
// session.
//
// Run with:
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/core"
	"ccdem/internal/display"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

func main() {
	const duration = 60 * sim.Second
	mk, err := input.NewMonkey(8, input.DefaultMonkeyConfig())
	if err != nil {
		log.Fatal(err)
	}
	script := mk.Script(duration, 720, 1280)

	fmt.Println("Offline what-if analysis: predicted vs simulated section-control power")
	fmt.Printf("  %-14s %10s %12s %12s %8s\n", "app", "baseline", "predicted", "simulated", "error")
	for _, name := range []string{"Jelly Splash", "Cash Slide", "MX Player", "Facebook", "TempleRun"} {
		params, ok := app.ByName(name)
		if !ok {
			log.Fatalf("%s not in catalog", name)
		}

		// 1. Record a baseline session (no kernel modification needed).
		base, err := ccdem.NewDevice(ccdem.Config{Governor: ccdem.GovernorOff})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := base.InstallApp(params); err != nil {
			log.Fatal(err)
		}
		base.RecordFrames(true)
		base.PlayScript(script)
		base.Run(duration)

		// 2. Predict section-control power from the log alone.
		pred, err := core.PredictSection(base.FrameLog(), duration, core.PredictorConfig{
			Levels: display.GalaxyS3Levels,
		})
		if err != nil {
			log.Fatal(err)
		}

		// 3. Ground truth: actually run the governed configuration.
		gov, err := ccdem.NewDevice(ccdem.Config{Governor: ccdem.GovernorSection})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := gov.InstallApp(params); err != nil {
			log.Fatal(err)
		}
		gov.PlayScript(script)
		gov.Run(duration)

		basePower := base.Stats().MeanPowerMW
		simPower := gov.Stats().MeanPowerMW
		errPct := 100 * (pred.MeanPowerMW - simPower) / simPower
		fmt.Printf("  %-14s %7.0f mW %9.0f mW %9.0f mW %+7.1f%%\n",
			name, basePower, pred.MeanPowerMW, simPower, errPct)
	}
	fmt.Println("\n  prediction uses only the baseline frame log — no governed run required.")
}
