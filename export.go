package ccdem

import (
	"encoding/json"
	"fmt"
	"io"

	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

// Screenshot writes the device's current framebuffer as a binary PPM
// image — what the panel is scanning out at this instant.
func (d *Device) Screenshot(w io.Writer) error {
	return d.mgr.Framebuffer().WritePPM(w)
}

// ExportTracesCSV writes the run's recorded series (content rate, frame
// rate, refresh rate, ground-truth content rate, power) as one aligned CSV
// table resampled to dt buckets.
func (d *Device) ExportTracesCSV(w io.Writer, dt sim.Time) error {
	if dt <= 0 {
		return fmt.Errorf("ccdem: non-positive export interval %v", dt)
	}
	until := d.eng.Now()
	pw := trace.NewSeries("power_mw")
	for _, s := range d.pwrMeter.Samples() {
		pw.Add(s.T, s.MW)
	}
	return trace.WriteCSV(w,
		d.contentTrace.Resample(dt, until),
		d.frameTrace.Resample(dt, until),
		d.refreshTrace.Resample(dt, until),
		d.intendedTrace.Resample(dt, until),
		pw.Resample(dt, until),
	)
}

// ExportTracesJSON writes the run's recorded series as JSON at native
// sampling resolution.
func (d *Device) ExportTracesJSON(w io.Writer) error {
	pw := trace.NewSeries("power_mw")
	for _, s := range d.pwrMeter.Samples() {
		pw.Add(s.T, s.MW)
	}
	return trace.WriteJSON(w,
		d.contentTrace, d.frameTrace, d.refreshTrace, d.intendedTrace, pw)
}

// statsJSON is the JSON wire form of Stats, with the component breakdown
// keyed by name rather than enum value.
type statsJSON struct {
	Mode            string             `json:"mode"`
	DurationSeconds float64            `json:"duration_seconds"`
	MeanPowerMW     float64            `json:"mean_power_mw"`
	PowerStdMW      float64            `json:"power_std_mw"`
	EnergyMJ        float64            `json:"energy_mj"`
	BreakdownMJ     map[string]float64 `json:"breakdown_mj"`
	FrameRate       float64            `json:"frame_rate_fps"`
	ContentRate     float64            `json:"content_rate_fps"`
	RedundantRate   float64            `json:"redundant_rate_fps"`
	IntendedRate    float64            `json:"intended_rate_fps"`
	DisplayQuality  float64            `json:"display_quality"`
	DroppedFPS      float64            `json:"dropped_fps"`
	MeanRefreshHz   float64            `json:"mean_refresh_hz"`
	RefreshSwitches uint64             `json:"refresh_switches"`
	BoostCount      uint64             `json:"boost_count"`
}

// MarshalJSON implements json.Marshaler with named breakdown components.
func (s Stats) MarshalJSON() ([]byte, error) {
	bd := make(map[string]float64, len(s.Breakdown))
	for c, e := range s.Breakdown {
		bd[c.String()] = e
	}
	return json.Marshal(statsJSON{
		Mode:            s.Mode.String(),
		DurationSeconds: s.Duration.Seconds(),
		MeanPowerMW:     s.MeanPowerMW,
		PowerStdMW:      s.PowerStdMW,
		EnergyMJ:        s.EnergyMJ,
		BreakdownMJ:     bd,
		FrameRate:       s.FrameRate,
		ContentRate:     s.ContentRate,
		RedundantRate:   s.RedundantRate,
		IntendedRate:    s.IntendedRate,
		DisplayQuality:  s.DisplayQuality,
		DroppedFPS:      s.DroppedFPS,
		MeanRefreshHz:   s.MeanRefreshHz,
		RefreshSwitches: s.RefreshSwitches,
		BoostCount:      s.BoostCount,
	})
}

// ensure the interface is actually satisfied.
var _ json.Marshaler = Stats{}
