package ccdem

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/sim"
)

func TestScreenshot(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorOff, Width: 64, Height: 48})
	mustApp(t, d, "Weather")
	d.Run(2 * sim.Second)
	var buf bytes.Buffer
	if err := d.Screenshot(&buf); err != nil {
		t.Fatalf("Screenshot: %v", err)
	}
	img, err := framebuffer.ReadPPM(&buf)
	if err != nil {
		t.Fatalf("ReadPPM: %v", err)
	}
	if img.Width() != 64 || img.Height() != 48 {
		t.Errorf("screenshot dims = %dx%d", img.Width(), img.Height())
	}
	// The app painted something non-black.
	if img.MeanLuminance() == 0 {
		t.Error("screenshot is entirely black")
	}
}

func TestExportTracesCSV(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorSection})
	mustApp(t, d, "Jelly Splash")
	d.Run(3 * sim.Second)
	var buf bytes.Buffer
	if err := d.ExportTracesCSV(&buf, sim.Second); err != nil {
		t.Fatalf("ExportTracesCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 buckets
		t.Fatalf("CSV lines = %d, want 4: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "power_mw") || !strings.Contains(lines[0], "refresh rate") {
		t.Errorf("header = %q", lines[0])
	}
	if err := d.ExportTracesCSV(&bytes.Buffer{}, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestExportTracesJSON(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorSection})
	mustApp(t, d, "Jelly Splash")
	d.Run(2 * sim.Second)
	var buf bytes.Buffer
	if err := d.ExportTracesJSON(&buf); err != nil {
		t.Fatalf("ExportTracesJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 5 {
		t.Errorf("series = %d, want 5", len(decoded))
	}
}

func TestStatsMarshalJSON(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorSectionBoost})
	mustApp(t, d, "Facebook")
	d.Run(3 * sim.Second)
	raw, err := json.Marshal(d.Stats())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded["mode"] != "section+boost" {
		t.Errorf("mode = %v", decoded["mode"])
	}
	bd, ok := decoded["breakdown_mj"].(map[string]any)
	if !ok {
		t.Fatalf("breakdown missing: %v", decoded)
	}
	for _, k := range []string{"soc", "panel", "render", "meter"} {
		if _, ok := bd[k]; !ok {
			t.Errorf("breakdown missing %q", k)
		}
	}
	if decoded["duration_seconds"].(float64) != 3 {
		t.Errorf("duration = %v", decoded["duration_seconds"])
	}
}

func TestE3ModeDevice(t *testing.T) {
	d := mustDevice(t, Config{Governor: GovernorE3})
	mustApp(t, d, "Jelly Splash")
	d.Run(10 * sim.Second)
	st := d.Stats()
	// E3 throttles frames, not refresh.
	if st.MeanRefreshHz < 59.5 {
		t.Errorf("E3 refresh = %v, want 60", st.MeanRefreshHz)
	}
	if st.FrameRate > 30 {
		t.Errorf("E3 frame rate = %v, want throttled well below 60", st.FrameRate)
	}
	if d.FrameLimiter() == nil {
		t.Error("FrameLimiter accessor nil in E3 mode")
	}
	if _, blocked := d.FrameLimiter().Counters(); blocked == 0 {
		t.Error("E3 never blocked a latch on a 60 fps game")
	}
	if st.DisplayQuality < 0.9 {
		t.Errorf("E3 quality = %v on idle game", st.DisplayQuality)
	}
}
