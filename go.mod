module ccdem

go 1.22
