// Golden-trace equivalence tests: the full decision sequence of a governed
// device — every governor decision, every refresh-rate transition, and the
// end-of-run totals — is rendered to text and compared byte-for-byte
// against committed golden files in testdata/golden/.
//
// Each trace is produced under fleet.Pool at 1, 2 and 8 workers; all three
// must be identical. That pins the determinism contract the performance
// work relies on: event pooling, scratch buffers and ring buffers may make
// the simulation faster, but never change a single decision, and worker
// scheduling never leaks into results.
//
// After an *intentional* behaviour change, refresh the files with:
//
//	go test -run TestGoldenTraces -update-golden .
package ccdem_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/core"
	"ccdem/internal/fleet"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden files with current traces")

// goldenApps are the three representative workloads: a touch-driven feed
// app, a 60 fps game, and autonomous video — the three content classes the
// paper's taxonomy distinguishes (§2.2).
var goldenApps = []struct {
	name string
	slug string
	seed int64
}{
	{"Facebook", "facebook", 11},
	{"Jelly Splash", "jellysplash", 12},
	{"MX Player", "mxplayer", 13},
}

const goldenDuration = 20 * sim.Second

// goldenTrace runs one governed device on the named app and renders its
// complete decision history as text, using the default (tile-tracked,
// palette-compressed) pixel pipeline.
func goldenTrace(appName string, seed int64) (string, error) {
	return goldenTraceCfg(appName, seed, false, false)
}

// goldenTraceCfg is goldenTrace with the pixel pipeline selectable:
// naivePixels true runs the brute-force oracle path, noPalette true runs
// the tile pipeline with palette compression (and the app state memo)
// disabled.
func goldenTraceCfg(appName string, seed int64, naivePixels, noPalette bool) (string, error) {
	p, ok := app.ByName(appName)
	if !ok {
		return "", fmt.Errorf("unknown app %q", appName)
	}
	dev, err := ccdem.NewDevice(ccdem.Config{
		Governor:    ccdem.GovernorSectionBoost,
		NaivePixels: naivePixels,
		NoPalette:   noPalette,
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	dev.Governor().OnDecision(func(d core.Decision) {
		fmt.Fprintf(&sb, "decision t=%d content=%.6f rate=%d boosted=%v\n",
			int64(d.T), d.ContentRate, d.RateHz, d.Boosted)
	})
	dev.Panel().OnRateChange(func(t sim.Time, oldHz, newHz int) {
		fmt.Fprintf(&sb, "rate t=%d %d->%d\n", int64(t), oldHz, newHz)
	})
	if _, err := dev.InstallApp(p); err != nil {
		return "", err
	}
	mk, err := input.NewMonkey(seed, input.DefaultMonkeyConfig())
	if err != nil {
		return "", err
	}
	dev.PlayScript(mk.Script(goldenDuration, 720, 1280))
	dev.Run(goldenDuration)

	frames, content := dev.Meter().Totals()
	s := dev.Stats()
	fmt.Fprintf(&sb, "totals frames=%d content=%d redundant=%d\n",
		frames, content, dev.Meter().TotalRedundant())
	fmt.Fprintf(&sb, "totals refreshes=%d switches=%d boosts=%d\n",
		dev.Panel().Refreshes(), s.RefreshSwitches, s.BoostCount)
	fmt.Fprintf(&sb, "totals meanrefresh=%.6f energy_mj=%.6f quality=%.6f\n",
		s.MeanRefreshHz, s.EnergyMJ, s.DisplayQuality)
	return sb.String(), nil
}

// runGoldenFleet produces all three app traces under a fleet.Pool of the
// given width; result order is index-addressed, so it is deterministic no
// matter how tasks are scheduled.
func runGoldenFleet(t *testing.T, workers int) []string {
	t.Helper()
	traces := make([]string, len(goldenApps))
	err := fleet.Pool{Workers: workers}.Run(context.Background(), len(goldenApps),
		func(_ context.Context, i int) error {
			tr, err := goldenTrace(goldenApps[i].name, goldenApps[i].seed)
			if err != nil {
				return fmt.Errorf("%s: %w", goldenApps[i].name, err)
			}
			traces[i] = tr
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

// firstLineDiff reports the first line where a and b differ, for readable
// failures.
func firstLineDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(al), len(bl))
}

func TestGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("golden traces need full-length runs")
	}
	sequential := runGoldenFleet(t, 1)

	// Bit-identical at every worker count: parallelism must not perturb a
	// single decision.
	for _, workers := range []int{2, 8} {
		parallel := runGoldenFleet(t, workers)
		for i, a := range goldenApps {
			if parallel[i] != sequential[i] {
				t.Errorf("%s: trace at %d workers differs from sequential\n%s",
					a.name, workers, firstLineDiff(parallel[i], sequential[i]))
			}
		}
	}

	for i, a := range goldenApps {
		path := filepath.Join("testdata", "golden", a.slug+".trace")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(sequential[i]), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", a.name, err)
		}
		if sequential[i] != string(want) {
			t.Errorf("%s: trace differs from %s (decision stream changed; "+
				"if intentional, refresh with -update-golden)\n%s",
				a.name, path, firstLineDiff(sequential[i], string(want)))
		}
	}
}

// TestGoldenTracesTileVsNaive runs every golden app under both pixel
// pipelines — tile signatures with damage-only composition (the default)
// and the brute-force oracle (NaivePixels) — and diffs the decision-event
// streams byte for byte. The tile path replaces pixel work with
// generation tracking and hashes, so this is the end-to-end proof that
// no governor decision, rate transition or lifetime total moved. The
// committed golden files additionally pin both paths to the pre-tile
// decision history (TestGoldenTraces runs the default path against them).
func TestGoldenTracesTileVsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("golden traces need full-length runs")
	}
	for _, a := range goldenApps {
		tiles, err := goldenTraceCfg(a.name, a.seed, false, false)
		if err != nil {
			t.Fatalf("%s (tiles): %v", a.name, err)
		}
		naive, err := goldenTraceCfg(a.name, a.seed, true, false)
		if err != nil {
			t.Fatalf("%s (naive): %v", a.name, err)
		}
		if tiles != naive {
			t.Errorf("%s: tile-path trace differs from naive oracle\n%s",
				a.name, firstLineDiff(tiles, naive))
		}
	}
}

// TestGoldenTracesPaletteVsNoPalette runs every golden app with palette
// compression and the app state memo on (the default) and off
// (-no-palette, the raw-tile oracle), the oracle side under fleet.Pool at
// 1, 2 and 8 workers, and diffs the decision-event streams byte for byte.
// The palette path replaces pixel stores, hashes and compares with index
// arithmetic and memoized copy-on-write screens, so this is the
// end-to-end proof that none of it moved a governor decision, a rate
// transition or a lifetime total — at any worker count.
func TestGoldenTracesPaletteVsNoPalette(t *testing.T) {
	if testing.Short() {
		t.Skip("golden traces need full-length runs")
	}
	reference := runGoldenFleet(t, 1) // default palette path
	for _, workers := range []int{1, 2, 8} {
		oracle := make([]string, len(goldenApps))
		err := fleet.Pool{Workers: workers}.Run(context.Background(), len(goldenApps),
			func(_ context.Context, i int) error {
				tr, err := goldenTraceCfg(goldenApps[i].name, goldenApps[i].seed, false, true)
				if err != nil {
					return fmt.Errorf("%s: %w", goldenApps[i].name, err)
				}
				oracle[i] = tr
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range goldenApps {
			if oracle[i] != reference[i] {
				t.Errorf("%s: no-palette oracle trace at %d workers differs from palette path\n%s",
					a.name, workers, firstLineDiff(oracle[i], reference[i]))
			}
		}
	}
}
