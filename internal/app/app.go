// Package app provides the application workload models standing in for the
// 30 commercial Android applications of the paper's evaluation (15 general
// applications and 15 games from the Google Play Top Charts, §2.2).
//
// Each model renders real pixels into its surface so the content-rate
// meter classifies frames by actual comparison, and reproduces the
// behavioural taxonomy of Figure 3:
//
//   - general applications mostly hold a static image, with content bursts
//     on user interaction (Facebook-like), while ~40% of them continuously
//     request redundant frame updates (Cash Slide, Daum Maps),
//   - games request ~60 fps of frame updates regardless of how fast their
//     content actually changes, so most carry >20 redundant fps.
//
// A model runs a 60 Hz pacer that advances two independent accumulators —
// the content clock (how often pixels genuinely change) and the invalidate
// clock (how often the app requests a frame). Both switch to interaction
// values while the user touches the screen and decay back over an
// interaction tail, which produces the Figure 2 trace shapes.
package app

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"ccdem/internal/framebuffer"
	"ccdem/internal/input"
	"ccdem/internal/sim"
	"ccdem/internal/surface"
	"ccdem/internal/trace"
)

// Category splits the population as the paper does.
type Category int

// Application categories. AnyCategory is a filter wildcard.
const (
	General Category = iota
	Game
	AnyCategory Category = -1
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case General:
		return "general"
	case Game:
		return "game"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// PaintStyle selects how content changes translate into pixels.
type PaintStyle int

// Paint styles used by the catalog.
const (
	// StyleFeed scrolls a list: each content advance shifts the content
	// area and paints newly exposed rows (browsers, feeds, maps panning).
	StyleFeed PaintStyle = iota
	// StyleSprites animates colored sprites across the screen (games).
	StyleSprites
	// StyleVideo repaints a letterboxed video area every content frame.
	StyleVideo
	// StylePulse repaints a small widget region (clocks, ad banners).
	StylePulse
)

// Params statically describes one application's behaviour.
type Params struct {
	Name string
	Cat  Category

	Style PaintStyle

	// IdleContentFPS and IdleInvalidateFPS govern steady state with no
	// finger on the screen; Touch* apply during interaction. Invalidate
	// rates below content rates are raised to the content rate.
	IdleContentFPS     float64
	IdleInvalidateFPS  float64
	TouchContentFPS    float64
	TouchInvalidateFPS float64
	// Tail is how long elevated rates decay back to idle after touch-up
	// (fling and animation run-out).
	Tail sim.Time

	// LullPeriod and LullDuration model menu, loading and death-screen
	// phases: every LullPeriod, content drops to LullContentFPS for
	// LullDuration while the app keeps invalidating at its usual rate.
	// High-content games (racers, runners) spend a meaningful share of a
	// session in such lulls, which is where even they save power in the
	// paper's Figure 9. Zero disables lulls.
	LullPeriod     sim.Time
	LullDuration   sim.Time
	LullContentFPS float64

	// FullScreenRender marks apps (games, video) whose GPU pass redraws
	// the whole frame regardless of what changed — the expensive kind of
	// redundant frame.
	FullScreenRender bool
	// RedundantRenderPx is the GPU cost of re-rendering an unchanged
	// frame for partial renderers (ignored when FullScreenRender).
	RedundantRenderPx int
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("app: empty name")
	}
	for _, v := range []float64{p.IdleContentFPS, p.IdleInvalidateFPS, p.TouchContentFPS, p.TouchInvalidateFPS} {
		if v < 0 || v > 240 {
			return fmt.Errorf("app %s: rate %v out of range", p.Name, v)
		}
	}
	if p.Tail < 0 {
		return fmt.Errorf("app %s: negative tail", p.Name)
	}
	if p.LullPeriod < 0 || p.LullDuration < 0 || p.LullContentFPS < 0 {
		return fmt.Errorf("app %s: negative lull configuration", p.Name)
	}
	if p.LullPeriod > 0 && p.LullDuration >= p.LullPeriod {
		return fmt.Errorf("app %s: lull duration %v not below period %v", p.Name, p.LullDuration, p.LullPeriod)
	}
	if p.RedundantRenderPx < 0 {
		return fmt.Errorf("app %s: negative redundant render cost", p.Name)
	}
	return nil
}

// pacerHz is the model's internal clock. It matches the maximum refresh
// rate, so content and invalidate rates up to 60 fps are representable.
const pacerHz = 60.0

// Model is a running application instance bound to a surface.
type Model struct {
	p     Params
	eng   *sim.Engine
	srf   *surface.Surface
	w, h  int
	rng   *rand.Rand // name-seeded; built lazily (only sprite apps draw)
	saltV uint64     // cached salt(): FNV-1a of the app name

	// Interaction state.
	touching  bool
	lastTouch sim.Time
	touchY    int

	// Content state.
	contentSeq uint64 // advances whenever pixels should change
	drawnSeq   uint64 // last contentSeq actually painted
	contentAcc float64
	invAcc     float64

	// Painter state.
	scrollPos   int
	sprites     []spriteState
	prevSprites []spriteState
	damage      framebuffer.Region // damage of the current render

	// State memoization (see initcache.go): when enabled, early content
	// states alias memoized palette-compressed screens instead of
	// repainting them.
	stateMemo  bool
	memoHits   uint64
	memoMisses uint64

	// Ground truth for the display-quality metric: content updates the
	// app intended to show, independent of what the refresh rate let
	// through.
	intended      *trace.RateCounter
	intendedTotal uint64

	pacer *sim.Ticker
	stall func(sim.Time) bool
}

type spriteState struct {
	x, y, dx, dy int
}

// New validates params and creates an unstarted model. The rng seed is
// derived from the app name so every run of the same app is identical.
func New(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(p.Name))
	return &Model{
		p:        p,
		saltV:    h.Sum64(),
		intended: trace.NewRateCounter(sim.Second),
	}, nil
}

// ensureRNG builds the name-seeded rng on first use. Seeding a Go rand
// source costs ~600 multiplies, so non-sprite apps — which never draw —
// skip it entirely; the seed is unchanged, so draws are identical to the
// previously eager construction.
func (m *Model) ensureRNG() *rand.Rand {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(int64(m.saltV)))
	}
	return m.rng
}

// Params returns the model's static description.
func (m *Model) Params() Params { return m.p }

// Name returns the application name.
func (m *Model) Name() string { return m.p.Name }

// Attach binds the model to an engine and a surface manager, creating its
// surface and starting the 60 Hz pacer. It must be called exactly once.
func (m *Model) Attach(eng *sim.Engine, mgr *surface.Manager) {
	if m.eng != nil {
		panic("app: Attach called twice")
	}
	m.eng = eng
	m.w = mgr.Framebuffer().Width()
	m.h = mgr.Framebuffer().Height()
	m.srf = mgr.NewSurface(m.p.Name, 1, m)
	m.initPaint()
	m.srf.RequestFrame() // first frame shows the initial screen
	m.pacer = eng.Every(eng.Now()+sim.Hz(pacerHz), sim.Hz(pacerHz), m.tick)
}

// Stop halts the model's pacer.
func (m *Model) Stop() {
	if m.pacer != nil {
		m.pacer.Stop()
		m.pacer = nil
	}
}

// Pause backgrounds the app: its pacer stops, so it neither advances
// content nor requests frames; its last frame stays on screen. Android
// apps behave the same way through onPause.
func (m *Model) Pause() { m.Stop() }

// Resume foregrounds a paused app, restarting its content and invalidate
// clocks and requesting an immediate frame (apps redraw on onResume).
func (m *Model) Resume() {
	if m.pacer != nil {
		return // already running
	}
	if m.eng == nil {
		panic("app: Resume before Attach")
	}
	m.srf.RequestFrame()
	m.pacer = m.eng.Every(m.eng.Now()+sim.Hz(pacerHz), sim.Hz(pacerHz), m.tick)
}

// Paused reports whether the model is currently backgrounded.
func (m *Model) Paused() bool { return m.pacer == nil && m.eng != nil }

// SetStall installs a render-stall hook (fault injection): while it
// returns true the UI thread is blocked — neither the content clock nor
// the invalidate clock advances, so no frames are requested. Nil (the
// default) disables injection.
func (m *Model) SetStall(fn func(sim.Time) bool) { m.stall = fn }

// Surface exposes the model's surface for statistics.
func (m *Model) Surface() *surface.Surface { return m.srf }

// SetStateMemo enables or disables intermediate-state screen memoization
// (see initcache.go). The install screen (seq 0) is memoized regardless —
// that path predates the state memo and is oracle-tested on its own. The
// hit path aliases palette-compressed snapshots, so callers should only
// enable it on palette-enabled devices.
func (m *Model) SetStateMemo(on bool) { m.stateMemo = on }

// MemoStats returns the model's lifetime state-memo hit and miss counts.
// Both are zero while the memo is disabled or once content has advanced
// past the memoizable window.
func (m *Model) MemoStats() (hits, misses uint64) { return m.memoHits, m.memoMisses }

// HandleTouch feeds a touch event to the model (wire it to the input
// replayer).
func (m *Model) HandleTouch(ev input.Event) {
	now := m.eng.Now()
	switch ev.Kind {
	case input.TouchDown:
		m.touching = true
		m.touchY = ev.Y
	case input.TouchMove:
		m.touchY = ev.Y
	case input.TouchUp:
		m.touching = false
	}
	m.lastTouch = now
}

// activity returns the interaction intensity in [0,1]: 1 while touching,
// linearly decaying to 0 over the tail after the last touch.
func (m *Model) activity(now sim.Time) float64 {
	if m.touching {
		return 1
	}
	if m.p.Tail <= 0 || m.lastTouch == 0 {
		return 0
	}
	since := now - m.lastTouch
	if since >= m.p.Tail {
		return 0
	}
	return 1 - float64(since)/float64(m.p.Tail)
}

// inLull reports whether the app is in a menu/loading phase at time t.
// The phase offset is derived per app so catalog apps do not lull in
// lockstep.
func (m *Model) inLull(t sim.Time) bool {
	if m.p.LullPeriod <= 0 {
		return false
	}
	offset := sim.Time(m.salt() % uint64(m.p.LullPeriod))
	return (t+offset)%m.p.LullPeriod < m.p.LullDuration
}

// rates returns the current (content, invalidate) target rates.
func (m *Model) rates(now sim.Time) (content, invalidate float64) {
	a := m.activity(now)
	content = m.p.IdleContentFPS + a*(m.p.TouchContentFPS-m.p.IdleContentFPS)
	invalidate = m.p.IdleInvalidateFPS + a*(m.p.TouchInvalidateFPS-m.p.IdleInvalidateFPS)
	if m.inLull(now) && content > m.p.LullContentFPS {
		content = m.p.LullContentFPS
	}
	if invalidate < content {
		invalidate = content
	}
	return content, invalidate
}

func (m *Model) tick() {
	now := m.eng.Now()
	if m.stall != nil && m.stall(now) {
		return // UI thread blocked: both clocks freeze
	}
	content, invalidate := m.rates(now)

	m.contentAcc += content / pacerHz
	if m.contentAcc >= 1 {
		// At most one advance per pacer tick: intended content is capped
		// at 60 fps, what a 60 Hz baseline could ever display.
		m.contentAcc -= 1
		if m.contentAcc > 1 {
			m.contentAcc = 1
		}
		m.advanceContent()
		m.intended.Note(now)
		m.intendedTotal++
	}

	m.invAcc += invalidate / pacerHz
	if m.invAcc >= 1 {
		m.invAcc -= 1
		if m.invAcc > 1 {
			m.invAcc = 1
		}
		m.srf.RequestFrame()
	}
}

// IntendedRate returns the app's actual content rate (fps) over the last
// second — the denominator of the paper's display-quality metric.
func (m *Model) IntendedRate(now sim.Time) float64 { return m.intended.Rate(now) }

// IntendedTotal returns the lifetime count of intended content updates.
func (m *Model) IntendedTotal() uint64 { return m.intendedTotal }

// RenderRegion implements surface.RegionClient: the manager calls it at
// V-Sync when a requested frame is due. The returned region lists every
// damaged rectangle (sprite erases and draws separately), so dirty-pixel
// accounting does not overestimate via bounding boxes.
func (m *Model) RenderRegion(t sim.Time, buf *framebuffer.Buffer) (*framebuffer.Region, int) {
	m.damage.Reset()
	if m.drawnSeq == m.contentSeq {
		// Redundant frame: the app re-renders pixel-identical content.
		cost := m.p.RedundantRenderPx
		if m.p.FullScreenRender {
			cost = m.w * m.h
		}
		return &m.damage, cost
	}
	m.paint(buf)
	m.drawnSeq = m.contentSeq
	cost := m.damage.Area()
	if m.p.FullScreenRender {
		cost = m.w * m.h
	}
	return &m.damage, cost
}

// Render implements surface.Client (bounding-box fallback for managers
// that do not use regions).
func (m *Model) Render(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int) {
	region, cost := m.RenderRegion(t, buf)
	return region.Bounds(), cost
}
