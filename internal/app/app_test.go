package app

import (
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/input"
	"ccdem/internal/sim"
	"ccdem/internal/surface"
)

// rig runs a model against a hand-cranked 60 Hz vsync loop and a meter-like
// frame observer.
type rig struct {
	eng *sim.Engine
	mgr *surface.Manager
	m   *Model

	frames  int
	content int
	prev    *framebuffer.Buffer
}

func newRig(t *testing.T, p Params) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine()}
	r.mgr = surface.NewManager(r.eng, 360, 640)
	m, err := New(p)
	if err != nil {
		t.Fatalf("New(%s): %v", p.Name, err)
	}
	r.m = m
	r.prev = framebuffer.New(360, 640)
	r.mgr.OnFrame(func(fi surface.FrameInfo) {
		r.frames++
		if !r.mgr.Framebuffer().Equal(r.prev) {
			r.content++
			r.prev.CopyFrom(r.mgr.Framebuffer())
		}
	})
	m.Attach(r.eng, r.mgr)
	// 60 Hz vsync loop.
	r.eng.Every(sim.Hz(60), sim.Hz(60), func() { r.mgr.VSync(r.eng.Now(), 60) })
	return r
}

func (r *rig) run(d sim.Time) { r.eng.RunUntil(r.eng.Now() + d) }

func TestModelValidation(t *testing.T) {
	if _, err := New(Params{}); err == nil {
		t.Error("empty params accepted")
	}
	if _, err := New(Params{Name: "x", IdleContentFPS: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := New(Params{Name: "x", Tail: -1}); err == nil {
		t.Error("negative tail accepted")
	}
	if _, err := New(Params{Name: "x", IdleContentFPS: 999}); err == nil {
		t.Error("absurd rate accepted")
	}
}

func TestAttachTwicePanics(t *testing.T) {
	r := newRig(t, Params{Name: "x", Style: StylePulse, IdleContentFPS: 1, IdleInvalidateFPS: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("double Attach did not panic")
		}
	}()
	r.m.Attach(r.eng, r.mgr)
}

func TestGameModelRatesAt60Hz(t *testing.T) {
	p, ok := ByName("Jelly Splash")
	if !ok {
		t.Fatal("Jelly Splash not in catalog")
	}
	r := newRig(t, p)
	r.run(10 * sim.Second)
	// Idle Jelly Splash: ~60 fps frame rate, ~10 fps content.
	frameRate := float64(r.frames) / 10
	contentRate := float64(r.content) / 10
	if frameRate < 55 || frameRate > 61 {
		t.Errorf("frame rate = %v, want ≈60", frameRate)
	}
	if contentRate < 8 || contentRate > 12 {
		t.Errorf("content rate = %v, want ≈10", contentRate)
	}
	// Intended content matches what reached the screen at 60 Hz.
	intended := float64(r.m.IntendedTotal()) / 10
	if intended < 8 || intended > 12 {
		t.Errorf("intended rate = %v, want ≈10", intended)
	}
}

func TestFeedModelIdleIsQuiet(t *testing.T) {
	p, _ := ByName("Facebook")
	r := newRig(t, p)
	r.run(10 * sim.Second)
	frameRate := float64(r.frames) / 10
	if frameRate > 4 {
		t.Errorf("idle Facebook frame rate = %v, want ≤≈1.5", frameRate)
	}
}

func TestTouchBurstRaisesContent(t *testing.T) {
	p, _ := ByName("Facebook")
	r := newRig(t, p)
	r.run(2 * sim.Second)
	before := r.content
	// Synthesize a 1 s scroll.
	r.m.HandleTouch(input.Event{At: r.eng.Now(), Kind: input.TouchDown, X: 100, Y: 400})
	for i := 0; i < 50; i++ {
		r.run(20 * sim.Millisecond)
		r.m.HandleTouch(input.Event{At: r.eng.Now(), Kind: input.TouchMove, X: 100, Y: 400 - 4*i})
	}
	r.m.HandleTouch(input.Event{At: r.eng.Now(), Kind: input.TouchUp, X: 100, Y: 200})
	r.run(sim.Second)
	burst := float64(r.content-before) / 3
	if burst < 15 {
		t.Errorf("content rate during interaction = %v fps, want ≳30 in burst window", burst)
	}
	// And it decays back.
	r.run(3 * sim.Second)
	calm := r.content
	r.run(2 * sim.Second)
	idleRate := float64(r.content-calm) / 2
	if idleRate > 4 {
		t.Errorf("post-burst idle content rate = %v, want ≈0.5", idleRate)
	}
}

func TestRedundantAppProducesRedundantFrames(t *testing.T) {
	p, _ := ByName("Cash Slide")
	r := newRig(t, p)
	r.run(10 * sim.Second)
	frameRate := float64(r.frames) / 10
	contentRate := float64(r.content) / 10
	if frameRate < 18 || frameRate > 24 {
		t.Errorf("Cash Slide frame rate = %v, want ≈22", frameRate)
	}
	if redundant := frameRate - contentRate; redundant < 15 {
		t.Errorf("Cash Slide redundant rate = %v, want ≈20", redundant)
	}
}

func TestVideoModelContentRate(t *testing.T) {
	p, _ := ByName("MX Player")
	r := newRig(t, p)
	r.run(10 * sim.Second)
	contentRate := float64(r.content) / 10
	if contentRate < 22 || contentRate > 26 {
		t.Errorf("MX Player content rate = %v, want ≈24", contentRate)
	}
}

func TestModelStop(t *testing.T) {
	p, _ := ByName("Jelly Splash")
	r := newRig(t, p)
	r.run(2 * sim.Second)
	r.m.Stop()
	n := r.frames
	r.run(2 * sim.Second)
	if r.frames != n {
		t.Errorf("frames after Stop: %d → %d", n, r.frames)
	}
}

func TestModelDeterminism(t *testing.T) {
	run := func() (int, int) {
		p, _ := ByName("Cookie Run")
		r := newRig(t, p)
		r.run(5 * sim.Second)
		return r.frames, r.content
	}
	f1, c1 := run()
	f2, c2 := run()
	if f1 != f2 || c1 != c2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", f1, c1, f2, c2)
	}
}

func TestCategoryString(t *testing.T) {
	if General.String() != "general" || Game.String() != "game" {
		t.Error("category strings wrong")
	}
	if Category(7).String() == "" {
		t.Error("unknown category empty")
	}
}
