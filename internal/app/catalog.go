package app

import "ccdem/internal/sim"

// Catalog returns workload models for the paper's 30 evaluation
// applications (Google Play Top Charts South Korea, §2.2): 15 general
// applications and 15 games, in the order of Figure 3's x-axes.
//
// Parameters are chosen to reproduce Figure 3's behavioural taxonomy:
// general apps are mostly idle with interaction bursts, ~40% of them carry
// ≈20 fps of redundant updates (ad rotators, map beacons); games request
// 60 fps regardless of content, with ~80% exceeding 20 redundant fps and a
// minority (action titles like Asphalt 8) whose content genuinely
// approaches 60 fps.
func Catalog() []Params {
	ms := sim.Millisecond
	feed := func(name string, idleC, idleI, touchC, touchI float64, tail sim.Time) Params {
		return Params{
			Name: name, Cat: General, Style: StyleFeed,
			IdleContentFPS: idleC, IdleInvalidateFPS: idleI,
			TouchContentFPS: touchC, TouchInvalidateFPS: touchI,
			Tail: tail, RedundantRenderPx: 30000,
		}
	}
	pulse := func(name string, idleC, idleI, touchC, touchI float64) Params {
		return Params{
			Name: name, Cat: General, Style: StylePulse,
			IdleContentFPS: idleC, IdleInvalidateFPS: idleI,
			TouchContentFPS: touchC, TouchInvalidateFPS: touchI,
			Tail: 500 * ms, RedundantRenderPx: pulseSize * pulseSize,
		}
	}
	game := func(name string, idleC, touchC float64) Params {
		return Params{
			Name: name, Cat: Game, Style: StyleSprites,
			IdleContentFPS: idleC, IdleInvalidateFPS: 60,
			TouchContentFPS: touchC, TouchInvalidateFPS: 60,
			Tail: 600 * ms, FullScreenRender: true,
		}
	}
	// withLull adds menu/death-screen phases: content collapses while the
	// render loop keeps running at 60 fps. This is where high-content
	// action games save power in the paper's Figure 9.
	withLull := func(p Params, period, dur sim.Time) Params {
		p.LullPeriod = period
		p.LullDuration = dur
		p.LullContentFPS = 3
		return p
	}

	params := []Params{
		// --- 15 general applications ---
		feed("Auction", 0.5, 1, 45, 55, 800*ms),
		func() Params { // Cash Slide: lockscreen ad rotator — heavy redundant updates
			p := pulse("Cash Slide", 2, 22, 15, 30)
			p.RedundantRenderPx = 60000
			return p
		}(),
		func() Params { // CGV: cinema app with animated poster carousel
			p := feed("CGV", 5, 30, 45, 55, 700*ms)
			p.RedundantRenderPx = 300000
			return p
		}(),
		feed("Coupang", 1, 3, 48, 58, 800*ms),
		feed("Daum", 2, 5, 45, 55, 800*ms),
		func() Params { // Daum Maps: location beacon keeps invalidating the map
			p := feed("Daum Maps", 2, 22, 48, 58, 700*ms)
			p.RedundantRenderPx = 250000
			return p
		}(),
		feed("Facebook", 0.5, 1.5, 50, 58, 1000*ms),
		feed("KakaoTalk", 0.3, 1, 40, 50, 600*ms),
		{ // MX Player: 24 fps video with a ~30 fps render loop
			Name: "MX Player", Cat: General, Style: StyleVideo,
			IdleContentFPS: 24, IdleInvalidateFPS: 30,
			TouchContentFPS: 24, TouchInvalidateFPS: 35,
			Tail: 300 * ms, FullScreenRender: true,
		},
		feed("Naver", 1.5, 4, 45, 55, 800*ms),
		feed("Naver Webtoon", 0.5, 1, 55, 60, 1200*ms),
		func() Params { // NaverMap: as Daum Maps, slightly lighter beacon
			p := feed("NaverMap", 1.5, 18, 45, 55, 700*ms)
			p.RedundantRenderPx = 200000
			return p
		}(),
		pulse("PhotoWonder", 2, 8, 35, 45),
		pulse("Tiny Flashlight", 0.2, 1, 5, 10),
		pulse("Weather", 4, 12, 30, 40),

		// --- 15 games ---
		game("Anisachun", 12, 35),
		withLull(game("Asphalt 8", 55, 58), 50*sim.Second, 12*sim.Second), // racer: menus between races
		game("Canimal Wars", 15, 40),
		game("Castle Heros", 18, 42),
		withLull(game("Cookie Run", 35, 50), 40*sim.Second, 6*sim.Second), // runner with death screens
		game("Devilshness", 10, 32),
		game("Everypong", 20, 45),
		withLull(game("Geometry Dash", 40, 55), 18*sim.Second, 3500*ms), // frequent death screens
		game("I Love Style", 8, 35),
		game("Jelly Splash", 10, 50), // Figure 2's 60 fps / low-content puzzle
		game("Modoo Marble", 14, 36),
		game("PokoPang", 16, 45),
		withLull(game("Swingrun", 32, 48), 25*sim.Second, 4*sim.Second),  // runner
		withLull(game("TempleRun", 38, 54), 35*sim.Second, 6*sim.Second), // runner with death screens
		game("Watermargin", 12, 34),
	}
	return params
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Params, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}

// Names returns the catalog's application names, optionally filtered by
// category (pass -1 for all).
func Names(cat Category) []string {
	var out []string
	for _, p := range Catalog() {
		if cat < 0 || p.Cat == cat {
			out = append(out, p.Name)
		}
	}
	return out
}
