package app

import (
	"testing"

	"ccdem/internal/sim"
	"ccdem/internal/surface"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 30 {
		t.Fatalf("catalog size = %d, want 30", len(cat))
	}
	general, games := 0, 0
	seen := map[string]bool{}
	for _, p := range cat {
		if err := p.Validate(); err != nil {
			t.Errorf("catalog entry %q invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate app %q", p.Name)
		}
		seen[p.Name] = true
		switch p.Cat {
		case General:
			general++
		case Game:
			games++
		}
	}
	if general != 15 || games != 15 {
		t.Errorf("split = %d general / %d games, want 15/15", general, games)
	}
}

func TestCatalogGameInvariants(t *testing.T) {
	for _, p := range Catalog() {
		if p.Cat != Game {
			continue
		}
		// Games request 60 fps regardless of content (Figure 3b).
		if p.IdleInvalidateFPS != 60 || p.TouchInvalidateFPS != 60 {
			t.Errorf("%s: game invalidate rates %v/%v, want 60/60",
				p.Name, p.IdleInvalidateFPS, p.TouchInvalidateFPS)
		}
		if !p.FullScreenRender {
			t.Errorf("%s: game without full-screen render", p.Name)
		}
	}
}

func TestCatalogRedundancyTaxonomy(t *testing.T) {
	// Figure 3d: ~80% of games exceed 20 redundant fps when idle; roughly
	// 40% of general apps show ≈20 redundant fps.
	gamesHigh := 0
	generalHigh := 0
	for _, p := range Catalog() {
		redundant := p.IdleInvalidateFPS - p.IdleContentFPS
		switch p.Cat {
		case Game:
			if redundant > 20 {
				gamesHigh++
			}
		case General:
			if redundant >= 15 {
				generalHigh++
			}
		}
	}
	if gamesHigh < 11 || gamesHigh > 13 {
		t.Errorf("games with >20 redundant fps = %d, want ≈12 (80%%)", gamesHigh)
	}
	if generalHigh < 3 || generalHigh > 6 {
		t.Errorf("general apps with high redundancy = %d, want ≈4-5 (~40%%)", generalHigh)
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("Jelly Splash"); !ok {
		t.Error("Jelly Splash missing")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("nonexistent app found")
	}
	if n := len(Names(General)); n != 15 {
		t.Errorf("general names = %d", n)
	}
	if n := len(Names(Game)); n != 15 {
		t.Errorf("game names = %d", n)
	}
	if n := len(Names(AnyCategory)); n != 30 {
		t.Errorf("all names = %d", n)
	}
}

// TestCatalogAllRunnable attaches every catalog app briefly to catch
// painter panics on any style.
func TestCatalogAllRunnable(t *testing.T) {
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			eng := sim.NewEngine()
			mgr := surface.NewManager(eng, 360, 640)
			m, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			m.Attach(eng, mgr)
			eng.Every(sim.Hz(60), sim.Hz(60), func() { mgr.VSync(eng.Now(), 60) })
			eng.RunUntil(2 * sim.Second)
			if mgr.Frames() == 0 {
				t.Error("no frames latched")
			}
		})
	}
}
