package app

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadParams hardens the workload parser: arbitrary input must either
// error or yield workloads that validate and round-trip.
func FuzzReadParams(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, Catalog()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`[]`)
	f.Add(`[{"name":"x","category":"game","style":"sprites","idle_content_fps":1,"idle_invalidate_fps":1,"touch_content_fps":1,"touch_invalidate_fps":1}]`)
	f.Add(`{"name":"not-an-array"}`)

	f.Fuzz(func(t *testing.T, in string) {
		ps, err := ReadParams(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, p := range ps {
			if err := p.Validate(); err != nil {
				t.Fatalf("accepted invalid workload %+v: %v", p, err)
			}
			if _, err := New(p); err != nil {
				t.Fatalf("accepted workload rejected by New: %v", err)
			}
		}
		var out bytes.Buffer
		if err := WriteParams(&out, ps); err != nil {
			t.Fatalf("accepted workloads failed to serialize: %v", err)
		}
	})
}
