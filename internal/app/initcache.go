package app

import (
	"sync"

	"ccdem/internal/framebuffer"
)

// Memoized app screens. An app's screen after its seq-th content advance is
// a pure function of (name, paint style, surface width, surface height,
// seq): backgrounds and colors derive from the style and the name salt,
// sprite kinematics from the name-seeded rng advanced seq steps, scroll
// position is seq*feedRowH, and the video/pulse patterns hash seq directly.
// Fleet campaigns install the same catalog apps millions of times and walk
// the same early content states, so each screen is materialized once per
// key and later renders alias it copy-on-write (Buffer.ShareFrom /
// ShareFromDamage) — a memo hit writes no pixels at all.
//
// seq 0 is the install screen (always memoized, as before); seq > 0
// entries are the intermediate-state extension, admitted for feed apps
// only (see memoAdmit) and stored only as palette-compressed snapshots
// (NewPaletteSnapshot), so a cached screen costs ~0.6 MB instead of
// ~3.7 MB.
//
// Memoized buffers are written once under the lock and only ever read
// afterwards, which makes the concurrent aliasing by fleet workers
// race-free.

type stateKey struct {
	name  string
	style PaintStyle
	w, h  int
	seq   uint64
}

const (
	// stateSeqCap bounds how deep into an app's content stream screens are
	// memoized. Sessions spend their memoizable phase near the start
	// (installs, first interactions); past the cap the lookup is skipped
	// entirely — no lock, no map read — so steady-state apps pay nothing.
	stateSeqCap = 64
	// stateScreenBudget bounds the cache globally as a safety valve only.
	// Admission (memoAdmit) is a pure function of the key, so the set of
	// admissible keys per screen geometry is fixed by the catalog: one
	// install screen per app plus stateSeqCap feed states per feed app —
	// comfortably under this budget (TestStateScreenBudgetNeverBinds pins
	// the margin). The budget must never bind in practice: if it did,
	// which keys got cached would depend on arrival order, and cache
	// hit/miss counters would stop being deterministic across worker
	// counts. It exists only to bound memory should the catalog grow past
	// the guard test.
	stateScreenBudget = 768
	// stateStripes is the number of per-key singleflight locks. First
	// paints of distinct keys rarely collide on a stripe; a collision only
	// serializes two first-paints, never a hit.
	stateStripes = 64
)

var (
	stateScreenMu sync.RWMutex
	stateScreens  = make(map[stateKey]*framebuffer.Buffer)
	// stateStripe singleflights the paint-and-store of each key: with it,
	// the total number of memo misses for a cold cache is exactly the
	// number of distinct admissible keys painted, no matter how many fleet
	// workers race on the same app states. (Merged fleet metrics sum
	// hit/miss counters across devices, so per-device attribution may
	// shift between schedules, but the sums — what the determinism tests
	// compare — cannot.)
	stateStripe [stateStripes]sync.Mutex
)

// memoAdmit reports whether key's screen may enter the memo. The
// predicate is a pure function of the key — never of cache occupancy or
// arrival order — so which screens are memoizable is identical on every
// run and at every worker count. Install screens (seq 0) always qualify,
// as before. Intermediate states qualify only for feed apps: feeds are
// where repainting is expensive (ScrollVert moves the whole list region
// every content frame) and their early scroll states recur across every
// session of a fleet campaign, while sprite/video/pulse repaints are
// small and their admission would multiply the cached-screen worst case
// several-fold for negligible savings.
func memoAdmit(key stateKey) bool {
	if key.seq == 0 {
		return true
	}
	return key.style == StyleFeed && key.seq <= stateSeqCap
}

// stripeFor returns the singleflight lock for key (FNV-1a over the key's
// fields).
func stripeFor(key stateKey) *sync.Mutex {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.name); i++ {
		h = (h ^ uint64(key.name[i])) * prime64
	}
	h = (h ^ uint64(key.style)) * prime64
	h = (h ^ uint64(key.w)) * prime64
	h = (h ^ uint64(key.h)) * prime64
	h = (h ^ key.seq) * prime64
	return &stateStripe[h%stateStripes]
}

// lookupStateScreen returns the memoized screen for key, or nil.
func lookupStateScreen(key stateKey) *framebuffer.Buffer {
	stateScreenMu.RLock()
	memo := stateScreens[key]
	stateScreenMu.RUnlock()
	return memo
}

// storeStateScreen snapshots a freshly painted screen for key. Screens
// past the install state are only stored when they palette-compress in
// full; the install screen (seq 0) falls back to a raw snapshot so
// install memoization never degrades, whatever the content.
func storeStateScreen(key stateKey, buf *framebuffer.Buffer) {
	stateScreenMu.RLock()
	_, dup := stateScreens[key]
	full := len(stateScreens) >= stateScreenBudget
	stateScreenMu.RUnlock()
	if dup || full {
		return
	}
	snapshot := framebuffer.NewPaletteSnapshot(buf)
	if snapshot == nil {
		if key.seq != 0 {
			return
		}
		snapshot = framebuffer.New(buf.Width(), buf.Height())
		snapshot.CopyFrom(buf)
	}
	stateScreenMu.Lock()
	if _, dup := stateScreens[key]; !dup && len(stateScreens) < stateScreenBudget {
		stateScreens[key] = snapshot
	}
	stateScreenMu.Unlock()
}
