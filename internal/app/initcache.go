package app

import (
	"sync"

	"ccdem/internal/framebuffer"
)

// Install-screen memoization. An app's initial screen is a pure function
// of (name, paint style, surface width, surface height): the background
// and colors derive from the style and the name salt, sprite positions
// from the name-seeded rng, and scroll position / content sequence start
// at zero. Fleet campaigns install the same catalog apps millions of
// times, so the painted screen is materialized once per key and later
// installs alias it copy-on-write (Buffer.ShareFrom) — an install writes
// no pixels at all until the app's first real paint.
//
// Memoized buffers are written once under the lock and only ever read
// afterwards, which makes the concurrent ShareFrom aliasing by fleet
// workers race-free.

type initKey struct {
	name  string
	style PaintStyle
	w, h  int
}

// initScreenCap bounds the cache: the 30-app catalog times a handful of
// screen geometries fits comfortably; beyond the cap new keys simply
// paint from scratch (no eviction, so cached pointers stay immutable).
const initScreenCap = 128

var (
	initScreenMu sync.Mutex
	initScreens  = make(map[initKey]*framebuffer.Buffer)
)

// lookupInitScreen returns the memoized screen for key, or nil.
func lookupInitScreen(key initKey) *framebuffer.Buffer {
	initScreenMu.Lock()
	memo := initScreens[key]
	initScreenMu.Unlock()
	return memo
}

// storeInitScreen snapshots a freshly painted screen for key.
func storeInitScreen(key initKey, buf *framebuffer.Buffer) {
	snapshot := framebuffer.New(buf.Width(), buf.Height())
	snapshot.CopyFrom(buf)
	initScreenMu.Lock()
	if _, dup := initScreens[key]; !dup && len(initScreens) < initScreenCap {
		initScreens[key] = snapshot
	}
	initScreenMu.Unlock()
}
