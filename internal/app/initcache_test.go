package app

import "testing"

// TestStateScreenBudgetNeverBinds pins the invariant the memo's
// determinism rests on: admission is a pure function of the key, so per
// screen geometry the admissible keys are exactly one install screen per
// catalog app plus stateSeqCap feed states per feed app — and that count
// must stay under stateScreenBudget. If the budget could bind, which
// screens got cached would depend on arrival order, and the memo hit/miss
// counters would stop being deterministic across fleet worker counts.
// Growing the catalog past this margin requires raising the budget (or
// tightening memoAdmit) in the same change.
func TestStateScreenBudgetNeverBinds(t *testing.T) {
	installs, feeds := 0, 0
	for _, p := range Catalog() {
		installs++
		if p.Style == StyleFeed {
			feeds++
		}
	}
	worst := installs + feeds*stateSeqCap
	if worst >= stateScreenBudget {
		t.Fatalf("admissible keys per geometry = %d (%d installs + %d feed apps × %d states) >= budget %d; "+
			"a binding budget makes cache admission arrival-order-dependent",
			worst, installs, feeds, stateSeqCap, stateScreenBudget)
	}
}

// TestMemoAdmitIsKeyPure spot-checks the admission predicate: installs of
// any style qualify, intermediate states qualify only for feeds inside
// the seq window.
func TestMemoAdmitIsKeyPure(t *testing.T) {
	for _, style := range []PaintStyle{StyleFeed, StyleSprites, StyleVideo, StylePulse} {
		if !memoAdmit(stateKey{name: "x", style: style, w: 720, h: 1280}) {
			t.Errorf("install screen (seq 0, style %v) not admitted", style)
		}
		got := memoAdmit(stateKey{name: "x", style: style, w: 720, h: 1280, seq: 1})
		if want := style == StyleFeed; got != want {
			t.Errorf("seq 1 admission for style %v = %v, want %v", style, got, want)
		}
	}
	if memoAdmit(stateKey{name: "x", style: StyleFeed, w: 720, h: 1280, seq: stateSeqCap + 1}) {
		t.Error("feed state past stateSeqCap admitted")
	}
	if !memoAdmit(stateKey{name: "x", style: StyleFeed, w: 720, h: 1280, seq: stateSeqCap}) {
		t.Error("feed state at stateSeqCap not admitted")
	}
}
