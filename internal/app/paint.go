package app

import (
	"ccdem/internal/framebuffer"
)

// Painters turn abstract "content advanced" events into actual pixel
// changes, so the meter's grid comparison sees realistic damage. Every
// painter guarantees that a content advance changes a region large enough
// to cross grid sample points at the recommended 9K lattice (cell stride
// ≈10 px on the 720×1280 screen); live-wallpaper-style sub-stride changes
// are exercised separately by internal/wallpaper for the Figure 6 accuracy
// experiment.

const (
	headerH     = 48 // status/app bar height for feed apps
	feedRowH    = 24 // scroll step per content advance
	spriteCount = 6
	spriteSize  = 48
	pulseSize   = 120
	bandW       = 60 // video pattern band width
)

// hashColor derives a stable pseudo-random color from a sequence number
// and a salt, bright enough to differ from the backgrounds in use.
func hashColor(seq uint64, salt uint64) framebuffer.Color {
	x := seq*0x9e3779b97f4a7c15 + salt*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	x ^= x >> 31
	x *= 0xd6e8feb86659fd93
	x ^= x >> 27
	r := uint8(40 + (x>>0)%200)
	g := uint8(40 + (x>>8)%200)
	b := uint8(40 + (x>>16)%200)
	return framebuffer.RGB(r, g, b)
}

// spriteSz returns the sprite edge adapted to the screen: the standard
// 48 px on phone-sized screens, shrinking so at least two sprite widths
// fit on tiny test screens.
func (m *Model) spriteSz() int {
	sz := spriteSize
	if lim := min(m.w, m.h) / 2; sz > lim {
		sz = lim
	}
	if sz < 1 {
		sz = 1
	}
	return sz
}

// headerPx returns the app-bar height adapted to the screen.
func (m *Model) headerPx() int {
	h := headerH
	if lim := m.h / 4; h > lim {
		h = lim
	}
	return h
}

func (m *Model) bgColor() framebuffer.Color {
	switch m.p.Style {
	case StyleSprites:
		return framebuffer.RGB(18, 18, 30)
	case StyleVideo:
		return framebuffer.Black
	default:
		return framebuffer.RGB(245, 245, 245)
	}
}

// initPaint draws the app's initial screen into its surface buffer before
// the first frame latches. The screen is a pure function of (name, style,
// width, height) — backgrounds and colors derive from style and salt,
// sprite positions from the name-seeded rng, and scroll/content state
// starts at zero — so identical installs share one memoized screen via
// copy-on-write (see initcache.go) instead of repainting ~1 MB of pixels.
func (m *Model) initPaint() {
	buf := m.srf.Buffer()
	if m.p.Style == StyleSprites {
		// Sprite kinematic state always initializes from the rng — memo
		// hit or not — so every install performs identical draws.
		sz := m.spriteSz()
		rng := m.ensureRNG()
		m.sprites = make([]spriteState, spriteCount)
		for i := range m.sprites {
			m.sprites[i] = spriteState{
				x:  rng.Intn(max(m.w-sz, 1)),
				y:  rng.Intn(max(m.h-sz, 1)),
				dx: 12 + rng.Intn(10),
				dy: 12 + rng.Intn(10),
			}
			if rng.Intn(2) == 0 {
				m.sprites[i].dx = -m.sprites[i].dx
			}
			if rng.Intn(2) == 0 {
				m.sprites[i].dy = -m.sprites[i].dy
			}
		}
	}
	key := stateKey{name: m.p.Name, style: m.p.Style, w: m.w, h: m.h}
	if memo := lookupStateScreen(key); memo != nil {
		buf.ShareFrom(memo)
		if m.p.Style == StyleSprites {
			// paintSprites did not run: record the drawn positions it
			// would have, so the first content paint erases them.
			m.prevSprites = append(m.prevSprites[:0], m.sprites...)
		}
		return
	}
	m.paintInitial(buf)
	storeStateScreen(key, buf)
}

// paintInitial renders the initial screen from scratch (the memo-miss
// path, and the oracle the memo is differentially tested against).
func (m *Model) paintInitial(buf *framebuffer.Buffer) {
	buf.FillAll(m.bgColor())
	switch m.p.Style {
	case StyleFeed:
		buf.Fill(framebuffer.R(0, 0, m.w, m.headerPx()), hashColor(0, m.salt()))
		m.paintFeedRows(buf, framebuffer.R(0, m.headerPx(), m.w, m.h))
	case StyleSprites:
		m.paintSprites(buf)
	case StyleVideo:
		m.paintVideo(buf)
	case StylePulse:
		buf.Fill(framebuffer.R(0, 0, m.w, m.headerPx()), hashColor(0, m.salt()))
		m.paintPulse(buf)
	}
}

func (m *Model) salt() uint64 { return m.saltV }

// advanceContent moves the app's content state forward by one step.
func (m *Model) advanceContent() {
	m.contentSeq++
	switch m.p.Style {
	case StyleFeed:
		m.scrollPos += feedRowH
	case StyleSprites:
		sz := m.spriteSz()
		for i := range m.sprites {
			s := &m.sprites[i]
			s.x += s.dx
			s.y += s.dy
			if s.x < 0 {
				s.x, s.dx = 0, -s.dx
			}
			if s.x > m.w-sz {
				s.x, s.dx = max(m.w-sz, 0), -s.dx
			}
			if s.y < 0 {
				s.y, s.dy = 0, -s.dy
			}
			if s.y > m.h-sz {
				s.y, s.dy = max(m.h-sz, 0), -s.dy
			}
		}
	}
}

// paint renders the state of contentSeq into buf, accumulating the
// damaged rectangles into m.damage.
//
// With the state memo enabled and the content still in the memoizable
// window, the screen for contentSeq may already exist (painted earlier by
// any device): the hit path records exactly the damage painting would
// have reported and aliases the memo copy-on-write instead of writing
// pixels. The miss path paints normally and publishes the result. Both
// paths report identical damage and render cost, so every downstream
// decision — dirty-pixel accounting, compose, metering — is byte-for-byte
// the same with and without the memo (the golden and differential tests
// hold this line).
func (m *Model) paint(buf *framebuffer.Buffer) {
	key := stateKey{name: m.p.Name, style: m.p.Style, w: m.w, h: m.h, seq: m.contentSeq}
	if m.stateMemo && memoAdmit(key) {
		if memo := lookupStateScreen(key); memo != nil {
			m.memoHit(memo, buf)
			return
		}
		// Singleflight the first paint of this key: re-check under the
		// key's stripe so concurrent devices produce exactly one miss
		// (and one snapshot) per distinct key, keeping summed hit/miss
		// counters independent of worker scheduling.
		lock := stripeFor(key)
		lock.Lock()
		if memo := lookupStateScreen(key); memo != nil {
			lock.Unlock()
			m.memoHit(memo, buf)
			return
		}
		m.memoMisses++
		m.paintStyle(buf)
		storeStateScreen(key, buf)
		lock.Unlock()
		return
	}
	m.paintStyle(buf)
}

// memoHit applies a memoized screen: record the damage painting would
// have reported, then alias the memo copy-on-write over exactly those
// rectangles.
func (m *Model) memoHit(memo, buf *framebuffer.Buffer) {
	m.memoHits++
	m.memoDamage()
	buf.ShareFromDamage(memo, m.damage.Rects())
}

// memoDamage accumulates into m.damage exactly the rectangles paintStyle
// would have, in the same Region.Add order (Add's merging is
// order-sensitive, and the damage region feeds dirty-pixel accounting),
// and performs the painter-state updates the skipped paint would have
// done (prevSprites tracking).
func (m *Model) memoDamage() {
	switch m.p.Style {
	case StyleFeed:
		m.damage.Add(framebuffer.R(0, m.headerPx(), m.w, m.h))
	case StyleSprites:
		sz := m.spriteSz()
		for _, s := range m.prevSprites {
			m.damage.Add(framebuffer.R(s.x, s.y, s.x+sz, s.y+sz))
		}
		m.prevSprites = m.prevSprites[:0]
		for _, s := range m.sprites {
			m.damage.Add(framebuffer.R(s.x, s.y, s.x+sz, s.y+sz))
			m.prevSprites = append(m.prevSprites, s)
		}
	case StyleVideo:
		m.damage.Add(m.videoRect())
	case StylePulse:
		m.damage.Add(m.pulseRect())
	}
}

// paintStyle renders the state of contentSeq into buf from the buffer's
// current (drawnSeq) content — the memo-miss path, and the oracle the
// memo hit path is differentially tested against.
func (m *Model) paintStyle(buf *framebuffer.Buffer) {
	switch m.p.Style {
	case StyleFeed:
		region := framebuffer.R(0, m.headerPx(), m.w, m.h)
		steps := int(m.contentSeq - m.drawnSeq)
		dy := steps * feedRowH
		if dy >= region.Dy() {
			m.paintFeedRows(buf, region)
		} else {
			repaint := buf.ScrollVert(region, -dy) // content moves up as the list scrolls
			m.paintFeedRows(buf, repaint)
		}
		m.damage.Add(region) // scrolling moves every pixel of the region
	case StyleSprites:
		// Erase sprites at previously drawn positions, then draw at the
		// new ones; each rectangle is tracked individually.
		sz := m.spriteSz()
		for _, s := range m.prevSprites {
			r := framebuffer.R(s.x, s.y, s.x+sz, s.y+sz)
			buf.Fill(r, m.bgColor())
			m.damage.Add(r)
		}
		m.paintSprites(buf)
	case StyleVideo:
		m.damage.Add(m.paintVideo(buf))
	case StylePulse:
		m.damage.Add(m.paintPulse(buf))
	}
}

// paintFeedRows fills r with list rows whose colors derive from absolute
// scroll position, so scrolled-in rows always differ from what they
// replace.
func (m *Model) paintFeedRows(buf *framebuffer.Buffer, r framebuffer.Rect) {
	r = r.Clamp(framebuffer.R(0, m.headerPx(), m.w, m.h))
	if r.Empty() {
		return
	}
	for y := r.Y0; y < r.Y1; y++ {
		abs := (m.scrollPos + y) / feedRowH
		c := hashColor(uint64(abs), m.salt())
		// Alternate row texture: body rows are lightened.
		if (m.scrollPos+y)%feedRowH > 4 {
			rr, g, b := c.RGB()
			c = framebuffer.RGB(rr/2+110, g/2+110, b/2+110)
		}
		buf.Fill(framebuffer.R(r.X0, y, r.X1, y+1), c)
	}
}

// paintSprites draws all sprites at their current positions, records them
// as the drawn positions, and adds each rectangle to the damage region.
func (m *Model) paintSprites(buf *framebuffer.Buffer) {
	sz := m.spriteSz()
	m.prevSprites = m.prevSprites[:0]
	for i, s := range m.sprites {
		r := framebuffer.R(s.x, s.y, s.x+sz, s.y+sz)
		buf.Fill(r, hashColor(m.contentSeq, m.salt()+uint64(i)))
		m.damage.Add(r)
		m.prevSprites = append(m.prevSprites, s)
	}
}

// videoRect returns the letterboxed video area.
func (m *Model) videoRect() framebuffer.Rect {
	vh := m.h / 2
	return framebuffer.R(0, (m.h-vh)/2, m.w, (m.h+vh)/2)
}

// pulseRect returns the centered widget region.
func (m *Model) pulseRect() framebuffer.Rect {
	x0 := (m.w - pulseSize) / 2
	y0 := (m.h - pulseSize) / 2
	return framebuffer.R(x0, y0, x0+pulseSize, y0+pulseSize)
}

// paintVideo repaints the letterboxed video area with a band pattern
// derived from the current frame number.
func (m *Model) paintVideo(buf *framebuffer.Buffer) framebuffer.Rect {
	r := m.videoRect()
	for x := r.X0; x < r.X1; x += bandW {
		x1 := x + bandW
		if x1 > r.X1 {
			x1 = r.X1
		}
		buf.Fill(framebuffer.R(x, r.Y0, x1, r.Y1), hashColor(m.contentSeq, m.salt()+uint64(x/bandW)))
	}
	return r
}

// paintPulse repaints the widget region.
func (m *Model) paintPulse(buf *framebuffer.Buffer) framebuffer.Rect {
	r := m.pulseRect()
	buf.Fill(r, hashColor(m.contentSeq, m.salt()))
	return r
}
