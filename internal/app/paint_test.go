package app

import (
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/input"
	"ccdem/internal/sim"
	"ccdem/internal/surface"
)

// styleRig attaches a model of a given style and hand-cranks vsyncs.
func styleRig(t *testing.T, style PaintStyle) (*Model, *surface.Manager, *sim.Engine) {
	t.Helper()
	p := Params{
		Name: "styletest", Cat: General, Style: style,
		IdleContentFPS: 10, IdleInvalidateFPS: 20,
		TouchContentFPS: 30, TouchInvalidateFPS: 40,
		Tail: 300 * sim.Millisecond,
	}
	eng := sim.NewEngine()
	mgr := surface.NewManager(eng, 240, 320)
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(eng, mgr)
	eng.Every(sim.Hz(60), sim.Hz(60), func() { mgr.VSync(eng.Now(), 60) })
	return m, mgr, eng
}

func TestEveryStyleChangesPixels(t *testing.T) {
	for _, style := range []PaintStyle{StyleFeed, StyleSprites, StyleVideo, StylePulse} {
		style := style
		t.Run(styleName(style), func(t *testing.T) {
			_, mgr, eng := styleRig(t, style)
			eng.RunUntil(500 * sim.Millisecond)
			before := framebuffer.New(240, 320)
			before.CopyFrom(mgr.Framebuffer())
			eng.RunUntil(1500 * sim.Millisecond)
			if mgr.Framebuffer().Equal(before) {
				t.Error("a second of 10 fps content changed no pixels")
			}
		})
	}
}

func styleName(s PaintStyle) string {
	switch s {
	case StyleFeed:
		return "feed"
	case StyleSprites:
		return "sprites"
	case StyleVideo:
		return "video"
	case StylePulse:
		return "pulse"
	default:
		return "unknown"
	}
}

func TestFeedScrollProducesFreshRows(t *testing.T) {
	m, mgr, eng := styleRig(t, StyleFeed)
	eng.RunUntil(200 * sim.Millisecond)
	fb := mgr.Framebuffer()
	snapshots := make([]framebuffer.Color, 0, 4)
	for i := 0; i < 4; i++ {
		eng.RunUntil(eng.Now() + 500*sim.Millisecond)
		snapshots = append(snapshots, fb.At(120, 319)) // bottom row: freshly scrolled in
	}
	distinct := map[framebuffer.Color]bool{}
	for _, c := range snapshots {
		distinct[c] = true
	}
	if len(distinct) < 2 {
		t.Errorf("bottom row never changed across scrolls: %v", snapshots)
	}
	_ = m
}

func TestSpritesStayInBounds(t *testing.T) {
	m, _, eng := styleRig(t, StyleSprites)
	for i := 0; i < 600; i++ {
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
		for j, s := range m.sprites {
			if s.x < 0 || s.y < 0 || s.x+spriteSize > m.w || s.y+spriteSize > m.h {
				t.Fatalf("sprite %d out of bounds at (%d,%d)", j, s.x, s.y)
			}
		}
	}
}

func TestPauseResume(t *testing.T) {
	m, mgr, eng := styleRig(t, StylePulse)
	eng.RunUntil(sim.Second)
	if m.Paused() {
		t.Fatal("running model reports paused")
	}
	m.Pause()
	if !m.Paused() {
		t.Fatal("paused model reports running")
	}
	eng.RunUntil(eng.Now() + 100*sim.Millisecond) // drain pending request
	frames := mgr.Frames()
	intended := m.IntendedTotal()
	eng.RunUntil(eng.Now() + 2*sim.Second)
	if mgr.Frames() != frames {
		t.Errorf("paused app latched frames: %d → %d", frames, mgr.Frames())
	}
	if m.IntendedTotal() != intended {
		t.Error("paused app advanced content")
	}
	m.Resume()
	m.Resume() // idempotent
	eng.RunUntil(eng.Now() + 2*sim.Second)
	if mgr.Frames() <= frames {
		t.Error("resumed app latched no frames")
	}
	if m.IntendedTotal() <= intended {
		t.Error("resumed app advanced no content")
	}
}

func TestPausedAppIgnoresNothingButProducesNothing(t *testing.T) {
	// Touches delivered while paused must not crash and must not produce
	// frames (the event still updates interaction state for when the app
	// resumes, like Android queuing input to a stopped activity).
	m, mgr, eng := styleRig(t, StyleFeed)
	eng.RunUntil(sim.Second)
	m.Pause()
	eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	frames := mgr.Frames()
	m.HandleTouch(input.Event{At: eng.Now(), Kind: input.TouchDown, X: 10, Y: 10})
	eng.RunUntil(eng.Now() + sim.Second)
	if mgr.Frames() != frames {
		t.Error("touch on paused app produced frames")
	}
}

func TestLullSuppressesContent(t *testing.T) {
	p := Params{
		Name: "lulltest", Cat: Game, Style: StyleSprites,
		IdleContentFPS: 40, IdleInvalidateFPS: 60,
		TouchContentFPS: 40, TouchInvalidateFPS: 60,
		FullScreenRender: true,
		LullPeriod:       4 * sim.Second, LullDuration: 2 * sim.Second, LullContentFPS: 2,
	}
	eng := sim.NewEngine()
	mgr := surface.NewManager(eng, 240, 320)
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(eng, mgr)
	eng.Every(sim.Hz(60), sim.Hz(60), func() { mgr.VSync(eng.Now(), 60) })
	eng.RunUntil(20 * sim.Second)
	// Half the time at 40 fps, half at 2 fps → mean ≈ 21 fps of intent.
	rate := float64(m.IntendedTotal()) / 20
	if rate < 15 || rate > 28 {
		t.Errorf("mean intended rate with lulls = %v, want ≈21", rate)
	}
	// But frame requests stayed at 60 fps throughout (the game renders
	// its menu as fast as its gameplay).
	reqRate := float64(m.Surface().Requests()) / 20
	if reqRate < 55 {
		t.Errorf("request rate = %v, want ≈60 despite lulls", reqRate)
	}
}

func TestLullValidation(t *testing.T) {
	p := Params{Name: "x", LullPeriod: sim.Second, LullDuration: 2 * sim.Second}
	if err := p.Validate(); err == nil {
		t.Error("lull duration ≥ period accepted")
	}
	p = Params{Name: "x", LullPeriod: -1}
	if err := p.Validate(); err == nil {
		t.Error("negative lull accepted")
	}
}

func TestResumeBeforeAttachPanics(t *testing.T) {
	m, err := New(Params{Name: "x", Style: StylePulse})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Resume before Attach did not panic")
		}
	}()
	m.Resume()
}
