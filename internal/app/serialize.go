package app

import (
	"encoding/json"
	"fmt"
	"io"

	"ccdem/internal/sim"
)

// Workload serialization: Params as a stable JSON document, so downstream
// users can model their own applications without recompiling — point
// ccdem-run's -app-file at a JSON description and measure it.

type wireParams struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Style    string `json:"style"`

	IdleContentFPS     float64 `json:"idle_content_fps"`
	IdleInvalidateFPS  float64 `json:"idle_invalidate_fps"`
	TouchContentFPS    float64 `json:"touch_content_fps"`
	TouchInvalidateFPS float64 `json:"touch_invalidate_fps"`
	TailMS             int64   `json:"tail_ms"`

	LullPeriodMS   int64   `json:"lull_period_ms,omitempty"`
	LullDurationMS int64   `json:"lull_duration_ms,omitempty"`
	LullContentFPS float64 `json:"lull_content_fps,omitempty"`

	FullScreenRender  bool `json:"full_screen_render"`
	RedundantRenderPx int  `json:"redundant_render_px"`
}

var categoryNames = map[Category]string{General: "general", Game: "game"}
var categoryValues = map[string]Category{"general": General, "game": Game}
var styleNames = map[PaintStyle]string{
	StyleFeed: "feed", StyleSprites: "sprites", StyleVideo: "video", StylePulse: "pulse",
}
var styleValues = map[string]PaintStyle{
	"feed": StyleFeed, "sprites": StyleSprites, "video": StyleVideo, "pulse": StylePulse,
}

func toWire(p Params) wireParams {
	return wireParams{
		Name:               p.Name,
		Category:           categoryNames[p.Cat],
		Style:              styleNames[p.Style],
		IdleContentFPS:     p.IdleContentFPS,
		IdleInvalidateFPS:  p.IdleInvalidateFPS,
		TouchContentFPS:    p.TouchContentFPS,
		TouchInvalidateFPS: p.TouchInvalidateFPS,
		TailMS:             int64(p.Tail / sim.Millisecond),
		LullPeriodMS:       int64(p.LullPeriod / sim.Millisecond),
		LullDurationMS:     int64(p.LullDuration / sim.Millisecond),
		LullContentFPS:     p.LullContentFPS,
		FullScreenRender:   p.FullScreenRender,
		RedundantRenderPx:  p.RedundantRenderPx,
	}
}

func fromWire(wp wireParams) (Params, error) {
	cat, ok := categoryValues[wp.Category]
	if !ok {
		return Params{}, fmt.Errorf("app: unknown category %q", wp.Category)
	}
	style, ok := styleValues[wp.Style]
	if !ok {
		return Params{}, fmt.Errorf("app: unknown style %q", wp.Style)
	}
	p := Params{
		Name: wp.Name, Cat: cat, Style: style,
		IdleContentFPS:     wp.IdleContentFPS,
		IdleInvalidateFPS:  wp.IdleInvalidateFPS,
		TouchContentFPS:    wp.TouchContentFPS,
		TouchInvalidateFPS: wp.TouchInvalidateFPS,
		Tail:               sim.Time(wp.TailMS) * sim.Millisecond,
		LullPeriod:         sim.Time(wp.LullPeriodMS) * sim.Millisecond,
		LullDuration:       sim.Time(wp.LullDurationMS) * sim.Millisecond,
		LullContentFPS:     wp.LullContentFPS,
		FullScreenRender:   wp.FullScreenRender,
		RedundantRenderPx:  wp.RedundantRenderPx,
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// WriteParams serializes workload descriptions as a JSON array.
func WriteParams(w io.Writer, ps []Params) error {
	out := make([]wireParams, 0, len(ps))
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return err
		}
		out = append(out, toWire(p))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadParams parses a JSON array of workload descriptions, validating
// each.
func ReadParams(r io.Reader) ([]Params, error) {
	var wps []wireParams
	if err := json.NewDecoder(r).Decode(&wps); err != nil {
		return nil, fmt.Errorf("app: parsing workloads: %w", err)
	}
	if len(wps) == 0 {
		return nil, fmt.Errorf("app: no workloads in document")
	}
	seen := map[string]bool{}
	ps := make([]Params, 0, len(wps))
	for i, wp := range wps {
		p, err := fromWire(wp)
		if err != nil {
			return nil, fmt.Errorf("app: workload %d: %w", i, err)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("app: duplicate workload %q", p.Name)
		}
		seen[p.Name] = true
		ps = append(ps, p)
	}
	return ps, nil
}
