package app

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestParamsJSONRoundTrip(t *testing.T) {
	orig := Catalog()
	var buf bytes.Buffer
	if err := WriteParams(&buf, orig); err != nil {
		t.Fatalf("WriteParams: %v", err)
	}
	got, err := ReadParams(&buf)
	if err != nil {
		t.Fatalf("ReadParams: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		for i := range orig {
			if !reflect.DeepEqual(orig[i], got[i]) {
				t.Fatalf("entry %d differs:\n  %+v\n  %+v", i, orig[i], got[i])
			}
		}
		t.Fatal("round trip changed the catalog")
	}
}

func TestReadParamsValidation(t *testing.T) {
	cases := map[string]string{
		"garbage":      "nope",
		"empty":        "[]",
		"bad category": `[{"name":"x","category":"widget","style":"feed","idle_content_fps":1,"idle_invalidate_fps":1,"touch_content_fps":1,"touch_invalidate_fps":1}]`,
		"bad style":    `[{"name":"x","category":"game","style":"3d","idle_content_fps":1,"idle_invalidate_fps":1,"touch_content_fps":1,"touch_invalidate_fps":1}]`,
		"invalid rate": `[{"name":"x","category":"game","style":"sprites","idle_content_fps":-1,"idle_invalidate_fps":1,"touch_content_fps":1,"touch_invalidate_fps":1}]`,
		"no name":      `[{"name":"","category":"game","style":"sprites","idle_content_fps":1,"idle_invalidate_fps":1,"touch_content_fps":1,"touch_invalidate_fps":1}]`,
		"duplicate":    `[{"name":"x","category":"game","style":"sprites","idle_content_fps":1,"idle_invalidate_fps":1,"touch_content_fps":1,"touch_invalidate_fps":1},{"name":"x","category":"game","style":"sprites","idle_content_fps":1,"idle_invalidate_fps":1,"touch_content_fps":1,"touch_invalidate_fps":1}]`,
	}
	for name, in := range cases {
		if _, err := ReadParams(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadParamsMinimalValid(t *testing.T) {
	in := `[{"name":"my-app","category":"general","style":"pulse",
		"idle_content_fps":2,"idle_invalidate_fps":10,
		"touch_content_fps":20,"touch_invalidate_fps":30,"tail_ms":400}]`
	ps, err := ReadParams(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Name != "my-app" || ps[0].Style != StylePulse {
		t.Errorf("parsed = %+v", ps)
	}
}
