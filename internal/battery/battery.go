// Package battery converts the power results of the reproduction into the
// quantity a phone user actually feels: screen-on time. The paper reports
// milliwatts; a deployment decision wants "how much longer does the
// battery last", which depends on the pack and the user's app mix.
package battery

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// Pack models a battery by usable capacity and nominal voltage.
type Pack struct {
	CapacityMAh float64
	VoltageV    float64
}

// GalaxyS3Pack is the 2100 mAh / 3.8 V pack of the paper's target device.
var GalaxyS3Pack = Pack{CapacityMAh: 2100, VoltageV: 3.8}

// Validate reports configuration errors.
func (p Pack) Validate() error {
	if p.CapacityMAh <= 0 || p.VoltageV <= 0 {
		return fmt.Errorf("battery: invalid pack %+v", p)
	}
	return nil
}

// EnergyMJ returns the pack's usable energy in millijoules.
// 1 mAh at V volts is 3.6·V joules.
func (p Pack) EnergyMJ() float64 {
	return p.CapacityMAh * 3.6 * p.VoltageV * 1000
}

// ScreenOnHours returns how long the pack sustains a constant draw.
func (p Pack) ScreenOnHours(meanPowerMW float64) float64 {
	if meanPowerMW <= 0 {
		return 0
	}
	seconds := p.EnergyMJ() / meanPowerMW
	return seconds / 3600
}

// UsageSlice is one component of a usage mix: an activity and its share of
// screen-on time.
type UsageSlice struct {
	Name   string
	Weight float64 // relative share; normalized internally
	// Power draws under the two configurations being compared (mW).
	BaselineMW float64
	ManagedMW  float64
}

// Mix is a user's screen-time profile.
type Mix struct {
	Slices []UsageSlice
}

// Validate reports configuration errors.
func (m Mix) Validate() error {
	if len(m.Slices) == 0 {
		return fmt.Errorf("battery: empty usage mix")
	}
	total := 0.0
	for _, s := range m.Slices {
		if s.Weight < 0 || s.BaselineMW <= 0 || s.ManagedMW <= 0 {
			return fmt.Errorf("battery: invalid slice %+v", s)
		}
		total += s.Weight
	}
	if total <= 0 {
		return fmt.Errorf("battery: zero total weight")
	}
	return nil
}

// MeanMW returns the weighted mean draws (baseline, managed).
func (m Mix) MeanMW() (baseline, managed float64) {
	total := 0.0
	for _, s := range m.Slices {
		total += s.Weight
	}
	for _, s := range m.Slices {
		baseline += s.BaselineMW * s.Weight / total
		managed += s.ManagedMW * s.Weight / total
	}
	return baseline, managed
}

// Estimate is the battery-life outcome of applying display energy
// management to a usage mix on a given pack.
type Estimate struct {
	Pack Pack
	Mix  Mix

	BaselineMW    float64
	ManagedMW     float64
	BaselineHours float64
	ManagedHours  float64
	ExtraHours    float64
	ExtraPercent  float64
}

// Estimate computes screen-on-time figures for the mix on the pack.
func (p Pack) Estimate(m Mix) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	base, managed := m.MeanMW()
	e := Estimate{
		Pack: p, Mix: m,
		BaselineMW:    base,
		ManagedMW:     managed,
		BaselineHours: p.ScreenOnHours(base),
		ManagedHours:  p.ScreenOnHours(managed),
	}
	e.ExtraHours = e.ManagedHours - e.BaselineHours
	if e.BaselineHours > 0 {
		e.ExtraPercent = 100 * e.ExtraHours / e.BaselineHours
	}
	return e, nil
}

// String renders the estimate as a report table.
func (e Estimate) String() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("Battery estimate (%.0f mAh @ %.1f V):\n",
		e.Pack.CapacityMAh, e.Pack.VoltageV))
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	slices := append([]UsageSlice(nil), e.Mix.Slices...)
	sort.Slice(slices, func(i, j int) bool { return slices[i].Weight > slices[j].Weight })
	fmt.Fprintf(w, "  activity\tshare\tbaseline\tmanaged\n")
	total := 0.0
	for _, s := range slices {
		total += s.Weight
	}
	for _, s := range slices {
		fmt.Fprintf(w, "  %s\t%.0f%%\t%.0f mW\t%.0f mW\n",
			s.Name, 100*s.Weight/total, s.BaselineMW, s.ManagedMW)
	}
	w.Flush()
	sb.WriteString(fmt.Sprintf("\n  screen-on time: %.1f h → %.1f h (+%.1f h, +%.1f%%)\n",
		e.BaselineHours, e.ManagedHours, e.ExtraHours, e.ExtraPercent))
	return sb.String()
}
