package battery

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPackEnergy(t *testing.T) {
	// 2100 mAh at 3.8 V = 2100 × 3.6 × 3.8 J = 28728 J = 2.8728e7 mJ.
	if got := GalaxyS3Pack.EnergyMJ(); math.Abs(got-2.8728e7) > 1 {
		t.Errorf("EnergyMJ = %v, want 2.8728e7", got)
	}
}

func TestScreenOnHours(t *testing.T) {
	// 28728 J at 1 W = 28728 s ≈ 7.98 h.
	if got := GalaxyS3Pack.ScreenOnHours(1000); math.Abs(got-7.98) > 0.01 {
		t.Errorf("ScreenOnHours(1W) = %v, want ≈7.98", got)
	}
	if GalaxyS3Pack.ScreenOnHours(0) != 0 {
		t.Error("zero draw should report 0 (undefined)")
	}
}

func TestPackValidation(t *testing.T) {
	if err := (Pack{}).Validate(); err == nil {
		t.Error("zero pack accepted")
	}
	if err := (Pack{CapacityMAh: 100, VoltageV: -1}).Validate(); err == nil {
		t.Error("negative voltage accepted")
	}
}

func testMix() Mix {
	return Mix{Slices: []UsageSlice{
		{Name: "games", Weight: 1, BaselineMW: 1000, ManagedMW: 800},
		{Name: "feeds", Weight: 3, BaselineMW: 760, ManagedMW: 650},
	}}
}

func TestMixMeanMW(t *testing.T) {
	base, managed := testMix().MeanMW()
	if math.Abs(base-820) > 1e-9 { // (1000 + 3×760)/4
		t.Errorf("baseline mean = %v, want 820", base)
	}
	if math.Abs(managed-687.5) > 1e-9 { // (800 + 3×650)/4
		t.Errorf("managed mean = %v, want 687.5", managed)
	}
}

func TestMixValidation(t *testing.T) {
	if err := (Mix{}).Validate(); err == nil {
		t.Error("empty mix accepted")
	}
	bad := Mix{Slices: []UsageSlice{{Name: "x", Weight: 1, BaselineMW: 0, ManagedMW: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero baseline accepted")
	}
	zeroW := Mix{Slices: []UsageSlice{{Name: "x", Weight: 0, BaselineMW: 1, ManagedMW: 1}}}
	if err := zeroW.Validate(); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestEstimate(t *testing.T) {
	e, err := GalaxyS3Pack.Estimate(testMix())
	if err != nil {
		t.Fatal(err)
	}
	if e.ManagedHours <= e.BaselineHours {
		t.Errorf("managed hours %v not above baseline %v", e.ManagedHours, e.BaselineHours)
	}
	// 820→687.5 mW is a 16.2% draw reduction → 19.3% life extension.
	if math.Abs(e.ExtraPercent-19.27) > 0.1 {
		t.Errorf("ExtraPercent = %v, want ≈19.3", e.ExtraPercent)
	}
	out := e.String()
	if !strings.Contains(out, "screen-on time") || !strings.Contains(out, "games") {
		t.Errorf("rendering: %s", out)
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := (Pack{}).Estimate(testMix()); err == nil {
		t.Error("bad pack accepted")
	}
	if _, err := GalaxyS3Pack.Estimate(Mix{}); err == nil {
		t.Error("bad mix accepted")
	}
}

// Property: battery life extension percentage equals the draw reduction
// ratio transformed as 1/(1-r) - 1, for any valid mix.
func TestEstimateConsistencyProperty(t *testing.T) {
	f := func(rawBase, rawSave uint16, w1, w2 uint8) bool {
		base := 300 + float64(rawBase%1500)
		saved := float64(rawSave) / 65535 * base * 0.5 // up to 50% saving
		mix := Mix{Slices: []UsageSlice{
			{Name: "a", Weight: float64(w1%9) + 1, BaselineMW: base, ManagedMW: base - saved},
			{Name: "b", Weight: float64(w2%9) + 1, BaselineMW: base, ManagedMW: base - saved},
		}}
		e, err := GalaxyS3Pack.Estimate(mix)
		if err != nil {
			return false
		}
		r := saved / base
		want := 100 * (1/(1-r) - 1)
		return math.Abs(e.ExtraPercent-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
