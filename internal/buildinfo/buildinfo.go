// Package buildinfo derives the one version string every ccdem binary
// reports — the CLIs via -version, the service daemon via /version — from
// the Go build metadata already embedded in the binary, so no ldflags
// stamping or generated file is needed.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the module version when built from a tagged module,
	// otherwise the VCS revision (12 hex digits, "-dirty" suffixed when
	// the working tree was modified), otherwise "devel".
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the full VCS revision when known.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time (RFC 3339) when known.
	Time string `json:"time,omitempty"`
}

// Get reads the binary's build metadata. It never fails: binaries built
// without module or VCS information report Version "devel".
func Get() Info {
	info := Info{Version: "devel", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		info.Version = v
	}
	var revision, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value
		case "vcs.time":
			info.Time = s.Value
		}
	}
	if revision != "" {
		info.Revision = revision
		if info.Version == "devel" {
			short := revision
			if len(short) > 12 {
				short = short[:12]
			}
			info.Version = short
			if modified == "true" {
				info.Version += "-dirty"
			}
		}
	}
	return info
}

// Line is the single-line form "<cmd> <version> (<go version>)" the CLIs
// print for -version.
func Line(cmd string) string {
	info := Get()
	return fmt.Sprintf("%s %s (%s)", cmd, info.Version, info.GoVersion)
}

// Fprint writes Line(cmd) followed by a newline.
func Fprint(w io.Writer, cmd string) {
	fmt.Fprintln(w, Line(cmd))
}
