package core

import (
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/power"
	"ccdem/internal/sim"
)

func TestDownHysteresisDelaysDecrease(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{
		ControlPeriod:  250 * sim.Millisecond,
		DownHysteresis: 3,
	})
	h.panel.OnVSync(h.drive(1, 1)) // 60 fps content
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(5 * sim.Second)
	if h.panel.Rate() != 60 {
		t.Fatalf("setup: rate = %d", h.panel.Rate())
	}
	// Content stops; the meter window decays over ~1 s and the governor
	// sees its first down indication after ~2 control periods. With
	// DownHysteresis=3 the rate must hold for three extra periods
	// (750 ms) beyond that point.
	h.quiet = true
	quietStart := h.eng.Now()
	for h.panel.Rate() == 60 && h.eng.Now() < quietStart+10*sim.Second {
		h.eng.RunUntil(h.eng.Now() + 50*sim.Millisecond)
	}
	held := h.eng.Now() - quietStart
	if held < 1200*sim.Millisecond {
		t.Errorf("rate dropped after %v of quiet, want ≥1.2s with hysteresis", held)
	}
	// Control: the same scenario without hysteresis steps down markedly
	// earlier.
	h2 := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond})
	h2.panel.OnVSync(h2.drive(1, 1))
	h2.panel.Start()
	h2.gov.Start()
	h2.eng.RunUntil(5 * sim.Second)
	h2.quiet = true
	quietStart2 := h2.eng.Now()
	for h2.panel.Rate() == 60 && h2.eng.Now() < quietStart2+10*sim.Second {
		h2.eng.RunUntil(h2.eng.Now() + 50*sim.Millisecond)
	}
	heldPlain := h2.eng.Now() - quietStart2
	if held < heldPlain+500*sim.Millisecond {
		t.Errorf("hysteresis held %v vs plain %v, want ≥500ms longer", held, heldPlain)
	}
	// And it does eventually step down.
	h.eng.RunUntil(h.eng.Now() + 5*sim.Second)
	if h.panel.Rate() != 20 {
		t.Errorf("rate never settled down: %d", h.panel.Rate())
	}
}

func TestDownHysteresisDoesNotDelayIncrease(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{
		ControlPeriod:  250 * sim.Millisecond,
		DownHysteresis: 4,
	})
	h.quiet = true
	h.panel.OnVSync(h.drive(1, 1))
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(5 * sim.Second)
	if h.panel.Rate() != 20 {
		t.Fatalf("setup: rate = %d", h.panel.Rate())
	}
	h.quiet = false
	// The ladder starts climbing within roughly one control period + one
	// meter window, unimpeded by the down-hysteresis.
	h.eng.RunUntil(h.eng.Now() + 2*sim.Second)
	if h.panel.Rate() <= 20 {
		t.Errorf("rate did not climb promptly with hysteresis enabled: %d", h.panel.Rate())
	}
}

func TestEarlyExitMeterCheaperOnContent(t *testing.T) {
	// Zero fixed overhead isolates the per-pixel effect; with the default
	// 0.5 ms overhead the gain is floored at ≈45%.
	cost := power.CompareCostModel{PerPixel: 42.9}
	mk := func(early bool) *Meter {
		m, err := NewMeter(MeterConfig{
			Grid:      framebuffer.GridForSamples(720, 1280, 9216),
			Window:    sim.Second,
			Cost:      cost,
			EarlyExit: early,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	full := mk(false)
	early := mk(true)
	fb := framebuffer.New(720, 1280)
	// Frames that change a band near the top of the screen: the early-exit
	// comparison hits the difference quickly.
	for i := 1; i <= 60; i++ {
		fb.Fill(framebuffer.R(0, 0, 720, 40), framebuffer.Color(i))
		full.ObserveFrame(sim.Time(i)*sim.Hz(60), fb)
		early.ObserveFrame(sim.Time(i)*sim.Hz(60), fb)
	}
	// Identical classification...
	ff, fc := full.Totals()
	ef, ec := early.Totals()
	if ff != ef || fc != ec {
		t.Fatalf("classification differs: %d/%d vs %d/%d", ff, fc, ef, ec)
	}
	// ...at a fraction of the modeled cost.
	if early.CompareTime() >= full.CompareTime()/2 {
		t.Errorf("early-exit cost %v not well below full cost %v",
			early.CompareTime(), full.CompareTime())
	}
}

func TestEarlyExitRedundantFramesCostFullSweep(t *testing.T) {
	m, err := NewMeter(MeterConfig{
		Grid:      framebuffer.GridForSamples(64, 64, 64*64),
		Window:    sim.Second,
		Cost:      power.DefaultCompareCost(),
		EarlyExit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fb := framebuffer.New(64, 64)
	m.ObserveFrame(1, fb)
	before := m.CompareTime()
	m.ObserveFrame(2, fb) // redundant: must sweep everything
	cost := m.CompareTime() - before
	want := power.DefaultCompareCost().Duration(64 * 64)
	if cost != want {
		t.Errorf("redundant frame cost %v, want full sweep %v", cost, want)
	}
}
