package core

import (
	"fmt"

	"ccdem/internal/input"
	"ccdem/internal/sim"
)

// FrameLimiter implements the comparison baseline from the paper's related
// work: E³-style frame-rate adaptation (Han et al., SenSys 2013, the
// paper's reference [16]). Instead of lowering the panel's refresh rate,
// E³ throttles the *frame rate* — the pace at which frames latch — leaving
// the display hardware running at full refresh. That saves render and
// composition energy on redundant frames but none of the
// refresh-proportional panel power, which is exactly the gap the paper's
// scheme closes. Implementing both under one harness lets the benches
// quantify that gap.
//
// The limiter paces latches with a token-per-interval rule: a latch is
// allowed when at least 1/cap seconds have elapsed since the previous one.
// Its cap follows the measured content rate with a multiplicative margin,
// and interaction lifts the cap to maximum (E³ is scroll/interaction
// aware).
type FrameLimiter struct {
	eng   *sim.Engine
	meter *Meter
	cfg   FrameLimiterConfig

	capFPS    float64
	lastLatch sim.Time
	haveLatch bool
	boostTill sim.Time

	ticker  *sim.Ticker
	allowed uint64
	blocked uint64
}

// FrameLimiterConfig tunes the limiter.
type FrameLimiterConfig struct {
	// MaxFPS is the unthrottled pace (the refresh rate; default 60).
	MaxFPS float64
	// MinFPS floors the cap so UI never stalls completely (default 10).
	MinFPS float64
	// Margin multiplies the measured content rate to form the cap
	// (default 1.3 — content must fit under the cap with room for jitter).
	Margin float64
	// ControlPeriod is how often the cap is recomputed (default 500 ms).
	ControlPeriod sim.Time
	// InteractionHold lifts the cap to MaxFPS during touches and for this
	// long after the last one (default 300 ms).
	InteractionHold sim.Time
}

func (c *FrameLimiterConfig) applyDefaults() {
	if c.MaxFPS == 0 {
		c.MaxFPS = 60
	}
	if c.MinFPS == 0 {
		c.MinFPS = 10
	}
	if c.Margin == 0 {
		c.Margin = 1.3
	}
	if c.ControlPeriod == 0 {
		c.ControlPeriod = 500 * sim.Millisecond
	}
	if c.InteractionHold == 0 {
		c.InteractionHold = 300 * sim.Millisecond
	}
}

// NewFrameLimiter builds a limiter reading content rates from meter.
func NewFrameLimiter(eng *sim.Engine, meter *Meter, cfg FrameLimiterConfig) (*FrameLimiter, error) {
	cfg.applyDefaults()
	if cfg.MinFPS <= 0 || cfg.MaxFPS < cfg.MinFPS {
		return nil, fmt.Errorf("core: invalid frame limiter range %v..%v", cfg.MinFPS, cfg.MaxFPS)
	}
	if cfg.Margin < 1 {
		return nil, fmt.Errorf("core: frame limiter margin %v below 1", cfg.Margin)
	}
	return &FrameLimiter{
		eng:       eng,
		meter:     meter,
		cfg:       cfg,
		capFPS:    cfg.MaxFPS, // start unthrottled, like the refresh governor starts at 60 Hz
		boostTill: -1,
	}, nil
}

// Start begins periodic cap adaptation.
func (l *FrameLimiter) Start() {
	if l.ticker != nil {
		panic("core: FrameLimiter started twice")
	}
	l.ticker = l.eng.Every(l.eng.Now()+l.cfg.ControlPeriod, l.cfg.ControlPeriod, l.tick)
}

// Stop halts adaptation, leaving the current cap in place.
func (l *FrameLimiter) Stop() {
	if l.ticker != nil {
		l.ticker.Stop()
	}
}

func (l *FrameLimiter) tick() {
	now := l.eng.Now()
	cap := l.meter.ContentRate(now) * l.cfg.Margin
	if cap < l.cfg.MinFPS {
		cap = l.cfg.MinFPS
	}
	if cap > l.cfg.MaxFPS {
		cap = l.cfg.MaxFPS
	}
	l.capFPS = cap
}

// HandleTouch lifts the cap during interaction (wire to the input path).
func (l *FrameLimiter) HandleTouch(ev input.Event) {
	if till := l.eng.Now() + l.cfg.InteractionHold; till > l.boostTill {
		l.boostTill = till
	}
}

// CapFPS returns the current pacing cap.
func (l *FrameLimiter) CapFPS() float64 {
	if l.boostTill >= 0 && l.eng.Now() <= l.boostTill {
		return l.cfg.MaxFPS
	}
	return l.capFPS
}

// Gate is the latch gate for surface.Manager.SetLatchGate: it permits a
// latch when the pacing interval has elapsed. Because gate decisions are
// only taken at V-Sync instants, the comparison tolerates half a V-Sync
// period — otherwise integer-microsecond quantization (e.g. a 50 ms cap
// interval vs 3×16666 µs of vsyncs) would systematically skip an extra
// sync and undershoot the cap.
func (l *FrameLimiter) Gate(t sim.Time) bool {
	tolerance := sim.Hz(l.cfg.MaxFPS) / 2
	if l.haveLatch && t-l.lastLatch < sim.Hz(l.CapFPS())-tolerance {
		l.blocked++
		return false
	}
	l.lastLatch = t
	l.haveLatch = true
	l.allowed++
	return true
}

// Counters returns how many latch attempts were allowed and blocked.
func (l *FrameLimiter) Counters() (allowed, blocked uint64) { return l.allowed, l.blocked }
