package core

import (
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/input"
	"ccdem/internal/power"
	"ccdem/internal/sim"
)

func newLimiter(t *testing.T, cfg FrameLimiterConfig) (*sim.Engine, *Meter, *FrameLimiter) {
	t.Helper()
	eng := sim.NewEngine()
	meter, err := NewMeter(MeterConfig{
		Grid:   framebuffer.GridForSamples(32, 32, 32*32),
		Window: sim.Second,
		Cost:   power.CompareCostModel{},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewFrameLimiter(eng, meter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, meter, l
}

func TestFrameLimiterValidation(t *testing.T) {
	eng := sim.NewEngine()
	meter, _ := NewMeter(MeterConfig{Grid: framebuffer.GridForSamples(8, 8, 4), Window: sim.Second})
	if _, err := NewFrameLimiter(eng, meter, FrameLimiterConfig{MinFPS: 30, MaxFPS: 10}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewFrameLimiter(eng, meter, FrameLimiterConfig{Margin: 0.5}); err == nil {
		t.Error("margin < 1 accepted")
	}
}

func TestFrameLimiterStartsUnthrottled(t *testing.T) {
	_, _, l := newLimiter(t, FrameLimiterConfig{})
	if l.CapFPS() != 60 {
		t.Errorf("initial cap = %v, want 60", l.CapFPS())
	}
}

func TestFrameLimiterGatePacing(t *testing.T) {
	eng, _, l := newLimiter(t, FrameLimiterConfig{})
	l.capFPS = 20 // force a 20 fps cap
	allowedCount := 0
	// Simulate 60 Hz vsyncs for 2 s, asking the gate each time.
	for i := 1; i <= 120; i++ {
		eng.RunUntil(sim.Time(i) * sim.Hz(60))
		if l.Gate(eng.Now()) {
			allowedCount++
		}
	}
	// 2 s at a 20 fps cap: ≈40 allowed latches.
	if allowedCount < 38 || allowedCount > 42 {
		t.Errorf("allowed %d latches in 2s at 20 fps cap, want ≈40", allowedCount)
	}
	allowed, blocked := l.Counters()
	if allowed+blocked != 120 {
		t.Errorf("counters %d+%d != 120", allowed, blocked)
	}
}

func TestFrameLimiterAdaptsToContent(t *testing.T) {
	eng, meter, l := newLimiter(t, FrameLimiterConfig{ControlPeriod: 250 * sim.Millisecond})
	l.Start()
	// Feed the meter 10 fps of content.
	fb := framebuffer.New(32, 32)
	i := 0
	eng.Every(sim.Hz(10), sim.Hz(10), func() {
		i++
		fb.Set(i%32, (i/32)%32, framebuffer.Color(i))
		meter.ObserveFrame(eng.Now(), fb)
	})
	eng.RunUntil(3 * sim.Second)
	// Cap ≈ 10 × 1.3 = 13.
	if got := l.CapFPS(); got < 11 || got > 16 {
		t.Errorf("adapted cap = %v, want ≈13", got)
	}
	l.Stop()
	eng.RunUntil(5 * sim.Second)
}

func TestFrameLimiterFloor(t *testing.T) {
	eng, _, l := newLimiter(t, FrameLimiterConfig{ControlPeriod: 250 * sim.Millisecond})
	l.Start()
	eng.RunUntil(2 * sim.Second) // no content at all
	if got := l.CapFPS(); got != 10 {
		t.Errorf("idle cap = %v, want MinFPS 10", got)
	}
}

func TestFrameLimiterInteractionLift(t *testing.T) {
	eng, _, l := newLimiter(t, FrameLimiterConfig{InteractionHold: 300 * sim.Millisecond})
	l.capFPS = 10
	if l.CapFPS() != 10 {
		t.Fatal("setup")
	}
	eng.RunUntil(sim.Second)
	l.HandleTouch(input.Event{At: eng.Now(), Kind: input.TouchDown})
	if l.CapFPS() != 60 {
		t.Errorf("cap during interaction = %v, want 60", l.CapFPS())
	}
	eng.RunUntil(eng.Now() + 400*sim.Millisecond)
	if l.CapFPS() != 10 {
		t.Errorf("cap after hold = %v, want 10", l.CapFPS())
	}
}

func TestFrameLimiterStartTwicePanics(t *testing.T) {
	_, _, l := newLimiter(t, FrameLimiterConfig{})
	l.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	l.Start()
}
