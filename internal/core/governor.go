package core

import (
	"fmt"

	"ccdem/internal/display"
	"ccdem/internal/input"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// Booster implements touch boosting (§3.2): on any touch event the refresh
// rate is forced to maximum immediately, and held there for a hold window
// after the last touch so the interaction's content burst (scroll tails,
// fling animations) is both displayed and — crucially — measurable by the
// meter, which can then hand control back to the section table.
type Booster struct {
	hold  sim.Time
	until sim.Time
	hits  uint64
}

// NewBooster creates a booster holding the maximum rate for hold after the
// last touch event.
func NewBooster(hold sim.Time) (*Booster, error) {
	if hold <= 0 {
		return nil, fmt.Errorf("core: non-positive boost hold %v", hold)
	}
	return &Booster{hold: hold, until: -1}, nil
}

// OnTouch records a touch event at time t, extending the boost window.
func (b *Booster) OnTouch(t sim.Time) {
	b.hits++
	if end := t + b.hold; end > b.until {
		b.until = end
	}
}

// Active reports whether the boost window covers time t.
func (b *Booster) Active(t sim.Time) bool { return t <= b.until && b.until >= 0 }

// Touches returns the number of touch events observed.
func (b *Booster) Touches() uint64 { return b.hits }

// Policy selects the content-rate → refresh-rate mapping.
type Policy int

// Policies.
const (
	// PolicySection is the paper's section-based rule (Eq. 1): thresholds
	// at the medians between levels keep measurement headroom.
	PolicySection Policy = iota
	// PolicyNaive is the paper's *failed initial attempt* (§3.2): pick the
	// smallest refresh level ≥ the measured content rate. Because V-Sync
	// caps the measurable content rate at the current refresh rate, this
	// controller ratchets downward and can never observe rising demand —
	// kept as an ablation demonstrating why the section rule exists.
	PolicyNaive
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicySection:
		return "section"
	case PolicyNaive:
		return "naive"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// GovernorConfig configures the refresh-rate governor.
type GovernorConfig struct {
	// Policy selects the mapping rule. Default PolicySection.
	Policy Policy
	// ControlPeriod is how often the section controller re-evaluates the
	// content rate. Default 500 ms.
	ControlPeriod sim.Time
	// DownHysteresis is an extension beyond the paper: the number of
	// consecutive control periods a *lower* rate must be indicated before
	// the governor steps down. Rate increases always apply immediately
	// (responsiveness is asymmetric: late increases drop frames, late
	// decreases only cost a little power). Zero means no hysteresis, the
	// paper's behaviour.
	DownHysteresis int
	// BoostEnabled turns touch boosting on (the paper's "+Touch boosting"
	// configurations).
	BoostEnabled bool
	// BoostHold is how long after the last touch the maximum rate is
	// held. Default 300 ms — long enough that the post-interaction
	// content burst (fling tail) is displayed and measured at full
	// fidelity before section control resumes, short enough that boosting
	// costs only a small share of the saving (paper Table 1).
	BoostHold sim.Time
	// Recorder, if non-nil, receives a TouchBoost event per boosted touch.
	Recorder *obs.Recorder
	// Hardening, if non-nil, enables fail-safe hardening: verified panel
	// switches with bounded retry, and a watchdog that pins maximum
	// refresh on sensing/actuation anomalies (see HardeningConfig). Nil
	// reproduces the paper's trusting governor.
	Hardening *HardeningConfig
}

// Decision records one governor decision for trace figures.
type Decision struct {
	T           sim.Time
	ContentRate float64
	RateHz      int
	Boosted     bool
}

// Governor is the paper's runtime: it periodically reads the content rate
// from the meter, maps it through the section table, and programs the
// panel; with boosting enabled, touch events bypass the table and force
// the maximum rate at once.
type Governor struct {
	eng     *sim.Engine
	panel   *display.Panel
	meter   *Meter
	table   *SectionTable
	booster *Booster
	cfg     GovernorConfig

	ticker     *sim.Ticker
	onDecision []func(Decision)
	w          *watchdog // non-nil iff cfg.Hardening was set

	decisions uint64
	boosts    uint64

	// Hysteresis state: how many consecutive ticks have indicated a rate
	// below the current one, and which rate the last tick wanted.
	downStreak int
}

// NewGovernor wires a governor to a panel and meter. The section table is
// derived from the panel's supported levels.
func NewGovernor(eng *sim.Engine, panel *display.Panel, meter *Meter, cfg GovernorConfig) (*Governor, error) {
	if cfg.ControlPeriod == 0 {
		cfg.ControlPeriod = 500 * sim.Millisecond
	}
	if cfg.ControlPeriod < 0 {
		return nil, fmt.Errorf("core: negative control period %v", cfg.ControlPeriod)
	}
	if cfg.BoostHold == 0 {
		cfg.BoostHold = 300 * sim.Millisecond
	}
	table, err := NewSectionTable(panel.Levels())
	if err != nil {
		return nil, err
	}
	booster, err := NewBooster(cfg.BoostHold)
	if err != nil {
		return nil, err
	}
	g := &Governor{
		eng:     eng,
		panel:   panel,
		meter:   meter,
		table:   table,
		booster: booster,
		cfg:     cfg,
	}
	if cfg.Hardening != nil {
		h := *cfg.Hardening // defaults applied on a copy
		h.applyDefaults()
		if err := h.validate(); err != nil {
			return nil, err
		}
		g.w = newWatchdog(h)
	}
	return g, nil
}

// Table exposes the derived section table (for reporting and the Figure 5
// example).
func (g *Governor) Table() *SectionTable { return g.table }

// OnDecision registers an observer of every control decision.
func (g *Governor) OnDecision(fn func(Decision)) { g.onDecision = append(g.onDecision, fn) }

// Start begins periodic section control.
func (g *Governor) Start() {
	if g.ticker != nil {
		panic("core: Governor started twice")
	}
	g.ticker = g.eng.Every(g.eng.Now()+g.cfg.ControlPeriod, g.cfg.ControlPeriod, g.tick)
}

// Stop halts the governor, leaving the panel at its current rate.
func (g *Governor) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
	}
	if g.w != nil {
		g.w.clearVerify()
	}
}

// HandleTouch is the input hook. With boosting enabled, the panel is
// forced to its maximum rate immediately (it takes effect at the next
// V-Sync boundary, i.e. within one current-rate frame).
func (g *Governor) HandleTouch(ev input.Event) {
	if !g.cfg.BoostEnabled {
		return
	}
	now := g.eng.Now()
	g.booster.OnTouch(now)
	transition := g.panel.Rate() != g.panel.MaxRate()
	if transition {
		g.boosts++
	}
	g.cfg.Recorder.TouchBoost(now, g.panel.MaxRate(), transition)
	g.requestRate(g.panel.MaxRate())
}

func (g *Governor) tick() {
	now := g.eng.Now()
	content := g.meter.ContentRate(now)
	boosted := g.cfg.BoostEnabled && g.booster.Active(now)
	var rate int
	switch g.cfg.Policy {
	case PolicyNaive:
		rate = g.naiveRateFor(content)
	default:
		rate = g.table.RateFor(content)
	}
	if boosted {
		rate = g.panel.MaxRate()
	}
	if g.observeTick(now, content, rate, boosted) {
		// Fail-safe: pin maximum refresh, bypassing table and hysteresis.
		rate = g.panel.MaxRate()
		g.downStreak = 0
	} else {
		// Downward moves must persist for DownHysteresis+1 consecutive
		// ticks; upward moves apply at once.
		if rate < g.panel.Rate() && g.cfg.DownHysteresis > 0 {
			g.downStreak++
			if g.downStreak <= g.cfg.DownHysteresis {
				rate = g.panel.Rate()
			}
		} else {
			g.downStreak = 0
		}
	}
	g.requestRate(rate)
	g.decisions++
	d := Decision{T: now, ContentRate: content, RateHz: rate, Boosted: boosted}
	for _, fn := range g.onDecision {
		fn(d)
	}
}

// naiveRateFor implements PolicyNaive: the smallest level that covers the
// measured content rate, with no headroom.
func (g *Governor) naiveRateFor(content float64) int {
	levels := g.panel.Levels()
	for _, l := range levels {
		if float64(l) >= content {
			return l
		}
	}
	return levels[len(levels)-1]
}

func (g *Governor) mustSetRate(hz int) {
	// The table and boost rates come from the panel's own level list, so
	// a rejection is a programming error.
	if err := g.panel.SetRate(hz); err != nil {
		panic(fmt.Sprintf("core: panel rejected its own level: %v", err))
	}
}

// Decisions returns the number of control ticks taken.
func (g *Governor) Decisions() uint64 { return g.decisions }

// BoostTransitions returns how many touch events found the panel below
// maximum rate and boosted it.
func (g *Governor) BoostTransitions() uint64 { return g.boosts }

// Booster exposes the touch booster (for tests and reporting).
func (g *Governor) Booster() *Booster { return g.booster }
