package core

import (
	"testing"

	"ccdem/internal/display"
	"ccdem/internal/framebuffer"
	"ccdem/internal/input"
	"ccdem/internal/power"
	"ccdem/internal/sim"
)

func TestBooster(t *testing.T) {
	b, err := NewBooster(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if b.Active(0) {
		t.Error("fresh booster active")
	}
	b.OnTouch(5 * sim.Second)
	if !b.Active(5*sim.Second) || !b.Active(6*sim.Second) {
		t.Error("boost window not covering hold")
	}
	if b.Active(6*sim.Second + 1) {
		t.Error("boost active past hold")
	}
	// A second touch extends the window.
	b.OnTouch(5500 * sim.Millisecond)
	if !b.Active(6400 * sim.Millisecond) {
		t.Error("boost window not extended by second touch")
	}
	if b.Touches() != 2 {
		t.Errorf("Touches = %d", b.Touches())
	}
}

func TestBoosterValidation(t *testing.T) {
	if _, err := NewBooster(0); err == nil {
		t.Error("zero hold accepted")
	}
}

// govHarness builds a panel + meter + governor stack with a hand-driven
// framebuffer so tests can synthesize exact content rates.
type govHarness struct {
	eng   *sim.Engine
	panel *display.Panel
	meter *Meter
	gov   *Governor
	fb    *framebuffer.Buffer
	seq   int
	quiet bool // when set, frames latch but content never changes
}

func newGovHarness(t *testing.T, cfg GovernorConfig) *govHarness {
	t.Helper()
	eng := sim.NewEngine()
	panel, err := display.NewPanel(eng, display.Config{Levels: display.GalaxyS3Levels})
	if err != nil {
		t.Fatal(err)
	}
	meter, err := NewMeter(MeterConfig{
		Grid:   framebuffer.GridForSamples(64, 64, 64*64),
		Window: sim.Second,
		Cost:   power.CompareCostModel{},
	})
	if err != nil {
		t.Fatal(err)
	}
	gov, err := NewGovernor(eng, panel, meter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &govHarness{eng: eng, panel: panel, meter: meter, gov: gov, fb: framebuffer.New(64, 64)}
	// Feed the meter from vsync: contentEvery counts vsyncs between pixel
	// changes; tests adjust it live.
	return h
}

// drive latches a frame on every vsync, changing content on a fraction of
// them to synthesize a content rate of (rate × num/den) fps.
func (h *govHarness) drive(num, den int) func(sim.Time, int) {
	return func(ts sim.Time, hz int) {
		h.seq++
		if !h.quiet && den > 0 && h.seq%den < num {
			h.fb.Set(h.seq%64, (h.seq/64)%64, framebuffer.Color(h.seq))
		}
		h.meter.ObserveFrame(ts, h.fb)
	}
}

func TestGovernorSettlesToSection(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond})
	// Content on 1 of every 8 vsyncs. At 60 Hz that is 7.5 fps → section
	// 20 Hz; once at 20 Hz, content ≈ 2.5 fps keeps it at 20 Hz.
	h.panel.OnVSync(h.drive(1, 8))
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(5 * sim.Second)
	if h.panel.Rate() != 20 {
		t.Errorf("settled rate = %d Hz, want 20", h.panel.Rate())
	}
	if h.gov.Decisions() == 0 {
		t.Error("no decisions recorded")
	}
}

func TestGovernorHighContentKeepsMaxRate(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond})
	// Every vsync changes content: 60 fps content → stays at 60 Hz.
	h.panel.OnVSync(h.drive(1, 1))
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(5 * sim.Second)
	if h.panel.Rate() != 60 {
		t.Errorf("rate = %d Hz under 60 fps content, want 60", h.panel.Rate())
	}
}

func TestGovernorMidContentPicksHeadroomLevel(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond})
	// Content on 1 of 2 vsyncs: 30 fps at 60 Hz → section 40 Hz; at 40 Hz
	// content is 20 fps → section 24 Hz; at 24 Hz content is 12 fps →
	// section 24 Hz. The system settles at 24 Hz: the fixed point of
	// rate/2 content.
	h.panel.OnVSync(h.drive(1, 2))
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(8 * sim.Second)
	if h.panel.Rate() != 24 {
		t.Errorf("settled rate = %d Hz, want 24 (fixed point)", h.panel.Rate())
	}
}

func TestGovernorBoostForcesMax(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{
		ControlPeriod: 250 * sim.Millisecond,
		BoostEnabled:  true,
		BoostHold:     sim.Second,
	})
	h.panel.OnVSync(h.drive(1, 8)) // low content → settles low
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(5 * sim.Second)
	if h.panel.Rate() != 20 {
		t.Fatalf("pre-boost rate = %d, want 20", h.panel.Rate())
	}
	h.gov.HandleTouch(input.Event{At: h.eng.Now(), Kind: input.TouchDown, X: 1, Y: 1})
	// Boost takes effect at the next vsync (≤ 50 ms at 20 Hz).
	h.eng.RunUntil(h.eng.Now() + 60*sim.Millisecond)
	if h.panel.Rate() != 60 {
		t.Errorf("boosted rate = %d, want 60", h.panel.Rate())
	}
	if h.gov.BoostTransitions() != 1 {
		t.Errorf("BoostTransitions = %d, want 1", h.gov.BoostTransitions())
	}
	// After the hold expires, section control resumes and the rate falls.
	h.eng.RunUntil(h.eng.Now() + 4*sim.Second)
	if h.panel.Rate() != 20 {
		t.Errorf("post-boost rate = %d, want 20", h.panel.Rate())
	}
}

func TestGovernorBoostDisabledIgnoresTouch(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond})
	h.panel.OnVSync(h.drive(1, 8))
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(5 * sim.Second)
	h.gov.HandleTouch(input.Event{At: h.eng.Now(), Kind: input.TouchDown})
	h.eng.RunUntil(h.eng.Now() + 300*sim.Millisecond)
	if h.panel.Rate() != 20 {
		t.Errorf("rate = %d after touch with boost disabled, want 20", h.panel.Rate())
	}
}

func TestGovernorDecisionObserver(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 500 * sim.Millisecond})
	var ds []Decision
	h.gov.OnDecision(func(d Decision) { ds = append(ds, d) })
	h.panel.OnVSync(h.drive(1, 1))
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(3 * sim.Second)
	if len(ds) != 6 {
		t.Fatalf("decisions = %d, want 6", len(ds))
	}
	last := ds[len(ds)-1]
	if last.RateHz != 60 || last.Boosted {
		t.Errorf("last decision = %+v", last)
	}
	if last.ContentRate < 55 {
		t.Errorf("last content rate = %v, want ≈60", last.ContentRate)
	}
}

func TestGovernorStop(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond})
	h.panel.OnVSync(h.drive(1, 1))
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(2 * sim.Second)
	n := h.gov.Decisions()
	h.gov.Stop()
	h.eng.RunUntil(4 * sim.Second)
	if h.gov.Decisions() != n {
		t.Error("governor decided after Stop")
	}
}

func TestGovernorConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	panel, _ := display.NewPanel(eng, display.Config{Levels: display.GalaxyS3Levels})
	meter, _ := NewMeter(MeterConfig{
		Grid:   framebuffer.GridForSamples(8, 8, 4),
		Window: sim.Second,
	})
	if _, err := NewGovernor(eng, panel, meter, GovernorConfig{ControlPeriod: -1}); err == nil {
		t.Error("negative control period accepted")
	}
	g, err := NewGovernor(eng, panel, meter, GovernorConfig{})
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if g.Table() == nil {
		t.Error("nil table")
	}
}

// TestGovernorCannotMeasureAboveRefresh demonstrates the V-Sync blind spot
// that motivates both the headroom rule and touch boosting: at 20 Hz, even
// 60 fps of offered content measures as ≤ 20 fps.
func TestGovernorCannotMeasureAboveRefresh(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond})
	h.panel.OnVSync(h.drive(1, 8))
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(5 * sim.Second)
	if h.panel.Rate() != 20 {
		t.Fatalf("setup: rate = %d", h.panel.Rate())
	}
	// Burst: content on every vsync now. Measured content rate is capped
	// at the 20 Hz frame rate...
	h.panel.OnVSync(func(sim.Time, int) {}) // (sink; the drive closure reads h.seq anyway)
	h.seq = 0
	h.eng.RunUntil(6 * sim.Second)
	if cr := h.meter.ContentRate(h.eng.Now()); cr > 21 {
		t.Errorf("content rate measured %v above refresh 20", cr)
	}
	// ...so the section controller can climb at most one meter-window per
	// step rather than jumping straight to 60 Hz — the lag Figure 7 shows.
}
