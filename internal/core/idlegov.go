package core

import (
	"fmt"

	"ccdem/internal/display"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

// IdleGovernor is the content-blind policy that later shipped in
// production adaptive-refresh phones (and that this paper's approach
// predates): boost to maximum refresh on touch, fall to a fixed idle rate
// after a period without interaction. It needs no framebuffer metering —
// but precisely because it cannot see content, it mis-handles autonomous
// content (video playback, game animation) in one direction or the other:
//
//   - with a short timeout it drops to the idle rate mid-video and mid-game,
//     discarding frames the user is watching (quality loss), and
//   - with a long timeout it burns full-rate refresh power on static
//     screens the user merely touched recently.
//
// The comparison experiment quantifies both failure modes against the
// content-centric governor.
type IdleGovernor struct {
	eng   *sim.Engine
	panel *display.Panel
	cfg   IdleGovernorConfig

	lastTouch sim.Time
	touched   bool
	ticker    *sim.Ticker
}

// IdleGovernorConfig tunes the policy.
type IdleGovernorConfig struct {
	// IdleTimeout is how long after the last touch the panel stays at
	// maximum rate. Default 1.5 s (a typical production value).
	IdleTimeout sim.Time
	// IdleRate is the rate used when idle; zero means the panel's
	// minimum level.
	IdleRate int
	// CheckPeriod is how often the timeout is evaluated. Default 250 ms.
	CheckPeriod sim.Time
}

func (c *IdleGovernorConfig) applyDefaults(panel *display.Panel) {
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 1500 * sim.Millisecond
	}
	if c.IdleRate == 0 {
		c.IdleRate = panel.MinRate()
	}
	if c.CheckPeriod == 0 {
		c.CheckPeriod = 250 * sim.Millisecond
	}
}

// NewIdleGovernor builds the policy for panel.
func NewIdleGovernor(eng *sim.Engine, panel *display.Panel, cfg IdleGovernorConfig) (*IdleGovernor, error) {
	cfg.applyDefaults(panel)
	if cfg.IdleTimeout <= 0 || cfg.CheckPeriod <= 0 {
		return nil, fmt.Errorf("core: invalid idle governor timing %v/%v", cfg.IdleTimeout, cfg.CheckPeriod)
	}
	supported := false
	for _, l := range panel.Levels() {
		if l == cfg.IdleRate {
			supported = true
		}
	}
	if !supported {
		return nil, fmt.Errorf("core: idle rate %d not a panel level %v", cfg.IdleRate, panel.Levels())
	}
	return &IdleGovernor{eng: eng, panel: panel, cfg: cfg}, nil
}

// Start begins timeout evaluation.
func (g *IdleGovernor) Start() {
	if g.ticker != nil {
		panic("core: IdleGovernor started twice")
	}
	g.ticker = g.eng.Every(g.eng.Now()+g.cfg.CheckPeriod, g.cfg.CheckPeriod, g.tick)
}

// Stop halts the governor.
func (g *IdleGovernor) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
	}
}

// HandleTouch boosts to maximum immediately (wire to the input path).
func (g *IdleGovernor) HandleTouch(ev input.Event) {
	g.lastTouch = g.eng.Now()
	g.touched = true
	g.mustSet(g.panel.MaxRate())
}

func (g *IdleGovernor) tick() {
	now := g.eng.Now()
	if !g.touched || now-g.lastTouch > g.cfg.IdleTimeout {
		g.mustSet(g.cfg.IdleRate)
		return
	}
	g.mustSet(g.panel.MaxRate())
}

func (g *IdleGovernor) mustSet(hz int) {
	if err := g.panel.SetRate(hz); err != nil {
		panic(fmt.Sprintf("core: panel rejected its own level: %v", err))
	}
}
