package core

import (
	"testing"

	"ccdem/internal/display"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

func newIdleRig(t *testing.T, cfg IdleGovernorConfig) (*sim.Engine, *display.Panel, *IdleGovernor) {
	t.Helper()
	eng := sim.NewEngine()
	panel, err := display.NewPanel(eng, display.Config{Levels: display.GalaxyS3Levels})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewIdleGovernor(eng, panel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, panel, g
}

func TestIdleGovernorValidation(t *testing.T) {
	eng := sim.NewEngine()
	panel, _ := display.NewPanel(eng, display.Config{Levels: display.GalaxyS3Levels})
	if _, err := NewIdleGovernor(eng, panel, IdleGovernorConfig{IdleRate: 45}); err == nil {
		t.Error("unsupported idle rate accepted")
	}
	if _, err := NewIdleGovernor(eng, panel, IdleGovernorConfig{IdleTimeout: -1}); err == nil {
		t.Error("negative timeout accepted")
	}
}

func TestIdleGovernorDropsWhenIdle(t *testing.T) {
	eng, panel, g := newIdleRig(t, IdleGovernorConfig{})
	panel.Start()
	g.Start()
	eng.RunUntil(3 * sim.Second)
	if panel.Rate() != 20 {
		t.Errorf("idle rate = %d, want panel minimum 20", panel.Rate())
	}
}

func TestIdleGovernorBoostsOnTouchAndTimesOut(t *testing.T) {
	eng, panel, g := newIdleRig(t, IdleGovernorConfig{IdleTimeout: sim.Second})
	panel.Start()
	g.Start()
	eng.RunUntil(3 * sim.Second)
	g.HandleTouch(input.Event{At: eng.Now(), Kind: input.TouchDown})
	eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	if panel.Rate() != 60 {
		t.Errorf("rate after touch = %d, want 60", panel.Rate())
	}
	// Held at 60 within the timeout...
	eng.RunUntil(eng.Now() + 700*sim.Millisecond)
	if panel.Rate() != 60 {
		t.Errorf("rate within timeout = %d, want 60", panel.Rate())
	}
	// ...and dropped after it.
	eng.RunUntil(eng.Now() + 2*sim.Second)
	if panel.Rate() != 20 {
		t.Errorf("rate after timeout = %d, want 20", panel.Rate())
	}
}

func TestIdleGovernorCustomIdleRate(t *testing.T) {
	eng, panel, g := newIdleRig(t, IdleGovernorConfig{IdleRate: 30})
	panel.Start()
	g.Start()
	eng.RunUntil(3 * sim.Second)
	if panel.Rate() != 30 {
		t.Errorf("custom idle rate = %d, want 30", panel.Rate())
	}
}

func TestIdleGovernorStop(t *testing.T) {
	eng, panel, g := newIdleRig(t, IdleGovernorConfig{})
	panel.Start()
	g.Start()
	eng.RunUntil(3 * sim.Second)
	g.Stop()
	g.HandleTouch(input.Event{At: eng.Now(), Kind: input.TouchDown}) // touch still boosts directly
	eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	if panel.Rate() != 60 {
		t.Fatalf("touch after Stop did not boost: %d", panel.Rate())
	}
	// But without the ticker it never times out back down.
	eng.RunUntil(eng.Now() + 5*sim.Second)
	if panel.Rate() != 60 {
		t.Errorf("stopped governor still timed out: %d", panel.Rate())
	}
}

func TestIdleGovernorStartTwicePanics(t *testing.T) {
	_, _, g := newIdleRig(t, IdleGovernorConfig{})
	g.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	g.Start()
}
