// Package core implements the paper's contribution: measuring the content
// rate of the display pipeline at negligible cost and driving the panel's
// refresh rate from it.
//
// Three pieces correspond directly to the paper's §3:
//
//   - Meter: content-rate metering via double buffering and grid-based
//     comparison of the framebuffer (§3.1, Figure 4),
//   - SectionTable + Controller: section-based refresh control (§3.2,
//     Equation 1, Figure 5),
//   - Booster: touch boosting (§3.2, Figure 5).
//
// Governor wires them together into the runtime the evaluation measures.
package core

import (
	"fmt"

	"ccdem/internal/framebuffer"
	"ccdem/internal/obs"
	"ccdem/internal/power"
	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

// MeterConfig configures a content-rate meter.
type MeterConfig struct {
	// Grid is the comparison lattice. The paper's recommended operating
	// points for the 720×1280 panel are the 9K (72×128) and 36K (144×256)
	// grids.
	Grid framebuffer.Grid
	// Window is the sliding window over which rates are reported. The
	// paper uses one second (rates are FPS).
	Window sim.Time
	// Cost models the comparison's CPU time at device scale; used both
	// for overhead accounting and the Figure 6 feasibility analysis.
	Cost power.CompareCostModel
	// OnCompare, if non-nil, is invoked with the modeled duration of every
	// comparison, letting the power model charge metering overhead.
	OnCompare func(d sim.Time)
	// EarlyExit (an extension beyond the paper) stops the comparison at
	// the first differing sample, so content frames — the common case on
	// busy screens — cost only a fraction of a full sweep. Redundant
	// frames still require the full sweep to be declared redundant.
	// Classification is unaffected; only the cost accounting changes.
	EarlyExit bool
	// Recorder, if non-nil, receives a GridCompare event per comparison
	// and a RedundantFrameDropped event per redundant frame.
	Recorder *obs.Recorder
	// Fault, if non-nil, may mutate the freshly sampled grid (cur) before
	// it is compared against the committed previous samples (prev) —
	// the fault-injection hook for corrupted samples and stale buffers
	// (fault.Injector.MeterHook). primed reports whether prev holds a
	// committed frame. A fault hook forces the naive comparison path
	// (the tile delta path has no per-frame full lattice to corrupt).
	Fault func(t sim.Time, cur, prev []framebuffer.Color, primed bool)
	// Tiles enables the tile-delta comparison path: when the observed
	// buffer tracks tiles (framebuffer.EnableTiles), only lattice points
	// inside tiles written since the previous observation are compared.
	// Verdicts, first-diff indices and all cost/event accounting are
	// identical to the naive full-lattice path; buffers without tile
	// tracking fall back to it transparently.
	Tiles bool
}

// Meter measures the content rate: the number of frames per second whose
// pixels actually differ from the previous frame. It observes every
// framebuffer update (latched frame), samples the comparison grid, and
// classifies the frame as content or redundant.
type Meter struct {
	cfg     MeterConfig
	db      *framebuffer.DoubleBuffer
	frames  *trace.RateCounter
	content *trace.RateCounter

	samples int      // cached cfg.Grid.Samples()
	fullDur sim.Time // cached cfg.Cost.Duration(samples): the full-sweep cost

	// Tile-delta comparison state (cfg.Tiles without a fault hook):
	// committed holds the lattice values of the last observed frame,
	// updated in place by DeltaCompare; lastBuf/lastGen identify the
	// buffer and generation of the previous observation.
	tiles     bool
	tl        *framebuffer.TileLattice
	committed []framebuffer.Color
	tprimed   bool
	lastBuf   *framebuffer.Buffer
	lastGen   uint64

	totalFrames  uint64
	totalContent uint64
	compareTime  sim.Time // accumulated modeled CPU time
}

// NewMeter builds a meter. The grid must be non-trivial and the window
// positive.
func NewMeter(cfg MeterConfig) (*Meter, error) {
	if cfg.Grid.Samples() == 0 {
		return nil, fmt.Errorf("core: meter grid has no samples")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("core: non-positive meter window %v", cfg.Window)
	}
	m := &Meter{
		cfg:     cfg,
		db:      framebuffer.NewDoubleBuffer(cfg.Grid.Samples()),
		frames:  trace.NewRateCounter(cfg.Window),
		content: trace.NewRateCounter(cfg.Window),
		samples: cfg.Grid.Samples(),
		fullDur: cfg.Cost.Duration(cfg.Grid.Samples()),
	}
	m.initTiles(cfg, false)
	return m, nil
}

// initTiles (re)builds the tile-delta state for cfg. sameGrid reports
// whether the previous lattice matches cfg.Grid, allowing reuse.
func (m *Meter) initTiles(cfg MeterConfig, sameGrid bool) {
	m.tiles = cfg.Tiles && cfg.Fault == nil
	m.tprimed = false
	m.lastBuf = nil
	m.lastGen = 0
	if !m.tiles {
		return
	}
	if sameGrid && m.tl != nil {
		return
	}
	m.tl = framebuffer.NewTileLattice(cfg.Grid)
	m.committed = make([]framebuffer.Color, cfg.Grid.Samples())
}

// Reset reconfigures the meter in place for a new run: rate counters,
// lifetime totals and the comparison history restart from zero. The
// double-buffered lattice is reused when the grid size is unchanged and
// the rate-counter rings when the window is unchanged — the steady-state
// path for fleet device recycling, which makes Reset allocation-free.
func (m *Meter) Reset(cfg MeterConfig) error {
	if cfg.Grid.Samples() == 0 {
		return fmt.Errorf("core: meter grid has no samples")
	}
	if cfg.Window <= 0 {
		return fmt.Errorf("core: non-positive meter window %v", cfg.Window)
	}
	if cfg.Grid.Samples() == m.samples {
		m.db.Reset()
	} else {
		m.db = framebuffer.NewDoubleBuffer(cfg.Grid.Samples())
	}
	if cfg.Window == m.cfg.Window {
		m.frames.Reset()
		m.content.Reset()
	} else {
		m.frames = trace.NewRateCounter(cfg.Window)
		m.content = trace.NewRateCounter(cfg.Window)
	}
	ow, oh := m.cfg.Grid.ScreenDims()
	nw, nh := cfg.Grid.ScreenDims()
	oc, orr := m.cfg.Grid.Dims()
	nc, nr := cfg.Grid.Dims()
	m.initTiles(cfg, ow == nw && oh == nh && oc == nc && orr == nr)
	m.cfg = cfg
	m.samples = cfg.Grid.Samples()
	m.fullDur = cfg.Cost.Duration(cfg.Grid.Samples())
	m.totalFrames = 0
	m.totalContent = 0
	m.compareTime = 0
	return nil
}

// ObserveFrame processes one framebuffer update at time t and reports
// whether the frame carried new content. The very first frame observed is
// always content (there is nothing to compare against).
func (m *Meter) ObserveFrame(t sim.Time, fb *framebuffer.Buffer) bool {
	if m.tiles && fb.TilesEnabled() {
		return m.observeTiled(t, fb)
	}
	return m.observeFull(t, fb)
}

// observeFull is the naive comparison path: sample the full lattice into
// the double buffer and compare against the committed previous frame.
func (m *Meter) observeFull(t sim.Time, fb *framebuffer.Buffer) bool {
	m.cfg.Grid.Sample(fb, m.db.Front())
	if m.cfg.Fault != nil {
		m.cfg.Fault(t, m.db.Front(), m.db.Back(), m.db.Primed())
	}

	isContent := true
	comparedPx := m.samples
	if m.db.Primed() {
		idx := framebuffer.SamplesFirstDiff(m.db.Front(), m.db.Back())
		isContent = idx >= 0
		if m.cfg.EarlyExit && isContent {
			comparedPx = idx + 1
		}
	}
	// The double buffer swap replaces the copy a single-buffer design
	// would need (paper §3.1): commit the current samples as the new
	// "previous frame" only when they actually changed; for a redundant
	// frame front == back so the commit is skipped entirely.
	if isContent {
		m.db.Commit()
	}
	return m.finishObserve(t, isContent, comparedPx)
}

// observeTiled is the tile-delta comparison path. Only lattice points in
// tiles written since the last observation are compared; the verdict and
// first-diff index are exactly those of a full scan because an unwritten
// tile is bitwise unchanged and committed holds its last observed values
// (see framebuffer.TileLattice.DeltaCompare). Observing a different
// buffer than last time — the compose-mode demotion from direct scanout
// — falls back to a full gather and compare for that frame, exactly what
// the naive path computes.
func (m *Meter) observeTiled(t sim.Time, fb *framebuffer.Buffer) bool {
	isContent := true
	comparedPx := m.samples
	switch {
	case !m.tprimed:
		// First observation: gather the full lattice; always content.
		m.tl.Prime(fb, m.committed)
		m.tprimed = true
	case fb != m.lastBuf:
		// Buffer identity changed mid-run: full gather and compare
		// against the committed lattice (the naive verdict).
		m.cfg.Grid.Sample(fb, m.db.Front())
		idx := framebuffer.SamplesFirstDiff(m.db.Front(), m.committed)
		isContent = idx >= 0
		if m.cfg.EarlyExit && isContent {
			comparedPx = idx + 1
		}
		if isContent {
			copy(m.committed, m.db.Front())
		}
	case fb.Gen() == m.lastGen:
		// No mutator ran since the last observation: bitwise-identical
		// framebuffer, the redundant-frame verdict with no pixel reads.
		// The modeled comparison cost is still the full sweep — the
		// simulated device performs it even though the simulator skips it.
		isContent = false
	default:
		idx := m.tl.DeltaCompare(fb, m.committed, m.lastGen)
		isContent = idx >= 0
		if m.cfg.EarlyExit && isContent {
			comparedPx = idx + 1
		}
	}
	m.lastBuf = fb
	m.lastGen = fb.Gen()
	return m.finishObserve(t, isContent, comparedPx)
}

// finishObserve applies the cost model, event recording and rate
// accounting shared by both comparison paths.
func (m *Meter) finishObserve(t sim.Time, isContent bool, comparedPx int) bool {
	// The full sweep — every redundant frame, and every content frame
	// without early exit — reuses the precomputed duration; Duration is a
	// pure function, so the accounting is unchanged.
	dur := m.fullDur
	if comparedPx != m.samples {
		dur = m.cfg.Cost.Duration(comparedPx)
	}
	m.compareTime += dur
	m.cfg.Recorder.GridCompare(t, dur, comparedPx, isContent)
	if !isContent {
		m.cfg.Recorder.RedundantFrameDropped(t)
	}
	if m.cfg.OnCompare != nil {
		m.cfg.OnCompare(dur)
	}
	m.totalFrames++
	m.frames.Note(t)
	if isContent {
		m.totalContent++
		m.content.Note(t)
	}
	return isContent
}

// ContentRate returns the measured content rate (content frames per
// second) over the window ending at now.
func (m *Meter) ContentRate(now sim.Time) float64 { return m.content.Rate(now) }

// FrameRate returns the measured frame rate (framebuffer updates per
// second) over the window ending at now.
func (m *Meter) FrameRate(now sim.Time) float64 { return m.frames.Rate(now) }

// RedundantRate returns the redundant frame rate: frame rate minus content
// rate, the quantity Figure 3 reports per application.
func (m *Meter) RedundantRate(now sim.Time) float64 {
	r := m.FrameRate(now) - m.ContentRate(now)
	if r < 0 {
		return 0
	}
	return r
}

// Totals returns lifetime frame and content counts.
func (m *Meter) Totals() (frames, content uint64) { return m.totalFrames, m.totalContent }

// TotalRedundant returns the lifetime count of redundant frames.
func (m *Meter) TotalRedundant() uint64 { return m.totalFrames - m.totalContent }

// CompareTime returns the accumulated modeled CPU time spent comparing.
func (m *Meter) CompareTime() sim.Time { return m.compareTime }

// GridSamples returns the number of pixels compared per frame.
func (m *Meter) GridSamples() int { return m.cfg.Grid.Samples() }
