package core

import (
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/power"
	"ccdem/internal/sim"
)

func testMeter(t *testing.T, w, h, samples int) *Meter {
	t.Helper()
	m, err := NewMeter(MeterConfig{
		Grid:   framebuffer.GridForSamples(w, h, samples),
		Window: sim.Second,
		Cost:   power.DefaultCompareCost(),
	})
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	return m
}

func TestMeterValidation(t *testing.T) {
	if _, err := NewMeter(MeterConfig{Window: sim.Second}); err == nil {
		t.Error("zero-sample grid accepted")
	}
	if _, err := NewMeter(MeterConfig{Grid: framebuffer.GridForSamples(10, 10, 4)}); err == nil {
		t.Error("zero window accepted")
	}
}

func TestMeterFirstFrameIsContent(t *testing.T) {
	m := testMeter(t, 16, 16, 16)
	fb := framebuffer.New(16, 16)
	if !m.ObserveFrame(0, fb) {
		t.Error("first frame not counted as content")
	}
}

func TestMeterClassification(t *testing.T) {
	m := testMeter(t, 16, 16, 256) // full-resolution grid
	fb := framebuffer.New(16, 16)
	tm := sim.Time(0)
	next := func() sim.Time { tm += sim.Hz(60); return tm }

	m.ObserveFrame(next(), fb) // first: content
	// Redundant frame: identical pixels.
	if m.ObserveFrame(next(), fb) {
		t.Error("identical frame classified as content")
	}
	// Content frame: change one pixel.
	fb.Set(3, 3, framebuffer.White)
	if !m.ObserveFrame(next(), fb) {
		t.Error("changed frame classified as redundant")
	}
	// Redundant again.
	if m.ObserveFrame(next(), fb) {
		t.Error("unchanged frame after change classified as content")
	}
	frames, content := m.Totals()
	if frames != 4 || content != 2 {
		t.Errorf("totals = %d/%d, want 4/2", frames, content)
	}
	if m.TotalRedundant() != 2 {
		t.Errorf("redundant = %d, want 2", m.TotalRedundant())
	}
}

// TestMeterRedundantThenRevert exercises the double-buffer subtlety: after
// a redundant frame, the stored previous frame must still be the last
// *content* frame, so reverting to it is correctly seen as no change, and
// any new content is still detected.
func TestMeterRedundantThenRevert(t *testing.T) {
	m := testMeter(t, 8, 8, 64)
	fb := framebuffer.New(8, 8)
	m.ObserveFrame(1, fb)
	fb.Set(0, 0, framebuffer.White)
	if !m.ObserveFrame(2, fb) {
		t.Fatal("change not detected")
	}
	if m.ObserveFrame(3, fb) {
		t.Fatal("redundant frame detected as content")
	}
	fb.Set(0, 0, framebuffer.RGB(9, 9, 9))
	if !m.ObserveFrame(4, fb) {
		t.Fatal("change after redundant frame not detected")
	}
}

func TestMeterRates(t *testing.T) {
	m := testMeter(t, 16, 16, 256)
	fb := framebuffer.New(16, 16)
	// 60 fps frames for 1 s; every 3rd frame changes content (20 content fps).
	for i := 0; i < 60; i++ {
		if i%3 == 0 {
			fb.Set(i%16, (i/16)%16, framebuffer.Color(i+1))
		}
		m.ObserveFrame(sim.Time(i+1)*sim.Hz(60), fb)
	}
	now := sim.Time(60) * sim.Hz(60)
	if fr := m.FrameRate(now); fr < 59 || fr > 61 {
		t.Errorf("frame rate = %v, want ≈60", fr)
	}
	if cr := m.ContentRate(now); cr < 19 || cr > 21 {
		t.Errorf("content rate = %v, want ≈20", cr)
	}
	if rr := m.RedundantRate(now); rr < 38 || rr > 42 {
		t.Errorf("redundant rate = %v, want ≈40", rr)
	}
}

func TestMeterGridMiss(t *testing.T) {
	// A sparse grid misses a change that falls between sample points —
	// the error source quantified in Figure 6.
	m := testMeter(t, 64, 64, 16) // 4x4 lattice: centers at 8,24,40,56
	fb := framebuffer.New(64, 64)
	m.ObserveFrame(1, fb)
	fb.Set(0, 0, framebuffer.White) // not a lattice point
	if m.ObserveFrame(2, fb) {
		t.Error("off-lattice change detected by sparse grid")
	}
	fb.Set(8, 8, framebuffer.White) // lattice point
	if !m.ObserveFrame(3, fb) {
		t.Error("on-lattice change missed")
	}
}

func TestMeterCompareAccounting(t *testing.T) {
	var charged []sim.Time
	grid := framebuffer.GridForSamples(720, 1280, 9216)
	m, err := NewMeter(MeterConfig{
		Grid:      grid,
		Window:    sim.Second,
		Cost:      power.DefaultCompareCost(),
		OnCompare: func(d sim.Time) { charged = append(charged, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	fb := framebuffer.New(720, 1280)
	m.ObserveFrame(1, fb)
	m.ObserveFrame(2, fb)
	if len(charged) != 2 {
		t.Fatalf("OnCompare called %d times, want 2", len(charged))
	}
	wantDur := power.DefaultCompareCost().Duration(grid.Samples())
	if charged[0] != wantDur {
		t.Errorf("charged duration = %v, want %v", charged[0], wantDur)
	}
	if m.CompareTime() != 2*wantDur {
		t.Errorf("CompareTime = %v, want %v", m.CompareTime(), 2*wantDur)
	}
	if m.GridSamples() != grid.Samples() {
		t.Errorf("GridSamples = %d", m.GridSamples())
	}
}

// Property: with a full-resolution grid, the meter's classification always
// matches exact buffer comparison (the meter never over- or under-counts
// when it sees every pixel).
func TestMeterFullGridExactProperty(t *testing.T) {
	m := testMeter(t, 32, 32, 32*32)
	fb := framebuffer.New(32, 32)
	prev := framebuffer.New(32, 32)
	rngState := uint32(12345)
	rng := func(n int) int {
		rngState = rngState*1664525 + 1013904223
		return int(rngState % uint32(n))
	}
	m.ObserveFrame(1, fb)
	prev.CopyFrom(fb)
	for i := 2; i < 300; i++ {
		if rng(2) == 0 { // mutate ~half the frames
			fb.Set(rng(32), rng(32), framebuffer.Color(rng(1<<24)))
		}
		wantContent := !fb.Equal(prev)
		if got := m.ObserveFrame(sim.Time(i)*sim.Millisecond, fb); got != wantContent {
			t.Fatalf("frame %d: meter=%v exact=%v", i, got, wantContent)
		}
		prev.CopyFrom(fb)
	}
}

func BenchmarkMeterObserve9K(b *testing.B) {
	m, _ := NewMeter(MeterConfig{
		Grid:   framebuffer.GridForSamples(720, 1280, 9216),
		Window: sim.Second,
		Cost:   power.DefaultCompareCost(),
	})
	fb := framebuffer.New(720, 1280)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fb.Set(i%720, (i/720)%1280, framebuffer.Color(i))
		m.ObserveFrame(sim.Time(i+1)*sim.Hz(60), fb)
	}
}

// BenchmarkTileCompare measures one metered frame observation — small
// real damage on a 720×1280 screen against the 9K grid — on the
// tile-delta path and on the naive full-lattice path it replaced. The
// naive row is the comparison baseline: the delta path reads only the
// lattice points of written tiles instead of gathering all 9216 every
// frame.
func BenchmarkTileCompare(b *testing.B) {
	for _, bc := range []struct {
		name  string
		tiles bool
	}{{"tiles", true}, {"naive", false}} {
		b.Run(bc.name, func(b *testing.B) {
			m, err := NewMeter(MeterConfig{
				Grid:   framebuffer.GridForSamples(720, 1280, 9216),
				Window: sim.Second,
				Cost:   power.DefaultCompareCost(),
				Tiles:  bc.tiles,
			})
			if err != nil {
				b.Fatal(err)
			}
			fb := framebuffer.New(720, 1280)
			fb.EnableTiles()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fb.Fill(framebuffer.Rect{X0: i % 688, Y0: i % 1248, X1: i%688 + 32, Y1: i%1248 + 32},
					framebuffer.Color(i))
				m.ObserveFrame(sim.Time(i+1)*sim.Hz(60), fb)
			}
		})
	}
}

// TestMeterObserveTiledZeroAlloc pins the tile-delta path's allocation
// contract, mirroring TestMeterObserveFrameZeroAlloc for the naive path:
// once primed, the delta observation — generation check, dirty-tile
// lattice compare, accounting — must not allocate, across content frames,
// redundant frames, and the no-mutation generation-equal shortcut.
func TestMeterObserveTiledZeroAlloc(t *testing.T) {
	m, err := NewMeter(MeterConfig{
		Grid:   framebuffer.GridForSamples(720, 1280, 9216),
		Window: sim.Second,
		Cost:   power.DefaultCompareCost(),
		Tiles:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fb := framebuffer.New(720, 1280)
	fb.EnableTiles()
	frame := 0
	observe := func() {
		frame++
		switch frame % 3 {
		case 0: // content frame: real damage in one tile
			fb.Set(frame%720, (frame/720)%1280, framebuffer.Color(frame))
		case 1: // redundant frame with a mutator run (identical bytes)
			fb.Fill(framebuffer.Rect{X0: 0, Y0: 0, X1: 8, Y1: 8}, fb.At(0, 0))
		} // case 2: no mutation at all — the generation-equal shortcut
		m.ObserveFrame(sim.Time(frame)*sim.Hz(60), fb)
	}
	for i := 0; i < 200; i++ { // prime and grow rings past one window
		observe()
	}
	if allocs := testing.AllocsPerRun(500, observe); allocs != 0 {
		t.Errorf("steady-state tiled ObserveFrame allocates %.1f per frame, want 0", allocs)
	}
}

// TestMeterObserveFrameZeroAlloc pins the frame path's allocation contract:
// once the double buffer is primed and the rate-counter rings have grown to
// window occupancy, ObserveFrame — sample, compare, classify, account —
// must not allocate, for content and redundant frames alike.
func TestMeterObserveFrameZeroAlloc(t *testing.T) {
	m, err := NewMeter(MeterConfig{
		Grid:   framebuffer.GridForSamples(720, 1280, 9216),
		Window: sim.Second,
		Cost:   power.DefaultCompareCost(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fb := framebuffer.New(720, 1280)
	frame := 0
	observe := func() {
		frame++
		if frame%2 == 0 { // alternate content and redundant frames
			fb.Set(frame%720, (frame/720)%1280, framebuffer.Color(frame))
		}
		m.ObserveFrame(sim.Time(frame)*sim.Hz(60), fb)
	}
	for i := 0; i < 200; i++ { // grow rings past one window of 60 fps
		observe()
	}
	if allocs := testing.AllocsPerRun(500, observe); allocs != 0 {
		t.Errorf("steady-state ObserveFrame allocates %.1f per frame, want 0", allocs)
	}
}
