package core

import (
	"testing"

	"ccdem/internal/sim"
)

func TestPolicyString(t *testing.T) {
	if PolicySection.String() != "section" || PolicyNaive.String() != "naive" {
		t.Error("policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy empty")
	}
}

// TestNaivePolicyRatchetsDown reproduces the paper's §3.2 failure analysis:
// because V-Sync caps the measurable content rate at the current refresh
// rate, the headroom-less controller is a one-way ratchet. It traps itself
// even from a cold start: the meter's first partial-window readings are
// low, the naive rule follows them down to a level L, and from then on it
// can never measure content above L — so even 60 fps of offered content
// leaves it stuck below 60 Hz forever. The section rule's headroom breaks
// the trap and climbs back to 60 Hz.
func TestNaivePolicyRatchetsDown(t *testing.T) {
	run := func(policy Policy) (settled int, quiet func(bool), resume func(sim.Time) int) {
		h := newGovHarness(t, GovernorConfig{Policy: policy, ControlPeriod: 250 * sim.Millisecond})
		h.panel.OnVSync(h.drive(1, 1)) // content on every vsync: 60 fps offered
		h.panel.Start()
		h.gov.Start()
		h.eng.RunUntil(10 * sim.Second)
		return h.panel.Rate(),
			func(q bool) { h.quiet = q },
			func(d sim.Time) int { h.eng.RunUntil(h.eng.Now() + d); return h.panel.Rate() }
	}

	naive, naiveQuiet, naiveRun := run(PolicyNaive)
	if naive >= 60 {
		t.Errorf("naive policy reached %d Hz under 60 fps content; the ratchet should trap it below", naive)
	}
	section, sectQuiet, sectRun := run(PolicySection)
	if section != 60 {
		t.Errorf("section policy settled at %d Hz under 60 fps content, want 60", section)
	}

	// After a quiet spell, both drop to the floor; only section recovers.
	naiveQuiet(true)
	naiveRun(3 * sim.Second)
	naiveQuiet(false)
	if got := naiveRun(15 * sim.Second); got != 20 {
		t.Errorf("naive after quiet spell and 60 fps resume: %d Hz, want stuck at 20", got)
	}
	sectQuiet(true)
	sectRun(3 * sim.Second)
	sectQuiet(false)
	if got := sectRun(15 * sim.Second); got != 60 {
		t.Errorf("section after quiet spell and 60 fps resume: %d Hz, want 60", got)
	}
}
