package core

import (
	"fmt"
	"sort"

	"ccdem/internal/power"
	"ccdem/internal/sim"
)

// FrameRecord is one latched frame of a recorded (baseline, 60 Hz) run:
// when it latched, whether it carried new content, and the pixels its
// render pass drew. A log of these is everything the offline predictor
// needs — in deployment terms, it is what a lightweight on-device tracer
// would collect so that expected savings can be estimated *before*
// shipping the kernel modification the paper's system requires.
type FrameRecord struct {
	T          sim.Time
	Content    bool
	RenderedPx int
}

// PredictorConfig configures the what-if analysis.
type PredictorConfig struct {
	// Levels are the hypothetical panel's refresh rates.
	Levels []int
	// ControlPeriod and Window mirror the governor's (defaults 500 ms / 1 s).
	ControlPeriod sim.Time
	Window        sim.Time
	// Params, Backlight and MeterSamples parameterize the energy model
	// (defaults: power.DefaultParams(), 0.5, 9216).
	Params       *power.Params
	Backlight    float64
	MeterSamples int
}

func (c *PredictorConfig) applyDefaults() {
	if c.ControlPeriod == 0 {
		c.ControlPeriod = 500 * sim.Millisecond
	}
	if c.Window == 0 {
		c.Window = sim.Second
	}
	if c.Params == nil {
		p := power.DefaultParams()
		c.Params = &p
	}
	if c.Backlight == 0 {
		c.Backlight = 0.5
	}
	if c.MeterSamples == 0 {
		c.MeterSamples = 9216
	}
}

// Prediction is the estimated outcome of running the recorded workload
// under section-based refresh control.
type Prediction struct {
	MeanPowerMW   float64
	EnergyMJ      float64
	MeanRefreshHz float64
	FrameRate     float64 // latched fps after V-Sync thinning
	ContentRate   float64 // content fps after coalescing
	DroppedFPS    float64 // content updates lost to coalescing
}

// PredictSection replays a baseline frame log under a hypothetical
// section-controlled panel, analytically: frames are thinned to the
// hypothetical refresh rate (V-Sync pacing, coalescing content), the
// section table is applied every control period on the coalesced content
// rate, and the energy model integrates refresh-dependent and per-frame
// terms. The estimate deliberately reuses the same SectionTable and
// power.Params as the live simulator, so discrepancies measure only the
// replay approximation (see TestPredictorMatchesSimulation).
func PredictSection(records []FrameRecord, duration sim.Time, cfg PredictorConfig) (Prediction, error) {
	cfg.applyDefaults()
	if duration <= 0 {
		return Prediction{}, fmt.Errorf("core: non-positive prediction duration %v", duration)
	}
	if !sort.SliceIsSorted(records, func(i, j int) bool { return records[i].T < records[j].T }) {
		return Prediction{}, fmt.Errorf("core: frame records out of order")
	}
	table, err := NewSectionTable(cfg.Levels)
	if err != nil {
		return Prediction{}, err
	}
	cost := power.DefaultCompareCost()
	compareDur := cost.Duration(cfg.MeterSamples)

	maxRate := table.Levels()[len(table.Levels())-1]
	rate := maxRate

	var (
		energyMJ     float64
		refreshSum   float64 // ∫rate dt numerator
		keptFrames   int
		keptContent  int
		totalContent int
		pendingFrame bool // a record awaits latching
		pendingBurst bool // content seen since the last kept frame
		pendingPx    int
		contentTimes []sim.Time // kept content latches, for the sliding window
		recIdx       int
	)

	windowRate := func(now sim.Time) float64 {
		// Count kept content latches inside (now-Window, now].
		cut := 0
		for cut < len(contentTimes) && contentTimes[cut] <= now-cfg.Window {
			cut++
		}
		contentTimes = contentTimes[cut:]
		return float64(len(contentTimes)) / cfg.Window.Seconds()
	}

	// Replay on an explicit hypothetical V-Sync grid: at each sync of the
	// current rate, the latest pending record latches and any coalesced
	// content counts once — exactly the simulator's V-Sync semantics, so
	// a 30 fps log under a 24 Hz hypothesis latches 24 fps, not some
	// beat-pattern artifact of gap arithmetic.
	vsync := sim.Hz(float64(rate))
	for period := sim.Time(0); period < duration; period += cfg.ControlPeriod {
		end := period + cfg.ControlPeriod
		if end > duration {
			end = duration
		}
		for ; vsync <= end; vsync += sim.Hz(float64(rate)) {
			// Absorb all records up to this sync.
			for recIdx < len(records) && records[recIdx].T <= vsync {
				r := records[recIdx]
				recIdx++
				pendingFrame = true
				if r.Content {
					totalContent++
					pendingBurst = true
				}
				if r.RenderedPx > pendingPx {
					pendingPx = r.RenderedPx
				}
			}
			if !pendingFrame {
				continue
			}
			keptFrames++
			energyMJ += cfg.Params.RenderFrameBaseMJ + cfg.Params.RenderPerPixelNJ*float64(pendingPx)*1e-6
			energyMJ += cfg.Params.CPUActiveMW * compareDur.Seconds()
			if pendingBurst {
				keptContent++
				contentTimes = append(contentTimes, vsync)
			}
			pendingFrame = false
			pendingBurst = false
			pendingPx = 0
		}
		// Continuous terms over the period at the current rate.
		dt := (end - period).Seconds()
		energyMJ += (cfg.Params.SoCBaseMW + cfg.Params.Panel.PowerMW(rate, cfg.Backlight, 128)) * dt
		refreshSum += float64(rate) * dt
		// Governor decision at the period boundary; the sync grid
		// re-times from here, as the panel does at its next boundary.
		rate = table.RateFor(windowRate(end))
	}

	secs := duration.Seconds()
	p := Prediction{
		EnergyMJ:      energyMJ,
		MeanPowerMW:   energyMJ / secs,
		MeanRefreshHz: refreshSum / secs,
		FrameRate:     float64(keptFrames) / secs,
		ContentRate:   float64(keptContent) / secs,
	}
	if drop := float64(totalContent-keptContent) / secs; drop > 0 {
		p.DroppedFPS = drop
	}
	return p, nil
}
