package core

import (
	"fmt"
	"sort"
)

// SectionTable maps a measured content rate to a refresh rate using the
// paper's section-based rule (§3.2, Equation 1).
//
// A naive controller that picks the smallest refresh rate ≥ the content
// rate fails: once the panel runs at, say, 20 Hz, V-Sync caps the
// measurable content rate at 20 fps, so the controller could never observe
// demand above its current setting. The section rule therefore keeps the
// refresh rate strictly above the content rate with headroom: with levels
// r_1 < … < r_n, the thresholds are
//
//	t_0 = r_1 / 2,   t_i = (r_i + r_{i+1}) / 2   (the medians),
//
// and a content rate c selects r_1 when c ≤ t_0 and r_{i+1} when
// t_{i-1} < c ≤ t_i. For the Galaxy S3's levels {20,24,30,40,60} this is
// exactly the paper's predefined section table:
//
//	0–10 fps → 20 Hz, 10–22 → 24 Hz, 22–27 → 30 Hz, 27–35 → 40 Hz, >35 → 60 Hz.
type SectionTable struct {
	levels     []int // ascending
	thresholds []float64
}

// NewSectionTable derives the thresholds for the given refresh levels (any
// order, at least one, all positive, no duplicates). As the paper notes,
// the thresholds must be rebuilt whenever the available levels change —
// construct a new table.
func NewSectionTable(levels []int) (*SectionTable, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("core: no refresh levels for section table")
	}
	ls := append([]int(nil), levels...)
	sort.Ints(ls)
	for i, l := range ls {
		if l <= 0 {
			return nil, fmt.Errorf("core: non-positive refresh level %d", l)
		}
		if i > 0 && ls[i-1] == l {
			return nil, fmt.Errorf("core: duplicate refresh level %d", l)
		}
	}
	thr := make([]float64, len(ls)-1)
	if len(thr) > 0 {
		thr[0] = float64(ls[0]) / 2
	}
	for i := 1; i < len(thr); i++ {
		thr[i] = float64(ls[i-1]+ls[i]) / 2
	}
	return &SectionTable{levels: ls, thresholds: thr}, nil
}

// RateFor returns the refresh rate for a measured content rate. Negative
// content rates are treated as zero.
func (st *SectionTable) RateFor(content float64) int {
	if content < 0 {
		content = 0
	}
	for i, t := range st.thresholds {
		if content <= t {
			return st.levels[i]
		}
	}
	return st.levels[len(st.levels)-1]
}

// Levels returns the ascending refresh levels. Callers must not modify the
// returned slice.
func (st *SectionTable) Levels() []int { return st.levels }

// Thresholds returns the len(Levels())-1 section boundaries:
// Thresholds()[i] is the largest content rate mapped to Levels()[i]; any
// rate above the last threshold maps to the maximum level. Callers must
// not modify the returned slice.
func (st *SectionTable) Thresholds() []float64 { return st.thresholds }

// String renders the table in the paper's Figure 5 style.
func (st *SectionTable) String() string {
	s := ""
	prev := 0.0
	for i, l := range st.levels {
		if i < len(st.thresholds) {
			s += fmt.Sprintf("%g–%g fps → %d Hz; ", prev, st.thresholds[i], l)
			prev = st.thresholds[i]
		}
	}
	s += fmt.Sprintf(">%g fps → %d Hz", prev, st.levels[len(st.levels)-1])
	return s
}
