package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T, levels []int) *SectionTable {
	t.Helper()
	st, err := NewSectionTable(levels)
	if err != nil {
		t.Fatalf("NewSectionTable(%v): %v", levels, err)
	}
	return st
}

func TestSectionTableValidation(t *testing.T) {
	if _, err := NewSectionTable(nil); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := NewSectionTable([]int{60, 0}); err == nil {
		t.Error("zero level accepted")
	}
	if _, err := NewSectionTable([]int{30, 30}); err == nil {
		t.Error("duplicate level accepted")
	}
}

// TestSectionTablePaper checks the exact table of the paper's Figure 5 for
// the Galaxy S3's five refresh levels.
func TestSectionTablePaper(t *testing.T) {
	st := mustTable(t, []int{60, 20, 40, 24, 30}) // any order accepted
	wantThr := []float64{10, 22, 27, 35}
	got := st.Thresholds()
	if len(got) != len(wantThr) {
		t.Fatalf("thresholds = %v, want %v", got, wantThr)
	}
	for i := range wantThr {
		if math.Abs(got[i]-wantThr[i]) > 1e-12 {
			t.Errorf("threshold %d = %v, want %v", i, got[i], wantThr[i])
		}
	}
	cases := []struct {
		content float64
		want    int
	}{
		{0, 20}, {8, 20}, {10, 20}, // Figure 5's "8 fps → 20 Hz" example
		{10.1, 24}, {22, 24},
		{22.1, 30}, {27, 30},
		{27.1, 40}, {33, 40}, {35, 40}, // Figure 5's "33 fps → 40 Hz" example
		{35.1, 60}, {60, 60}, {100, 60},
		{-5, 20},
	}
	for _, c := range cases {
		if got := st.RateFor(c.content); got != c.want {
			t.Errorf("RateFor(%v) = %d, want %d", c.content, got, c.want)
		}
	}
}

func TestSectionTableSingleLevel(t *testing.T) {
	st := mustTable(t, []int{60})
	if len(st.Thresholds()) != 0 {
		t.Errorf("single-level thresholds = %v", st.Thresholds())
	}
	if st.RateFor(0) != 60 || st.RateFor(100) != 60 {
		t.Error("single-level table does not always return its level")
	}
}

func TestSectionTableString(t *testing.T) {
	s := mustTable(t, []int{20, 24, 30, 40, 60}).String()
	for _, want := range []string{"0–10 fps → 20 Hz", "10–22 fps → 24 Hz", ">35 fps → 60 Hz"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: the selected rate is monotone in content rate, always one of
// the levels, and — the paper's headroom invariant — strictly above the
// content rate whenever any level is (so the meter can observe rate
// increases through the V-Sync cap).
func TestSectionTableInvariantsProperty(t *testing.T) {
	st := mustTable(t, []int{20, 24, 30, 40, 60})
	isLevel := func(hz int) bool {
		for _, l := range st.Levels() {
			if l == hz {
				return true
			}
		}
		return false
	}
	f := func(raw uint16) bool {
		c := float64(raw%700) / 10 // 0–70 fps
		hz := st.RateFor(c)
		if !isLevel(hz) {
			return false
		}
		// Headroom: when the content rate is below the top level, the
		// chosen rate strictly exceeds it.
		if c < float64(st.Levels()[len(st.Levels())-1]) && float64(hz) <= c {
			return false
		}
		// Monotonicity against a nearby smaller rate.
		if c >= 0.5 && st.RateFor(c-0.5) > hz {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: for arbitrary level sets, thresholds are strictly increasing
// and every level is reachable.
func TestSectionTableGeneralLevelsProperty(t *testing.T) {
	f := func(seed []uint8) bool {
		seen := map[int]bool{}
		var levels []int
		for _, s := range seed {
			l := int(s%120) + 1
			if !seen[l] {
				seen[l] = true
				levels = append(levels, l)
			}
		}
		if len(levels) == 0 {
			return true
		}
		st, err := NewSectionTable(levels)
		if err != nil {
			return false
		}
		thr := st.Thresholds()
		for i := 1; i < len(thr); i++ {
			if thr[i] <= thr[i-1] {
				return false
			}
		}
		// Reachability: probing just above each threshold hits each level.
		reached := map[int]bool{st.RateFor(0): true}
		for _, tv := range thr {
			reached[st.RateFor(tv+1e-9)] = true
		}
		return len(reached) == len(st.Levels())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (Equation 1): for arbitrary level sets the thresholds are
// exactly the medians of adjacent levels — t_0 = r_1/2 and
// t_i = (r_i + r_{i+1})/2 — and the mapping derived from them keeps the
// paper's headroom guarantee at every content rate, not just the Galaxy
// S3 menu.
func TestSectionTableMedianThresholdsProperty(t *testing.T) {
	f := func(seed []uint8, rawContent uint16) bool {
		seen := map[int]bool{}
		var levels []int
		for _, s := range seed {
			l := int(s%200) + 1
			if !seen[l] {
				seen[l] = true
				levels = append(levels, l)
			}
		}
		if len(levels) == 0 {
			return true
		}
		st, err := NewSectionTable(levels)
		if err != nil {
			return false
		}
		ls := st.Levels()
		thr := st.Thresholds()
		if len(thr) != len(ls)-1 {
			return false
		}
		// Thresholds are the medians of Equation 1.
		if len(thr) > 0 && math.Abs(thr[0]-float64(ls[0])/2) > 1e-12 {
			return false
		}
		for i := 1; i < len(thr); i++ {
			if math.Abs(thr[i]-float64(ls[i-1]+ls[i])/2) > 1e-12 {
				return false
			}
		}
		// Headroom at an arbitrary probe: strictly above the content rate
		// unless already at the maximum level.
		c := float64(rawContent%2400) / 10 // 0–240 fps, past any level
		hz := st.RateFor(c)
		if hz != ls[len(ls)-1] && float64(hz) <= c {
			return false
		}
		// Monotone: a slightly larger content rate never selects a lower
		// level.
		return st.RateFor(c+0.25) >= hz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
