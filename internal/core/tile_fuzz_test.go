package core

import (
	"math/rand"
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/power"
	"ccdem/internal/sim"
)

// fuzzMeterRect draws a rect roughly within (sometimes beyond) w × h.
func fuzzMeterRect(rng *rand.Rand, w, h int) framebuffer.Rect {
	return framebuffer.Rect{
		X0: rng.Intn(w+20) - 10,
		Y0: rng.Intn(h+20) - 10,
		X1: rng.Intn(w+20) - 10,
		Y1: rng.Intn(h+20) - 10,
	}
}

// fuzzMutate applies one random mutation to buf, covering every write
// path that maintains tile generations.
func fuzzMutate(rng *rand.Rand, buf, aux *framebuffer.Buffer) {
	w, h := buf.Width(), buf.Height()
	switch rng.Intn(5) {
	case 0:
		buf.Fill(fuzzMeterRect(rng, w, h), framebuffer.Color(rng.Uint32()&0x00ffffff))
	case 1:
		buf.Set(rng.Intn(w), rng.Intn(h), framebuffer.Color(rng.Uint32()&0x00ffffff))
	case 2:
		buf.ScrollVert(fuzzMeterRect(rng, w, h), rng.Intn(2*h+1)-h)
	case 3:
		sr := fuzzMeterRect(rng, w, h)
		buf.Blit(aux, sr, rng.Intn(w+10)-5, rng.Intn(h+10)-5)
	default:
		buf.CopyFrom(aux)
	}
}

// FuzzTileCompare is the meter differential fuzzer: a tile-delta meter
// and a naive full-lattice meter observe the same framebuffer through a
// random mutation/observe/buffer-switch history. Every per-frame verdict,
// the lifetime totals and the accumulated modeled compare time (which
// encodes the early-exit comparedPx of every observation) must match —
// the tile path merely avoids reading pixels the generations prove
// unchanged.
func FuzzTileCompare(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 0, 1, 1, 0}, uint8(64), uint8(64), uint16(256), false)
	f.Add(int64(2), []byte{0, 0, 0}, uint8(33), uint8(47), uint16(100), true)
	f.Add(int64(3), []byte{1, 2, 0, 3, 0, 2, 0, 1, 1, 0, 3, 0}, uint8(96), uint8(130), uint16(512), true)
	f.Add(int64(4), []byte{3, 0, 3, 0, 1, 3, 0}, uint8(80), uint8(60), uint16(64), false)
	f.Add(int64(5), []byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0}, uint8(32), uint8(32), uint16(1024), true)

	f.Fuzz(func(t *testing.T, seed int64, ops []byte, w8, h8 uint8, samples16 uint16, earlyExit bool) {
		w := int(w8%100) + 16
		h := int(h8%120) + 16
		samples := int(samples16%2048) + 4
		if len(ops) > 256 {
			ops = ops[:256]
		}

		grid := framebuffer.GridForSamples(w, h, samples)
		cost := power.DefaultCompareCost()
		mkMeter := func(tiles bool) *Meter {
			m, err := NewMeter(MeterConfig{
				Grid:      grid,
				Window:    sim.Second,
				Cost:      cost,
				EarlyExit: earlyExit,
				Tiles:     tiles,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		tiled := mkMeter(true)
		naive := mkMeter(false)

		rng := rand.New(rand.NewSource(seed))
		mkBuf := func() *framebuffer.Buffer {
			b := framebuffer.New(w, h)
			pix := b.Pix()
			for i := range pix {
				pix[i] = framebuffer.Color(rng.Uint32() & 0x00ffffff)
			}
			b.EnableTiles()
			return b
		}
		// Two tracked screens plus a blit source: switching the observed
		// buffer mid-run exercises the meter's demotion fallback (the
		// direct-scanout → composed-framebuffer transition).
		bufs := [2]*framebuffer.Buffer{mkBuf(), mkBuf()}
		aux := mkBuf()
		cur := 0

		var now sim.Time
		for step, op := range ops {
			now += sim.Millisecond
			switch op % 4 {
			case 0: // observe the current screen on both meters
				got := tiled.ObserveFrame(now, bufs[cur])
				want := naive.ObserveFrame(now, bufs[cur])
				if got != want {
					t.Fatalf("step %d (%dx%d, %d samples): tiled verdict %v, naive %v",
						step, w, h, grid.Samples(), got, want)
				}
				if gotT, wantT := tiled.CompareTime(), naive.CompareTime(); gotT != wantT {
					t.Fatalf("step %d: compare time %v (tiled) vs %v (naive) — comparedPx diverged",
						step, gotT, wantT)
				}
			case 1, 2: // paint the current screen
				fuzzMutate(rng, bufs[cur], aux)
			default: // switch which buffer the display scans out
				cur = 1 - cur
			}
		}

		tf, tc := tiled.Totals()
		nf, nc := naive.Totals()
		if tf != nf || tc != nc {
			t.Fatalf("totals: tiled %d/%d, naive %d/%d", tf, tc, nf, nc)
		}
		if tiled.TotalRedundant() != naive.TotalRedundant() {
			t.Fatalf("redundant: tiled %d, naive %d", tiled.TotalRedundant(), naive.TotalRedundant())
		}
	})
}
