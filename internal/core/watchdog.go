package core

import (
	"fmt"

	"ccdem/internal/sim"
)

// HardeningConfig enables the governor's fail-safe hardening: verified
// panel switches with bounded retry, and a watchdog that detects sensing
// or actuation anomalies and pins maximum refresh — sacrificing savings,
// never quality — until the device looks healthy again. The zero value of
// every field means its default; attach via GovernorConfig.Hardening.
type HardeningConfig struct {
	// MaxSwitchRetries bounds how many times an unapplied rate-switch
	// request is re-issued before the watchdog declares the switching
	// mechanism broken. Default 3.
	MaxSwitchRetries int
	// RetryBackoff is the delay before the first switch verification;
	// subsequent retries double it. The default 100 ms exceeds one scan
	// interval at the slowest level, so a healthy pending switch always
	// verifies on the first try. Default 100 ms.
	RetryBackoff sim.Time
	// OscillationWindow / OscillationMax: more than OscillationMax
	// changes of the tick-decided target rate within OscillationWindow
	// (touch boosts excluded) is an oscillation anomaly — the meter is
	// feeding the table noise. Defaults 4 s / 6.
	OscillationWindow sim.Time
	OscillationMax    int
	// PinnedPeriods / PinnedFraction: content measured at or above
	// PinnedFraction of the current refresh rate for PinnedPeriods
	// consecutive control periods while below maximum rate is a pinned
	// anomaly — V-Sync is capping the measurement, so true demand is
	// unknowable and quality may be silently lost. The section table's
	// thresholds keep headroom below every level, so under correct
	// operation content this close to the cap always triggers a raise
	// and the streak never forms. Defaults 4 / 0.95.
	PinnedPeriods  int
	PinnedFraction float64
	// DeadPeriods / DeadDirtyPxPerSec: a control period in which the
	// meter reported zero content frames while the surface manager
	// latched at least DeadDirtyPxPerSec×period of changed pixels is a
	// dead-meter period (stale comparison buffer); DeadPeriods in a row
	// is the anomaly. Defaults 2 / 50000.
	DeadPeriods       int
	DeadDirtyPxPerSec int
	// FailSafeDwell is the minimum time spent pinned at maximum refresh
	// before recovery is considered; recovery additionally requires the
	// panel actually at maximum and the current period not dead. The
	// dwell is the hysteresis that keeps a flapping fault from toggling
	// fail-safe. Default 5 s.
	FailSafeDwell sim.Time
}

// DefaultHardening returns the default hardening configuration.
func DefaultHardening() *HardeningConfig {
	h := &HardeningConfig{}
	h.applyDefaults()
	return h
}

func (h *HardeningConfig) applyDefaults() {
	if h.MaxSwitchRetries == 0 {
		h.MaxSwitchRetries = 3
	}
	if h.RetryBackoff == 0 {
		h.RetryBackoff = 100 * sim.Millisecond
	}
	if h.OscillationWindow == 0 {
		h.OscillationWindow = 4 * sim.Second
	}
	if h.OscillationMax == 0 {
		h.OscillationMax = 6
	}
	if h.PinnedPeriods == 0 {
		h.PinnedPeriods = 4
	}
	if h.PinnedFraction == 0 {
		h.PinnedFraction = 0.95
	}
	if h.DeadPeriods == 0 {
		h.DeadPeriods = 2
	}
	if h.DeadDirtyPxPerSec == 0 {
		h.DeadDirtyPxPerSec = 50000
	}
	if h.FailSafeDwell == 0 {
		h.FailSafeDwell = 5 * sim.Second
	}
}

func (h *HardeningConfig) validate() error {
	if h.MaxSwitchRetries < 0 || h.RetryBackoff < 0 || h.OscillationWindow < 0 ||
		h.OscillationMax < 0 || h.PinnedPeriods < 0 || h.DeadPeriods < 0 ||
		h.DeadDirtyPxPerSec < 0 || h.FailSafeDwell < 0 {
		return fmt.Errorf("core: negative hardening parameter")
	}
	if h.PinnedFraction < 0 || h.PinnedFraction > 1 {
		return fmt.Errorf("core: pinned fraction %v out of [0,1]", h.PinnedFraction)
	}
	return nil
}

// Anomaly identifies what tripped the watchdog into fail-safe mode.
type Anomaly int

// Watchdog anomalies.
const (
	// AnomalyNone: the governor is operating normally.
	AnomalyNone Anomaly = iota
	// AnomalySwitchFailure: a rate-switch request did not take effect
	// after bounded retries — the panel's switching mechanism is broken.
	AnomalySwitchFailure
	// AnomalyOscillation: the decided rate flipped too often — the meter
	// is feeding the section table noise.
	AnomalyOscillation
	// AnomalyPinned: measured content stayed at the refresh cap below
	// maximum rate — true demand is unknowable (V-Sync blindness).
	AnomalyPinned
	// AnomalyDeadMeter: frames carry changed pixels but the meter
	// classifies everything redundant — stale comparison buffer.
	AnomalyDeadMeter
)

// String implements fmt.Stringer.
func (a Anomaly) String() string {
	switch a {
	case AnomalyNone:
		return "none"
	case AnomalySwitchFailure:
		return "switch_failure"
	case AnomalyOscillation:
		return "oscillation"
	case AnomalyPinned:
		return "pinned"
	case AnomalyDeadMeter:
		return "dead_meter"
	default:
		return fmt.Sprintf("anomaly(%d)", int(a))
	}
}

// watchdog is the governor's hardening state. It exists only when
// GovernorConfig.Hardening is set; all methods are called from the
// simulation goroutine.
type watchdog struct {
	cfg HardeningConfig

	// Switch verification cycle.
	verifying    bool
	target       int // rate being verified
	attempts     int // retries issued in this cycle
	verifyHandle sim.Handle

	// Anomaly detectors.
	flips       []sim.Time // tick-decided target changes (pruned to window)
	lastTarget  int        // previous tick-decided target (0 = none yet)
	pinStreak   int
	deadStreak  int
	lastFrames  uint64 // meter totals at previous tick
	lastContent uint64
	dirtyAcc    int64 // changed pixels latched since previous tick

	// Fail-safe state.
	failSafe  bool
	anomaly   Anomaly
	failSince sim.Time

	// Counters.
	retries  uint64
	enters   uint64
	exits    uint64
	failTime sim.Time
}

func newWatchdog(cfg HardeningConfig) *watchdog {
	cfg.applyDefaults()
	return &watchdog{cfg: cfg}
}

// NoteFrame feeds the watchdog's dead-meter detector with the changed-
// pixel count of one latched frame. No-op without hardening.
func (g *Governor) NoteFrame(dirtyPx int) {
	if g.w != nil {
		g.w.dirtyAcc += int64(dirtyPx)
	}
}

// Hardened reports whether fail-safe hardening is enabled.
func (g *Governor) Hardened() bool { return g.w != nil }

// FailSafe reports whether the governor is currently pinned at maximum
// refresh by the watchdog.
func (g *Governor) FailSafe() bool { return g.w != nil && g.w.failSafe }

// Anomaly returns what tripped the current fail-safe episode
// (AnomalyNone when not in fail-safe or not hardened).
func (g *Governor) Anomaly() Anomaly {
	if g.w == nil || !g.w.failSafe {
		return AnomalyNone
	}
	return g.w.anomaly
}

// SwitchRetries returns how many rate-switch requests were re-issued.
func (g *Governor) SwitchRetries() uint64 {
	if g.w == nil {
		return 0
	}
	return g.w.retries
}

// FailSafeEnters and FailSafeExits count fail-safe episodes entered and
// cleanly recovered from.
func (g *Governor) FailSafeEnters() uint64 {
	if g.w == nil {
		return 0
	}
	return g.w.enters
}

// FailSafeExits counts fail-safe episodes recovered from.
func (g *Governor) FailSafeExits() uint64 {
	if g.w == nil {
		return 0
	}
	return g.w.exits
}

// FailSafeTime returns the cumulative time spent in fail-safe mode,
// including the in-progress episode.
func (g *Governor) FailSafeTime() sim.Time {
	if g.w == nil {
		return 0
	}
	t := g.w.failTime
	if g.w.failSafe {
		t += g.eng.Now() - g.w.failSince
	}
	return t
}

// requestRate programs the panel. Hardened governors verify that the
// switch takes effect and retry with backoff; unhardened ones trust the
// panel (the paper's behaviour).
func (g *Governor) requestRate(hz int) {
	g.mustSetRate(hz)
	w := g.w
	if w == nil {
		return
	}
	if g.panel.Rate() == hz {
		// Applied immediately (or already there): nothing to verify.
		w.clearVerify()
		return
	}
	if w.verifying && w.target == hz {
		// Same target already under verification — let the running
		// cycle escalate rather than resetting its attempt count.
		return
	}
	w.clearVerify()
	w.verifying = true
	w.target = hz
	w.attempts = 0
	w.verifyHandle = g.eng.After(w.cfg.RetryBackoff, g.verifySwitch)
}

func (w *watchdog) clearVerify() {
	if w.verifying {
		w.verifyHandle.Cancel()
		w.verifying = false
		w.attempts = 0
	}
}

// verifySwitch checks that the last requested rate took effect; if not it
// re-issues the request with doubled backoff, and after MaxSwitchRetries
// declares the switching mechanism broken.
func (g *Governor) verifySwitch() {
	w := g.w
	if !w.verifying {
		return
	}
	if g.panel.Rate() == w.target {
		w.verifying = false
		w.attempts = 0
		return
	}
	w.attempts++
	if w.attempts > w.cfg.MaxSwitchRetries {
		w.verifying = false
		g.enterFailSafe(AnomalySwitchFailure)
		return
	}
	w.retries++
	now := g.eng.Now()
	g.cfg.Recorder.PanelSwitchRetry(now, w.target, w.attempts)
	g.mustSetRate(w.target)
	w.verifyHandle = g.eng.After(w.cfg.RetryBackoff<<w.attempts, g.verifySwitch)
}

// enterFailSafe pins maximum refresh until recovery.
func (g *Governor) enterFailSafe(a Anomaly) {
	w := g.w
	if w.failSafe {
		return
	}
	now := g.eng.Now()
	w.failSafe = true
	w.anomaly = a
	w.failSince = now
	w.enters++
	w.flips = w.flips[:0]
	w.lastTarget = 0
	w.pinStreak = 0
	w.deadStreak = 0
	g.cfg.Recorder.FailSafeEnter(now, int(a))
	// Best effort now; every subsequent tick re-requests, which rides
	// out dropped switches without needing the verify cycle.
	g.mustSetRate(g.panel.MaxRate())
}

// observeTick runs the watchdog against one control decision. decided is
// the rate the policy chose this tick (pre-hysteresis). It returns true
// when fail-safe is (still) active, in which case the caller must pin
// maximum refresh instead.
func (g *Governor) observeTick(now sim.Time, content float64, decided int, boosted bool) bool {
	w := g.w
	if w == nil {
		return false
	}

	// Dead-meter detector runs in every mode — it also gates recovery.
	frames, contentFrames := g.meter.Totals()
	dFrames := frames - w.lastFrames
	dContent := contentFrames - w.lastContent
	dirty := w.dirtyAcc
	w.lastFrames, w.lastContent, w.dirtyAcc = frames, contentFrames, 0
	threshold := int64(float64(w.cfg.DeadDirtyPxPerSec) * g.cfg.ControlPeriod.Seconds())
	deadNow := dFrames > 0 && dContent == 0 && dirty >= threshold && threshold > 0

	if w.failSafe {
		if now-w.failSince >= w.cfg.FailSafeDwell && g.panel.Rate() == g.panel.MaxRate() && !deadNow {
			dwell := now - w.failSince
			w.failSafe = false
			w.anomaly = AnomalyNone
			w.failTime += dwell
			w.exits++
			w.deadStreak = 0
			g.cfg.Recorder.FailSafeExit(now, dwell)
			return false // normal control resumes this tick
		}
		return true
	}

	if deadNow {
		w.deadStreak++
		if w.deadStreak >= w.cfg.DeadPeriods {
			g.enterFailSafe(AnomalyDeadMeter)
			return true
		}
	} else {
		w.deadStreak = 0
	}

	// Pinned detector: content measured at the refresh cap below max —
	// the section thresholds guarantee headroom, so this only happens
	// when the panel or meter is lying.
	if !boosted && g.panel.Rate() < g.panel.MaxRate() &&
		content >= w.cfg.PinnedFraction*float64(g.panel.Rate()) {
		w.pinStreak++
		if w.pinStreak >= w.cfg.PinnedPeriods {
			g.enterFailSafe(AnomalyPinned)
			return true
		}
	} else {
		w.pinStreak = 0
	}

	// Oscillation detector: tick-decided target flips inside the window.
	if !boosted {
		if w.lastTarget != 0 && decided != w.lastTarget {
			w.flips = append(w.flips, now)
		}
		w.lastTarget = decided
		cut := 0
		for cut < len(w.flips) && w.flips[cut] <= now-w.cfg.OscillationWindow {
			cut++
		}
		w.flips = w.flips[cut:]
		if len(w.flips) > w.cfg.OscillationMax {
			g.enterFailSafe(AnomalyOscillation)
			return true
		}
	} else {
		// A boost forces max regardless of the table; don't let the
		// boost edge itself count as a flip.
		w.lastTarget = 0
	}

	return false
}
