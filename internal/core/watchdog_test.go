package core

import (
	"testing"

	"ccdem/internal/display"
	"ccdem/internal/framebuffer"
	"ccdem/internal/power"
	"ccdem/internal/sim"
)

// TestHardenedSwitchRetryRecovers: a transiently flaky panel (every switch
// request dropped for the first 600 ms) is ridden out by the verify/retry
// cycle without ever escalating to fail-safe.
func TestHardenedSwitchRetryRecovers(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond, Hardening: DefaultHardening()})
	h.panel.SetSwitchFault(func(ts sim.Time) (bool, int) { return ts < 600*sim.Millisecond, 0 })
	h.panel.OnVSync(h.drive(1, 8))
	h.panel.Start()
	h.gov.Start()
	h.eng.RunUntil(5 * sim.Second)
	if !h.gov.Hardened() {
		t.Fatal("governor not hardened")
	}
	if h.panel.Rate() != 20 {
		t.Errorf("rate = %d Hz after fault healed, want 20", h.panel.Rate())
	}
	if h.gov.SwitchRetries() == 0 {
		t.Error("no switch retries recorded despite dropped requests")
	}
	if h.gov.FailSafeEnters() != 0 {
		t.Errorf("fail-safe entered %d times for a transient fault", h.gov.FailSafeEnters())
	}
}

// TestSwitchFailureFailSafeAndRecovery: a panel refusing every switch for
// 3 s exhausts the bounded retries, trips AnomalySwitchFailure, pins
// maximum refresh, and — after the dwell — recovers to normal control.
func TestSwitchFailureFailSafeAndRecovery(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond, Hardening: DefaultHardening()})
	h.panel.SetSwitchFault(func(ts sim.Time) (bool, int) { return ts < 3*sim.Second, 0 })
	h.panel.OnVSync(h.drive(1, 8))
	h.panel.Start()
	h.gov.Start()

	h.eng.RunUntil(2500 * sim.Millisecond)
	if !h.gov.FailSafe() {
		t.Fatal("fail-safe not entered after retries exhausted")
	}
	if a := h.gov.Anomaly(); a != AnomalySwitchFailure {
		t.Errorf("anomaly = %v, want %v", a, AnomalySwitchFailure)
	}
	if h.panel.Rate() != 60 {
		t.Errorf("fail-safe rate = %d Hz, want pinned 60", h.panel.Rate())
	}

	h.eng.RunUntil(10 * sim.Second)
	if h.gov.FailSafe() {
		t.Error("fail-safe not exited after the fault healed")
	}
	if h.panel.Rate() != 20 {
		t.Errorf("post-recovery rate = %d Hz, want 20", h.panel.Rate())
	}
	if h.gov.FailSafeEnters() != 1 || h.gov.FailSafeExits() != 1 {
		t.Errorf("episodes = %d entered / %d exited, want 1/1",
			h.gov.FailSafeEnters(), h.gov.FailSafeExits())
	}
	if h.gov.FailSafeTime() < 4*sim.Second {
		t.Errorf("fail-safe time %v, want ≥ dwell", h.gov.FailSafeTime())
	}
}

// TestDeadMeterFailSafe: frames keep latching changed pixels while the
// meter classifies everything redundant (stale comparison buffer). The
// watchdog must pin maximum refresh instead of letting the governor slam
// to the floor, and recover once the meter sees content again.
func TestDeadMeterFailSafe(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{ControlPeriod: 250 * sim.Millisecond, Hardening: DefaultHardening()})
	h.quiet = true // meter sees zero content...
	d := h.drive(1, 2)
	h.panel.OnVSync(func(ts sim.Time, hz int) {
		h.gov.NoteFrame(20000) // ...while the surface manager latches changed pixels
		d(ts, hz)
	})
	h.eng.At(3*sim.Second, func() { h.quiet = false }) // meter heals
	h.panel.Start()
	h.gov.Start()

	h.eng.RunUntil(2 * sim.Second)
	if !h.gov.FailSafe() {
		t.Fatal("dead meter did not trip fail-safe")
	}
	if a := h.gov.Anomaly(); a != AnomalyDeadMeter {
		t.Errorf("anomaly = %v, want %v", a, AnomalyDeadMeter)
	}
	if h.panel.Rate() != 60 {
		t.Errorf("fail-safe rate = %d Hz, want pinned 60", h.panel.Rate())
	}

	h.eng.RunUntil(12 * sim.Second)
	if h.gov.FailSafe() {
		t.Error("fail-safe not exited after the meter healed")
	}
	// Content on every 2nd vsync settles at the 24 Hz fixed point.
	if h.panel.Rate() != 24 {
		t.Errorf("post-recovery rate = %d Hz, want 24", h.panel.Rate())
	}
	if h.gov.FailSafeExits() != 1 {
		t.Errorf("exits = %d, want 1", h.gov.FailSafeExits())
	}
}

// TestPinnedRescuesNaiveRatchet: PolicyNaive ratchets to 20 Hz and — by
// V-Sync blindness — can never observe the content burst that follows.
// The pinned detector notices content riding the refresh cap and pins
// maximum, after which the naive policy can finally measure true demand.
func TestPinnedRescuesNaiveRatchet(t *testing.T) {
	h := newGovHarness(t, GovernorConfig{
		Policy:        PolicyNaive,
		ControlPeriod: 250 * sim.Millisecond,
		Hardening:     DefaultHardening(),
	})
	den := 8
	h.panel.OnVSync(func(ts sim.Time, hz int) {
		h.seq++
		if h.seq%den == 0 {
			h.fb.Set(h.seq%64, (h.seq/64)%64, framebuffer.Color(h.seq))
		}
		h.meter.ObserveFrame(ts, h.fb)
	})
	h.eng.At(5*sim.Second, func() { den = 1 }) // demand bursts to full rate
	h.panel.Start()
	h.gov.Start()

	h.eng.RunUntil(4 * sim.Second)
	if h.panel.Rate() != 20 {
		t.Fatalf("naive rate = %d Hz before burst, want ratcheted 20", h.panel.Rate())
	}
	h.eng.RunUntil(9 * sim.Second)
	if !h.gov.FailSafe() {
		t.Fatal("pinned content did not trip fail-safe")
	}
	if a := h.gov.Anomaly(); a != AnomalyPinned {
		t.Errorf("anomaly = %v, want %v", a, AnomalyPinned)
	}
	h.eng.RunUntil(15 * sim.Second)
	if h.gov.FailSafe() {
		t.Error("fail-safe not exited after demand became measurable")
	}
	if h.panel.Rate() != 60 {
		t.Errorf("rate = %d Hz under full-rate content, want 60", h.panel.Rate())
	}
}

// TestOscillationFailSafe: content alternating across a section boundary
// every control period makes the decided target flip tick after tick —
// the signature of a meter feeding the table noise. (Down-hysteresis
// keeps the panel itself steady; the detector watches the pre-hysteresis
// decisions.)
func TestOscillationFailSafe(t *testing.T) {
	eng := sim.NewEngine()
	panel, err := display.NewPanel(eng, display.Config{Levels: display.GalaxyS3Levels})
	if err != nil {
		t.Fatal(err)
	}
	meter, err := NewMeter(MeterConfig{
		Grid:   framebuffer.GridForSamples(64, 64, 64*64),
		Window: 250 * sim.Millisecond,
		Cost:   power.CompareCostModel{},
	})
	if err != nil {
		t.Fatal(err)
	}
	gov, err := NewGovernor(eng, panel, meter, GovernorConfig{
		ControlPeriod:  250 * sim.Millisecond,
		DownHysteresis: 3,
		Hardening:      DefaultHardening(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fb := framebuffer.New(64, 64)
	seq, burst := 0, true
	panel.OnVSync(func(ts sim.Time, hz int) {
		seq++
		if burst || seq%2 == 0 { // 60 fps bursts vs 30 fps lulls
			fb.Set(seq%64, (seq/64)%64, framebuffer.Color(seq))
		}
		meter.ObserveFrame(ts, fb)
	})
	eng.Every(10*sim.Millisecond, 250*sim.Millisecond, func() { burst = !burst })
	panel.Start()
	gov.Start()
	eng.RunUntil(4 * sim.Second)
	if !gov.FailSafe() {
		t.Fatal("oscillating decisions did not trip fail-safe")
	}
	if a := gov.Anomaly(); a != AnomalyOscillation {
		t.Errorf("anomaly = %v, want %v", a, AnomalyOscillation)
	}
	if panel.Rate() != 60 {
		t.Errorf("fail-safe rate = %d Hz, want pinned 60", panel.Rate())
	}
}

// TestHardeningValidation: broken hardening parameters are rejected at
// construction, and an unhardened governor reports inert counters.
func TestHardeningValidation(t *testing.T) {
	eng := sim.NewEngine()
	panel, _ := display.NewPanel(eng, display.Config{Levels: display.GalaxyS3Levels})
	meter, _ := NewMeter(MeterConfig{Grid: framebuffer.GridForSamples(8, 8, 4), Window: sim.Second})
	if _, err := NewGovernor(eng, panel, meter, GovernorConfig{
		Hardening: &HardeningConfig{PinnedFraction: 2},
	}); err == nil {
		t.Error("pinned fraction 2 accepted")
	}
	if _, err := NewGovernor(eng, panel, meter, GovernorConfig{
		Hardening: &HardeningConfig{RetryBackoff: -1},
	}); err == nil {
		t.Error("negative backoff accepted")
	}
	g, err := NewGovernor(eng, panel, meter, GovernorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Hardened() || g.FailSafe() || g.Anomaly() != AnomalyNone ||
		g.SwitchRetries() != 0 || g.FailSafeEnters() != 0 || g.FailSafeExits() != 0 ||
		g.FailSafeTime() != 0 {
		t.Error("unhardened governor reports hardening state")
	}
	g.NoteFrame(100) // must be a no-op, not a panic
}
