// Package display models the device's display hardware: a panel that
// refreshes the screen from the framebuffer at one of a discrete set of
// refresh rates, generating V-Sync events the surface manager latches
// frames on.
//
// The reproduced device is the Samsung Galaxy S3 LTE (SHV-E210S) of the
// paper's evaluation, whose panel — with the authors' kernel modification —
// supports runtime switching among five refresh rates: 60, 40, 30, 24 and
// 20 Hz. A rate change takes effect at the next refresh boundary, matching
// how a display controller reprograms its timing generator.
package display

import (
	"fmt"
	"sort"

	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// GalaxyS3Levels is the refresh-rate menu of the paper's target device, in
// ascending order (Hz).
var GalaxyS3Levels = []int{20, 24, 30, 40, 60}

// Config describes a panel.
type Config struct {
	// Levels is the set of supported refresh rates in Hz. It need not be
	// sorted; it must be non-empty with all entries positive.
	Levels []int
	// InitialRate is the rate the panel starts at. Zero means the maximum
	// level (Android's fixed 60 Hz default).
	InitialRate int
	// FastUpswitch lets the panel apply *upward* rate changes immediately
	// (aborting the current scan interval) instead of waiting for the
	// next V-Sync. The paper's kernel-modified S3 could not do this; LTPO
	// panels can, and without it deep idling (1–10 Hz) would delay a
	// touch boost by up to a full second. Downward changes always wait
	// for the boundary.
	FastUpswitch bool
}

// VSyncFunc receives each vertical-sync event: the event time and the rate
// (Hz) the panel is refreshing at for the interval that begins now.
type VSyncFunc func(t sim.Time, rateHz int)

// RateChangeFunc observes refresh-rate transitions as they take effect.
type RateChangeFunc func(t sim.Time, oldHz, newHz int)

// SwitchFaultFunc intercepts a rate-switch request at time t. drop reports
// the request silently lost (the kernel accepted it but it never takes
// effect — only verification can tell); delayVsyncs > 0 applies it that
// many refresh boundaries late instead of at the next one.
type SwitchFaultFunc func(t sim.Time) (drop bool, delayVsyncs int)

// Panel is the display hardware model. All methods must be called from the
// simulation goroutine (the engine is single-threaded).
type Panel struct {
	eng    *sim.Engine
	levels []int // ascending
	fastUp bool

	cur          int // current rate (Hz)
	pending      int // requested rate, applied at next vsync (0 = none)
	pendingDelay int // extra vsyncs before pending applies (injected fault)
	switchFault  SwitchFaultFunc

	running    bool
	nextHandle sim.Handle
	vsyncFn    func() // p.vsync, bound once to avoid a closure per refresh
	onVSync    []VSyncFunc
	onChange   []RateChangeFunc
	rec        *obs.Recorder

	refreshes     uint64
	switches      uint64
	startTime     sim.Time // time of Start
	rateTimeNum   float64  // ∫ rate dt numerator for mean-rate accounting
	rateTimeSince sim.Time // start of current-rate interval
}

// NewPanel validates cfg and builds a stopped panel.
func NewPanel(eng *sim.Engine, cfg Config) (*Panel, error) {
	p := &Panel{eng: eng}
	p.vsyncFn = p.vsync
	if err := p.init(cfg); err != nil {
		return nil, err
	}
	return p, nil
}

// Reset revalidates cfg and returns the panel to a freshly constructed
// state in place: stopped, at the initial rate, with no hooks, recorder,
// fault, pending switch, or counters. The engine association and the
// bound vsync closure are kept; any V-Sync still scheduled on the engine
// belongs to the caller's engine reset. On error the panel is left in an
// unspecified state and must not be reused.
func (p *Panel) Reset(cfg Config) error { return p.init(cfg) }

func (p *Panel) init(cfg Config) error {
	if len(cfg.Levels) == 0 {
		return fmt.Errorf("display: no refresh levels configured")
	}
	levels := append([]int(nil), cfg.Levels...)
	sort.Ints(levels)
	for i, l := range levels {
		if l <= 0 {
			return fmt.Errorf("display: non-positive refresh level %d", l)
		}
		if i > 0 && levels[i-1] == l {
			return fmt.Errorf("display: duplicate refresh level %d", l)
		}
	}
	initial := cfg.InitialRate
	if initial == 0 {
		initial = levels[len(levels)-1]
	}
	p.levels = levels
	p.fastUp = cfg.FastUpswitch
	p.cur = initial
	p.pending = 0
	p.pendingDelay = 0
	p.switchFault = nil
	p.running = false
	p.nextHandle = sim.Handle{}
	p.onVSync = p.onVSync[:0]
	p.onChange = p.onChange[:0]
	p.rec = nil
	p.refreshes = 0
	p.switches = 0
	p.startTime = 0
	p.rateTimeNum = 0
	p.rateTimeSince = 0
	if !p.supported(initial) {
		return fmt.Errorf("display: initial rate %d Hz not in levels %v", initial, levels)
	}
	return nil
}

func (p *Panel) supported(hz int) bool {
	for _, l := range p.levels {
		if l == hz {
			return true
		}
	}
	return false
}

// Levels returns the supported refresh rates in ascending order. The slice
// is owned by the panel; callers must not modify it.
func (p *Panel) Levels() []int { return p.levels }

// MaxRate returns the highest supported rate (Hz).
func (p *Panel) MaxRate() int { return p.levels[len(p.levels)-1] }

// MinRate returns the lowest supported rate (Hz).
func (p *Panel) MinRate() int { return p.levels[0] }

// Rate returns the rate (Hz) the panel is currently refreshing at.
func (p *Panel) Rate() int { return p.cur }

// OnVSync registers fn to be called on every vertical sync. Handlers run
// in registration order; the surface manager registers first so the power
// model and meters observe a freshly latched framebuffer.
func (p *Panel) OnVSync(fn VSyncFunc) { p.onVSync = append(p.onVSync, fn) }

// OnRateChange registers fn to observe refresh-rate transitions.
func (p *Panel) OnRateChange(fn RateChangeFunc) { p.onChange = append(p.onChange, fn) }

// SetRecorder attaches a decision-event recorder: every rate transition
// that takes effect is recorded as a SectionTransition. A nil recorder
// (the default) disables recording at zero cost.
func (p *Panel) SetRecorder(r *obs.Recorder) { p.rec = r }

// SetSwitchFault installs a fault hook consulted on every rate-switch
// request that would change the rate. Nil (the default) disables
// injection. The hook models the flaky kernel switching mechanism, so a
// dropped request still returns success to the caller.
func (p *Panel) SetSwitchFault(fn SwitchFaultFunc) { p.switchFault = fn }

// SetRate requests a refresh-rate change, which takes effect at the next
// V-Sync boundary (a timing generator cannot retime mid-scan). Requesting
// the current rate clears any pending change. Unsupported rates are
// rejected.
func (p *Panel) SetRate(hz int) error {
	if !p.supported(hz) {
		return fmt.Errorf("display: unsupported refresh rate %d Hz (levels %v)", hz, p.levels)
	}
	if hz == p.cur {
		p.pending = 0
		p.pendingDelay = 0
		return nil
	}
	var delay int
	if p.switchFault != nil {
		drop, d := p.switchFault(p.eng.Now())
		if drop {
			// Lost in the kernel: the caller sees success, the panel
			// keeps whatever was already in flight.
			return nil
		}
		delay = d
	}
	if delay == 0 && p.fastUp && p.running && hz > p.cur {
		// Abort the current scan interval and retime immediately.
		p.pending = 0
		p.pendingDelay = 0
		p.applyRate(hz)
		p.nextHandle.Cancel()
		p.nextHandle = p.eng.After(sim.Hz(float64(p.cur)), p.vsyncFn)
		return nil
	}
	p.pending = hz
	p.pendingDelay = delay
	return nil
}

// applyRate performs the bookkeeping of a rate transition at the current
// instant.
func (p *Panel) applyRate(hz int) {
	now := p.eng.Now()
	old := p.cur
	p.rateTimeNum += float64(p.cur) * (now - p.rateTimeSince).Seconds()
	p.rateTimeSince = now
	p.cur = hz
	p.switches++
	p.rec.SectionTransition(now, old, p.cur)
	for _, fn := range p.onChange {
		fn(now, old, p.cur)
	}
}

// Start begins generating V-Sync events, with the first sync one interval
// from now. It may be called once.
func (p *Panel) Start() {
	if p.running {
		panic("display: Start called twice")
	}
	p.running = true
	p.startTime = p.eng.Now()
	p.rateTimeSince = p.eng.Now()
	p.nextHandle = p.eng.After(sim.Hz(float64(p.cur)), p.vsyncFn)
}

func (p *Panel) vsync() {
	now := p.eng.Now()
	if p.pending != 0 && p.pendingDelay > 0 {
		p.pendingDelay--
	} else if p.pending != 0 && p.pending != p.cur {
		hz := p.pending
		p.pending = 0
		p.applyRate(hz)
	}
	p.refreshes++
	for _, fn := range p.onVSync {
		fn(now, p.cur)
	}
	p.nextHandle = p.eng.After(sim.Hz(float64(p.cur)), p.vsyncFn)
}

// Refreshes returns the total number of V-Sync events generated.
func (p *Panel) Refreshes() uint64 { return p.refreshes }

// Switches returns the number of refresh-rate transitions that took effect.
func (p *Panel) Switches() uint64 { return p.switches }

// MeanRate returns the time-weighted average refresh rate (Hz) since Start.
func (p *Panel) MeanRate() float64 {
	now := p.eng.Now()
	elapsed := (now - p.startTime).Seconds()
	if !p.running || elapsed <= 0 {
		return float64(p.cur)
	}
	num := p.rateTimeNum + float64(p.cur)*(now-p.rateTimeSince).Seconds()
	return num / elapsed
}
