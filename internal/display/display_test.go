package display

import (
	"math"
	"math/rand"
	"testing"

	"ccdem/internal/sim"
)

func newTestPanel(t *testing.T, cfg Config) (*sim.Engine, *Panel) {
	t.Helper()
	eng := sim.NewEngine()
	p, err := NewPanel(eng, cfg)
	if err != nil {
		t.Fatalf("NewPanel: %v", err)
	}
	return eng, p
}

func TestNewPanelValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewPanel(eng, Config{}); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := NewPanel(eng, Config{Levels: []int{60, -1}}); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := NewPanel(eng, Config{Levels: []int{60, 60}}); err == nil {
		t.Error("duplicate level accepted")
	}
	if _, err := NewPanel(eng, Config{Levels: []int{20, 60}, InitialRate: 30}); err == nil {
		t.Error("unsupported initial rate accepted")
	}
}

func TestPanelDefaultsToMaxRate(t *testing.T) {
	_, p := newTestPanel(t, Config{Levels: GalaxyS3Levels})
	if p.Rate() != 60 {
		t.Errorf("initial rate = %d, want 60", p.Rate())
	}
	if p.MinRate() != 20 || p.MaxRate() != 60 {
		t.Errorf("min/max = %d/%d", p.MinRate(), p.MaxRate())
	}
}

func TestVSyncCadence(t *testing.T) {
	eng, p := newTestPanel(t, Config{Levels: GalaxyS3Levels})
	var times []sim.Time
	p.OnVSync(func(ts sim.Time, hz int) {
		times = append(times, ts)
		if hz != 60 {
			t.Errorf("vsync rate = %d, want 60", hz)
		}
	})
	p.Start()
	eng.RunUntil(sim.Second)
	// 60 Hz for 1 s with the first sync one interval in: 60 syncs.
	if len(times) != 60 {
		t.Fatalf("got %d vsyncs in 1s at 60Hz, want 60", len(times))
	}
	for i := 1; i < len(times); i++ {
		dt := times[i] - times[i-1]
		if dt != sim.Hz(60) {
			t.Fatalf("vsync interval %d = %v, want %v", i, dt, sim.Hz(60))
		}
	}
	if p.Refreshes() != 60 {
		t.Errorf("Refreshes = %d", p.Refreshes())
	}
}

func TestSetRateTakesEffectAtNextVSync(t *testing.T) {
	eng, p := newTestPanel(t, Config{Levels: GalaxyS3Levels})
	var rates []int
	p.OnVSync(func(ts sim.Time, hz int) { rates = append(rates, hz) })
	var transitions []int
	p.OnRateChange(func(ts sim.Time, oldHz, newHz int) { transitions = append(transitions, oldHz, newHz) })
	p.Start()
	eng.RunUntil(100 * sim.Millisecond) // a few 60 Hz syncs
	if err := p.SetRate(20); err != nil {
		t.Fatalf("SetRate: %v", err)
	}
	if p.Rate() != 60 {
		t.Errorf("rate changed before vsync boundary: %d", p.Rate())
	}
	eng.RunUntil(sim.Second)
	if p.Rate() != 20 {
		t.Errorf("rate after run = %d, want 20", p.Rate())
	}
	if len(transitions) != 2 || transitions[0] != 60 || transitions[1] != 20 {
		t.Errorf("transitions = %v, want [60 20]", transitions)
	}
	if p.Switches() != 1 {
		t.Errorf("Switches = %d, want 1", p.Switches())
	}
	// After the switch, intervals are 50 ms.
	saw20 := false
	for _, r := range rates {
		if r == 20 {
			saw20 = true
		}
	}
	if !saw20 {
		t.Error("no vsync observed at 20 Hz")
	}
}

func TestSetRateUnsupported(t *testing.T) {
	_, p := newTestPanel(t, Config{Levels: GalaxyS3Levels})
	if err := p.SetRate(45); err == nil {
		t.Error("unsupported rate accepted")
	}
}

func TestSetRateSameClearsPending(t *testing.T) {
	eng, p := newTestPanel(t, Config{Levels: GalaxyS3Levels})
	p.Start()
	if err := p.SetRate(20); err != nil {
		t.Fatal(err)
	}
	if err := p.SetRate(60); err != nil { // cancel: back to current
		t.Fatal(err)
	}
	eng.RunUntil(sim.Second)
	if p.Rate() != 60 {
		t.Errorf("rate = %d after canceled change, want 60", p.Rate())
	}
	if p.Switches() != 0 {
		t.Errorf("Switches = %d, want 0", p.Switches())
	}
}

func TestVSyncCountPerRate(t *testing.T) {
	for _, hz := range GalaxyS3Levels {
		eng, p := newTestPanel(t, Config{Levels: GalaxyS3Levels, InitialRate: hz})
		n := 0
		p.OnVSync(func(sim.Time, int) { n++ })
		p.Start()
		eng.RunUntil(10 * sim.Second)
		want := hz * 10
		// Integer-microsecond vsync periods round down, so allow +1%.
		if n < want || n > want+want/100+1 {
			t.Errorf("%d Hz: %d vsyncs in 10s, want ≈%d", hz, n, want)
		}
	}
}

func TestMeanRate(t *testing.T) {
	eng, p := newTestPanel(t, Config{Levels: GalaxyS3Levels})
	p.Start()
	eng.RunUntil(sim.Second)
	p.SetRate(20)
	eng.RunUntil(3 * sim.Second)
	// ~1 s at 60 Hz then ~2 s at 20 Hz → mean ≈ (60+40)/3 ≈ 33.3.
	got := p.MeanRate()
	if math.Abs(got-100.0/3) > 1.5 {
		t.Errorf("MeanRate = %v, want ≈33.3", got)
	}
}

func TestStartTwicePanics(t *testing.T) {
	_, p := newTestPanel(t, Config{Levels: GalaxyS3Levels})
	p.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	p.Start()
}

// Property: under random rate-change requests, consecutive V-Sync intervals
// always equal the period of the rate reported for the *preceding* sync,
// i.e. a rate change never retimes mid-interval.
func TestVSyncIntervalConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 20; iter++ {
		eng, p := newTestPanel(t, Config{Levels: GalaxyS3Levels})
		type ev struct {
			t  sim.Time
			hz int
		}
		var evs []ev
		p.OnVSync(func(ts sim.Time, hz int) { evs = append(evs, ev{ts, hz}) })
		p.Start()
		for step := 0; step < 20; step++ {
			eng.RunUntil(eng.Now() + sim.Time(rng.Intn(200))*sim.Millisecond)
			lvl := GalaxyS3Levels[rng.Intn(len(GalaxyS3Levels))]
			if err := p.SetRate(lvl); err != nil {
				t.Fatal(err)
			}
		}
		eng.RunUntil(eng.Now() + sim.Second)
		for i := 1; i < len(evs); i++ {
			want := sim.Hz(float64(evs[i-1].hz))
			if got := evs[i].t - evs[i-1].t; got != want {
				t.Fatalf("iter %d: interval %d = %v, want %v (rate %d)", iter, i, got, want, evs[i-1].hz)
			}
		}
	}
}
