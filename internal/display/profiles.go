package display

import "fmt"

// Profile bundles a device's display geometry and refresh menu. The paper
// targets one 2012 phone; the section rule (Eq. 1) is device-independent —
// it derives its thresholds from whatever levels the panel offers — so
// profiles let the experiments show the scheme scaling to panels the
// paper could only anticipate.
type Profile struct {
	Name          string
	Width, Height int
	Levels        []int
	// FastUpswitch marks panels that can raise the refresh rate
	// mid-interval (LTPO-class hardware).
	FastUpswitch bool
}

// Built-in profiles.
var (
	// GalaxyS3 is the paper's evaluation device (SHV-E210S): 720×1280,
	// five refresh levels unlocked by the authors' kernel modification.
	GalaxyS3 = Profile{
		Name: "galaxy-s3", Width: 720, Height: 1280,
		Levels: GalaxyS3Levels,
	}
	// Budget90 is a typical later entry-level panel: 90 Hz peak with a
	// coarse level menu.
	Budget90 = Profile{
		Name: "budget-90hz", Width: 720, Height: 1600,
		Levels: []int{30, 60, 90},
	}
	// ModernLTPO is a flagship LTPO panel: 120 Hz peak with deep
	// low-rate idling (down to 1 Hz), the hardware that eventually made
	// content-adaptive refresh standard.
	ModernLTPO = Profile{
		Name: "modern-ltpo", Width: 1080, Height: 2400,
		Levels:       []int{1, 10, 24, 30, 48, 60, 90, 120},
		FastUpswitch: true,
	}
)

// Profiles returns the built-in profiles.
func Profiles() []Profile { return []Profile{GalaxyS3, Budget90, ModernLTPO} }

// ProfileByName looks up a built-in profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if p.Name == "" || p.Width <= 0 || p.Height <= 0 || len(p.Levels) == 0 {
		return fmt.Errorf("display: invalid profile %+v", p)
	}
	for _, l := range p.Levels {
		if l <= 0 {
			return fmt.Errorf("display: profile %s has non-positive level %d", p.Name, l)
		}
	}
	return nil
}

// MaxLevel returns the highest refresh rate in the profile.
func (p Profile) MaxLevel() int {
	max := 0
	for _, l := range p.Levels {
		if l > max {
			max = l
		}
	}
	return max
}
