package display

import (
	"testing"

	"ccdem/internal/sim"
)

func TestBuiltinProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
	if GalaxyS3.MaxLevel() != 60 || ModernLTPO.MaxLevel() != 120 || Budget90.MaxLevel() != 90 {
		t.Error("max levels wrong")
	}
	if GalaxyS3.FastUpswitch {
		t.Error("the paper's S3 should not fast-upswitch")
	}
	if !ModernLTPO.FastUpswitch {
		t.Error("LTPO should fast-upswitch")
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("galaxy-s3"); !ok {
		t.Error("galaxy-s3 missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile found")
	}
}

func TestProfileValidation(t *testing.T) {
	if err := (Profile{}).Validate(); err == nil {
		t.Error("zero profile accepted")
	}
	bad := Profile{Name: "x", Width: 10, Height: 10, Levels: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Error("zero level accepted")
	}
}

func TestFastUpswitchImmediate(t *testing.T) {
	eng := sim.NewEngine()
	p, err := NewPanel(eng, Config{Levels: ModernLTPO.Levels, InitialRate: 1, FastUpswitch: true})
	if err != nil {
		t.Fatal(err)
	}
	var syncs []sim.Time
	p.OnVSync(func(ts sim.Time, hz int) { syncs = append(syncs, ts) })
	p.Start()
	// 100 ms in (far from the 1 Hz boundary at t=1 s), boost to 120.
	eng.RunUntil(100 * sim.Millisecond)
	if err := p.SetRate(120); err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 120 {
		t.Fatalf("fast upswitch not immediate: rate = %d", p.Rate())
	}
	eng.RunUntil(200 * sim.Millisecond)
	// First vsync after the switch arrives within one 120 Hz period, not
	// at the old 1 Hz boundary.
	if len(syncs) == 0 {
		t.Fatal("no syncs after fast upswitch")
	}
	if first := syncs[0]; first > 100*sim.Millisecond+sim.Hz(120)+sim.Millisecond {
		t.Errorf("first sync after upswitch at %v, want ≈%v", first, 100*sim.Millisecond+sim.Hz(120))
	}
}

func TestFastUpswitchDownwardStillWaits(t *testing.T) {
	eng := sim.NewEngine()
	p, err := NewPanel(eng, Config{Levels: GalaxyS3Levels, FastUpswitch: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	eng.RunUntil(5 * sim.Millisecond) // mid-interval at 60 Hz
	if err := p.SetRate(20); err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 60 {
		t.Errorf("downward change applied mid-interval: %d", p.Rate())
	}
	eng.RunUntil(100 * sim.Millisecond)
	if p.Rate() != 20 {
		t.Errorf("downward change never applied: %d", p.Rate())
	}
}

func TestFastUpswitchDisabledWaits(t *testing.T) {
	eng := sim.NewEngine()
	p, err := NewPanel(eng, Config{Levels: GalaxyS3Levels, InitialRate: 20})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	eng.RunUntil(5 * sim.Millisecond)
	if err := p.SetRate(60); err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 20 {
		t.Errorf("upswitch applied immediately without FastUpswitch: %d", p.Rate())
	}
}
