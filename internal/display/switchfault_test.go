package display

import (
	"testing"

	"ccdem/internal/sim"
)

func TestSwitchFaultDrop(t *testing.T) {
	eng := sim.NewEngine()
	p, err := NewPanel(eng, Config{Levels: GalaxyS3Levels})
	if err != nil {
		t.Fatal(err)
	}
	consulted := 0
	p.SetSwitchFault(func(sim.Time) (bool, int) { consulted++; return true, 0 })
	p.Start()
	if err := p.SetRate(20); err != nil {
		t.Fatalf("dropped switch surfaced an error: %v", err)
	}
	eng.RunUntil(sim.Second)
	if p.Rate() != 60 {
		t.Errorf("rate = %d Hz after dropped switch, want 60", p.Rate())
	}
	if p.Switches() != 0 {
		t.Errorf("switches = %d, want 0", p.Switches())
	}
	if consulted != 1 {
		t.Errorf("fault consulted %d times, want 1", consulted)
	}
	// Requesting the current rate never reaches the fault hook.
	if err := p.SetRate(60); err != nil {
		t.Fatal(err)
	}
	if consulted != 1 {
		t.Errorf("fault consulted on a no-op request")
	}
}

func TestSwitchFaultDelay(t *testing.T) {
	eng := sim.NewEngine()
	p, err := NewPanel(eng, Config{Levels: GalaxyS3Levels})
	if err != nil {
		t.Fatal(err)
	}
	p.SetSwitchFault(func(sim.Time) (bool, int) { return false, 3 })
	var changeAt sim.Time
	p.OnRateChange(func(ts sim.Time, _, _ int) { changeAt = ts })
	p.Start()
	if err := p.SetRate(20); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Second)
	if p.Rate() != 20 {
		t.Fatalf("delayed switch never applied: rate = %d Hz", p.Rate())
	}
	// With 3 delay vsyncs the change applies at the 4th boundary, not the
	// 1st: strictly after 3 full 60 Hz intervals.
	if min := 3 * sim.Hz(60); changeAt <= min {
		t.Errorf("delayed switch applied at %v, want after %v", changeAt, min)
	}
	if p.Switches() != 1 {
		t.Errorf("switches = %d, want 1", p.Switches())
	}
}

func TestSwitchFaultDelayBypassesFastUpswitch(t *testing.T) {
	eng := sim.NewEngine()
	p, err := NewPanel(eng, Config{Levels: GalaxyS3Levels, InitialRate: 20, FastUpswitch: true})
	if err != nil {
		t.Fatal(err)
	}
	p.SetSwitchFault(func(sim.Time) (bool, int) { return false, 2 })
	p.Start()
	if err := p.SetRate(60); err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 20 {
		t.Errorf("delayed upswitch applied immediately despite fault")
	}
	eng.RunUntil(sim.Second)
	if p.Rate() != 60 {
		t.Errorf("delayed upswitch never applied: rate = %d Hz", p.Rate())
	}
}
