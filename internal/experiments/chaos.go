package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/core"
	"ccdem/internal/fault"
	"ccdem/internal/trace"
)

// ChaosRow is one application's paired chaos measurement: a clean
// baseline, plus the full system (section+boost) run twice under the
// identical fault stream — once trusting its inputs (the paper's
// governor) and once with fail-safe hardening.
type ChaosRow struct {
	App string
	Cat app.Category

	Baseline   ccdem.Stats // GovernorOff, no faults
	Unhardened ccdem.Stats // section+boost, faults injected
	Hardened   ccdem.Stats // section+boost, faults + watchdog hardening
}

// ChaosResult is the chaos experiment: evidence that the hardened
// governor degrades gracefully — holding display quality at the paper's
// ≥95% bar by pinning maximum refresh when its sensors or actuators lie —
// while the trusting governor visibly collapses under the same faults.
// Quality here is TrueQuality (displayed/intended content), since a
// faulted meter corrupts the meter-based metric itself.
type ChaosResult struct {
	Opts Options
	Plan fault.Plan
	Rows []ChaosRow
}

// Chaos runs the chaos campaign over the whole catalog. Each app replays
// the identical Monkey script three times (baseline / unhardened+faults /
// hardened+faults); the fault stream is a pure function of (seed, app),
// so the hardened and unhardened runs face exactly the same faults and
// the whole result is deterministic per seed.
func Chaos(o Options) (*ChaosResult, error) {
	o.applyDefaults()
	plan := fault.DefaultPlan()
	if o.FaultPlan != nil {
		plan = *o.FaultPlan
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	res := &ChaosResult{Opts: o, Plan: plan}
	var mu sync.Mutex
	err := forEachApp(o, func(p app.Params) error {
		base, _, err := runApp(o, p, ccdem.GovernorOff)
		if err != nil {
			return err
		}
		unhard, err := runChaosApp(o, p, plan, nil)
		if err != nil {
			return err
		}
		hard, err := runChaosApp(o, p, plan, core.DefaultHardening())
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		res.Rows = append(res.Rows, ChaosRow{
			App: p.Name, Cat: p.Cat,
			Baseline: base, Unhardened: unhard, Hardened: hard,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortChaosRows(res.Rows)
	return res, nil
}

// sortChaosRows restores catalog order after a concurrent campaign.
func sortChaosRows(rows []ChaosRow) {
	order := map[string]int{}
	for i, p := range app.Catalog() {
		order[p.Name] = i
	}
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && order[rows[j-1].App] > order[rows[j].App]; j-- {
			rows[j-1], rows[j] = rows[j], rows[j-1]
		}
	}
}

// runChaosApp measures one faulted section+boost run, optionally hardened.
func runChaosApp(o Options, p app.Params, plan fault.Plan, hard *core.HardeningConfig) (ccdem.Stats, error) {
	// The injector seed folds in the app name exactly like appScript, with
	// a salt so fault decisions do not correlate with script gestures.
	seed := o.Seed
	for _, c := range []byte(p.Name) {
		seed = seed*131 + int64(c)
	}
	inj := fault.New(seed^0x5eed0fa1, plan)
	dev, err := ccdem.NewDevice(ccdem.Config{
		Width: screenW, Height: screenH,
		Governor:     ccdem.GovernorSectionBoost,
		MeterSamples: o.MeterSamples,
		NaivePixels:  o.NaivePixels,
		NoPalette:    o.NoPalette,
		Faults:       inj,
		Hardening:    hard,
	})
	if err != nil {
		return ccdem.Stats{}, err
	}
	if _, err := dev.InstallApp(p); err != nil {
		return ccdem.Stats{}, err
	}
	sc, err := appScript(o, p.Name, o.Duration)
	if err != nil {
		return ccdem.Stats{}, err
	}
	dev.PlayScript(sc)
	dev.Run(o.Duration)
	return dev.Stats(), nil
}

// ChaosSummary condenses the campaign into the acceptance numbers.
type ChaosSummary struct {
	// Mean and minimum TrueQuality (%) across apps, per configuration.
	UnhardenedMeanPct, UnhardenedMinPct float64
	HardenedMeanPct, HardenedMinPct     float64
	// Apps below the paper's 95% quality bar, per configuration.
	UnhardenedBelow95, HardenedBelow95 int
	// Mean power saved vs baseline (mW) by the hardened system — the
	// price of safety is a smaller saving, not lost quality.
	HardenedSavedMW, UnhardenedSavedMW float64
	// Fault/recovery totals across the hardened runs.
	Faults, Retries, FailSafeEnters, FailSafeExits uint64
}

// Summary computes the campaign summary.
func (c *ChaosResult) Summary() ChaosSummary {
	var s ChaosSummary
	var uq, hq, usaved, hsaved []float64
	s.UnhardenedMinPct, s.HardenedMinPct = 100, 100
	for _, r := range c.Rows {
		u := 100 * r.Unhardened.TrueQuality
		h := 100 * r.Hardened.TrueQuality
		uq = append(uq, u)
		hq = append(hq, h)
		usaved = append(usaved, r.Baseline.MeanPowerMW-r.Unhardened.MeanPowerMW)
		hsaved = append(hsaved, r.Baseline.MeanPowerMW-r.Hardened.MeanPowerMW)
		if u < s.UnhardenedMinPct {
			s.UnhardenedMinPct = u
		}
		if h < s.HardenedMinPct {
			s.HardenedMinPct = h
		}
		if u < 95 {
			s.UnhardenedBelow95++
		}
		if h < 95 {
			s.HardenedBelow95++
		}
		s.Faults += r.Hardened.FaultsInjected
		s.Retries += r.Hardened.SwitchRetries
		s.FailSafeEnters += r.Hardened.FailSafeEnters
		s.FailSafeExits += r.Hardened.FailSafeExits
	}
	s.UnhardenedMeanPct = trace.Mean(uq)
	s.HardenedMeanPct = trace.Mean(hq)
	s.UnhardenedSavedMW = trace.Mean(usaved)
	s.HardenedSavedMW = trace.Mean(hsaved)
	return s
}

// String renders the chaos report.
func (c *ChaosResult) String() string {
	var sb strings.Builder
	sb.WriteString("Chaos: display quality under injected faults (quality = displayed/intended content)\n\n")
	for _, cat := range []app.Category{app.General, app.Game} {
		sb.WriteString(fmt.Sprintf("%s applications:\n", titleCase(cat.String())))
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "  app\tfaults\tunhardened\thardened\tsaved\tretries\tfail-safes\n")
			for _, r := range c.Rows {
				if r.Cat != cat {
					continue
				}
				fmt.Fprintf(w, "  %s\t%d\t%.1f%%\t%.1f%%\t%.0f mW\t%d\t%d (%d recovered)\n",
					r.App, r.Hardened.FaultsInjected,
					100*r.Unhardened.TrueQuality, 100*r.Hardened.TrueQuality,
					r.Baseline.MeanPowerMW-r.Hardened.MeanPowerMW,
					r.Hardened.SwitchRetries,
					r.Hardened.FailSafeEnters, r.Hardened.FailSafeExits)
			}
		}))
		sb.WriteString("\n")
	}
	s := c.Summary()
	sb.WriteString(fmt.Sprintf("summary: unhardened quality mean %.1f%% (min %.1f%%, %d apps < 95%%)\n",
		s.UnhardenedMeanPct, s.UnhardenedMinPct, s.UnhardenedBelow95))
	sb.WriteString(fmt.Sprintf("         hardened   quality mean %.1f%% (min %.1f%%, %d apps < 95%%)\n",
		s.HardenedMeanPct, s.HardenedMinPct, s.HardenedBelow95))
	sb.WriteString(fmt.Sprintf("         saved vs baseline: unhardened %.0f mW, hardened %.0f mW\n",
		s.UnhardenedSavedMW, s.HardenedSavedMW))
	sb.WriteString(fmt.Sprintf("         faults %d, switch retries %d, fail-safe episodes %d (%d recovered)\n",
		s.Faults, s.Retries, s.FailSafeEnters, s.FailSafeExits))
	return sb.String()
}

// WriteCSV writes one row per application.
func (c *ChaosResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "app,category,baseline_mw,unhardened_mw,hardened_mw,unhardened_quality_pct,hardened_quality_pct,faults,retries,failsafe_enters,failsafe_exits"); err != nil {
		return err
	}
	for _, r := range c.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%g,%d,%d,%d,%d\n",
			r.App, r.Cat, r.Baseline.MeanPowerMW, r.Unhardened.MeanPowerMW, r.Hardened.MeanPowerMW,
			100*r.Unhardened.TrueQuality, 100*r.Hardened.TrueQuality,
			r.Hardened.FaultsInjected, r.Hardened.SwitchRetries,
			r.Hardened.FailSafeEnters, r.Hardened.FailSafeExits); err != nil {
			return err
		}
	}
	return nil
}
