package experiments

import (
	"strings"
	"testing"

	"ccdem/internal/sim"
)

func TestChaosHardeningHoldsQuality(t *testing.T) {
	r, err := Chaos(Options{Duration: 30 * sim.Second, Seed: 11})
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	s := r.Summary()
	t.Logf("\n%s", r)
	if s.Faults == 0 {
		t.Error("no faults injected in hardened runs")
	}
	if s.HardenedMeanPct < 95 {
		t.Errorf("hardened mean quality %.1f%% < 95%%", s.HardenedMeanPct)
	}
	if s.UnhardenedMeanPct >= s.HardenedMeanPct {
		t.Errorf("unhardened mean quality %.1f%% not below hardened %.1f%%",
			s.UnhardenedMeanPct, s.HardenedMeanPct)
	}
	if s.UnhardenedBelow95 == 0 {
		t.Error("expected some unhardened apps below the 95% quality bar")
	}
	if s.FailSafeEnters == 0 {
		t.Error("hardened runs never entered fail-safe despite faults")
	}
}

func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) string {
		r, err := Chaos(Options{Duration: 10 * sim.Second, Seed: 3, Parallelism: par})
		if err != nil {
			t.Fatalf("Chaos: %v", err)
		}
		var sb strings.Builder
		if err := r.WriteCSV(&sb); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return r.String() + sb.String()
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("chaos output differs across parallelism:\n--- workers=1\n%s\n--- workers=8\n%s", a, b)
	}
}
