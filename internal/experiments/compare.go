package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/trace"
)

// CompareRow is one application's result in the scheme-comparison
// extension experiment.
type CompareRow struct {
	App string
	Cat app.Category

	BaselineMW float64
	// Saved power per scheme (mW vs baseline).
	E3SavedMW    float64
	IdleSavedMW  float64
	CcdemSavedMW float64
	// Display quality per scheme.
	E3Quality    float64
	IdleQuality  float64
	CcdemQuality float64
}

// CompareResult is the extension experiment contrasting the paper's scheme
// (refresh-rate control + touch boosting) with two alternatives: the
// E³-style frame-rate adaptation of its related work [16], and the
// content-blind idle-timeout adaptive refresh that later production
// phones shipped. Frame-rate adaptation removes redundant render work but
// cannot touch the refresh-proportional panel power; idle-timeout control
// reclaims refresh power on static screens but mangles autonomous content
// (video, games) it cannot see; the paper's scheme removes both kinds of
// waste while preserving quality.
type CompareResult struct {
	Rows []CompareRow
}

// CompareSchemes runs the comparison over the full catalog (apps run
// concurrently up to Options.Parallelism).
func CompareSchemes(o Options) (*CompareResult, error) {
	o.applyDefaults()
	res := &CompareResult{}
	var mu sync.Mutex
	err := forEachApp(o, func(p app.Params) error {
		base, _, err := runApp(o, p, ccdem.GovernorOff)
		if err != nil {
			return err
		}
		e3, _, err := runApp(o, p, ccdem.GovernorE3)
		if err != nil {
			return err
		}
		idle, _, err := runApp(o, p, ccdem.GovernorIdleTimeout)
		if err != nil {
			return err
		}
		full, _, err := runApp(o, p, ccdem.GovernorSectionBoost)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		res.Rows = append(res.Rows, CompareRow{
			App: p.Name, Cat: p.Cat,
			BaselineMW:   base.MeanPowerMW,
			E3SavedMW:    base.MeanPowerMW - e3.MeanPowerMW,
			IdleSavedMW:  base.MeanPowerMW - idle.MeanPowerMW,
			CcdemSavedMW: base.MeanPowerMW - full.MeanPowerMW,
			E3Quality:    e3.DisplayQuality,
			IdleQuality:  idle.DisplayQuality,
			CcdemQuality: full.DisplayQuality,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	order := map[string]int{}
	for i, p := range app.Catalog() {
		order[p.Name] = i
	}
	sort.Slice(res.Rows, func(i, j int) bool { return order[res.Rows[i].App] < order[res.Rows[j].App] })
	return res, nil
}

// MeanSaved returns the category means (pass app.AnyCategory for all).
func (r *CompareResult) MeanSaved(cat app.Category) (e3, ccdem float64) {
	var e3s, ccs []float64
	for _, row := range r.Rows {
		if cat != app.AnyCategory && row.Cat != cat {
			continue
		}
		e3s = append(e3s, row.E3SavedMW)
		ccs = append(ccs, row.CcdemSavedMW)
	}
	return trace.Mean(e3s), trace.Mean(ccs)
}

// MeanIdle returns the category means for the idle-timeout scheme: saved
// power and display quality.
func (r *CompareResult) MeanIdle(cat app.Category) (savedMW, quality float64) {
	var saved, q []float64
	for _, row := range r.Rows {
		if cat != app.AnyCategory && row.Cat != cat {
			continue
		}
		saved = append(saved, row.IdleSavedMW)
		q = append(q, row.IdleQuality)
	}
	return trace.Mean(saved), trace.Mean(q)
}

// String renders the comparison table.
func (r *CompareResult) String() string {
	var sb strings.Builder
	sb.WriteString("Extension: refresh-rate control (this paper) vs E3 frame-rate adaptation [16]\n")
	sb.WriteString("           vs content-blind idle-timeout adaptive refresh\n\n")
	for _, cat := range []app.Category{app.General, app.Game} {
		sb.WriteString(fmt.Sprintf("%s applications:\n", titleCase(cat.String())))
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "  app\tbaseline\tE3 saved\tE3 qual\tidle saved\tidle qual\tccdem saved\tccdem qual\n")
			for _, row := range r.Rows {
				if row.Cat != cat {
					continue
				}
				fmt.Fprintf(w, "  %s\t%.0f mW\t%.0f mW\t%.1f%%\t%.0f mW\t%.1f%%\t%.0f mW\t%.1f%%\n",
					row.App, row.BaselineMW,
					row.E3SavedMW, 100*row.E3Quality,
					row.IdleSavedMW, 100*row.IdleQuality,
					row.CcdemSavedMW, 100*row.CcdemQuality)
			}
		}))
		e3, cc := r.MeanSaved(cat)
		idleSaved, idleQ := r.MeanIdle(cat)
		sb.WriteString(fmt.Sprintf("  mean saved: E3 %.0f mW, idle-timeout %.0f mW (quality %.0f%%), ccdem %.0f mW\n\n",
			e3, idleSaved, 100*idleQ, cc))
	}
	return sb.String()
}
