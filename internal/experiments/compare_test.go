package experiments

import (
	"strings"
	"testing"

	"ccdem/internal/app"
	"ccdem/internal/sim"
)

func TestCompareSchemesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison campaign is slow")
	}
	r, err := CompareSchemes(Options{Duration: 15 * sim.Second, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(r.Rows))
	}
	// Games: both schemes save, ccdem saves more (it also removes
	// refresh-proportional panel power).
	e3g, ccg := r.MeanSaved(app.Game)
	if e3g <= 0 {
		t.Errorf("E3 mean game saving = %v, want positive", e3g)
	}
	if ccg <= e3g {
		t.Errorf("ccdem game saving %v not above E3 %v", ccg, e3g)
	}
	// General apps: frame-rate adaptation has little to throttle (frame
	// rates are already low), so refresh control wins by a wide margin.
	e3gen, ccgen := r.MeanSaved(app.General)
	if ccgen < e3gen+50 {
		t.Errorf("ccdem general saving %v not ≫ E3 %v", ccgen, e3gen)
	}
	// The gap is roughly the refresh-dependent panel power (≈140 mW for
	// 60→20 Hz at 3.5 mW/Hz) — order of magnitude check.
	if gap := ccgen - e3gen; gap < 60 || gap > 250 {
		t.Errorf("general-apps gap = %v mW, want refresh-power scale ≈100-150", gap)
	}
	if !strings.Contains(r.String(), "E3") {
		t.Error("rendering missing scheme label")
	}
}

func TestCompareIdleTimeoutShape(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison campaign is slow")
	}
	r, err := CompareSchemes(Options{Duration: 15 * sim.Second, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// The content-blind policy saves plenty of power on games (it drops
	// to 20 Hz whenever the user is not touching) but wrecks their
	// quality; the content-centric scheme keeps quality high.
	idleSaved, idleQ := r.MeanIdle(app.Game)
	if idleSaved <= 0 {
		t.Errorf("idle-timeout game saving = %v, want positive", idleSaved)
	}
	var ccQ []float64
	for _, row := range r.Rows {
		if row.Cat == app.Game {
			ccQ = append(ccQ, row.CcdemQuality)
		}
	}
	ccMean := 0.0
	for _, q := range ccQ {
		ccMean += q
	}
	ccMean /= float64(len(ccQ))
	if idleQ >= ccMean-0.02 {
		t.Errorf("idle-timeout game quality %v not clearly below ccdem %v", idleQ, ccMean)
	}
	// Content-blindness bites exactly where content exceeds the idle
	// rate: high-content games and video. Low-content games fit under
	// 20 Hz and are unhurt — which is also part of the shape.
	for _, row := range r.Rows {
		switch row.App {
		case "MX Player", "Cookie Run", "Geometry Dash", "Asphalt 8":
			if row.IdleQuality >= row.CcdemQuality-0.05 {
				t.Errorf("%s: idle quality %v not well below ccdem %v",
					row.App, row.IdleQuality, row.CcdemQuality)
			}
		case "Tiny Flashlight":
			if row.IdleQuality < 0.95 {
				t.Errorf("%s: idle quality %v — static apps should be unhurt", row.App, row.IdleQuality)
			}
		}
	}
}
