package experiments

import (
	"encoding/csv"
	"io"
	"strconv"

	"ccdem"
)

// CSV writers for the table-shaped results, so the figures can be
// re-plotted with external tooling (gnuplot, pandas, spreadsheets). Trace
// figures (2, 7, 8) export through Device.ExportTracesCSV / the
// per-result Series values; the campaign tables export here.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV exports the Figure 3 rows.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App, row.Cat.String(), f(row.FrameRate), f(row.MeaningfulFPS), f(row.RedundantFPS),
		})
	}
	return writeCSV(w, []string{"app", "category", "frame_fps", "meaningful_fps", "redundant_fps"}, rows)
}

// WriteCSV exports the Figure 6 grid table.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Grids))
	for _, g := range r.Grids {
		rows = append(rows, []string{
			g.Label, strconv.Itoa(g.Pixels), f(g.ErrorRate), f(g.ModelDurationMS),
			strconv.FormatBool(g.FitsBudget),
		})
	}
	return writeCSV(w, []string{"grid", "pixels", "error_pct", "model_duration_ms", "fits_budget"}, rows)
}

// WriteCSV exports the campaign's per-app measurements behind Figures
// 9–11 and Table 1.
func (s *Suite) WriteCSV(w io.Writer) error {
	header := []string{
		"app", "category", "baseline_mw",
		"section_saved_mw", "boost_saved_mw",
		"section_quality", "boost_quality",
		"actual_content_fps", "section_content_fps", "boost_content_fps",
		"section_dropped_fps", "boost_dropped_fps",
	}
	rows := make([][]string, 0, len(s.Runs))
	for _, r := range s.Runs {
		rows = append(rows, []string{
			r.App, r.Cat.String(), f(r.Baseline.MeanPowerMW),
			f(r.SavedMW(ccdem.GovernorSection)), f(r.SavedMW(ccdem.GovernorSectionBoost)),
			f(r.Section.DisplayQuality), f(r.Boost.DisplayQuality),
			f(r.Baseline.IntendedRate), f(r.Section.ContentRate), f(r.Boost.ContentRate),
			f(r.Section.DroppedFPS), f(r.Boost.DroppedFPS),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV exports the scheme-comparison rows.
func (r *CompareResult) WriteCSV(w io.Writer) error {
	header := []string{
		"app", "category", "baseline_mw",
		"e3_saved_mw", "e3_quality",
		"idle_saved_mw", "idle_quality",
		"ccdem_saved_mw", "ccdem_quality",
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App, row.Cat.String(), f(row.BaselineMW),
			f(row.E3SavedMW), f(row.E3Quality),
			f(row.IdleSavedMW), f(row.IdleQuality),
			f(row.CcdemSavedMW), f(row.CcdemQuality),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV exports the panel-scaling rows.
func (r *ScalingResult) WriteCSV(w io.Writer) error {
	header := []string{
		"panel", "max_hz", "app", "baseline_mw", "managed_mw",
		"saved_mw", "saved_pct", "mean_refresh_hz", "quality",
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Profile.Name, strconv.Itoa(row.Profile.MaxLevel()), row.App,
			f(row.BaselineMW), f(row.ManagedMW), f(row.SavedMW), f(row.SavedPct),
			f(row.MeanRefreshHz), f(row.Quality),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV exports the frontier points.
func (r *FrontierResult) WriteCSV(w io.Writer) error {
	header := []string{"scheme", "saved_mw", "display_quality", "luminance_fidelity", "combined_quality"}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Scheme, f(p.SavedMW), f(p.DisplayQuality), f(p.LuminanceFidelity), f(p.Quality),
		})
	}
	return writeCSV(w, header, rows)
}
