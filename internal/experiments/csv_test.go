package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/display"
)

// parseCSV reads all records, failing the test on malformed output.
func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	recs, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return recs
}

func TestFig3CSV(t *testing.T) {
	r := &Fig3Result{Rows: []Fig3Row{
		{App: "A", Cat: app.General, FrameRate: 10, MeaningfulFPS: 6, RedundantFPS: 4},
		{App: "B", Cat: app.Game, FrameRate: 60, MeaningfulFPS: 15, RedundantFPS: 45},
	}}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 || recs[0][0] != "app" || recs[2][4] != "45" {
		t.Errorf("records = %v", recs)
	}
}

func TestFig6CSV(t *testing.T) {
	r := &Fig6Result{Grids: []Fig6Grid{
		{Label: "2K", Pixels: 2304, ErrorRate: 50, ModelDurationMS: 0.6, FitsBudget: true},
		{Label: "921K", Pixels: 921600, ErrorRate: 0, ModelDurationMS: 40, FitsBudget: false},
	}}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 || recs[2][4] != "false" {
		t.Errorf("records = %v", recs)
	}
}

func TestSuiteCSV(t *testing.T) {
	s := &Suite{Runs: []AppRun{{
		App: "X", Cat: app.Game,
		Baseline: ccdem.Stats{MeanPowerMW: 1000, IntendedRate: 20},
		Section:  ccdem.Stats{MeanPowerMW: 800, DisplayQuality: 0.9, ContentRate: 18, DroppedFPS: 2},
		Boost:    ccdem.Stats{MeanPowerMW: 850, DisplayQuality: 0.99, ContentRate: 19.8, DroppedFPS: 0.2},
	}}}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("records = %v", recs)
	}
	if recs[1][3] != "200" || recs[1][4] != "150" {
		t.Errorf("saved columns = %v", recs[1])
	}
	if len(recs[0]) != len(recs[1]) {
		t.Error("header/row width mismatch")
	}
}

func TestCompareAndScalingAndFrontierCSV(t *testing.T) {
	cr := &CompareResult{Rows: []CompareRow{{App: "X", Cat: app.General, BaselineMW: 700}}}
	var buf bytes.Buffer
	if err := cr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if recs := parseCSV(t, &buf); len(recs) != 2 || len(recs[0]) != 9 {
		t.Errorf("compare records = %v", recs)
	}

	sr := &ScalingResult{Rows: []ScalingRow{{
		Profile: display.GalaxyS3, App: "X", BaselineMW: 1000, ManagedMW: 800,
		SavedMW: 200, SavedPct: 20, MeanRefreshHz: 30, Quality: 0.95,
	}}}
	buf.Reset()
	if err := sr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if recs := parseCSV(t, &buf); len(recs) != 2 || recs[1][0] != "galaxy-s3" || recs[1][1] != "60" {
		t.Errorf("scaling records = %v", recs)
	}

	fr := &FrontierResult{Points: []FrontierPoint{{Scheme: "ccdem", SavedMW: 200, Quality: 0.99}}}
	buf.Reset()
	if err := fr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "ccdem") || !strings.Contains(out, "scheme") {
		t.Errorf("frontier CSV = %s", out)
	}
}
