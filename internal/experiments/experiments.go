// Package experiments regenerates every measured figure and table of the
// paper's evaluation (§4) on the simulated device. Each FigN function
// returns a structured result whose String method prints the same rows or
// series the paper plots; DESIGN.md §5 maps each experiment to the modules
// it exercises and EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/fault"
	"ccdem/internal/fleet"
	"ccdem/internal/input"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// Options control experiment scale. The paper runs each application for
// about three minutes; shorter durations keep unit tests fast while
// preserving every qualitative shape.
type Options struct {
	// Duration of each run. Default 180 s (the paper's ≈3 minutes).
	Duration sim.Time
	// Seed drives the Monkey script generator. Identical seeds reproduce
	// identical runs bit-for-bit.
	Seed int64
	// MeterSamples sets the governor's comparison grid. Default 9216.
	MeterSamples int
	// Parallelism bounds the number of runs executed concurrently in
	// campaign experiments. Every run owns a private simulation engine,
	// so runs are independent and results remain bit-identical regardless
	// of this value. Default GOMAXPROCS.
	Parallelism int
	// Repeats averages each (app, mode) measurement over this many runs
	// with distinct Monkey seeds — the paper repeats its measurements and
	// reports means with deviations. Default 1 (single run per cell).
	Repeats int
	// Obs, when non-nil, collects observability from every measurement
	// run: one collector track per (app, mode, seed) cell, holding that
	// run's decision events and metrics. Nil (the default) disables
	// observability at zero cost.
	Obs *obs.Collector
	// FaultPlan overrides the chaos experiment's fault mix (nil selects
	// fault.DefaultPlan). Only Chaos consults it.
	FaultPlan *fault.Plan
	// NoPalette disables palette-compressed tile surfaces and the app
	// state memo on every measured device (ccdem.Config.NoPalette).
	// Results are byte-identical either way; the knob is the palette
	// layer's differential-testing oracle.
	NoPalette bool
	// NaivePixels forces the brute-force pixel pipeline on every measured
	// device (ccdem.Config.NaivePixels) — the tile layer's oracle, which
	// also implies NoPalette.
	NaivePixels bool
}

func (o *Options) applyDefaults() {
	if o.Duration == 0 {
		o.Duration = 180 * sim.Second
	}
	if o.MeterSamples == 0 {
		o.MeterSamples = 9216
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	if o.Repeats < 1 {
		o.Repeats = 1
	}
}

// runAppRepeated measures one (app, mode) cell Repeats times with distinct
// seeds and returns the per-field mean of the stats.
func runAppRepeated(o Options, p app.Params, mode ccdem.GovernorMode) (ccdem.Stats, error) {
	if o.Repeats <= 1 {
		st, _, err := runApp(o, p, mode)
		return st, err
	}
	var acc []ccdem.Stats
	for r := 0; r < o.Repeats; r++ {
		or := o
		or.Seed = o.Seed + int64(r)*7919 // distinct scripts per repeat
		st, _, err := runApp(or, p, mode)
		if err != nil {
			return ccdem.Stats{}, err
		}
		acc = append(acc, st)
	}
	return meanStats(acc), nil
}

// meanStats averages the continuous fields of a set of runs (counters are
// averaged too, rounding down); Mode and Duration come from the first run.
func meanStats(ss []ccdem.Stats) ccdem.Stats {
	if len(ss) == 0 {
		return ccdem.Stats{}
	}
	out := ss[0]
	n := float64(len(ss))
	var power, powerStd, energy, frame, content, redundant, intended, quality, dropped, refresh float64
	var switches, boosts uint64
	for _, s := range ss {
		power += s.MeanPowerMW
		powerStd += s.PowerStdMW
		energy += s.EnergyMJ
		frame += s.FrameRate
		content += s.ContentRate
		redundant += s.RedundantRate
		intended += s.IntendedRate
		quality += s.DisplayQuality
		dropped += s.DroppedFPS
		refresh += s.MeanRefreshHz
		switches += s.RefreshSwitches
		boosts += s.BoostCount
	}
	out.MeanPowerMW = power / n
	out.PowerStdMW = powerStd / n
	out.EnergyMJ = energy / n
	out.FrameRate = frame / n
	out.ContentRate = content / n
	out.RedundantRate = redundant / n
	out.IntendedRate = intended / n
	out.DisplayQuality = quality / n
	out.DroppedFPS = dropped / n
	out.MeanRefreshHz = refresh / n
	out.RefreshSwitches = switches / uint64(len(ss))
	out.BoostCount = boosts / uint64(len(ss))
	out.Breakdown = nil // per-component energy is not averaged
	return out
}

// forEachApp runs fn once per catalog application through a fleet.Pool,
// up to o.Parallelism at a time. fn must be self-contained (each
// invocation builds its own device and engine). Every application runs
// even when some fail; all failures are returned together in catalog
// order (errors.Join), each wrapped with its application name.
func forEachApp(o Options, fn func(p app.Params) error) error {
	cat := app.Catalog()
	pool := fleet.Pool{Workers: o.Parallelism, ContinueOnError: true}
	return pool.Run(context.Background(), len(cat), func(_ context.Context, i int) error {
		if err := fn(cat[i]); err != nil {
			return fmt.Errorf("%s: %w", cat[i].Name, err)
		}
		return nil
	})
}

// screen dimensions of the reproduction's Galaxy S3 target.
const (
	screenW = 720
	screenH = 1280
)

// appScript builds the deterministic Monkey script used for one app. The
// app name is folded into the seed so each app gets a distinct but
// reproducible interaction sequence, while paired runs (baseline vs
// governed) of the same app replay the identical script — the paper's
// "repeating the same script generated by Monkey".
func appScript(o Options, appName string, length sim.Time) (input.Script, error) {
	seed := o.Seed
	for _, c := range []byte(appName) {
		seed = seed*131 + int64(c)
	}
	mk, err := input.NewMonkey(seed, input.DefaultMonkeyConfig())
	if err != nil {
		return input.Script{}, err
	}
	return mk.Script(length, screenW, screenH), nil
}

// runApp executes one (app, mode) measurement run and returns its stats
// and traces.
func runApp(o Options, p app.Params, mode ccdem.GovernorMode) (ccdem.Stats, ccdem.Traces, error) {
	rec, reg := o.Obs.Device(fmt.Sprintf("%s [%s] seed=%d", p.Name, mode, o.Seed))
	dev, err := ccdem.NewDevice(ccdem.Config{
		Width: screenW, Height: screenH,
		Governor:     mode,
		MeterSamples: o.MeterSamples,
		NaivePixels:  o.NaivePixels,
		NoPalette:    o.NoPalette,
		Recorder:     rec,
		Metrics:      reg,
	})
	if err != nil {
		return ccdem.Stats{}, ccdem.Traces{}, err
	}
	if _, err := dev.InstallApp(p); err != nil {
		return ccdem.Stats{}, ccdem.Traces{}, err
	}
	sc, err := appScript(o, p.Name, o.Duration)
	if err != nil {
		return ccdem.Stats{}, ccdem.Traces{}, err
	}
	dev.PlayScript(sc)
	dev.Run(o.Duration)
	dev.FinishObs()
	return dev.Stats(), dev.Traces(), nil
}

// mustApp fetches a catalog entry or errors.
func catalogApp(name string) (app.Params, error) {
	p, ok := app.ByName(name)
	if !ok {
		return app.Params{}, fmt.Errorf("experiments: app %q not in catalog", name)
	}
	return p, nil
}

// table is a small helper for aligned text output.
func table(write func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	write(w)
	w.Flush()
	return sb.String()
}
