package experiments

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/sim"
)

// Short options keep the test suite fast; shapes are asserted, not
// absolute values.
func shortOpts() Options {
	return Options{Duration: 20 * sim.Second, Seed: 1}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) != 2 {
		t.Fatalf("traces = %d", len(r.Traces))
	}
	var fb, js Fig2Trace
	for _, tr := range r.Traces {
		switch tr.App {
		case "Facebook":
			fb = tr
		case "Jelly Splash":
			js = tr
		}
	}
	// Figure 2's contrast: Facebook's frame rate is low most of the time;
	// Jelly Splash stays near 60 fps with much lower content rate.
	if fb.FrameRate.Mean() > 20 {
		t.Errorf("Facebook mean frame rate = %v, want low", fb.FrameRate.Mean())
	}
	if js.FrameRate.Mean() < 50 {
		t.Errorf("Jelly Splash mean frame rate = %v, want ≈60", js.FrameRate.Mean())
	}
	if js.Content.Mean() > js.FrameRate.Mean()/2 {
		t.Errorf("Jelly Splash content %v not well below frame rate %v",
			js.Content.Mean(), js.FrameRate.Mean())
	}
	if len(fb.Touches) == 0 {
		t.Error("no touches recorded")
	}
	if !strings.Contains(r.String(), "Jelly Splash") {
		t.Error("String() missing app name")
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(r.Rows))
	}
	// Games all exceed 30 fps of frame updates.
	for _, row := range r.Category(app.Game) {
		if row.FrameRate < 30 {
			t.Errorf("game %s frame rate = %v, want >30", row.App, row.FrameRate)
		}
	}
	// ~80% of games exceed 20 redundant fps (at the short test duration a
	// lull window can push even the action titles above the line, so only
	// the lower bound is asserted here; the 180 s campaign lands at ≈87%).
	if share := r.ShareAboveRedundant(app.Game, 20); share < 0.6 {
		t.Errorf("games above 20 redundant fps = %v, want ≳0.8", share)
	}
	// A minority of general apps are highly redundant.
	if share := r.ShareAboveRedundant(app.General, 15); share < 0.15 || share > 0.6 {
		t.Errorf("general apps above 15 redundant fps = %v, want ≈0.3-0.4", share)
	}
	if !strings.Contains(r.String(), "redundant") {
		t.Error("String() missing summary")
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(Options{Duration: 10 * sim.Second, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Grids) != 5 {
		t.Fatalf("grids = %d, want 5", len(r.Grids))
	}
	// Error decreases (not strictly, but from 2K to 36K substantially) and
	// the full grid is exact.
	if r.Grids[0].ErrorRate <= r.Grids[3].ErrorRate {
		t.Errorf("2K error %v not above 36K error %v", r.Grids[0].ErrorRate, r.Grids[3].ErrorRate)
	}
	if r.Grids[4].ErrorRate != 0 {
		t.Errorf("full-grid error = %v, want 0", r.Grids[4].ErrorRate)
	}
	if r.Grids[3].ErrorRate > 5 {
		t.Errorf("36K error = %v, want ≈0", r.Grids[3].ErrorRate)
	}
	// Cost model: only the full grid misses the 60 Hz budget.
	for i, g := range r.Grids {
		wantFits := i != 4
		if g.FitsBudget != wantFits {
			t.Errorf("%s FitsBudget = %v, want %v", g.Label, g.FitsBudget, wantFits)
		}
	}
	// Durations are monotone in pixel count.
	for i := 1; i < len(r.Grids); i++ {
		if r.Grids[i].ModelDurationMS < r.Grids[i-1].ModelDurationMS {
			t.Errorf("duration not monotone at %s", r.Grids[i].Label)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(Options{Duration: 30 * sim.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(r.Traces))
	}
	get := func(appName string, mode ccdem.GovernorMode) Fig7Trace {
		for _, tr := range r.Traces {
			if tr.App == appName && tr.Mode == mode {
				return tr
			}
		}
		t.Fatalf("missing trace %s/%s", appName, mode)
		return Fig7Trace{}
	}
	fbSect := get("Facebook", ccdem.GovernorSection)
	fbBoost := get("Facebook", ccdem.GovernorSectionBoost)
	// Boost reduces frame drops and raises quality on interactive apps.
	if fbBoost.DroppedFPS >= fbSect.DroppedFPS {
		t.Errorf("boost drops %v not below section drops %v", fbBoost.DroppedFPS, fbSect.DroppedFPS)
	}
	if fbBoost.Quality <= fbSect.Quality {
		t.Errorf("boost quality %v not above section %v", fbBoost.Quality, fbSect.Quality)
	}
	// Boost raises the mean refresh rate (the fluctuation in Fig 7b/d).
	if fbBoost.Refresh.Mean() <= fbSect.Refresh.Mean() {
		t.Errorf("boost mean refresh %v not above section %v",
			fbBoost.Refresh.Mean(), fbSect.Refresh.Mean())
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(Options{Duration: 30 * sim.Second, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(r.Traces))
	}
	get := func(appName string, mode ccdem.GovernorMode) Fig8Trace {
		for _, tr := range r.Traces {
			if tr.App == appName && tr.Mode == mode {
				return tr
			}
		}
		t.Fatalf("missing trace %s/%s", appName, mode)
		return Fig8Trace{}
	}
	fb := get("Facebook", ccdem.GovernorSection)
	js := get("Jelly Splash", ccdem.GovernorSection)
	// Figure 8's contrast: Jelly Splash saves much more than Facebook.
	if js.MeanSavedMW <= fb.MeanSavedMW {
		t.Errorf("Jelly Splash saved %v ≤ Facebook saved %v", js.MeanSavedMW, fb.MeanSavedMW)
	}
	if fb.MeanSavedMW < 50 {
		t.Errorf("Facebook saved %v mW, want ≈100+", fb.MeanSavedMW)
	}
	if js.MeanSavedMW < 200 {
		t.Errorf("Jelly Splash saved %v mW, want ≈300", js.MeanSavedMW)
	}
	// Boost costs a little of the saving.
	jsBoost := get("Jelly Splash", ccdem.GovernorSectionBoost)
	if jsBoost.MeanSavedMW > js.MeanSavedMW {
		t.Errorf("boost saving %v above section saving %v", jsBoost.MeanSavedMW, js.MeanSavedMW)
	}
}

func TestRepeatsAverageStats(t *testing.T) {
	// A two-repeat campaign cell averages distinct-script runs; the mean
	// must sit between the two individual measurements.
	p, err := catalogApp("Facebook")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Duration: 10 * sim.Second, Seed: 3}
	a, _, err := runApp(o, p, ccdem.GovernorSection)
	if err != nil {
		t.Fatal(err)
	}
	o2 := o
	o2.Seed = o.Seed + 7919
	b, _, err := runApp(o2, p, ccdem.GovernorSection)
	if err != nil {
		t.Fatal(err)
	}
	or := o
	or.Repeats = 2
	avg, err := runAppRepeated(or, p, ccdem.GovernorSection)
	if err != nil {
		t.Fatal(err)
	}
	want := (a.MeanPowerMW + b.MeanPowerMW) / 2
	if diff := avg.MeanPowerMW - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("averaged power = %v, want %v", avg.MeanPowerMW, want)
	}
	lo, hi := a.DisplayQuality, b.DisplayQuality
	if lo > hi {
		lo, hi = hi, lo
	}
	if avg.DisplayQuality < lo-1e-9 || avg.DisplayQuality > hi+1e-9 {
		t.Errorf("averaged quality %v outside [%v, %v]", avg.DisplayQuality, lo, hi)
	}
}

func TestMeanStatsEmpty(t *testing.T) {
	if got := meanStats(nil); got.MeanPowerMW != 0 {
		t.Errorf("meanStats(nil) = %+v", got)
	}
}

// forEachApp must run every application even when some fail, and report
// every failure (wrapped with its app name) rather than only the first.
func TestForEachAppCollectsAllFailures(t *testing.T) {
	failing := map[string]bool{"Facebook": true, "Jelly Splash": true, "Weather": true}
	var mu sync.Mutex
	ran := 0
	err := forEachApp(Options{Parallelism: 4}, func(p app.Params) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if failing[p.Name] {
			return errors.New("injected failure")
		}
		return nil
	})
	if want := len(app.Catalog()); ran != want {
		t.Errorf("ran %d apps, want all %d despite failures", ran, want)
	}
	if err == nil {
		t.Fatal("nil error from failing campaign")
	}
	for name := range failing {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("joined error missing %q:\n%v", name, err)
		}
	}
}
