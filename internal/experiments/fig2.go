package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

// Fig2Trace is one application's panel of Figure 2: frame-rate and
// content-rate traces against the fixed 60 Hz refresh, with the user-input
// instants marked.
type Fig2Trace struct {
	App       string
	FrameRate *trace.Series // measured frame rate (fps), 1 s buckets
	Content   *trace.Series // measured content rate (fps), 1 s buckets
	RefreshHz int           // fixed baseline refresh
	Touches   []sim.Time    // gesture start times
}

// Fig2Result reproduces Figure 2: frame-rate traces of Facebook (mostly
// idle, bursts on user requests) and Jelly Splash (pinned near 60 fps even
// with unchanged content) on the unmanaged 60 Hz baseline.
type Fig2Result struct {
	Traces []Fig2Trace
}

// Fig2 runs the experiment.
func Fig2(o Options) (*Fig2Result, error) {
	o.applyDefaults()
	res := &Fig2Result{}
	for _, name := range []string{"Facebook", "Jelly Splash"} {
		p, err := catalogApp(name)
		if err != nil {
			return nil, err
		}
		_, traces, err := runApp(o, p, ccdem.GovernorOff)
		if err != nil {
			return nil, err
		}
		sc, err := appScript(o, name, o.Duration)
		if err != nil {
			return nil, err
		}
		var touches []sim.Time
		for _, g := range sc.Gestures {
			touches = append(touches, g.Start)
		}
		res.Traces = append(res.Traces, Fig2Trace{
			App:       name,
			FrameRate: traces.Frame.Resample(sim.Second, o.Duration),
			Content:   traces.Content.Resample(sim.Second, o.Duration),
			RefreshHz: 60,
			Touches:   touches,
		})
	}
	return res, nil
}

// gestureMarks renders a per-second touch-activity row.
func gestureMarks(touches []sim.Time, seconds int) string {
	marks := make([]byte, seconds)
	for i := range marks {
		marks[i] = ' '
	}
	for _, t := range touches {
		if s := int(t / sim.Second); s >= 0 && s < seconds {
			marks[s] = '^'
		}
	}
	return string(marks)
}

// String renders the traces as sparkline charts plus summary rows.
func (r *Fig2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: frame rate vs fixed 60 Hz refresh (baseline)\n")
	for _, tr := range r.Traces {
		n := tr.FrameRate.Len()
		sb.WriteString(fmt.Sprintf("\n%s (refresh fixed at %d Hz)\n", tr.App, tr.RefreshHz))
		sb.WriteString(fmt.Sprintf("  frame rate   [0..60] %s\n", trace.Sparkline(tr.FrameRate.Values(), n)))
		sb.WriteString(fmt.Sprintf("  content rate [0..60] %s\n", trace.Sparkline(tr.Content.Values(), n)))
		sb.WriteString(fmt.Sprintf("  user input           %s\n", gestureMarks(tr.Touches, n)))
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "  mean frame rate\t%.1f fps\n", tr.FrameRate.Mean())
			fmt.Fprintf(w, "  mean content rate\t%.1f fps\n", tr.Content.Mean())
			fmt.Fprintf(w, "  peak frame rate\t%.1f fps\n", tr.FrameRate.Max())
			fmt.Fprintf(w, "  gestures\t%d\n", len(tr.Touches))
		}))
	}
	return sb.String()
}
