package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/trace"
)

// Fig3Row is one application's bar in Figure 3: the meaningful (content)
// and redundant frame rates measured on the unmanaged 60 Hz baseline.
type Fig3Row struct {
	App           string
	Cat           app.Category
	FrameRate     float64 // total frame rate (fps)
	MeaningfulFPS float64 // content rate (fps)
	RedundantFPS  float64 // FrameRate − MeaningfulFPS
}

// Fig3Result reproduces Figure 3: the redundancy study over all 30
// commercial applications (§2.2) — per-app meaningful vs redundant frame
// rates (panels a/b), frame-rate CDFs (panel c context) and redundant
// rates (panel d).
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 runs the experiment, one baseline run per catalog app (apps run
// concurrently up to Options.Parallelism).
func Fig3(o Options) (*Fig3Result, error) {
	o.applyDefaults()
	res := &Fig3Result{}
	var mu sync.Mutex
	err := forEachApp(o, func(p app.Params) error {
		st, _, err := runApp(o, p, ccdem.GovernorOff)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		res.Rows = append(res.Rows, Fig3Row{
			App:           p.Name,
			Cat:           p.Cat,
			FrameRate:     st.FrameRate,
			MeaningfulFPS: st.ContentRate,
			RedundantFPS:  st.RedundantRate,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	order := map[string]int{}
	for i, p := range app.Catalog() {
		order[p.Name] = i
	}
	sort.Slice(res.Rows, func(i, j int) bool { return order[res.Rows[i].App] < order[res.Rows[j].App] })
	return res, nil
}

// Category returns the rows for one category.
func (r *Fig3Result) Category(cat app.Category) []Fig3Row {
	var out []Fig3Row
	for _, row := range r.Rows {
		if row.Cat == cat {
			out = append(out, row)
		}
	}
	return out
}

// redundantValues extracts redundant fps for one category.
func (r *Fig3Result) redundantValues(cat app.Category) []float64 {
	var vs []float64
	for _, row := range r.Category(cat) {
		vs = append(vs, row.RedundantFPS)
	}
	return vs
}

// ShareAboveRedundant returns the fraction of a category's apps whose
// redundant rate exceeds fps — the paper's "80% of games have more than 20
// redundant frames per second".
func (r *Fig3Result) ShareAboveRedundant(cat app.Category, fps float64) float64 {
	rows := r.Category(cat)
	if len(rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range rows {
		if row.RedundantFPS > fps {
			n++
		}
	}
	return float64(n) / float64(len(rows))
}

// String renders the per-app table and category summaries.
func (r *Fig3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: meaningful vs redundant frame rate, 30 commercial apps (baseline 60 Hz)\n\n")
	for _, cat := range []app.Category{app.General, app.Game} {
		name := cat.String()
		sb.WriteString(fmt.Sprintf("%s applications:\n", strings.ToUpper(name[:1])+name[1:]))
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "  app\tframe rate\tmeaningful\tredundant\n")
			for _, row := range r.Category(cat) {
				fmt.Fprintf(w, "  %s\t%.1f fps\t%.1f fps\t%.1f fps\n",
					row.App, row.FrameRate, row.MeaningfulFPS, row.RedundantFPS)
			}
		}))
		vs := r.redundantValues(cat)
		sb.WriteString(fmt.Sprintf("  redundant fps: mean %.1f, p80 %.1f; share >20 fps: %.0f%%\n\n",
			trace.Mean(vs), trace.Percentile(vs, 80), 100*r.ShareAboveRedundant(cat, 20)))
	}
	return sb.String()
}
