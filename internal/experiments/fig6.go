package experiments

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"ccdem/internal/core"
	"ccdem/internal/framebuffer"
	"ccdem/internal/power"
	"ccdem/internal/sim"
	"ccdem/internal/surface"
	"ccdem/internal/wallpaper"
)

// Fig6Grid is one measurement point of Figure 6: a comparison-grid size
// with its metering error and cost.
type Fig6Grid struct {
	Label      string
	Cols, Rows int
	Pixels     int
	// ErrorRate is |measured − actual| / actual content frames, percent.
	ErrorRate float64
	// ModelDurationMS is the device-scale comparison time from the
	// calibrated cost model (the paper measures this on the S3's CPU).
	ModelDurationMS float64
	// FitsBudget reports whether the comparison completes within one
	// 60 Hz V-Sync interval (16.67 ms), the paper's feasibility bar.
	FitsBudget bool
}

// Fig6Result reproduces Figure 6: content-rate metering accuracy and cost
// versus the number of compared pixels, on the extreme small-dot live
// wallpaper (§4.1).
type Fig6Result struct {
	Grids []Fig6Grid
}

// fig6GridDims are the paper's grids for the 720×1280 panel.
var fig6GridDims = []struct {
	label      string
	cols, rows int
}{
	{"2K", 36, 64},
	{"4K", 48, 85},
	{"9K", 72, 128},
	{"36K", 144, 256},
	{"921K", 720, 1280},
}

// Fig6 runs the accuracy experiment: the dot wallpaper runs for the
// configured duration against each grid size; ground truth comes from the
// wallpaper itself (every latched frame changes pixels).
func Fig6(o Options) (*Fig6Result, error) {
	o.applyDefaults()
	cost := power.DefaultCompareCost()
	res := &Fig6Result{}
	for _, g := range fig6GridDims {
		truth, measured, err := fig6Run(o, g.cols, g.rows)
		if err != nil {
			return nil, err
		}
		errRate := 0.0
		if truth > 0 {
			errRate = 100 * math.Abs(float64(measured)-float64(truth)) / float64(truth)
		}
		px := g.cols * g.rows
		res.Grids = append(res.Grids, Fig6Grid{
			Label: g.label, Cols: g.cols, Rows: g.rows, Pixels: px,
			ErrorRate:       errRate,
			ModelDurationMS: cost.Duration(px).Milliseconds(),
			FitsBudget:      cost.FitsVSyncBudget(px, 60),
		})
	}
	return res, nil
}

// fig6Run runs the wallpaper against one explicit grid and returns the
// ground-truth and measured content-frame counts.
func fig6Run(o Options, cols, rows int) (truth, measured uint64, err error) {
	eng := sim.NewEngine()
	mgr := surface.NewManager(eng, screenW, screenH)
	wp, err := wallpaper.New(wallpaper.Config{Seed: o.Seed})
	if err != nil {
		return 0, 0, err
	}
	wp.Attach(eng, mgr)
	meter, err := core.NewMeter(core.MeterConfig{
		Grid:   framebuffer.NewGrid(screenW, screenH, cols, rows),
		Window: sim.Second,
		Cost:   power.DefaultCompareCost(),
	})
	if err != nil {
		return 0, 0, err
	}
	mgr.OnFrame(func(fi surface.FrameInfo) { meter.ObserveFrame(fi.T, mgr.Framebuffer()) })
	eng.Every(sim.Hz(60), sim.Hz(60), func() { mgr.VSync(eng.Now(), 60) })
	eng.RunUntil(o.Duration)
	_, content := meter.Totals()
	return wp.ContentFrames(), content, nil
}

// String renders the figure's table.
func (r *Fig6Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: metering accuracy and cost vs compared pixels (dot live wallpaper)\n\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "  grid\tpixels\terror rate\tmodel duration\tfits 16.67 ms budget\n")
		for _, g := range r.Grids {
			fmt.Fprintf(w, "  %s (%dx%d)\t%d\t%.1f%%\t%.2f ms\t%v\n",
				g.Label, g.Cols, g.Rows, g.Pixels, g.ErrorRate, g.ModelDurationMS, g.FitsBudget)
		}
	}))
	return sb.String()
}
