package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

// Fig7Trace is one panel of Figure 7: content-rate and refresh-rate traces
// for an application under a governed configuration.
type Fig7Trace struct {
	App     string
	Mode    ccdem.GovernorMode
	Content *trace.Series // measured content rate (fps)
	Actual  *trace.Series // app ground-truth content rate (fps)
	Refresh *trace.Series // refresh rate (Hz)
	// DroppedFPS is the mean rate of content updates lost to a refresh
	// rate below the actual content rate.
	DroppedFPS float64
	Quality    float64
}

// Fig7Result reproduces Figure 7: refresh-rate control validation on
// Facebook and Jelly Splash, with section-based control alone (panels a/c)
// and with touch boosting (panels b/d). The headline observation: without
// boosting the refresh rate lags touch-driven content bursts and frames
// drop; with boosting the refresh spikes to maximum on touches and drops
// largely disappear.
type Fig7Result struct {
	Traces []Fig7Trace
}

// Fig7 runs the experiment.
func Fig7(o Options) (*Fig7Result, error) {
	o.applyDefaults()
	res := &Fig7Result{}
	for _, name := range []string{"Facebook", "Jelly Splash"} {
		p, err := catalogApp(name)
		if err != nil {
			return nil, err
		}
		for _, mode := range []ccdem.GovernorMode{ccdem.GovernorSection, ccdem.GovernorSectionBoost} {
			st, traces, err := runApp(o, p, mode)
			if err != nil {
				return nil, err
			}
			res.Traces = append(res.Traces, Fig7Trace{
				App:        name,
				Mode:       mode,
				Content:    traces.Content.Resample(sim.Second, o.Duration),
				Actual:     traces.Intended.Resample(sim.Second, o.Duration),
				Refresh:    traces.Refresh.Resample(sim.Second, o.Duration),
				DroppedFPS: st.DroppedFPS,
				Quality:    st.DisplayQuality,
			})
		}
	}
	return res, nil
}

// String renders the trace panels.
func (r *Fig7Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 7: content rate and refresh rate under refresh control\n")
	for _, tr := range r.Traces {
		n := tr.Content.Len()
		sb.WriteString(fmt.Sprintf("\n%s — %s\n", tr.App, tr.Mode))
		sb.WriteString(fmt.Sprintf("  content rate [0..60] %s\n", trace.Sparkline(tr.Content.Values(), n)))
		sb.WriteString(fmt.Sprintf("  refresh rate [0..60] %s\n", trace.Sparkline(tr.Refresh.Values(), n)))
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "  mean refresh\t%.1f Hz\n", tr.Refresh.Mean())
			fmt.Fprintf(w, "  frames dropped\t%.2f fps\n", tr.DroppedFPS)
			fmt.Fprintf(w, "  display quality\t%.1f%%\n", 100*tr.Quality)
		}))
	}
	return sb.String()
}
