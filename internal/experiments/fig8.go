package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/trace"
)

// Fig8Trace is one panel of Figure 8: the power saved over time by a
// governed configuration relative to the baseline, on the identical input
// script.
type Fig8Trace struct {
	App   string
	Mode  ccdem.GovernorMode
	Saved *trace.Series // baseline power − governed power, per sample (mW)
	// MeanSavedMW and StdSavedMW summarize the series, matching the
	// paper's "about 150 mW (±12 mW)" style of reporting.
	MeanSavedMW float64
	StdSavedMW  float64
}

// Fig8Result reproduces Figure 8: power-save traces for Facebook and
// Jelly Splash under section-based control and with touch boosting added.
type Fig8Result struct {
	Traces []Fig8Trace
}

// Fig8 runs the experiment: for each app, a baseline run and the two
// governed runs replay the same script; saved power is the samplewise
// difference of the Monsoon-style traces.
func Fig8(o Options) (*Fig8Result, error) {
	o.applyDefaults()
	res := &Fig8Result{}
	for _, name := range []string{"Facebook", "Jelly Splash"} {
		p, err := catalogApp(name)
		if err != nil {
			return nil, err
		}
		_, baseTraces, err := runApp(o, p, ccdem.GovernorOff)
		if err != nil {
			return nil, err
		}
		base := baseTraces.Power
		for _, mode := range []ccdem.GovernorMode{ccdem.GovernorSection, ccdem.GovernorSectionBoost} {
			_, tr, err := runApp(o, p, mode)
			if err != nil {
				return nil, err
			}
			saved := trace.NewSeries(fmt.Sprintf("%s saved (%s)", name, mode))
			n := len(tr.Power)
			if len(base) < n {
				n = len(base)
			}
			for i := 0; i < n; i++ {
				saved.Add(tr.Power[i].T, base[i].MW-tr.Power[i].MW)
			}
			res.Traces = append(res.Traces, Fig8Trace{
				App:         name,
				Mode:        mode,
				Saved:       saved,
				MeanSavedMW: saved.Mean(),
				StdSavedMW:  trace.Std(saved.Values()),
			})
		}
	}
	return res, nil
}

// String renders the power-save panels.
func (r *Fig8Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 8: power saved vs baseline (same Monkey script)\n")
	for _, tr := range r.Traces {
		sb.WriteString(fmt.Sprintf("\n%s — %s\n", tr.App, tr.Mode))
		sb.WriteString(fmt.Sprintf("  saved power %s\n", trace.Sparkline(tr.Saved.Values(), 60)))
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "  mean saved\t%.0f mW (±%.0f mW)\n", tr.MeanSavedMW, tr.StdSavedMW)
		}))
	}
	return sb.String()
}
