package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/power"
)

// FrontierPoint is one scheme on the quality-power plane.
type FrontierPoint struct {
	Scheme  string
	SavedMW float64
	// Quality folds both quality dimensions into one number: display
	// quality (content fidelity, the paper's metric) × luminance
	// fidelity (the DVS literature's metric). Schemes that compromise
	// neither sit at 1.0.
	Quality float64

	DisplayQuality    float64
	LuminanceFidelity float64
}

// FrontierResult is the extension experiment drawing the paper's central
// related-work argument as data: DVS-class schemes (refs [3,4,15]) buy
// power with luminance, the content-centric scheme buys (more) power with
// (almost) nothing, and the two compose because they act on different
// terms of the panel power.
type FrontierResult struct {
	App    string
	Points []FrontierPoint
}

// Frontier measures the quality-power frontier on an OLED variant of the
// device for one representative high-redundancy application.
func Frontier(o Options) (*FrontierResult, error) {
	o.applyDefaults()
	const appName = "Jelly Splash"
	p, err := catalogApp(appName)
	if err != nil {
		return nil, err
	}
	oledBase := power.OLEDPanel{BaseMW: 50, PerHzMW: 3.0, MaxEmissionMW: 700}

	run := func(mode ccdem.GovernorMode, level power.DVSLevel) (ccdem.Stats, error) {
		params := power.DefaultParams()
		params.Panel = power.DVSPanel{Base: oledBase, Level: level}
		dev, err := ccdem.NewDevice(ccdem.Config{
			Width: screenW, Height: screenH,
			Governor:     mode,
			MeterSamples: o.MeterSamples,
			NaivePixels:  o.NaivePixels,
			NoPalette:    o.NoPalette,
			PowerParams:  &params,
		})
		if err != nil {
			return ccdem.Stats{}, err
		}
		if _, err := dev.InstallApp(p); err != nil {
			return ccdem.Stats{}, err
		}
		sc, err := appScript(o, appName, o.Duration)
		if err != nil {
			return ccdem.Stats{}, err
		}
		dev.PlayScript(sc)
		dev.Run(o.Duration)
		return dev.Stats(), nil
	}

	nominal := power.DVSLevel{VoltageScale: 1}
	base, err := run(ccdem.GovernorOff, nominal)
	if err != nil {
		return nil, err
	}

	res := &FrontierResult{App: appName}
	add := func(scheme string, st ccdem.Stats, level power.DVSLevel) {
		lum := level.LuminanceScale()
		res.Points = append(res.Points, FrontierPoint{
			Scheme:            scheme,
			SavedMW:           base.MeanPowerMW - st.MeanPowerMW,
			Quality:           st.DisplayQuality * lum,
			DisplayQuality:    st.DisplayQuality,
			LuminanceFidelity: lum,
		})
	}
	add("baseline", base, nominal)

	// DVS alone at each sub-nominal level (fixed 60 Hz refresh).
	for _, level := range power.StandardDVSLevels[1:] {
		st, err := run(ccdem.GovernorOff, level)
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("DVS %.2fV", level.VoltageScale), st, level)
	}

	// The paper's scheme alone.
	full, err := run(ccdem.GovernorSectionBoost, nominal)
	if err != nil {
		return nil, err
	}
	add("ccdem", full, nominal)

	// Composed: content-centric refresh control on a voltage-scaled panel.
	deepest := power.StandardDVSLevels[len(power.StandardDVSLevels)-1]
	both, err := run(ccdem.GovernorSectionBoost, deepest)
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("ccdem + DVS %.2fV", deepest.VoltageScale), both, deepest)
	return res, nil
}

// String renders the frontier table.
func (r *FrontierResult) String() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf(
		"Extension: quality-power frontier on OLED (%s)\n\n", r.App))
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "  scheme\tsaved\tdisplay quality\tluminance\tcombined quality\n")
		for _, pt := range r.Points {
			fmt.Fprintf(w, "  %s\t%.0f mW\t%.1f%%\t%.1f%%\t%.1f%%\n",
				pt.Scheme, pt.SavedMW, 100*pt.DisplayQuality,
				100*pt.LuminanceFidelity, 100*pt.Quality)
		}
	}))
	sb.WriteString("\n  DVS buys power with luminance; content-centric control buys more power\n")
	sb.WriteString("  with almost none, and the two compose (different terms of panel power).\n")
	return sb.String()
}
