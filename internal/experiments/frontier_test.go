package experiments

import (
	"strings"
	"testing"

	"ccdem/internal/sim"
)

func TestFrontierShape(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier campaign is slow")
	}
	r, err := Frontier(Options{Duration: 15 * sim.Second, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 7 { // baseline + 4 DVS + ccdem + combined
		t.Fatalf("points = %d, want 7", len(r.Points))
	}
	byScheme := map[string]FrontierPoint{}
	for _, p := range r.Points {
		byScheme[p.Scheme] = p
	}
	ccdemPt := byScheme["ccdem"]
	dvsDeep := byScheme["DVS 0.80V"]
	combined := byScheme["ccdem + DVS 0.80V"]

	// The paper's argument: the content-centric scheme dominates DVS —
	// more saving at higher quality.
	if ccdemPt.SavedMW <= dvsDeep.SavedMW {
		t.Errorf("ccdem saved %v ≤ deepest DVS %v", ccdemPt.SavedMW, dvsDeep.SavedMW)
	}
	if ccdemPt.Quality <= dvsDeep.Quality {
		t.Errorf("ccdem quality %v ≤ DVS quality %v", ccdemPt.Quality, dvsDeep.Quality)
	}
	if ccdemPt.LuminanceFidelity != 1 {
		t.Errorf("ccdem luminance fidelity = %v, want 1 (no dimming)", ccdemPt.LuminanceFidelity)
	}
	// DVS points trade monotonically.
	prevSaved := byScheme["baseline"].SavedMW
	for _, s := range []string{"DVS 0.95V", "DVS 0.90V", "DVS 0.85V", "DVS 0.80V"} {
		p, ok := byScheme[s]
		if !ok {
			t.Fatalf("missing point %s", s)
		}
		if p.SavedMW <= prevSaved {
			t.Errorf("%s saving %v not above previous %v", s, p.SavedMW, prevSaved)
		}
		if p.DisplayQuality < 0.99 {
			t.Errorf("%s display quality %v — DVS should not drop frames", s, p.DisplayQuality)
		}
		prevSaved = p.SavedMW
	}
	// Composition: the combined scheme saves more than either alone.
	if combined.SavedMW <= ccdemPt.SavedMW || combined.SavedMW <= dvsDeep.SavedMW {
		t.Errorf("combined saving %v does not exceed components %v/%v",
			combined.SavedMW, ccdemPt.SavedMW, dvsDeep.SavedMW)
	}
	if !strings.Contains(r.String(), "frontier") {
		t.Error("rendering missing title")
	}
}
