package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/core"
	"ccdem/internal/display"
)

// ScalingRow is one device profile's result in the panel-scaling
// extension experiment.
type ScalingRow struct {
	Profile    display.Profile
	App        string
	BaselineMW float64
	ManagedMW  float64
	SavedMW    float64
	SavedPct   float64
	Quality    float64
	// MeanRefreshHz under management — how deep the governor idles.
	MeanRefreshHz float64
	// Thresholds derived by the section rule for this panel.
	Thresholds []float64
}

// ScalingResult is the extension experiment running the unmodified scheme
// on panels beyond the paper's 2012 target: the section table re-derives
// itself from each panel's level menu (Eq. 1 is device-independent), and
// savings *grow* with peak refresh rate because the baseline waste grows.
type ScalingResult struct {
	Rows []ScalingRow
}

// Scaling measures two representative workloads per profile.
func Scaling(o Options) (*ScalingResult, error) {
	o.applyDefaults()
	res := &ScalingResult{}
	for _, profile := range display.Profiles() {
		for _, appName := range []string{"Jelly Splash", "Facebook"} {
			p, err := catalogApp(appName)
			if err != nil {
				return nil, err
			}
			run := func(mode ccdem.GovernorMode) (ccdem.Stats, error) {
				dev, err := ccdem.NewDevice(ccdem.Config{
					Width: profile.Width, Height: profile.Height,
					RefreshLevels: profile.Levels,
					FastUpswitch:  profile.FastUpswitch,
					Governor:      mode,
					MeterSamples:  o.MeterSamples,
					NaivePixels:   o.NaivePixels,
					NoPalette:     o.NoPalette,
				})
				if err != nil {
					return ccdem.Stats{}, err
				}
				if _, err := dev.InstallApp(p); err != nil {
					return ccdem.Stats{}, err
				}
				sc, err := appScript(o, appName+profile.Name, o.Duration)
				if err != nil {
					return ccdem.Stats{}, err
				}
				dev.PlayScript(sc)
				dev.Run(o.Duration)
				return dev.Stats(), nil
			}
			base, err := run(ccdem.GovernorOff)
			if err != nil {
				return nil, err
			}
			managed, err := run(ccdem.GovernorSectionBoost)
			if err != nil {
				return nil, err
			}
			table, err := core.NewSectionTable(profile.Levels)
			if err != nil {
				return nil, err
			}
			row := ScalingRow{
				Profile:       profile,
				App:           appName,
				BaselineMW:    base.MeanPowerMW,
				ManagedMW:     managed.MeanPowerMW,
				SavedMW:       base.MeanPowerMW - managed.MeanPowerMW,
				Quality:       managed.DisplayQuality,
				MeanRefreshHz: managed.MeanRefreshHz,
				Thresholds:    table.Thresholds(),
			}
			if base.MeanPowerMW > 0 {
				row.SavedPct = 100 * row.SavedMW / base.MeanPowerMW
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// RowsFor returns the rows of one profile.
func (r *ScalingResult) RowsFor(name string) []ScalingRow {
	var out []ScalingRow
	for _, row := range r.Rows {
		if row.Profile.Name == name {
			out = append(out, row)
		}
	}
	return out
}

// String renders the scaling table.
func (r *ScalingResult) String() string {
	var sb strings.Builder
	sb.WriteString("Extension: the scheme on newer panels (section table auto-derived per panel)\n\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "  panel\tapp\tbaseline\tmanaged\tsaved\tmean refresh\tquality\n")
		for _, row := range r.Rows {
			fmt.Fprintf(w, "  %s (%dHz)\t%s\t%.0f mW\t%.0f mW\t%.0f mW (%.0f%%)\t%.1f Hz\t%.1f%%\n",
				row.Profile.Name, row.Profile.MaxLevel(), row.App,
				row.BaselineMW, row.ManagedMW, row.SavedMW, row.SavedPct,
				row.MeanRefreshHz, 100*row.Quality)
		}
	}))
	sb.WriteString("\n  higher peak rates waste more at fixed refresh, so savings grow with the panel.\n")
	return sb.String()
}
