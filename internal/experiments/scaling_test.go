package experiments

import (
	"strings"
	"testing"

	"ccdem/internal/sim"
)

func TestScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling campaign is slow")
	}
	r, err := Scaling(Options{Duration: 15 * sim.Second, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 { // 3 profiles × 2 apps
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	jelly := map[string]ScalingRow{}
	for _, row := range r.Rows {
		if row.App == "Jelly Splash" {
			jelly[row.Profile.Name] = row
		}
		// Quality holds on every panel.
		if row.Quality < 0.85 {
			t.Errorf("%s/%s quality = %v", row.Profile.Name, row.App, row.Quality)
		}
		if row.SavedMW <= 0 {
			t.Errorf("%s/%s saved = %v, want positive", row.Profile.Name, row.App, row.SavedMW)
		}
	}
	// Savings on the redundant game grow with the panel's peak rate.
	s3 := jelly["galaxy-s3"].SavedMW
	ltpo := jelly["modern-ltpo"].SavedMW
	if ltpo <= s3 {
		t.Errorf("LTPO saving %v not above S3 saving %v", ltpo, s3)
	}
	// The section table auto-derived sensible thresholds for the LTPO
	// menu: first threshold is half the minimum level.
	thr := jelly["modern-ltpo"].Thresholds
	if len(thr) != 7 || thr[0] != 0.5 || thr[1] != 5.5 {
		t.Errorf("LTPO thresholds = %v", thr)
	}
	if !strings.Contains(r.String(), "modern-ltpo") {
		t.Error("rendering missing profile")
	}
}
