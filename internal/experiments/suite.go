package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/trace"
)

// AppRun is one application's paired measurements: the baseline and both
// governed configurations replaying the identical Monkey script.
type AppRun struct {
	App      string
	Cat      app.Category
	Baseline ccdem.Stats
	Section  ccdem.Stats
	Boost    ccdem.Stats
}

// SavedMW returns baseline power minus the given mode's power.
func (a AppRun) SavedMW(mode ccdem.GovernorMode) float64 {
	return a.Baseline.MeanPowerMW - a.stats(mode).MeanPowerMW
}

// SavedPct returns the saving as a percentage of baseline power.
func (a AppRun) SavedPct(mode ccdem.GovernorMode) float64 {
	if a.Baseline.MeanPowerMW == 0 {
		return 0
	}
	return 100 * a.SavedMW(mode) / a.Baseline.MeanPowerMW
}

func (a AppRun) stats(mode ccdem.GovernorMode) ccdem.Stats {
	switch mode {
	case ccdem.GovernorSection:
		return a.Section
	case ccdem.GovernorSectionBoost:
		return a.Boost
	default:
		return a.Baseline
	}
}

// Suite holds the 30-application measurement campaign behind Figures 9–11
// and Table 1. Running it once and deriving all three figures from it
// mirrors the paper's methodology (one set of paired runs, several views).
type Suite struct {
	Opts Options
	Runs []AppRun
}

// RunSuite executes the campaign: every catalog application, three
// configurations each, identical per-app scripts. Apps run concurrently
// up to Options.Parallelism; results are deterministic regardless.
func RunSuite(o Options) (*Suite, error) {
	o.applyDefaults()
	s := &Suite{Opts: o}
	var mu sync.Mutex
	err := forEachApp(o, func(p app.Params) error {
		base, err := runAppRepeated(o, p, ccdem.GovernorOff)
		if err != nil {
			return err
		}
		sect, err := runAppRepeated(o, p, ccdem.GovernorSection)
		if err != nil {
			return err
		}
		boost, err := runAppRepeated(o, p, ccdem.GovernorSectionBoost)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		s.Runs = append(s.Runs, AppRun{
			App: p.Name, Cat: p.Cat,
			Baseline: base, Section: sect, Boost: boost,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortRunsByCatalog(s.Runs)
	return s, nil
}

// sortRunsByCatalog restores catalog order after a concurrent campaign.
func sortRunsByCatalog(runs []AppRun) {
	order := map[string]int{}
	for i, p := range app.Catalog() {
		order[p.Name] = i
	}
	sort.Slice(runs, func(i, j int) bool { return order[runs[i].App] < order[runs[j].App] })
}

// Category filters runs by category.
func (s *Suite) Category(cat app.Category) []AppRun {
	var out []AppRun
	for _, r := range s.Runs {
		if r.Cat == cat {
			out = append(out, r)
		}
	}
	return out
}

// Fig9 renders Figure 9 from the suite: per-application average power
// saving under section control and with touch boosting.
func (s *Suite) Fig9() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: power saving vs baseline, per application\n\n")
	for _, cat := range []app.Category{app.General, app.Game} {
		runs := s.Category(cat)
		sb.WriteString(fmt.Sprintf("%s applications:\n", titleCase(cat.String())))
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "  app\tbaseline\tsection saved\t+boost saved\n")
			for _, r := range runs {
				fmt.Fprintf(w, "  %s\t%.0f mW\t%.0f mW\t%.0f mW\n",
					r.App, r.Baseline.MeanPowerMW,
					r.SavedMW(ccdem.GovernorSection), r.SavedMW(ccdem.GovernorSectionBoost))
			}
		}))
		var sect, boost []float64
		for _, r := range runs {
			sect = append(sect, r.SavedMW(ccdem.GovernorSection))
			boost = append(boost, r.SavedMW(ccdem.GovernorSectionBoost))
		}
		sb.WriteString(fmt.Sprintf("  mean saved: section %.0f mW, +boost %.0f mW; max section %.0f mW; p20 section %.0f mW\n\n",
			trace.Mean(sect), trace.Mean(boost), trace.Percentile(sect, 100), trace.Percentile(sect, 20)))
	}
	return sb.String()
}

// Fig10 renders Figure 10: estimated (displayed) content rate under each
// configuration against the application's actual content rate.
func (s *Suite) Fig10() string {
	var sb strings.Builder
	sb.WriteString("Figure 10: estimated vs actual content rate, per application\n\n")
	for _, cat := range []app.Category{app.General, app.Game} {
		sb.WriteString(fmt.Sprintf("%s applications:\n", titleCase(cat.String())))
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "  app\tactual\tsection\t+boost\tsection dropped\t+boost dropped\n")
			for _, r := range s.Category(cat) {
				fmt.Fprintf(w, "  %s\t%.1f fps\t%.1f fps\t%.1f fps\t%.1f fps\t%.1f fps\n",
					r.App, r.Baseline.IntendedRate,
					r.Section.ContentRate, r.Boost.ContentRate,
					r.Section.DroppedFPS, r.Boost.DroppedFPS)
			}
		}))
		var sectDrop, boostDrop []float64
		for _, r := range s.Category(cat) {
			sectDrop = append(sectDrop, r.Section.DroppedFPS)
			boostDrop = append(boostDrop, r.Boost.DroppedFPS)
		}
		sb.WriteString(fmt.Sprintf("  frames dropped p80: section %.1f fps, +boost %.1f fps\n\n",
			trace.Percentile(sectDrop, 80), trace.Percentile(boostDrop, 80)))
	}
	return sb.String()
}

// Fig11 renders Figure 11: display quality (estimated/actual content rate)
// per application.
func (s *Suite) Fig11() string {
	var sb strings.Builder
	sb.WriteString("Figure 11: display quality, per application\n\n")
	for _, cat := range []app.Category{app.General, app.Game} {
		sb.WriteString(fmt.Sprintf("%s applications:\n", titleCase(cat.String())))
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintf(w, "  app\tsection\t+boost\n")
			for _, r := range s.Category(cat) {
				fmt.Fprintf(w, "  %s\t%.1f%%\t%.1f%%\n",
					r.App, 100*r.Section.DisplayQuality, 100*r.Boost.DisplayQuality)
			}
		}))
		var sect, boost []float64
		for _, r := range s.Category(cat) {
			sect = append(sect, 100*r.Section.DisplayQuality)
			boost = append(boost, 100*r.Boost.DisplayQuality)
		}
		sb.WriteString(fmt.Sprintf("  quality p20 (i.e. maintained for 80%% of apps): section %.1f%%, +boost %.1f%%\n\n",
			trace.Percentile(sect, 20), trace.Percentile(boost, 20)))
	}
	return sb.String()
}

// Table1Row is one cell-group of Table 1.
type Table1Row struct {
	Cat         app.Category
	Mode        ccdem.GovernorMode
	SavedPct    float64 // mean saved power, % of baseline
	SavedPctStd float64
	QualityPct  float64 // mean display quality, %
	QualityStd  float64
}

// Table1 computes the paper's summary table from the suite.
func (s *Suite) Table1() []Table1Row {
	var rows []Table1Row
	for _, cat := range []app.Category{app.General, app.Game} {
		for _, mode := range []ccdem.GovernorMode{ccdem.GovernorSection, ccdem.GovernorSectionBoost} {
			var saved, quality []float64
			for _, r := range s.Category(cat) {
				saved = append(saved, r.SavedPct(mode))
				quality = append(quality, 100*r.stats(mode).DisplayQuality)
			}
			rows = append(rows, Table1Row{
				Cat: cat, Mode: mode,
				SavedPct: trace.Mean(saved), SavedPctStd: trace.Std(saved),
				QualityPct: trace.Mean(quality), QualityStd: trace.Std(quality),
			})
		}
	}
	return rows
}

// Table1String renders Table 1.
func (s *Suite) Table1String() string {
	var sb strings.Builder
	sb.WriteString("Table 1: power-saving effect and display quality\n\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "  application type\tmethod\tsaved power (%%)\tdisplay quality (%%)\n")
		for _, r := range s.Table1() {
			method := "Section-based control"
			if r.Mode == ccdem.GovernorSectionBoost {
				method = "+Touch boosting"
			}
			fmt.Fprintf(w, "  %s\t%s\t%.2f (±%.2f)\t%.1f (±%.1f)\n",
				titleCase(r.Cat.String()), method, r.SavedPct, r.SavedPctStd, r.QualityPct, r.QualityStd)
		}
	}))
	return sb.String()
}

// OverallSummary reports the conclusion's headline numbers: mean saved
// power (mW) and mean display quality (%) across all 30 applications with
// the full system.
func (s *Suite) OverallSummary() (savedMW, qualityPct float64) {
	var saved, quality []float64
	for _, r := range s.Runs {
		saved = append(saved, r.SavedMW(ccdem.GovernorSectionBoost))
		quality = append(quality, 100*r.Boost.DisplayQuality)
	}
	return trace.Mean(saved), trace.Mean(quality)
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
