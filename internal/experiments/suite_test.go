package experiments

import (
	"strings"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/sim"
)

// The suite is the heaviest experiment; one short campaign backs several
// assertions.
func runShortSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := RunSuite(Options{Duration: 15 * sim.Second, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("suite campaign is slow")
	}
	s := runShortSuite(t)
	if len(s.Runs) != 30 {
		t.Fatalf("runs = %d, want 30", len(s.Runs))
	}

	t.Run("Fig9PowerSaving", func(t *testing.T) {
		var generalSaved, gameSaved []float64
		for _, r := range s.Category(app.General) {
			generalSaved = append(generalSaved, r.SavedMW(ccdem.GovernorSection))
		}
		for _, r := range s.Category(app.Game) {
			gameSaved = append(gameSaved, r.SavedMW(ccdem.GovernorSection))
		}
		mean := func(vs []float64) float64 {
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			return sum / float64(len(vs))
		}
		mg, mgame := mean(generalSaved), mean(gameSaved)
		// Paper: ≈120 mW general, ≈290 mW games. Shape: games ≫ general,
		// both positive, same order of magnitude as the paper.
		if mgame <= mg {
			t.Errorf("games saved %v ≤ general saved %v", mgame, mg)
		}
		if mg < 40 || mg > 300 {
			t.Errorf("general mean saved = %v mW, want paper-scale ≈120", mg)
		}
		if mgame < 150 || mgame > 500 {
			t.Errorf("games mean saved = %v mW, want paper-scale ≈290", mgame)
		}
		// No app should burn meaningfully more power under the governor.
		// Apps whose content pins the panel at 60 Hz (Asphalt 8) gain
		// nothing and pay only the ~10-15 mW metering overhead.
		for _, r := range s.Runs {
			if r.SavedMW(ccdem.GovernorSection) < -25 {
				t.Errorf("%s: section cost power (%v mW)", r.App, -r.SavedMW(ccdem.GovernorSection))
			}
		}
	})

	t.Run("Fig10ContentRate", func(t *testing.T) {
		for _, r := range s.Runs {
			// With boost, estimated content rate ≈ actual.
			if r.Boost.DisplayQuality < 0.80 {
				t.Errorf("%s: boost quality %.2f below 0.80", r.App, r.Boost.DisplayQuality)
			}
			// Section-only never exceeds boost quality by a wide margin.
			if r.Section.DisplayQuality > r.Boost.DisplayQuality+0.1 {
				t.Errorf("%s: section quality %v far above boost %v",
					r.App, r.Section.DisplayQuality, r.Boost.DisplayQuality)
			}
		}
	})

	t.Run("Fig11Quality", func(t *testing.T) {
		// Mean quality with boost exceeds section-only for both categories.
		for _, cat := range []app.Category{app.General, app.Game} {
			var sect, boost float64
			runs := s.Category(cat)
			for _, r := range runs {
				sect += r.Section.DisplayQuality
				boost += r.Boost.DisplayQuality
			}
			sect /= float64(len(runs))
			boost /= float64(len(runs))
			if boost < sect {
				t.Errorf("%s: boost quality %v below section %v", cat, boost, sect)
			}
			if boost < 0.9 {
				t.Errorf("%s: boost mean quality %v below 0.9", cat, boost)
			}
		}
	})

	t.Run("Table1", func(t *testing.T) {
		rows := s.Table1()
		if len(rows) != 4 {
			t.Fatalf("table rows = %d, want 4", len(rows))
		}
		for _, r := range rows {
			if r.SavedPct <= 0 || r.SavedPct > 60 {
				t.Errorf("%s/%s saved%% = %v out of plausible range", r.Cat, r.Mode, r.SavedPct)
			}
			if r.QualityPct < 50 || r.QualityPct > 100.5 {
				t.Errorf("%s/%s quality%% = %v", r.Cat, r.Mode, r.QualityPct)
			}
		}
		// Boost trades a little power for quality.
		byKey := map[string]Table1Row{}
		for _, r := range rows {
			byKey[r.Cat.String()+"/"+r.Mode.String()] = r
		}
		for _, cat := range []string{"general", "game"} {
			sect := byKey[cat+"/section"]
			boost := byKey[cat+"/section+boost"]
			if boost.QualityPct < sect.QualityPct {
				t.Errorf("%s: boost quality %v below section %v", cat, boost.QualityPct, sect.QualityPct)
			}
			if boost.SavedPct > sect.SavedPct+1 {
				t.Errorf("%s: boost saved %v meaningfully above section %v", cat, boost.SavedPct, sect.SavedPct)
			}
		}
		out := s.Table1String()
		if !strings.Contains(out, "Touch boosting") {
			t.Error("Table1String missing method label")
		}
	})

	t.Run("Renderings", func(t *testing.T) {
		for name, out := range map[string]string{
			"fig9": s.Fig9(), "fig10": s.Fig10(), "fig11": s.Fig11(),
		} {
			if !strings.Contains(out, "Jelly Splash") || !strings.Contains(out, "Facebook") {
				t.Errorf("%s rendering missing app rows", name)
			}
		}
		saved, quality := s.OverallSummary()
		if saved <= 0 || quality < 80 {
			t.Errorf("overall summary = %v mW / %v%%", saved, quality)
		}
	})
}
