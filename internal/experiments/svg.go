package experiments

import (
	"fmt"
	"io"

	"ccdem"
	"ccdem/internal/svgplot"
	"ccdem/internal/trace"
)

// SVG renderers for the figures: line charts for traces, grouped/stacked
// bars for per-app results — the browser-openable counterparts of the
// paper's plots.

func seriesToXY(s *trace.Series) svgplot.Series {
	out := svgplot.Series{}
	for _, p := range s.Points {
		out.X = append(out.X, p.T.Seconds())
		out.Y = append(out.Y, p.V)
	}
	return out
}

// WriteSVG renders Figure 2 as one chart per app (frame rate + content
// rate), concatenating is not valid SVG, so both apps go into one chart
// with four series.
func (r *Fig2Result) WriteSVG(w io.Writer) error {
	chart := svgplot.LineChart{
		Title:  "Figure 2: frame rate vs fixed 60 Hz refresh",
		XLabel: "time (s)",
		YLabel: "fps",
		YMax:   62,
	}
	for _, tr := range r.Traces {
		fr := seriesToXY(tr.FrameRate)
		fr.Name = tr.App + " frame rate"
		ct := seriesToXY(tr.Content)
		ct.Name = tr.App + " content"
		chart.Series = append(chart.Series, fr, ct)
	}
	return chart.WriteSVG(w)
}

// WriteSVG renders Figure 3 as a stacked bar chart: meaningful +
// redundant fps per application.
func (r *Fig3Result) WriteSVG(w io.Writer) error {
	chart := svgplot.BarChart{
		Title:   "Figure 3: meaningful vs redundant frame rate (baseline 60 Hz)",
		YLabel:  "fps",
		Series:  []string{"meaningful", "redundant"},
		Stacked: true,
		YMax:    62,
	}
	for _, row := range r.Rows {
		chart.Groups = append(chart.Groups, svgplot.BarGroup{
			Label:  row.App,
			Values: []float64{row.MeaningfulFPS, row.RedundantFPS},
		})
	}
	return chart.WriteSVG(w)
}

// WriteSVG renders Figure 6 as a bar chart of error rate per grid.
func (r *Fig6Result) WriteSVG(w io.Writer) error {
	chart := svgplot.BarChart{
		Title:  "Figure 6: metering error vs compared pixels",
		YLabel: "error (%)",
		Series: []string{"error rate"},
	}
	for _, g := range r.Grids {
		chart.Groups = append(chart.Groups, svgplot.BarGroup{
			Label:  fmt.Sprintf("%s (%dx%d)", g.Label, g.Cols, g.Rows),
			Values: []float64{g.ErrorRate},
		})
	}
	return chart.WriteSVG(w)
}

// WriteSVG renders one Figure 7 panel (pass the index into Traces).
func (r *Fig7Result) WriteSVG(w io.Writer, panel int) error {
	if panel < 0 || panel >= len(r.Traces) {
		return fmt.Errorf("experiments: figure 7 panel %d of %d", panel, len(r.Traces))
	}
	tr := r.Traces[panel]
	content := seriesToXY(tr.Content)
	content.Name = "content rate (fps)"
	refresh := seriesToXY(tr.Refresh)
	refresh.Name = "refresh rate (Hz)"
	chart := svgplot.LineChart{
		Title:  fmt.Sprintf("Figure 7: %s — %s", tr.App, tr.Mode),
		XLabel: "time (s)",
		YLabel: "fps / Hz",
		YMax:   62,
		Series: []svgplot.Series{content, refresh},
	}
	return chart.WriteSVG(w)
}

// WriteSVG renders Figure 8's saved-power traces in one chart.
func (r *Fig8Result) WriteSVG(w io.Writer) error {
	chart := svgplot.LineChart{
		Title:  "Figure 8: power saved vs baseline",
		XLabel: "time (s)",
		YLabel: "saved (mW)",
	}
	for _, tr := range r.Traces {
		s := seriesToXY(tr.Saved)
		s.Name = fmt.Sprintf("%s (%s)", tr.App, tr.Mode)
		chart.Series = append(chart.Series, s)
	}
	return chart.WriteSVG(w)
}

// WriteFig9SVG renders the per-app power savings as grouped bars.
func (s *Suite) WriteFig9SVG(w io.Writer) error {
	chart := svgplot.BarChart{
		Title:  "Figure 9: power saving vs baseline",
		YLabel: "saved (mW)",
		Series: []string{"section", "+boost"},
	}
	for _, r := range s.Runs {
		chart.Groups = append(chart.Groups, svgplot.BarGroup{
			Label: r.App,
			Values: []float64{
				r.SavedMW(ccdem.GovernorSection),
				r.SavedMW(ccdem.GovernorSectionBoost),
			},
		})
	}
	return chart.WriteSVG(w)
}

// WriteFig11SVG renders per-app display quality as grouped bars.
func (s *Suite) WriteFig11SVG(w io.Writer) error {
	chart := svgplot.BarChart{
		Title:  "Figure 11: display quality",
		YLabel: "quality (%)",
		YMax:   105,
		Series: []string{"section", "+boost"},
	}
	for _, r := range s.Runs {
		chart.Groups = append(chart.Groups, svgplot.BarGroup{
			Label: r.App,
			Values: []float64{
				100 * r.Section.DisplayQuality,
				100 * r.Boost.DisplayQuality,
			},
		})
	}
	return chart.WriteSVG(w)
}
