package experiments

import (
	"bytes"
	"encoding/xml"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

func assertXML(t *testing.T, out []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("not well-formed XML: %v", err)
		}
	}
}

func tinySeries(name string, vals ...float64) *trace.Series {
	s := trace.NewSeries(name)
	for i, v := range vals {
		s.Add(sim.Time(i)*sim.Second, v)
	}
	return s
}

func TestFigureSVGRenderers(t *testing.T) {
	var buf bytes.Buffer

	fig2 := &Fig2Result{Traces: []Fig2Trace{{
		App:       "Facebook",
		FrameRate: tinySeries("f", 1, 5, 60),
		Content:   tinySeries("c", 1, 4, 10),
	}}}
	if err := fig2.WriteSVG(&buf); err != nil {
		t.Fatalf("fig2: %v", err)
	}
	assertXML(t, buf.Bytes())

	buf.Reset()
	fig3 := &Fig3Result{Rows: []Fig3Row{
		{App: "A", Cat: app.General, MeaningfulFPS: 5, RedundantFPS: 20},
	}}
	if err := fig3.WriteSVG(&buf); err != nil {
		t.Fatalf("fig3: %v", err)
	}
	assertXML(t, buf.Bytes())

	buf.Reset()
	fig6 := &Fig6Result{Grids: []Fig6Grid{{Label: "2K", Cols: 36, Rows: 64, ErrorRate: 50}}}
	if err := fig6.WriteSVG(&buf); err != nil {
		t.Fatalf("fig6: %v", err)
	}
	assertXML(t, buf.Bytes())

	buf.Reset()
	fig7 := &Fig7Result{Traces: []Fig7Trace{{
		App: "Facebook", Mode: ccdem.GovernorSection,
		Content: tinySeries("c", 1, 2), Refresh: tinySeries("r", 60, 20),
	}}}
	if err := fig7.WriteSVG(&buf, 0); err != nil {
		t.Fatalf("fig7: %v", err)
	}
	assertXML(t, buf.Bytes())
	if err := fig7.WriteSVG(&buf, 5); err == nil {
		t.Error("out-of-range panel accepted")
	}

	buf.Reset()
	fig8 := &Fig8Result{Traces: []Fig8Trace{{
		App: "Facebook", Mode: ccdem.GovernorSection, Saved: tinySeries("s", 100, 150),
	}}}
	if err := fig8.WriteSVG(&buf); err != nil {
		t.Fatalf("fig8: %v", err)
	}
	assertXML(t, buf.Bytes())

	buf.Reset()
	suite := &Suite{Runs: []AppRun{{
		App: "X", Cat: app.Game,
		Baseline: ccdem.Stats{MeanPowerMW: 1000},
		Section:  ccdem.Stats{MeanPowerMW: 800, DisplayQuality: 0.9},
		Boost:    ccdem.Stats{MeanPowerMW: 850, DisplayQuality: 0.99},
	}}}
	if err := suite.WriteFig9SVG(&buf); err != nil {
		t.Fatalf("fig9: %v", err)
	}
	assertXML(t, buf.Bytes())
	buf.Reset()
	if err := suite.WriteFig11SVG(&buf); err != nil {
		t.Fatalf("fig11: %v", err)
	}
	assertXML(t, buf.Bytes())
}
