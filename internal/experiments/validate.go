package experiments

import (
	"fmt"
	"strings"

	"ccdem"
	"ccdem/internal/app"
)

// Check is one qualitative-shape assertion from the paper, with the
// measured evidence.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// ValidationReport is the outcome of Validate: the reproduction's
// qualitative claims checked against a fresh (short) campaign. Passing
// validation means the "who wins, by roughly what factor" structure of
// the paper holds on this build — the cheap regression gate for anyone
// modifying the models.
type ValidationReport struct {
	Checks []Check
}

// Pass reports whether every check passed.
func (r *ValidationReport) Pass() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// String renders the report.
func (r *ValidationReport) String() string {
	var sb strings.Builder
	sb.WriteString("Validation: paper shape checks\n\n")
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		sb.WriteString(fmt.Sprintf("  [%s] %-44s %s\n", mark, c.Name, c.Detail))
	}
	if r.Pass() {
		sb.WriteString("\nall checks passed\n")
	} else {
		sb.WriteString("\nVALIDATION FAILED\n")
	}
	return sb.String()
}

func (r *ValidationReport) add(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// Validate runs the shape checks. The supplied duration bounds each run;
// 30–60 s is plenty.
func Validate(o Options) (*ValidationReport, error) {
	o.applyDefaults()
	r := &ValidationReport{}

	// 1–2: the Figure 2 contrast.
	fig2, err := Fig2(o)
	if err != nil {
		return nil, err
	}
	var fbRate, jsRate, jsContent float64
	for _, tr := range fig2.Traces {
		switch tr.App {
		case "Facebook":
			fbRate = tr.FrameRate.Mean()
		case "Jelly Splash":
			jsRate = tr.FrameRate.Mean()
			jsContent = tr.Content.Mean()
		}
	}
	r.add("general app mostly idle (Fig 2a)", fbRate < 20,
		"Facebook frame rate %.1f fps", fbRate)
	r.add("game pinned near 60 fps (Fig 2b)", jsRate > 50 && jsContent < jsRate/2,
		"Jelly Splash %.1f fps frames, %.1f fps content", jsRate, jsContent)

	// 3: Figure 3 redundancy taxonomy.
	fig3, err := Fig3(o)
	if err != nil {
		return nil, err
	}
	gameShare := fig3.ShareAboveRedundant(app.Game, 20)
	r.add("most games >20 redundant fps (Fig 3d)", gameShare >= 0.6,
		"share %.0f%%", 100*gameShare)
	allGamesFast := true
	for _, row := range fig3.Category(app.Game) {
		if row.FrameRate < 30 {
			allGamesFast = false
		}
	}
	r.add("all games update >30 fps (Fig 3b)", allGamesFast, "")

	// 4–5: Figure 6 metering accuracy and cost.
	fig6, err := Fig6(o)
	if err != nil {
		return nil, err
	}
	g := fig6.Grids
	r.add("metering error falls with grid size (Fig 6)",
		g[0].ErrorRate > g[2].ErrorRate && g[3].ErrorRate <= 1 && g[4].ErrorRate == 0,
		"2K %.1f%% → 9K %.1f%% → 36K %.1f%% → full %.1f%%",
		g[0].ErrorRate, g[2].ErrorRate, g[3].ErrorRate, g[4].ErrorRate)
	budgetOK := g[4].FitsBudget == false
	for _, gr := range g[:4] {
		if !gr.FitsBudget {
			budgetOK = false
		}
	}
	r.add("only full-frame compare misses V-Sync budget (Fig 6)", budgetOK, "")

	// 6–8: control behaviour and power on the two trace apps.
	fig7, err := Fig7(o)
	if err != nil {
		return nil, err
	}
	var fbSectDrop, fbBoostDrop, fbSectQ, fbBoostQ float64
	for _, tr := range fig7.Traces {
		if tr.App != "Facebook" {
			continue
		}
		if tr.Mode == ccdem.GovernorSection {
			fbSectDrop, fbSectQ = tr.DroppedFPS, tr.Quality
		} else {
			fbBoostDrop, fbBoostQ = tr.DroppedFPS, tr.Quality
		}
	}
	r.add("boost cuts frame drops (Fig 7)", fbBoostDrop < fbSectDrop,
		"section %.2f fps → boost %.2f fps", fbSectDrop, fbBoostDrop)
	r.add("boost restores quality >=90% (Fig 11)", fbBoostQ >= 0.90 && fbBoostQ > fbSectQ,
		"section %.1f%% → boost %.1f%%", 100*fbSectQ, 100*fbBoostQ)

	fig8, err := Fig8(o)
	if err != nil {
		return nil, err
	}
	var fbSaved, jsSaved, jsBoostSaved float64
	for _, tr := range fig8.Traces {
		switch {
		case tr.App == "Facebook" && tr.Mode == ccdem.GovernorSection:
			fbSaved = tr.MeanSavedMW
		case tr.App == "Jelly Splash" && tr.Mode == ccdem.GovernorSection:
			jsSaved = tr.MeanSavedMW
		case tr.App == "Jelly Splash" && tr.Mode == ccdem.GovernorSectionBoost:
			jsBoostSaved = tr.MeanSavedMW
		}
	}
	r.add("redundant game saves ≫ idle app (Fig 8)", jsSaved > fbSaved && fbSaved > 50,
		"Jelly Splash %.0f mW vs Facebook %.0f mW", jsSaved, fbSaved)
	r.add("boost costs a little of the saving (Table 1)", jsBoostSaved <= jsSaved && jsBoostSaved > 0.5*jsSaved,
		"section %.0f mW → boost %.0f mW", jsSaved, jsBoostSaved)

	// 9: refresh control beats frame-rate adaptation (extension).
	e3Saved, ccSaved, err := validateE3(o)
	if err != nil {
		return nil, err
	}
	r.add("refresh control beats frame-rate adaptation (ext)", ccSaved > e3Saved,
		"ccdem %.0f mW vs E3 %.0f mW on Jelly Splash", ccSaved, e3Saved)
	return r, nil
}

// validateE3 measures the Jelly Splash scheme gap.
func validateE3(o Options) (e3Saved, ccSaved float64, err error) {
	p, err := catalogApp("Jelly Splash")
	if err != nil {
		return 0, 0, err
	}
	base, _, err := runApp(o, p, ccdem.GovernorOff)
	if err != nil {
		return 0, 0, err
	}
	e3, _, err := runApp(o, p, ccdem.GovernorE3)
	if err != nil {
		return 0, 0, err
	}
	full, _, err := runApp(o, p, ccdem.GovernorSectionBoost)
	if err != nil {
		return 0, 0, err
	}
	return base.MeanPowerMW - e3.MeanPowerMW, base.MeanPowerMW - full.MeanPowerMW, nil
}
