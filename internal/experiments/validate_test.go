package experiments

import (
	"strings"
	"testing"

	"ccdem/internal/sim"
)

func TestValidatePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("validation campaign is slow")
	}
	r, err := Validate(Options{Duration: 25 * sim.Second, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Checks) < 10 {
		t.Fatalf("checks = %d, want ≥10", len(r.Checks))
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("check failed: %s (%s)", c.Name, c.Detail)
		}
	}
	out := r.String()
	if !strings.Contains(out, "all checks passed") {
		t.Errorf("rendering: %s", out)
	}
}

func TestValidationReportFailureRendering(t *testing.T) {
	r := &ValidationReport{}
	r.add("good", true, "fine")
	r.add("bad", false, "broken %d", 7)
	if r.Pass() {
		t.Error("report with failure passed")
	}
	out := r.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "broken 7") {
		t.Errorf("rendering: %s", out)
	}
	if !strings.Contains(out, "VALIDATION FAILED") {
		t.Error("missing failure banner")
	}
}
