// Package fault provides deterministic fault injection for the simulated
// device: panel rate-switch failures and delayed application (the flaky
// kernel-patch mechanism the paper's authors worked around), meter faults
// (corrupted grid samples, a stale double buffer), dropped or delayed
// touch events, and application render stalls.
//
// Every decision is a pure function of (seed, fault class, sim time) —
// an Injector keeps no RNG state that advances per query — so the fault
// stream is identical whether the governor queries it once or retries ten
// times, identical between a hardened and an unhardened run of the same
// device, and bit-identical across fleet runs at any worker count. The
// per-device seed is derived from the fleet seed exactly like
// fleet.DeviceSeed, keeping the whole faulty fleet reproducible from one
// integer.
//
// All Injector methods are nil-safe: a nil *Injector injects nothing, so
// subsystems pay only a nil check when fault injection is disabled.
package fault

import (
	"fmt"

	"ccdem/internal/framebuffer"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// Class identifies a fault class, both for counters and for the Arg1 of
// FaultInjected decision events.
type Class int

// Fault classes.
const (
	// ClassPanelDrop is a rate-switch request the panel silently loses.
	ClassPanelDrop Class = iota
	// ClassPanelDelay is a rate-switch applied several V-Syncs late.
	ClassPanelDelay
	// ClassPanelStick is a window during which the panel refuses every
	// switch request (the kernel patch wedged).
	ClassPanelStick
	// ClassMeterCorrupt is a corrupted grid sample: one comparison pixel
	// flips, turning a redundant frame into spurious content.
	ClassMeterCorrupt
	// ClassMeterFreeze is a stale double buffer: the meter samples old
	// framebuffer content, so every frame classifies as redundant.
	ClassMeterFreeze
	// ClassTouchDrop is a touch event that never reaches its sinks.
	ClassTouchDrop
	// ClassTouchDelay is a touch event delivered late.
	ClassTouchDelay
	// ClassAppStall is a window during which the foreground app's UI
	// thread is blocked: no content advances, no frames are requested.
	ClassAppStall

	numClasses
)

// String implements fmt.Stringer; the names key per-class metrics.
func (c Class) String() string {
	switch c {
	case ClassPanelDrop:
		return "panel_drop"
	case ClassPanelDelay:
		return "panel_delay"
	case ClassPanelStick:
		return "panel_stick"
	case ClassMeterCorrupt:
		return "meter_corrupt"
	case ClassMeterFreeze:
		return "meter_freeze"
	case ClassTouchDrop:
		return "touch_drop"
	case ClassTouchDelay:
		return "touch_delay"
	case ClassAppStall:
		return "app_stall"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classes returns every fault class in declaration order (for iterating
// counters deterministically).
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Plan describes fault rates and windows. The zero value injects nothing.
// Probabilities are per opportunity (per switch request, per observed
// frame, per touch event); Every/For pairs describe recurring windows —
// within each period of length Every, one window of length For opens at a
// deterministically hashed offset, so windows neither align across fault
// classes nor across devices.
type Plan struct {
	// Panel faults.
	PanelDropProb       float64  `json:"panel_drop_prob"`
	PanelDelayProb      float64  `json:"panel_delay_prob"`
	PanelDelayMaxVsyncs int      `json:"panel_delay_max_vsyncs"`
	PanelStickEvery     sim.Time `json:"panel_stick_every"`
	PanelStickFor       sim.Time `json:"panel_stick_for"`

	// Meter faults.
	MeterCorruptProb float64  `json:"meter_corrupt_prob"`
	MeterFreezeEvery sim.Time `json:"meter_freeze_every"`
	MeterFreezeFor   sim.Time `json:"meter_freeze_for"`

	// Touch faults.
	TouchDropProb  float64  `json:"touch_drop_prob"`
	TouchDelayProb float64  `json:"touch_delay_prob"`
	TouchDelayMax  sim.Time `json:"touch_delay_max"`

	// App faults.
	AppStallEvery sim.Time `json:"app_stall_every"`
	AppStallFor   sim.Time `json:"app_stall_for"`
}

// DefaultPlan is the chaos experiment's reference fault mix: frequent
// panel flakiness (the scheme's actuation path), periodic meter blindness
// (its sensing path), and background input/app noise. Window lengths are
// chosen so a hardened governor's detection latency keeps per-app display
// quality above the paper's 95% bar while an unhardened governor visibly
// collapses on autonomous content.
func DefaultPlan() Plan {
	return Plan{
		PanelDropProb:       0.25,
		PanelDelayProb:      0.25,
		PanelDelayMaxVsyncs: 8,
		PanelStickEvery:     30 * sim.Second,
		PanelStickFor:       2 * sim.Second,

		MeterCorruptProb: 0.02,
		MeterFreezeEvery: 15 * sim.Second,
		MeterFreezeFor:   5 * sim.Second,

		TouchDropProb:  0.10,
		TouchDelayProb: 0.10,
		TouchDelayMax:  80 * sim.Millisecond,

		AppStallEvery: 20 * sim.Second,
		AppStallFor:   400 * sim.Millisecond,
	}
}

// Scale returns a copy of the plan with probabilities multiplied by f
// (clamped to 1) and fault-window lengths stretched by f (clamped below
// their periods). Scale(0) disables everything; Scale(1) is the identity.
func (p Plan) Scale(f float64) Plan {
	if f < 0 {
		f = 0
	}
	prob := func(v float64) float64 {
		v *= f
		if v > 1 {
			return 1
		}
		return v
	}
	window := func(dur, period sim.Time) sim.Time {
		d := sim.Time(float64(dur) * f)
		if period > 0 && d >= period {
			d = period - 1
		}
		if d < 0 {
			d = 0
		}
		return d
	}
	p.PanelDropProb = prob(p.PanelDropProb)
	p.PanelDelayProb = prob(p.PanelDelayProb)
	p.MeterCorruptProb = prob(p.MeterCorruptProb)
	p.TouchDropProb = prob(p.TouchDropProb)
	p.TouchDelayProb = prob(p.TouchDelayProb)
	p.PanelStickFor = window(p.PanelStickFor, p.PanelStickEvery)
	p.MeterFreezeFor = window(p.MeterFreezeFor, p.MeterFreezeEvery)
	p.AppStallFor = window(p.AppStallFor, p.AppStallEvery)
	return p
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.PanelDropProb > 0 || p.PanelDelayProb > 0 ||
		(p.PanelStickEvery > 0 && p.PanelStickFor > 0) ||
		p.MeterCorruptProb > 0 ||
		(p.MeterFreezeEvery > 0 && p.MeterFreezeFor > 0) ||
		p.TouchDropProb > 0 || p.TouchDelayProb > 0 ||
		(p.AppStallEvery > 0 && p.AppStallFor > 0)
}

// Validate reports configuration errors.
func (p Plan) Validate() error {
	for _, v := range []struct {
		name string
		prob float64
	}{
		{"panel drop", p.PanelDropProb},
		{"panel delay", p.PanelDelayProb},
		{"meter corrupt", p.MeterCorruptProb},
		{"touch drop", p.TouchDropProb},
		{"touch delay", p.TouchDelayProb},
	} {
		if v.prob < 0 || v.prob > 1 {
			return fmt.Errorf("fault: %s probability %v out of [0,1]", v.name, v.prob)
		}
	}
	for _, w := range []struct {
		name       string
		every, dur sim.Time
	}{
		{"panel stick", p.PanelStickEvery, p.PanelStickFor},
		{"meter freeze", p.MeterFreezeEvery, p.MeterFreezeFor},
		{"app stall", p.AppStallEvery, p.AppStallFor},
	} {
		if w.every < 0 || w.dur < 0 {
			return fmt.Errorf("fault: negative %s window", w.name)
		}
		if w.every > 0 && w.dur >= w.every {
			return fmt.Errorf("fault: %s window %v not below its period %v", w.name, w.dur, w.every)
		}
	}
	if p.PanelDelayMaxVsyncs < 0 {
		return fmt.Errorf("fault: negative panel delay %d vsyncs", p.PanelDelayMaxVsyncs)
	}
	if p.TouchDelayMax < 0 {
		return fmt.Errorf("fault: negative touch delay bound %v", p.TouchDelayMax)
	}
	return nil
}

// Injector evaluates a plan for one device. Decisions are pure functions
// of (seed, class, time); the only mutable state is observability — per-
// class counters and window memos that rate-limit FaultInjected events —
// which never feeds back into any decision.
type Injector struct {
	seed int64
	plan Plan
	rec  *obs.Recorder

	counts [numClasses]uint64
	// lastWindow memoizes the last period index recorded per windowed
	// class so a 5 s freeze emits one event, not one per frame.
	lastWindow [numClasses]int64
}

// New builds an injector evaluating plan under the given seed. Derive the
// seed per device (fleet.DeviceSeed or equivalent) so devices fault
// independently. A plan that injects nothing yields a working injector
// that never fires.
func New(seed int64, plan Plan) *Injector {
	inj := &Injector{seed: seed, plan: plan}
	for i := range inj.lastWindow {
		inj.lastWindow[i] = -1
	}
	return inj
}

// Bind attaches a decision-event recorder: every injected fault is
// recorded as a FaultInjected event (windowed classes record once per
// window). Nil-safe on both sides.
func (in *Injector) Bind(rec *obs.Recorder) {
	if in != nil {
		in.rec = rec
	}
}

// Enabled reports whether the injector can fire at all (false on nil).
func (in *Injector) Enabled() bool { return in != nil && in.plan.Enabled() }

// Plan returns the injector's plan (zero value on nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Counts returns the number of faults injected per class, indexed by
// Class. Windowed classes (stick, freeze, stall) count windows entered,
// not queries. Nil-safe.
func (in *Injector) Counts() [int(numClasses)]uint64 {
	if in == nil {
		return [int(numClasses)]uint64{}
	}
	return in.counts
}

// Total returns the total number of faults injected. Nil-safe.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for _, c := range in.counts {
		t += c
	}
	return t
}

// note counts an injected fault and records the decision event.
func (in *Injector) note(t sim.Time, c Class, arg int64) {
	in.counts[c]++
	in.rec.FaultInjected(t, int(c), arg)
}

// noteWindow counts a windowed fault once per period.
func (in *Injector) noteWindow(t sim.Time, c Class, period int64) {
	if in.lastWindow[c] == period {
		return
	}
	in.lastWindow[c] = period
	in.note(t, c, period)
}

// splitmix64 is the SplitMix64 finalizer — the same mixer the fleet uses
// for per-device seeds, so fault streams inherit its avalanche quality.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash mixes the injector seed, a fault class and a time-like key into a
// uniform 64-bit value.
func (in *Injector) hash(c Class, key uint64) uint64 {
	h := splitmix64(uint64(in.seed) ^ splitmix64(uint64(c)+0x51ed2701))
	return splitmix64(h ^ key)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// roll decides a per-opportunity fault of class c at time t with
// probability p. Distinct times give independent decisions.
func (in *Injector) roll(c Class, t sim.Time, p float64) bool {
	if p <= 0 {
		return false
	}
	return unit(in.hash(c, uint64(t))) < p
}

// window reports whether a recurring window of class c covers time t, and
// the period index it belongs to. Within each period the window opens at
// a hashed offset so windows of different classes and devices do not
// align.
func (in *Injector) window(c Class, t sim.Time, every, dur sim.Time) (bool, int64) {
	if every <= 0 || dur <= 0 || t < 0 {
		return false, 0
	}
	period := int64(t / every)
	slack := every - dur
	off := sim.Time(float64(slack) * unit(in.hash(c, uint64(period))))
	pos := t % every
	return pos >= off && pos < off+dur, period
}

// PanelSwitch intercepts one rate-switch request at time t: drop reports
// the request silently lost, delayVsyncs how many refresh boundaries late
// it applies (0 = on time). Stick windows drop every request.
func (in *Injector) PanelSwitch(t sim.Time) (drop bool, delayVsyncs int) {
	if in == nil {
		return false, 0
	}
	if active, period := in.window(ClassPanelStick, t, in.plan.PanelStickEvery, in.plan.PanelStickFor); active {
		in.noteWindow(t, ClassPanelStick, period)
		return true, 0
	}
	if in.roll(ClassPanelDrop, t, in.plan.PanelDropProb) {
		in.note(t, ClassPanelDrop, 0)
		return true, 0
	}
	if in.plan.PanelDelayMaxVsyncs > 0 && in.roll(ClassPanelDelay, t, in.plan.PanelDelayProb) {
		n := 1 + int(in.hash(ClassPanelDelay, uint64(t)+1)%uint64(in.plan.PanelDelayMaxVsyncs))
		in.note(t, ClassPanelDelay, int64(n))
		return false, n
	}
	return false, 0
}

// MeterHook is the meter's fault hook (core.MeterConfig.Fault): it may
// mutate the freshly sampled grid (cur) before comparison against the
// committed previous samples (prev). A freeze overwrites cur with prev —
// the sampler read a stale buffer, so every frame classifies redundant; a
// corruption flips one sample, turning a redundant frame into spurious
// content. Nil-safe.
func (in *Injector) MeterHook(t sim.Time, cur, prev []framebuffer.Color, primed bool) {
	if in == nil || !primed || len(cur) == 0 {
		return
	}
	if active, period := in.window(ClassMeterFreeze, t, in.plan.MeterFreezeEvery, in.plan.MeterFreezeFor); active {
		in.noteWindow(t, ClassMeterFreeze, period)
		copy(cur, prev)
		return
	}
	if in.roll(ClassMeterCorrupt, t, in.plan.MeterCorruptProb) {
		i := int(in.hash(ClassMeterCorrupt, uint64(t)+1) % uint64(len(cur)))
		in.note(t, ClassMeterCorrupt, int64(i))
		cur[i] ^= 1 // flip the blue LSB: enough to differ, invisible otherwise
	}
}

// TouchFault intercepts one touch event scheduled for time at: drop
// suppresses delivery entirely, delay postpones it.
func (in *Injector) TouchFault(at sim.Time) (drop bool, delay sim.Time) {
	if in == nil {
		return false, 0
	}
	if in.roll(ClassTouchDrop, at, in.plan.TouchDropProb) {
		in.note(at, ClassTouchDrop, 0)
		return true, 0
	}
	if in.plan.TouchDelayMax > 0 && in.roll(ClassTouchDelay, at, in.plan.TouchDelayProb) {
		d := 1 + sim.Time(in.hash(ClassTouchDelay, uint64(at)+1)%uint64(in.plan.TouchDelayMax))
		in.note(at, ClassTouchDelay, int64(d))
		return false, d
	}
	return false, 0
}

// AppStalled reports whether the foreground app's UI thread is blocked at
// time t. A stalled app advances neither its content clock nor its
// invalidate clock, so stalls are display-quality-neutral by themselves —
// what they stress is the governor's reaction to the rate collapsing and
// then bursting back.
func (in *Injector) AppStalled(t sim.Time) bool {
	if in == nil {
		return false
	}
	active, period := in.window(ClassAppStall, t, in.plan.AppStallEvery, in.plan.AppStallFor)
	if active {
		in.noteWindow(t, ClassAppStall, period)
	}
	return active
}
