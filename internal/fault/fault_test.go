package fault

import (
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/sim"
)

// TestDecisionsArePureFunctionsOfTime is the load-bearing property: an
// injector queried twice at the same time answers identically, and the
// answer does not depend on how many other queries happened in between.
// This is what keeps hardened (retrying) and unhardened runs facing the
// same fault stream.
func TestDecisionsArePureFunctionsOfTime(t *testing.T) {
	plan := DefaultPlan()
	a := New(42, plan)
	b := New(42, plan)

	// a is queried densely, b sparsely; on shared times they must agree.
	for ts := sim.Time(0); ts < 60*sim.Second; ts += 7 * sim.Millisecond {
		a.PanelSwitch(ts)
		a.TouchFault(ts)
		a.AppStalled(ts)
	}
	for ts := sim.Time(0); ts < 60*sim.Second; ts += 91 * sim.Millisecond {
		ad, adel := a.PanelSwitch(ts)
		bd, bdel := b.PanelSwitch(ts)
		if ad != bd || adel != bdel {
			t.Fatalf("PanelSwitch(%v) diverged: dense (%v,%d) vs sparse (%v,%d)", ts, ad, adel, bd, bdel)
		}
		at, atd := a.TouchFault(ts)
		bt, btd := b.TouchFault(ts)
		if at != bt || atd != btd {
			t.Fatalf("TouchFault(%v) diverged", ts)
		}
		if a.AppStalled(ts) != b.AppStalled(ts) {
			t.Fatalf("AppStalled(%v) diverged", ts)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	plan := DefaultPlan()
	a, b := New(1, plan), New(2, plan)
	same, n := 0, 0
	for ts := sim.Time(0); ts < 30*sim.Second; ts += 11 * sim.Millisecond {
		ad, _ := a.PanelSwitch(ts)
		bd, _ := b.PanelSwitch(ts)
		if ad == bd {
			same++
		}
		n++
	}
	if same == n {
		t.Error("distinct seeds produced identical panel fault streams")
	}
}

// TestWindowDensity checks recurring windows open for roughly For out of
// every Every, at a hashed (non-zero-phase) offset.
func TestWindowDensity(t *testing.T) {
	plan := Plan{AppStallEvery: 10 * sim.Second, AppStallFor: 2 * sim.Second}
	in := New(7, plan)
	const step = sim.Millisecond
	var active, total int64
	for ts := sim.Time(0); ts < 200*sim.Second; ts += step {
		if in.AppStalled(ts) {
			active++
		}
		total++
	}
	got := float64(active) / float64(total)
	if got < 0.15 || got > 0.25 {
		t.Errorf("stall duty cycle %.3f, want ≈ 0.20", got)
	}
	if c := in.Counts()[ClassAppStall]; c != 20 {
		t.Errorf("counted %d stall windows over 20 periods, want 20", c)
	}
}

func TestRollProbability(t *testing.T) {
	plan := Plan{TouchDropProb: 0.10}
	in := New(3, plan)
	var dropped, n int
	for ts := sim.Time(0); ts < 100*sim.Second; ts += 5 * sim.Millisecond {
		if drop, _ := in.TouchFault(ts); drop {
			dropped++
		}
		n++
	}
	got := float64(dropped) / float64(n)
	if got < 0.07 || got > 0.13 {
		t.Errorf("touch drop rate %.3f, want ≈ 0.10", got)
	}
}

func TestMeterHook(t *testing.T) {
	plan := Plan{MeterFreezeEvery: 10 * sim.Second, MeterFreezeFor: 9 * sim.Second}
	in := New(5, plan)
	cur := []framebuffer.Color{1, 2, 3, 4}
	prev := []framebuffer.Color{9, 9, 9, 9}

	// Unprimed buffers are left alone.
	in.MeterHook(5*sim.Second, cur, prev, false)
	if cur[0] != 1 {
		t.Fatal("MeterHook mutated an unprimed buffer")
	}

	// Find a frozen instant (duty cycle 0.9, so nearly everywhere).
	frozen := false
	for ts := sim.Time(0); ts < 10*sim.Second; ts += 100 * sim.Millisecond {
		c := []framebuffer.Color{1, 2, 3, 4}
		in.MeterHook(ts, c, prev, true)
		if c[0] == 9 && c[1] == 9 && c[2] == 9 && c[3] == 9 {
			frozen = true
			break
		}
	}
	if !frozen {
		t.Error("freeze window never replaced cur with prev")
	}

	// Corruption flips exactly one sample by one bit.
	in2 := New(5, Plan{MeterCorruptProb: 1})
	c := []framebuffer.Color{8, 8, 8, 8}
	in2.MeterHook(time0, c, []framebuffer.Color{8, 8, 8, 8}, true)
	diff := 0
	for _, v := range c {
		if v != 8 {
			diff++
			if v != 9 {
				t.Errorf("corruption changed sample to %d, want single-bit flip to 9", v)
			}
		}
	}
	if diff != 1 {
		t.Errorf("corruption touched %d samples, want 1", diff)
	}
}

const time0 = sim.Time(123456)

func TestScale(t *testing.T) {
	p := DefaultPlan()
	off := p.Scale(0)
	if off.Enabled() {
		t.Error("Scale(0) still enabled")
	}
	if New(1, off).Enabled() {
		t.Error("injector with Scale(0) plan reports enabled")
	}
	// Probabilities clamp at 1; windows stay below their periods.
	big := p.Scale(100)
	if big.PanelDropProb != 1 || big.TouchDropProb != 1 {
		t.Errorf("Scale(100) probabilities not clamped: %v", big)
	}
	if big.MeterFreezeFor >= big.MeterFreezeEvery {
		t.Errorf("Scale(100) freeze window %v not below period %v", big.MeterFreezeFor, big.MeterFreezeEvery)
	}
	if err := big.Validate(); err != nil {
		t.Errorf("scaled plan invalid: %v", err)
	}
	half := p.Scale(0.5)
	if half.PanelDropProb != p.PanelDropProb*0.5 {
		t.Errorf("Scale(0.5) drop prob %v", half.PanelDropProb)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Plan)
	}{
		{"prob above 1", func(p *Plan) { p.PanelDropProb = 1.5 }},
		{"negative prob", func(p *Plan) { p.TouchDelayProb = -0.1 }},
		{"window ≥ period", func(p *Plan) { p.MeterFreezeFor = p.MeterFreezeEvery }},
		{"negative window", func(p *Plan) { p.AppStallFor = -sim.Second }},
		{"negative vsyncs", func(p *Plan) { p.PanelDelayMaxVsyncs = -1 }},
		{"negative touch delay", func(p *Plan) { p.TouchDelayMax = -1 }},
	}
	for _, tc := range cases {
		p := DefaultPlan()
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad plan", tc.name)
		}
	}
	if err := DefaultPlan().Validate(); err != nil {
		t.Errorf("default plan invalid: %v", err)
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan invalid: %v", err)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector enabled")
	}
	if drop, delay := in.PanelSwitch(0); drop || delay != 0 {
		t.Error("nil PanelSwitch fired")
	}
	if drop, delay := in.TouchFault(0); drop || delay != 0 {
		t.Error("nil TouchFault fired")
	}
	if in.AppStalled(0) {
		t.Error("nil AppStalled fired")
	}
	in.MeterHook(0, nil, nil, true) // must not panic
	in.Bind(nil)
	if in.Total() != 0 {
		t.Error("nil Total non-zero")
	}
	_ = in.Counts()
	_ = in.Plan()
}

func TestCountsAndTotal(t *testing.T) {
	in := New(9, Plan{TouchDropProb: 1})
	for i := 0; i < 10; i++ {
		in.TouchFault(sim.Time(i) * sim.Millisecond)
	}
	if c := in.Counts()[ClassTouchDrop]; c != 10 {
		t.Errorf("drop count %d, want 10", c)
	}
	if in.Total() != 10 {
		t.Errorf("total %d, want 10", in.Total())
	}
}

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes() {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("class %d: bad or duplicate name %q", int(c), s)
		}
		seen[s] = true
	}
}
