package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"ccdem/internal/trace"
)

// Aggregate is the fleet-wide view of a cohort run: what the scheme saves
// across the population rather than on one device. Percentiles and the
// quality CDF reuse the summary statistics of internal/trace; battery
// figures come from internal/battery via each device's estimate.
type Aggregate struct {
	Devices int `json:"devices"`
	// FailedDevices counts devices excluded from the aggregate because
	// their session could not be measured (see Result.Failed).
	FailedDevices int `json:"failed_devices,omitempty"`

	MeanBaselineMW float64 `json:"mean_baseline_mw"`
	MeanManagedMW  float64 `json:"mean_managed_mw"`
	MeanSavedMW    float64 `json:"mean_saved_mw"`

	SavedPctMean float64 `json:"saved_pct_mean"`
	SavedPctP50  float64 `json:"saved_pct_p50"`
	SavedPctP95  float64 `json:"saved_pct_p95"`

	QualityPctMean float64 `json:"quality_pct_mean"`
	// TrueQualityPctMean averages the meter-independent displayed/
	// intended ratio — the metric to trust under fault injection.
	TrueQualityPctMean float64 `json:"true_quality_pct_mean"`
	// QualityPctP5 is the quality of the worst-served 5% of users — the
	// tail a deployment decision cares about.
	QualityPctP5 float64 `json:"quality_pct_p5"`
	// QualityCDF is the empirical display-quality CDF across devices
	// (values rounded to 0.1% so the curve stays compact at fleet scale).
	QualityCDF []trace.CDFPoint `json:"quality_cdf"`

	ExtraHoursMean float64 `json:"extra_hours_mean"`
	ExtraHoursP50  float64 `json:"extra_hours_p50"`
	ExtraHoursP95  float64 `json:"extra_hours_p95"`

	Profiles []ProfileAggregate `json:"profiles"`
}

// ProfileAggregate is the per-user-class breakdown of the fleet.
type ProfileAggregate struct {
	Profile string `json:"profile"`
	Devices int    `json:"devices"`

	MeanSavedMW    float64 `json:"mean_saved_mw"`
	SavedPctMean   float64 `json:"saved_pct_mean"`
	QualityPctMean float64 `json:"quality_pct_mean"`
	// TrueQualityPctMean is the class's mean meter-independent quality —
	// the per-profile counterpart of Aggregate.TrueQualityPctMean.
	TrueQualityPctMean float64 `json:"true_quality_pct_mean"`
	ExtraHoursMean     float64 `json:"extra_hours_mean"`
}

// aggregate folds per-device results into the fleet-wide summary through
// the streaming Accumulator — the retained and streamed cohort paths
// share one integer-domain implementation, so their aggregates are
// byte-identical by construction. profiles fixes the breakdown order to
// the cohort's declaration order.
func aggregate(results []DeviceResult, profiles []Profile) Aggregate {
	acc := NewAccumulator()
	for _, r := range results {
		acc.Add(r)
	}
	return acc.Aggregate(profiles)
}

// String renders the aggregate as a report table.
func (a Aggregate) String() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("Fleet aggregate (%d devices):\n", a.Devices))
	if a.FailedDevices > 0 {
		sb.WriteString(fmt.Sprintf("  failed devices: %d (excluded from the aggregate)\n", a.FailedDevices))
	}
	sb.WriteString(fmt.Sprintf("  power: %.0f mW baseline → %.0f mW managed (mean saved %.0f mW)\n",
		a.MeanBaselineMW, a.MeanManagedMW, a.MeanSavedMW))
	sb.WriteString(fmt.Sprintf("  saving: mean %.1f%%, p50 %.1f%%, p95 %.1f%%\n",
		a.SavedPctMean, a.SavedPctP50, a.SavedPctP95))
	sb.WriteString(fmt.Sprintf("  display quality: mean %.1f%%, worst 5%% of users ≥ %.1f%%\n",
		a.QualityPctMean, a.QualityPctP5))
	sb.WriteString(fmt.Sprintf("  battery: +%.2f h screen-on mean (p50 %.2f h, p95 %.2f h)\n",
		a.ExtraHoursMean, a.ExtraHoursP50, a.ExtraHoursP95))
	if len(a.Profiles) > 0 {
		w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "  profile\tdevices\tsaved\tsaving\tquality\ttrue quality\tbattery\n")
		for _, p := range a.Profiles {
			fmt.Fprintf(w, "  %s\t%d\t%.0f mW\t%.1f%%\t%.1f%%\t%.1f%%\t+%.2f h\n",
				p.Profile, p.Devices, p.MeanSavedMW, p.SavedPctMean, p.QualityPctMean,
				p.TrueQualityPctMean, p.ExtraHoursMean)
		}
		w.Flush()
	}
	return sb.String()
}

// WriteJSON writes the run as an indented JSON document. With perDevice
// false only the aggregate is emitted. Output is byte-identical for
// identical cohorts regardless of worker count.
func (r *Result) WriteJSON(w io.Writer, perDevice bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if !perDevice {
		return enc.Encode(struct {
			Aggregate Aggregate `json:"aggregate"`
		}{r.Aggregate})
	}
	return enc.Encode(r)
}

// WriteCSVHeader writes the per-device CSV column header. Streamed
// cohorts emit it once up front and then one WriteCSVRow per result
// delivered to their sink, so per-device CSV output never requires
// retaining results.
func WriteCSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "device,profile,session_s,baseline_mw,managed_mw,saved_mw,saved_pct,quality_pct,true_quality_pct,baseline_hours,managed_hours,extra_hours")
	return err
}

// WriteCSVRow writes the result's CSV row (no header), matching
// WriteCSVHeader's column order.
func (d DeviceResult) WriteCSVRow(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%d,%s,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
		d.Device, d.Profile, d.SessionS, d.BaselineMW, d.ManagedMW,
		d.SavedMW, d.SavedPct, d.QualityPct, d.TrueQualityPct,
		d.BaselineHours, d.ManagedHours, d.ExtraHours)
	return err
}

// WriteCSV writes one row per device, in device order.
func (r *Result) WriteCSV(w io.Writer) error {
	if err := WriteCSVHeader(w); err != nil {
		return err
	}
	for _, d := range r.Devices {
		if err := d.WriteCSVRow(w); err != nil {
			return err
		}
	}
	return nil
}
