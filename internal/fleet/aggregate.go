package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"ccdem/internal/trace"
)

// Aggregate is the fleet-wide view of a cohort run: what the scheme saves
// across the population rather than on one device. Percentiles and the
// quality CDF reuse the summary statistics of internal/trace; battery
// figures come from internal/battery via each device's estimate.
type Aggregate struct {
	Devices int `json:"devices"`
	// FailedDevices counts devices excluded from the aggregate because
	// their session could not be measured (see Result.Failed).
	FailedDevices int `json:"failed_devices,omitempty"`

	MeanBaselineMW float64 `json:"mean_baseline_mw"`
	MeanManagedMW  float64 `json:"mean_managed_mw"`
	MeanSavedMW    float64 `json:"mean_saved_mw"`

	SavedPctMean float64 `json:"saved_pct_mean"`
	SavedPctP50  float64 `json:"saved_pct_p50"`
	SavedPctP95  float64 `json:"saved_pct_p95"`

	QualityPctMean float64 `json:"quality_pct_mean"`
	// TrueQualityPctMean averages the meter-independent displayed/
	// intended ratio — the metric to trust under fault injection.
	TrueQualityPctMean float64 `json:"true_quality_pct_mean"`
	// QualityPctP5 is the quality of the worst-served 5% of users — the
	// tail a deployment decision cares about.
	QualityPctP5 float64 `json:"quality_pct_p5"`
	// QualityCDF is the empirical display-quality CDF across devices
	// (values rounded to 0.1% so the curve stays compact at fleet scale).
	QualityCDF []trace.CDFPoint `json:"quality_cdf"`

	ExtraHoursMean float64 `json:"extra_hours_mean"`
	ExtraHoursP50  float64 `json:"extra_hours_p50"`
	ExtraHoursP95  float64 `json:"extra_hours_p95"`

	Profiles []ProfileAggregate `json:"profiles"`
}

// ProfileAggregate is the per-user-class breakdown of the fleet.
type ProfileAggregate struct {
	Profile string `json:"profile"`
	Devices int    `json:"devices"`

	MeanSavedMW    float64 `json:"mean_saved_mw"`
	SavedPctMean   float64 `json:"saved_pct_mean"`
	QualityPctMean float64 `json:"quality_pct_mean"`
	ExtraHoursMean float64 `json:"extra_hours_mean"`
}

// aggregate folds per-device results (in device order, so floating-point
// sums are deterministic) into the fleet-wide summary. profiles fixes the
// breakdown order to the cohort's declaration order.
func aggregate(results []DeviceResult, profiles []Profile) Aggregate {
	a := Aggregate{Devices: len(results)}
	if len(results) == 0 {
		return a
	}
	var savedPct, quality, trueQuality, extraHours []float64
	for _, r := range results {
		a.MeanBaselineMW += r.BaselineMW
		a.MeanManagedMW += r.ManagedMW
		a.MeanSavedMW += r.SavedMW
		savedPct = append(savedPct, r.SavedPct)
		quality = append(quality, math.Round(r.QualityPct*10)/10)
		trueQuality = append(trueQuality, math.Round(r.TrueQualityPct*10)/10)
		extraHours = append(extraHours, r.ExtraHours)
	}
	n := float64(len(results))
	a.MeanBaselineMW /= n
	a.MeanManagedMW /= n
	a.MeanSavedMW /= n

	a.SavedPctMean = trace.Mean(savedPct)
	a.SavedPctP50 = trace.Percentile(savedPct, 50)
	a.SavedPctP95 = trace.Percentile(savedPct, 95)

	a.QualityPctMean = trace.Mean(quality)
	a.TrueQualityPctMean = trace.Mean(trueQuality)
	a.QualityPctP5 = trace.Percentile(quality, 5)
	a.QualityCDF = trace.CDF(quality)

	a.ExtraHoursMean = trace.Mean(extraHours)
	a.ExtraHoursP50 = trace.Percentile(extraHours, 50)
	a.ExtraHoursP95 = trace.Percentile(extraHours, 95)

	for _, p := range profiles {
		pa := ProfileAggregate{Profile: p.Name}
		var saved, savedPct, quality, extra float64
		for _, r := range results {
			if r.Profile != p.Name {
				continue
			}
			pa.Devices++
			saved += r.SavedMW
			savedPct += r.SavedPct
			quality += r.QualityPct
			extra += r.ExtraHours
		}
		if pa.Devices > 0 {
			pn := float64(pa.Devices)
			pa.MeanSavedMW = saved / pn
			pa.SavedPctMean = savedPct / pn
			pa.QualityPctMean = quality / pn
			pa.ExtraHoursMean = extra / pn
		}
		a.Profiles = append(a.Profiles, pa)
	}
	return a
}

// String renders the aggregate as a report table.
func (a Aggregate) String() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("Fleet aggregate (%d devices):\n", a.Devices))
	if a.FailedDevices > 0 {
		sb.WriteString(fmt.Sprintf("  failed devices: %d (excluded from the aggregate)\n", a.FailedDevices))
	}
	sb.WriteString(fmt.Sprintf("  power: %.0f mW baseline → %.0f mW managed (mean saved %.0f mW)\n",
		a.MeanBaselineMW, a.MeanManagedMW, a.MeanSavedMW))
	sb.WriteString(fmt.Sprintf("  saving: mean %.1f%%, p50 %.1f%%, p95 %.1f%%\n",
		a.SavedPctMean, a.SavedPctP50, a.SavedPctP95))
	sb.WriteString(fmt.Sprintf("  display quality: mean %.1f%%, worst 5%% of users ≥ %.1f%%\n",
		a.QualityPctMean, a.QualityPctP5))
	sb.WriteString(fmt.Sprintf("  battery: +%.2f h screen-on mean (p50 %.2f h, p95 %.2f h)\n",
		a.ExtraHoursMean, a.ExtraHoursP50, a.ExtraHoursP95))
	if len(a.Profiles) > 0 {
		w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "  profile\tdevices\tsaved\tsaving\tquality\tbattery\n")
		for _, p := range a.Profiles {
			fmt.Fprintf(w, "  %s\t%d\t%.0f mW\t%.1f%%\t%.1f%%\t+%.2f h\n",
				p.Profile, p.Devices, p.MeanSavedMW, p.SavedPctMean, p.QualityPctMean, p.ExtraHoursMean)
		}
		w.Flush()
	}
	return sb.String()
}

// WriteJSON writes the run as an indented JSON document. With perDevice
// false only the aggregate is emitted. Output is byte-identical for
// identical cohorts regardless of worker count.
func (r *Result) WriteJSON(w io.Writer, perDevice bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if !perDevice {
		return enc.Encode(struct {
			Aggregate Aggregate `json:"aggregate"`
		}{r.Aggregate})
	}
	return enc.Encode(r)
}

// WriteCSV writes one row per device, in device order.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "device,profile,session_s,baseline_mw,managed_mw,saved_mw,saved_pct,quality_pct,true_quality_pct,baseline_hours,managed_hours,extra_hours"); err != nil {
		return err
	}
	for _, d := range r.Devices {
		if _, err := fmt.Fprintf(w, "%d,%s,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			d.Device, d.Profile, d.SessionS, d.BaselineMW, d.ManagedMW,
			d.SavedMW, d.SavedPct, d.QualityPct, d.TrueQualityPct,
			d.BaselineHours, d.ManagedHours, d.ExtraHours); err != nil {
			return err
		}
	}
	return nil
}
