package fleet

import (
	"context"
	"testing"
)

// TestCohortTaskSteadyStateAllocs is the device-reuse allocation budget:
// once a worker lane's device is warm, a full cohort task (every app
// segment, baseline and managed) must allocate only what the task
// inherently produces — the Monkey scripts, the battery usage slices,
// and the per-device RNG — not engine, framebuffer, lattice or recorder
// state. Measured at ~200 allocs/device; the bound leaves headroom for
// runtime jitter while still catching any reconstruction creeping back
// in (a single fresh device costs tens of allocations plus megabytes,
// twice per app segment).
func TestCohortTaskSteadyStateAllocs(t *testing.T) {
	c := testCohort(1)
	c.applyDefaults()
	lane := &deviceLane{}
	ctx := context.Background()
	for i := 0; i < 4; i++ { // warm the lane and every pooled buffer
		if _, err := c.runDevice(ctx, 0, lane); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := c.runDevice(ctx, 0, lane); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 300
	if allocs > budget {
		t.Errorf("steady-state cohort task allocates %.0f per device, budget %d — device reuse is leaking construction work", allocs, budget)
	}
}
