// Campaign checkpoint codec: a versioned, CRC-guarded snapshot of a
// partially merged campaign, so a daemon killed mid-flight can resume a
// sharded run and still produce the exact bytes an uninterrupted run
// would have.
//
// The checkpoint rides on the shard wire codec's determinism argument:
// the accumulator's whole state is integral (codec.go, stream.go), so
// merging completed shards in *any* order — including "the order they
// happened to finish before the crash, then the re-run stragglers after
// the restart" — reaches the same integer state as the canonical
// in-shard-order merge. A checkpoint therefore only needs the merged
// accumulator over the completed-shard set, the set itself, and the
// cross-shard invariants (cohort size, profile order) needed to finalize
// and to validate late shards.
//
// The document is defensive by design: the payload carries a CRC-32 so a
// torn or bit-rotted file is detected before any of it is trusted, a
// spec hash and code version so a checkpoint is never resumed against a
// different campaign or a binary with different simulation semantics,
// and the same accounting invariants DecodeShard enforces — the
// completed shards' exact slice sizes must equal the accumulator's
// devices plus the failure rows. A checkpoint that fails any of these
// is rejected whole; resuming from a suspect prefix is never worth the
// corrupted campaign it would produce.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// checkpointWireVersion tags the checkpoint envelope; decoders reject
// anything else (a version-skewed checkpoint restarts the job from
// scratch rather than guessing at field semantics).
const checkpointWireVersion = 1

// ShardRange is shard index's contiguous slice [lo, hi) of an n-device
// index space split count ways — the exported form of the exact integer
// partition every process of a sharded campaign agrees on. The service
// layer uses it to account resumed shards' device counts without
// re-running them.
func ShardRange(n, index, count int) (lo, hi int) {
	return shardRange(n, index, count)
}

// Checkpoint accumulates a sharded campaign's completed shards into a
// resumable snapshot: which shards are done, the accumulator merged over
// exactly those shards, and the failure rows from their slices. It is
// not safe for concurrent use; the service serializes AddShard and
// Encode behind one mutex.
type Checkpoint struct {
	// SpecHash pins the checkpoint to one job document (the service
	// hashes the journaled spec bytes); a mismatch refuses resume.
	SpecHash string
	// CodeVersion pins the checkpoint to the binary that wrote it;
	// simulation semantics may change between versions, so a skewed
	// checkpoint restarts from scratch.
	CodeVersion string
	// ShardCount is the campaign's shard count.
	ShardCount int
	// CohortDevices is the campaign's cohort size, adopted from the
	// first completed shard (0 until then).
	CohortDevices int
	// ProfileOrder is the cohort's profile declaration order, adopted
	// from the first completed shard.
	ProfileOrder []string
	// Failed holds the completed shards' failure rows.
	Failed []DeviceFailure
	// Acc is the accumulator merged over the completed shards.
	Acc *Accumulator

	done map[int]bool
}

// NewCheckpoint returns an empty checkpoint for a shards-way campaign.
func NewCheckpoint(specHash, codeVersion string, shards int) *Checkpoint {
	return &Checkpoint{
		SpecHash:    specHash,
		CodeVersion: codeVersion,
		ShardCount:  shards,
		Acc:         NewAccumulator(),
		done:        make(map[int]bool),
	}
}

// Done reports whether shard index has been folded in.
func (c *Checkpoint) Done(index int) bool { return c.done[index] }

// DoneCount is the number of completed shards.
func (c *Checkpoint) DoneCount() int { return len(c.done) }

// DoneShards returns the completed shard indices in ascending order.
func (c *Checkpoint) DoneShards() []int {
	out := make([]int, 0, len(c.done))
	for i := range c.done {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Complete reports whether every shard has been folded in.
func (c *Checkpoint) Complete() bool { return len(c.done) == c.ShardCount }

// AddShard folds one completed shard into the checkpoint, enforcing the
// cross-shard consistency MergeShards enforces: same shard count, same
// cohort size, same profile order, no duplicate indices. The shard's
// accumulator must not be used afterwards.
func (c *Checkpoint) AddShard(s *Shard) error {
	if s.Count != c.ShardCount {
		return fmt.Errorf("fleet: checkpoint: shard %d/%d against a %d-shard campaign", s.Index, s.Count, c.ShardCount)
	}
	if s.Index < 0 || s.Index >= c.ShardCount {
		return fmt.Errorf("fleet: checkpoint: shard index %d out of [0,%d)", s.Index, c.ShardCount)
	}
	if c.done[s.Index] {
		return fmt.Errorf("fleet: checkpoint: duplicate shard %d", s.Index)
	}
	if len(c.done) == 0 && c.CohortDevices == 0 {
		c.CohortDevices = s.CohortDevices
		c.ProfileOrder = append([]string(nil), s.ProfileOrder...)
	} else {
		if s.CohortDevices != c.CohortDevices {
			return fmt.Errorf("fleet: checkpoint: shard %d covers a %d-device cohort, checkpoint holds %d",
				s.Index, s.CohortDevices, c.CohortDevices)
		}
		if len(s.ProfileOrder) != len(c.ProfileOrder) {
			return fmt.Errorf("fleet: checkpoint: shard %d profile order differs", s.Index)
		}
		for i, name := range s.ProfileOrder {
			if name != c.ProfileOrder[i] {
				return fmt.Errorf("fleet: checkpoint: shard %d profile order differs at %q", s.Index, name)
			}
		}
	}
	c.Acc.Merge(s.Acc)
	c.Failed = append(c.Failed, s.Failed...)
	c.done[s.Index] = true
	return nil
}

// Result finalizes a complete checkpoint into the campaign result —
// the same tail MergeShards runs, so a campaign assembled through any
// interleaving of AddShard calls (including across a crash and resume)
// is byte-identical to the uninterrupted merge. The checkpoint must not
// be used afterwards.
func (c *Checkpoint) Result() (*Result, error) {
	if !c.Complete() {
		return nil, fmt.Errorf("fleet: checkpoint: %d of %d shards complete", len(c.done), c.ShardCount)
	}
	if c.Acc.Devices() == 0 {
		return nil, fmt.Errorf("fleet: all %d devices failed", c.CohortDevices)
	}
	res := &Result{Failed: append([]DeviceFailure(nil), c.Failed...)}
	sort.Slice(res.Failed, func(i, j int) bool { return res.Failed[i].Device < res.Failed[j].Device })
	profiles := make([]Profile, len(c.ProfileOrder))
	for i, name := range c.ProfileOrder {
		profiles[i] = Profile{Name: name}
	}
	res.Aggregate = c.Acc.Aggregate(profiles)
	res.Aggregate.FailedDevices = len(res.Failed)
	return res, nil
}

// wireCheckpoint is the checkpoint payload: identity pins, the
// completed-shard set, and the merged accumulator in its canonical wire
// form. Done and Failed are emitted in ascending order so identical
// checkpoint state always encodes to identical bytes.
type wireCheckpoint struct {
	SpecHash      string          `json:"spec_hash"`
	CodeVersion   string          `json:"code_version"`
	Shards        int             `json:"shards"`
	CohortDevices int             `json:"cohort_devices,omitempty"`
	ProfileOrder  []string        `json:"profile_order,omitempty"`
	Done          []int           `json:"done,omitempty"`
	Failed        []DeviceFailure `json:"failed,omitempty"`
	Accumulator   wireAccumulator `json:"accumulator"`
}

// wireCheckpointEnvelope wraps the payload with a version tag and a
// CRC-32 (IEEE) over the payload's exact bytes. json.RawMessage keeps
// the bytes verbatim in both directions, so the checksum covers what is
// actually on disk.
type wireCheckpointEnvelope struct {
	Version int             `json:"version"`
	CRC32   string          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// crcHex is the envelope's checksum encoding: CRC-32 (IEEE) over the
// payload's exact bytes, as 8 lowercase hex digits.
func crcHex(payload []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))
}

// Encode writes the checkpoint's canonical wire document.
func (c *Checkpoint) Encode(w io.Writer) error {
	failed := append([]DeviceFailure(nil), c.Failed...)
	sort.Slice(failed, func(i, j int) bool { return failed[i].Device < failed[j].Device })
	payload := wireCheckpoint{
		SpecHash:      c.SpecHash,
		CodeVersion:   c.CodeVersion,
		Shards:        c.ShardCount,
		CohortDevices: c.CohortDevices,
		ProfileOrder:  c.ProfileOrder,
		Done:          c.DoneShards(),
		Failed:        failed,
		Accumulator:   c.Acc.toWire(),
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	env := wireCheckpointEnvelope{
		Version: checkpointWireVersion,
		CRC32:   crcHex(raw),
		Payload: raw,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(env)
}

// DecodeCheckpoint parses and validates a checkpoint document. Every
// rejection is total: a checkpoint that is truncated, checksum-damaged,
// version-skewed, or internally inconsistent yields an error and no
// state — the caller restarts the campaign from scratch rather than
// merging a suspect prefix.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var env wireCheckpointEnvelope
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint codec: %w", err)
	}
	if env.Version != checkpointWireVersion {
		return nil, fmt.Errorf("fleet: checkpoint codec: unsupported version %d", env.Version)
	}
	if got := crcHex(env.Payload); got != env.CRC32 {
		return nil, fmt.Errorf("fleet: checkpoint codec: payload checksum %s, header says %s", got, env.CRC32)
	}
	var doc wireCheckpoint
	pdec := json.NewDecoder(bytes.NewReader(env.Payload))
	pdec.DisallowUnknownFields()
	if err := pdec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint codec: payload: %w", err)
	}
	if doc.SpecHash == "" {
		return nil, fmt.Errorf("fleet: checkpoint codec: empty spec hash")
	}
	if doc.CodeVersion == "" {
		return nil, fmt.Errorf("fleet: checkpoint codec: empty code version")
	}
	if doc.Shards < 1 {
		return nil, fmt.Errorf("fleet: checkpoint codec: non-positive shard count %d", doc.Shards)
	}
	prev := -1
	for _, i := range doc.Done {
		if i < 0 || i >= doc.Shards {
			return nil, fmt.Errorf("fleet: checkpoint codec: done shard %d out of [0,%d)", i, doc.Shards)
		}
		if i <= prev {
			return nil, fmt.Errorf("fleet: checkpoint codec: done shards not in strictly ascending order at %d", i)
		}
		prev = i
	}
	acc, err := accFromWire(doc.Accumulator)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{
		SpecHash:      doc.SpecHash,
		CodeVersion:   doc.CodeVersion,
		ShardCount:    doc.Shards,
		CohortDevices: doc.CohortDevices,
		ProfileOrder:  doc.ProfileOrder,
		Failed:        doc.Failed,
		Acc:           acc,
		done:          make(map[int]bool, len(doc.Done)),
	}
	for _, i := range doc.Done {
		c.done[i] = true
	}
	if len(doc.Done) == 0 {
		if acc.devices != 0 || len(doc.Failed) != 0 {
			return nil, fmt.Errorf("fleet: checkpoint codec: %d devices and %d failures with no completed shards",
				acc.devices, len(doc.Failed))
		}
		return c, nil
	}
	if doc.CohortDevices < 1 {
		return nil, fmt.Errorf("fleet: checkpoint codec: non-positive cohort device count %d", doc.CohortDevices)
	}
	if len(doc.ProfileOrder) == 0 {
		return nil, fmt.Errorf("fleet: checkpoint codec: empty profile order")
	}
	known := make(map[string]bool, len(doc.ProfileOrder))
	for _, name := range doc.ProfileOrder {
		if name == "" {
			return nil, fmt.Errorf("fleet: checkpoint codec: empty profile name in profile order")
		}
		if known[name] {
			return nil, fmt.Errorf("fleet: checkpoint codec: duplicate profile %q in profile order", name)
		}
		known[name] = true
	}
	for name := range acc.profiles {
		if !known[name] {
			return nil, fmt.Errorf("fleet: checkpoint codec: accumulator profile %q absent from profile order", name)
		}
	}
	// The completed slices must account for exactly their devices — the
	// shard-document invariant, summed over the done set.
	var want int64
	for _, i := range doc.Done {
		lo, hi := shardRange(doc.CohortDevices, i, doc.Shards)
		want += int64(hi - lo)
	}
	if got := acc.devices + int64(len(doc.Failed)); got != want {
		return nil, fmt.Errorf("fleet: checkpoint codec: %d completed shards account for %d devices, slices hold %d",
			len(doc.Done), got, want)
	}
	prevDev := -1
	for _, f := range doc.Failed {
		if f.Device <= prevDev {
			return nil, fmt.Errorf("fleet: checkpoint codec: failed devices not in strictly ascending order at %d", f.Device)
		}
		prevDev = f.Device
		if f.Device < 0 || f.Device >= doc.CohortDevices {
			return nil, fmt.Errorf("fleet: checkpoint codec: failed device %d outside the cohort", f.Device)
		}
		shard := sort.Search(doc.Shards, func(i int) bool {
			_, hi := shardRange(doc.CohortDevices, i, doc.Shards)
			return f.Device < hi
		})
		if !c.done[shard] {
			return nil, fmt.Errorf("fleet: checkpoint codec: failed device %d belongs to incomplete shard %d", f.Device, shard)
		}
	}
	return c, nil
}
