package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"ccdem/internal/sim"
)

// ckptTestCohort is a small deterministic cohort used across the
// checkpoint tests.
func ckptTestCohort(devices int) Cohort {
	return Cohort{
		Devices:      devices,
		Seed:         7,
		Session:      2 * sim.Second,
		MeterSamples: 256,
	}
}

// runTestShards runs every shard of a count-way split of the cohort.
func runTestShards(t *testing.T, c Cohort, count int) []*Shard {
	t.Helper()
	shards := make([]*Shard, count)
	for i := 0; i < count; i++ {
		sc := c
		sc.ShardIndex, sc.ShardCount = i, count
		s, err := sc.RunShard(context.Background(), Pool{Workers: 2})
		if err != nil {
			t.Fatalf("RunShard %d/%d: %v", i, count, err)
		}
		shards[i] = s
	}
	return shards
}

func encodeCheckpoint(t *testing.T, c *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// TestCheckpointRoundTrip: encode → decode reconstructs state that
// encodes to the same bytes, with the done set and identity pins intact.
func TestCheckpointRoundTrip(t *testing.T) {
	shards := runTestShards(t, ckptTestCohort(20), 4)
	c := NewCheckpoint("hash-abc", "v-test", 4)
	// Out-of-order completion, partial set — the realistic mid-crash shape.
	for _, i := range []int{2, 0, 3} {
		if err := c.AddShard(shards[i]); err != nil {
			t.Fatalf("AddShard %d: %v", i, err)
		}
	}
	doc := encodeCheckpoint(t, c)

	got, err := DecodeCheckpoint(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if got.SpecHash != "hash-abc" || got.CodeVersion != "v-test" {
		t.Errorf("identity = (%q, %q), want (hash-abc, v-test)", got.SpecHash, got.CodeVersion)
	}
	if got.ShardCount != 4 || got.DoneCount() != 3 || got.Complete() {
		t.Errorf("shape = %d shards, %d done, complete=%v", got.ShardCount, got.DoneCount(), got.Complete())
	}
	for _, i := range []int{0, 2, 3} {
		if !got.Done(i) {
			t.Errorf("shard %d not marked done", i)
		}
	}
	if got.Done(1) {
		t.Error("shard 1 marked done")
	}
	if doc2 := encodeCheckpoint(t, got); !bytes.Equal(doc, doc2) {
		t.Errorf("re-encoded checkpoint differs:\n got: %s\nwant: %s", doc2, doc)
	}
}

// TestCheckpointResultMatchesMergeShards: folding shards into a
// checkpoint in arbitrary order — with a serialization round-trip in the
// middle, like a real crash/resume — must finalize to bytes identical to
// the canonical in-order MergeShards of the same campaign.
func TestCheckpointResultMatchesMergeShards(t *testing.T) {
	cohort := ckptTestCohort(22)
	count := 4

	var want bytes.Buffer
	ref, err := MergeShards(runTestShards(t, cohort, count))
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	if err := ref.WriteJSON(&want, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	shards := runTestShards(t, cohort, count)
	c := NewCheckpoint("h", "v", count)
	for _, i := range []int{3, 1} {
		if err := c.AddShard(shards[i]); err != nil {
			t.Fatalf("AddShard %d: %v", i, err)
		}
	}
	// Crash: the surviving state is only what the document carries.
	resumed, err := DecodeCheckpoint(bytes.NewReader(encodeCheckpoint(t, c)))
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	for _, i := range []int{0, 2} {
		if err := resumed.AddShard(shards[i]); err != nil {
			t.Fatalf("AddShard %d after resume: %v", i, err)
		}
	}
	result, err := resumed.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	var got bytes.Buffer
	if err := result.WriteJSON(&got, false); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("resumed checkpoint result differs from in-order merge:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}
}

func TestCheckpointAddShardRejectsInconsistency(t *testing.T) {
	shards := runTestShards(t, ckptTestCohort(12), 3)
	other := runTestShards(t, ckptTestCohort(15), 3)

	c := NewCheckpoint("h", "v", 3)
	if err := c.AddShard(shards[1]); err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	if err := c.AddShard(shards[1]); err == nil || !strings.Contains(err.Error(), "duplicate shard") {
		t.Errorf("duplicate AddShard = %v, want duplicate-shard error", err)
	}
	if err := c.AddShard(other[2]); err == nil || !strings.Contains(err.Error(), "cohort") {
		t.Errorf("mismatched-cohort AddShard = %v, want cohort-size error", err)
	}
	wrongCount := NewCheckpoint("h", "v", 4)
	if err := wrongCount.AddShard(shards[0]); err == nil || !strings.Contains(err.Error(), "campaign") {
		t.Errorf("wrong-count AddShard = %v, want shard-count error", err)
	}
	if _, err := c.Result(); err == nil || !strings.Contains(err.Error(), "shards complete") {
		t.Errorf("Result on incomplete checkpoint = %v, want incomplete error", err)
	}
}

// TestCheckpointDecodeRejectsCorruption: every corruption class the
// resume path defends against must be rejected whole.
func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	shards := runTestShards(t, ckptTestCohort(20), 4)
	c := NewCheckpoint("hash-abc", "v-test", 4)
	for _, i := range []int{0, 1} {
		if err := c.AddShard(shards[i]); err != nil {
			t.Fatalf("AddShard: %v", err)
		}
	}
	doc := encodeCheckpoint(t, c)

	flip := func(doc []byte, needle, repl string) []byte {
		out := strings.Replace(string(doc), needle, repl, 1)
		if out == string(doc) {
			t.Fatalf("needle %q not found in checkpoint document", needle)
		}
		return []byte(out)
	}

	cases := []struct {
		name string
		doc  []byte
		want string
	}{
		{"truncated", doc[:len(doc)/2], "unexpected"},
		{"empty", nil, "EOF"},
		// A flipped payload byte must trip the CRC before any field is
		// trusted. (Same-length replacement keeps the JSON well-formed.)
		{"bit rot", flip(doc, `"spec_hash":"hash-abc"`, `"spec_hash":"hash-abd"`), "checksum"},
		{"version skew", flip(doc, `"version":1`, `"version":9`), "unsupported version"},
		{"unknown envelope field", flip(doc, `"version":1`, `"varsion":1`), "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCheckpoint(bytes.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeCheckpoint = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// reseal recomputes the envelope CRC after a deliberate payload edit, so
// the tests below reach the semantic validators behind the checksum.
func reseal(t *testing.T, doc []byte, edit func(payload string) string) []byte {
	t.Helper()
	var env wireCheckpointEnvelope
	if err := json.Unmarshal(doc, &env); err != nil {
		t.Fatalf("unsealing: %v", err)
	}
	payload := edit(string(env.Payload))
	out, err := json.Marshal(wireCheckpointEnvelope{
		Version: env.Version,
		CRC32:   crcHex([]byte(payload)),
		Payload: json.RawMessage(payload),
	})
	if err != nil {
		t.Fatalf("resealing: %v", err)
	}
	return out
}

func TestCheckpointDecodeRejectsInconsistentPayload(t *testing.T) {
	shards := runTestShards(t, ckptTestCohort(20), 4)
	c := NewCheckpoint("hash-abc", "v-test", 4)
	for _, i := range []int{0, 1} {
		if err := c.AddShard(shards[i]); err != nil {
			t.Fatalf("AddShard: %v", err)
		}
	}
	doc := encodeCheckpoint(t, c)

	cases := []struct {
		name string
		edit func(string) string
		want string
	}{
		{"done out of range", func(p string) string { return strings.Replace(p, `"done":[0,1]`, `"done":[0,7]`, 1) }, "out of [0,4)"},
		{"done unsorted", func(p string) string { return strings.Replace(p, `"done":[0,1]`, `"done":[1,0]`, 1) }, "ascending"},
		// Claiming an extra completed shard breaks the device accounting:
		// the accumulator only holds shards 0 and 1.
		{"accounting mismatch", func(p string) string { return strings.Replace(p, `"done":[0,1]`, `"done":[0,1,2]`, 1) }, "account"},
		{"empty spec hash", func(p string) string { return strings.Replace(p, `"spec_hash":"hash-abc"`, `"spec_hash":""`, 1) }, "empty spec hash"},
		{"empty code version", func(p string) string { return strings.Replace(p, `"code_version":"v-test"`, `"code_version":""`, 1) }, "empty code version"},
		{"zero shards", func(p string) string { return strings.Replace(p, `"shards":4`, `"shards":0`, 1) }, "non-positive shard count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCheckpoint(bytes.NewReader(reseal(t, doc, tc.edit)))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeCheckpoint = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestCheckpointEmptyRoundTrip(t *testing.T) {
	c := NewCheckpoint("h", "v", 3)
	got, err := DecodeCheckpoint(bytes.NewReader(encodeCheckpoint(t, c)))
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if got.DoneCount() != 0 || got.ShardCount != 3 || got.Acc.Devices() != 0 {
		t.Errorf("empty checkpoint decoded to %d done, %d shards, %d devices",
			got.DoneCount(), got.ShardCount, got.Acc.Devices())
	}
}
