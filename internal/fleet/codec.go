// Shard wire codec: a stable, canonical encoding of Accumulator state so
// campaign shards can cross process boundaries and still merge to the
// exact bytes the in-process streamed path produces.
//
// The accumulator's whole summary is integral (µ-scaled fixed-point sums
// and integer histogram counts — see stream.go), so serializing it is
// lossless by construction: the wire document carries the integers
// themselves, never derived floats. Decoding rebuilds identical state,
// and because integer merging commutes, shard accumulators produced by
// separate worker processes merge — in shard order, per the determinism
// contract — to the same state as one process folding every device.
//
// The encoding is canonical as well as stable: histogram bins are
// emitted in ascending bin order and per-profile shards in ascending
// name order, so encoding the same accumulator state always yields the
// same bytes. That makes byte comparison of encoded shards a valid
// equality test, which the codec property tests and fuzz target rely on.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"ccdem/internal/obs"
)

// shardWireVersion is the version tag of both the accumulator and shard
// documents; decoders reject anything else.
const shardWireVersion = 1

// wireHist is one sparse histogram on the wire: its bin resolution, total
// count, and the occupied bins as [bin, count] pairs in ascending bin
// order.
type wireHist struct {
	PerUnit float64    `json:"per_unit"`
	N       int64      `json:"n"`
	Bins    [][2]int64 `json:"bins"`
}

// wireProfileAcc is one per-user-class shard: the device count and the
// µ-scaled sums behind the per-profile means.
type wireProfileAcc struct {
	Name        string `json:"name"`
	Devices     int64  `json:"devices"`
	SavedMW     int64  `json:"saved_mw_u"`
	SavedPct    int64  `json:"saved_pct_u"`
	Quality     int64  `json:"quality_u"`
	TrueQuality int64  `json:"true_quality_u"`
	ExtraHours  int64  `json:"extra_hours_u"`
}

// wireAccumulator is the complete integral summary state. The _u suffix
// marks µ-scaled fixed-point sums (value × 1e6, rounded once at Add
// time).
type wireAccumulator struct {
	Version     int   `json:"version"`
	Devices     int64 `json:"devices"`
	BaselineMW  int64 `json:"baseline_mw_u"`
	ManagedMW   int64 `json:"managed_mw_u"`
	SavedMW     int64 `json:"saved_mw_u"`
	SavedPct    int64 `json:"saved_pct_u"`
	Quality     int64 `json:"quality_u"`
	TrueQuality int64 `json:"true_quality_u"`
	ExtraHours  int64 `json:"extra_hours_u"`

	SavedPctHist    wireHist `json:"saved_pct_hist"`
	QualityHist     wireHist `json:"quality_hist"`
	TrueQualityHist wireHist `json:"true_quality_hist"`
	ExtraHoursHist  wireHist `json:"extra_hours_hist"`

	Profiles []wireProfileAcc `json:"profiles"`
}

// toWire flattens a histogram into its canonical wire form.
func (h *histogram) toWire() wireHist {
	w := wireHist{PerUnit: h.perUnit, N: h.n, Bins: make([][2]int64, 0, len(h.bins))}
	for _, b := range h.sortedBins() {
		w.Bins = append(w.Bins, [2]int64{int64(b), h.bins[b]})
	}
	return w
}

// histFromWire validates and rebuilds one histogram. perUnit is the
// resolution the field must carry at this wire version.
func histFromWire(name string, w wireHist, perUnit float64) (histogram, error) {
	if w.PerUnit != perUnit {
		return histogram{}, fmt.Errorf("fleet: shard codec: %s: per_unit %v, want %v", name, w.PerUnit, perUnit)
	}
	h := newHistogram(perUnit)
	var sum int64
	prev := int64(math.MinInt64)
	for _, bc := range w.Bins {
		bin, count := bc[0], bc[1]
		if bin < math.MinInt32 || bin > math.MaxInt32 {
			return histogram{}, fmt.Errorf("fleet: shard codec: %s: bin %d out of range", name, bin)
		}
		if bin <= prev {
			return histogram{}, fmt.Errorf("fleet: shard codec: %s: bins not in strictly ascending order at %d", name, bin)
		}
		if count <= 0 {
			return histogram{}, fmt.Errorf("fleet: shard codec: %s: non-positive count %d for bin %d", name, count, bin)
		}
		prev = bin
		h.bins[int32(bin)] = count
		sum += count
	}
	if sum != w.N {
		return histogram{}, fmt.Errorf("fleet: shard codec: %s: bin counts sum to %d, header says %d", name, sum, w.N)
	}
	h.n = w.N
	return h, nil
}

// toWire flattens the accumulator into its canonical wire form.
func (a *Accumulator) toWire() wireAccumulator {
	w := wireAccumulator{
		Version:     shardWireVersion,
		Devices:     a.devices,
		BaselineMW:  a.baselineMW,
		ManagedMW:   a.managedMW,
		SavedMW:     a.savedMW,
		SavedPct:    a.savedPct,
		Quality:     a.quality,
		TrueQuality: a.trueQuality,
		ExtraHours:  a.extraHours,

		SavedPctHist:    a.savedPctH.toWire(),
		QualityHist:     a.qualityH.toWire(),
		TrueQualityHist: a.trueQualityH.toWire(),
		ExtraHoursHist:  a.extraHoursH.toWire(),
	}
	names := make([]string, 0, len(a.profiles))
	for name := range a.profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pa := a.profiles[name]
		w.Profiles = append(w.Profiles, wireProfileAcc{
			Name:        name,
			Devices:     pa.devices,
			SavedMW:     pa.savedMW,
			SavedPct:    pa.savedPct,
			Quality:     pa.quality,
			TrueQuality: pa.trueQuality,
			ExtraHours:  pa.extraHours,
		})
	}
	return w
}

// accFromWire validates the document's integral invariants and rebuilds
// the accumulator. Every histogram must carry exactly one entry per
// folded device, and the per-profile device counts must partition the
// total — the properties Add maintains, enforced here so a corrupted or
// hand-forged shard cannot smuggle inconsistent state into a merge.
func accFromWire(w wireAccumulator) (*Accumulator, error) {
	if w.Version != shardWireVersion {
		return nil, fmt.Errorf("fleet: shard codec: unsupported version %d", w.Version)
	}
	if w.Devices < 0 {
		return nil, fmt.Errorf("fleet: shard codec: negative device count %d", w.Devices)
	}
	a := NewAccumulator()
	a.devices = w.Devices
	a.baselineMW = w.BaselineMW
	a.managedMW = w.ManagedMW
	a.savedMW = w.SavedMW
	a.savedPct = w.SavedPct
	a.quality = w.Quality
	a.trueQuality = w.TrueQuality
	a.extraHours = w.ExtraHours

	var err error
	if a.savedPctH, err = histFromWire("saved_pct_hist", w.SavedPctHist, pctBinsPerUnit); err != nil {
		return nil, err
	}
	if a.qualityH, err = histFromWire("quality_hist", w.QualityHist, pctBinsPerUnit); err != nil {
		return nil, err
	}
	if a.trueQualityH, err = histFromWire("true_quality_hist", w.TrueQualityHist, pctBinsPerUnit); err != nil {
		return nil, err
	}
	if a.extraHoursH, err = histFromWire("extra_hours_hist", w.ExtraHoursHist, hoursBinsPerUnit); err != nil {
		return nil, err
	}
	for _, h := range []struct {
		name string
		n    int64
	}{
		{"saved_pct_hist", a.savedPctH.n},
		{"quality_hist", a.qualityH.n},
		{"true_quality_hist", a.trueQualityH.n},
		{"extra_hours_hist", a.extraHoursH.n},
	} {
		if h.n != w.Devices {
			return nil, fmt.Errorf("fleet: shard codec: %s holds %d samples for %d devices", h.name, h.n, w.Devices)
		}
	}
	var profileDevices int64
	prev := ""
	for _, wp := range w.Profiles {
		if wp.Name == "" {
			return nil, fmt.Errorf("fleet: shard codec: profile with empty name")
		}
		if wp.Name <= prev {
			return nil, fmt.Errorf("fleet: shard codec: profiles not in strictly ascending name order at %q", wp.Name)
		}
		if wp.Devices <= 0 {
			return nil, fmt.Errorf("fleet: shard codec: profile %s: non-positive device count %d", wp.Name, wp.Devices)
		}
		prev = wp.Name
		profileDevices += wp.Devices
		a.profiles[wp.Name] = &profileAccumulator{
			devices:     wp.Devices,
			savedMW:     wp.SavedMW,
			savedPct:    wp.SavedPct,
			quality:     wp.Quality,
			trueQuality: wp.TrueQuality,
			extraHours:  wp.ExtraHours,
		}
	}
	if profileDevices != w.Devices {
		return nil, fmt.Errorf("fleet: shard codec: profile shards hold %d devices, total is %d", profileDevices, w.Devices)
	}
	return a, nil
}

// Encode writes the accumulator's canonical wire document. Identical
// accumulator state always encodes to identical bytes.
func (a *Accumulator) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(a.toWire())
}

// DecodeAccumulator parses and validates an accumulator document.
// Decode(Encode(a)) reconstructs state bit-identical to a: merging and
// finalizing decoded accumulators yields the same bytes as the originals.
func DecodeAccumulator(r io.Reader) (*Accumulator, error) {
	var w wireAccumulator
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("fleet: shard codec: %w", err)
	}
	return accFromWire(w)
}

// Shard is one worker process's share of a campaign: which contiguous
// slice of the device index space it covered, the accumulator it folded,
// and the devices that failed inside the slice. ProfileOrder carries the
// cohort's profile declaration order so the central merge can finalize
// the aggregate with the same per-profile breakdown order as a
// single-process run, without re-reading the spec.
//
// Spans is a telemetry sidecar: wall-clock stage spans ("run", "encode")
// the worker recorded about itself, relative to its own shard start. It
// rides the wire so a multi-process campaign can assemble one trace, but
// it is explicitly outside the determinism contract — spans never feed
// the merged Result, and a span-free shard encodes to the same bytes it
// did before spans existed.
type Shard struct {
	Index         int
	Count         int
	CohortDevices int
	ProfileOrder  []string
	Failed        []DeviceFailure
	Acc           *Accumulator
	Spans         []obs.Span
}

// maxWireSpans bounds the telemetry sidecar: a shard worker records a
// handful of stage spans, so anything bigger is a malformed document.
const maxWireSpans = 4096

// wireSpan is one telemetry span on the wire, microsecond-resolution
// offsets from the worker's shard start.
type wireSpan struct {
	Name    string `json:"name"`
	Worker  int    `json:"worker"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
}

// wireShard is the shard worker's complete output document.
type wireShard struct {
	Version       int             `json:"version"`
	Shard         int             `json:"shard"`
	Of            int             `json:"of"`
	CohortDevices int             `json:"cohort_devices"`
	ProfileOrder  []string        `json:"profile_order"`
	Failed        []DeviceFailure `json:"failed,omitempty"`
	Accumulator   wireAccumulator `json:"accumulator"`
	Spans         []wireSpan      `json:"spans,omitempty"`
}

// Encode writes the shard's wire document.
func (s *Shard) Encode(w io.Writer) error {
	doc := wireShard{
		Version:       shardWireVersion,
		Shard:         s.Index,
		Of:            s.Count,
		CohortDevices: s.CohortDevices,
		ProfileOrder:  s.ProfileOrder,
		Failed:        s.Failed,
		Accumulator:   s.Acc.toWire(),
	}
	for _, sp := range s.Spans {
		doc.Spans = append(doc.Spans, wireSpan{
			Name:    sp.Name,
			Worker:  sp.Worker,
			StartUS: int64(sp.Start / time.Microsecond),
			EndUS:   int64(sp.End / time.Microsecond),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// DecodeShard parses and validates a shard document: the shard position
// must be coherent, the profile order duplicate-free and covering every
// profile the accumulator saw, and the accumulator plus failure rows must
// account for exactly the shard's slice of the device index space.
func DecodeShard(r io.Reader) (*Shard, error) {
	var doc wireShard
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("fleet: shard codec: %w", err)
	}
	if doc.Version != shardWireVersion {
		return nil, fmt.Errorf("fleet: shard codec: unsupported version %d", doc.Version)
	}
	if doc.Of < 1 || doc.Shard < 0 || doc.Shard >= doc.Of {
		return nil, fmt.Errorf("fleet: shard codec: invalid shard position %d/%d", doc.Shard, doc.Of)
	}
	if doc.CohortDevices <= 0 {
		return nil, fmt.Errorf("fleet: shard codec: non-positive cohort device count %d", doc.CohortDevices)
	}
	if len(doc.ProfileOrder) == 0 {
		return nil, fmt.Errorf("fleet: shard codec: empty profile order")
	}
	known := make(map[string]bool, len(doc.ProfileOrder))
	for _, name := range doc.ProfileOrder {
		if name == "" {
			return nil, fmt.Errorf("fleet: shard codec: empty profile name in profile order")
		}
		if known[name] {
			return nil, fmt.Errorf("fleet: shard codec: duplicate profile %q in profile order", name)
		}
		known[name] = true
	}
	acc, err := accFromWire(doc.Accumulator)
	if err != nil {
		return nil, err
	}
	for name := range acc.profiles {
		if !known[name] {
			return nil, fmt.Errorf("fleet: shard codec: accumulator profile %q absent from profile order", name)
		}
	}
	lo, hi := shardRange(doc.CohortDevices, doc.Shard, doc.Of)
	if got := acc.devices + int64(len(doc.Failed)); got != int64(hi-lo) {
		return nil, fmt.Errorf("fleet: shard codec: shard %d/%d accounts for %d devices, slice [%d,%d) holds %d",
			doc.Shard, doc.Of, got, lo, hi, hi-lo)
	}
	seen := make(map[int]bool, len(doc.Failed))
	for _, f := range doc.Failed {
		if f.Device < lo || f.Device >= hi {
			return nil, fmt.Errorf("fleet: shard codec: failed device %d outside shard slice [%d,%d)", f.Device, lo, hi)
		}
		if seen[f.Device] {
			return nil, fmt.Errorf("fleet: shard codec: duplicate failed device %d", f.Device)
		}
		seen[f.Device] = true
	}
	if len(doc.Spans) > maxWireSpans {
		return nil, fmt.Errorf("fleet: shard codec: %d telemetry spans exceed the %d cap", len(doc.Spans), maxWireSpans)
	}
	var spans []obs.Span
	for _, sp := range doc.Spans {
		if sp.Name == "" {
			return nil, fmt.Errorf("fleet: shard codec: telemetry span with empty name")
		}
		if sp.Worker < 0 {
			return nil, fmt.Errorf("fleet: shard codec: span %q: negative worker %d", sp.Name, sp.Worker)
		}
		if sp.StartUS < 0 || sp.EndUS < sp.StartUS {
			return nil, fmt.Errorf("fleet: shard codec: span %q: invalid interval [%d,%d]us", sp.Name, sp.StartUS, sp.EndUS)
		}
		spans = append(spans, obs.Span{
			Name:   sp.Name,
			Worker: sp.Worker,
			Start:  time.Duration(sp.StartUS) * time.Microsecond,
			End:    time.Duration(sp.EndUS) * time.Microsecond,
		})
	}
	return &Shard{
		Index:         doc.Shard,
		Count:         doc.Of,
		CohortDevices: doc.CohortDevices,
		ProfileOrder:  doc.ProfileOrder,
		Failed:        doc.Failed,
		Acc:           acc,
		Spans:         spans,
	}, nil
}

// MergeShards folds a campaign's shard set into the final result,
// merging accumulators in ascending shard order — the distributed
// counterpart of the in-process streamed path merging worker shards in
// worker order. Because the shard state is integral, the aggregate is
// byte-identical to a single process running the whole cohort. The set
// must hold exactly one shard per index of one consistent campaign.
// Shards and their accumulators must not be used afterwards.
func MergeShards(shards []*Shard) (*Result, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: merge: no shards")
	}
	ref := shards[0]
	if ref.Count != len(shards) {
		return nil, fmt.Errorf("fleet: merge: have %d shards of a %d-way campaign", len(shards), ref.Count)
	}
	byIndex := make([]*Shard, len(shards))
	for _, s := range shards {
		if s.Count != ref.Count || s.CohortDevices != ref.CohortDevices {
			return nil, fmt.Errorf("fleet: merge: shard %d/%d (%d devices) inconsistent with shard %d/%d (%d devices)",
				s.Index, s.Count, s.CohortDevices, ref.Index, ref.Count, ref.CohortDevices)
		}
		if len(s.ProfileOrder) != len(ref.ProfileOrder) {
			return nil, fmt.Errorf("fleet: merge: shard %d profile order differs", s.Index)
		}
		for i, name := range s.ProfileOrder {
			if name != ref.ProfileOrder[i] {
				return nil, fmt.Errorf("fleet: merge: shard %d profile order differs at %q", s.Index, name)
			}
		}
		if s.Index < 0 || s.Index >= len(byIndex) || byIndex[s.Index] != nil {
			return nil, fmt.Errorf("fleet: merge: duplicate or out-of-range shard index %d", s.Index)
		}
		byIndex[s.Index] = s
	}
	merged := NewAccumulator()
	res := &Result{}
	for _, s := range byIndex {
		merged.Merge(s.Acc)
		res.Failed = append(res.Failed, s.Failed...)
	}
	sort.Slice(res.Failed, func(i, j int) bool { return res.Failed[i].Device < res.Failed[j].Device })
	if merged.Devices() == 0 {
		return nil, fmt.Errorf("fleet: all %d devices failed", ref.CohortDevices)
	}
	profiles := make([]Profile, len(ref.ProfileOrder))
	for i, name := range ref.ProfileOrder {
		profiles[i] = Profile{Name: name}
	}
	res.Aggregate = merged.Aggregate(profiles)
	res.Aggregate.FailedDevices = len(res.Failed)
	return res, nil
}

// ParseShard parses an "index/count" shard position ("0/2", "1/2", ...).
func ParseShard(s string) (index, count int, err error) {
	is, cs, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("fleet: shard position %q not in index/count form", s)
	}
	index, errI := strconv.Atoi(is)
	count, errC := strconv.Atoi(cs)
	if errI != nil || errC != nil {
		return 0, 0, fmt.Errorf("fleet: shard position %q not in index/count form", s)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("fleet: invalid shard position %d/%d", index, count)
	}
	return index, count, nil
}
