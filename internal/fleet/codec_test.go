package fleet

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// encodeBytes is the accumulator's canonical wire document as a string.
func encodeBytes(t *testing.T, a *Accumulator) string {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// decodeString round-trips an accumulator through the wire.
func decodeString(t *testing.T, doc string) *Accumulator {
	t.Helper()
	a, err := DecodeAccumulator(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, doc)
	}
	return a
}

// TestAccumulatorCodecRoundTrip is the codec's core property, mandated by
// the determinism contract: for random shard contents at any shard count,
// merging decoded round-tripped shards in shard order is bit-identical —
// same encoded bytes, same finalized aggregate — to merging the originals.
func TestAccumulatorCodecRoundTrip(t *testing.T) {
	profiles := []Profile{{Name: "messenger"}, {Name: "browser"}, {Name: "gamer"}, {Name: "viewer"}}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		results := randomResults(rng, 1+rng.Intn(300))
		nShards := 1 + rng.Intn(6)

		direct := make([]*Accumulator, nShards)
		wired := make([]*Accumulator, nShards)
		for i := range direct {
			direct[i] = NewAccumulator()
		}
		for _, r := range results {
			direct[rng.Intn(nShards)].Add(r)
		}
		for i, a := range direct {
			doc := encodeBytes(t, a)
			// Canonical encoding: encoding the decoded state reproduces
			// the document byte for byte.
			wired[i] = decodeString(t, doc)
			if re := encodeBytes(t, wired[i]); re != doc {
				t.Fatalf("trial %d shard %d: re-encoded document differs:\n%s\nvs\n%s", trial, i, re, doc)
			}
		}

		mergedDirect := NewAccumulator()
		mergedWired := NewAccumulator()
		for i := 0; i < nShards; i++ { // shard order, per the contract
			mergedDirect.Merge(direct[i])
			mergedWired.Merge(wired[i])
		}
		if got, want := encodeBytes(t, mergedWired), encodeBytes(t, mergedDirect); got != want {
			t.Fatalf("trial %d (%d shards): merged wire state differs:\n%s\nvs\n%s", trial, nShards, got, want)
		}
		if got, want := mergedWired.Aggregate(profiles), mergedDirect.Aggregate(profiles); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged aggregate differs:\n%+v\nvs\n%+v", trial, got, want)
		}
	}
}

func TestAccumulatorCodecEmpty(t *testing.T) {
	doc := encodeBytes(t, NewAccumulator())
	a := decodeString(t, doc)
	if a.Devices() != 0 {
		t.Fatalf("decoded empty accumulator holds %d devices", a.Devices())
	}
	if re := encodeBytes(t, a); re != doc {
		t.Fatalf("empty round trip differs: %s vs %s", re, doc)
	}
}

// mutateDoc applies fn to the parsed document and re-serializes it — the
// corruption lever of the reject tables.
func mutateDoc(t *testing.T, doc string, fn func(m map[string]any)) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(doc), &m); err != nil {
		t.Fatal(err)
	}
	fn(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestDecodeAccumulatorRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	acc := NewAccumulator()
	for _, r := range randomResults(rng, 50) {
		acc.Add(r)
	}
	var buf bytes.Buffer
	if err := acc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	if _, err := DecodeAccumulator(strings.NewReader(good)); err != nil {
		t.Fatalf("control: valid document rejected: %v", err)
	}

	hist := func(m map[string]any, name string) map[string]any { return m[name].(map[string]any) }
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"empty input", "", "EOF"},
		{"not json", "]{[", "invalid character"},
		{"unknown field", mutateDoc(t, good, func(m map[string]any) { m["bogus"] = 1 }), "unknown field"},
		{"bad version", mutateDoc(t, good, func(m map[string]any) { m["version"] = 99 }), "unsupported version"},
		{"negative devices", mutateDoc(t, good, func(m map[string]any) { m["devices"] = -1 }), "negative device count"},
		{"wrong per-unit", mutateDoc(t, good, func(m map[string]any) {
			hist(m, "quality_hist")["per_unit"] = 100
		}), "per_unit"},
		{"count mismatch", mutateDoc(t, good, func(m map[string]any) {
			hist(m, "quality_hist")["n"] = 1
		}), "sum to"},
		{"hist/device mismatch", mutateDoc(t, good, func(m map[string]any) { m["devices"] = 51 }), "samples for"},
		{"unsorted bins", mutateDoc(t, good, func(m map[string]any) {
			h := hist(m, "saved_pct_hist")
			bins := h["bins"].([]any)
			bins[0], bins[1] = bins[1], bins[0]
		}), "ascending"},
		{"zero bin count", mutateDoc(t, good, func(m map[string]any) {
			h := hist(m, "extra_hours_hist")
			bin := h["bins"].([]any)[0].([]any)
			n := h["n"].(float64) - bin[1].(float64)
			bin[1] = 0
			h["n"] = n
		}), "non-positive count"},
		{"profile devices drift", mutateDoc(t, good, func(m map[string]any) {
			p := m["profiles"].([]any)[0].(map[string]any)
			p["devices"] = p["devices"].(float64) + 1
		}), "profile shards hold"},
		{"unsorted profiles", mutateDoc(t, good, func(m map[string]any) {
			ps := m["profiles"].([]any)
			ps[0], ps[1] = ps[1], ps[0]
		}), "ascending name order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeAccumulator(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("corrupted document accepted:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeShardRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	acc := NewAccumulator()
	for i, r := range randomResults(rng, 25) {
		r.Device = i
		acc.Add(r)
	}
	shard := &Shard{
		Index:         0,
		Count:         2,
		CohortDevices: 50,
		ProfileOrder:  []string{"messenger", "browser", "gamer", "viewer"},
		Acc:           acc,
	}
	var buf bytes.Buffer
	if err := shard.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	if _, err := DecodeShard(strings.NewReader(good)); err != nil {
		t.Fatalf("control: valid shard rejected: %v", err)
	}

	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty input", "", "EOF"},
		{"bad version", mutateDoc(t, good, func(m map[string]any) { m["version"] = 2 }), "unsupported version"},
		{"shard out of range", mutateDoc(t, good, func(m map[string]any) { m["shard"] = 2 }), "invalid shard position"},
		{"zero of", mutateDoc(t, good, func(m map[string]any) { m["of"] = 0 }), "invalid shard position"},
		{"bad cohort size", mutateDoc(t, good, func(m map[string]any) { m["cohort_devices"] = 0 }), "non-positive cohort device count"},
		{"empty profile order", mutateDoc(t, good, func(m map[string]any) { m["profile_order"] = []any{} }), "empty profile order"},
		{"duplicate profile", mutateDoc(t, good, func(m map[string]any) {
			m["profile_order"] = []any{"messenger", "messenger", "browser", "gamer", "viewer"}
		}), "duplicate profile"},
		{"profile not in order", mutateDoc(t, good, func(m map[string]any) {
			m["profile_order"] = []any{"messenger", "browser", "gamer"}
		}), "absent from profile order"},
		{"slice accounting", mutateDoc(t, good, func(m map[string]any) { m["cohort_devices"] = 60 }), "accounts for"},
		{"failure outside slice", mutateDoc(t, good, func(m map[string]any) {
			m["cohort_devices"] = 52
			m["failed"] = []any{map[string]any{"device": 40, "error": "boom"}}
		}), "outside shard slice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeShard(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("corrupted shard accepted:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		in           string
		index, count int
		ok           bool
	}{
		{"0/1", 0, 1, true},
		{"0/2", 0, 2, true},
		{"1/2", 1, 2, true},
		{"7/8", 7, 8, true},
		{"", 0, 0, false},
		{"1", 0, 0, false},
		{"2/2", 0, 0, false},
		{"-1/2", 0, 0, false},
		{"0/0", 0, 0, false},
		{"a/2", 0, 0, false},
		{"0/2x", 0, 0, false},
		{"0/2/3", 0, 0, false},
	}
	for _, tc := range cases {
		index, count, err := ParseShard(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseShard(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && (index != tc.index || count != tc.count) {
			t.Errorf("ParseShard(%q) = %d/%d, want %d/%d", tc.in, index, count, tc.index, tc.count)
		}
	}
}

// FuzzAccumulatorCodec drives both halves of the codec contract: hostile
// bytes must never panic the decoders, and accumulators built from
// fuzzer-chosen contents must survive the round trip bit-identically —
// Merge(Decode(Encode(a)), Decode(Encode(b))) equals Merge(a, b) in both
// wire bytes and finalized aggregate, merged in shard order.
func FuzzAccumulatorCodec(f *testing.F) {
	f.Add([]byte("seed"), int64(1), uint8(2))
	f.Add([]byte(`{"version":1}`), int64(42), uint8(5))
	var buf bytes.Buffer
	acc := NewAccumulator()
	acc.Add(DeviceResult{Device: 0, Profile: "p", SavedPct: 12.5, QualityPct: 99, TrueQualityPct: 98, ExtraHours: 0.5})
	if err := acc.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), int64(7), uint8(3))

	profiles := []Profile{{Name: "messenger"}, {Name: "browser"}, {Name: "gamer"}, {Name: "viewer"}}
	f.Fuzz(func(t *testing.T, data []byte, seed int64, nShards uint8) {
		// Hostile-input half: decoders must reject or accept, never panic.
		if a, err := DecodeAccumulator(bytes.NewReader(data)); err == nil {
			// Whatever was accepted must re-encode canonically.
			var w1, w2 bytes.Buffer
			if err := a.Encode(&w1); err != nil {
				t.Fatal(err)
			}
			b, err := DecodeAccumulator(bytes.NewReader(w1.Bytes()))
			if err != nil {
				t.Fatalf("accepted document failed re-decode: %v", err)
			}
			if err := b.Encode(&w2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
				t.Fatalf("accepted document not canonical:\n%s\nvs\n%s", w1.String(), w2.String())
			}
		}
		_, _ = DecodeShard(bytes.NewReader(data))

		// Property half: random shard contents round-trip bit-identically.
		n := int(nShards)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		results := randomResults(rng, 1+rng.Intn(60))
		direct := make([]*Accumulator, n)
		wired := make([]*Accumulator, n)
		for i := range direct {
			direct[i] = NewAccumulator()
		}
		for _, r := range results {
			direct[rng.Intn(n)].Add(r)
		}
		for i, a := range direct {
			var doc bytes.Buffer
			if err := a.Encode(&doc); err != nil {
				t.Fatal(err)
			}
			w, err := DecodeAccumulator(bytes.NewReader(doc.Bytes()))
			if err != nil {
				t.Fatalf("shard %d: round trip rejected: %v", i, err)
			}
			wired[i] = w
		}
		mergedDirect, mergedWired := NewAccumulator(), NewAccumulator()
		for i := 0; i < n; i++ {
			mergedDirect.Merge(direct[i])
			mergedWired.Merge(wired[i])
		}
		var db, wb bytes.Buffer
		if err := mergedDirect.Encode(&db); err != nil {
			t.Fatal(err)
		}
		if err := mergedWired.Encode(&wb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(db.Bytes(), wb.Bytes()) {
			t.Fatalf("merged wire state differs:\n%s\nvs\n%s", db.String(), wb.String())
		}
		if got, want := mergedWired.Aggregate(profiles), mergedDirect.Aggregate(profiles); !reflect.DeepEqual(got, want) {
			t.Fatalf("merged aggregate differs:\n%+v\nvs\n%+v", got, want)
		}
	})
}
