package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/battery"
	"ccdem/internal/core"
	"ccdem/internal/fault"
	"ccdem/internal/input"
	"ccdem/internal/obs"
	"ccdem/internal/sim"
)

// Screen dimensions of the reproduction's Galaxy S3 target (the device
// defaults of ccdem.Config).
const (
	screenW = 720
	screenH = 1280
)

// AppShare is one component of a profile's usage mix: a catalog
// application and its relative share of the user's screen-on time.
type AppShare struct {
	Name   string
	Weight float64
}

// Profile declaratively describes one class of user in a fleet. A device
// assigned to the profile splits its session across the profile's apps in
// weight proportion, replaying an independent deterministic Monkey script
// per app segment.
type Profile struct {
	Name string
	// Weight is the profile's share of the fleet's devices (relative;
	// normalized across profiles).
	Weight float64
	// Apps is the usage mix drawn from the 30-app catalog.
	Apps []AppShare
	// TouchIntensity scales interaction density: the Monkey's mean
	// think-time between gestures is divided by it. 0 means 1 (the
	// default pacing); 2 means a user touching twice as often.
	TouchIntensity float64
	// SessionJitter varies session length per device: each device's
	// session is uniform in [1-j, 1+j] × the cohort session. Must be in
	// [0, 1).
	SessionJitter float64
}

// Validate reports configuration errors, including apps missing from the
// catalog.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("fleet: profile with empty name")
	}
	if p.Weight <= 0 {
		return fmt.Errorf("fleet: profile %s: non-positive weight %v", p.Name, p.Weight)
	}
	if len(p.Apps) == 0 {
		return fmt.Errorf("fleet: profile %s: empty app mix", p.Name)
	}
	for _, a := range p.Apps {
		if a.Weight <= 0 {
			return fmt.Errorf("fleet: profile %s: app %s: non-positive weight %v", p.Name, a.Name, a.Weight)
		}
		if _, ok := app.ByName(a.Name); !ok {
			return fmt.Errorf("fleet: profile %s: app %q not in catalog", p.Name, a.Name)
		}
	}
	if p.TouchIntensity < 0 {
		return fmt.Errorf("fleet: profile %s: negative touch intensity %v", p.Name, p.TouchIntensity)
	}
	if p.SessionJitter < 0 || p.SessionJitter >= 1 {
		return fmt.Errorf("fleet: profile %s: session jitter %v out of [0,1)", p.Name, p.SessionJitter)
	}
	return nil
}

// Cohort describes a population of simulated devices: how many, how they
// are seeded, what they run, and which managed configuration is compared
// against the unmanaged baseline on every device.
type Cohort struct {
	// Devices is the number of simulated devices.
	Devices int
	// Seed is the fleet seed; device i derives its own seed via
	// DeviceSeed(Seed, i).
	Seed int64
	// Session is the nominal screen-on session simulated per device
	// (before per-profile jitter). Default 60 s.
	Session sim.Time
	// Governor is the managed configuration measured against the
	// baseline on each device. GovernorOff (the zero value) selects the
	// paper's full system, GovernorSectionBoost.
	Governor ccdem.GovernorMode
	// MeterSamples sets the governor's comparison grid. Default 9216.
	MeterSamples int
	// Pack converts mean power into battery-hours. Zero value defaults
	// to battery.GalaxyS3Pack.
	Pack battery.Pack
	// Profiles is the population's user-class mix.
	Profiles []Profile
	// Obs, when non-nil, collects per-device observability: each device's
	// *managed* session (the configuration under study) records decision
	// events and metrics under one collector track, with its per-app
	// segments concatenated on a single timeline. Baseline segments run
	// uninstrumented so the merged metrics describe the managed system.
	// Nil disables observability at zero cost.
	Obs *obs.Collector

	// Faults, when non-nil, injects deterministic faults into every
	// device's *managed* segments (baselines stay clean, so savings are
	// measured against an unfaulted reference). Each segment's injector
	// is seeded from (fleet seed, device, segment), keeping faulty runs
	// bit-identical at any worker count.
	Faults *fault.Plan
	// Hardened enables governor fail-safe hardening (core.DefaultHardening)
	// on managed segments.
	Hardened bool
	// NaivePixels forces every device onto the brute-force pixel pipeline
	// (ccdem.Config.NaivePixels): full-rect composition and full-lattice
	// grid comparison. Campaign aggregates are byte-identical to the
	// default tile-tracked pipeline; the knob exists as the differential
	// oracle for CI and the tile-vs-naive equality tests.
	NaivePixels bool
	// NoPalette disables the palette-compressed tile representation and
	// the app state memo on every device (ccdem.Config.NoPalette) while
	// keeping the rest of the tile pipeline. Campaign aggregates are
	// byte-identical either way; the knob is the differential oracle for
	// the palette layer, as NaivePixels is for the tile layer.
	NoPalette bool
	// FailFast aborts the campaign on the first device failure (the old
	// behaviour). The default keeps going: surviving devices aggregate,
	// failed ones are reported in Result.Failed.
	FailFast bool

	// ShardIndex/ShardCount restrict the run to the cohort's ShardIndex-th
	// of ShardCount contiguous device-index ranges, so one campaign can
	// split across worker processes (cmd/ccdem-fleet -shard, internal/svc).
	// Device seeding depends only on (Seed, global device index), and the
	// accumulator state is integral, so shard runs merged in shard order
	// (MergeShards) reproduce the unsharded aggregate bit for bit.
	// ShardCount 0 (the zero value) runs the whole cohort.
	ShardIndex int
	ShardCount int

	// Stream aggregates on the fly instead of retaining per-device rows:
	// each result is folded into its worker's Accumulator shard as it
	// completes and the shards are merged when the run ends, so the
	// campaign's memory footprint is O(workers), independent of Devices.
	// Result.Devices stays nil; Result.Aggregate is byte-identical to the
	// retained mode's at any worker count (the shard state is integral,
	// so the partition and merge order cannot matter).
	Stream bool
	// Sink, when non-nil in Stream mode, additionally receives every
	// surviving device's result as it completes — the hook for emitting
	// per-device CSV rows without retaining them. Calls are serialized
	// but arrive in completion order, which depends on worker scheduling;
	// rows carry their Device index for re-ordering downstream. The
	// aggregate remains deterministic regardless. Ignored without Stream.
	Sink func(DeviceResult)

	// testHook, when set, runs at the start of each device task — the
	// tests' lever for injecting per-device panics and hangs.
	testHook func(device int)
}

func (c *Cohort) applyDefaults() {
	if c.Session == 0 {
		c.Session = 60 * sim.Second
	}
	if c.Governor == ccdem.GovernorOff {
		c.Governor = ccdem.GovernorSectionBoost
	}
	if c.MeterSamples == 0 {
		c.MeterSamples = 9216
	}
	if c.Pack == (battery.Pack{}) {
		c.Pack = battery.GalaxyS3Pack
	}
	if len(c.Profiles) == 0 {
		c.Profiles = DefaultProfiles()
	}
}

// Validate reports configuration errors (after defaulting).
func (c Cohort) Validate() error {
	if c.Devices <= 0 {
		return fmt.Errorf("fleet: non-positive device count %d", c.Devices)
	}
	if c.Session <= 0 {
		return fmt.Errorf("fleet: non-positive session %v", c.Session)
	}
	if err := c.Pack.Validate(); err != nil {
		return err
	}
	for _, p := range c.Profiles {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.ShardCount < 0 {
		return fmt.Errorf("fleet: negative shard count %d", c.ShardCount)
	}
	if c.ShardCount > 0 {
		if c.ShardIndex < 0 || c.ShardIndex >= c.ShardCount {
			return fmt.Errorf("fleet: shard index %d out of [0,%d)", c.ShardIndex, c.ShardCount)
		}
		if c.ShardCount > c.Devices {
			return fmt.Errorf("fleet: %d shards over %d devices leaves empty shards", c.ShardCount, c.Devices)
		}
	} else if c.ShardIndex != 0 {
		return fmt.Errorf("fleet: shard index %d without a shard count", c.ShardIndex)
	}
	return nil
}

// shardRange is shard index's contiguous slice [lo, hi) of an n-device
// index space split count ways. The cut points are exact integer
// arithmetic, so every process of a sharded campaign computes the same
// partition.
func shardRange(n, index, count int) (lo, hi int) {
	if count <= 1 {
		return 0, n
	}
	return n * index / count, n * (index + 1) / count
}

// DeviceResult is one device's paired measurement: its whole session run
// under the baseline and under the cohort's managed configuration on
// identical scripts.
type DeviceResult struct {
	Device  int    `json:"device"`
	Profile string `json:"profile"`
	// SessionS is the device's jittered session length in seconds.
	SessionS float64 `json:"session_s"`

	BaselineMW float64 `json:"baseline_mw"`
	ManagedMW  float64 `json:"managed_mw"`
	SavedMW    float64 `json:"saved_mw"`
	SavedPct   float64 `json:"saved_pct"`
	// QualityPct is the session-weighted display quality under the
	// managed configuration, in percent.
	QualityPct float64 `json:"quality_pct"`

	BaselineHours float64 `json:"baseline_hours"`
	ManagedHours  float64 `json:"managed_hours"`
	ExtraHours    float64 `json:"extra_hours"`

	// TrueQualityPct is the displayed/intended content ratio of the
	// managed session — meter-independent ground truth, the honest
	// quality metric under fault injection.
	TrueQualityPct float64 `json:"true_quality_pct"`
	// Faults and FailSafes summarize injected faults and fail-safe
	// episodes across the device's managed segments.
	Faults    uint64 `json:"faults,omitempty"`
	FailSafes uint64 `json:"failsafes,omitempty"`
}

// DeviceFailure records one device whose session could not be measured —
// task error, worker panic, or timeout — in a resilient campaign.
type DeviceFailure struct {
	Device int    `json:"device"`
	Err    string `json:"error"`
}

// Result is a completed fleet run: per-device rows in device order (each
// row's Device field holds the original index; failed devices are
// absent), failed-device accounting, and the fleet-wide aggregate over
// the surviving devices.
type Result struct {
	Devices   []DeviceResult  `json:"devices"`
	Failed    []DeviceFailure `json:"failed,omitempty"`
	Aggregate Aggregate       `json:"aggregate"`
}

// deviceLane is one pool worker's recycled simulated device: runSegment
// resets it in place between segment runs instead of rebuilding the
// engine, panel, framebuffers, meter lattices and recorder rings from
// scratch. A lane runs one task at a time (see Pool.RunIndexed), so no
// locking is needed; a nil lane — or an empty one on first use — falls
// back to fresh construction.
type deviceLane struct {
	dev *ccdem.Device
}

// Run expands the cohort into per-device runs, executes them on the pool,
// and aggregates. Results are bit-identical for a given cohort regardless
// of pool.Workers. Unless FailFast is set, a failing device (error, panic
// recovered by the pool, or task timeout) does not abort the campaign:
// the rest of the fleet completes and the failure is reported in
// Result.Failed. An error is returned only when the context was cancelled
// or no device survived.
func (c Cohort) Run(ctx context.Context, pool Pool) (*Result, error) {
	c.applyDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out, err := c.execute(ctx, pool)
	if err != nil {
		return nil, err
	}
	res := &Result{Failed: sortedFailures(out.fails)}
	if c.Stream {
		if out.merged.Devices() == 0 {
			if out.poolErr != nil {
				return nil, out.poolErr
			}
			return nil, fmt.Errorf("fleet: all %d devices failed", c.Devices)
		}
		res.Aggregate = out.merged.Aggregate(c.Profiles)
	} else {
		res.Devices = out.survivors
		if len(res.Devices) == 0 {
			if out.poolErr != nil {
				return nil, out.poolErr
			}
			return nil, fmt.Errorf("fleet: all %d devices failed", c.Devices)
		}
		res.Aggregate = aggregate(res.Devices, c.Profiles)
	}
	res.Aggregate.FailedDevices = len(res.Failed)
	return res, nil
}

// RunShard executes the cohort's shard (ShardIndex of ShardCount) in
// stream mode and returns its wire-encodable shard: the accumulator over
// the slice's surviving devices plus the slice's failures. Unlike Run, a
// shard whose devices all failed is not an error — the central merge
// decides whether the campaign as a whole survived. The profile order is
// captured so MergeShards can finalize without the spec.
func (c Cohort) RunShard(ctx context.Context, pool Pool) (*Shard, error) {
	c.Stream = true
	c.applyDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out, err := c.execute(ctx, pool)
	if err != nil {
		return nil, err
	}
	count := c.ShardCount
	if count < 1 {
		count = 1
	}
	order := make([]string, len(c.Profiles))
	for i, p := range c.Profiles {
		order[i] = p.Name
	}
	return &Shard{
		Index:         c.ShardIndex,
		Count:         count,
		CohortDevices: c.Devices,
		ProfileOrder:  order,
		Failed:        sortedFailures(out.fails),
		Acc:           out.merged,
	}, nil
}

// sortedFailures flattens the sparse failure map into DeviceFailure rows
// in ascending device order.
func sortedFailures(fails map[int]error) []DeviceFailure {
	if len(fails) == 0 {
		return nil
	}
	idx := make([]int, 0, len(fails))
	for i := range fails {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]DeviceFailure, 0, len(idx))
	for _, i := range idx {
		out = append(out, DeviceFailure{Device: i, Err: fails[i].Error()})
	}
	return out
}

// runOutcome is execute's result: the merged stream accumulator (stream
// mode), the surviving rows in device order (retained mode), the sparse
// failure map keyed by global device index, and the pool's joined task
// errors (nil when every device succeeded).
type runOutcome struct {
	merged    *Accumulator
	survivors []DeviceResult
	fails     map[int]error
	poolErr   error
}

// execute runs the cohort's device slice on the pool — the core shared
// by Run and RunShard. The cohort must already be defaulted and
// validated. The returned error is fatal (context cancelled, or first
// failure under FailFast); per-device failures are data, reported in the
// outcome.
func (c Cohort) execute(ctx context.Context, pool Pool) (runOutcome, error) {
	if !c.FailFast {
		// Resilient campaigns observe every failure instead of
		// cancelling the surviving devices on the first one.
		pool.ContinueOnError = true
	}
	// Task j runs global device index lo+j; all bookkeeping below is in
	// local task indices, mapped to global device indices on the way out.
	lo, hi := shardRange(c.Devices, c.ShardIndex, c.ShardCount)
	n := hi - lo
	workers := pool.EffectiveWorkers(n)
	// One recycled device per worker lane. A task timeout disables reuse:
	// an abandoned straggler's goroutine may still be simulating on its
	// lane's device when the next task claims the lane.
	var lanes []deviceLane
	if pool.TaskTimeout <= 0 {
		lanes = make([]deviceLane, workers)
	}
	var (
		mu     sync.Mutex
		sealed bool // set once results are read; late stragglers discarded
		// Retained mode: O(Devices) rows, read back in device order.
		results []DeviceResult
		ok      []bool
		// Stream mode: O(workers) accumulator shards, merged afterwards.
		shards []*Accumulator
		// Failures are sparse in both modes: a million-device campaign
		// tracks only its casualties.
		fails = make(map[int]error)
		// published guards against double-counting a streamed result whose
		// completion raced the task deadline: the pool may have reported
		// the task as timed out even though the fold made it in. Only
		// possible with a TaskTimeout, so only tracked then.
		published map[int]struct{}
	)
	if c.Stream {
		shards = make([]*Accumulator, workers)
		for i := range shards {
			shards[i] = NewAccumulator()
		}
		if pool.TaskTimeout > 0 {
			published = make(map[int]struct{})
		}
	} else {
		results = make([]DeviceResult, n)
		ok = make([]bool, n)
	}
	err := pool.RunIndexed(ctx, n, func(tctx context.Context, j, w int) error {
		i := lo + j
		var lane *deviceLane
		if lanes != nil {
			lane = &lanes[w]
		}
		r, err := c.runDevice(tctx, i, lane)
		mu.Lock()
		defer mu.Unlock()
		if sealed {
			// Timed-out task that finished after abandonment: its slot
			// was already reported as failed.
			return err
		}
		if err != nil {
			err = fmt.Errorf("device %d: %w", i, err)
			fails[j] = err
			return err
		}
		if c.Stream {
			shards[w].Add(r)
			if published != nil && tctx.Err() != nil {
				published[j] = struct{}{}
			}
			if c.Sink != nil {
				c.Sink(r)
			}
		} else {
			results[j] = r
			ok[j] = true
		}
		return nil
	})
	mu.Lock()
	sealed = true
	mu.Unlock()
	if c.FailFast && err != nil {
		return runOutcome{}, err
	}
	if ctx != nil && ctx.Err() != nil {
		return runOutcome{}, ctx.Err()
	}
	// Pool-level failures (recovered panics, timeouts) never reach the
	// closure's bookkeeping; map them back by task index. A streamed
	// result that beat its own timeout report stays counted — mirroring
	// retained mode, where ok[j] wins over a late TimeoutError.
	for _, e := range taskErrors(err) {
		var j int
		switch te := e.(type) {
		case *PanicError:
			j = te.Task
		case *TimeoutError:
			j = te.Task
		default:
			continue
		}
		if j < 0 || j >= n {
			continue
		}
		if _, won := published[j]; won {
			continue
		}
		if !c.Stream && ok[j] {
			continue
		}
		if fails[j] == nil {
			fails[j] = e
		}
	}
	out := runOutcome{fails: make(map[int]error, len(fails)), poolErr: err}
	if c.Stream {
		merged := NewAccumulator()
		for _, s := range shards {
			merged.Merge(s)
		}
		out.merged = merged
	} else {
		for j := range results {
			switch {
			case ok[j]:
				out.survivors = append(out.survivors, results[j])
			case fails[j] == nil:
				fails[j] = errors.New("fleet: device result unavailable")
			}
		}
	}
	for j, e := range fails {
		out.fails[lo+j] = e
	}
	return out, nil
}

// taskErrors flattens an errors.Join tree into its leaves.
func taskErrors(err error) []error {
	if err == nil {
		return nil
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		var out []error
		for _, e := range joined.Unwrap() {
			out = append(out, taskErrors(e)...)
		}
		return out
	}
	return []error{err}
}

// runDevice executes device i's full session: draw a profile and session
// length from the device RNG, split the session across the profile's app
// mix, and measure each segment paired (baseline vs managed) on an
// identical Monkey script. Cancellation is honoured between app segments,
// so fail-fast and Ctrl-C actually stop long campaigns. lane, when
// non-nil, carries the worker's recycled device across segments and
// tasks.
func (c Cohort) runDevice(ctx context.Context, i int, lane *deviceLane) (DeviceResult, error) {
	if c.testHook != nil {
		c.testHook(i)
	}
	rng := rand.New(rand.NewSource(DeviceSeed(c.Seed, i)))
	prof := c.pickProfile(rng)
	session := c.Session
	if prof.SessionJitter > 0 {
		session = sim.Time(float64(session) * (1 + prof.SessionJitter*(2*rng.Float64()-1)))
	}
	var (
		rec *obs.Recorder
		reg *obs.Registry
	)
	if c.Obs != nil {
		// Name formatting is skipped when observability is off — it is a
		// per-device allocation the reused-device steady state must avoid.
		rec, reg = c.Obs.Device(fmt.Sprintf("device %04d (%s)", i, prof.Name))
	}
	var hard *core.HardeningConfig
	if c.Hardened {
		hard = core.DefaultHardening()
	}

	var (
		slices   []battery.UsageSlice
		totalW   float64
		totalDur sim.Time
		quality  float64 // duration-weighted sum
		trueQ    float64 // duration-weighted sum
		r        DeviceResult
	)
	for _, a := range prof.Apps {
		totalW += a.Weight
	}
	for seg, a := range prof.Apps {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return DeviceResult{}, err
			}
		}
		dur := sim.Time(float64(session) * a.Weight / totalW)
		if dur < sim.Second {
			dur = sim.Second
		}
		script, err := c.segmentScript(prof, rng.Int63(), dur)
		if err != nil {
			return DeviceResult{}, err
		}
		params, _ := app.ByName(a.Name) // validated
		base, err := c.runSegment(lane, params, ccdem.GovernorOff, dur, script, nil, nil, nil, nil)
		if err != nil {
			return DeviceResult{}, err
		}
		// Faults hit only the managed configuration; the injector seed
		// folds in device and segment so neither retries nor worker
		// scheduling shift any fault stream.
		var inj *fault.Injector
		if c.Faults != nil {
			inj = fault.New(DeviceSeed(DeviceSeed(c.Seed, i), seg), *c.Faults)
		}
		// Each segment simulates on its own engine starting at zero; the
		// base offset concatenates them into one session timeline.
		rec.SetBase(totalDur)
		managed, err := c.runSegment(lane, params, c.Governor, dur, script, rec, reg, inj, hard)
		if err != nil {
			return DeviceResult{}, err
		}
		slices = append(slices, battery.UsageSlice{
			Name:       a.Name,
			Weight:     dur.Seconds(),
			BaselineMW: base.MeanPowerMW,
			ManagedMW:  managed.MeanPowerMW,
		})
		totalDur += dur
		quality += managed.DisplayQuality * dur.Seconds()
		trueQ += managed.TrueQuality * dur.Seconds()
		r.Faults += managed.FaultsInjected
		r.FailSafes += managed.FailSafeEnters
	}

	est, err := c.Pack.Estimate(battery.Mix{Slices: slices})
	if err != nil {
		return DeviceResult{}, err
	}
	r.Device = i
	r.Profile = prof.Name
	r.SessionS = totalDur.Seconds()
	r.BaselineMW = est.BaselineMW
	r.ManagedMW = est.ManagedMW
	r.SavedMW = est.BaselineMW - est.ManagedMW
	r.QualityPct = 100 * quality / totalDur.Seconds()
	r.TrueQualityPct = 100 * trueQ / totalDur.Seconds()
	r.BaselineHours = est.BaselineHours
	r.ManagedHours = est.ManagedHours
	r.ExtraHours = est.ExtraHours
	if est.BaselineMW > 0 {
		r.SavedPct = 100 * r.SavedMW / est.BaselineMW
	}
	return r, nil
}

// pickProfile draws a profile weighted by Profile.Weight.
func (c Cohort) pickProfile(rng *rand.Rand) Profile {
	total := 0.0
	for _, p := range c.Profiles {
		total += p.Weight
	}
	r := rng.Float64() * total
	for _, p := range c.Profiles {
		r -= p.Weight
		if r < 0 {
			return p
		}
	}
	return c.Profiles[len(c.Profiles)-1]
}

// segmentScript generates the deterministic Monkey script one app segment
// replays under both configurations, paced by the profile's touch
// intensity.
func (c Cohort) segmentScript(prof Profile, seed int64, dur sim.Time) (input.Script, error) {
	cfg := input.DefaultMonkeyConfig()
	if ti := prof.TouchIntensity; ti > 0 && ti != 1 {
		cfg.MeanIdle = sim.Time(float64(cfg.MeanIdle) / ti)
		if cfg.MeanIdle < 2*cfg.MinIdle {
			cfg.MinIdle = cfg.MeanIdle / 2
		}
	}
	mk, err := input.NewMonkey(seed, cfg)
	if err != nil {
		return input.Script{}, err
	}
	return mk.Script(dur, screenW, screenH), nil
}

// runSegment measures one app segment under one governor mode, optionally
// instrumented with a recorder and metrics registry, fault-injected, and
// hardened. With a lane, the worker's device is Reset in place instead of
// constructed — the steady-state cohort path allocates per segment only
// what the script and stats inherently need.
func (c Cohort) runSegment(lane *deviceLane, p app.Params, mode ccdem.GovernorMode, dur sim.Time, script input.Script, rec *obs.Recorder, reg *obs.Registry, inj *fault.Injector, hard *core.HardeningConfig) (ccdem.Stats, error) {
	cfg := ccdem.Config{
		Width: screenW, Height: screenH,
		Governor:     mode,
		MeterSamples: c.MeterSamples,
		NaivePixels:  c.NaivePixels,
		NoPalette:    c.NoPalette,
		Recorder:     rec,
		Metrics:      reg,
		Faults:       inj,
		Hardening:    hard,
	}
	var dev *ccdem.Device
	if lane != nil && lane.dev != nil {
		dev = lane.dev
		if err := dev.Reset(cfg); err != nil {
			// A failed reset leaves the device in an unspecified state;
			// drop it so the next segment constructs afresh.
			lane.dev = nil
			return ccdem.Stats{}, err
		}
	} else {
		var err error
		dev, err = ccdem.NewDevice(cfg)
		if err != nil {
			return ccdem.Stats{}, err
		}
		if lane != nil {
			lane.dev = dev
		}
	}
	if _, err := dev.InstallApp(p); err != nil {
		return ccdem.Stats{}, err
	}
	dev.PlayScript(script)
	dev.Run(dur)
	dev.FinishObs()
	return dev.Stats(), nil
}

// DefaultProfiles models a plausible smartphone population over the
// paper's 30-app catalog: messaging-heavy users, browsers/shoppers,
// gamers, and passive viewers. Weights are indicative, not census data;
// cohort spec files (ReadSpec) replace them for real studies.
func DefaultProfiles() []Profile {
	return []Profile{
		{
			Name: "messenger", Weight: 0.35, TouchIntensity: 1.4, SessionJitter: 0.3,
			Apps: []AppShare{
				{Name: "KakaoTalk", Weight: 3},
				{Name: "Facebook", Weight: 2},
				{Name: "Naver", Weight: 1},
			},
		},
		{
			Name: "browser", Weight: 0.25, TouchIntensity: 1, SessionJitter: 0.3,
			Apps: []AppShare{
				{Name: "Naver", Weight: 2},
				{Name: "Daum", Weight: 1},
				{Name: "Coupang", Weight: 1},
				{Name: "Auction", Weight: 1},
			},
		},
		{
			Name: "gamer", Weight: 0.25, TouchIntensity: 1.8, SessionJitter: 0.4,
			Apps: []AppShare{
				{Name: "Jelly Splash", Weight: 2},
				{Name: "Cookie Run", Weight: 2},
				{Name: "Asphalt 8", Weight: 1},
			},
		},
		{
			Name: "viewer", Weight: 0.15, TouchIntensity: 0.5, SessionJitter: 0.2,
			Apps: []AppShare{
				{Name: "MX Player", Weight: 3},
				{Name: "Naver Webtoon", Weight: 1},
			},
		},
	}
}
