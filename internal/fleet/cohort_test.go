package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ccdem"
	"ccdem/internal/sim"
)

// testCohort keeps unit runs fast: few devices, short sessions, a coarse
// metering grid. Shapes and determinism are asserted, not absolute values.
func testCohort(devices int) Cohort {
	return Cohort{
		Devices:      devices,
		Seed:         7,
		Session:      4 * sim.Second,
		MeterSamples: 1024,
	}
}

func TestCohortDeterministicAcrossWorkers(t *testing.T) {
	cohort := testCohort(6)
	var outputs []string
	for _, workers := range []int{1, 8} {
		r, err := cohort.Run(context.Background(), Pool{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf, true); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("aggregate JSON differs between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			outputs[0], outputs[1])
	}
}

// TestCohortTileVsNaivePixels pins the fleet-level differential contract:
// a campaign on the tile-tracked pixel pipeline (the default) produces
// byte-identical per-device rows and aggregates to the same campaign on
// the brute-force oracle pipeline, at multiple worker counts. (Worker
// independence of the tile path itself is covered by
// TestCohortDeterministicAcrossWorkers, which runs tiles by default.)
func TestCohortTileVsNaivePixels(t *testing.T) {
	var outputs []string
	for _, naive := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			cohort := testCohort(6)
			cohort.NaivePixels = naive
			r, err := cohort.Run(context.Background(), Pool{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := r.WriteJSON(&buf, true); err != nil {
				t.Fatal(err)
			}
			outputs = append(outputs, buf.String())
		}
	}
	for i, out := range outputs[1:] {
		if out != outputs[0] {
			t.Fatalf("campaign output %d differs from tile-path reference:\n--- reference ---\n%s\n--- got ---\n%s",
				i+1, outputs[0], out)
		}
	}
}

// TestCohortPaletteVsNoPalette pins the palette layer's fleet-level
// differential contract: a campaign with palette-compressed tiles and the
// app state memo (the default) produces byte-identical per-device rows
// and aggregates to the same campaign with both disabled (the raw-tile
// oracle), at multiple worker counts.
func TestCohortPaletteVsNoPalette(t *testing.T) {
	var outputs []string
	for _, noPal := range []bool{false, true} {
		for _, workers := range []int{1, 2, 8} {
			cohort := testCohort(6)
			cohort.NoPalette = noPal
			r, err := cohort.Run(context.Background(), Pool{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := r.WriteJSON(&buf, true); err != nil {
				t.Fatal(err)
			}
			outputs = append(outputs, buf.String())
		}
	}
	for i, out := range outputs[1:] {
		if out != outputs[0] {
			t.Fatalf("campaign output %d differs from palette-path reference:\n--- reference ---\n%s\n--- got ---\n%s",
				i+1, outputs[0], out)
		}
	}
}

func TestCohortAggregateShape(t *testing.T) {
	cohort := testCohort(8)
	r, err := cohort.Run(context.Background(), Pool{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Devices) != 8 {
		t.Fatalf("device rows = %d, want 8", len(r.Devices))
	}
	a := r.Aggregate
	if a.Devices != 8 {
		t.Errorf("aggregate devices = %d", a.Devices)
	}
	// The managed configuration must save power on average and keep
	// quality in (0, 100].
	if a.MeanSavedMW <= 0 {
		t.Errorf("mean saved = %v mW, want > 0", a.MeanSavedMW)
	}
	if a.QualityPctMean <= 0 || a.QualityPctMean > 100 {
		t.Errorf("mean quality = %v%%, want in (0,100]", a.QualityPctMean)
	}
	if a.ExtraHoursMean <= 0 {
		t.Errorf("mean extra hours = %v, want > 0", a.ExtraHoursMean)
	}
	if len(a.QualityCDF) == 0 {
		t.Error("empty quality CDF")
	}
	total := 0
	for _, p := range a.Profiles {
		total += p.Devices
	}
	if total != 8 {
		t.Errorf("profile device counts sum to %d, want 8", total)
	}
	for i, d := range r.Devices {
		if d.Device != i {
			t.Fatalf("device row %d holds device %d; rows must stay index-addressed", i, d.Device)
		}
		if d.BaselineMW <= 0 || d.ManagedMW <= 0 {
			t.Errorf("device %d: non-positive power %v/%v", i, d.BaselineMW, d.ManagedMW)
		}
	}
	if !strings.Contains(a.String(), "Fleet aggregate") {
		t.Error("String() missing header")
	}
}

func TestCohortValidation(t *testing.T) {
	cases := []struct {
		name   string
		cohort Cohort
	}{
		{"no devices", Cohort{}},
		{"unknown app", Cohort{Devices: 1, Profiles: []Profile{{
			Name: "p", Weight: 1, Apps: []AppShare{{Name: "No Such App", Weight: 1}},
		}}}},
		{"zero weight profile", Cohort{Devices: 1, Profiles: []Profile{{
			Name: "p", Weight: 0, Apps: []AppShare{{Name: "Facebook", Weight: 1}},
		}}}},
		{"bad jitter", Cohort{Devices: 1, Profiles: []Profile{{
			Name: "p", Weight: 1, SessionJitter: 1.5,
			Apps: []AppShare{{Name: "Facebook", Weight: 1}},
		}}}},
	}
	for _, tc := range cases {
		if _, err := tc.cohort.Run(context.Background(), Pool{}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCohortGovernorDefaultsToBoost(t *testing.T) {
	c := testCohort(1)
	c.applyDefaults()
	if c.Governor != ccdem.GovernorSectionBoost {
		t.Errorf("default governor = %v, want section+boost", c.Governor)
	}
	if len(c.Profiles) == 0 {
		t.Error("no default profiles")
	}
	for _, p := range c.Profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("default profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	c := Cohort{Devices: 12, Seed: 3, Session: 30 * sim.Second, Governor: ccdem.GovernorSection}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Devices != 12 || got.Seed != 3 || got.Session != 30*sim.Second {
		t.Errorf("round trip changed scalars: %+v", got)
	}
	if got.Governor != ccdem.GovernorSection {
		t.Errorf("round trip governor = %v", got.Governor)
	}
	if len(got.Profiles) != len(DefaultProfiles()) {
		t.Errorf("round trip profiles = %d, want the defaulted %d", len(got.Profiles), len(DefaultProfiles()))
	}
}

func TestSpecRejectsBadInput(t *testing.T) {
	for _, doc := range []string{
		`{"version":99,"devices":1,"profiles":[]}`,
		`{"version":1,"devices":1,"governor":"warp-speed","profiles":[]}`,
		`{"version":1,"devices":1,"bogus_field":true}`,
		`not json`,
	} {
		if _, err := ReadSpec(strings.NewReader(doc)); err == nil {
			t.Errorf("spec accepted: %s", doc)
		}
	}
}
