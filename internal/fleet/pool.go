// Package fleet scales the single-device reproduction to populations: a
// bounded worker-pool execution engine for independent device runs
// (Pool), deterministic per-device seeding sharded from one fleet seed,
// and a cohort layer (Cohort) that expands declarative user profiles —
// app-usage mixes over the 30-app catalog, session lengths, touch
// intensity — into N simulated devices and aggregates them into
// fleet-wide statistics (power-saving percentiles, display-quality CDF,
// battery-hours distribution).
//
// Every device run is seeded from (fleet seed, device index) only, so a
// fleet's results are bit-identical regardless of worker count or
// scheduling order — the same property experiments.forEachApp relies on
// for the paper campaign, extended to millions of simulated users.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccdem/internal/obs"
)

// PanicError is a worker panic recovered by the pool and converted into a
// task error, carrying the goroutine stack at the panic site. One broken
// device configuration produces a diagnosable error instead of crashing
// the whole campaign.
type PanicError struct {
	Task  int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("fleet: task %d panicked: %v\n%s", e.Task, e.Value, e.Stack)
}

// TimeoutError reports a task exceeding the pool's TaskTimeout. It
// matches errors.Is(err, context.DeadlineExceeded).
type TimeoutError struct {
	Task    int
	Timeout time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("fleet: task %d exceeded timeout %v", e.Task, e.Timeout)
}

// Is reports context.DeadlineExceeded equivalence.
func (e *TimeoutError) Is(target error) bool { return target == context.DeadlineExceeded }

// Pool is a bounded worker-pool execution engine for independent
// simulated-device runs. The zero value is ready to use: all cores,
// fail-fast cancellation, no progress reporting.
type Pool struct {
	// Workers bounds the number of tasks executing concurrently.
	// 0 (or negative) means GOMAXPROCS.
	Workers int
	// ContinueOnError keeps dispatching the remaining tasks after a
	// failure, so every failure is observed and reported. The default
	// (false) cancels all pending tasks on the first error — the right
	// behaviour for long fleet runs where one broken device
	// configuration should stop the campaign promptly.
	ContinueOnError bool
	// OnProgress, when non-nil, is called after each task finishes with
	// the number of completed tasks and the total. Calls are serialized
	// and done is strictly increasing, but they originate from worker
	// goroutines: keep the callback cheap.
	OnProgress func(done, total int)
	// Spans, when non-nil, records a wall-clock span per task (named
	// "task <i>", one lane per worker) for pool-utilization analysis and
	// the scheduler track of a Perfetto trace. Wall-clock spans reflect
	// host scheduling and are NOT deterministic across runs.
	Spans *obs.SpanLog
	// TaskTimeout bounds each task's wall-clock execution; 0 disables.
	// A task exceeding it is reported as a *TimeoutError (matching
	// errors.Is(err, context.DeadlineExceeded)) and ABANDONED: its
	// goroutine keeps running with a cancelled context, so tasks must
	// publish results with synchronization the caller can seal (Cohort
	// does). The worker lane is freed for the next task either way — a
	// hung simulation no longer wedges the campaign.
	TaskTimeout time.Duration
	// Batch sets how many consecutive task indices a worker claims per
	// dispatch. Larger batches amortize the shared counter and progress
	// lock over contiguous index ranges — a million-device cohort at
	// Batch 64 makes ~16k claims instead of a million — while panic and
	// timeout recovery, error reporting, spans and progress stay per
	// task. 0 or 1 means one task per claim. Results are index-addressed
	// either way, so batching never changes outputs.
	Batch int
}

// EffectiveWorkers reports the number of worker goroutines Run and
// RunIndexed use for an n-task run: Workers (GOMAXPROCS when unset)
// capped at n. Callers sizing per-worker state (one recycled device or
// accumulator shard per lane) must size it with this.
func (p Pool) EffectiveWorkers(n int) int {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && workers > n {
		workers = n
	}
	return workers
}

// runTask executes one task with panic recovery and the optional timeout.
func (p Pool) runTask(ctx context.Context, i, worker int, task func(ctx context.Context, i, worker int) error) error {
	run := func(ctx context.Context) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Task: i, Value: v, Stack: debug.Stack()}
			}
		}()
		return task(ctx, i, worker)
	}
	if p.TaskTimeout <= 0 {
		return run(ctx)
	}
	tctx, cancel := context.WithTimeout(ctx, p.TaskTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- run(tctx) }()
	select {
	case err := <-done:
		return err
	case <-tctx.Done():
		// Prefer a completion that raced with the deadline.
		select {
		case err := <-done:
			return err
		default:
		}
		if ctx.Err() != nil {
			return ctx.Err() // cancelled run, not a slow task
		}
		return &TimeoutError{Task: i, Timeout: p.TaskTimeout}
	}
}

// Run executes task(ctx, i) for every i in [0, n), at most Workers at a
// time. Tasks must be independent and index-addressed: a task that needs
// to publish a result writes it to slot i of a caller-owned slice, which
// keeps result order deterministic regardless of scheduling.
//
// The context passed to tasks is cancelled on the first task error
// (unless ContinueOnError) and when parent is cancelled; tasks not yet
// started are then skipped. Run returns all task errors joined in index
// order (errors.Join), or the parent's cancellation cause when no task
// failed but the run was cut short.
func (p Pool) Run(parent context.Context, n int, task func(ctx context.Context, i int) error) error {
	return p.RunIndexed(parent, n, func(ctx context.Context, i, _ int) error {
		return task(ctx, i)
	})
}

// taskError is one failed task, recorded sparsely: a million-task run
// tracks only its failures, not an error slot per task.
type taskError struct {
	task int
	err  error
}

// RunIndexed is Run with the executing worker's lane index in
// [0, EffectiveWorkers(n)) passed to each task — the hook cohorts use for
// worker-local state such as one recycled device or one accumulator
// shard per lane. A lane runs one task at a time, so per-lane state needs
// no locking (but see TaskTimeout: an abandoned task's goroutine still
// holds its lane's state).
func (p Pool) RunIndexed(parent context.Context, n int, task func(ctx context.Context, i, worker int) error) error {
	if n < 0 {
		return fmt.Errorf("fleet: negative task count %d", n)
	}
	if parent == nil {
		parent = context.Background()
	}
	if n == 0 {
		return parent.Err()
	}
	workers := p.EffectiveWorkers(n)
	batch := p.Batch
	if batch < 1 {
		batch = 1
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		next atomic.Int64 // next task index to claim (batch at a time)
		mu   sync.Mutex   // guards errs/done and serializes OnProgress
		done int
		errs []taskError
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				hi := int(next.Add(int64(batch)))
				lo := hi - batch
				if lo >= n || ctx.Err() != nil {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					var endSpan func()
					if p.Spans != nil {
						endSpan = p.Spans.Begin(fmt.Sprintf("task %d", i), w)
					}
					err := p.runTask(ctx, i, w, task)
					if endSpan != nil {
						endSpan()
					}
					mu.Lock()
					if err != nil {
						errs = append(errs, taskError{i, err})
					}
					done++
					if p.OnProgress != nil {
						p.OnProgress(done, n)
					}
					mu.Unlock()
					if err != nil && !p.ContinueOnError {
						cancel()
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if len(errs) > 0 {
		// Join in index order, matching the dense bookkeeping this
		// replaces: reports are deterministic however tasks finished.
		sort.Slice(errs, func(a, b int) bool { return errs[a].task < errs[b].task })
		joined := make([]error, len(errs))
		for i, te := range errs {
			joined[i] = te.err
		}
		return errors.Join(joined...)
	}
	return parent.Err()
}
