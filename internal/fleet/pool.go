// Package fleet scales the single-device reproduction to populations: a
// bounded worker-pool execution engine for independent device runs
// (Pool), deterministic per-device seeding sharded from one fleet seed,
// and a cohort layer (Cohort) that expands declarative user profiles —
// app-usage mixes over the 30-app catalog, session lengths, touch
// intensity — into N simulated devices and aggregates them into
// fleet-wide statistics (power-saving percentiles, display-quality CDF,
// battery-hours distribution).
//
// Every device run is seeded from (fleet seed, device index) only, so a
// fleet's results are bit-identical regardless of worker count or
// scheduling order — the same property experiments.forEachApp relies on
// for the paper campaign, extended to millions of simulated users.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ccdem/internal/obs"
)

// PanicError is a worker panic recovered by the pool and converted into a
// task error, carrying the goroutine stack at the panic site. One broken
// device configuration produces a diagnosable error instead of crashing
// the whole campaign.
type PanicError struct {
	Task  int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("fleet: task %d panicked: %v\n%s", e.Task, e.Value, e.Stack)
}

// TimeoutError reports a task exceeding the pool's TaskTimeout. It
// matches errors.Is(err, context.DeadlineExceeded).
type TimeoutError struct {
	Task    int
	Timeout time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("fleet: task %d exceeded timeout %v", e.Task, e.Timeout)
}

// Is reports context.DeadlineExceeded equivalence.
func (e *TimeoutError) Is(target error) bool { return target == context.DeadlineExceeded }

// Pool is a bounded worker-pool execution engine for independent
// simulated-device runs. The zero value is ready to use: all cores,
// fail-fast cancellation, no progress reporting.
type Pool struct {
	// Workers bounds the number of tasks executing concurrently.
	// 0 (or negative) means GOMAXPROCS.
	Workers int
	// ContinueOnError keeps dispatching the remaining tasks after a
	// failure, so every failure is observed and reported. The default
	// (false) cancels all pending tasks on the first error — the right
	// behaviour for long fleet runs where one broken device
	// configuration should stop the campaign promptly.
	ContinueOnError bool
	// OnProgress, when non-nil, is called after each task finishes with
	// the number of completed tasks and the total. Calls are serialized
	// and done is strictly increasing, but they originate from worker
	// goroutines: keep the callback cheap.
	OnProgress func(done, total int)
	// Spans, when non-nil, records a wall-clock span per task (named
	// "task <i>", one lane per worker) for pool-utilization analysis and
	// the scheduler track of a Perfetto trace. Wall-clock spans reflect
	// host scheduling and are NOT deterministic across runs.
	Spans *obs.SpanLog
	// TaskTimeout bounds each task's wall-clock execution; 0 disables.
	// A task exceeding it is reported as a *TimeoutError (matching
	// errors.Is(err, context.DeadlineExceeded)) and ABANDONED: its
	// goroutine keeps running with a cancelled context, so tasks must
	// publish results with synchronization the caller can seal (Cohort
	// does). The worker lane is freed for the next task either way — a
	// hung simulation no longer wedges the campaign.
	TaskTimeout time.Duration
}

// runTask executes one task with panic recovery and the optional timeout.
func (p Pool) runTask(ctx context.Context, i int, task func(ctx context.Context, i int) error) error {
	run := func(ctx context.Context) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Task: i, Value: v, Stack: debug.Stack()}
			}
		}()
		return task(ctx, i)
	}
	if p.TaskTimeout <= 0 {
		return run(ctx)
	}
	tctx, cancel := context.WithTimeout(ctx, p.TaskTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- run(tctx) }()
	select {
	case err := <-done:
		return err
	case <-tctx.Done():
		// Prefer a completion that raced with the deadline.
		select {
		case err := <-done:
			return err
		default:
		}
		if ctx.Err() != nil {
			return ctx.Err() // cancelled run, not a slow task
		}
		return &TimeoutError{Task: i, Timeout: p.TaskTimeout}
	}
}

// Run executes task(ctx, i) for every i in [0, n), at most Workers at a
// time. Tasks must be independent and index-addressed: a task that needs
// to publish a result writes it to slot i of a caller-owned slice, which
// keeps result order deterministic regardless of scheduling.
//
// The context passed to tasks is cancelled on the first task error
// (unless ContinueOnError) and when parent is cancelled; tasks not yet
// started are then skipped. Run returns all task errors joined in index
// order (errors.Join), or the parent's cancellation cause when no task
// failed but the run was cut short.
func (p Pool) Run(parent context.Context, n int, task func(ctx context.Context, i int) error) error {
	if n < 0 {
		return fmt.Errorf("fleet: negative task count %d", n)
	}
	if parent == nil {
		parent = context.Background()
	}
	if n == 0 {
		return parent.Err()
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		next atomic.Int64 // next task index to claim
		mu   sync.Mutex   // guards errs/done and serializes OnProgress
		done int
		errs = make([]error, n)
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				var endSpan func()
				if p.Spans != nil {
					endSpan = p.Spans.Begin(fmt.Sprintf("task %d", i), w)
				}
				err := p.runTask(ctx, i, task)
				if endSpan != nil {
					endSpan()
				}
				mu.Lock()
				errs[i] = err
				done++
				if p.OnProgress != nil {
					p.OnProgress(done, n)
				}
				mu.Unlock()
				if err != nil && !p.ContinueOnError {
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if err := errors.Join(errs...); err != nil {
		return err
	}
	return parent.Err()
}
