package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllTasks(t *testing.T) {
	const n = 100
	ran := make([]bool, n)
	var mu sync.Mutex
	err := Pool{Workers: 7}.Run(context.Background(), n, func(_ context.Context, i int) error {
		mu.Lock()
		defer mu.Unlock()
		if ran[i] {
			return fmt.Errorf("task %d ran twice", i)
		}
		ran[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range ran {
		if !ok {
			t.Errorf("task %d never ran", i)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := Pool{Workers: workers}.Run(context.Background(), 50, func(_ context.Context, i int) error {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestPoolCancelsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	err := Pool{Workers: 1}.Run(context.Background(), 100, func(_ context.Context, i int) error {
		executed.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// With one worker the failure at index 0 must stop the run before any
	// further task starts.
	if n := executed.Load(); n != 1 {
		t.Errorf("executed %d tasks after failure, want 1", n)
	}
}

func TestPoolContinueOnErrorJoinsAll(t *testing.T) {
	const n = 10
	var executed atomic.Int64
	err := Pool{Workers: 4, ContinueOnError: true}.Run(context.Background(), n, func(_ context.Context, i int) error {
		executed.Add(1)
		if i%2 == 0 {
			return fmt.Errorf("task-%d-failed", i)
		}
		return nil
	})
	if executed.Load() != n {
		t.Errorf("executed %d tasks, want all %d", executed.Load(), n)
	}
	if err == nil {
		t.Fatal("nil error from failing run")
	}
	for i := 0; i < n; i += 2 {
		if want := fmt.Sprintf("task-%d-failed", i); !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
	// Index order: the joined message lists failures lowest-index first.
	if msg := err.Error(); strings.Index(msg, "task-0-") > strings.Index(msg, "task-8-") {
		t.Errorf("joined errors out of index order:\n%v", msg)
	}
}

func TestPoolRespectsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed atomic.Int64
	err := Pool{Workers: 2}.Run(ctx, 10, func(_ context.Context, i int) error {
		executed.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n != 0 {
		t.Errorf("executed %d tasks under a cancelled parent, want 0", n)
	}
}

func TestPoolProgress(t *testing.T) {
	const n = 25
	var (
		mu    sync.Mutex
		calls []int
	)
	err := Pool{Workers: 5, OnProgress: func(done, total int) {
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		mu.Lock()
		calls = append(calls, done)
		mu.Unlock()
	}}.Run(context.Background(), n, func(_ context.Context, i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("progress called %d times, want %d", len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress calls not monotone: %v", calls)
		}
	}
}

func TestPoolZeroTasks(t *testing.T) {
	if err := (Pool{}).Run(context.Background(), 0, nil); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	if err := (Pool{}).Run(context.Background(), -1, nil); err == nil {
		t.Fatal("negative task count accepted")
	}
}

func TestDeviceSeed(t *testing.T) {
	if DeviceSeed(1, 0) != DeviceSeed(1, 0) {
		t.Fatal("DeviceSeed not deterministic")
	}
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := DeviceSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("devices %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if DeviceSeed(1, 5) == DeviceSeed(2, 5) {
		t.Error("distinct fleet seeds map device 5 to the same seed")
	}
}
