package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccdem/internal/obs"
)

func TestPoolRunsAllTasks(t *testing.T) {
	const n = 100
	ran := make([]bool, n)
	var mu sync.Mutex
	err := Pool{Workers: 7}.Run(context.Background(), n, func(_ context.Context, i int) error {
		mu.Lock()
		defer mu.Unlock()
		if ran[i] {
			return fmt.Errorf("task %d ran twice", i)
		}
		ran[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range ran {
		if !ok {
			t.Errorf("task %d never ran", i)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := Pool{Workers: workers}.Run(context.Background(), 50, func(_ context.Context, i int) error {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestPoolCancelsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	err := Pool{Workers: 1}.Run(context.Background(), 100, func(_ context.Context, i int) error {
		executed.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// With one worker the failure at index 0 must stop the run before any
	// further task starts.
	if n := executed.Load(); n != 1 {
		t.Errorf("executed %d tasks after failure, want 1", n)
	}
}

func TestPoolContinueOnErrorJoinsAll(t *testing.T) {
	const n = 10
	var executed atomic.Int64
	err := Pool{Workers: 4, ContinueOnError: true}.Run(context.Background(), n, func(_ context.Context, i int) error {
		executed.Add(1)
		if i%2 == 0 {
			return fmt.Errorf("task-%d-failed", i)
		}
		return nil
	})
	if executed.Load() != n {
		t.Errorf("executed %d tasks, want all %d", executed.Load(), n)
	}
	if err == nil {
		t.Fatal("nil error from failing run")
	}
	for i := 0; i < n; i += 2 {
		if want := fmt.Sprintf("task-%d-failed", i); !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
	// Index order: the joined message lists failures lowest-index first.
	if msg := err.Error(); strings.Index(msg, "task-0-") > strings.Index(msg, "task-8-") {
		t.Errorf("joined errors out of index order:\n%v", msg)
	}
}

func TestPoolRespectsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed atomic.Int64
	err := Pool{Workers: 2}.Run(ctx, 10, func(_ context.Context, i int) error {
		executed.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n != 0 {
		t.Errorf("executed %d tasks under a cancelled parent, want 0", n)
	}
}

func TestPoolProgress(t *testing.T) {
	const n = 25
	var (
		mu    sync.Mutex
		calls []int
	)
	err := Pool{Workers: 5, OnProgress: func(done, total int) {
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		mu.Lock()
		calls = append(calls, done)
		mu.Unlock()
	}}.Run(context.Background(), n, func(_ context.Context, i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("progress called %d times, want %d", len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress calls not monotone: %v", calls)
		}
	}
}

// TestPoolProgressSerialized verifies the OnProgress contract with
// deliberately unsynchronized callback state: calls must be serialized (no
// two in flight at once — the race detector and the inFlight check both
// catch a violation), done must increase strictly by one, and the callback
// must fire exactly total times. The callback takes no locks of its own, so
// any two concurrent invocations are a data race under -race.
func TestPoolProgressSerialized(t *testing.T) {
	const n = 200
	var (
		inFlight atomic.Int32
		calls    int   // unsynchronized on purpose
		lastDone int   // unsynchronized on purpose
		bad      error // first contract violation observed
	)
	err := Pool{Workers: 8, OnProgress: func(done, total int) {
		if inFlight.Add(1) != 1 {
			bad = errors.New("OnProgress invocations overlap")
		}
		defer inFlight.Add(-1)
		calls++
		if done != lastDone+1 {
			bad = fmt.Errorf("done went %d -> %d, want +1 steps", lastDone, done)
		}
		lastDone = done
		if total != n {
			bad = fmt.Errorf("total = %d, want %d", total, n)
		}
	}}.Run(context.Background(), n, func(_ context.Context, i int) error {
		if i%3 == 0 {
			time.Sleep(time.Microsecond) // stagger completions across workers
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Fatal(bad)
	}
	if calls != n {
		t.Fatalf("OnProgress fired %d times, want exactly %d", calls, n)
	}
}

func TestPoolRecordsTaskSpans(t *testing.T) {
	const n = 20
	spans := obs.NewSpanLog()
	err := Pool{Workers: 4, Spans: spans}.Run(context.Background(), n,
		func(_ context.Context, i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	got := spans.Spans()
	if len(got) != n {
		t.Fatalf("recorded %d spans, want %d", len(got), n)
	}
	names := map[string]bool{}
	for _, s := range got {
		if s.End < s.Start {
			t.Errorf("span %q ends before it starts", s.Name)
		}
		if s.Worker < 0 || s.Worker >= 4 {
			t.Errorf("span %q on worker %d, want [0,4)", s.Name, s.Worker)
		}
		names[s.Name] = true
	}
	if len(names) != n {
		t.Errorf("%d distinct span names, want %d", len(names), n)
	}
	if u := spans.Utilization(4); u <= 0 || u > 1 {
		t.Errorf("utilization %g out of (0,1]", u)
	}
}

func TestPoolZeroTasks(t *testing.T) {
	if err := (Pool{}).Run(context.Background(), 0, nil); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	if err := (Pool{}).Run(context.Background(), -1, nil); err == nil {
		t.Fatal("negative task count accepted")
	}
}

func TestDeviceSeed(t *testing.T) {
	if DeviceSeed(1, 0) != DeviceSeed(1, 0) {
		t.Fatal("DeviceSeed not deterministic")
	}
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := DeviceSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("devices %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if DeviceSeed(1, 5) == DeviceSeed(2, 5) {
		t.Error("distinct fleet seeds map device 5 to the same seed")
	}
}

// TestPoolBatchedDispatch: batching is a scheduling optimization only —
// every index still runs exactly once and per-task semantics (progress,
// worker lanes) are preserved at any batch size.
func TestPoolBatchedDispatch(t *testing.T) {
	const n = 100
	for _, batch := range []int{0, 1, 3, 16, 64, 1000} {
		ran := make([]int, n)
		var mu sync.Mutex
		var lastDone int
		workers := 4
		pool := Pool{Workers: workers, Batch: batch, OnProgress: func(done, total int) {
			if done != lastDone+1 || total != n {
				t.Errorf("batch %d: progress (%d,%d) after %d", batch, done, total, lastDone)
			}
			lastDone = done
		}}
		err := pool.RunIndexed(context.Background(), n, func(_ context.Context, i, w int) error {
			if w < 0 || w >= workers {
				return fmt.Errorf("worker lane %d out of [0,%d)", w, workers)
			}
			mu.Lock()
			ran[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Errorf("batch %d: task %d ran %d times", batch, i, c)
			}
		}
		if lastDone != n {
			t.Errorf("batch %d: progress ended at %d, want %d", batch, lastDone, n)
		}
	}
}

// Batched error reporting stays per task and index-ordered, and fail-fast
// cancellation still abandons the untouched remainder of a claimed batch.
func TestPoolBatchErrorSemantics(t *testing.T) {
	err := Pool{Workers: 2, Batch: 8, ContinueOnError: true}.Run(context.Background(), 40,
		func(_ context.Context, i int) error {
			if i%10 == 7 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
	if err == nil {
		t.Fatal("failures not reported")
	}
	want := "task 7 failed\ntask 17 failed\ntask 27 failed\ntask 37 failed"
	if err.Error() != want {
		t.Errorf("joined errors = %q, want %q (index order)", err, want)
	}

	var ran atomic.Int64
	err = Pool{Workers: 1, Batch: 100}.Run(context.Background(), 100,
		func(_ context.Context, i int) error {
			ran.Add(1)
			if i == 3 {
				return errors.New("fail fast")
			}
			return nil
		})
	if err == nil {
		t.Fatal("fail-fast error not reported")
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("fail-fast run executed %d tasks of a claimed batch, want 4", got)
	}
}

// Worker lanes run one task at a time even across batch boundaries — the
// invariant per-lane device reuse depends on.
func TestPoolLaneExclusive(t *testing.T) {
	const workers = 3
	busy := make([]atomic.Int32, workers)
	err := Pool{Workers: workers, Batch: 4}.RunIndexed(context.Background(), 60,
		func(_ context.Context, i, w int) error {
			if busy[w].Add(1) != 1 {
				return fmt.Errorf("lane %d shared by concurrent tasks", w)
			}
			time.Sleep(time.Millisecond)
			busy[w].Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
