package fleet

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ccdem/internal/fault"
)

func TestPoolRecoversPanic(t *testing.T) {
	var completed atomic.Int64
	err := Pool{Workers: 2, ContinueOnError: true}.Run(context.Background(), 5,
		func(_ context.Context, i int) error {
			if i == 2 {
				panic("device blew up")
			}
			completed.Add(1)
			return nil
		})
	if err == nil {
		t.Fatal("panic not reported as an error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError: %v", err, err)
	}
	if pe.Task != 2 {
		t.Errorf("PanicError.Task = %d, want 2", pe.Task)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	if !strings.Contains(err.Error(), "device blew up") {
		t.Errorf("panic value missing from error: %v", err)
	}
	if completed.Load() != 4 {
		t.Errorf("completed = %d of 4 healthy tasks", completed.Load())
	}
}

func TestPoolPanicFailsFastByDefault(t *testing.T) {
	err := Pool{Workers: 1}.Run(context.Background(), 3,
		func(_ context.Context, i int) error {
			if i == 0 {
				panic("boom")
			}
			return nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError: %v", err, err)
	}
}

func TestPoolTaskTimeout(t *testing.T) {
	var completed atomic.Int64
	hung := make(chan struct{})
	err := Pool{Workers: 2, ContinueOnError: true, TaskTimeout: 30 * time.Millisecond}.Run(
		context.Background(), 5,
		func(_ context.Context, i int) error {
			if i == 1 {
				<-hung // never signalled: a wedged simulation
				return nil
			}
			completed.Add(1)
			return nil
		})
	close(hung)
	if err == nil {
		t.Fatal("hung task not reported")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %T is not a *TimeoutError: %v", err, err)
	}
	if te.Task != 1 {
		t.Errorf("TimeoutError.Task = %d, want 1", te.Task)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("timeout does not match context.DeadlineExceeded")
	}
	if completed.Load() != 4 {
		t.Errorf("completed = %d of 4 healthy tasks: the hung task wedged the pool", completed.Load())
	}
}

func TestPoolTimeoutSparesFastTasks(t *testing.T) {
	err := Pool{Workers: 4, TaskTimeout: 5 * time.Second}.Run(context.Background(), 8,
		func(_ context.Context, i int) error { return nil })
	if err != nil {
		t.Fatalf("fast tasks hit the timeout: %v", err)
	}
}

// TestCohortSurvivesPanickingDevice is the PR's acceptance scenario: one
// device task panicking no longer aborts the campaign — the rest of the
// fleet completes, the failure is attributed to its device index, and the
// aggregate covers the survivors.
func TestCohortSurvivesPanickingDevice(t *testing.T) {
	cohort := testCohort(6)
	cohort.testHook = func(device int) {
		if device == 3 {
			panic("corrupt device state")
		}
	}
	r, err := cohort.Run(context.Background(), Pool{Workers: 3})
	if err != nil {
		t.Fatalf("resilient run returned error: %v", err)
	}
	if len(r.Devices) != 5 {
		t.Fatalf("surviving devices = %d, want 5", len(r.Devices))
	}
	for _, d := range r.Devices {
		if d.Device == 3 {
			t.Error("failed device present in results")
		}
	}
	if len(r.Failed) != 1 || r.Failed[0].Device != 3 {
		t.Fatalf("failed = %+v, want device 3", r.Failed)
	}
	if !strings.Contains(r.Failed[0].Err, "corrupt device state") {
		t.Errorf("failure lost the panic value: %s", r.Failed[0].Err)
	}
	if r.Aggregate.Devices != 5 || r.Aggregate.FailedDevices != 1 {
		t.Errorf("aggregate counts %d/%d, want 5 surviving / 1 failed",
			r.Aggregate.Devices, r.Aggregate.FailedDevices)
	}
	if !strings.Contains(r.Aggregate.String(), "failed devices: 1") {
		t.Error("report does not mention the failed device")
	}
}

func TestCohortSurvivesHungDevice(t *testing.T) {
	hung := make(chan struct{})
	defer close(hung)
	cohort := testCohort(4)
	cohort.testHook = func(device int) {
		if device == 0 {
			<-hung
		}
	}
	// The budget must be generous enough that the three healthy devices
	// finish inside it even race-instrumented on a slow host — only the
	// genuinely hung device may trip it.
	r, err := cohort.Run(context.Background(), Pool{Workers: 2, TaskTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("resilient run returned error: %v", err)
	}
	if len(r.Devices) != 3 || len(r.Failed) != 1 || r.Failed[0].Device != 0 {
		t.Fatalf("devices=%d failed=%+v, want 3 surviving and device 0 timed out",
			len(r.Devices), r.Failed)
	}
}

func TestCohortFailFast(t *testing.T) {
	cohort := testCohort(4)
	cohort.FailFast = true
	cohort.testHook = func(device int) {
		if device == 1 {
			panic("boom")
		}
	}
	if _, err := cohort.Run(context.Background(), Pool{Workers: 1}); err == nil {
		t.Fatal("FailFast run swallowed the failure")
	}
}

func TestCohortAllDevicesFailed(t *testing.T) {
	cohort := testCohort(3)
	cohort.testHook = func(int) { panic("nothing works") }
	if _, err := cohort.Run(context.Background(), Pool{Workers: 2}); err == nil {
		t.Fatal("campaign with zero survivors reported success")
	}
}

// TestFaultyCohortDeterministicAcrossWorkers: the chaos acceptance for the
// fleet layer — a faulted, hardened campaign produces byte-identical JSON
// at any worker count, because every injector is seeded purely from
// (fleet seed, device, segment).
func TestFaultyCohortDeterministicAcrossWorkers(t *testing.T) {
	plan := fault.DefaultPlan()
	cohort := testCohort(6)
	cohort.Faults = &plan
	cohort.Hardened = true
	var outputs []string
	for _, workers := range []int{1, 8} {
		r, err := cohort.Run(context.Background(), Pool{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf, true); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("faulty fleet JSON differs between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			outputs[0], outputs[1])
	}
	if !strings.Contains(outputs[0], `"faults"`) {
		t.Error("no device reported injected faults")
	}
}

func TestCohortRejectsBadFaultPlan(t *testing.T) {
	plan := fault.DefaultPlan()
	plan.PanelDropProb = 7
	cohort := testCohort(2)
	cohort.Faults = &plan
	if _, err := cohort.Run(context.Background(), Pool{}); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}

// TestStreamedCohortSurvivesPanickingDevice: resilience carries over to
// streaming — the casualty is reported by index, the merged aggregate
// covers the survivors, and a worker whose recycled device hosted the
// panic resets it cleanly for its next task.
func TestStreamedCohortSurvivesPanickingDevice(t *testing.T) {
	retained := testCohort(6)
	retained.testHook = func(device int) {
		if device == 3 {
			panic("corrupt device state")
		}
	}
	want, err := retained.Run(context.Background(), Pool{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	streamed := retained
	streamed.Stream = true
	r, err := streamed.Run(context.Background(), Pool{Workers: 2})
	if err != nil {
		t.Fatalf("resilient streamed run returned error: %v", err)
	}
	if r.Devices != nil {
		t.Error("streamed run retained device rows")
	}
	if len(r.Failed) != 1 || r.Failed[0].Device != 3 {
		t.Fatalf("failed = %+v, want device 3", r.Failed)
	}
	if !strings.Contains(r.Failed[0].Err, "corrupt device state") {
		t.Errorf("failure lost the panic value: %s", r.Failed[0].Err)
	}
	var wantJSON, gotJSON bytes.Buffer
	if err := want.WriteJSON(&wantJSON, false); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&gotJSON, false); err != nil {
		t.Fatal(err)
	}
	if gotJSON.String() != wantJSON.String() {
		t.Errorf("streamed survivor aggregate differs from retained:\n--- retained ---\n%s\n--- streamed ---\n%s",
			wantJSON.String(), gotJSON.String())
	}
}

// A panic mid-simulation (not just at task start) leaves the lane's
// recycled device in an arbitrary state; the next task's Reset must still
// produce correct results. Workers: 1 forces every task onto that lane.
func TestCohortReuseSurvivesMidRunPanic(t *testing.T) {
	clean := testCohort(5)
	want, err := clean.Run(context.Background(), Pool{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dirty := testCohort(5)
	first := true
	dirty.testHook = func(device int) {
		if device == 2 && first {
			first = false
			panic("mid-campaign corruption")
		}
	}
	got, err := dirty.Run(context.Background(), Pool{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Failed) != 1 || got.Failed[0].Device != 2 {
		t.Fatalf("failed = %+v, want device 2", got.Failed)
	}
	// Devices after the panic ran on the same recycled device and must be
	// bit-identical to their clean-run counterparts.
	byIdx := map[int]DeviceResult{}
	for _, d := range want.Devices {
		byIdx[d.Device] = d
	}
	for _, d := range got.Devices {
		if d != byIdx[d.Device] {
			t.Errorf("device %d differs after a lane panic:\n got %+v\nwant %+v", d.Device, d, byIdx[d.Device])
		}
	}
}
