package fleet

// DeviceSeed derives device i's seed from the fleet seed with a
// SplitMix64-style finalizer. A device's entire run — profile draw,
// session-length jitter, per-segment Monkey scripts — is seeded from this
// value alone, so it depends only on (fleetSeed, i): never on worker
// count, scheduling order, or which other devices are in the fleet.
// Consecutive indices land far apart in seed space, avoiding the
// correlated-stream artifacts of seed+i.
func DeviceSeed(fleetSeed int64, device int) int64 {
	z := uint64(fleetSeed) + 0x9e3779b97f4a7c15*(uint64(device)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
