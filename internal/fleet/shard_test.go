package fleet

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// runSharded executes the cohort split count ways, round-trips every
// shard through its wire document, and merges centrally — the full
// distributed path, minus the process boundary (cmd/ccdem-svc's tests
// add that).
func runSharded(t *testing.T, cohort Cohort, count int, pool Pool) *Result {
	t.Helper()
	shards := make([]*Shard, count)
	for i := 0; i < count; i++ {
		c := cohort
		c.ShardIndex, c.ShardCount = i, count
		s, err := c.RunShard(context.Background(), pool)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, count, err)
		}
		var doc bytes.Buffer
		if err := s.Encode(&doc); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeShard(&doc)
		if err != nil {
			t.Fatalf("shard %d/%d: decode: %v", i, count, err)
		}
		shards[i] = decoded
	}
	res, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedRunMatchesSingleProcess pins the distributed tentpole's
// exactness claim: a campaign split into wire-encoded shards and merged
// centrally in shard order produces byte-identical aggregate JSON to the
// single-process streamed run of the same cohort, at any shard count and
// per-shard worker count.
func TestShardedRunMatchesSingleProcess(t *testing.T) {
	cohort := testCohort(10)
	cohort.Stream = true
	direct, err := cohort.Run(context.Background(), Pool{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := direct.WriteJSON(&want, false); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		count, workers int
	}{{1, 1}, {2, 2}, {2, 1}, {3, 2}, {5, 4}} {
		t.Run(fmt.Sprintf("shards=%d workers=%d", tc.count, tc.workers), func(t *testing.T) {
			res := runSharded(t, testCohort(10), tc.count, Pool{Workers: tc.workers})
			var got bytes.Buffer
			if err := res.WriteJSON(&got, false); err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Errorf("sharded aggregate differs from single-process run:\n--- direct ---\n%s\n--- sharded ---\n%s",
					want.String(), got.String())
			}
		})
	}
}

// TestShardedRunCarriesFailures: device failures inside a shard cross the
// wire and surface in the merged result exactly where a single-process
// run reports them, and the aggregate over the survivors is still
// byte-identical.
func TestShardedRunCarriesFailures(t *testing.T) {
	broken := map[int]bool{2: true, 7: true}
	mk := func() Cohort {
		c := testCohort(9)
		c.Stream = true
		c.testHook = func(device int) {
			if broken[device] {
				panic(fmt.Sprintf("device %d is broken", device))
			}
		}
		return c
	}
	direct, err := mk().Run(context.Background(), Pool{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := direct.WriteJSON(&want, false); err != nil {
		t.Fatal(err)
	}

	res := runSharded(t, mk(), 3, Pool{Workers: 2})
	if len(res.Failed) != len(broken) {
		t.Fatalf("merged result reports %d failures, want %d: %+v", len(res.Failed), len(broken), res.Failed)
	}
	for i, want := range []int{2, 7} {
		if res.Failed[i].Device != want {
			t.Errorf("Failed[%d].Device = %d, want %d", i, res.Failed[i].Device, want)
		}
	}
	var got bytes.Buffer
	if err := res.WriteJSON(&got, false); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("sharded aggregate with failures differs from single-process run:\n--- direct ---\n%s\n--- sharded ---\n%s",
			want.String(), got.String())
	}
}

// TestRunShardAllFailed: a shard whose whole slice failed is data, not an
// error — the central merge decides the campaign's fate.
func TestRunShardAllFailed(t *testing.T) {
	c := testCohort(4)
	c.ShardIndex, c.ShardCount = 0, 2
	c.testHook = func(int) { panic("nothing works") }
	s, err := c.RunShard(context.Background(), Pool{Workers: 2})
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	if s.Acc.Devices() != 0 || len(s.Failed) != 2 {
		t.Fatalf("shard = %d survivors, %d failures; want 0 and 2", s.Acc.Devices(), len(s.Failed))
	}
	var doc bytes.Buffer
	if err := s.Encode(&doc); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeShard(&doc); err != nil {
		t.Fatalf("all-failed shard must still round-trip: %v", err)
	}
}

// TestCohortShardValidation: shard configuration errors are caught at the
// boundary.
func TestCohortShardValidation(t *testing.T) {
	cases := []struct {
		name         string
		index, count int
	}{
		{"negative count", 0, -1},
		{"index at count", 2, 2},
		{"negative index", -1, 2},
		{"index without count", 1, 0},
		{"more shards than devices", 0, 99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testCohort(6)
			c.ShardIndex, c.ShardCount = tc.index, tc.count
			if _, err := c.Run(context.Background(), Pool{Workers: 1}); err == nil {
				t.Errorf("shard %d/%d accepted", tc.index, tc.count)
			}
		})
	}
}

// TestShardRangePartition: the cut points tile the index space exactly.
func TestShardRangePartition(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 1_000_003} {
		for _, count := range []int{1, 2, 3, 8} {
			if count > n {
				continue
			}
			next := 0
			for i := 0; i < count; i++ {
				lo, hi := shardRange(n, i, count)
				if lo != next || hi < lo {
					t.Fatalf("shardRange(%d, %d, %d) = [%d,%d), want lo %d", n, i, count, lo, hi, next)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("shardRange(%d, ·, %d) tiles to %d, want %d", n, count, next, n)
			}
		}
	}
}
