package fleet

import (
	"encoding/json"
	"fmt"
	"io"

	"ccdem"
	"ccdem/internal/sim"
)

// Cohort specification files: fleet studies as JSON documents, so user
// populations can be versioned and replayed without recompiling
// (cmd/ccdem-fleet -spec).

type wireSpec struct {
	Version      int           `json:"version"`
	Devices      int           `json:"devices"`
	Seed         int64         `json:"seed,omitempty"`
	SessionS     float64       `json:"session_s,omitempty"`
	Governor     string        `json:"governor,omitempty"`
	MeterSamples int           `json:"meter_samples,omitempty"`
	NaivePixels  bool          `json:"naive_pixels,omitempty"`
	NoPalette    bool          `json:"no_palette,omitempty"`
	Profiles     []wireProfile `json:"profiles"`
}

type wireProfile struct {
	Name           string         `json:"name"`
	Weight         float64        `json:"weight"`
	TouchIntensity float64        `json:"touch_intensity,omitempty"`
	SessionJitter  float64        `json:"session_jitter,omitempty"`
	Apps           []wireAppShare `json:"apps"`
}

type wireAppShare struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

const specWireVersion = 1

// governorNames maps spec-file governor names to modes; the managed
// configuration of a fleet is never the baseline, so "baseline" is
// deliberately absent.
var governorNames = map[string]ccdem.GovernorMode{
	"section":       ccdem.GovernorSection,
	"section+boost": ccdem.GovernorSectionBoost,
	"naive":         ccdem.GovernorNaive,
	"e3-framerate":  ccdem.GovernorE3,
	"idle-timeout":  ccdem.GovernorIdleTimeout,
}

// ParseGovernor resolves a spec-file governor name ("" selects the
// paper's full system, section+boost).
func ParseGovernor(name string) (ccdem.GovernorMode, error) {
	if name == "" {
		return ccdem.GovernorSectionBoost, nil
	}
	mode, ok := governorNames[name]
	if !ok {
		return 0, fmt.Errorf("fleet: unknown governor %q", name)
	}
	return mode, nil
}

// ReadSpec parses a cohort specification document. Omitted fields keep
// the Cohort defaults; the result is validated.
func ReadSpec(r io.Reader) (Cohort, error) {
	var ws wireSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ws); err != nil {
		return Cohort{}, fmt.Errorf("fleet: parsing spec: %w", err)
	}
	if ws.Version != specWireVersion {
		return Cohort{}, fmt.Errorf("fleet: unsupported spec version %d", ws.Version)
	}
	mode, err := ParseGovernor(ws.Governor)
	if err != nil {
		return Cohort{}, err
	}
	c := Cohort{
		Devices:      ws.Devices,
		Seed:         ws.Seed,
		Session:      sim.FromSeconds(ws.SessionS),
		Governor:     mode,
		MeterSamples: ws.MeterSamples,
		NaivePixels:  ws.NaivePixels,
		NoPalette:    ws.NoPalette,
	}
	for _, wp := range ws.Profiles {
		p := Profile{
			Name:           wp.Name,
			Weight:         wp.Weight,
			TouchIntensity: wp.TouchIntensity,
			SessionJitter:  wp.SessionJitter,
		}
		for _, wa := range wp.Apps {
			p.Apps = append(p.Apps, AppShare{Name: wa.Name, Weight: wa.Weight})
		}
		c.Profiles = append(c.Profiles, p)
	}
	c.applyDefaults()
	if err := c.Validate(); err != nil {
		return Cohort{}, err
	}
	return c, nil
}

// WriteSpec serializes the cohort (defaults applied) as a spec document,
// the template cmd/ccdem-fleet -write-spec emits.
func WriteSpec(w io.Writer, c Cohort) error {
	c.applyDefaults()
	if err := c.Validate(); err != nil {
		return err
	}
	ws := wireSpec{
		Version:      specWireVersion,
		Devices:      c.Devices,
		Seed:         c.Seed,
		SessionS:     c.Session.Seconds(),
		Governor:     c.Governor.String(),
		MeterSamples: c.MeterSamples,
		NaivePixels:  c.NaivePixels,
		NoPalette:    c.NoPalette,
	}
	for _, p := range c.Profiles {
		wp := wireProfile{
			Name:           p.Name,
			Weight:         p.Weight,
			TouchIntensity: p.TouchIntensity,
			SessionJitter:  p.SessionJitter,
		}
		for _, a := range p.Apps {
			wp.Apps = append(wp.Apps, wireAppShare{Name: a.Name, Weight: a.Weight})
		}
		ws.Profiles = append(ws.Profiles, wp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ws)
}
