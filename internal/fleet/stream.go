// Streaming fleet aggregation: Accumulator folds per-device results into
// a constant-size, mergeable summary, so million-device campaigns compute
// the exact same Aggregate as the retained-slice path in O(workers)
// memory instead of O(devices).
//
// Determinism is achieved the way production telemetry pipelines do it —
// by making the summary state integral, so accumulation commutes:
//
//   - Means are fixed-point sums: every value is scaled to micro-units
//     and rounded to int64 once at Add time; integer addition is
//     associative and commutative, so any partition of the cohort into
//     per-worker shards merges to the same sums.
//   - Percentiles and CDFs come from fixed-bin counting histograms at the
//     same 0.1 resolution aggregate() has always rounded quality values
//     to, with integer counts. Reconstructing the virtual sorted slice
//     from the merged bins replicates trace.Percentile and trace.CDF
//     bit-for-bit (same position arithmetic, same interpolation, same
//     float divisions).
//
// The retained path (Cohort without Stream) feeds one Accumulator in
// device order; the streamed path feeds one per worker and merges them in
// worker order. Identical integer state in, identical Aggregate out:
// streamed aggregates are byte-identical to retained ones at any worker
// count.
package fleet

import (
	"math"
	"sort"

	"ccdem/internal/trace"
)

// microScale is the fixed-point resolution of the accumulator's sums:
// values are stored as integer micro-units (1e-6). At that resolution the
// per-value rounding error is below 5e-7 — far inside the noise floor of
// the modeled power figures — and a million-device cohort's sums stay
// ten thousand times short of int64 overflow.
const microScale = 1e6

// Bins per unit for the fixed-bin histograms. Percentage metrics use the
// 0.1-point resolution aggregate() has always rounded quality to;
// battery-hours use 0.001 h (3.6 s of screen-on time).
const (
	pctBinsPerUnit   = 10
	hoursBinsPerUnit = 1000
)

// fixed converts a value to the scaled integer domain.
func fixed(v float64) int64 { return int64(math.Round(v * microScale)) }

// histogram is a sparse fixed-bin counting histogram over
// round(v·perUnit) bins. All state is integral, so merging histograms in
// any order yields the same state.
type histogram struct {
	perUnit float64
	bins    map[int32]int64
	n       int64
}

func newHistogram(perUnit float64) histogram {
	return histogram{perUnit: perUnit, bins: make(map[int32]int64)}
}

func (h *histogram) add(v float64) {
	h.bins[int32(math.Round(v*h.perUnit))]++
	h.n++
}

func (h *histogram) merge(o *histogram) {
	for b, c := range o.bins {
		h.bins[b] += c
	}
	h.n += o.n
}

// sortedBins returns the occupied bins in ascending order — the distinct
// values of the virtual sorted sample slice.
func (h *histogram) sortedBins() []int32 {
	bins := make([]int32, 0, len(h.bins))
	for b := range h.bins {
		bins = append(bins, b)
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i] < bins[j] })
	return bins
}

// value maps a bin back to its sample value. For a 0.1-resolution bin
// this is exactly math.Round(v*10)/10: the rounded float is an exact
// small integer, the int32 round-trip is lossless, and the final division
// uses the same operands — so reconstructed values match what the
// retained path would have sorted.
func (h *histogram) value(bin int32) float64 { return float64(bin) / h.perUnit }

// valueAt returns the idx-th smallest sample (0-based) by walking
// cumulative counts over the sorted bins.
func (h *histogram) valueAt(bins []int32, idx int64) float64 {
	var cum int64
	for _, b := range bins {
		cum += h.bins[b]
		if idx < cum {
			return h.value(b)
		}
	}
	return h.value(bins[len(bins)-1])
}

// percentile replicates trace.Percentile over the virtual sorted slice of
// binned samples, bit-for-bit: same position arithmetic, same linear
// interpolation, same boundary cases.
func (h *histogram) percentile(bins []int32, p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.value(bins[0])
	}
	if p >= 100 {
		return h.value(bins[len(bins)-1])
	}
	pos := p / 100 * float64(h.n-1)
	lo := int64(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= h.n {
		return h.valueAt(bins, lo)
	}
	return h.valueAt(bins, lo)*(1-frac) + h.valueAt(bins, lo+1)*frac
}

// cdf replicates trace.CDF over the binned samples: one point per
// occupied bin (distinct value), carrying the fraction of samples ≤ it,
// computed with the same float division.
func (h *histogram) cdf(bins []int32) []trace.CDFPoint {
	if h.n == 0 {
		return nil
	}
	out := make([]trace.CDFPoint, 0, len(bins))
	var cum int64
	for _, b := range bins {
		cum += h.bins[b]
		out = append(out, trace.CDFPoint{Value: h.value(b), Frac: float64(cum) / float64(h.n)})
	}
	return out
}

// mean returns the fixed-point sum scaled back to a float mean over n.
func mean(sum, n int64) float64 { return float64(sum) / microScale / float64(n) }

// Accumulator folds DeviceResults into the constant-size summary behind
// Aggregate. It is not safe for concurrent use; streamed cohorts keep one
// shard per worker and Merge them afterwards. Because all state is
// integral, the shard partition and merge order do not affect the result.
type Accumulator struct {
	devices int64

	// µ-scaled sums. Quality sums are over the 0.1-rounded values,
	// mirroring what aggregate() has always averaged.
	baselineMW  int64
	managedMW   int64
	savedMW     int64
	savedPct    int64
	quality     int64
	trueQuality int64
	extraHours  int64

	savedPctH    histogram
	qualityH     histogram
	trueQualityH histogram
	extraHoursH  histogram

	profiles map[string]*profileAccumulator
}

// profileAccumulator is the per-user-class shard: device count and
// µ-scaled sums over the raw (unrounded) per-device values, mirroring the
// per-profile means aggregate() has always reported.
type profileAccumulator struct {
	devices     int64
	savedMW     int64
	savedPct    int64
	quality     int64
	trueQuality int64
	extraHours  int64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		savedPctH:    newHistogram(pctBinsPerUnit),
		qualityH:     newHistogram(pctBinsPerUnit),
		trueQualityH: newHistogram(pctBinsPerUnit),
		extraHoursH:  newHistogram(hoursBinsPerUnit),
		profiles:     make(map[string]*profileAccumulator),
	}
}

// Add folds one device's result into the summary.
func (a *Accumulator) Add(r DeviceResult) {
	a.devices++
	a.baselineMW += fixed(r.BaselineMW)
	a.managedMW += fixed(r.ManagedMW)
	a.savedMW += fixed(r.SavedMW)
	a.savedPct += fixed(r.SavedPct)
	quality := math.Round(r.QualityPct*10) / 10
	trueQuality := math.Round(r.TrueQualityPct*10) / 10
	a.quality += fixed(quality)
	a.trueQuality += fixed(trueQuality)
	a.extraHours += fixed(r.ExtraHours)

	a.savedPctH.add(r.SavedPct)
	a.qualityH.add(quality)
	a.trueQualityH.add(trueQuality)
	a.extraHoursH.add(r.ExtraHours)

	pa := a.profiles[r.Profile]
	if pa == nil {
		pa = &profileAccumulator{}
		a.profiles[r.Profile] = pa
	}
	pa.devices++
	pa.savedMW += fixed(r.SavedMW)
	pa.savedPct += fixed(r.SavedPct)
	pa.quality += fixed(r.QualityPct)
	pa.trueQuality += fixed(r.TrueQualityPct)
	pa.extraHours += fixed(r.ExtraHours)
}

// Merge folds another accumulator's state into a. The other accumulator
// must not be used afterwards. Merge order is irrelevant to the result.
func (a *Accumulator) Merge(b *Accumulator) {
	a.devices += b.devices
	a.baselineMW += b.baselineMW
	a.managedMW += b.managedMW
	a.savedMW += b.savedMW
	a.savedPct += b.savedPct
	a.quality += b.quality
	a.trueQuality += b.trueQuality
	a.extraHours += b.extraHours
	a.savedPctH.merge(&b.savedPctH)
	a.qualityH.merge(&b.qualityH)
	a.trueQualityH.merge(&b.trueQualityH)
	a.extraHoursH.merge(&b.extraHoursH)
	for name, pb := range b.profiles {
		pa := a.profiles[name]
		if pa == nil {
			pa = &profileAccumulator{}
			a.profiles[name] = pa
		}
		pa.devices += pb.devices
		pa.savedMW += pb.savedMW
		pa.savedPct += pb.savedPct
		pa.quality += pb.quality
		pa.trueQuality += pb.trueQuality
		pa.extraHours += pb.extraHours
	}
}

// Devices returns the number of results folded in so far.
func (a *Accumulator) Devices() int { return int(a.devices) }

// Aggregate finalizes the summary. profiles fixes the per-profile
// breakdown order to the cohort's declaration order, matching the
// retained path.
func (a *Accumulator) Aggregate(profiles []Profile) Aggregate {
	agg := Aggregate{Devices: int(a.devices)}
	if a.devices == 0 {
		return agg
	}
	n := a.devices
	agg.MeanBaselineMW = mean(a.baselineMW, n)
	agg.MeanManagedMW = mean(a.managedMW, n)
	agg.MeanSavedMW = mean(a.savedMW, n)

	bins := a.savedPctH.sortedBins()
	agg.SavedPctMean = mean(a.savedPct, n)
	agg.SavedPctP50 = a.savedPctH.percentile(bins, 50)
	agg.SavedPctP95 = a.savedPctH.percentile(bins, 95)

	bins = a.qualityH.sortedBins()
	agg.QualityPctMean = mean(a.quality, n)
	agg.TrueQualityPctMean = mean(a.trueQuality, n)
	agg.QualityPctP5 = a.qualityH.percentile(bins, 5)
	agg.QualityCDF = a.qualityH.cdf(bins)

	bins = a.extraHoursH.sortedBins()
	agg.ExtraHoursMean = mean(a.extraHours, n)
	agg.ExtraHoursP50 = a.extraHoursH.percentile(bins, 50)
	agg.ExtraHoursP95 = a.extraHoursH.percentile(bins, 95)

	for _, p := range profiles {
		out := ProfileAggregate{Profile: p.Name}
		if pa := a.profiles[p.Name]; pa != nil && pa.devices > 0 {
			out.Devices = int(pa.devices)
			out.MeanSavedMW = mean(pa.savedMW, pa.devices)
			out.SavedPctMean = mean(pa.savedPct, pa.devices)
			out.QualityPctMean = mean(pa.quality, pa.devices)
			out.TrueQualityPctMean = mean(pa.trueQuality, pa.devices)
			out.ExtraHoursMean = mean(pa.extraHours, pa.devices)
		}
		agg.Profiles = append(agg.Profiles, out)
	}
	return agg
}
