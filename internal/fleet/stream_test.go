package fleet

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ccdem/internal/trace"
)

// randomResults draws a plausible spread of device results: savings in
// [-5, 60)%, quality in [80, 100], battery deltas in [0, 3) h, spread
// over a handful of profiles.
func randomResults(rng *rand.Rand, n int) []DeviceResult {
	profiles := []string{"messenger", "browser", "gamer", "viewer"}
	out := make([]DeviceResult, n)
	for i := range out {
		baseline := 500 + 400*rng.Float64()
		saved := -25 + 325*rng.Float64()
		out[i] = DeviceResult{
			Device:         i,
			Profile:        profiles[rng.Intn(len(profiles))],
			SessionS:       30 + 60*rng.Float64(),
			BaselineMW:     baseline,
			ManagedMW:      baseline - saved,
			SavedMW:        saved,
			SavedPct:       100 * saved / baseline,
			QualityPct:     80 + 20*rng.Float64(),
			TrueQualityPct: 80 + 20*rng.Float64(),
			BaselineHours:  6 + 3*rng.Float64(),
			ManagedHours:   6 + 6*rng.Float64(),
			ExtraHours:     3 * rng.Float64(),
		}
	}
	return out
}

// binned reproduces the accumulator's value quantization on a slice: the
// reference distributions the histogram percentiles and CDF must match
// exactly.
func binned(vs []float64, perUnit float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = math.Round(v*perUnit) / perUnit
	}
	return out
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestAccumulatorMatchesSliceReference is the streaming layer's core
// property: folding results one by one must reproduce what an independent
// slice-based implementation computes over the same population —
// percentiles and the CDF exactly (both operate on 0.1-binned values),
// means to fixed-point resolution (5e-7 per value).
func TestAccumulatorMatchesSliceReference(t *testing.T) {
	profiles := []Profile{
		{Name: "messenger"}, {Name: "browser"}, {Name: "gamer"},
		{Name: "viewer"}, {Name: "absent"},
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 1 + rng.Intn(400)
		results := randomResults(rng, n)
		agg := aggregate(results, profiles)

		var savedPct, quality, trueQ, extraH []float64
		var meanBase, meanManaged, meanSaved float64
		for _, r := range results {
			savedPct = append(savedPct, r.SavedPct)
			quality = append(quality, r.QualityPct)
			trueQ = append(trueQ, r.TrueQualityPct)
			extraH = append(extraH, r.ExtraHours)
			meanBase += r.BaselineMW
			meanManaged += r.ManagedMW
			meanSaved += r.SavedMW
		}
		fn := float64(n)
		tol := 1e-6 // fixed-point rounding: ≤5e-7 per value before averaging
		checks := []struct {
			name      string
			got, want float64
		}{
			{"MeanBaselineMW", agg.MeanBaselineMW, meanBase / fn},
			{"MeanManagedMW", agg.MeanManagedMW, meanManaged / fn},
			{"MeanSavedMW", agg.MeanSavedMW, meanSaved / fn},
			{"SavedPctMean", agg.SavedPctMean, trace.Mean(savedPct)},
			{"QualityPctMean", agg.QualityPctMean, trace.Mean(binned(quality, 10))},
			{"TrueQualityPctMean", agg.TrueQualityPctMean, trace.Mean(binned(trueQ, 10))},
			{"ExtraHoursMean", agg.ExtraHoursMean, trace.Mean(extraH)},
		}
		for _, c := range checks {
			if !approxEq(c.got, c.want, tol) {
				t.Errorf("trial %d (n=%d): %s = %v, reference %v", trial, n, c.name, c.got, c.want)
			}
		}
		exact := []struct {
			name      string
			got, want float64
		}{
			{"SavedPctP50", agg.SavedPctP50, trace.Percentile(binned(savedPct, 10), 50)},
			{"SavedPctP95", agg.SavedPctP95, trace.Percentile(binned(savedPct, 10), 95)},
			{"QualityPctP5", agg.QualityPctP5, trace.Percentile(binned(quality, 10), 5)},
			{"ExtraHoursP50", agg.ExtraHoursP50, trace.Percentile(binned(extraH, 1000), 50)},
			{"ExtraHoursP95", agg.ExtraHoursP95, trace.Percentile(binned(extraH, 1000), 95)},
		}
		for _, c := range exact {
			if c.got != c.want {
				t.Errorf("trial %d (n=%d): %s = %v, reference %v (must be bit-identical)", trial, n, c.name, c.got, c.want)
			}
		}
		wantCDF := trace.CDF(binned(quality, 10))
		if len(agg.QualityCDF) != len(wantCDF) {
			t.Fatalf("trial %d: CDF has %d points, reference %d", trial, len(agg.QualityCDF), len(wantCDF))
		}
		for i, p := range agg.QualityCDF {
			if p != wantCDF[i] {
				t.Errorf("trial %d: CDF[%d] = %+v, reference %+v", trial, i, p, wantCDF[i])
			}
		}
		// Per-profile breakdown follows declaration order and averages raw
		// values; a profile with no devices yields a zero-value row.
		if len(agg.Profiles) != len(profiles) {
			t.Fatalf("trial %d: %d profile rows, want %d", trial, len(agg.Profiles), len(profiles))
		}
		for pi, p := range profiles {
			row := agg.Profiles[pi]
			if row.Profile != p.Name {
				t.Fatalf("trial %d: profile row %d is %q, want %q", trial, pi, row.Profile, p.Name)
			}
			var cnt int
			var saved, sp, q, tq, eh float64
			for _, r := range results {
				if r.Profile != p.Name {
					continue
				}
				cnt++
				saved += r.SavedMW
				sp += r.SavedPct
				q += r.QualityPct
				tq += r.TrueQualityPct
				eh += r.ExtraHours
			}
			if row.Devices != cnt {
				t.Errorf("trial %d: profile %s devices = %d, want %d", trial, p.Name, row.Devices, cnt)
			}
			if cnt == 0 {
				if row != (ProfileAggregate{Profile: p.Name}) {
					t.Errorf("trial %d: absent profile %s not zero: %+v", trial, p.Name, row)
				}
				continue
			}
			fc := float64(cnt)
			for _, c := range []struct {
				name      string
				got, want float64
			}{
				{"MeanSavedMW", row.MeanSavedMW, saved / fc},
				{"SavedPctMean", row.SavedPctMean, sp / fc},
				{"QualityPctMean", row.QualityPctMean, q / fc},
				{"TrueQualityPctMean", row.TrueQualityPctMean, tq / fc},
				{"ExtraHoursMean", row.ExtraHoursMean, eh / fc},
			} {
				if !approxEq(c.got, c.want, tol) {
					t.Errorf("trial %d: profile %s %s = %v, reference %v", trial, p.Name, c.name, c.got, c.want)
				}
			}
		}
	}
}

// TestAccumulatorMergeInvariant: any partition of the population into
// shards, merged in any order, must produce the same bytes as folding the
// whole population into one accumulator — the property that makes
// streamed worker sharding exact.
func TestAccumulatorMergeInvariant(t *testing.T) {
	profiles := []Profile{{Name: "messenger"}, {Name: "browser"}, {Name: "gamer"}, {Name: "viewer"}}
	rng := rand.New(rand.NewSource(42))
	results := randomResults(rng, 300)

	one := NewAccumulator()
	for _, r := range results {
		one.Add(r)
	}
	want := fmt.Sprintf("%+v", one.Aggregate(profiles))

	for trial := 0; trial < 10; trial++ {
		nShards := 1 + rng.Intn(8)
		shards := make([]*Accumulator, nShards)
		for i := range shards {
			shards[i] = NewAccumulator()
		}
		for _, r := range results {
			shards[rng.Intn(nShards)].Add(r)
		}
		merged := NewAccumulator()
		for _, i := range rng.Perm(nShards) {
			merged.Merge(shards[i])
		}
		if merged.Devices() != len(results) {
			t.Fatalf("trial %d: merged %d devices, want %d", trial, merged.Devices(), len(results))
		}
		if got := fmt.Sprintf("%+v", merged.Aggregate(profiles)); got != want {
			t.Errorf("trial %d (%d shards): merged aggregate differs:\n got %s\nwant %s", trial, nShards, got, want)
		}
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	agg := NewAccumulator().Aggregate([]Profile{{Name: "p"}})
	if agg.Devices != 0 || agg.QualityCDF != nil || len(agg.Profiles) != 0 {
		t.Errorf("empty accumulator aggregate = %+v, want zero", agg)
	}
}

// TestStreamedCohortMatchesRetained pins the tentpole's exactness claim:
// the streamed aggregate is byte-identical to the retained one at every
// worker count and batch size, with and without device reuse in play.
func TestStreamedCohortMatchesRetained(t *testing.T) {
	cohort := testCohort(6)
	retained, err := cohort.Run(context.Background(), Pool{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := retained.WriteJSON(&want, false); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		workers, batch int
	}{{1, 0}, {2, 0}, {8, 0}, {8, 4}, {3, 64}} {
		streamed := cohort
		streamed.Stream = true
		var rows int
		streamed.Sink = func(d DeviceResult) { rows++ }
		r, err := streamed.Run(context.Background(), Pool{Workers: tc.workers, Batch: tc.batch})
		if err != nil {
			t.Fatalf("workers=%d batch=%d: %v", tc.workers, tc.batch, err)
		}
		if r.Devices != nil {
			t.Errorf("workers=%d: streamed run retained %d device rows", tc.workers, len(r.Devices))
		}
		if rows != cohort.Devices {
			t.Errorf("workers=%d: sink saw %d rows, want %d", tc.workers, rows, cohort.Devices)
		}
		var got bytes.Buffer
		if err := r.WriteJSON(&got, false); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("workers=%d batch=%d: streamed aggregate differs from retained:\n--- retained ---\n%s\n--- streamed ---\n%s",
				tc.workers, tc.batch, want.String(), got.String())
		}
	}
}
