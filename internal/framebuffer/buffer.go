// Package framebuffer models the pixel storage of the simulated device:
// RGBX pixel buffers, damage rectangles, and the sparse sampling grids used
// by the paper's grid-based comparison technique.
//
// The content rate meter in internal/core operates on real pixel data from
// these buffers, exactly as the paper's implementation reads the Android
// framebuffer, so classification of frames as content vs redundant is done
// by actual comparison rather than by trusting workload annotations.
package framebuffer

import "fmt"

// Color is a packed 0x00RRGGBB pixel. The Galaxy S3 framebuffer is RGBX8888;
// the padding byte carries no information so we keep it zero.
type Color uint32

// RGB packs three 8-bit channels into a Color.
func RGB(r, g, b uint8) Color {
	return Color(uint32(r)<<16 | uint32(g)<<8 | uint32(b))
}

// RGB returns the three 8-bit channels of c.
func (c Color) RGB() (r, g, b uint8) {
	return uint8(c >> 16), uint8(c >> 8), uint8(c)
}

// Luminance returns the Rec.601 luma of c in [0, 255]. It feeds the OLED
// panel power model, where emitted light (hence power) tracks pixel
// luminance.
func (c Color) Luminance() float64 {
	r, g, b := c.RGB()
	return 0.299*float64(r) + 0.587*float64(g) + 0.114*float64(b)
}

// Common colors used by the procedural app renderers.
var (
	Black = RGB(0, 0, 0)
	White = RGB(255, 255, 255)
)

// Buffer is a width × height pixel surface stored row-major.
//
// A buffer may additionally carry tile-tracking state (EnableTiles) and
// may temporarily alias another buffer's pixels as a copy-on-write view
// (ShareFrom); both are defined in tile.go. Plain buffers pay nothing
// for either feature.
type Buffer struct {
	w, h int
	pix  []Color

	// Copy-on-write view state (see ShareFrom/own in tile.go): while
	// shared is non-nil, pix aliases shared.pix and spare parks this
	// buffer's own storage for materialization on first write.
	shared *Buffer
	spare  []Color

	// tiles is the optional 32×32 tile-tracking state (see tile.go).
	tiles *tileSet
}

// New allocates a zeroed (black) buffer. Width and height must be positive.
func New(w, h int) *Buffer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("framebuffer: invalid size %dx%d", w, h))
	}
	return &Buffer{w: w, h: h, pix: make([]Color, w*h)}
}

// Width returns the buffer width in pixels.
func (b *Buffer) Width() int { return b.w }

// Height returns the buffer height in pixels.
func (b *Buffer) Height() int { return b.h }

// Bounds returns the full-buffer rectangle.
func (b *Buffer) Bounds() Rect { return Rect{0, 0, b.w, b.h} }

// Pix exposes the raw row-major pixel slice for zero-copy scanning by the
// meter and the OLED power model. Callers must not resize it. Because the
// returned slice can be written through, a copy-on-write view is
// materialized and every palette-compressed tile is realized first;
// in-package readers go through the representation instead.
func (b *Buffer) Pix() []Color {
	b.own()
	b.realizeAll()
	return b.pix
}

// At returns the pixel at (x, y), reading through the content
// representation (shared source, palette decode). Out-of-bounds access
// panics (slice bounds).
func (b *Buffer) At(x, y int) Color { return b.repr().colorAt(x, y) }

// Set writes the pixel at (x, y). On a palette-compressed tile the write
// stays in the index plane while c fits the palette; overflow promotes
// the tile to raw.
func (b *Buffer) Set(x, y int, c Color) {
	b.own()
	if t := b.tiles; t != nil {
		ti := (y>>TileShift)*t.cols + x>>TileShift
		t.gen++
		t.tgen[ti] = t.gen
		if t.palOn && t.palN[ti] > 0 {
			if idx := t.palIndex(ti, c); idx >= 0 {
				np := (y&tileMask)<<TileShift + x&tileMask
				sh := uint(np&1) * 4
				plane := t.tilePlane(ti)
				plane[np>>1] = plane[np>>1]&^(0xF<<sh) | byte(idx)<<sh
				return
			}
			b.realizeTile(ti)
		}
	}
	b.pix[y*b.w+x] = c
}

// Fill sets every pixel in r (clamped to the buffer) to c and returns the
// number of pixels written. On palette-enabled buffers the fill runs in
// the index domain where it can (see fillPal); otherwise the first row is
// painted by doubling copies and replicated into the remaining rows with
// copy, so the bulk of the work runs at memmove speed instead of one
// store per pixel.
func (b *Buffer) Fill(r Rect, c Color) int {
	r = r.Clamp(b.Bounds())
	if r.Empty() {
		return 0
	}
	b.own()
	if t := b.tiles; t != nil && t.palOn {
		b.fillPal(r, c)
	} else {
		b.fillRows(r, c)
	}
	b.touch(r)
	return r.Area()
}

// FillAll sets the whole buffer to c.
func (b *Buffer) FillAll(c Color) int { return b.Fill(b.Bounds(), c) }

// CopyFrom makes b an exact copy of src. The buffers must have identical
// dimensions.
func (b *Buffer) CopyFrom(src *Buffer) {
	if b.w != src.w || b.h != src.h {
		panic(fmt.Sprintf("framebuffer: CopyFrom size mismatch %dx%d vs %dx%d", b.w, b.h, src.w, src.h))
	}
	b.own()
	b.copyAllFrom(src)
	b.touchAll()
}

// Blit copies the srcRect portion of src to b at destination (dx, dy),
// clipping against both buffers. It returns the number of pixels copied.
func (b *Buffer) Blit(src *Buffer, srcRect Rect, dx, dy int) int {
	srcRect = srcRect.Clamp(src.Bounds())
	if srcRect.Empty() {
		return 0
	}
	// Clip the destination against b and translate the clip back to source.
	dst := Rect{dx, dy, dx + srcRect.Dx(), dy + srcRect.Dy()}.Clamp(b.Bounds())
	if dst.Empty() {
		return 0
	}
	sx := srcRect.X0 + (dst.X0 - dx)
	sy := srcRect.Y0 + (dst.Y0 - dy)
	b.own()
	b.realizeRegion(dst)
	b.copyRows(src, sx, sy, dst)
	b.touch(dst)
	return dst.Area()
}

// ScrollVert shifts the content of region r vertically by dy pixels
// (positive dy moves content down the screen, as when a user scrolls up a
// list). Rows vacated by the shift are left untouched for the caller to
// repaint. It returns the rectangle the caller must repaint.
func (b *Buffer) ScrollVert(r Rect, dy int) Rect {
	r = r.Clamp(b.Bounds())
	if r.Empty() || dy == 0 {
		return Rect{}
	}
	if abs(dy) >= r.Dy() {
		return r // everything scrolled out; repaint all (no pixels written)
	}
	b.own()
	b.realizeRegion(r)
	if dy > 0 {
		// Move rows downward, iterating bottom-up to avoid overwrite.
		for y := r.Y1 - 1; y >= r.Y0+dy; y-- {
			src := b.pix[(y-dy)*b.w+r.X0 : (y-dy)*b.w+r.X1]
			dst := b.pix[y*b.w+r.X0 : y*b.w+r.X1]
			copy(dst, src)
		}
		b.touch(Rect{r.X0, r.Y0 + dy, r.X1, r.Y1})
		return Rect{r.X0, r.Y0, r.X1, r.Y0 + dy}
	}
	// dy < 0: move rows upward, top-down.
	for y := r.Y0; y < r.Y1+dy; y++ {
		src := b.pix[(y-dy)*b.w+r.X0 : (y-dy)*b.w+r.X1]
		dst := b.pix[y*b.w+r.X0 : y*b.w+r.X1]
		copy(dst, src)
	}
	b.touch(Rect{r.X0, r.Y0, r.X1, r.Y1 + dy})
	return Rect{r.X0, r.Y1 + dy, r.X1, r.Y1}
}

// Equal reports whether b and o hold identical pixels. Buffers of different
// dimensions are never equal.
//
// When both buffers track tiles, cached-valid signatures answer the
// negative case first: a pair of tiles with differing signatures proves
// the buffers differ without reading pixels (signatures are a pure
// function of tile content, so this direction is exact). Tiles the
// signature path cannot decide — equal or stale signatures — fall back
// to the full pixel scan.
func (b *Buffer) Equal(o *Buffer) bool {
	if b.w != o.w || b.h != o.h {
		return false
	}
	if bt, ot := b.tiles, o.tiles; bt != nil && ot != nil && bt.cols == ot.cols {
		for i := range bt.sig {
			if bt.sigGen[i] == bt.tgen[i] && ot.sigGen[i] == ot.tgen[i] &&
				bt.sig[i] != ot.sig[i] {
				return false
			}
		}
	}
	return b.contentEqual(o)
}

// contentEqual is Equal's exhaustive fallback, reading both sides
// through their content representations.
func (b *Buffer) contentEqual(o *Buffer) bool {
	rb, ro := b.repr(), o.repr()
	bp := rb.tiles != nil && rb.tiles.palTiles > 0
	op := ro.tiles != nil && ro.tiles.palTiles > 0
	if !bp && !op {
		return firstDiff(rb.pix, ro.pix) < 0
	}
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if rb.colorAt(x, y) != ro.colorAt(x, y) {
				return false
			}
		}
	}
	return true
}

// DiffPixels counts pixels that differ between b and o, which must have the
// same dimensions. It is the ground-truth comparison (the "all pixels" row
// of the paper's Figure 6). Identical stretches — the common case when
// comparing consecutive frames — are skipped eight pixels per branch via
// the block kernel; only blocks that differ are rescanned to count.
func (b *Buffer) DiffPixels(o *Buffer) int {
	if b.w != o.w || b.h != o.h {
		panic("framebuffer: DiffPixels size mismatch")
	}
	rb, ro := b.repr(), o.repr()
	if (rb.tiles != nil && rb.tiles.palTiles > 0) || (ro.tiles != nil && ro.tiles.palTiles > 0) {
		n := 0
		for y := 0; y < b.h; y++ {
			for x := 0; x < b.w; x++ {
				if rb.colorAt(x, y) != ro.colorAt(x, y) {
					n++
				}
			}
		}
		return n
	}
	a, c := rb.pix, ro.pix
	n := 0
	i := 0
	for ; i+8 <= len(a); i += 8 {
		x := a[i : i+8 : i+8]
		y := c[i : i+8 : i+8]
		d := (x[0] ^ y[0]) | (x[1] ^ y[1]) | (x[2] ^ y[2]) | (x[3] ^ y[3]) |
			(x[4] ^ y[4]) | (x[5] ^ y[5]) | (x[6] ^ y[6]) | (x[7] ^ y[7])
		if d == 0 {
			continue
		}
		for j := 0; j < 8; j++ {
			if x[j] != y[j] {
				n++
			}
		}
	}
	for ; i < len(a); i++ {
		if a[i] != c[i] {
			n++
		}
	}
	return n
}

// MeanLuminance returns the average Rec.601 luma over the whole buffer.
// The OLED panel model consumes this.
func (b *Buffer) MeanLuminance() float64 {
	rb := b.repr()
	if rb.tiles != nil && rb.tiles.palTiles > 0 {
		// Decode in pixel order so the float accumulation is bit-identical
		// to the raw scan whatever the representation.
		sum := 0.0
		for y := 0; y < rb.h; y++ {
			for x := 0; x < rb.w; x++ {
				sum += rb.colorAt(x, y).Luminance()
			}
		}
		return sum / float64(rb.w*rb.h)
	}
	if len(rb.pix) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range rb.pix {
		sum += p.Luminance()
	}
	return sum / float64(len(rb.pix))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
