package framebuffer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColorPacking(t *testing.T) {
	c := RGB(0x12, 0x34, 0x56)
	if c != 0x123456 {
		t.Errorf("RGB packed to %#x", uint32(c))
	}
	r, g, b := c.RGB()
	if r != 0x12 || g != 0x34 || b != 0x56 {
		t.Errorf("unpacked to %#x %#x %#x", r, g, b)
	}
}

func TestColorLuminance(t *testing.T) {
	if got := Black.Luminance(); got != 0 {
		t.Errorf("black luminance = %v", got)
	}
	if got := White.Luminance(); got < 254.9 || got > 255.1 {
		t.Errorf("white luminance = %v, want ≈255", got)
	}
	if g, r := RGB(0, 200, 0).Luminance(), RGB(200, 0, 0).Luminance(); g <= r {
		t.Errorf("green luma %v should exceed red luma %v", g, r)
	}
}

func TestBufferFillAndAt(t *testing.T) {
	b := New(8, 6)
	if b.Width() != 8 || b.Height() != 6 {
		t.Fatalf("dims = %dx%d", b.Width(), b.Height())
	}
	n := b.Fill(R(2, 1, 5, 4), RGB(10, 20, 30))
	if n != 9 {
		t.Errorf("Fill wrote %d pixels, want 9", n)
	}
	if b.At(2, 1) != RGB(10, 20, 30) || b.At(4, 3) != RGB(10, 20, 30) {
		t.Error("filled pixels not set")
	}
	if b.At(1, 1) != Black || b.At(5, 4) != Black {
		t.Error("pixels outside fill modified")
	}
	// Fill clamps to bounds.
	n = b.Fill(R(6, 4, 100, 100), White)
	if n != 2*2 {
		t.Errorf("clamped Fill wrote %d, want 4", n)
	}
}

func TestBufferCopyBlitEqual(t *testing.T) {
	src := New(10, 10)
	src.Fill(R(0, 0, 10, 10), RGB(1, 2, 3))
	src.Fill(R(3, 3, 6, 6), White)

	dst := New(10, 10)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom result not Equal")
	}
	if dst.DiffPixels(src) != 0 {
		t.Error("DiffPixels after copy != 0")
	}

	dst.Set(0, 0, White)
	if dst.Equal(src) {
		t.Error("Equal after single-pixel change")
	}
	if dst.DiffPixels(src) != 1 {
		t.Errorf("DiffPixels = %d, want 1", dst.DiffPixels(src))
	}

	// Blit the white square elsewhere.
	other := New(10, 10)
	n := other.Blit(src, R(3, 3, 6, 6), 0, 0)
	if n != 9 {
		t.Errorf("Blit copied %d, want 9", n)
	}
	if other.At(0, 0) != White || other.At(2, 2) != White {
		t.Error("blitted pixels wrong")
	}
	if other.At(3, 3) != Black {
		t.Error("pixel outside blit destination modified")
	}
	// Blit clipped at destination edge.
	n = other.Blit(src, R(0, 0, 10, 10), 7, 8)
	if n != 3*2 {
		t.Errorf("clipped Blit copied %d, want 6", n)
	}
}

func TestBufferEqualDifferentSizes(t *testing.T) {
	if New(4, 4).Equal(New(4, 5)) {
		t.Error("buffers of different sizes reported Equal")
	}
}

func TestScrollVertDown(t *testing.T) {
	b := New(4, 6)
	for y := 0; y < 6; y++ {
		b.Fill(R(0, y, 4, y+1), RGB(uint8(y), 0, 0))
	}
	repaint := b.ScrollVert(b.Bounds(), 2)
	if repaint != R(0, 0, 4, 2) {
		t.Errorf("repaint rect = %v, want rows 0-2", repaint)
	}
	for y := 2; y < 6; y++ {
		if b.At(0, y) != RGB(uint8(y-2), 0, 0) {
			t.Errorf("row %d = %v, want original row %d", y, b.At(0, y), y-2)
		}
	}
}

func TestScrollVertUp(t *testing.T) {
	b := New(4, 6)
	for y := 0; y < 6; y++ {
		b.Fill(R(0, y, 4, y+1), RGB(uint8(y), 0, 0))
	}
	repaint := b.ScrollVert(b.Bounds(), -2)
	if repaint != R(0, 4, 4, 6) {
		t.Errorf("repaint rect = %v, want rows 4-6", repaint)
	}
	for y := 0; y < 4; y++ {
		if b.At(0, y) != RGB(uint8(y+2), 0, 0) {
			t.Errorf("row %d = %v, want original row %d", y, b.At(0, y), y+2)
		}
	}
}

func TestScrollVertWholeRegion(t *testing.T) {
	b := New(4, 4)
	if got := b.ScrollVert(b.Bounds(), 10); got != b.Bounds() {
		t.Errorf("overshooting scroll repaint = %v, want full bounds", got)
	}
	if got := b.ScrollVert(b.Bounds(), 0); !got.Empty() {
		t.Errorf("zero scroll repaint = %v, want empty", got)
	}
}

func TestMeanLuminance(t *testing.T) {
	b := New(2, 2)
	b.FillAll(White)
	if got := b.MeanLuminance(); got < 254 {
		t.Errorf("all-white mean luminance = %v", got)
	}
	b.Fill(R(0, 0, 1, 2), Black) // half black
	full := White.Luminance()
	if got := b.MeanLuminance(); got < full/2-1 || got > full/2+1 {
		t.Errorf("half-white mean luminance = %v, want ≈%v", got, full/2)
	}
}

// Property: Fill then DiffPixels against a copy equals the filled area,
// when the fill color differs from the prior content.
func TestFillDiffProperty(t *testing.T) {
	f := func(x0, y0, w, h uint8) bool {
		b := New(64, 64)
		b.FillAll(RGB(9, 9, 9))
		before := New(64, 64)
		before.CopyFrom(b)
		r := R(int(x0%64), int(y0%64), int(x0%64)+int(w%32), int(y0%64)+int(h%32))
		n := b.Fill(r, White)
		return b.DiffPixels(before) == n && n == r.Clamp(b.Bounds()).Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ScrollVert preserves the multiset of surviving rows.
func TestScrollPreservesRowsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 100; iter++ {
		h := 8 + rng.Intn(24)
		b := New(5, h)
		rows := make([]Color, h)
		for y := 0; y < h; y++ {
			rows[y] = RGB(uint8(rng.Intn(256)), uint8(rng.Intn(256)), 0)
			b.Fill(R(0, y, 5, y+1), rows[y])
		}
		dy := rng.Intn(2*h) - h
		b.ScrollVert(b.Bounds(), dy)
		if dy == 0 || abs(dy) >= h {
			continue
		}
		if dy > 0 {
			for y := dy; y < h; y++ {
				if b.At(0, y) != rows[y-dy] {
					t.Fatalf("iter %d: row %d after scroll %d is wrong", iter, y, dy)
				}
			}
		} else {
			for y := 0; y < h+dy; y++ {
				if b.At(0, y) != rows[y-dy] {
					t.Fatalf("iter %d: row %d after scroll %d is wrong", iter, y, dy)
				}
			}
		}
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 5) did not panic")
		}
	}()
	New(0, 5)
}

func BenchmarkDiffPixelsFullHD(b *testing.B) {
	x := New(720, 1280)
	y := New(720, 1280)
	y.Set(100, 100, White)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.DiffPixels(y)
	}
}

func BenchmarkFillSprite(b *testing.B) {
	buf := New(720, 1280)
	for i := 0; i < b.N; i++ {
		buf.Fill(R(100, 100, 140, 140), Color(i))
	}
}
