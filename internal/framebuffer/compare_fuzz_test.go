package framebuffer

import (
	"encoding/binary"
	"testing"
)

// refDiffPixels is the naive per-pixel counter the optimized
// Buffer.DiffPixels block kernel must agree with.
func refDiffPixels(a, b []Color) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// refFill paints r into b one store at a time — the semantics the
// doubling-copy Fill must reproduce exactly.
func refFill(b *Buffer, r Rect, c Color) int {
	r = r.Clamp(b.Bounds())
	n := 0
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			b.Set(x, y, c)
			n++
		}
	}
	return n
}

// fuzzColors decodes the fuzz payload into a pixel slice of length n: four
// bytes per pixel, zero-padded when the payload runs short.
func fuzzColors(data []byte, n int) []Color {
	out := make([]Color, n)
	for i := 0; i < n; i++ {
		var v uint32
		if off := i * 4; off+4 <= len(data) {
			v = binary.LittleEndian.Uint32(data[off : off+4])
		} else if off < len(data) {
			rest := make([]byte, 4)
			copy(rest, data[off:])
			v = binary.LittleEndian.Uint32(rest)
		}
		out[i] = Color(v)
	}
	return out
}

// FuzzGridCompare differentially tests every optimized comparison kernel —
// SamplesFirstDiff's 8-way block scan, Buffer.Equal, Buffer.DiffPixels and
// the doubling-copy Fill — against their naive references on arbitrary
// pixel data and dimensions. The block kernels are only optimizations;
// any divergence from the element-wise reference is a bug.
func FuzzGridCompare(f *testing.F) {
	// Seeds cover the kernel edge cases: 1×1 (no full block), prime sizes
	// (scalar tail after the 8-wide blocks), all-equal data (the full-sweep
	// early-exit-free path), and a difference inside the final tail.
	f.Add(uint16(1), uint16(1), []byte{}, []byte{1, 0, 0, 0})
	f.Add(uint16(7), uint16(1), []byte{}, []byte{})
	f.Add(uint16(13), uint16(3), make([]byte, 13*3*4), make([]byte, 13*3*4))
	f.Add(uint16(17), uint16(2), []byte{1, 2, 3, 4}, []byte{4, 3, 2, 1})
	f.Add(uint16(8), uint16(8), make([]byte, 8*8*4), append(make([]byte, 8*8*4-4), 0xff, 0, 0, 0))

	f.Fuzz(func(t *testing.T, w, h uint16, adata, bdata []byte) {
		width := int(w%64) + 1
		height := int(h%64) + 1
		n := width * height
		av := fuzzColors(adata, n)
		bv := fuzzColors(bdata, n)

		// SamplesFirstDiff vs the element-wise reference: identical index,
		// not merely identical same/different classification.
		got := SamplesFirstDiff(av, bv)
		want := samplesFirstDiffRef(av, bv)
		if got != want {
			t.Fatalf("SamplesFirstDiff(%dx%d) = %d, ref = %d", width, height, got, want)
		}

		ab, bb := New(width, height), New(width, height)
		copy(ab.Pix(), av)
		copy(bb.Pix(), bv)

		if gotEq, wantEq := ab.Equal(bb), want < 0; gotEq != wantEq {
			t.Fatalf("Equal(%dx%d) = %v, ref = %v", width, height, gotEq, wantEq)
		}
		if gotN, wantN := ab.DiffPixels(bb), refDiffPixels(av, bv); gotN != wantN {
			t.Fatalf("DiffPixels(%dx%d) = %d, ref = %d", width, height, gotN, wantN)
		}

		// Fill: the doubling-copy fill and the per-pixel reference must
		// produce identical buffers and counts for an arbitrary rectangle
		// (including empty and out-of-bounds ones, which Clamp discards).
		rect := Rect{
			X0: int(w) % (width + 2), Y0: int(h) % (height + 2),
			X1: n % (width + 2), Y1: (n / 2) % (height + 2),
		}
		c := Color(0)
		if len(adata) >= 4 {
			c = Color(binary.LittleEndian.Uint32(adata[:4]))
		}
		fa, fb := New(width, height), New(width, height)
		copy(fa.Pix(), av)
		copy(fb.Pix(), av)
		gotN := fa.Fill(rect, c)
		wantN := refFill(fb, rect, c)
		if gotN != wantN {
			t.Fatalf("Fill(%v) count = %d, ref = %d", rect, gotN, wantN)
		}
		if !fa.Equal(fb) {
			t.Fatalf("Fill(%v) pixels diverge from reference", rect)
		}
	})
}
