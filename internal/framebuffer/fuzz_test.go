package framebuffer

import (
	"bytes"
	"testing"
)

// FuzzReadPPM hardens the screenshot parser: arbitrary input must either
// error or produce a buffer that re-serializes to an equivalent image.
func FuzzReadPPM(f *testing.F) {
	good := New(3, 2)
	good.Set(1, 1, RGB(10, 20, 30))
	var buf bytes.Buffer
	if err := good.WritePPM(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P6\n1 1\n255\nRGB"))
	f.Add([]byte("P5\n1 1\n255\n."))
	f.Add([]byte(""))
	f.Add([]byte("P6\n99999999 99999999\n255\n"))

	f.Fuzz(func(t *testing.T, in []byte) {
		b, err := ReadPPM(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := b.WritePPM(&out); err != nil {
			t.Fatalf("accepted image failed to serialize: %v", err)
		}
		b2, err := ReadPPM(&out)
		if err != nil {
			t.Fatalf("re-serialized image failed to parse: %v", err)
		}
		if !b.Equal(b2) {
			t.Fatal("PPM round trip not stable")
		}
	})
}
