package framebuffer

import (
	"fmt"
	"math"
)

// Grid is the paper's grid-based comparison lattice: the screen is divided
// into cols × rows cells and the RGB value of each cell is represented by
// its center pixel. Comparing only the sampled lattice instead of every
// pixel makes content-rate metering nearly free (paper §3.1, Figure 4).
type Grid struct {
	w, h       int // screen dimensions
	cols, rows int // lattice dimensions
	xs, ys     []int
	// flat holds the precomputed row-major pixel index (y*w + x) of every
	// lattice point, so sampling is a single gather loop with no per-row
	// arithmetic. int32 keeps the table at 4 bytes per sample (the largest
	// supported screen, 921600 pixels, fits comfortably).
	flat []int32
	// tileOf and nibPos locate each lattice point in the tile layer:
	// tileOf[i] is the 32×32 tile index and nibPos[i] the tile-local
	// nibble offset, so sampling and delta comparison read
	// palette-compressed tiles without decoding them (see palette.go).
	tileOf []int32
	nibPos []int32
}

// NewGrid constructs a cols × rows sampling lattice over a w × h screen.
// All arguments must be positive and the lattice must not exceed the screen.
func NewGrid(w, h, cols, rows int) Grid {
	if w <= 0 || h <= 0 || cols <= 0 || rows <= 0 || cols > w || rows > h {
		panic(fmt.Sprintf("framebuffer: invalid grid %dx%d over %dx%d", cols, rows, w, h))
	}
	g := Grid{w: w, h: h, cols: cols, rows: rows}
	g.xs = centers(w, cols)
	g.ys = centers(h, rows)
	g.flat = make([]int32, 0, cols*rows)
	g.tileOf = make([]int32, 0, cols*rows)
	g.nibPos = make([]int32, 0, cols*rows)
	tcols := tilesFor(w)
	for _, y := range g.ys {
		base := int32(y * w)
		for _, x := range g.xs {
			g.flat = append(g.flat, base+int32(x))
			g.tileOf = append(g.tileOf, int32((y>>TileShift)*tcols+x>>TileShift))
			g.nibPos = append(g.nibPos, int32((y&tileMask)<<TileShift+x&tileMask))
		}
	}
	return g
}

// centers returns the center coordinate of each of n equal cells spanning
// [0, extent).
func centers(extent, n int) []int {
	cs := make([]int, n)
	for i := range cs {
		// Cell i spans [i*extent/n, (i+1)*extent/n); take its midpoint.
		cs[i] = (2*i*extent + extent) / (2 * n)
	}
	return cs
}

// GridForSamples builds a lattice with approximately n sample points over a
// w × h screen, preserving the screen aspect ratio, mirroring the paper's
// experimental grids for the 720×1280 Galaxy S3 panel:
//
//	2K → 36×64, 4K → 48×85(≈90), 9K → 72×128, 36K → 144×256, 921K → 720×1280.
func GridForSamples(w, h, n int) Grid {
	if n >= w*h {
		return NewGrid(w, h, w, h)
	}
	// cols/rows ≈ w/h and cols*rows ≈ n  ⇒  cols = sqrt(n·w/h).
	cols := int(math.Round(math.Sqrt(float64(n) * float64(w) / float64(h))))
	if cols < 1 {
		cols = 1
	}
	if cols > w {
		cols = w
	}
	rows := (n + cols - 1) / cols
	if rows < 1 {
		rows = 1
	}
	if rows > h {
		rows = h
	}
	return NewGrid(w, h, cols, rows)
}

// Samples returns the number of lattice points.
func (g Grid) Samples() int { return g.cols * g.rows }

// Dims returns the lattice dimensions (cols, rows).
func (g Grid) Dims() (cols, rows int) { return g.cols, g.rows }

// ScreenDims returns the screen dimensions the lattice was built for.
func (g Grid) ScreenDims() (w, h int) { return g.w, g.h }

// Sample reads the lattice pixels of buf into dst, which must have length
// Samples(). buf must match the grid's screen dimensions.
func (g Grid) Sample(buf *Buffer, dst []Color) {
	if buf.Width() != g.w || buf.Height() != g.h {
		panic(fmt.Sprintf("framebuffer: Sample on %dx%d buffer with %dx%d grid screen",
			buf.Width(), buf.Height(), g.w, g.h))
	}
	if len(dst) != g.Samples() {
		panic(fmt.Sprintf("framebuffer: Sample dst length %d, want %d", len(dst), g.Samples()))
	}
	// Read the representation directly (not Pix()): sampling must never
	// materialize a copy-on-write buffer nor realize a compressed tile.
	rb := buf.repr()
	if rb.tiles != nil && rb.tiles.palTiles > 0 {
		g.samplePal(rb, dst[:g.Samples()])
		return
	}
	pix := rb.pix
	idx := g.flat
	dst = dst[:len(idx)]
	// Gather four lattice points per iteration: the unroll amortizes loop
	// and bounds-check overhead over the memory loads that dominate.
	i := 0
	for ; i+4 <= len(idx); i += 4 {
		q := idx[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] = pix[q[0]]
		d[1] = pix[q[1]]
		d[2] = pix[q[2]]
		d[3] = pix[q[3]]
	}
	for ; i < len(idx); i++ {
		dst[i] = pix[idx[i]]
	}
}

// samplePal gathers the lattice from a representation buffer holding at
// least one palette-compressed tile: raw lattice points read the pixel
// array as usual, compressed points decode a single nibble through the
// tile palette — no per-sample decode buffer, no materialization.
func (g Grid) samplePal(rb *Buffer, dst []Color) {
	t := rb.tiles
	pix := rb.pix
	for i, fi := range g.flat {
		ti := int(g.tileOf[i])
		if t.palN[ti] == 0 {
			dst[i] = pix[fi]
			continue
		}
		np := int(g.nibPos[i])
		nib := t.plane[ti*planeTileBytes+np>>1] >> (uint(np&1) * 4)
		dst[i] = t.pal[ti*PaletteCap+int(nib&0xF)]
	}
}

// SamplesDiffer reports whether two sampled lattices differ anywhere. Both
// slices must have equal length.
func SamplesDiffer(a, b []Color) bool {
	return SamplesFirstDiff(a, b) >= 0
}

// SamplesFirstDiff returns the index of the first differing sample, or -1
// when the lattices are identical. The early-exit meter uses the index to
// account only the comparison work actually performed.
//
// The scan XOR-folds blocks of eight samples so the all-equal sweep — the
// full-cost path that declares a frame redundant — takes one branch per
// block; on a mismatch the block is rescanned to report the exact first
// index, so the result is identical to the naive element-wise scan
// (samplesFirstDiffRef, which the fuzz harness cross-checks).
func SamplesFirstDiff(a, b []Color) int {
	if len(a) != len(b) {
		panic("framebuffer: SamplesFirstDiff length mismatch")
	}
	return firstDiff(a, b)
}

// firstDiff is the shared block-compare kernel behind SamplesFirstDiff,
// Buffer.Equal and Buffer.DiffPixels. Slices must have equal length.
func firstDiff(a, b []Color) int {
	i := 0
	for ; i+8 <= len(a); i += 8 {
		x := a[i : i+8 : i+8]
		y := b[i : i+8 : i+8]
		d := (x[0] ^ y[0]) | (x[1] ^ y[1]) | (x[2] ^ y[2]) | (x[3] ^ y[3]) |
			(x[4] ^ y[4]) | (x[5] ^ y[5]) | (x[6] ^ y[6]) | (x[7] ^ y[7])
		if d != 0 {
			break
		}
	}
	for ; i < len(a); i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// samplesFirstDiffRef is the naive reference comparator kept for
// differential testing (fuzz and property tests) of the block-compare
// kernel above. It must never be used on a hot path.
func samplesFirstDiffRef(a, b []Color) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// DoubleBuffer implements the paper's double-buffering technique for the
// meter: two sampled-lattice buffers are alternated so that the previous
// frame's samples remain available while the current frame is sampled,
// avoiding a copy on every frame (paper §3.1, "Double Buffering").
type DoubleBuffer struct {
	front, back []Color
	primed      bool
}

// NewDoubleBuffer allocates both lattice buffers for n samples.
func NewDoubleBuffer(n int) *DoubleBuffer {
	return &DoubleBuffer{front: make([]Color, n), back: make([]Color, n)}
}

// Front returns the buffer to sample the current frame into.
func (d *DoubleBuffer) Front() []Color { return d.front }

// Back returns the previous frame's samples. Valid only once Primed.
func (d *DoubleBuffer) Back() []Color { return d.back }

// Primed reports whether at least one frame has been committed, i.e.
// whether Back holds valid previous-frame samples.
func (d *DoubleBuffer) Primed() bool { return d.primed }

// Commit makes the current front buffer the new back buffer (the "previous
// frame") and recycles the old back buffer as the next front.
func (d *DoubleBuffer) Commit() {
	d.front, d.back = d.back, d.front
	d.primed = true
}

// Reset discards the comparison history so the next committed frame primes
// the buffer afresh. The lattices are deliberately not cleared: Front is
// fully overwritten by Grid.Sample before any comparison, and Back is only
// read once a post-Reset Commit has primed it — so stale contents are
// unreachable and a reset buffer behaves exactly like a new one, without
// the memclr.
func (d *DoubleBuffer) Reset() { d.primed = false }
