package framebuffer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridForSamplesPaperSizes(t *testing.T) {
	// The paper's Figure 6 grids for the Galaxy S3's 720×1280 panel.
	cases := []struct {
		n          int
		cols, rows int
	}{
		{2304, 36, 64},      // "2K (36x64)"
		{921600, 720, 1280}, // "921K (720x1280)" — full resolution
	}
	for _, c := range cases {
		g := GridForSamples(720, 1280, c.n)
		cols, rows := g.Dims()
		if cols != c.cols || rows != c.rows {
			t.Errorf("GridForSamples(%d) = %dx%d, want %dx%d", c.n, cols, rows, c.cols, c.rows)
		}
	}
	// 9K (72×128) and 36K (144×256) follow the aspect-preserving rule.
	g := GridForSamples(720, 1280, 9216)
	if cols, rows := g.Dims(); cols != 72 || rows != 128 {
		t.Errorf("9K grid = %dx%d, want 72x128", cols, rows)
	}
	g = GridForSamples(720, 1280, 36864)
	if cols, rows := g.Dims(); cols != 144 || rows != 256 {
		t.Errorf("36K grid = %dx%d, want 144x256", cols, rows)
	}
}

func TestGridSampleReadsCenters(t *testing.T) {
	// 2x2 grid on a 4x4 screen: cell centers at (1,1),(3,1),(1,3),(3,3).
	b := New(4, 4)
	b.Set(1, 1, RGB(1, 0, 0))
	b.Set(3, 1, RGB(2, 0, 0))
	b.Set(1, 3, RGB(3, 0, 0))
	b.Set(3, 3, RGB(4, 0, 0))
	g := NewGrid(4, 4, 2, 2)
	got := make([]Color, 4)
	g.Sample(b, got)
	want := []Color{RGB(1, 0, 0), RGB(2, 0, 0), RGB(3, 0, 0), RGB(4, 0, 0)}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGridFullResolutionIsIdentity(t *testing.T) {
	b := New(6, 5)
	for i := range b.Pix() {
		b.Pix()[i] = Color(i)
	}
	g := NewGrid(6, 5, 6, 5)
	got := make([]Color, g.Samples())
	g.Sample(b, got)
	for i := range got {
		if got[i] != Color(i) {
			t.Fatalf("full-res grid sample %d = %v, want %v", i, got[i], Color(i))
		}
	}
}

func TestSamplesDiffer(t *testing.T) {
	a := []Color{1, 2, 3}
	b := []Color{1, 2, 3}
	if SamplesDiffer(a, b) {
		t.Error("identical samples reported different")
	}
	b[2] = 9
	if !SamplesDiffer(a, b) {
		t.Error("different samples reported identical")
	}
}

func TestDoubleBuffer(t *testing.T) {
	d := NewDoubleBuffer(3)
	if d.Primed() {
		t.Error("fresh double buffer is primed")
	}
	copy(d.Front(), []Color{1, 2, 3})
	d.Commit()
	if !d.Primed() {
		t.Error("not primed after commit")
	}
	if d.Back()[0] != 1 || d.Back()[2] != 3 {
		t.Error("Back does not hold committed samples")
	}
	copy(d.Front(), []Color{4, 5, 6})
	if d.Back()[0] != 1 {
		t.Error("writing Front disturbed Back")
	}
	d.Commit()
	if d.Back()[0] != 4 {
		t.Error("second commit did not rotate buffers")
	}
}

// Property: a change to any single pixel that happens to be a lattice
// center is always detected; the full-resolution lattice detects every
// change.
func TestGridDetectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := GridForSamples(72, 128, 1000)
	b := New(72, 128)
	prev := make([]Color, g.Samples())
	cur := make([]Color, g.Samples())
	g.Sample(b, prev)
	for iter := 0; iter < 200; iter++ {
		x, y := rng.Intn(72), rng.Intn(128)
		old := b.At(x, y)
		b.Set(x, y, old+1)
		g.Sample(b, cur)
		onLattice := false
		for _, gy := range g.ys {
			if gy != y {
				continue
			}
			for _, gx := range g.xs {
				if gx == x {
					onLattice = true
				}
			}
		}
		if got := SamplesDiffer(prev, cur); got != onLattice {
			t.Fatalf("pixel (%d,%d): detected=%v onLattice=%v", x, y, got, onLattice)
		}
		b.Set(x, y, old)
	}
}

// Property: GridForSamples yields a lattice whose sample count is within a
// factor of 2 of the request and never exceeds the screen, for any screen.
func TestGridForSamplesBoundsProperty(t *testing.T) {
	f := func(wRaw, hRaw uint16, nRaw uint32) bool {
		w := int(wRaw%1000) + 8
		h := int(hRaw%2000) + 8
		n := int(nRaw%uint32(w*h)) + 1
		g := GridForSamples(w, h, n)
		cols, rows := g.Dims()
		if cols > w || rows > h || cols < 1 || rows < 1 {
			return false
		}
		s := g.Samples()
		if n >= w*h {
			return s == w*h
		}
		return s >= n/2 && s <= 3*n || s == w*h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGridSample9K(b *testing.B) {
	buf := New(720, 1280)
	g := GridForSamples(720, 1280, 9216)
	dst := make([]Color, g.Samples())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Sample(buf, dst)
	}
}
