package framebuffer

import "bytes"

// Palette-compressed tiles: the *Surface Compression Using Dynamic Color
// Palettes* idea (PAPERS.md), the companion of the tile-signature
// rendering elimination in tile.go. Mobile UI surfaces are overwhelmingly
// flat fills over a handful of colors, so a tile whose content fits a
// small dynamic palette stores 4-bit indices plus a palette side table —
// 512 bytes of indices instead of 4 KB of pixels — and every kernel that
// streams tile bytes (blit, hash, compare, fill) touches 8× less memory.
//
// Representation contract. Palette compression is a pure representation
// change, invisible in content:
//
//   - When palN[i] > 0, tile i's content is DEFINED by (plane, pal) and
//     the pixel array is stale under it. When palN[i] == 0 the pixel
//     array is authoritative, exactly as before.
//   - Signatures stay a pure function of content: hashTilePal hashes the
//     DECODED colors, bit-identical to the raw hash, so Equal's
//     "differing signatures imply differing bytes" direction keeps
//     holding across mixed representations.
//   - Promotion back to raw is transparent: palette overflow on a
//     partial write, or a raw kernel (Blit, ScrollVert) landing on a
//     compressed tile, realizes the tile into the pixel array first.
//     A fill covering a whole tile resets it to a fresh one-color
//     palette, so flat UI churns between solid palettes, not raw.
//
// Readers must be representation-aware AND sharing-aware: a copy-on-write
// view's content lives on its shared source (which may be compressed, or
// even compacted with no pixel array at all), while generations and
// signature caches stay on the view's own tile set. repr() picks the
// content side of that split.

const (
	// PaletteCap is the maximum palette size of a compressed tile: 4-bit
	// indices address at most 16 colors.
	PaletteCap = 16
	// tilePixels is the pixel count of a full 32×32 tile.
	tilePixels = TileSize * TileSize
	// planeTileBytes is the index-plane storage per tile: two 4-bit
	// indices per byte, even local x in the low nibble.
	planeTileBytes = tilePixels / 2
)

// repr returns the buffer holding b's content representation: the shared
// source while b is a copy-on-write view, b itself otherwise. Content
// (pixels, palettes) is read from repr(); generations and signature
// caches are read from b's own tile set.
func (b *Buffer) repr() *Buffer {
	if b.shared != nil {
		return b.shared
	}
	return b
}

// EnablePalettes turns on palette compression for b (implies tile
// tracking). Idempotent; all tiles start raw. Pooled buffers keep their
// palette state across reuse under the same contract as their pixels.
func (b *Buffer) EnablePalettes() {
	b.EnableTiles()
	t := b.tiles
	if t.palOn {
		return
	}
	t.palOn = true
	if t.palN == nil {
		n := t.cols * t.rows
		t.palN = make([]uint8, n)
		t.plane = make([]byte, n*planeTileBytes)
		t.pal = make([]Color, n*PaletteCap)
	}
}

// DisablePalettes realizes every compressed tile back to raw pixels and
// turns palette compression off — the `-no-palette` oracle path. Safe on
// buffers that never had palettes.
func (b *Buffer) DisablePalettes() {
	if b.tiles == nil || !b.tiles.palOn {
		return
	}
	b.own()
	b.realizeAll()
	b.tiles.palOn = false
}

// PalettesEnabled reports whether palette compression is enabled on b.
func (b *Buffer) PalettesEnabled() bool { return b.tiles != nil && b.tiles.palOn }

// PaletteTiles returns the number of tiles currently stored in
// palette-compressed form, read through the content representation — a
// copy-on-write view of a compressed memo screen reports the memo's
// tiles.
func (b *Buffer) PaletteTiles() int {
	rb := b.repr()
	if rb.tiles == nil {
		return 0
	}
	return rb.tiles.palTiles
}

// PalettePromotions returns how many times one of b's own tiles was
// realized back to raw: palette overflows and raw-kernel writes over
// compressed tiles.
func (b *Buffer) PalettePromotions() uint64 {
	if b.tiles == nil {
		return 0
	}
	return b.tiles.promotions
}

// tilePal returns tile i's palette storage (PaletteCap entries).
func (t *tileSet) tilePal(i int) []Color {
	return t.pal[i*PaletteCap : i*PaletteCap+PaletteCap : i*PaletteCap+PaletteCap]
}

// tilePlane returns tile i's 512-byte index plane.
func (t *tileSet) tilePlane(i int) []byte {
	return t.plane[i*planeTileBytes : (i+1)*planeTileBytes : (i+1)*planeTileBytes]
}

// palIndex returns tile i's palette index for c, appending c when the
// palette has room, or -1 on overflow.
func (t *tileSet) palIndex(i int, c Color) int {
	pal := t.tilePal(i)
	n := int(t.palN[i])
	for k := 0; k < n; k++ {
		if pal[k] == c {
			return k
		}
	}
	if n == PaletteCap {
		return -1
	}
	pal[n] = c
	t.palN[i] = uint8(n + 1)
	return n
}

// dropPalettes discards all palette state without decoding — used when
// the raw pixel array has just been made authoritative wholesale.
func (t *tileSet) dropPalettes() {
	if t.palTiles == 0 {
		return
	}
	for i := range t.palN {
		t.palN[i] = 0
	}
	t.palTiles = 0
}

// colorAt reads one pixel of content, decoding through the palette when
// the containing tile is compressed. b must be a representation buffer
// (call through repr()).
func (b *Buffer) colorAt(x, y int) Color {
	if t := b.tiles; t != nil && t.palTiles > 0 {
		ti := (y>>TileShift)*t.cols + x>>TileShift
		if t.palN[ti] > 0 {
			np := (y&tileMask)<<TileShift + x&tileMask
			nib := t.plane[ti*planeTileBytes+np>>1] >> (uint(np&1) * 4)
			return t.pal[ti*PaletteCap+int(nib&0xF)]
		}
	}
	return b.pix[y*b.w+x]
}

// decodeRun decodes count consecutive nibbles of plane, starting at
// tile-local nibble offset np, through pal into out.
func decodeRun(plane []byte, pal []Color, np int, out []Color) {
	i := 0
	if np&1 == 1 && i < len(out) {
		out[i] = pal[plane[np>>1]>>4&0xF]
		i++
		np++
	}
	for ; i+2 <= len(out); i += 2 {
		bb := plane[np>>1]
		out[i] = pal[bb&0xF]
		out[i+1] = pal[bb>>4&0xF]
		np += 2
	}
	if i < len(out) {
		out[i] = pal[plane[np>>1]&0xF]
	}
}

// readRow copies n pixels of content starting at (x, y) into out,
// decoding palettized tiles. b must be a representation buffer.
func (b *Buffer) readRow(out []Color, x, y, n int) {
	t := b.tiles
	if t == nil || t.palTiles == 0 {
		copy(out[:n], b.pix[y*b.w+x:y*b.w+x+n])
		return
	}
	row := (y >> TileShift) * t.cols
	for n > 0 {
		ti := row + x>>TileShift
		run := TileSize - x&tileMask
		if run > n {
			run = n
		}
		if t.palN[ti] > 0 {
			decodeRun(t.tilePlane(ti), t.tilePal(ti), (y&tileMask)<<TileShift+x&tileMask, out[:run])
		} else {
			copy(out[:run], b.pix[y*b.w+x:y*b.w+x+run])
		}
		out = out[run:]
		x += run
		n -= run
	}
}

// realizeTile decodes compressed tile i back into the raw pixel array
// and drops its palette — the promotion path taken on palette overflow
// and under raw-kernel writes. Content is unchanged, so generations and
// cached signatures stay valid. b must be materialized.
func (b *Buffer) realizeTile(i int) {
	t := b.tiles
	r := b.TileRect(i)
	plane, pal := t.tilePlane(i), t.tilePal(i)
	for y := r.Y0; y < r.Y1; y++ {
		decodeRun(plane, pal, (y&tileMask)<<TileShift+r.X0&tileMask, b.pix[y*b.w+r.X0:y*b.w+r.X1])
	}
	t.palN[i] = 0
	t.palTiles--
	t.promotions++
}

// realizeRegion realizes every compressed tile overlapping r. Callers
// about to write raw pixels inside r use it to make the pixel array
// authoritative there first.
func (b *Buffer) realizeRegion(r Rect) {
	t := b.tiles
	if t == nil || t.palTiles == 0 {
		return
	}
	r = r.Clamp(b.Bounds())
	if r.Empty() {
		return
	}
	for ty := r.Y0 >> TileShift; ty <= (r.Y1-1)>>TileShift; ty++ {
		for tx := r.X0 >> TileShift; tx <= (r.X1-1)>>TileShift; tx++ {
			if i := ty*t.cols + tx; t.palN[i] > 0 {
				b.realizeTile(i)
			}
		}
	}
}

// realizeAll realizes every compressed tile, reallocating the pixel
// array if it was dropped by Compact.
func (b *Buffer) realizeAll() {
	t := b.tiles
	if t == nil || t.palTiles == 0 {
		return
	}
	if b.pix == nil {
		b.pix = make([]Color, b.w*b.h)
	}
	for i := range t.palN {
		if t.palN[i] > 0 {
			b.realizeTile(i)
		}
	}
}

// fillRows is the raw doubling-copy fill kernel (see Fill). r must be
// clamped and non-empty; b must be materialized.
func (b *Buffer) fillRows(r Rect, c Color) {
	first := b.pix[r.Y0*b.w+r.X0 : r.Y0*b.w+r.X1]
	first[0] = c
	for n := 1; n < len(first); n *= 2 {
		copy(first[n:], first[:n])
	}
	for y := r.Y0 + 1; y < r.Y1; y++ {
		copy(b.pix[y*b.w+r.X0:y*b.w+r.X1], first)
	}
}

// fillNibs writes palette index idx into every nibble of the tile-local
// projection of clip (buffer coordinates, within one tile).
func fillNibs(plane []byte, clip Rect, idx byte) {
	bb := idx | idx<<4
	lx0 := clip.X0 & tileMask
	lx1 := (clip.X1-1)&tileMask + 1
	for y := clip.Y0; y < clip.Y1; y++ {
		np := (y&tileMask)<<TileShift + lx0
		end := (y&tileMask)<<TileShift + lx1
		if np&1 == 1 {
			plane[np>>1] = plane[np>>1]&0x0F | idx<<4
			np++
		}
		if end&1 == 1 && end > np {
			end--
			plane[end>>1] = plane[end>>1]&0xF0 | idx
		}
		row := plane[np>>1 : end>>1]
		for k := range row {
			row[k] = bb
		}
	}
}

// fillPal is Fill's kernel for palette-enabled buffers: a tile fully
// covered by r resets to a fresh single-color palette (a 512-byte memset
// instead of a 4 KB pixel fill), a partially covered compressed tile
// takes an index fill when c fits its palette (promoting to raw on
// overflow), and raw tiles take the raw row fill. r must be clamped and
// non-empty; b must be materialized.
func (b *Buffer) fillPal(r Rect, c Color) {
	t := b.tiles
	for ty := r.Y0 >> TileShift; ty <= (r.Y1-1)>>TileShift; ty++ {
		for tx := r.X0 >> TileShift; tx <= (r.X1-1)>>TileShift; tx++ {
			i := ty*t.cols + tx
			tr := b.TileRect(i)
			clip := tr.Intersect(r)
			if clip == tr {
				if t.palN[i] != 1 {
					// An already-solid tile's plane is zero by invariant;
					// everything else needs the 512-byte plane reset.
					if t.palN[i] == 0 {
						t.palTiles++
					}
					t.palN[i] = 1
					plane := t.tilePlane(i)
					for k := range plane {
						plane[k] = 0
					}
				}
				t.tilePal(i)[0] = c
				continue
			}
			if t.palN[i] > 0 {
				if idx := t.palIndex(i, c); idx >= 0 {
					fillNibs(t.tilePlane(i), clip, byte(idx))
					continue
				}
				b.realizeTile(i)
			}
			b.fillRows(clip, c)
		}
	}
}

// copyAllFrom copies src's full content into b, staying in the palette
// domain wholesale when both sides support it. b must be materialized
// and match src's dimensions; src is read through its representation.
func (b *Buffer) copyAllFrom(src *Buffer) {
	rs := src.repr()
	st := rs.tiles
	bt := b.tiles
	if st == nil || st.palTiles == 0 {
		copy(b.pix, rs.pix)
		if bt != nil {
			// Stale palettes must not shadow the fresh raw pixels.
			bt.dropPalettes()
		}
		return
	}
	if bt != nil && bt.palOn {
		copy(bt.palN, st.palN)
		copy(bt.plane, st.plane)
		copy(bt.pal, st.pal)
		bt.palTiles = st.palTiles
		if rs.pix != nil {
			copy(b.pix, rs.pix)
		}
		return
	}
	// b cannot hold palettes: decode src tile by tile into raw rows.
	for i := range st.palN {
		tx, ty := i%st.cols, i/st.cols
		r := Rect{tx << TileShift, ty << TileShift, (tx + 1) << TileShift, (ty + 1) << TileShift}.
			Clamp(b.Bounds())
		if st.palN[i] > 0 {
			plane, pal := st.tilePlane(i), st.tilePal(i)
			for y := r.Y0; y < r.Y1; y++ {
				decodeRun(plane, pal, (y&tileMask)<<TileShift+r.X0&tileMask, b.pix[y*b.w+r.X0:y*b.w+r.X1])
			}
		} else {
			for y := r.Y0; y < r.Y1; y++ {
				copy(b.pix[y*b.w+r.X0:y*b.w+r.X1], rs.pix[y*b.w+r.X0:y*b.w+r.X1])
			}
		}
	}
	if bt != nil {
		bt.dropPalettes()
	}
}

// hashTilePal computes compressed tile i's signature. The hash runs over
// the DECODED colors — bit-identical to the raw hash — because Equal and
// BlitTiled rely on signatures being a pure function of content,
// independent of representation. The win is memory traffic (512 bytes of
// indices plus the palette instead of 4 KB of pixels) and a one-entry
// memo for full solid tiles, the overwhelmingly common case on flat UI.
// rt is the representation tile set; the memo lives on b's own tile set
// (views must not write their shared source's caches).
func (b *Buffer) hashTilePal(rt *tileSet, i int, r Rect) uint64 {
	pal := rt.tilePal(i)
	if rt.palN[i] == 1 && r.Dx() == TileSize && r.Dy() == TileSize {
		t := b.tiles
		if t.solidOK && t.solidC == pal[0] {
			return t.solidSig
		}
		h := uint64(0xcbf29ce484222325)
		c := uint64(pal[0])
		for k := 0; k < tilePixels; k++ {
			h = (h ^ c) * 0x100000001b3
		}
		t.solidC, t.solidSig, t.solidOK = pal[0], h, true
		return h
	}
	plane := rt.tilePlane(i)
	h := uint64(0xcbf29ce484222325)
	for y := r.Y0; y < r.Y1; y++ {
		np := (y&tileMask)<<TileShift + r.X0&tileMask
		for x := r.X0; x < r.X1; x++ {
			h = (h ^ uint64(pal[plane[np>>1]>>(uint(np&1)*4)&0xF])) * 0x100000001b3
			np++
		}
	}
	return h
}

// tileContentEqual reports whether b's full tile di (rect tr) holds
// exactly src's full tile si (rect sr); both rects cover whole in-bounds
// 32×32 tiles. Two compressed tiles with identical palettes compare
// their 512-byte index planes — exact in both directions, since palette
// entries within a tile are distinct — which is the 8× cheaper common
// case on BlitTiled's verify path. Mixed or palette-order-skewed tiles
// decode-compare.
func (b *Buffer) tileContentEqual(src *Buffer, si, di int, sr, tr Rect) bool {
	rb, rs := b.repr(), src.repr()
	bt, st := rb.tiles, rs.tiles
	bp := bt != nil && bt.palTiles > 0 && bt.palN[di] > 0
	sp := st != nil && st.palTiles > 0 && st.palN[si] > 0
	if !bp && !sp {
		return rb.rowsEqual(rs, sr, tr)
	}
	if bp && sp {
		nb, ns := bt.palN[di], st.palN[si]
		if nb == 1 && ns == 1 {
			return bt.tilePal(di)[0] == st.tilePal(si)[0]
		}
		if nb == ns && firstDiff(bt.tilePal(di)[:nb], st.tilePal(si)[:ns]) < 0 {
			return bytes.Equal(bt.tilePlane(di), st.tilePlane(si))
		}
	}
	for y := 0; y < tr.Dy(); y++ {
		for x := 0; x < tr.Dx(); x++ {
			if rb.colorAt(tr.X0+x, tr.Y0+y) != rs.colorAt(sr.X0+x, sr.Y0+y) {
				return false
			}
		}
	}
	return true
}

// copyTile copies src's full tile si into b's full tile di (both rects
// whole in-bounds 32×32 tiles). A compressed source tile lands as a
// 512-byte plane + palette copy when b holds palettes — 8× fewer bytes
// than the pixel copy; other combinations fall back to raw rows.
func (b *Buffer) copyTile(src *Buffer, si, di int, sr, tr Rect) {
	rs := src.repr()
	st := rs.tiles
	bt := b.tiles
	sp := st != nil && st.palTiles > 0 && st.palN[si] > 0
	if sp && bt.palOn {
		if bt.palN[di] == 0 {
			bt.palTiles++
		}
		bt.palN[di] = st.palN[si]
		copy(bt.tilePlane(di), st.tilePlane(si))
		copy(bt.tilePal(di), st.tilePal(si))
		return
	}
	if bt.palN != nil && bt.palN[di] > 0 {
		// Fully overwritten with raw content: drop the palette, no decode.
		bt.palN[di] = 0
		bt.palTiles--
	}
	if sp {
		plane, pal := st.tilePlane(si), st.tilePal(si)
		for y := 0; y < tr.Dy(); y++ {
			decodeRun(plane, pal, ((sr.Y0+y)&tileMask)<<TileShift+sr.X0&tileMask,
				b.pix[(tr.Y0+y)*b.w+tr.X0:(tr.Y0+y)*b.w+tr.X1])
		}
		return
	}
	b.copyRows(src, sr.X0, sr.Y0, tr)
}

// EncodeAll palette-compresses every raw tile whose content fits
// PaletteCap colors and reports whether every tile ended up compressed
// (the precondition for Compact).
func (b *Buffer) EncodeAll() bool {
	b.own()
	t := b.tiles
	if t == nil || !t.palOn {
		return false
	}
	all := true
	for i := range t.palN {
		if t.palN[i] > 0 {
			continue
		}
		if !b.encodeTile(i) {
			all = false
		}
	}
	return all
}

// encodeTile attempts to palette-compress raw tile i from its pixels,
// returning false (tile left raw) when the content needs more than
// PaletteCap colors. b must be materialized and palette-enabled.
func (b *Buffer) encodeTile(i int) bool {
	t := b.tiles
	r := b.TileRect(i)
	pal := t.tilePal(i)
	plane := t.tilePlane(i)
	n := 0
	for y := r.Y0; y < r.Y1; y++ {
		np := (y&tileMask)<<TileShift + r.X0&tileMask
		for _, c := range b.pix[y*b.w+r.X0 : y*b.w+r.X1] {
			idx := -1
			for k := 0; k < n; k++ {
				if pal[k] == c {
					idx = k
					break
				}
			}
			if idx < 0 {
				if n == PaletteCap {
					return false
				}
				pal[n] = c
				idx = n
				n++
			}
			sh := uint(np&1) * 4
			plane[np>>1] = plane[np>>1]&^(0xF<<sh) | byte(idx)<<sh
			np++
		}
	}
	t.palN[i] = uint8(n)
	t.palTiles++
	return true
}

// Recycle returns a parked buffer to the blank content New would hand
// out, so a session reads — and a client that under-paints its first
// frame composes — the same bytes whether a free pool gave it fresh or
// recycled buffers. Any copy-on-write view is dropped without
// materializing, the promotion counter restarts, and every tile is
// touched so cached signatures never describe the previous owner's
// content.
//
// On a palette-enabled buffer the blanking stays in the palette domain:
// every tile becomes a solid one-color palette of zero, so the hand-off
// clears at most 512 bytes of index plane per tile — and nothing at all
// for tiles already solid, whose planes are zero by the palN==1
// invariant — instead of a 4 KB pixel memset. The pixel array is left
// stale underneath; with palN > 0 everywhere it is dead bytes under the
// representation contract. The representation differs from a fresh
// buffer's all-raw zeros, but the content is identical, and the first
// full paint of the next session rebuilds the representation from
// content alone, so nothing downstream can tell the difference.
func (b *Buffer) Recycle() {
	if b.shared != nil {
		b.shared = nil
		b.pix, b.spare = b.spare, nil
	}
	if b.pix == nil {
		b.pix = make([]Color, b.w*b.h)
	}
	t := b.tiles
	if t != nil && t.palOn {
		for i := range t.palN {
			if t.palN[i] != 1 {
				plane := t.tilePlane(i)
				for k := range plane {
					plane[k] = 0
				}
				t.palN[i] = 1
			}
			t.tilePal(i)[0] = 0
		}
		t.palTiles = t.cols * t.rows
		t.promotions = 0
		t.solidOK = false
		b.touchAll()
		return
	}
	for i := range b.pix {
		b.pix[i] = 0
	}
	if t != nil {
		b.touchAll()
	}
}

// Compact drops the raw pixel array of a fully compressed, unshared
// buffer (~8× less memory per memoized screen). It reports whether the
// compaction happened; a compacted buffer serves all reads through the
// palette machinery, and Pix/realizeAll reallocate on demand.
func (b *Buffer) Compact() bool {
	t := b.tiles
	if b.shared != nil || t == nil || !t.palOn || t.palTiles != t.cols*t.rows {
		return false
	}
	b.pix = nil
	return true
}

// NewPaletteSnapshot builds a compacted palette-compressed copy of src's
// current content (read through src's representation) without ever
// allocating a raw pixel array — the storage behind the app layer's
// memoized screens (~0.55 MB instead of ~3.7 MB at 720×1280). It returns
// nil when any tile needs more than PaletteCap colors.
func NewPaletteSnapshot(src *Buffer) *Buffer {
	b := &Buffer{w: src.w, h: src.h}
	b.EnablePalettes()
	t := b.tiles
	rs := src.repr()
	var row [TileSize]Color
	for i := range t.palN {
		r := b.TileRect(i)
		pal := t.tilePal(i)
		plane := t.tilePlane(i)
		n := 0
		for y := r.Y0; y < r.Y1; y++ {
			rs.readRow(row[:r.Dx()], r.X0, y, r.Dx())
			np := (y&tileMask)<<TileShift + r.X0&tileMask
			for _, c := range row[:r.Dx()] {
				idx := -1
				for k := 0; k < n; k++ {
					if pal[k] == c {
						idx = k
						break
					}
				}
				if idx < 0 {
					if n == PaletteCap {
						return nil
					}
					pal[n] = c
					idx = n
					n++
				}
				sh := uint(np&1) * 4
				plane[np>>1] = plane[np>>1]&^(0xF<<sh) | byte(idx)<<sh
				np++
			}
		}
		t.palN[i] = uint8(n)
		t.palTiles++
	}
	return b
}

// ShareFromDamage is ShareFrom for consecutive memoized content states:
// b — currently holding state k, owned or already a view — becomes a
// view of src (state k+1), and only tiles under the damage rects are
// marked written. The caller guarantees the damage contract: rects cover
// every pixel differing between states k and k+1, so the meter and
// compositor see exactly the tile churn a real paint of the transition
// would have caused, instead of a whole-screen invalidation.
func (b *Buffer) ShareFromDamage(src *Buffer, rects []Rect) {
	if b.w != src.w || b.h != src.h {
		panic("framebuffer: ShareFromDamage size mismatch")
	}
	if src.shared != nil {
		panic("framebuffer: ShareFromDamage of a buffer that is itself sharing")
	}
	if src == b {
		panic("framebuffer: ShareFromDamage self")
	}
	if b.shared == nil {
		b.spare = b.pix
	}
	b.shared = src
	b.pix = src.pix
	for _, r := range rects {
		b.touch(r)
	}
}
