package framebuffer

import "testing"

// feedPaint fills buf with feed-like content: solid 24 px rows of
// distinct colors under a 48 px header — the shape the palette layer is
// built for (every 32×32 tile spans at most a few solid bands, so tiles
// compress to 2–3 palette entries).
func feedPaint(buf *Buffer) {
	w, h := buf.Width(), buf.Height()
	buf.Fill(R(0, 0, w, 48), RGB(40, 40, 60))
	for y, i := 48, 0; y < h; y, i = y+24, i+1 {
		c := RGB(uint8(60+i*13%180), uint8(60+i*29%180), uint8(60+i*47%180))
		buf.Fill(R(0, y, w, min(y+24, h)), c)
	}
}

// BenchmarkPaletteBlit measures full-screen tiled composition of
// alternating app screens — the memo-hit shape, where every tile's
// signature mismatches and the whole frame must be copied — on the
// palette representation against the raw-tile oracle. The palette rows
// move each tile as a 512-byte index plane plus its side table; the raw
// rows move 4 KB of pixels per tile.
func BenchmarkPaletteBlit(b *testing.B) {
	for _, bc := range []struct {
		name    string
		palette bool
	}{{"palette", true}, {"raw", false}} {
		b.Run(bc.name, func(b *testing.B) {
			var screens [2]*Buffer
			for i := range screens {
				screens[i] = New(720, 1280)
				screens[i].EnableTiles()
				if bc.palette {
					screens[i].EnablePalettes()
				}
				feedPaint(screens[i])
				// Offset the second screen's rows so every tile differs.
				if i == 1 {
					screens[i].ScrollVert(R(0, 48, 720, 1280), -24)
					screens[i].Fill(R(0, 1256, 720, 1280), RGB(200, 90, 20))
					if bc.palette {
						screens[i].EncodeAll() // restore compression after the scroll realized rows
					}
				}
			}
			dst := New(720, 1280)
			dst.EnableTiles()
			if bc.palette {
				dst.EnablePalettes()
			}
			dst.BlitTiled(screens[0], screens[0].Bounds(), 0, 0, ComposeGens{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := screens[(i+1)&1]
				dst.BlitTiled(src, src.Bounds(), 0, 0, ComposeGens{})
			}
		})
	}
}

// BenchmarkPaletteHash measures full-frame signature computation — every
// tile touched, every tile rehashed — on the palette representation
// against the raw oracle. The palette row hashes by decoding nibble runs
// through the side table (canonical signatures: identical to hashing the
// decoded pixels); the raw row hashes the pixel array directly.
func BenchmarkPaletteHash(b *testing.B) {
	for _, bc := range []struct {
		name    string
		palette bool
	}{{"palette", true}, {"raw", false}} {
		b.Run(bc.name, func(b *testing.B) {
			buf := New(720, 1280)
			buf.EnableTiles()
			if bc.palette {
				buf.EnablePalettes()
			}
			feedPaint(buf)
			tiles := buf.Tiles()
			// Two alternating touch colors stay within each tile's
			// palette headroom, so touching never promotes a tile.
			touch := [2]Color{RGB(250, 250, 250), RGB(5, 5, 5)}
			var sink uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := touch[i&1]
				for ti := 0; ti < tiles; ti++ {
					r := buf.TileRect(ti)
					buf.Set(r.X0, r.Y0, c)
					sink ^= buf.TileSig(ti)
				}
			}
			if sink == 42 {
				b.Log(sink) // defeat dead-code elimination
			}
		})
	}
}
