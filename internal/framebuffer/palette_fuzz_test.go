package framebuffer

import (
	"math/rand"
	"testing"
)

// FuzzPaletteCompare differentially tests the palette-compressed tile
// representation against the raw tile pipeline: the same mutation stream
// — fills from a narrow palette, wide-color fills that force promotion,
// single stores, scrolls, blits — drives a palette buffer and a raw-tile
// buffer in lockstep, and after every operation the two must agree on
// every read path: At, Equal, DiffPixels, per-tile signatures, grid
// sampling and mean luminance. Snapshot/share round-trips (EncodeAll,
// Compact, NewPaletteSnapshot, ShareFromDamage) are interleaved as
// content-preserving no-ops. Any divergence means a nibble kernel,
// promotion edge or copy-on-write path changed visible bytes.
func FuzzPaletteCompare(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 2, 3, 8}, uint8(64), uint8(64))
	f.Add(int64(2), []byte{2, 2, 2, 2, 2, 2, 8, 6}, uint8(33), uint8(47)) // wide fills: promotion pressure
	f.Add(int64(3), []byte{0, 4, 5, 0, 8, 6, 7, 0, 8}, uint8(96), uint8(40))
	f.Add(int64(4), []byte{3, 3, 3, 3, 8, 0, 6, 8}, uint8(31), uint8(32)) // single stores walk a palette to 16 then over
	f.Add(int64(5), []byte{0, 5, 5, 2, 8, 7, 0, 8, 6}, uint8(80), uint8(130))

	f.Fuzz(func(t *testing.T, seed int64, ops []byte, w8, h8 uint8) {
		w := int(w8%100) + 8 // 8..107: partial edge tiles in both axes
		h := int(h8%120) + 8
		if len(ops) > 128 {
			ops = ops[:128]
		}
		rng := rand.New(rand.NewSource(seed))

		pb := New(w, h)
		pb.EnableTiles()
		pb.EnablePalettes()
		rb := New(w, h)
		rb.EnableTiles()

		// Blit source with raw random content.
		aux := New(w, h)
		for i := range aux.Pix() {
			aux.Pix()[i] = Color(rng.Uint32() & 0x00ffffff)
		}
		// A narrow color set keeps tiles palettized; wide colors overflow
		// PaletteCap and exercise promotion.
		narrow := [5]Color{RGB(10, 10, 10), RGB(200, 30, 30), RGB(30, 200, 30), RGB(30, 30, 200), RGB(240, 240, 240)}
		randRect := func() Rect {
			return Rect{
				X0: rng.Intn(w+16) - 8, Y0: rng.Intn(h+16) - 8,
				X1: rng.Intn(w+16) - 8, Y1: rng.Intn(h+16) - 8,
			}
		}

		grid := GridForSamples(w, h, 64)
		sp := make([]Color, grid.Samples())
		sr := make([]Color, grid.Samples())
		check := func(step int) {
			t.Helper()
			if !pb.Equal(rb) || !rb.Equal(pb) {
				t.Fatalf("step %d (%dx%d): Equal reports divergence (palTiles=%d promos=%d)",
					step, w, h, pb.PaletteTiles(), pb.PalettePromotions())
			}
			if n := pb.DiffPixels(rb); n != 0 {
				t.Fatalf("step %d: DiffPixels = %d, want 0", step, n)
			}
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if pb.At(x, y) != rb.At(x, y) {
						t.Fatalf("step %d: At(%d,%d) palette=%08x raw=%08x", step, x, y, pb.At(x, y), rb.At(x, y))
					}
				}
			}
			for i := 0; i < pb.Tiles(); i++ {
				if ps, rs := pb.TileSig(i), rb.TileSig(i); ps != rs {
					t.Fatalf("step %d: tile %d sig palette=%016x raw=%016x (sigs must be canonical over decoded colors)",
						step, i, ps, rs)
				}
			}
			grid.Sample(pb, sp)
			grid.Sample(rb, sr)
			for i := range sp {
				if sp[i] != sr[i] {
					t.Fatalf("step %d: grid sample %d palette=%08x raw=%08x", step, i, sp[i], sr[i])
				}
			}
			if pl, rl := pb.MeanLuminance(), rb.MeanLuminance(); pl != rl {
				t.Fatalf("step %d: MeanLuminance palette=%v raw=%v", step, pl, rl)
			}
		}

		for step, op := range ops {
			switch op % 9 {
			case 0, 1: // narrow fill: the palettized fast path
				r, c := randRect(), narrow[rng.Intn(len(narrow))]
				if np, nr := pb.Fill(r, c), rb.Fill(r, c); np != nr {
					t.Fatalf("step %d: Fill count palette=%d raw=%d", step, np, nr)
				}
			case 2: // wide fill: palette growth and promotion
				r, c := randRect(), Color(rng.Uint32()&0x00ffffff)
				if np, nr := pb.Fill(r, c), rb.Fill(r, c); np != nr {
					t.Fatalf("step %d: Fill count palette=%d raw=%d", step, np, nr)
				}
			case 3: // single stores, sometimes wide: per-tile palettes creep past PaletteCap
				for n := rng.Intn(40) + 1; n > 0; n-- {
					x, y := rng.Intn(w), rng.Intn(h)
					c := narrow[rng.Intn(len(narrow))]
					if rng.Intn(3) == 0 {
						c = Color(rng.Uint32() & 0x00ffffff)
					}
					pb.Set(x, y, c)
					rb.Set(x, y, c)
				}
			case 4: // scroll: the feed kernel over mixed representations
				r, dy := randRect(), rng.Intn(2*h+1)-h
				if rp, rr := pb.ScrollVert(r, dy), rb.ScrollVert(r, dy); rp != rr {
					t.Fatalf("step %d: ScrollVert repaint palette=%v raw=%v", step, rp, rr)
				}
			case 5: // blit raw content over palettized tiles
				srcR := randRect().Clamp(aux.Bounds())
				dx, dy := rng.Intn(w+10)-5, rng.Intn(h+10)-5
				if np, nr := pb.Blit(aux, srcR, dx, dy), rb.Blit(aux, srcR, dx, dy); np != nr {
					t.Fatalf("step %d: Blit count palette=%d raw=%d", step, np, nr)
				}
			case 6: // re-encode is content-preserving
				pb.EncodeAll()
			case 7: // snapshot + compact + share round-trip must reproduce the content
				snap := NewPaletteSnapshot(pb)
				if snap == nil {
					break
				}
				view := New(w, h)
				view.EnableTiles()
				view.EnablePalettes()
				view.FillAll(narrow[rng.Intn(len(narrow))])
				view.ShareFromDamage(snap, []Rect{view.Bounds()})
				if !view.Equal(rb) {
					t.Fatalf("step %d: snapshot/share view diverges from raw reference", step)
				}
				for i := 0; i < view.Tiles(); i++ {
					if vs, rs := view.TileSig(i), rb.TileSig(i); vs != rs {
						t.Fatalf("step %d: shared view tile %d sig %016x, raw %016x", step, i, vs, rs)
					}
				}
			default: // recycle both: must come back blank and in lockstep
				if rng.Intn(2) == 0 {
					pb.Recycle()
					rb.Recycle()
				}
			}
			check(step)
		}
	})
}
