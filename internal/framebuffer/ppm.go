package framebuffer

import (
	"bufio"
	"fmt"
	"io"
)

// WritePPM serializes the buffer as a binary PPM (P6) image — the
// screenshot format of the simulated device. PPM needs no codec from
// outside the standard library and opens in any image viewer, which makes
// it the debugging format of choice for inspecting what the workloads
// actually painted and what the meter saw.
func (b *Buffer) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", b.w, b.h); err != nil {
		return err
	}
	row := make([]byte, 3*b.w)
	rb := b.repr()
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			r, g, bb := rb.colorAt(x, y).RGB()
			row[3*x] = r
			row[3*x+1] = g
			row[3*x+2] = bb
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPPM parses a binary PPM (P6) image produced by WritePPM back into a
// Buffer, enabling golden-image tests and offline inspection round trips.
func ReadPPM(r io.Reader) (*Buffer, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxVal int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxVal); err != nil {
		return nil, fmt.Errorf("framebuffer: bad PPM header: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("framebuffer: unsupported PPM magic %q", magic)
	}
	if maxVal != 255 {
		return nil, fmt.Errorf("framebuffer: unsupported PPM maxval %d", maxVal)
	}
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("framebuffer: implausible PPM size %dx%d", w, h)
	}
	// Exactly one whitespace byte separates the header from pixel data.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	buf := New(w, h)
	row := make([]byte, 3*w)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("framebuffer: short PPM pixel data: %w", err)
		}
		for x := 0; x < w; x++ {
			buf.Set(x, y, RGB(row[3*x], row[3*x+1], row[3*x+2]))
		}
	}
	return buf, nil
}
