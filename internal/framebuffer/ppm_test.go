package framebuffer

import (
	"bytes"
	"strings"
	"testing"
)

func TestPPMRoundTrip(t *testing.T) {
	b := New(7, 5)
	for y := 0; y < 5; y++ {
		for x := 0; x < 7; x++ {
			b.Set(x, y, RGB(uint8(x*30), uint8(y*50), uint8(x*y)))
		}
	}
	var buf bytes.Buffer
	if err := b.WritePPM(&buf); err != nil {
		t.Fatalf("WritePPM: %v", err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P6\n7 5\n255\n")) {
		t.Errorf("PPM header = %q", buf.Bytes()[:12])
	}
	got, err := ReadPPM(&buf)
	if err != nil {
		t.Fatalf("ReadPPM: %v", err)
	}
	if !got.Equal(b) {
		t.Error("round trip lost pixels")
	}
}

func TestReadPPMErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":  "P5\n2 2\n255\n....",
		"bad maxval": "P6\n2 2\n65535\n........",
		"bad size":   "P6\n-3 2\n255\n",
		"truncated":  "P6\n4 4\n255\nxx",
		"empty":      "",
	}
	for name, in := range cases {
		if _, err := ReadPPM(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPPMSizeMatchesDims(t *testing.T) {
	b := New(10, 4)
	var buf bytes.Buffer
	if err := b.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	wantPixels := 3 * 10 * 4
	header := len("P6\n10 4\n255\n")
	if buf.Len() != header+wantPixels {
		t.Errorf("PPM size = %d, want %d", buf.Len(), header+wantPixels)
	}
}
