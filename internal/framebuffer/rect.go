package framebuffer

import "fmt"

// Rect is a half-open rectangle [X0,X1) × [Y0,Y1) in pixel coordinates,
// matching the convention of image.Rectangle but without pulling in the
// image package's color machinery.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R is shorthand for constructing a Rect.
func R(x0, y0, x1, y1 int) Rect { return Rect{x0, y0, x1, y1} }

// Dx returns the width of r.
func (r Rect) Dx() int { return r.X1 - r.X0 }

// Dy returns the height of r.
func (r Rect) Dy() int { return r.Y1 - r.Y0 }

// Area returns the number of pixels covered by r, zero when empty.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.Dx() * r.Dy()
}

// Empty reports whether r covers no pixels.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Contains reports whether the pixel (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Intersect returns the largest rectangle contained in both r and s. The
// result is empty when they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	if r.X0 < s.X0 {
		r.X0 = s.X0
	}
	if r.Y0 < s.Y0 {
		r.Y0 = s.Y0
	}
	if r.X1 > s.X1 {
		r.X1 = s.X1
	}
	if r.Y1 > s.Y1 {
		r.Y1 = s.Y1
	}
	if r.Empty() {
		return Rect{}
	}
	return r
}

// Union returns the smallest rectangle containing both r and s. An empty
// rectangle is the identity element.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	if r.X0 > s.X0 {
		r.X0 = s.X0
	}
	if r.Y0 > s.Y0 {
		r.Y0 = s.Y0
	}
	if r.X1 < s.X1 {
		r.X1 = s.X1
	}
	if r.Y1 < s.Y1 {
		r.Y1 = s.Y1
	}
	return r
}

// Overlaps reports whether r and s share at least one pixel.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Clamp restricts r to lie within bounds.
func (r Rect) Clamp(bounds Rect) Rect { return r.Intersect(bounds) }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d)-(%d,%d)", r.X0, r.Y0, r.X1, r.Y1)
}

// Region is a damage region: a set of rectangles accumulated between frame
// latches. SurfaceFlinger tracks damage the same way to limit composition
// work; we use it both to bound render cost accounting and to blit only
// what changed.
//
// The representation is a small slice of rectangles; Add coalesces a new
// rectangle into an existing one when they overlap, which keeps the region
// compact for the workloads in this reproduction (a handful of sprites or
// one scroll area per frame).
type Region struct {
	rects []Rect
}

// Add accumulates r into the region, merging it with any overlapping
// rectangle already present. Empty rectangles are ignored.
func (g *Region) Add(r Rect) {
	if r.Empty() {
		return
	}
	for i := range g.rects {
		if g.rects[i].Overlaps(r) {
			merged := g.rects[i].Union(r)
			// Remove i and re-add the merged rect, since the union may now
			// overlap other members.
			g.rects[i] = g.rects[len(g.rects)-1]
			g.rects = g.rects[:len(g.rects)-1]
			g.Add(merged)
			return
		}
	}
	g.rects = append(g.rects, r)
}

// Empty reports whether the region covers nothing.
func (g *Region) Empty() bool { return len(g.rects) == 0 }

// Rects returns the region's rectangles. The slice is owned by the region
// and invalidated by the next Add or Reset.
func (g *Region) Rects() []Rect { return g.rects }

// Bounds returns the union bounding box of the region.
func (g *Region) Bounds() Rect {
	var b Rect
	for _, r := range g.rects {
		b = b.Union(r)
	}
	return b
}

// Area returns the total pixel count of the region's rectangles. Because
// Add merges overlapping rectangles, members are disjoint and the sum is
// exact.
func (g *Region) Area() int {
	total := 0
	for _, r := range g.rects {
		total += r.Area()
	}
	return total
}

// Reset empties the region, retaining storage.
func (g *Region) Reset() { g.rects = g.rects[:0] }
