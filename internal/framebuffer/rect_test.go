package framebuffer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := R(1, 2, 5, 10)
	if r.Dx() != 4 || r.Dy() != 8 || r.Area() != 32 {
		t.Errorf("Dx/Dy/Area = %d/%d/%d, want 4/8/32", r.Dx(), r.Dy(), r.Area())
	}
	if r.Empty() {
		t.Error("non-empty rect reported Empty")
	}
	if !R(3, 3, 3, 9).Empty() || !R(5, 5, 2, 9).Empty() {
		t.Error("degenerate rects not Empty")
	}
	if R(0, 0, 0, 0).Area() != 0 {
		t.Error("empty rect has non-zero area")
	}
	if got := r.String(); got != "(1,2)-(5,10)" {
		t.Errorf("String() = %q", got)
	}
}

func TestRectContains(t *testing.T) {
	r := R(1, 1, 4, 4)
	cases := []struct {
		x, y int
		want bool
	}{
		{1, 1, true}, {3, 3, true}, {4, 4, false}, {0, 2, false}, {2, 4, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.x, c.y); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	if got := a.Intersect(b); got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != R(0, 0, 15, 15) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(R(20, 20, 30, 30)); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty Union identity = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v", got)
	}
}

func TestRectOverlaps(t *testing.T) {
	if !R(0, 0, 5, 5).Overlaps(R(4, 4, 8, 8)) {
		t.Error("touching-interior rects should overlap")
	}
	if R(0, 0, 5, 5).Overlaps(R(5, 0, 8, 5)) {
		t.Error("edge-adjacent rects should not overlap (half-open)")
	}
}

func randRect(rng *rand.Rand) Rect {
	x0, y0 := rng.Intn(50), rng.Intn(50)
	return R(x0, y0, x0+rng.Intn(30), y0+rng.Intn(30))
}

// Property: intersection is contained in both operands; union contains both.
func TestRectAlgebraProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	contains := func(outer, inner Rect) bool {
		if inner.Empty() {
			return true
		}
		return outer.X0 <= inner.X0 && outer.Y0 <= inner.Y0 &&
			outer.X1 >= inner.X1 && outer.Y1 >= inner.Y1
	}
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		in := a.Intersect(b)
		un := a.Union(b)
		if !contains(a, in) || !contains(b, in) {
			t.Fatalf("intersect %v of %v,%v not contained", in, a, b)
		}
		if !a.Empty() && !contains(un, a) || !b.Empty() && !contains(un, b) {
			t.Fatalf("union %v of %v,%v does not contain operands", un, a, b)
		}
		if in != b.Intersect(a) {
			t.Fatalf("intersect not commutative for %v,%v", a, b)
		}
	}
}

func TestRegionAddAndArea(t *testing.T) {
	var g Region
	if !g.Empty() {
		t.Error("zero region not empty")
	}
	g.Add(R(0, 0, 10, 10))
	g.Add(R(20, 20, 30, 30))
	if got := g.Area(); got != 200 {
		t.Errorf("disjoint area = %d, want 200", got)
	}
	// Overlapping add merges.
	g.Add(R(5, 5, 25, 25)) // bridges both; all three merge into one box
	if len(g.Rects()) != 1 {
		t.Fatalf("rects after bridging add = %d, want 1", len(g.Rects()))
	}
	if got := g.Bounds(); got != R(0, 0, 30, 30) {
		t.Errorf("bounds = %v", got)
	}
	g.Reset()
	if !g.Empty() || g.Area() != 0 {
		t.Error("Reset did not empty region")
	}
}

func TestRegionIgnoresEmpty(t *testing.T) {
	var g Region
	g.Add(Rect{})
	g.Add(R(5, 5, 5, 9))
	if !g.Empty() {
		t.Error("empty rects were added to region")
	}
}

// Property: every added rectangle is covered by the region, and region area
// never exceeds the bounding-box area.
func TestRegionCoverageProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		rng := rand.New(rand.NewSource(int64(len(seeds))*7919 + 13))
		var g Region
		var added []Rect
		for range seeds {
			r := randRect(rng)
			g.Add(r)
			if !r.Empty() {
				added = append(added, r)
			}
		}
		// Check coverage on a sample of points of each added rect.
		for _, r := range added {
			pts := [][2]int{{r.X0, r.Y0}, {r.X1 - 1, r.Y1 - 1}, {(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2}}
			for _, p := range pts {
				covered := false
				for _, m := range g.Rects() {
					if m.Contains(p[0], p[1]) {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
		}
		return g.Area() <= g.Bounds().Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
