package framebuffer

import "fmt"

// Tile layer: a fixed 32×32 grid over a buffer with per-tile mutation
// generations and lazily cached 64-bit content signatures. This is the
// *Rendering Elimination* idea (early discard of redundant tiles via
// region signatures) applied to the reproduction's paint/compare
// pipeline: composition can skip tiles whose content provably did not
// change, and the meter can restrict grid comparison to tiles written
// since its last observation.
//
// Exactness contract. Two independent mechanisms are used, with
// different proof obligations:
//
//   - Generations are exact in the negative direction: every mutator
//     marks the tiles it writes, so a tile whose generation is unchanged
//     is bitwise unchanged. No hashing is involved.
//   - Signatures are exact in the positive direction: the signature is a
//     pure function of the tile's pixels, so differing signatures imply
//     differing bytes. Equal signatures prove nothing (collisions); any
//     decision based on signature equality must be confirmed by a pixel
//     comparison (BlitTiled's memcmp verify, Equal's full-scan
//     fallback). A tile the signature path cannot decide falls back to
//     the brute-force pixel kernels.
//
// Tracking is opt-in per buffer (EnableTiles); untracked buffers pay
// nothing.

// Tile geometry: fixed 32×32 pixel tiles (TileShift = 5). On the
// 720×1280 Galaxy S3 screen this yields a 23×40 = 920-tile grid.
const (
	TileShift = 5
	TileSize  = 1 << TileShift
	tileMask  = TileSize - 1
)

// tilesFor returns the number of tiles covering extent pixels.
func tilesFor(extent int) int { return (extent + tileMask) >> TileShift }

// tileSet is a buffer's tile-tracking state.
type tileSet struct {
	cols, rows int
	// gen is the buffer's mutation generation, bumped by every mutating
	// call; tgen[i] records the generation at which tile i was last
	// written. tgen[i] <= G proves tile i is bitwise unchanged since the
	// moment the buffer's generation was G.
	gen  uint64
	tgen []uint64
	// sig[i] caches the 64-bit content signature of tile i, valid while
	// sigGen[i] == tgen[i] (i.e. the tile has not been written since the
	// hash was taken). Signatures are computed lazily on first use.
	sig    []uint64
	sigGen []uint64

	// Palette compression state (see palette.go). palOn gates the
	// machinery; while palN[i] > 0 tile i's content is defined by its
	// slice of pal and plane and the pixel array is stale under it.
	palOn    bool
	palN     []uint8 // palette size per tile; 0 = raw
	plane    []byte  // 4-bit index plane, planeTileBytes per tile
	pal      []Color // PaletteCap entries per tile
	palTiles int     // tiles currently palettized
	// promotions counts pal → raw realizations (palette overflow and
	// raw-kernel writes over compressed tiles).
	promotions uint64
	// One-entry signature memo for full single-color tiles: the FNV of
	// 1024 equal words is a pure function of the color, and solid tiles
	// dominate flat UI. Lives on the hashing buffer's own tile set, never
	// on a shared source (views must not write their source's caches).
	solidC   Color
	solidSig uint64
	solidOK  bool
}

// EnableTiles turns on tile tracking for b. It is idempotent; dimensions
// are fixed at the buffer's, so pooled buffers keep their tracking state
// across reuse. Buffers start with every tile marked written at
// generation 1 and no cached signatures.
func (b *Buffer) EnableTiles() {
	if b.tiles != nil {
		return
	}
	cols, rows := tilesFor(b.w), tilesFor(b.h)
	n := cols * rows
	t := &tileSet{
		cols: cols, rows: rows,
		gen:    1,
		tgen:   make([]uint64, n),
		sig:    make([]uint64, n),
		sigGen: make([]uint64, n),
	}
	for i := range t.tgen {
		t.tgen[i] = 1
	}
	b.tiles = t
}

// TilesEnabled reports whether b tracks tiles.
func (b *Buffer) TilesEnabled() bool { return b.tiles != nil }

// Gen returns the buffer's mutation generation (0 when tracking is
// disabled). Any write through the buffer's mutators increases it.
func (b *Buffer) Gen() uint64 {
	if b.tiles == nil {
		return 0
	}
	return b.tiles.gen
}

// TileDims returns the tile-grid dimensions (0, 0 when disabled).
func (b *Buffer) TileDims() (cols, rows int) {
	if b.tiles == nil {
		return 0, 0
	}
	return b.tiles.cols, b.tiles.rows
}

// Tiles returns the number of tiles (0 when disabled).
func (b *Buffer) Tiles() int {
	if b.tiles == nil {
		return 0
	}
	return b.tiles.cols * b.tiles.rows
}

// TileGen returns the generation at which tile i was last written.
func (b *Buffer) TileGen(i int) uint64 { return b.tiles.tgen[i] }

// TileRect returns tile i's pixel rectangle, clamped to the buffer
// bounds (edge tiles of a non-multiple-of-32 buffer are partial).
func (b *Buffer) TileRect(i int) Rect {
	t := b.tiles
	tx, ty := i%t.cols, i/t.cols
	return Rect{tx << TileShift, ty << TileShift, (tx + 1) << TileShift, (ty + 1) << TileShift}.
		Clamp(b.Bounds())
}

// TileSig returns tile i's 64-bit content signature, computing and
// caching it when the cache is stale. The signature is a pure function
// of the tile's pixels (FNV-1a over the pixel words), so differing
// signatures prove differing content; equal signatures prove nothing.
func (b *Buffer) TileSig(i int) uint64 {
	t := b.tiles
	if t.sigGen[i] == t.tgen[i] {
		return t.sig[i]
	}
	s := b.hashTile(i)
	t.sig[i] = s
	t.sigGen[i] = t.tgen[i]
	return s
}

// hashTile computes tile i's signature from its current content. The
// content is read through the representation (shared source, palette
// decode), so the signature is identical whatever form the tile is
// stored in — Equal and BlitTiled depend on that purity.
func (b *Buffer) hashTile(i int) uint64 {
	rb := b.repr()
	r := b.TileRect(i)
	if rt := rb.tiles; rt != nil && rt.palTiles > 0 && rt.palN[i] > 0 {
		return b.hashTilePal(rt, i, r)
	}
	h := uint64(0xcbf29ce484222325)
	for y := r.Y0; y < r.Y1; y++ {
		row := rb.pix[y*rb.w+r.X0 : y*rb.w+r.X1]
		for _, c := range row {
			h = (h ^ uint64(c)) * 0x100000001b3
		}
	}
	return h
}

// PoisonTileSig overwrites tile i's cached signature with v and marks
// the cache valid — a test-only hook for forcing signature collisions
// (two differing tiles reporting equal signatures), proving the pixel
// verify keeps results exact. It must never be used to make equal tiles
// report *differing* signatures; that direction is trusted.
func (b *Buffer) PoisonTileSig(i int, v uint64) {
	t := b.tiles
	t.sig[i] = v
	t.sigGen[i] = t.tgen[i]
}

// touch marks every tile overlapping r as written at a fresh generation.
// r is clamped defensively: out-of-bounds or inverted rectangles from a
// hostile damage report must not index the tile table with negative or
// overflowing tile coordinates.
func (b *Buffer) touch(r Rect) {
	t := b.tiles
	if t == nil {
		return
	}
	r = r.Clamp(b.Bounds())
	if r.Empty() {
		return
	}
	t.gen++
	g := t.gen
	tx0, ty0 := r.X0>>TileShift, r.Y0>>TileShift
	tx1, ty1 := (r.X1-1)>>TileShift, (r.Y1-1)>>TileShift
	for ty := ty0; ty <= ty1; ty++ {
		row := t.tgen[ty*t.cols+tx0 : ty*t.cols+tx1+1]
		for i := range row {
			row[i] = g
		}
	}
}

// touchAll marks every tile written (whole-buffer mutation).
func (b *Buffer) touchAll() {
	t := b.tiles
	if t == nil {
		return
	}
	t.gen++
	g := t.gen
	for i := range t.tgen {
		t.tgen[i] = g
	}
}

// own materializes a copy-on-write buffer before its first mutation: the
// shared source's content is copied into the buffer's parked storage,
// which becomes its private pixel array again (palette state transfers
// wholesale when both sides hold palettes; a source the buffer cannot
// represent is decoded). Reads never materialize.
func (b *Buffer) own() {
	if b.shared == nil {
		return
	}
	src := b.shared
	b.pix = b.spare
	b.spare = nil
	b.shared = nil
	b.copyAllFrom(src)
}

// ShareFrom turns b into a zero-copy view of src's pixels: reads are
// served from src and the first mutation copies src's content into b's
// own storage before applying (copy-on-write). The buffers must have
// identical dimensions and src must not itself be sharing. src must stay
// immutable while shared — the app layer uses this for memoized install
// screens, which are written once and then only ever read.
//
// Sharing counts as a whole-buffer mutation for tile tracking (the
// visible content changes entirely), so generations and cached
// signatures stay conservative.
func (b *Buffer) ShareFrom(src *Buffer) {
	if b.w != src.w || b.h != src.h {
		panic(fmt.Sprintf("framebuffer: ShareFrom size mismatch %dx%d vs %dx%d", b.w, b.h, src.w, src.h))
	}
	if src.shared != nil {
		panic("framebuffer: ShareFrom of a buffer that is itself sharing")
	}
	if src == b {
		panic("framebuffer: ShareFrom self")
	}
	if b.shared == nil {
		b.spare = b.pix
	}
	b.shared = src
	b.pix = src.pix
	b.touchAll()
}

// Shared reports whether b is currently a copy-on-write view.
func (b *Buffer) Shared() bool { return b.shared != nil }

// ComposeGens is a compositor's per-surface snapshot of (source buffer
// generation, destination buffer generation) taken at the end of a
// compose pass. BlitTiled uses it for the exact generation skip: a tile
// whose source and destination are both unchanged since the snapshot
// still holds the previously composed bytes, so re-composing it would
// write identical bytes. The zero value disables the skip (nothing has
// been composed yet).
//
// The skip is exact under two conditions the caller must guarantee:
//
//   - the surface.Client damage contract: reported damage covers every
//     pixel changed since the previous render (the brute-force compositor
//     relies on the same contract — unreported changes never reach the
//     framebuffer on either path), and
//   - sole writership: no other source composes into the destination
//     between this pair's composes. A foreign write later partially
//     overwritten leaves a tile whose generations look settled but whose
//     bytes mix two sources; the compositor therefore passes the zero
//     value whenever more than one surface is registered, falling back
//     to the signature + pixel-verify ladder (exact without induction).
type ComposeGens struct {
	Src, Dst uint64
}

// BlitTiled is the tile-aware variant of Blit: identical bytes in the
// destination, same return value (the clipped destination area — the
// dirty-pixel accounting must not depend on skips), but tiles that
// provably hold the right content already are not rewritten.
//
// Decision ladder per destination tile, cheapest first:
//
//  1. generation skip — src and dst tile unchanged since prev (exact),
//  2. signature mismatch — differing sigs force the copy (exact),
//  3. equal signatures — possible collision: a pixel compare decides;
//     equal bytes skip the write, differing bytes (a forced or real
//     collision) copy.
//
// Tiles the signature path cannot decide — partial-tile damage, buffers
// without tracking, or a tile-misaligned source offset — take the plain
// pixel copy. When either buffer is untracked the whole call degrades to
// Blit's behaviour.
func (b *Buffer) BlitTiled(src *Buffer, srcRect Rect, dx, dy int, prev ComposeGens) int {
	srcRect = srcRect.Clamp(src.Bounds())
	if srcRect.Empty() {
		return 0
	}
	dst := Rect{dx, dy, dx + srcRect.Dx(), dy + srcRect.Dy()}.Clamp(b.Bounds())
	if dst.Empty() {
		return 0
	}
	sx := srcRect.X0 + (dst.X0 - dx)
	sy := srcRect.Y0 + (dst.Y0 - dy)
	ox, oy := dst.X0-sx, dst.Y0-sy // dst = src + (ox, oy)
	if b.tiles == nil || src.tiles == nil || (ox&tileMask) != 0 || (oy&tileMask) != 0 {
		// Untracked or tile-misaligned: brute-force copy. The raw row
		// copy needs an authoritative pixel array under the whole
		// destination, exactly like Blit.
		b.own()
		b.realizeRegion(dst)
		b.copyRows(src, sx, sy, dst)
		b.touch(dst)
		return dst.Area()
	}
	b.own()
	bt, st := b.tiles, src.tiles
	bt.gen++
	g := bt.gen
	for ty := dst.Y0 >> TileShift; ty <= (dst.Y1-1)>>TileShift; ty++ {
		for tx := dst.X0 >> TileShift; tx <= (dst.X1-1)>>TileShift; tx++ {
			tr := Rect{tx << TileShift, ty << TileShift, (tx + 1) << TileShift, (ty + 1) << TileShift}
			clip := tr.Intersect(dst)
			di := ty*bt.cols + tx
			// The fast paths need the whole 32×32 tile: fully inside the
			// destination damage, fully on screen, and backed by a full
			// source tile.
			sr := Rect{tr.X0 - ox, tr.Y0 - oy, tr.X1 - ox, tr.Y1 - oy}
			if clip == tr && tr.X1 <= b.w && tr.Y1 <= b.h &&
				sr.X0 >= 0 && sr.Y0 >= 0 && sr.X1 <= src.w && sr.Y1 <= src.h {
				si := (sr.Y0>>TileShift)*st.cols + sr.X0>>TileShift
				if st.tgen[si] <= prev.Src && bt.tgen[di] < g && bt.tgen[di] <= prev.Dst {
					continue // generation skip: both sides unchanged since last compose
				}
				if b.TileSig(di) == src.TileSig(si) && b.tileContentEqual(src, si, di, sr, tr) {
					continue // verified identical content: skip the write
				}
				b.copyTile(src, si, di, sr, tr)
				bt.tgen[di] = g
				// The copy made the tiles byte-identical, and the ladder
				// above just validated the source's signature cache, so the
				// destination inherits it: the next compose of this pair
				// compares two cached words instead of rehashing 4 KB.
				if st.sigGen[si] == st.tgen[si] {
					bt.sig[di] = st.sig[si]
					bt.sigGen[di] = g
				}
				continue
			}
			if bt.palN != nil && bt.palN[di] > 0 {
				// Partial overwrite of a compressed destination tile: the
				// raw row copy below needs an authoritative pixel array.
				b.realizeTile(di)
			}
			b.copyRows(src, clip.X0-ox, clip.Y0-oy, clip)
			bt.tgen[di] = g
		}
	}
	return dst.Area()
}

// copyRows copies src rows starting at (sx, sy) into b's dst rectangle,
// decoding compressed source tiles. The caller has already clipped both
// sides, materialized b, and realized any compressed destination tiles
// under dst.
func (b *Buffer) copyRows(src *Buffer, sx, sy int, dst Rect) {
	rs := src.repr()
	if rs.tiles == nil || rs.tiles.palTiles == 0 {
		for y := 0; y < dst.Dy(); y++ {
			srow := rs.pix[(sy+y)*rs.w+sx : (sy+y)*rs.w+sx+dst.Dx()]
			drow := b.pix[(dst.Y0+y)*b.w+dst.X0 : (dst.Y0+y)*b.w+dst.X1]
			copy(drow, srow)
		}
		return
	}
	for y := 0; y < dst.Dy(); y++ {
		rs.readRow(b.pix[(dst.Y0+y)*b.w+dst.X0:(dst.Y0+y)*b.w+dst.X1], sx, sy+y, dst.Dx())
	}
}

// rowsEqual reports whether b's rectangle br holds exactly src's
// rectangle sr (same dimensions, compared row by row).
func (b *Buffer) rowsEqual(src *Buffer, sr, br Rect) bool {
	for y := 0; y < br.Dy(); y++ {
		srow := src.pix[(sr.Y0+y)*src.w+sr.X0 : (sr.Y0+y)*src.w+sr.X1]
		brow := b.pix[(br.Y0+y)*b.w+br.X0 : (br.Y0+y)*b.w+br.X1]
		if firstDiff(brow, srow) >= 0 {
			return false
		}
	}
	return true
}

// TileLattice groups a comparison Grid's lattice points by the 32×32
// tile containing them (CSR layout), so the meter can compare only the
// lattice points of tiles written since its last observation. Combined
// with the generation contract — an unwritten tile is bitwise unchanged
// — the restricted comparison returns exactly the verdict and first-diff
// index of a full-lattice scan.
type TileLattice struct {
	g     Grid
	start []int32 // per tile, offset into lat (len tiles+1)
	lat   []int32 // lattice indices grouped by tile, ascending per group
}

// NewTileLattice precomputes the tile → lattice-point index.
func NewTileLattice(g Grid) *TileLattice {
	tcols, trows := tilesFor(g.w), tilesFor(g.h)
	nt := tcols * trows
	n := g.Samples()
	tileOf := func(i int) int {
		x := g.xs[i%g.cols]
		y := g.ys[i/g.cols]
		return (y>>TileShift)*tcols + x>>TileShift
	}
	start := make([]int32, nt+1)
	for i := 0; i < n; i++ {
		start[tileOf(i)+1]++
	}
	for t := 0; t < nt; t++ {
		start[t+1] += start[t]
	}
	lat := make([]int32, n)
	cursor := make([]int32, nt)
	copy(cursor, start[:nt])
	for i := 0; i < n; i++ {
		t := tileOf(i)
		lat[cursor[t]] = int32(i)
		cursor[t]++
	}
	return &TileLattice{g: g, start: start, lat: lat}
}

// Prime gathers the full lattice of buf into committed — the first
// observation of a buffer, against which later deltas run.
func (tl *TileLattice) Prime(buf *Buffer, committed []Color) {
	tl.g.Sample(buf, committed)
}

// DeltaCompare compares buf's lattice points against committed,
// restricted to tiles written after sinceGen, updating committed in
// place for every differing point. It returns the minimum differing
// lattice index, or -1 when no compared point differs.
//
// Exactness: a tile with tgen <= sinceGen is bitwise unchanged since the
// generation snapshot, and committed held the then-current lattice
// values (maintained inductively by the in-place updates), so skipped
// points cannot differ. The minimum index over dirty tiles therefore
// equals the first-diff index of a full scan, and the all-clean case is
// exactly the redundant-frame verdict.
func (tl *TileLattice) DeltaCompare(buf *Buffer, committed []Color, sinceGen uint64) int {
	if buf.w != tl.g.w || buf.h != tl.g.h {
		panic(fmt.Sprintf("framebuffer: DeltaCompare on %dx%d buffer with %dx%d lattice screen",
			buf.w, buf.h, tl.g.w, tl.g.h))
	}
	t := buf.tiles
	if t == nil {
		panic("framebuffer: DeltaCompare on a buffer without tile tracking")
	}
	if len(committed) != tl.g.Samples() {
		panic(fmt.Sprintf("framebuffer: DeltaCompare committed length %d, want %d", len(committed), tl.g.Samples()))
	}
	// Content is read through the representation: the metered buffer may
	// be a copy-on-write view of a memoized screen, and dirty tiles may
	// be palette-compressed. Generations always come from buf's own tile
	// set — a view tracks its own churn.
	rb := buf.repr()
	rt := rb.tiles
	pix := rb.pix
	flat := tl.g.flat
	usePal := rt != nil && rt.palTiles > 0
	min := -1
	for ti, tg := range t.tgen {
		if tg <= sinceGen {
			continue
		}
		if usePal && rt.palN[ti] > 0 {
			plane := rt.tilePlane(ti)
			pal := rt.tilePal(ti)
			for _, li := range tl.lat[tl.start[ti]:tl.start[ti+1]] {
				np := tl.g.nibPos[li]
				v := pal[plane[np>>1]>>(uint(np&1)*4)&0xF]
				if v != committed[li] {
					committed[li] = v
					if min < 0 || int(li) < min {
						min = int(li)
					}
				}
			}
			continue
		}
		for _, li := range tl.lat[tl.start[ti]:tl.start[ti+1]] {
			if v := pix[flat[li]]; v != committed[li] {
				committed[li] = v
				if min < 0 || int(li) < min {
					min = int(li)
				}
			}
		}
	}
	return min
}

// Samples returns the lattice size.
func (tl *TileLattice) Samples() int { return tl.g.Samples() }
