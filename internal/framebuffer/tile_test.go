package framebuffer

import (
	"math/rand"
	"testing"
)

// randRect draws a rectangle roughly within (and sometimes beyond) a
// w × h buffer, including inverted and zero-area shapes.
func randRectIn(rng *rand.Rand, w, h int) Rect {
	return Rect{
		X0: rng.Intn(w+40) - 20,
		Y0: rng.Intn(h+40) - 20,
		X1: rng.Intn(w+40) - 20,
		Y1: rng.Intn(h+40) - 20,
	}
}

// mutate applies one random mutator to buf (and mirrors it onto ref when
// non-nil), exercising every write path that must maintain tile state.
func mutate(rng *rand.Rand, buf, ref *Buffer, aux *Buffer) {
	w, h := buf.Width(), buf.Height()
	switch rng.Intn(5) {
	case 0:
		r := randRectIn(rng, w, h)
		c := Color(rng.Uint32() & 0x00ffffff)
		buf.Fill(r, c)
		if ref != nil {
			ref.Fill(r, c)
		}
	case 1:
		x, y := rng.Intn(w), rng.Intn(h)
		c := Color(rng.Uint32() & 0x00ffffff)
		buf.Set(x, y, c)
		if ref != nil {
			ref.Set(x, y, c)
		}
	case 2:
		r := randRectIn(rng, w, h)
		dy := rng.Intn(2*h+1) - h
		buf.ScrollVert(r, dy)
		if ref != nil {
			ref.ScrollVert(r, dy)
		}
	case 3:
		sr := randRectIn(rng, aux.Width(), aux.Height())
		dx, dy := rng.Intn(w+20)-10, rng.Intn(h+20)-10
		buf.Blit(aux, sr, dx, dy)
		if ref != nil {
			ref.Blit(aux, sr, dx, dy)
		}
	case 4:
		buf.CopyFrom(aux)
		if ref != nil {
			ref.CopyFrom(aux)
		}
	}
}

// noisyBuffer builds a w × h buffer with deterministic pseudo-random
// pixels.
func noisyBuffer(rng *rand.Rand, w, h int) *Buffer {
	b := New(w, h)
	pix := b.Pix()
	for i := range pix {
		pix[i] = Color(rng.Uint32() & 0x00ffffff)
	}
	return b
}

// TestTileSigIncrementalEqualsFullRehash is the core signature property:
// after an arbitrary sequence of damage-rect mutations — with signature
// caches populated at arbitrary intermediate points — every cached
// signature equals a from-scratch rehash of the tile's current pixels.
// Buffer sizes include non-multiples of 32 so edge tiles are partial.
func TestTileSigIncrementalEqualsFullRehash(t *testing.T) {
	for _, dims := range [][2]int{{64, 64}, {33, 47}, {96, 130}, {31, 31}} {
		w, h := dims[0], dims[1]
		rng := rand.New(rand.NewSource(int64(w*1000 + h)))
		buf := noisyBuffer(rng, w, h)
		buf.EnableTiles()
		aux := noisyBuffer(rng, w, h)
		for step := 0; step < 200; step++ {
			mutate(rng, buf, nil, aux)
			// Populate some signature caches mid-sequence so later
			// mutations must correctly invalidate them.
			if step%3 == 0 {
				buf.TileSig(rng.Intn(buf.Tiles()))
			}
		}
		for i := 0; i < buf.Tiles(); i++ {
			if got, want := buf.TileSig(i), buf.hashTile(i); got != want {
				t.Fatalf("%dx%d tile %d: cached sig %#x != full rehash %#x", w, h, i, got, want)
			}
		}
	}
}

// TestTileTrackedMutatorsMatchUntracked pins that enabling tile tracking
// never changes pixel semantics: the same mutation sequence applied to a
// tracked and an untracked buffer yields identical bytes and identical
// tile generations mark a superset of changed tiles.
func TestTileTrackedMutatorsMatchUntracked(t *testing.T) {
	for _, dims := range [][2]int{{64, 64}, {33, 47}} {
		w, h := dims[0], dims[1]
		rng := rand.New(rand.NewSource(int64(w + h)))
		tracked := noisyBuffer(rng, w, h)
		plain := New(w, h)
		plain.CopyFrom(tracked)
		tracked.EnableTiles()
		aux := noisyBuffer(rng, w, h)

		prev := New(w, h)
		for step := 0; step < 150; step++ {
			prev.CopyFrom(plain)
			sinceGen := tracked.Gen()
			mutate(rng, tracked, plain, aux)
			if !tracked.Equal(plain) {
				t.Fatalf("%dx%d step %d: tracked buffer diverged from untracked", w, h, step)
			}
			// Generation soundness: every tile holding a changed pixel
			// must be marked written after the mutation.
			for i := 0; i < tracked.Tiles(); i++ {
				if tracked.TileGen(i) > sinceGen {
					continue // marked dirty; nothing to prove
				}
				r := tracked.TileRect(i)
				for y := r.Y0; y < r.Y1; y++ {
					for x := r.X0; x < r.X1; x++ {
						if plain.At(x, y) != prev.At(x, y) {
							t.Fatalf("%dx%d step %d: tile %d changed at (%d,%d) but was not touched",
								w, h, step, i, x, y)
						}
					}
				}
			}
		}
	}
}

// TestTileTouchEdgeRects is the regression suite for the latent
// Fill/damage clamping edge: zero-area, inverted, and out-of-bounds
// rectangles — including negative coordinates, whose tile index would
// arithmetic-shift to -1 without clamping — must be handled by every
// mutator on buffers whose edge tiles are partial.
func TestTileTouchEdgeRects(t *testing.T) {
	edgeRects := []Rect{
		{},                     // zero value
		{5, 5, 5, 9},           // zero width
		{5, 5, 9, 5},           // zero height
		{10, 10, 3, 20},        // inverted x
		{10, 10, 20, 3},        // inverted y
		{-100, -100, -50, -50}, // fully negative
		{-10, -10, 5, 5},       // straddles origin
		{30, 40, 500, 600},     // exceeds bounds
		{-1000, 0, 1000, 1},    // thin row across, wide overshoot
		{0, -1000, 1, 1000},    // thin column across
		{32, 32, 64, 64},       // exactly tile-aligned
		{31, 31, 33, 33},       // straddles a tile corner
		{-2147483000, -2147483000, 2147483000, 2147483000}, // near-overflow
	}
	for _, dims := range [][2]int{{33, 47}, {64, 64}, {32, 32}, {1, 1}} {
		w, h := dims[0], dims[1]
		rng := rand.New(rand.NewSource(99))
		tracked := noisyBuffer(rng, w, h)
		plain := New(w, h)
		plain.CopyFrom(tracked)
		tracked.EnableTiles()
		src := noisyBuffer(rng, w, h)
		for _, r := range edgeRects {
			if got, want := tracked.Fill(r, Color(0x123456)), plain.Fill(r, Color(0x123456)); got != want {
				t.Fatalf("%dx%d Fill(%v): tracked count %d, plain %d", w, h, r, got, want)
			}
			if got, want := tracked.Blit(src, r, r.X0, r.Y0), plain.Blit(src, r, r.X0, r.Y0); got != want {
				t.Fatalf("%dx%d Blit(%v): tracked count %d, plain %d", w, h, r, got, want)
			}
			for _, dy := range []int{-1000, -3, 0, 3, 1000} {
				if got, want := tracked.ScrollVert(r, dy), plain.ScrollVert(r, dy); got != want {
					t.Fatalf("%dx%d ScrollVert(%v, %d): tracked rect %v, plain %v", w, h, r, dy, got, want)
				}
			}
			if !tracked.Equal(plain) {
				t.Fatalf("%dx%d after rect %v: tracked pixels diverge", w, h, r)
			}
		}
		// BlitTiled must clamp the same rects identically (untracked src
		// forces the fallback; tracked src takes the tile ladder).
		for _, sb := range []*Buffer{src, func() *Buffer { s := New(w, h); s.CopyFrom(src); s.EnableTiles(); return s }()} {
			for _, r := range edgeRects {
				want := plain.Blit(sb, r, r.X0+1, r.Y0)
				got := tracked.BlitTiled(sb, r, r.X0+1, r.Y0, ComposeGens{})
				if got != want {
					t.Fatalf("%dx%d BlitTiled(%v): count %d, want %d", w, h, r, got, want)
				}
				if !tracked.Equal(plain) {
					t.Fatalf("%dx%d BlitTiled(%v): pixels diverge from Blit", w, h, r)
				}
			}
		}
	}
}

// mutateDamaged applies one random honest-client mutation to buf and
// returns a rectangle covering every pixel it may have changed — the
// damage a well-behaved surface.Client would report.
func mutateDamaged(rng *rand.Rand, buf, aux *Buffer) Rect {
	w, h := buf.Width(), buf.Height()
	switch rng.Intn(5) {
	case 0:
		r := randRectIn(rng, w, h)
		buf.Fill(r, Color(rng.Uint32()&0x00ffffff))
		return r.Clamp(buf.Bounds())
	case 1:
		x, y := rng.Intn(w), rng.Intn(h)
		buf.Set(x, y, Color(rng.Uint32()&0x00ffffff))
		return Rect{x, y, x + 1, y + 1}
	case 2:
		// ScrollVert returns the vacated repaint rect; the written rows
		// are the rest of r, so an honest client damages all of r.
		r := randRectIn(rng, w, h)
		buf.ScrollVert(r, rng.Intn(2*h+1)-h)
		return r.Clamp(buf.Bounds())
	case 3:
		sr := randRectIn(rng, aux.Width(), aux.Height()).Clamp(aux.Bounds())
		dx, dy := rng.Intn(w+20)-10, rng.Intn(h+20)-10
		buf.Blit(aux, sr, dx, dy)
		return Rect{dx, dy, dx + sr.Dx(), dy + sr.Dy()}.Clamp(buf.Bounds())
	default:
		buf.CopyFrom(aux)
		return buf.Bounds()
	}
}

// union grows a into the bounding box of a and b (either may be empty).
func union(a, b Rect) Rect {
	if b.Empty() {
		return a
	}
	if a.Empty() {
		return b
	}
	if b.X0 < a.X0 {
		a.X0 = b.X0
	}
	if b.Y0 < a.Y0 {
		a.Y0 = b.Y0
	}
	if b.X1 > a.X1 {
		a.X1 = b.X1
	}
	if b.Y1 > a.Y1 {
		a.Y1 = b.Y1
	}
	return a
}

// TestBlitTiledMatchesBlit drives randomized compose sequences through
// BlitTiled and plain Blit side by side, modelled exactly like the
// surface compositor uses them: a fixed per-surface destination offset,
// a full-bounds first compose, reported damage covering every mutation
// since the previous compose (the surface.Client contract the generation
// skip relies on), and the ComposeGens snapshot advancing after each
// pass. Bytes and return values must never diverge — across aligned
// offsets (tile ladder), misaligned offsets (fallback), redundant
// latches, over-reported damage and partial edge tiles.
func TestBlitTiledMatchesBlit(t *testing.T) {
	cases := []struct {
		w, h   int
		dw, dh int
		ox, oy int // fixed destination offset; &31 != 0 forces the fallback
	}{
		{64, 64, 64, 64, 0, 0},     // aligned, same size
		{64, 64, 128, 160, 32, 64}, // aligned, surface inside a larger fb
		{33, 47, 33, 47, 0, 0},     // aligned, partial edge tiles
		{96, 130, 96, 130, 0, 0},   // aligned, partial edge tiles
		{64, 64, 96, 96, 3, 17},    // misaligned: every compose falls back
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(int64(tc.w ^ tc.h<<8 ^ tc.ox<<16)))
		src := noisyBuffer(rng, tc.w, tc.h)
		src.EnableTiles()
		dstT := New(tc.dw, tc.dh)
		dstN := New(tc.dw, tc.dh)
		dstT.EnableTiles()
		aux := noisyBuffer(rng, tc.w, tc.h)

		var gens ComposeGens
		pending := src.Bounds() // first compose latches the whole surface
		for step := 0; step < 150; step++ {
			damage := pending
			if rng.Intn(5) == 0 {
				damage = src.Bounds() // over-reported damage is contract-legal
			}
			got := dstT.BlitTiled(src, damage, tc.ox+damage.X0, tc.oy+damage.Y0, gens)
			want := dstN.Blit(src, damage, tc.ox+damage.X0, tc.oy+damage.Y0)
			if got != want {
				t.Fatalf("%+v step %d: BlitTiled count %d, Blit %d", tc, step, got, want)
			}
			if !dstT.Equal(dstN) {
				t.Fatalf("%+v step %d: BlitTiled bytes diverge from Blit", tc, step)
			}
			gens = ComposeGens{Src: src.Gen(), Dst: dstT.Gen()}

			// Paint damage for the next latch: usually some mutations,
			// sometimes none (a redundant latch re-submitting empty or
			// stale damage).
			pending = Rect{}
			for n := rng.Intn(4); n > 0; n-- {
				pending = union(pending, mutateDamaged(rng, src, aux))
			}
		}
	}
}

// TestForcedSigCollision injects two distinct tiles reporting equal
// signatures (the PoisonTileSig hook) and proves the pixel-verify
// fallback keeps composition exact: the collision must not suppress the
// copy. This is the safety property that makes 64-bit signatures usable
// at all — equal signatures are only ever a hint.
func TestForcedSigCollision(t *testing.T) {
	src := New(64, 64)
	src.EnableTiles()
	src.FillAll(Color(0x111111))
	dst := New(64, 64)
	dst.EnableTiles()
	dst.FillAll(Color(0x222222))

	// Force every tile pair to report the same signature even though all
	// pixels differ.
	for i := 0; i < src.Tiles(); i++ {
		src.PoisonTileSig(i, 0xdeadbeef)
		dst.PoisonTileSig(i, 0xdeadbeef)
	}
	// No generation skip applies (ComposeGens zero value), so the blit
	// decision rests entirely on the poisoned signatures + pixel verify.
	n := dst.BlitTiled(src, src.Bounds(), 0, 0, ComposeGens{})
	if n != 64*64 {
		t.Fatalf("BlitTiled returned %d, want %d", n, 64*64)
	}
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if dst.At(x, y) != Color(0x111111) {
				t.Fatalf("collision suppressed the copy at (%d,%d): %#x", x, y, dst.At(x, y))
			}
		}
	}

	// The inverse hint direction: when tiles really are identical, the
	// verify confirms it and the copy is skipped — bytes still exact.
	dst2 := New(64, 64)
	dst2.EnableTiles()
	dst2.CopyFrom(src)
	for i := 0; i < src.Tiles(); i++ {
		dst2.PoisonTileSig(i, 0xfeedface)
		src.PoisonTileSig(i, 0xfeedface)
	}
	dst2.BlitTiled(src, src.Bounds(), 0, 0, ComposeGens{})
	if !dst2.Equal(src) {
		t.Fatal("identical-tile skip corrupted the destination")
	}
}

// TestEqualSigFastPathStaysExact: Equal may use cached signatures only in
// the differing direction; equal (even poisoned-equal) signatures must
// fall through to the pixel scan.
func TestEqualSigFastPathStaysExact(t *testing.T) {
	a := New(64, 64)
	b := New(64, 64)
	a.EnableTiles()
	b.EnableTiles()
	a.FillAll(Color(0xaaaaaa))
	b.FillAll(Color(0xbbbbbb))
	for i := 0; i < a.Tiles(); i++ {
		a.PoisonTileSig(i, 42)
		b.PoisonTileSig(i, 42)
	}
	if a.Equal(b) {
		t.Fatal("poisoned-equal signatures masked a pixel difference in Equal")
	}
	b.FillAll(Color(0xaaaaaa))
	if !a.Equal(b) {
		t.Fatal("identical buffers reported unequal")
	}
	// Differing cached signatures on identical... must never happen for
	// honest sigs; verify the fast path is exact for honestly cached ones.
	a.Fill(Rect{0, 0, 32, 32}, Color(0x010101))
	a.TileSig(0)
	b.TileSig(0)
	if a.Equal(b) {
		t.Fatal("differing tile not detected")
	}
}

// TestShareFromCopyOnWrite covers the COW view lifecycle: reads alias the
// source, the first mutation materializes privately, and the source is
// never written through the view.
func TestShareFromCopyOnWrite(t *testing.T) {
	src := New(40, 40)
	src.FillAll(Color(0x336699))
	view := New(40, 40)
	view.EnableTiles()
	view.ShareFrom(src)
	if !view.Shared() {
		t.Fatal("view not marked shared")
	}
	if view.At(7, 9) != Color(0x336699) {
		t.Fatalf("shared read = %#x", view.At(7, 9))
	}
	view.Set(7, 9, Color(0x00ff00))
	if view.Shared() {
		t.Fatal("view still shared after write")
	}
	if src.At(7, 9) != Color(0x336699) {
		t.Fatal("write leaked through to the shared source")
	}
	if view.At(7, 9) != Color(0x00ff00) || view.At(0, 0) != Color(0x336699) {
		t.Fatal("materialized view content wrong")
	}
	// Pix() on a shared view must materialize (its slice is writable).
	view2 := New(40, 40)
	view2.ShareFrom(src)
	view2.Pix()[0] = Color(0x123)
	if src.At(0, 0) == Color(0x123) {
		t.Fatal("Pix() returned an alias of the shared source")
	}
	// Re-sharing parks storage again; a second ShareFrom retargets.
	view3 := New(40, 40)
	view3.ShareFrom(src)
	src2 := New(40, 40)
	src2.FillAll(Color(0x101010))
	view3.ShareFrom(src2)
	if view3.At(3, 3) != Color(0x101010) {
		t.Fatal("re-share did not retarget")
	}
	view3.FillAll(Color(0x99))
	if src2.At(3, 3) != Color(0x101010) {
		t.Fatal("materialization after re-share wrote the source")
	}
}

// TestTileLatticeDeltaMatchesFullScan is the meter-side differential
// property: DeltaCompare restricted to dirty tiles returns exactly the
// verdict and first-diff index of a full lattice scan, across arbitrary
// mutation histories, and leaves committed equal to the current lattice
// values whenever it reports content.
func TestTileLatticeDeltaMatchesFullScan(t *testing.T) {
	for _, dims := range [][2]int{{64, 64}, {96, 130}, {33, 47}} {
		w, h := dims[0], dims[1]
		g := GridForSamples(w, h, 256)
		tl := NewTileLattice(g)
		rng := rand.New(rand.NewSource(int64(w * h)))
		buf := noisyBuffer(rng, w, h)
		buf.EnableTiles()
		aux := noisyBuffer(rng, w, h)

		committed := make([]Color, g.Samples())
		tl.Prime(buf, committed)
		sinceGen := buf.Gen()

		full := make([]Color, g.Samples())
		for step := 0; step < 150; step++ {
			if rng.Intn(4) > 0 { // sometimes observe an unchanged frame
				mutate(rng, buf, nil, aux)
			}
			// Reference: full gather against a snapshot of committed.
			prev := make([]Color, len(committed))
			copy(prev, committed)
			g.Sample(buf, full)
			want := SamplesFirstDiff(full, prev)

			got := tl.DeltaCompare(buf, committed, sinceGen)
			if got != want {
				t.Fatalf("%dx%d step %d: DeltaCompare = %d, full scan = %d", w, h, step, got, want)
			}
			// Invariant: committed now equals the current lattice.
			if d := SamplesFirstDiff(full, committed); d >= 0 {
				t.Fatalf("%dx%d step %d: committed stale at index %d after DeltaCompare", w, h, step, d)
			}
			sinceGen = buf.Gen()
		}
	}
}

// TestTileStateAllocFree pins the steady-state allocation contract of the
// tile layer: touch bookkeeping, signature hashing, COW materialization
// and tiled blits allocate nothing once buffers exist.
func TestTileStateAllocFree(t *testing.T) {
	src := New(64, 64)
	src.EnableTiles()
	src.FillAll(Color(0x111111))
	dst := New(64, 64)
	dst.EnableTiles()
	memo := New(64, 64)
	memo.FillAll(Color(0x777777))
	var gens ComposeGens
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		src.Fill(Rect{i % 30, i % 30, i%30 + 20, i%30 + 20}, Color(i))
		src.TileSig(0)
		dst.BlitTiled(src, src.Bounds(), 0, 0, gens)
		gens = ComposeGens{Src: src.Gen(), Dst: dst.Gen()}
		dst.ShareFrom(memo) // park + alias
		dst.Set(1, 1, Color(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("tile steady state allocates %.1f allocs/op, want 0", allocs)
	}
}
