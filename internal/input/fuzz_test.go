package input

import (
	"bytes"
	"strings"
	"testing"

	"ccdem/internal/sim"
)

// FuzzReadScript hardens the script parser against malformed documents:
// whatever the input, ReadScript must either error or return a script
// that replays cleanly.
func FuzzReadScript(f *testing.F) {
	// Seed with a real script and the validation-test corpus.
	mk, err := NewMonkey(1, DefaultMonkeyConfig())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mk.Script(5*sim.Second, 100, 100).WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"length_us":1000,"gestures":[]}`)
	f.Add(`{"version":1,"length_us":-5,"gestures":[]}`)
	f.Add(`[]`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadScript(strings.NewReader(in))
		if err != nil {
			return
		}
		// A script the parser accepted must replay without panicking and
		// round-trip through the writer.
		eng := sim.NewEngine()
		r := NewReplayer(eng)
		n := 0
		r.Subscribe(func(Event) { n++ })
		r.Play(s)
		eng.RunUntil(s.Length)
		var out bytes.Buffer
		if err := s.WriteJSON(&out); err != nil {
			t.Fatalf("accepted script failed to serialize: %v", err)
		}
	})
}
