package input

import (
	"reflect"
	"testing"
	"testing/quick"

	"ccdem/internal/sim"
)

func mustMonkey(t *testing.T, seed int64) *Monkey {
	t.Helper()
	m, err := NewMonkey(seed, DefaultMonkeyConfig())
	if err != nil {
		t.Fatalf("NewMonkey: %v", err)
	}
	return m
}

func TestMonkeyConfigValidation(t *testing.T) {
	bad := []MonkeyConfig{
		{},
		{MeanIdle: sim.Second, MinIdle: 2 * sim.Second, MoveRate: 100},
		{MeanIdle: sim.Second, TapFraction: 0.7, SwipeFraction: 0.7, MoveRate: 100},
		{MeanIdle: sim.Second, MoveRate: 0},
	}
	for i, cfg := range bad {
		if _, err := NewMonkey(1, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestMonkeyDeterminism(t *testing.T) {
	s1 := mustMonkey(t, 42).Script(30*sim.Second, 720, 1280)
	s2 := mustMonkey(t, 42).Script(30*sim.Second, 720, 1280)
	if !reflect.DeepEqual(s1, s2) {
		t.Error("same seed produced different scripts")
	}
	s3 := mustMonkey(t, 43).Script(30*sim.Second, 720, 1280)
	if reflect.DeepEqual(s1, s3) {
		t.Error("different seeds produced identical scripts")
	}
}

func TestScriptEventInvariants(t *testing.T) {
	s := mustMonkey(t, 7).Script(60*sim.Second, 720, 1280)
	if len(s.Gestures) == 0 {
		t.Fatal("60s script has no gestures")
	}
	evs := s.Events()
	for i, ev := range evs {
		if ev.At < 0 || ev.At >= s.Length {
			t.Fatalf("event %d at %v outside script [0,%v)", i, ev.At, s.Length)
		}
		if ev.X < 0 || ev.X >= 720 || ev.Y < 0 || ev.Y >= 1280 {
			t.Fatalf("event %d at (%d,%d) off screen", i, ev.X, ev.Y)
		}
		if i > 0 && ev.At < evs[i-1].At {
			t.Fatalf("event %d out of order", i)
		}
	}
	// Every gesture is down ... up.
	for gi, g := range s.Gestures {
		if len(g.Events) < 2 {
			t.Fatalf("gesture %d has %d events", gi, len(g.Events))
		}
		if g.Events[0].Kind != TouchDown || g.Events[len(g.Events)-1].Kind != TouchUp {
			t.Fatalf("gesture %d not down..up: %v..%v", gi, g.Events[0].Kind, g.Events[len(g.Events)-1].Kind)
		}
		for _, mid := range g.Events[1 : len(g.Events)-1] {
			if mid.Kind != TouchMove {
				t.Fatalf("gesture %d has non-move interior event", gi)
			}
		}
	}
}

func TestMonkeyGestureMix(t *testing.T) {
	s := mustMonkey(t, 123).Script(10*sim.Minute, 720, 1280)
	taps := s.CountKind(Tap)
	swipes := s.CountKind(Swipe)
	flings := s.CountKind(Fling)
	total := taps + swipes + flings
	if total != len(s.Gestures) {
		t.Fatalf("kinds %d+%d+%d != %d gestures", taps, swipes, flings, len(s.Gestures))
	}
	// With defaults 45/40/15, a long run should roughly respect the mix.
	if fr := float64(taps) / float64(total); fr < 0.3 || fr > 0.6 {
		t.Errorf("tap fraction = %v, want ≈0.45", fr)
	}
	if fr := float64(swipes) / float64(total); fr < 0.25 || fr > 0.55 {
		t.Errorf("swipe fraction = %v, want ≈0.40", fr)
	}
}

func TestGestureDuration(t *testing.T) {
	g := Gesture{Events: []Event{{At: sim.Second}, {At: sim.Second + 100*sim.Millisecond}}}
	if g.Duration() != 100*sim.Millisecond {
		t.Errorf("Duration = %v", g.Duration())
	}
	if (Gesture{}).Duration() != 0 {
		t.Error("empty gesture duration != 0")
	}
}

func TestKindStrings(t *testing.T) {
	if TouchDown.String() != "down" || TouchMove.String() != "move" || TouchUp.String() != "up" {
		t.Error("Kind strings wrong")
	}
	if Tap.String() != "tap" || Swipe.String() != "swipe" || Fling.String() != "fling" {
		t.Error("GestureKind strings wrong")
	}
	if Kind(9).String() == "" || GestureKind(9).String() == "" {
		t.Error("unknown kinds have empty strings")
	}
}

func TestReplayerDeliversInOrder(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReplayer(eng)
	var got []Event
	r.Subscribe(func(ev Event) { got = append(got, ev) })
	s := mustMonkey(t, 5).Script(20*sim.Second, 720, 1280)
	r.Play(s)
	eng.RunUntil(20 * sim.Second)
	want := s.Events()
	if len(got) != len(want) {
		t.Fatalf("delivered %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].X != want[i].X || got[i].Y != want[i].Y {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReplayerOffsetsFromNow(t *testing.T) {
	eng := sim.NewEngine()
	eng.RunUntil(5 * sim.Second)
	r := NewReplayer(eng)
	var first sim.Time = -1
	r.Subscribe(func(ev Event) {
		if first < 0 {
			first = eng.Now()
		}
	})
	s := mustMonkey(t, 5).Script(10*sim.Second, 720, 1280)
	r.Play(s)
	eng.RunUntil(20 * sim.Second)
	wantFirst := 5*sim.Second + s.Events()[0].At
	if first != wantFirst {
		t.Errorf("first delivery at %v, want %v", first, wantFirst)
	}
}

func TestReplayerMultipleSinks(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReplayer(eng)
	a, b := 0, 0
	r.Subscribe(func(Event) { a++ })
	r.Subscribe(func(Event) { b++ })
	s := mustMonkey(t, 5).Script(10*sim.Second, 720, 1280)
	r.Play(s)
	eng.RunUntil(10 * sim.Second)
	if a == 0 || a != b {
		t.Errorf("sink counts %d/%d, want equal and non-zero", a, b)
	}
}

// Property: scripts are deterministic per seed and all events are in
// bounds for arbitrary screen sizes.
func TestMonkeyScriptProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint16) bool {
		w := int(wRaw%2000) + 100
		h := int(hRaw%2000) + 100
		m1, err := NewMonkey(seed, DefaultMonkeyConfig())
		if err != nil {
			return false
		}
		m2, _ := NewMonkey(seed, DefaultMonkeyConfig())
		s1 := m1.Script(15*sim.Second, w, h)
		s2 := m2.Script(15*sim.Second, w, h)
		if !reflect.DeepEqual(s1, s2) {
			return false
		}
		for _, ev := range s1.Events() {
			if ev.X < 0 || ev.X >= w || ev.Y < 0 || ev.Y >= h || ev.At < 0 || ev.At >= 15*sim.Second {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
