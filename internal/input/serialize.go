package input

import (
	"encoding/json"
	"fmt"
	"io"

	"ccdem/internal/sim"
)

// Script serialization: a stable JSON wire format so that one recorded or
// generated interaction sequence can be replayed bit-identically across
// tools and machines — the "same script" property the paper's paired
// measurements rest on, made portable.

type wireScript struct {
	Version  int           `json:"version"`
	LengthUS int64         `json:"length_us"`
	Gestures []wireGesture `json:"gestures"`
}

type wireGesture struct {
	Kind    string      `json:"kind"`
	StartUS int64       `json:"start_us"`
	Events  []wireEvent `json:"events"`
}

type wireEvent struct {
	AtUS int64  `json:"at_us"`
	Kind string `json:"kind"`
	X    int    `json:"x"`
	Y    int    `json:"y"`
}

const wireVersion = 1

var kindNames = map[Kind]string{TouchDown: "down", TouchMove: "move", TouchUp: "up"}
var kindValues = map[string]Kind{"down": TouchDown, "move": TouchMove, "up": TouchUp}
var gestureNames = map[GestureKind]string{Tap: "tap", Swipe: "swipe", Fling: "fling"}
var gestureValues = map[string]GestureKind{"tap": Tap, "swipe": Swipe, "fling": Fling}

// WriteJSON serializes the script.
func (s Script) WriteJSON(w io.Writer) error {
	ws := wireScript{Version: wireVersion, LengthUS: int64(s.Length)}
	for _, g := range s.Gestures {
		wg := wireGesture{Kind: gestureNames[g.Kind], StartUS: int64(g.Start)}
		for _, ev := range g.Events {
			wg.Events = append(wg.Events, wireEvent{
				AtUS: int64(ev.At), Kind: kindNames[ev.Kind], X: ev.X, Y: ev.Y,
			})
		}
		ws.Gestures = append(ws.Gestures, wg)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ws)
}

// ReadScript parses a script previously written by WriteJSON, validating
// structure (version, event ordering, gesture down…up shape).
func ReadScript(r io.Reader) (Script, error) {
	var ws wireScript
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ws); err != nil {
		return Script{}, fmt.Errorf("input: parsing script: %w", err)
	}
	if ws.Version != wireVersion {
		return Script{}, fmt.Errorf("input: unsupported script version %d", ws.Version)
	}
	if ws.LengthUS <= 0 {
		return Script{}, fmt.Errorf("input: non-positive script length %d", ws.LengthUS)
	}
	s := Script{Length: sim.Time(ws.LengthUS)}
	var lastAt sim.Time = -1
	for gi, wg := range ws.Gestures {
		gk, ok := gestureValues[wg.Kind]
		if !ok {
			return Script{}, fmt.Errorf("input: gesture %d has unknown kind %q", gi, wg.Kind)
		}
		g := Gesture{Kind: gk, Start: sim.Time(wg.StartUS)}
		if len(wg.Events) < 2 {
			return Script{}, fmt.Errorf("input: gesture %d has %d events, need ≥2", gi, len(wg.Events))
		}
		for ei, we := range wg.Events {
			ek, ok := kindValues[we.Kind]
			if !ok {
				return Script{}, fmt.Errorf("input: gesture %d event %d has unknown kind %q", gi, ei, we.Kind)
			}
			at := sim.Time(we.AtUS)
			if at < lastAt {
				return Script{}, fmt.Errorf("input: gesture %d event %d out of order", gi, ei)
			}
			lastAt = at
			g.Events = append(g.Events, Event{At: at, Kind: ek, X: we.X, Y: we.Y})
		}
		if g.Events[0].Kind != TouchDown || g.Events[len(g.Events)-1].Kind != TouchUp {
			return Script{}, fmt.Errorf("input: gesture %d is not down…up shaped", gi)
		}
		s.Gestures = append(s.Gestures, g)
	}
	return s, nil
}
