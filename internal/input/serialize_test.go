package input

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ccdem/internal/sim"
)

func TestScriptJSONRoundTrip(t *testing.T) {
	s := mustMonkey(t, 77).Script(30*sim.Second, 720, 1280)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadScript(&buf)
	if err != nil {
		t.Fatalf("ReadScript: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Error("round trip changed the script")
	}
}

func TestReadScriptValidation(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"bad version":  `{"version":9,"length_us":1000,"gestures":[]}`,
		"zero length":  `{"version":1,"length_us":0,"gestures":[]}`,
		"unknown kind": `{"version":1,"length_us":1000,"gestures":[{"kind":"pinch","start_us":0,"events":[{"at_us":0,"kind":"down","x":1,"y":1},{"at_us":5,"kind":"up","x":1,"y":1}]}]}`,
		"bad event":    `{"version":1,"length_us":1000,"gestures":[{"kind":"tap","start_us":0,"events":[{"at_us":0,"kind":"hover","x":1,"y":1},{"at_us":5,"kind":"up","x":1,"y":1}]}]}`,
		"one event":    `{"version":1,"length_us":1000,"gestures":[{"kind":"tap","start_us":0,"events":[{"at_us":0,"kind":"down","x":1,"y":1}]}]}`,
		"not down..up": `{"version":1,"length_us":1000,"gestures":[{"kind":"tap","start_us":0,"events":[{"at_us":0,"kind":"up","x":1,"y":1},{"at_us":5,"kind":"up","x":1,"y":1}]}]}`,
		"out of order": `{"version":1,"length_us":1000,"gestures":[{"kind":"tap","start_us":0,"events":[{"at_us":10,"kind":"down","x":1,"y":1},{"at_us":5,"kind":"up","x":1,"y":1}]}]}`,
	}
	for name, in := range cases {
		if _, err := ReadScript(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadScriptEmptyGesturesOK(t *testing.T) {
	s, err := ReadScript(strings.NewReader(`{"version":1,"length_us":5000000,"gestures":[]}`))
	if err != nil {
		t.Fatalf("empty script rejected: %v", err)
	}
	if s.Length != 5*sim.Second || len(s.Gestures) != 0 {
		t.Errorf("parsed = %+v", s)
	}
}

func TestReplayedSerializedScriptIsIdentical(t *testing.T) {
	orig := mustMonkey(t, 4).Script(10*sim.Second, 720, 1280)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadScript(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := func(s Script) []Event {
		eng := sim.NewEngine()
		r := NewReplayer(eng)
		var got []Event
		r.Subscribe(func(ev Event) { got = append(got, ev) })
		r.Play(s)
		eng.RunUntil(10 * sim.Second)
		return got
	}
	a, b := replay(orig), replay(loaded)
	if !reflect.DeepEqual(a, b) {
		t.Error("replay of loaded script differs from original")
	}
}
