package obs

import (
	"hash/fnv"
	"io"
	"sort"
	"sync"
)

// DeviceObs bundles one instrumented run's observability sinks: the
// decision-event recorder and the metrics registry handed to a
// ccdem.Device.
type DeviceObs struct {
	Name string
	Rec  *Recorder
	Reg  *Registry
}

// Collector hands out per-device observability sinks to concurrent runs
// (fleet devices, parallel experiment campaigns) and later assembles them
// into one trace and one merged registry. Device is safe to call from pool
// goroutines; each returned Recorder/Registry pair must still be used by a
// single run only. Export is deterministic regardless of attach order:
// tracks are sorted by name, which also fixes the registry merge order
// (float sums are order-sensitive).
type Collector struct {
	mu       sync.Mutex
	eventCap int
	sample   int
	tracks   []*DeviceObs
}

// NewCollector creates a collector whose recorders hold up to eventCap
// events each (DefaultEventCap when non-positive).
func NewCollector(eventCap int) *Collector {
	return &Collector{eventCap: eventCap}
}

// SetSample keeps observability for roughly one in every n registered
// runs and hands nil sinks (observability disabled at zero cost) to the
// rest. The collector retains a recorder ring and registry per
// instrumented run, so an unsampled million-device campaign costs
// O(devices) memory; sampling bounds that to ~devices/n tracks while
// keeping a representative slice. Selection hashes the track name, so
// which runs are kept is deterministic regardless of worker scheduling
// and call order. n <= 1 restores full instrumentation.
func (c *Collector) SetSample(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sample = n
	c.mu.Unlock()
}

// Device registers a new instrumented run under the given track name and
// returns its sinks. Names should be unique per run (the exporters keep
// duplicates, but their tracks become hard to tell apart). Nil-safe: a nil
// collector returns nil sinks, i.e. observability disabled; a sampling
// collector (SetSample) returns nil sinks for the runs it drops.
func (c *Collector) Device(name string) (*Recorder, *Registry) {
	if c == nil {
		return nil, nil
	}
	c.mu.Lock()
	if n := c.sample; n > 1 {
		h := fnv.New32a()
		h.Write([]byte(name))
		if h.Sum32()%uint32(n) != 0 {
			c.mu.Unlock()
			return nil, nil
		}
	}
	t := &DeviceObs{Name: name, Rec: NewRecorder(c.eventCap), Reg: NewRegistry()}
	c.tracks = append(c.tracks, t)
	c.mu.Unlock()
	return t.Rec, t.Reg
}

// Tracks returns the registered runs sorted by name.
func (c *Collector) Tracks() []*DeviceObs {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]*DeviceObs(nil), c.tracks...)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Trace assembles every track into a Chrome trace, one process per run in
// name order (pid = position + 1). Callers may add further tracks (e.g. a
// scheduler span log) before writing.
func (c *Collector) Trace() *Trace {
	tr := NewTrace()
	for i, t := range c.Tracks() {
		tr.AddDevice(i+1, t.Name, t.Rec)
	}
	return tr
}

// WriteTrace writes the assembled Chrome trace JSON.
func (c *Collector) WriteTrace(w io.Writer) error {
	return c.Trace().Write(w)
}

// MergedMetrics merges every track's registry in name order into one
// fleet-wide registry.
func (c *Collector) MergedMetrics() (*Registry, error) {
	merged := NewRegistry()
	for _, t := range c.Tracks() {
		if err := merged.Merge(t.Reg); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// WriteMetrics writes the merged registries' plain-text dump.
func (c *Collector) WriteMetrics(w io.Writer) error {
	merged, err := c.MergedMetrics()
	if err != nil {
		return err
	}
	return merged.WriteText(w)
}
