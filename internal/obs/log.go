// Structured logging for the service layer, built on log/slog. The obs
// package owns the two conventions every ccdem process shares: how a log
// sink is constructed from a -log-format flag ("text" for humans, "json"
// for machines), and how a worker subprocess's JSON log lines are folded
// back into its parent daemon's stream so a multi-process campaign reads
// as one correlated log (job/shard attrs added by the parent, worker
// attrs preserved).
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"time"
)

// NewLogger builds a slog.Logger writing to w in the given format:
// "text" (or "") for logfmt-style lines, "json" for one JSON record per
// line — the format RelayJSONLine can parse back. Unknown formats error,
// so a mistyped -log-format fails at startup rather than silently.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// NopLogger returns a logger that discards every record — the sink used
// when no logger is configured, so instrumented code can log
// unconditionally.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.Level(127), // above every real level: records never reach the writer
	}))
}

// RelayJSONLine parses one line of a subprocess's JSON log stream (the
// output of a slog JSONHandler) and re-logs it through logger with extra
// attrs appended — the daemon's job/shard correlation. The worker's own
// attrs are preserved (sorted by key, so relayed records are
// deterministic); its timestamp is dropped in favor of the relay time.
// Returns false when the line is not a JSON log record, leaving the
// caller to treat it as plain diagnostic output.
func RelayJSONLine(logger *slog.Logger, line string, extra ...slog.Attr) bool {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "{") {
		return false
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return false
	}
	msgVal, ok := rec[slog.MessageKey].(string)
	if !ok {
		return false
	}
	levelStr, ok := rec[slog.LevelKey].(string)
	if !ok {
		return false
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(levelStr)); err != nil {
		return false
	}
	delete(rec, slog.MessageKey)
	delete(rec, slog.LevelKey)
	delete(rec, slog.TimeKey)
	keys := make([]string, 0, len(rec))
	for k := range rec {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]slog.Attr, 0, len(keys)+len(extra))
	for _, k := range keys {
		attrs = append(attrs, slog.Any(k, rec[k]))
	}
	attrs = append(attrs, extra...)
	logger.LogAttrs(context.Background(), level, msgVal, attrs...)
	return true
}

// DurationSeconds renders a duration as a float seconds attr — the unit
// convention for every wall-clock quantity in the service logs and
// metrics (matching the _s / _seconds metric suffixes).
func DurationSeconds(key string, d time.Duration) slog.Attr {
	return slog.Float64(key, d.Seconds())
}
