package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hello", "job", "job-0001")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json logger wrote %q: %v", buf.String(), err)
	}
	if rec["msg"] != "hello" || rec["job"] != "job-0001" {
		t.Errorf("record = %v", rec)
	}

	buf.Reset()
	logger, err = NewLogger(&buf, "text")
	if err != nil {
		t.Fatal(err)
	}
	logger.Warn("careful", "shard", 2)
	if !strings.Contains(buf.String(), "msg=careful") || !strings.Contains(buf.String(), "shard=2") {
		t.Errorf("text logger wrote %q", buf.String())
	}

	if _, err := NewLogger(&buf, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic and must not write anywhere observable; mostly a
	// compile-and-run sanity check for the disabled path.
	NopLogger().Error("dropped", "k", "v")
}

func TestRelayJSONLine(t *testing.T) {
	// A worker-side JSON logger produces the line; the daemon-side
	// relay must re-emit it with the shard attr appended.
	var workerOut bytes.Buffer
	worker := slog.New(slog.NewJSONHandler(&workerOut, nil))
	worker.Info("shard worker starting", "devices", 12, "zz", "last", "aa", "first")

	var daemonOut bytes.Buffer
	daemon := slog.New(slog.NewJSONHandler(&daemonOut, nil))
	line := strings.TrimSpace(workerOut.String())
	if !RelayJSONLine(daemon, line, slog.String("job", "job-0001"), slog.Int("shard", 1)) {
		t.Fatalf("valid worker line %q not relayed", line)
	}
	var rec map[string]any
	if err := json.Unmarshal(daemonOut.Bytes(), &rec); err != nil {
		t.Fatalf("relayed record %q: %v", daemonOut.String(), err)
	}
	if rec["msg"] != "shard worker starting" || rec["level"] != "INFO" {
		t.Errorf("relayed record = %v", rec)
	}
	if rec["devices"] != float64(12) || rec["job"] != "job-0001" || rec["shard"] != float64(1) {
		t.Errorf("attrs not preserved/appended: %v", rec)
	}
}

func TestRelayJSONLineRejectsNonRecords(t *testing.T) {
	daemon := NopLogger()
	for _, line := range []string{
		"",
		"plain diagnostic text",
		"{not json",
		`{"no":"msg"}`,
		`{"msg":"x"}`,                // no level
		`{"msg":"x","level":"LOUD"}`, // bad level
		`{"msg":1,"level":"INFO"}`,   // non-string msg
	} {
		if RelayJSONLine(daemon, line) {
			t.Errorf("relayed non-record %q", line)
		}
	}
}

func TestRelayedLevelsSurviveRoundTrip(t *testing.T) {
	var workerOut bytes.Buffer
	worker := slog.New(slog.NewJSONHandler(&workerOut, &slog.HandlerOptions{Level: slog.LevelDebug}))
	worker.Debug("d")
	worker.Info("i")
	worker.Warn("w")
	worker.Error("e")

	var daemonOut bytes.Buffer
	daemon := slog.New(slog.NewJSONHandler(&daemonOut, &slog.HandlerOptions{Level: slog.LevelDebug}))
	for _, line := range strings.Split(strings.TrimSpace(workerOut.String()), "\n") {
		if !RelayJSONLine(daemon, line) {
			t.Fatalf("line %q not relayed", line)
		}
	}
	out := daemonOut.String()
	for _, level := range []string{"DEBUG", "INFO", "WARN", "ERROR"} {
		if !strings.Contains(out, `"level":"`+level+`"`) {
			t.Errorf("level %s lost in relay: %s", level, out)
		}
	}
}
