package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing integer metric. All methods are
// nil-safe no-ops on a nil receiver, so instrumented code holds plain
// pointers and pays only a nil check when metrics are disabled.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value metric.
type Gauge struct {
	name string
	v    float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Fixed bucket layouts shared by every device so per-device histograms
// merge into fleet-wide ones. Bounds are inclusive upper edges; an
// implicit +Inf bucket catches the overflow.
var (
	// CompareCostBucketsUS spans the modeled grid-comparison cost in
	// microseconds (the paper's 9K grid costs ~0.4 ms at device scale).
	CompareCostBucketsUS = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	// RateBucketsFPS spans content/frame rates, aligned with the refresh
	// levels of the S3 panel and the LTPO scaling experiments.
	RateBucketsFPS = []float64{1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 60, 90, 120}
	// PowerBucketsMW spans whole-device mean power.
	PowerBucketsMW = []float64{250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2500, 3000}
	// QualityBucketsPct spans display quality in percent, dense near the
	// paper's ≥95% operating region.
	QualityBucketsPct = []float64{50, 60, 70, 80, 85, 90, 92.5, 95, 97.5, 99, 100}
	// TaskBucketsMS spans fleet pool task wall-clock durations.
	TaskBucketsMS = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
)

// Histogram is a fixed-bucket distribution metric. Observations are
// counted into the first bucket whose upper bound is ≥ the value; values
// above every bound land in an implicit +Inf bucket. Two histograms merge
// only when their bucket layouts are identical, which is why the layouts
// above are shared constants.
type Histogram struct {
	name   string
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

// Observe counts one observation of v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket; 0 when empty. The estimate is bucket-
// resolution coarse, which is the usual histogram trade-off.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i >= len(h.bounds) {
			// +Inf bucket: no upper edge to interpolate against.
			return lo
		}
		hi := h.bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// Registry is a named collection of instruments. Get-or-create accessors
// return nil-safe instrument pointers, and a nil *Registry hands out nil
// instruments, so a single code path serves both the instrumented and the
// disabled configuration. A Registry is not safe for concurrent use; each
// device owns one and fleet-wide views are produced by Merge after the
// runs complete.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use. Asking for an existing histogram
// with a different layout panics: bucket layouts are fixed per name so
// histograms stay mergeable. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		if !sameBounds(h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending: %v", name, bounds))
		}
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q has no buckets", name))
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds src into r: counters add, gauges keep the maximum (the only
// order-independent choice for a last-value metric), histograms add
// per-bucket counts. It errors on a histogram bucket-layout mismatch.
// Merging in a fixed order (the Collector merges tracks sorted by name)
// keeps float sums deterministic.
func (r *Registry) Merge(src *Registry) error {
	if r == nil || src == nil {
		return nil
	}
	for name, c := range src.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range src.gauges {
		dst := r.Gauge(name)
		dst.v = math.Max(dst.v, g.v)
	}
	for name, h := range src.hists {
		dst, ok := r.hists[name]
		if !ok {
			dst = r.Histogram(name, h.bounds)
		} else if !sameBounds(dst.bounds, h.bounds) {
			return fmt.Errorf("obs: cannot merge histogram %q: bucket layouts differ", name)
		}
		for i, c := range h.counts {
			dst.counts[i] += c
		}
		dst.sum += h.sum
		dst.count += h.count
	}
	return nil
}

// WriteText writes a plain-text dump of every instrument, sorted by name
// within each section, so identical registries produce identical bytes.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# metrics disabled")
		return err
	}
	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, r.counters[name].v); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %g\n", name, r.gauges[name].v); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "histogram %s count %d sum %g mean %g p50 %g p95 %g\n",
			name, h.count, h.sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.95)); err != nil {
			return err
		}
		for i, c := range h.counts {
			label := "+Inf"
			if i < len(h.bounds) {
				label = fmt.Sprintf("%g", h.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "  le %s %d\n", label, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
