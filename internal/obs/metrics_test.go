package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("frames_total")
	c1.Add(5)
	if c2 := reg.Counter("frames_total"); c2 != c1 || c2.Value() != 5 {
		t.Fatal("Counter must return the same instrument per name")
	}
	h1 := reg.Histogram("cost", CompareCostBucketsUS)
	if h2 := reg.Histogram("cost", CompareCostBucketsUS); h2 != h1 {
		t.Fatal("Histogram must return the same instrument per name")
	}
	g := reg.Gauge("hz")
	g.Set(40)
	if reg.Gauge("hz").Value() != 40 {
		t.Fatal("Gauge must return the same instrument per name")
	}
}

func TestNilRegistryHandsOutNilInstruments(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", RateBucketsFPS)
	c.Inc()
	g.Set(1)
	h.Observe(2)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{10, 20, 30})
	for _, v := range []float64{5, 15, 15, 25, 99} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 159 {
		t.Fatalf("count/sum = %d/%g", h.Count(), h.Sum())
	}
	if want := 159.0 / 5; h.Mean() != want {
		t.Fatalf("mean = %g, want %g", h.Mean(), want)
	}
	// counts: ≤10:1, ≤20:2, ≤30:1, +Inf:1
	if h.counts[0] != 1 || h.counts[1] != 2 || h.counts[2] != 1 || h.counts[3] != 1 {
		t.Fatalf("bucket counts = %v", h.counts)
	}
	// The median rank (2.5 of 5) lands in the (10,20] bucket.
	if q := h.Quantile(0.5); q < 10 || q > 20 {
		t.Errorf("p50 = %g, want within (10,20]", q)
	}
	// The p99 rank lands in the +Inf bucket, clamped to its lower edge.
	if q := h.Quantile(0.99); q != 30 {
		t.Errorf("p99 = %g, want 30 (lower edge of +Inf bucket)", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Errorf("empty-histogram quantile = %g, want 0", q)
	}
}

func TestHistogramLayoutConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a histogram with different buckets must panic")
		}
	}()
	reg.Histogram("h", []float64{1, 3})
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("frames").Add(10)
	b.Counter("frames").Add(32)
	b.Counter("only_b").Add(1)
	a.Gauge("hz").Set(40)
	b.Gauge("hz").Set(60)
	ha := a.Histogram("cost", []float64{10, 20})
	hb := b.Histogram("cost", []float64{10, 20})
	ha.Observe(5)
	hb.Observe(15)
	hb.Observe(99)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if v := a.Counter("frames").Value(); v != 42 {
		t.Errorf("merged counter = %d, want 42", v)
	}
	if v := a.Counter("only_b").Value(); v != 1 {
		t.Errorf("counter created by merge = %d, want 1", v)
	}
	if v := a.Gauge("hz").Value(); v != 60 {
		t.Errorf("merged gauge = %g, want max 60", v)
	}
	if ha.Count() != 3 || ha.Sum() != 119 {
		t.Errorf("merged histogram count/sum = %d/%g, want 3/119", ha.Count(), ha.Sum())
	}

	mismatch := NewRegistry()
	mismatch.Histogram("cost", []float64{1, 2, 3}).Observe(1)
	if err := a.Merge(mismatch); err == nil {
		t.Fatal("merging mismatched histogram layouts must error")
	}

	if math.IsNaN(ha.Mean()) {
		t.Fatal("mean NaN after merge")
	}
}

func TestWriteTextDeterministicAndSorted(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.Counter("zz").Add(1)
		reg.Counter("aa").Add(2)
		reg.Gauge("mid").Set(3)
		reg.Histogram("hist", []float64{1, 2}).Observe(1.5)
		return reg
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("identical registries must dump identical bytes")
	}
	out := b1.String()
	if strings.Index(out, "counter aa") > strings.Index(out, "counter zz") {
		t.Errorf("counters not sorted:\n%s", out)
	}
	for _, want := range []string{"counter aa 2", "gauge mid 3", "histogram hist count 1", "le +Inf 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
