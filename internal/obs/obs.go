// Package obs is the runtime observability layer of the reproduction: a
// structured decision-event recorder, a metrics registry, and exporters
// that make a simulated device's per-frame behaviour inspectable — the
// visibility the paper's argument rests on (content rate vs. frame rate,
// section transitions, touch boosts) turned into first-class artifacts.
//
// Three pieces:
//
//   - Recorder: typed decision events (FrameSubmitted,
//     RedundantFrameDropped, GridCompare, SectionTransition, TouchBoost,
//     VSyncMissed, DeviceStart/End) written into a bounded ring buffer.
//     The API is nil-safe: every method on a nil *Recorder is a no-op, so
//     instrumented subsystems pay only a nil check — and zero allocations —
//     when recording is disabled.
//   - Registry (metrics.go): counters, gauges and fixed-bucket histograms,
//     mergeable across devices so a fleet run can report population-wide
//     distributions.
//   - Trace (trace.go): a Chrome trace-event JSON exporter whose output
//     loads in Perfetto or chrome://tracing, one process per device and
//     one thread per subsystem, with sim.Time (virtual microseconds) as
//     the timebase.
//
// Determinism: recording never schedules engine events or perturbs any
// simulated quantity, so a device behaves identically with and without a
// recorder attached; the event stream itself is a pure function of the
// simulation and therefore reproducible from the same seed.
package obs

import (
	"fmt"

	"ccdem/internal/sim"
)

// Kind identifies the type of a decision event.
type Kind uint8

// Decision-event kinds. The Arg1/Arg2 meaning of each kind is documented
// on the corresponding Recorder helper.
const (
	// KindDeviceStart marks the device starting its run.
	KindDeviceStart Kind = iota
	// KindDeviceEnd marks the end of an instrumented run (or of one app
	// segment of a fleet session).
	KindDeviceEnd
	// KindFrameSubmitted is one framebuffer update latched by the surface
	// manager at a V-Sync.
	KindFrameSubmitted
	// KindRedundantFrameDropped is a latched frame the meter classified as
	// pixel-identical to the previous one — rendered work that changed
	// nothing on screen.
	KindRedundantFrameDropped
	// KindGridCompare is one sparse-grid framebuffer comparison, a span
	// whose duration is the modeled device-scale CPU cost.
	KindGridCompare
	// KindSectionTransition is a refresh-rate change taking effect at the
	// panel.
	KindSectionTransition
	// KindTouchBoost is the governor forcing maximum refresh on a touch.
	KindTouchBoost
	// KindTouchInput is one replayed Monkey touch event.
	KindTouchInput
	// KindVSyncMissed is a V-Sync that found pending frame requests but
	// could not latch them (blocked by a frame-pacing gate).
	KindVSyncMissed
	// KindFaultInjected is one injected fault firing (see internal/fault).
	KindFaultInjected
	// KindPanelSwitchRetry is the hardened governor re-issuing a panel
	// rate-switch request that did not take effect.
	KindPanelSwitchRetry
	// KindFailSafeEnter is the watchdog pinning maximum refresh after
	// detecting an anomaly.
	KindFailSafeEnter
	// KindFailSafeExit is the watchdog leaving fail-safe mode after a
	// clean hysteresis dwell.
	KindFailSafeExit

	numKinds
)

// String implements fmt.Stringer; the names double as Perfetto event names.
func (k Kind) String() string {
	switch k {
	case KindDeviceStart:
		return "DeviceStart"
	case KindDeviceEnd:
		return "DeviceEnd"
	case KindFrameSubmitted:
		return "FrameSubmitted"
	case KindRedundantFrameDropped:
		return "RedundantFrameDropped"
	case KindGridCompare:
		return "GridCompare"
	case KindSectionTransition:
		return "SectionTransition"
	case KindTouchBoost:
		return "TouchBoost"
	case KindTouchInput:
		return "TouchInput"
	case KindVSyncMissed:
		return "VSyncMissed"
	case KindFaultInjected:
		return "FaultInjected"
	case KindPanelSwitchRetry:
		return "PanelSwitchRetry"
	case KindFailSafeEnter:
		return "FailSafeEnter"
	case KindFailSafeExit:
		return "FailSafeExit"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Track is the subsystem lane an event belongs to; the trace exporter maps
// each track to one thread of the device's Perfetto process.
type Track uint8

// Subsystem tracks.
const (
	TrackDevice Track = iota
	TrackSurface
	TrackMeter
	TrackGovernor
	TrackPanel
	TrackInput
	TrackFault

	numTracks
)

// String implements fmt.Stringer; the names label Perfetto threads.
func (t Track) String() string {
	switch t {
	case TrackDevice:
		return "device"
	case TrackSurface:
		return "surface"
	case TrackMeter:
		return "meter"
	case TrackGovernor:
		return "governor"
	case TrackPanel:
		return "panel"
	case TrackInput:
		return "input"
	case TrackFault:
		return "fault"
	default:
		return fmt.Sprintf("track(%d)", int(t))
	}
}

// Event is one recorded decision event. Arg1/Arg2 carry kind-specific
// scalar payloads (documented on the Recorder helpers) so that recording
// never allocates.
type Event struct {
	T     sim.Time // event time (recorder base + subsystem-local time)
	Dur   sim.Time // span duration; 0 for instant events
	Arg1  int64
	Arg2  int64
	Kind  Kind
	Track Track
}

// DefaultEventCap is the ring capacity used when NewRecorder is given a
// non-positive capacity: enough for several minutes of a single busy
// device (frames + compares + decisions) at ~45 B per event.
const DefaultEventCap = 1 << 14

// Recorder collects decision events into a bounded ring buffer: when the
// ring fills, the oldest events are overwritten, so a long run keeps its
// tail — the part a profiling session usually cares about. All methods are
// nil-safe no-ops on a nil receiver, which is how instrumentation is
// disabled. A Recorder is not safe for concurrent use; each simulated
// device owns its own (the engine is single-threaded).
type Recorder struct {
	base  sim.Time // added to every recorded time (fleet segment offsets)
	buf   []Event
	next  int // next write position
	n     int // events currently stored (≤ cap)
	total uint64
}

// NewRecorder creates a recorder holding up to capacity events
// (DefaultEventCap when capacity is non-positive).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Enabled reports whether events are being recorded (false on nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SetBase sets the time offset added to every subsequently recorded event.
// The fleet layer uses it to concatenate a device's per-app segments —
// each simulated on its own engine starting at zero — into one session
// timeline. Nil-safe.
func (r *Recorder) SetBase(t sim.Time) {
	if r != nil {
		r.base = t
	}
}

// Record appends ev (with the base offset applied). Nil-safe; never
// allocates.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	ev.T += r.base
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
}

// Len returns the number of events currently stored.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.total - uint64(r.n)
}

// Events returns the stored events oldest-first (a copy).
func (r *Recorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Event, 0, r.n)
	if r.n < len(r.buf) {
		return append(out, r.buf[:r.n]...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// DeviceStart records the device (or one fleet app segment) starting at t.
func (r *Recorder) DeviceStart(t sim.Time) {
	r.Record(Event{T: t, Kind: KindDeviceStart, Track: TrackDevice})
}

// DeviceEnd records the end of the instrumented run at t.
func (r *Recorder) DeviceEnd(t sim.Time) {
	r.Record(Event{T: t, Kind: KindDeviceEnd, Track: TrackDevice})
}

// FrameSubmitted records one latched framebuffer update. Arg1 is the
// number of pixels that actually changed on screen, Arg2 the pixels drawn
// by clients (the GPU cost).
func (r *Recorder) FrameSubmitted(t sim.Time, dirtyPx, renderedPx int) {
	r.Record(Event{T: t, Kind: KindFrameSubmitted, Track: TrackSurface,
		Arg1: int64(dirtyPx), Arg2: int64(renderedPx)})
}

// RedundantFrameDropped records the meter classifying a latched frame as
// pixel-identical to the previous one.
func (r *Recorder) RedundantFrameDropped(t sim.Time) {
	r.Record(Event{T: t, Kind: KindRedundantFrameDropped, Track: TrackMeter})
}

// GridCompare records one sparse-grid comparison as a span of the modeled
// duration dur. Arg1 is the number of samples compared (fewer than the
// full grid under early exit), Arg2 is 1 when the frame carried content.
func (r *Recorder) GridCompare(t, dur sim.Time, samples int, content bool) {
	var c int64
	if content {
		c = 1
	}
	r.Record(Event{T: t, Dur: dur, Kind: KindGridCompare, Track: TrackMeter,
		Arg1: int64(samples), Arg2: c})
}

// SectionTransition records a refresh-rate change taking effect. Arg1 is
// the old rate, Arg2 the new rate (Hz).
func (r *Recorder) SectionTransition(t sim.Time, fromHz, toHz int) {
	r.Record(Event{T: t, Kind: KindSectionTransition, Track: TrackPanel,
		Arg1: int64(fromHz), Arg2: int64(toHz)})
}

// TouchBoost records the governor forcing maximum refresh on a touch.
// Arg1 is the boosted rate (Hz); Arg2 is 1 when the panel was below
// maximum and this touch actually raised it.
func (r *Recorder) TouchBoost(t sim.Time, rateHz int, transition bool) {
	var tr int64
	if transition {
		tr = 1
	}
	r.Record(Event{T: t, Kind: KindTouchBoost, Track: TrackGovernor,
		Arg1: int64(rateHz), Arg2: tr})
}

// TouchInput records one replayed touch event. Arg1 is the input kind
// (down/move/up ordinal), Arg2 packs the screen position as x<<32 | y.
func (r *Recorder) TouchInput(t sim.Time, kind, x, y int) {
	r.Record(Event{T: t, Kind: KindTouchInput, Track: TrackInput,
		Arg1: int64(kind), Arg2: int64(x)<<32 | int64(uint32(y))})
}

// VSyncMissed records a V-Sync that found pending frame requests but was
// blocked from latching them by a frame-pacing gate.
func (r *Recorder) VSyncMissed(t sim.Time) {
	r.Record(Event{T: t, Kind: KindVSyncMissed, Track: TrackSurface})
}

// FaultInjected records one injected fault. Arg1 is the fault-class
// ordinal (fault.Class), Arg2 a class-specific detail (delay amount,
// corrupted sample index, window period index).
func (r *Recorder) FaultInjected(t sim.Time, class int, detail int64) {
	r.Record(Event{T: t, Kind: KindFaultInjected, Track: TrackFault,
		Arg1: int64(class), Arg2: detail})
}

// PanelSwitchRetry records the hardened governor re-issuing a panel
// rate-switch request. Arg1 is the target rate (Hz), Arg2 the retry
// attempt number (1 = first retry).
func (r *Recorder) PanelSwitchRetry(t sim.Time, targetHz, attempt int) {
	r.Record(Event{T: t, Kind: KindPanelSwitchRetry, Track: TrackGovernor,
		Arg1: int64(targetHz), Arg2: int64(attempt)})
}

// FailSafeEnter records the watchdog pinning maximum refresh. Arg1 is the
// anomaly ordinal (core.Anomaly) that triggered it.
func (r *Recorder) FailSafeEnter(t sim.Time, anomaly int) {
	r.Record(Event{T: t, Kind: KindFailSafeEnter, Track: TrackGovernor,
		Arg1: int64(anomaly)})
}

// FailSafeExit records recovery from fail-safe mode. Arg1 is how long the
// governor spent pinned (µs).
func (r *Recorder) FailSafeExit(t sim.Time, dwell sim.Time) {
	r.Record(Event{T: t, Kind: KindFailSafeExit, Track: TrackGovernor,
		Arg1: int64(dwell)})
}
