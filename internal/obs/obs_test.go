package obs

import (
	"fmt"
	"testing"

	"ccdem/internal/sim"
)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	r.DeviceStart(0)
	r.FrameSubmitted(100, 500, 921600)
	r.GridCompare(100, 42, 9216, true)
	r.RedundantFrameDropped(200)
	r.SectionTransition(300, 60, 30)
	r.TouchBoost(400, 60, true)
	r.TouchInput(400, 0, 360, 640)
	r.VSyncMissed(500)
	r.DeviceEnd(600)

	evs := r.Events()
	if len(evs) != 9 {
		t.Fatalf("recorded %d events, want 9", len(evs))
	}
	wantKinds := []Kind{
		KindDeviceStart, KindFrameSubmitted, KindGridCompare,
		KindRedundantFrameDropped, KindSectionTransition, KindTouchBoost,
		KindTouchInput, KindVSyncMissed, KindDeviceEnd,
	}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, ev.Kind, wantKinds[i])
		}
	}
	if fs := evs[1]; fs.Arg1 != 500 || fs.Arg2 != 921600 || fs.Track != TrackSurface {
		t.Errorf("FrameSubmitted payload = %+v", fs)
	}
	if gc := evs[2]; gc.Dur != 42 || gc.Arg1 != 9216 || gc.Arg2 != 1 {
		t.Errorf("GridCompare payload = %+v", gc)
	}
	if ti := evs[6]; ti.Arg2>>32 != 360 || int64(int32(uint64(ti.Arg2)&0xffffffff)) != 640 {
		t.Errorf("TouchInput packed position = %x", ti.Arg2)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.FrameSubmitted(sim.Time(i), i, i)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("Total/Dropped = %d/%d, want 10/6", r.Total(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := sim.Time(6 + i); ev.T != want {
			t.Errorf("event %d at %v, want %v (ring must keep the tail, oldest first)", i, ev.T, want)
		}
	}
}

func TestRecorderBaseOffset(t *testing.T) {
	r := NewRecorder(8)
	r.FrameSubmitted(10, 0, 0)
	r.SetBase(1000)
	r.FrameSubmitted(10, 0, 0)
	evs := r.Events()
	if evs[0].T != 10 || evs[1].T != 1010 {
		t.Fatalf("times = %v, %v; want 10, 1010", evs[0].T, evs[1].T)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.DeviceStart(0)
	r.FrameSubmitted(1, 2, 3)
	r.SetBase(5)
	if r.Enabled() || r.Len() != 0 || r.Events() != nil || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder must read as empty and disabled")
	}
}

// TestDisabledObsZeroAlloc is the overhead contract of the whole layer:
// with recording and metrics disabled (nil recorder, nil instruments), the
// instrumentation calls sprinkled through the hot paths must not allocate.
func TestDisabledObsZeroAlloc(t *testing.T) {
	var r *Recorder
	if allocs := testing.AllocsPerRun(1000, func() {
		r.FrameSubmitted(5, 100, 200)
		r.GridCompare(5, 1, 9216, true)
		r.RedundantFrameDropped(5)
		r.SectionTransition(5, 60, 40)
		r.TouchBoost(5, 60, true)
		r.TouchInput(5, 0, 1, 2)
		r.VSyncMissed(5)
	}); allocs != 0 {
		t.Errorf("disabled recorder path allocates %.1f per call, want 0", allocs)
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(2.5)
	}); allocs != 0 {
		t.Errorf("disabled metrics path allocates %.1f per call, want 0", allocs)
	}
}

// The enabled steady state must not allocate either: the ring is
// preallocated and instruments are plain field updates.
func TestEnabledObsZeroAllocSteadyState(t *testing.T) {
	r := NewRecorder(64)
	reg := NewRegistry()
	c := reg.Counter("c")
	h := reg.Histogram("h", CompareCostBucketsUS)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.FrameSubmitted(5, 100, 200)
		r.GridCompare(5, 1, 9216, false)
		c.Inc()
		h.Observe(420)
	}); allocs != 0 {
		t.Errorf("enabled steady-state path allocates %.1f per call, want 0", allocs)
	}
}

// Sampling must bound the collector's track count while staying
// deterministic: which names are kept depends only on the names, never on
// registration order.
func TestCollectorSampling(t *testing.T) {
	names := make([]string, 200)
	for i := range names {
		names[i] = fmt.Sprintf("device %04d", i)
	}
	kept := func(order []string) map[string]bool {
		c := NewCollector(16)
		c.SetSample(10)
		out := make(map[string]bool)
		for _, n := range order {
			if rec, reg := c.Device(n); rec != nil {
				if reg == nil {
					t.Fatal("sampled-in device got recorder without registry")
				}
				out[n] = true
			}
		}
		if got := len(c.Tracks()); got != len(out) {
			t.Fatalf("collector retained %d tracks, handed out %d sinks", got, len(out))
		}
		return out
	}
	forward := kept(names)
	reversed := make([]string, len(names))
	for i, n := range names {
		reversed[len(names)-1-i] = n
	}
	backward := kept(reversed)
	if len(forward) == 0 || len(forward) == len(names) {
		t.Fatalf("1-in-10 sampling kept %d of %d tracks", len(forward), len(names))
	}
	if len(forward) != len(backward) {
		t.Fatalf("selection depends on order: %d vs %d kept", len(forward), len(backward))
	}
	for n := range forward {
		if !backward[n] {
			t.Errorf("device %q sampled in one order but not the other", n)
		}
	}
	// n <= 1 restores full instrumentation; nil collector stays nil-safe.
	c := NewCollector(16)
	c.SetSample(1)
	if rec, _ := c.Device("x"); rec == nil {
		t.Error("SetSample(1) must keep every device")
	}
	var nilC *Collector
	nilC.SetSample(10)
	if rec, reg := nilC.Device("x"); rec != nil || reg != nil {
		t.Error("nil collector must return nil sinks")
	}
}

func TestKindAndTrackStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("Kind(%d) has no name: %q", k, s)
		}
	}
	for tr := Track(0); tr < numTracks; tr++ {
		if s := tr.String(); s == "" || s[0] == 't' {
			t.Errorf("Track(%d) has no name: %q", tr, s)
		}
	}
}
