// Prometheus text exposition (format 0.0.4) for the metrics registry.
// The plain WriteText dump stays the human-readable debugging view; this
// file is the machine-scrapable one: every instrument becomes a metric
// family with HELP/TYPE lines, histograms gain the cumulative
// _bucket/_sum/_count series Prometheus expects, and output is sorted by
// exposition name so identical registries expose identical bytes.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromName maps a dotted instrument name ("svc.jobs.running") to a valid
// Prometheus metric name ("svc_jobs_running"): every character outside
// [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_' prefix.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(c)
			continue
		}
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func promEscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP text: backslash and newline (quotes are
// legal in help text).
func promEscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promFloat formats a sample value the way Prometheus clients do:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case v > 1.797693134862315708145274237317043567981e308:
		return "+Inf"
	case v < -1.797693134862315708145274237317043567981e308:
		return "-Inf"
	case v != v:
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromWriter emits Prometheus text exposition format: HELP/TYPE headers
// via Family, then one Sample line per series. It keeps the first write
// error and reports it from Err, so callers can chain calls without
// checking each one.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error encountered.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family writes the HELP and TYPE header for one metric family. name must
// already be a valid exposition name (use PromName).
func (p *PromWriter) Family(name, typ, help string) {
	if help != "" {
		p.printf("# HELP %s %s\n", name, promEscapeHelp(help))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line: name{labels} value. Label values are
// escaped here; names and label keys must already be valid.
func (p *PromWriter) Sample(name string, labels [][2]string, v float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, promFloat(v))
		return
	}
	if p.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(promEscapeLabel(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	p.printf("%s %s\n", b.String(), promFloat(v))
}

// promFamily is one registry instrument scheduled for exposition, keyed
// by its exposition name so output order is deterministic.
type promFamily struct {
	name string // exposition name (counters already carry _total)
	emit func(p *PromWriter)
}

// WritePrometheus writes every instrument in Prometheus text exposition
// format 0.0.4. Counters gain the conventional _total suffix, histograms
// the cumulative _bucket{le=...}/_sum/_count series (with the implicit
// +Inf bucket made explicit). Families are sorted by exposition name, so
// identical registries — and registries merged from the same shards in
// any grouping — produce identical bytes. Two instrument names that
// collide after sanitization are an error.
func (r *Registry) WritePrometheus(w io.Writer) error {
	pw := NewPromWriter(w)
	if r == nil {
		return pw.Err()
	}
	var fams []promFamily
	for name, c := range r.counters {
		name, c := name, c
		out := PromName(name)
		if !strings.HasSuffix(out, "_total") {
			out += "_total"
		}
		fams = append(fams, promFamily{out, func(p *PromWriter) {
			p.Family(out, "counter", "ccdem counter "+name)
			p.Sample(out, nil, float64(c.v))
		}})
	}
	for name, g := range r.gauges {
		name, g := name, g
		out := PromName(name)
		fams = append(fams, promFamily{out, func(p *PromWriter) {
			p.Family(out, "gauge", "ccdem gauge "+name)
			p.Sample(out, nil, g.v)
		}})
	}
	for name, h := range r.hists {
		name, h := name, h
		out := PromName(name)
		fams = append(fams, promFamily{out, func(p *PromWriter) {
			p.Family(out, "histogram", "ccdem histogram "+name)
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i]
				p.Sample(out+"_bucket", [][2]string{{"le", promFloat(bound)}}, float64(cum))
			}
			cum += h.counts[len(h.bounds)]
			p.Sample(out+"_bucket", [][2]string{{"le", "+Inf"}}, float64(cum))
			p.Sample(out+"_sum", nil, h.sum)
			p.Sample(out+"_count", nil, float64(h.count))
		}})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for i, f := range fams {
		if i > 0 && fams[i-1].name == f.name {
			return fmt.Errorf("obs: prometheus name collision: two instruments map to %q", f.name)
		}
		f.emit(pw)
	}
	return pw.Err()
}
