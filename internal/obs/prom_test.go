package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// testRegistry builds a registry with one instrument of each kind.
func testRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("svc.jobs.submitted")
	c.Add(7)
	reg.Gauge("svc.jobs.running").Set(2.5)
	h := reg.Histogram("svc.job.duration_s", []float64{1, 5, 15})
	for _, v := range []float64{0.5, 3, 3, 20, 100} {
		h.Observe(v)
	}
	return reg
}

func TestWritePrometheusRoundTripsThroughParser(t *testing.T) {
	var buf bytes.Buffer
	if err := testRegistry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParsePrometheus rejected our own output:\n%s\nerror: %v", buf.String(), err)
	}

	counter := fams["svc_jobs_submitted_total"]
	if counter == nil || counter.Type != "counter" {
		t.Fatalf("counter family missing or mistyped: %+v", counter)
	}
	if s := counter.Sample("svc_jobs_submitted_total", nil); s == nil || s.Value != 7 {
		t.Errorf("counter sample = %+v, want 7", s)
	}

	gauge := fams["svc_jobs_running"]
	if gauge == nil || gauge.Type != "gauge" {
		t.Fatalf("gauge family missing or mistyped: %+v", gauge)
	}
	if s := gauge.Sample("svc_jobs_running", nil); s == nil || s.Value != 2.5 {
		t.Errorf("gauge sample = %+v, want 2.5", s)
	}

	hist := fams["svc_job_duration_s"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", hist)
	}
	// Cumulative buckets of {0.5, 3, 3, 20, 100} over bounds {1,5,15}.
	want := map[string]float64{"1": 1, "5": 3, "15": 3, "+Inf": 5}
	for le, v := range want {
		s := hist.Sample("svc_job_duration_s_bucket", map[string]string{"le": le})
		if s == nil || s.Value != v {
			t.Errorf("bucket le=%s = %+v, want %g", le, s, v)
		}
	}
	if s := hist.Sample("svc_job_duration_s_count", nil); s == nil || s.Value != 5 {
		t.Errorf("_count = %+v, want 5", s)
	}
	if s := hist.Sample("svc_job_duration_s_sum", nil); s == nil || s.Value != 126.5 {
		t.Errorf("_sum = %+v, want 126.5", s)
	}
}

// TestWritePrometheusSumCountMatchHistogram pins the acceptance
// invariant: the exposed _sum/_count equal the obs.Histogram's own
// Sum()/Count().
func TestWritePrometheusSumCountMatchHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x.y", CompareCostBucketsUS)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		h.Observe(rng.Float64() * 6000)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := fams["x_y"]
	if f == nil {
		t.Fatal("family x_y missing")
	}
	if s := f.Sample("x_y_count", nil); s == nil || s.Value != float64(h.Count()) {
		t.Errorf("_count = %+v, want %d", s, h.Count())
	}
	if s := f.Sample("x_y_sum", nil); s == nil || s.Value != h.Sum() {
		t.Errorf("_sum = %+v, want %g", s, h.Sum())
	}
}

// TestWritePrometheusDeterministicOrdering: families appear sorted by
// exposition name and two identical registries expose identical bytes —
// regardless of instrument registration order.
func TestWritePrometheusDeterministicOrdering(t *testing.T) {
	build := func(names []string) *Registry {
		reg := NewRegistry()
		for _, n := range names {
			reg.Counter("c." + n).Add(1)
			reg.Gauge("g." + n).Set(1)
			reg.Histogram("h."+n, []float64{1, 2}).Observe(1.5)
		}
		return reg
	}
	names := []string{"zeta", "alpha", "mid"}
	var a, b bytes.Buffer
	if err := build(names).WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	reversed := []string{"mid", "alpha", "zeta"}
	if err := build(reversed).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("registration order changed exposition bytes:\n%s\nvs\n%s", a.String(), b.String())
	}
	// TYPE lines must appear in ascending family-name order.
	var families []string
	for _, line := range strings.Split(a.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(families); i++ {
		if families[i] < families[i-1] {
			t.Errorf("family %q listed after %q", families[i], families[i-1])
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"svc.jobs.running":  "svc_jobs_running",
		"per-device/rate":   "per_device_rate",
		"0weird":            "_0weird",
		"ok_name:sub":       "ok_name:sub",
		"sp ace":            "sp_ace",
		"svc.devices.total": "svc_devices_total",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromSampleLabelEscaping writes hostile label values through
// PromWriter and requires the parser to recover them exactly.
func TestPromSampleLabelEscaping(t *testing.T) {
	hostile := []string{
		`plain`,
		`with "quotes"`,
		`back\slash`,
		"new\nline",
		`both \" and ` + "\n" + ` mixed`,
		`trailing backslash \`,
		``,
	}
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	pw.Family("m", "gauge", "label escaping test")
	for i, v := range hostile {
		pw.Sample("m", [][2]string{{"job", v}, {"idx", fmt.Sprint(i)}}, float64(i))
	}
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("parser rejected escaped labels:\n%s\nerror: %v", buf.String(), err)
	}
	f := fams["m"]
	if f == nil || len(f.Samples) != len(hostile) {
		t.Fatalf("parsed %+v, want %d samples", f, len(hostile))
	}
	for i, v := range hostile {
		s := f.Sample("m", map[string]string{"job": v, "idx": fmt.Sprint(i)})
		if s == nil {
			t.Errorf("sample %d with label %q did not round-trip", i, v)
		}
	}
}

// TestPromBucketMonotonicityProperty is the property test: random
// histograms always expose cumulative buckets that are monotone
// non-decreasing and end at _count, and the parser accepts them.
func TestPromBucketMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		nb := 1 + rng.Intn(12)
		bounds := make([]float64, 0, nb)
		x := rng.Float64() * 10
		for i := 0; i < nb; i++ {
			bounds = append(bounds, x)
			x += 0.1 + rng.Float64()*100
		}
		reg := NewRegistry()
		h := reg.Histogram("prop.hist", bounds)
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			h.Observe(rng.NormFloat64() * bounds[nb-1])
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		fams, err := ParsePrometheus(&buf)
		if err != nil {
			t.Fatalf("trial %d (bounds %v, n %d): %v\n%s", trial, bounds, n, err, buf.String())
		}
		f := fams["prop_hist"]
		if f == nil {
			t.Fatalf("trial %d: family missing", trial)
		}
		var cum, prev float64
		prev = -1
		buckets := 0
		for _, s := range f.Samples {
			if s.Name != "prop_hist_bucket" {
				continue
			}
			buckets++
			cum = s.Value
			if cum < prev {
				t.Fatalf("trial %d: bucket %v decreased from %g", trial, s.Labels, prev)
			}
			prev = cum
		}
		if buckets != nb+1 {
			t.Fatalf("trial %d: %d buckets exposed, want %d (+Inf included)", trial, buckets, nb+1)
		}
		if cum != float64(n) {
			t.Fatalf("trial %d: final cumulative %g, want %d", trial, cum, n)
		}
	}
}

// TestPromMergedRegistryEquivalence: a Collector merges device
// registries in track-name order regardless of how worker scheduling
// interleaved their registration, so the merged exposition bytes are
// identical at any worker count. Modeled here by registering the same
// device set in 1-, 2- and 8-way interleavings (the registration orders
// real pool schedules produce) and comparing the merged bytes.
func TestPromMergedRegistryEquivalence(t *testing.T) {
	const devices = 24
	fill := func(reg *Registry, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		reg.Counter("dev.frames").Add(uint64(rng.Intn(1000)))
		reg.Gauge("dev.rate.hz").Set(float64(rng.Intn(60)))
		h := reg.Histogram("dev.compare.us", CompareCostBucketsUS)
		for i := 0; i < 50; i++ {
			h.Observe(rng.Float64() * 4000)
		}
	}
	merge := func(workers int) []byte {
		c := NewCollector(0)
		// Register devices the way a workers-wide pool would interleave
		// them: lane w claims indices w, w+workers, w+2*workers, ...
		for w := 0; w < workers; w++ {
			for d := w; d < devices; d += workers {
				_, reg := c.Device(fmt.Sprintf("device %04d", d))
				fill(reg, int64(d))
			}
		}
		merged, err := c.MergedMetrics()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := merged.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := merge(1)
	if _, err := ParsePrometheus(bytes.NewReader(ref)); err != nil {
		t.Fatalf("merged exposition invalid: %v", err)
	}
	for _, workers := range []int{2, 8} {
		if got := merge(workers); !bytes.Equal(got, ref) {
			t.Errorf("workers=%d exposition differs from workers=1:\n%s\nvs\n%s", workers, got, ref)
		}
	}
}

func TestWritePrometheusNameCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("a.b").Set(1)
	reg.Gauge("a_b").Set(2)
	if err := reg.WritePrometheus(&bytes.Buffer{}); err == nil {
		t.Error("colliding sanitized names were not rejected")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

func TestParsePrometheusRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"bad metric name", "9bad 1\n"},
		{"bad label name", `m{9l="x"} 1` + "\n"},
		{"unterminated label", `m{l="x} 1` + "\n"},
		{"bad escape", `m{l="\q"} 1` + "\n"},
		{"bad value", "m one\n"},
		{"duplicate series", "m{a=\"1\"} 1\nm{a=\"1\"} 2\n"},
		{"unknown type", "# TYPE m widget\nm 1\n"},
		{"type after samples", "m 1\n# TYPE m gauge\n"},
		{"histogram no buckets", "# TYPE h histogram\nh_sum 1\nh_count 1\n"},
		{"histogram no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram non-monotone", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"histogram count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParsePrometheus(strings.NewReader(tc.doc)); err == nil {
				t.Errorf("accepted %q", tc.doc)
			}
		})
	}
}

func TestParsePrometheusAcceptsInfNaN(t *testing.T) {
	doc := "# TYPE g gauge\ng{k=\"a\"} +Inf\ng{k=\"b\"} -Inf\ng{k=\"c\"} NaN\n"
	fams, err := ParsePrometheus(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	g := fams["g"]
	if s := g.Sample("g", map[string]string{"k": "a"}); s == nil || !math.IsInf(s.Value, 1) {
		t.Errorf("+Inf sample = %+v", s)
	}
	if s := g.Sample("g", map[string]string{"k": "c"}); s == nil || !math.IsNaN(s.Value) {
		t.Errorf("NaN sample = %+v", s)
	}
}
