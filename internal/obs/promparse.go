// An in-repo parser for the Prometheus text exposition format (0.0.4),
// strict enough to act as a conformance check on our own /metrics
// output: it validates metric and label name syntax, label value
// escaping, TYPE declarations, and — for histograms — cumulative bucket
// monotonicity, the presence of the +Inf bucket, and _count/_sum
// consistency. The telemetry smoke test and the daemon tests scrape
// /metrics and feed the bytes through here.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromPoint is one parsed sample: the series' full metric name (including
// any _bucket/_sum/_count suffix), its label set, and the value.
type PromPoint struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string // family name (histogram series share one family)
	Type    string // counter | gauge | histogram | summary | untyped
	Help    string
	Samples []PromPoint
}

// Sample returns the family's first sample matching name and labels
// exactly, or nil.
func (f *PromFamily) Sample(name string, labels map[string]string) *PromPoint {
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
	return nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// familyOf strips a histogram/summary series suffix to find the family a
// sample belongs to, given the set of declared family names.
func familyOf(name string, declared map[string]*PromFamily) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, exists := declared[base]; exists && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return name
}

// parseLabels parses a `{k="v",...}` block (brace-delimited, escapes per
// the exposition format) and returns the labels and the rest of the line.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	rest := s[1:] // skip '{'
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(rest[:eq])
		if !validLabelName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", key)
		}
		var val strings.Builder
		i := 1
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("label %q: trailing backslash", key)
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %q: bad escape \\%c", key, rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, "", fmt.Errorf("label %q: unterminated value", key)
		}
		labels[key] = val.String()
		rest = strings.TrimLeft(rest[i+1:], " \t")
		if rest != "" && rest[0] == ',' {
			rest = rest[1:]
		}
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// ParsePrometheus parses and validates a text exposition document,
// returning the families keyed by family name. Violations of the format
// — bad names, bad escapes, duplicate series, a TYPE line after its
// family's samples, non-monotone histogram buckets, a histogram without
// +Inf or whose _count disagrees with its +Inf bucket — are errors.
func ParsePrometheus(r io.Reader) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	seen := map[string]bool{} // duplicate-series detection: name + sorted labels
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) (map[string]*PromFamily, error) {
			return nil, fmt.Errorf("prom parse: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // plain comment
			}
			name := fields[2]
			if !validPromName(name) {
				return fail("invalid metric name %q in %s line", name, fields[1])
			}
			f := families[name]
			if f == nil {
				f = &PromFamily{Name: name, Type: "untyped"}
				families[name] = f
			}
			if fields[1] == "HELP" {
				if len(fields) == 4 {
					f.Help = fields[3]
				}
				continue
			}
			typ := strings.TrimSpace(fields[3])
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fail("unknown TYPE %q for %s", typ, name)
			}
			if len(f.Samples) > 0 {
				return fail("TYPE for %s after its samples", name)
			}
			f.Type = typ
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		i := strings.IndexAny(line, "{ \t")
		if i < 0 {
			return fail("sample without value: %q", line)
		}
		name := line[:i]
		if !validPromName(name) {
			return fail("invalid metric name %q", name)
		}
		var labels map[string]string
		rest := line[i:]
		if rest[0] == '{' {
			var err error
			labels, rest, err = parseLabels(rest)
			if err != nil {
				return fail("%s: %v", name, err)
			}
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return fail("%s: want value [timestamp], got %q", name, rest)
		}
		value, err := parsePromValue(fields[0])
		if err != nil {
			return fail("%s: bad value %q", name, fields[0])
		}

		famName := familyOf(name, families)
		f := families[famName]
		if f == nil {
			f = &PromFamily{Name: famName, Type: "untyped"}
			families[famName] = f
		}
		key := seriesKey(name, labels)
		if seen[key] {
			return fail("duplicate series %s", key)
		}
		seen[key] = true
		f.Samples = append(f.Samples, PromPoint{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prom parse: %w", err)
	}
	for _, f := range families {
		if f.Type == "histogram" {
			if err := validateHistogramFamily(f); err != nil {
				return nil, fmt.Errorf("prom parse: histogram %s: %w", f.Name, err)
			}
		}
	}
	return families, nil
}

func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		fmt.Fprintf(&b, "{%s=%q}", k, labels[k])
	}
	return b.String()
}

// validateHistogramFamily checks the exposition invariants of one
// histogram: buckets carry le labels, cumulative counts are monotone in
// ascending le order, the +Inf bucket exists, and _count matches it.
// Histograms with extra grouping labels are validated per label group.
func validateHistogramFamily(f *PromFamily) error {
	type bucket struct {
		le  float64
		raw string
		v   float64
	}
	groups := map[string][]bucket{}
	counts := map[string]float64{}
	sums := map[string]bool{}
	groupKey := func(labels map[string]string) string {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		return seriesKey("", rest)
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			raw, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket without le label")
			}
			le, err := parsePromValue(raw)
			if err != nil {
				return fmt.Errorf("bad le %q", raw)
			}
			g := groupKey(s.Labels)
			groups[g] = append(groups[g], bucket{le, raw, s.Value})
		case f.Name + "_count":
			counts[groupKey(s.Labels)] = s.Value
		case f.Name + "_sum":
			sums[groupKey(s.Labels)] = true
		case f.Name:
			return fmt.Errorf("bare sample %s for histogram family", s.Name)
		}
	}
	if len(groups) == 0 {
		return fmt.Errorf("no _bucket series")
	}
	for g, buckets := range groups {
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
		var prev float64
		inf := math.NaN()
		for i, b := range buckets {
			if i > 0 && b.v < prev {
				return fmt.Errorf("bucket counts not monotone: le=%s holds %g after %g", b.raw, b.v, prev)
			}
			prev = b.v
			if math.IsInf(b.le, 1) {
				inf = b.v
			}
		}
		if math.IsNaN(inf) {
			return fmt.Errorf("missing +Inf bucket")
		}
		count, ok := counts[g]
		if !ok {
			return fmt.Errorf("missing _count series")
		}
		if count != inf {
			return fmt.Errorf("_count %g disagrees with +Inf bucket %g", count, inf)
		}
		if !sums[g] {
			return fmt.Errorf("missing _sum series")
		}
	}
	return nil
}
