package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format's
// array-of-events form, loadable in Perfetto and chrome://tracing.
// Timestamps and durations are microseconds — exactly sim.Time's unit, so
// device events export without conversion.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace assembles Chrome trace events from recorders and span logs. Add
// every track, then Write once; the output is a plain JSON array.
type Trace struct {
	events []chromeEvent
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// meta appends a metadata event naming a process or thread.
func (t *Trace) meta(kind string, pid, tid int, name string) {
	t.events = append(t.events, chromeEvent{
		Name: kind, Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// AddDevice exports one recorder as a Perfetto process: pid for the
// process id, name for its label, one thread per subsystem track that
// recorded at least one event. Events export chronologically; spans
// (GridCompare) become complete events, the rest instants, and every
// SectionTransition additionally drives a per-process "refresh_hz"
// counter track so the rate staircase is visible at a glance.
func (t *Trace) AddDevice(pid int, name string, r *Recorder) {
	events := r.Events()
	if len(events) == 0 {
		return
	}
	t.meta("process_name", pid, 0, name)
	seen := [numTracks]bool{}
	for _, ev := range events {
		if int(ev.Track) < len(seen) && !seen[ev.Track] {
			seen[ev.Track] = true
			// tid = track ordinal + 1 keeps lanes stably ordered.
			t.meta("thread_name", pid, int(ev.Track)+1, ev.Track.String())
		}
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Ph:   "i",
			TS:   int64(ev.T),
			PID:  pid,
			TID:  int(ev.Track) + 1,
			Args: eventArgs(ev),
		}
		if ev.Dur > 0 {
			d := int64(ev.Dur)
			ce.Ph, ce.Dur = "X", &d
		} else {
			ce.Scope = "t" // thread-scoped instant
		}
		t.events = append(t.events, ce)
		if ev.Kind == KindSectionTransition {
			t.events = append(t.events, chromeEvent{
				Name: "refresh_hz", Ph: "C", TS: int64(ev.T), PID: pid, TID: int(ev.Track) + 1,
				Args: map[string]any{"hz": ev.Arg2},
			})
		}
	}
}

// eventArgs decodes an event's scalar payload into named Perfetto args.
func eventArgs(ev Event) map[string]any {
	switch ev.Kind {
	case KindFrameSubmitted:
		return map[string]any{"dirty_px": ev.Arg1, "rendered_px": ev.Arg2}
	case KindGridCompare:
		return map[string]any{"samples": ev.Arg1, "content": ev.Arg2 == 1}
	case KindSectionTransition:
		return map[string]any{"from_hz": ev.Arg1, "to_hz": ev.Arg2}
	case KindTouchBoost:
		return map[string]any{"rate_hz": ev.Arg1, "transition": ev.Arg2 == 1}
	case KindTouchInput:
		return map[string]any{
			"kind": ev.Arg1,
			"x":    ev.Arg2 >> 32,
			"y":    int64(int32(uint64(ev.Arg2) & 0xffffffff)),
		}
	case KindFaultInjected:
		return map[string]any{"class": ev.Arg1, "detail": ev.Arg2}
	case KindPanelSwitchRetry:
		return map[string]any{"target_hz": ev.Arg1, "attempt": ev.Arg2}
	case KindFailSafeEnter:
		return map[string]any{"anomaly": ev.Arg1}
	case KindFailSafeExit:
		return map[string]any{"dwell_us": ev.Arg1}
	default:
		return nil
	}
}

// AddSpans exports a span log as its own process (one thread per worker).
// Span times are wall-clock microseconds since the log's first span, so
// this track shares no timebase with the virtual-time device tracks —
// it profiles the host-side scheduler, not the simulation.
func (t *Trace) AddSpans(pid int, name string, spans []Span) {
	if len(spans) == 0 {
		return
	}
	t.meta("process_name", pid, 0, name)
	workers := map[int]bool{}
	for _, s := range spans {
		if !workers[s.Worker] {
			workers[s.Worker] = true
			t.meta("thread_name", pid, s.Worker+1, "worker")
		}
		d := int64((s.End - s.Start) / time.Microsecond)
		t.events = append(t.events, chromeEvent{
			Name: s.Name, Ph: "X",
			TS: int64(s.Start / time.Microsecond), Dur: &d,
			PID: pid, TID: s.Worker + 1,
		})
	}
}

// Write encodes the assembled trace as an indented JSON array — the Chrome
// trace-event array-of-events form.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if t.events == nil {
		return enc.Encode([]chromeEvent{})
	}
	return enc.Encode(t.events)
}

// Span is one wall-clock task execution recorded by a SpanLog.
type Span struct {
	Name       string
	Worker     int           // worker lane the task ran on
	Start, End time.Duration // since the log's first Begin
}

// SpanLog records wall-clock task spans from concurrent workers (the fleet
// pool's scheduler telemetry). Unlike Recorder it is safe for concurrent
// use — spans originate from pool goroutines — and unlike the rest of the
// event stream it is *not* deterministic: it measures the host scheduler,
// so it is exported only on explicit request.
type SpanLog struct {
	mu    sync.Mutex
	t0    time.Time
	spans []Span
}

// NewSpanLog returns an empty span log.
func NewSpanLog() *SpanLog { return &SpanLog{} }

// Begin opens a span and returns the function that closes it.
func (l *SpanLog) Begin(name string, worker int) func() {
	l.mu.Lock()
	if l.t0.IsZero() {
		l.t0 = time.Now()
	}
	start := time.Since(l.t0)
	l.mu.Unlock()
	return func() {
		l.mu.Lock()
		l.spans = append(l.spans, Span{Name: name, Worker: worker, Start: start, End: time.Since(l.t0)})
		l.mu.Unlock()
	}
}

// Spans returns a copy of the recorded spans in completion order.
func (l *SpanLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Span(nil), l.spans...)
}

// Utilization returns busy time across all spans divided by workers ×
// makespan — how well the pool kept its lanes fed. Zero when empty.
func (l *SpanLog) Utilization(workers int) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.spans) == 0 || workers <= 0 {
		return 0
	}
	var busy, last time.Duration
	for _, s := range l.spans {
		busy += s.End - s.Start
		if s.End > last {
			last = s.End
		}
	}
	if last == 0 {
		return 0
	}
	return float64(busy) / (float64(last) * float64(workers))
}
