package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace round-trips a written trace through encoding/json to assert
// the output is the Chrome trace-event array-of-events form.
func decodeTrace(t *testing.T, tr *Trace) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array of events: %v\n%s", err, buf.String())
	}
	return events
}

func TestTraceSchema(t *testing.T) {
	r := NewRecorder(32)
	r.DeviceStart(0)
	r.FrameSubmitted(16667, 500, 921600)
	r.GridCompare(16667, 420, 9216, true)
	r.SectionTransition(500000, 60, 30)

	tr := NewTrace()
	tr.AddDevice(1, "Facebook [baseline]", r)
	events := decodeTrace(t, tr)
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	var sawProcessName, sawThreadName, sawCounter, sawSpan bool
	for _, ev := range events {
		// Chrome trace-event schema: every event needs name, ph, pid;
		// non-metadata events need ts and tid.
		for _, key := range []string{"name", "ph", "pid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		switch ev["ph"] {
		case "M":
			args := ev["args"].(map[string]any)
			if ev["name"] == "process_name" {
				sawProcessName = true
				if args["name"] != "Facebook [baseline]" {
					t.Errorf("process_name = %v", args["name"])
				}
			}
			if ev["name"] == "thread_name" {
				sawThreadName = true
			}
		case "X":
			sawSpan = true
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
		case "C":
			sawCounter = true
		case "i":
			if ev["s"] != "t" {
				t.Errorf("instant event missing thread scope: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
		if ev["ph"] != "M" {
			if _, ok := ev["ts"]; !ok {
				t.Errorf("event missing ts: %v", ev)
			}
		}
	}
	if !sawProcessName || !sawThreadName {
		t.Error("missing process/thread metadata")
	}
	if !sawSpan {
		t.Error("GridCompare did not export as a complete (X) event")
	}
	if !sawCounter {
		t.Error("SectionTransition did not drive the refresh_hz counter track")
	}
}

func TestTraceTimebaseIsMicroseconds(t *testing.T) {
	r := NewRecorder(8)
	r.FrameSubmitted(16667, 1, 1) // one 60 Hz frame interval in sim µs
	tr := NewTrace()
	tr.AddDevice(1, "dev", r)
	for _, ev := range decodeTrace(t, tr) {
		if ev["ph"] == "M" {
			continue
		}
		if ts := ev["ts"].(float64); ts != 16667 {
			t.Fatalf("ts = %v, want 16667 (sim.Time µs exported unscaled)", ts)
		}
	}
}

func TestEmptyTraceIsValidArray(t *testing.T) {
	events := decodeTrace(t, NewTrace())
	if len(events) != 0 {
		t.Fatalf("empty trace encoded %d events", len(events))
	}
}

func TestSpanLog(t *testing.T) {
	l := NewSpanLog()
	end0 := l.Begin("task 0", 0)
	end0()
	end1 := l.Begin("task 1", 1)
	end1()
	spans := l.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Errorf("span %q ends before it starts", s.Name)
		}
	}
	if u := l.Utilization(2); u < 0 || u > 1 {
		t.Errorf("utilization %g out of [0,1]", u)
	}
	tr := NewTrace()
	tr.AddSpans(99, "scheduler", spans)
	var sawTask bool
	for _, ev := range decodeTrace(t, tr) {
		if ev["name"] == "task 0" && ev["ph"] == "X" {
			sawTask = true
		}
	}
	if !sawTask {
		t.Error("span missing from scheduler track")
	}
}

func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLog()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				end := l.Begin("t", w)
				time.Sleep(time.Microsecond)
				end()
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if n := len(l.Spans()); n != 200 {
		t.Fatalf("recorded %d spans, want 200", n)
	}
}

func TestCollectorDeterministicOrder(t *testing.T) {
	build := func(order []string) ([]byte, *Registry) {
		c := NewCollector(16)
		for _, name := range order {
			rec, reg := c.Device(name)
			rec.FrameSubmitted(1, 1, 1)
			reg.Counter("frames_total").Inc()
			reg.Histogram("device_power_mw", PowerBucketsMW).Observe(900)
		}
		var buf bytes.Buffer
		if err := c.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		merged, err := c.MergedMetrics()
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), merged
	}
	// Attach order differs (as it would under pool scheduling); output must not.
	t1, m1 := build([]string{"device 0001", "device 0000", "device 0002"})
	t2, m2 := build([]string{"device 0002", "device 0001", "device 0000"})
	if !bytes.Equal(t1, t2) {
		t.Error("trace output depends on attach order")
	}
	var d1, d2 bytes.Buffer
	if err := m1.WriteText(&d1); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteText(&d2); err != nil {
		t.Fatal(err)
	}
	if d1.String() != d2.String() {
		t.Error("merged metrics depend on attach order")
	}
	if v := m1.Counter("frames_total").Value(); v != 3 {
		t.Errorf("merged frames_total = %d, want 3", v)
	}
	if h := m1.Histogram("device_power_mw", PowerBucketsMW); h.Count() != 3 {
		t.Errorf("merged histogram count = %d, want 3", h.Count())
	}
}

func TestNilCollector(t *testing.T) {
	var c *Collector
	rec, reg := c.Device("x")
	if rec != nil || reg != nil {
		t.Fatal("nil collector must return nil sinks")
	}
	if c.Tracks() != nil {
		t.Fatal("nil collector must have no tracks")
	}
}
