// Package perfgate is the benchmark-regression harness guarding the
// simulation kernel's hot path: it parses `go test -bench` output,
// aggregates repeated runs into per-benchmark medians, and compares them
// against a committed baseline (results/bench_baseline.json) with
// benchstat-style thresholds.
//
// The gate enforces two different contracts:
//
//   - allocs/op is deterministic — the steady-state frame path is designed
//     to allocate nothing — so any growth over baseline is a hard failure,
//     regardless of how noisy the host is;
//   - ns/op is machine-dependent, so time regressions beyond the threshold
//     (default 10%) fail only in strict mode and downgrade to warnings in
//     warn-time mode (what shared CI runners use).
//
// cmd/ccdem-bench is the CLI front end; `make perfgate` wires it to the
// pinned benchmark suite.
package perfgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one aggregated benchmark measurement.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// sub-benchmark path included (e.g. "BenchmarkObsOverhead/disabled").
	Name string `json:"name"`
	// NsPerOp is the median wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the median allocated bytes per operation (-1 when the
	// run did not report -benchmem figures).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is the median allocation count per operation (-1 when
	// not reported).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Runs is how many samples the median was taken over (the -count).
	Runs int `json:"runs"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkFoo-8   1234   5678 ns/op   90 B/op   2 allocs/op
//
// Custom -ReportMetric columns between the standard ones are tolerated.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*)\s+(\d+)\s+(.*)$`)

// stripProcs removes the trailing -N GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo-8" → "BenchmarkFoo"), leaving sub-benchmark
// slashes intact.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// sample is one raw benchmark line before aggregation.
type sample struct {
	ns     float64
	bytes  float64 // -1 when absent
	allocs float64 // -1 when absent
}

// Parse reads `go test -bench` output and returns one Result per benchmark,
// medians across repeated lines (-count > 1), sorted by name. Non-benchmark
// lines (package headers, PASS/ok, metrics summaries) are skipped.
func Parse(r io.Reader) ([]Result, error) {
	samples := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		s := sample{bytes: -1, allocs: -1}
		fields := strings.Fields(m[3])
		// Fields come in (value, unit) pairs: "5678 ns/op 90 B/op ...".
		seenNs := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("perfgate: bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = v
				seenNs = true
			case "B/op":
				s.bytes = v
			case "allocs/op":
				s.allocs = v
			}
		}
		if !seenNs {
			return nil, fmt.Errorf("perfgate: no ns/op in line %q", line)
		}
		if _, ok := samples[name]; !ok {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		ss := samples[name]
		out = append(out, Result{
			Name:        name,
			NsPerOp:     median(ss, func(s sample) float64 { return s.ns }),
			BytesPerOp:  median(ss, func(s sample) float64 { return s.bytes }),
			AllocsPerOp: median(ss, func(s sample) float64 { return s.allocs }),
			Runs:        len(ss),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func median(ss []sample, get func(sample) float64) float64 {
	vs := make([]float64, len(ss))
	for i, s := range ss {
		vs[i] = get(s)
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// Baseline is the committed reference the gate compares against.
type Baseline struct {
	// Note documents how the baseline was produced (host, flags).
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name to its reference measurement.
	Benchmarks map[string]Result `json:"benchmarks"`
}

// LoadBaseline reads a baseline JSON file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("perfgate: parse %s: %w", path, err)
	}
	if b.Benchmarks == nil {
		b.Benchmarks = map[string]Result{}
	}
	return &b, nil
}

// Save writes the baseline as indented JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Update replaces the baseline entries for every result in rs, leaving
// benchmarks not present in rs untouched.
func (b *Baseline) Update(rs []Result) {
	if b.Benchmarks == nil {
		b.Benchmarks = map[string]Result{}
	}
	for _, r := range rs {
		b.Benchmarks[r.Name] = r
	}
}

// Verdict classifies one benchmark's comparison outcome.
type Verdict int

// Verdicts, from best to worst.
const (
	// OK: within threshold (or improved).
	OK Verdict = iota
	// Missing: present in the run but absent from the baseline (or vice
	// versa) — informational, never fails the gate.
	Missing
	// WarnTime: ns/op regressed beyond threshold but time failures are
	// downgraded to warnings (noisy-runner mode).
	WarnTime
	// FailTime: ns/op regressed beyond threshold in strict mode.
	FailTime
	// FailAllocs: allocs/op grew over baseline — always a hard failure.
	FailAllocs
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Missing:
		return "missing"
	case WarnTime:
		return "warn-time"
	case FailTime:
		return "FAIL-time"
	case FailAllocs:
		return "FAIL-allocs"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Options configures a comparison.
type Options struct {
	// Threshold is the allowed fractional ns/op growth (0.10 = +10%).
	// Zero means the 0.10 default.
	Threshold float64
	// WarnTimeOnly downgrades time regressions from failures to warnings;
	// alloc growth still fails. CI uses this on shared runners whose
	// timings are not comparable to the baseline host.
	WarnTimeOnly bool
}

func (o Options) threshold() float64 {
	if o.Threshold <= 0 {
		return 0.10
	}
	return o.Threshold
}

// allocSlack is the allowed allocs/op growth before failing: half an
// allocation absolute (median-between-integers noise) or 1% of the
// baseline, whichever is larger.
func allocSlack(base float64) float64 {
	if s := 0.01 * base; s > 0.5 {
		return s
	}
	return 0.5
}

// Delta is one benchmark's baseline-vs-current comparison.
type Delta struct {
	Name     string
	Verdict  Verdict
	Base     Result // zero when Missing (not in baseline)
	Cur      Result // zero when Missing (not in run)
	TimePct  float64
	AllocsUp float64 // allocs/op growth (cur − base), 0 when fine
	Detail   string
}

// Report is a full gate evaluation.
type Report struct {
	Deltas []Delta
	Opts   Options
}

// Compare evaluates current results against the baseline.
func Compare(base *Baseline, current []Result, opts Options) *Report {
	rep := &Report{Opts: opts}
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		seen[cur.Name] = true
		b, ok := base.Benchmarks[cur.Name]
		if !ok {
			rep.Deltas = append(rep.Deltas, Delta{
				Name: cur.Name, Verdict: Missing, Cur: cur,
				Detail: "not in baseline (run with -update to add)",
			})
			continue
		}
		d := Delta{Name: cur.Name, Base: b, Cur: cur}
		if b.NsPerOp > 0 {
			d.TimePct = 100 * (cur.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		switch {
		// Allocation counts on the single-device kernels are deterministic,
		// but medians over an even -count can land between integers —
		// require a real increase. Fleet-scale benchmarks (thousands of
		// allocs across pool workers) additionally jitter by a handful of
		// runtime-internal allocations per run, so the slack scales with
		// the baseline: a zero-alloc gate stays exact while a 2500-alloc
		// cohort gets 1% headroom.
		case b.AllocsPerOp >= 0 && cur.AllocsPerOp > b.AllocsPerOp+allocSlack(b.AllocsPerOp):
			d.Verdict = FailAllocs
			d.AllocsUp = cur.AllocsPerOp - b.AllocsPerOp
			d.Detail = fmt.Sprintf("allocs/op %0.f → %0.f", b.AllocsPerOp, cur.AllocsPerOp)
		case cur.NsPerOp > b.NsPerOp*(1+opts.threshold()):
			if opts.WarnTimeOnly {
				d.Verdict = WarnTime
			} else {
				d.Verdict = FailTime
			}
			d.Detail = fmt.Sprintf("ns/op %+.1f%% (limit %+.0f%%)", d.TimePct, 100*opts.threshold())
		default:
			d.Verdict = OK
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	// Baseline entries the run never produced: surface them so a silently
	// deleted benchmark cannot hide a regression.
	var absent []string
	for name := range base.Benchmarks {
		if !seen[name] {
			absent = append(absent, name)
		}
	}
	sort.Strings(absent)
	for _, name := range absent {
		rep.Deltas = append(rep.Deltas, Delta{
			Name: name, Verdict: Missing, Base: base.Benchmarks[name],
			Detail: "in baseline but not in this run",
		})
	}
	return rep
}

// Failed reports whether the gate fails: any FailAllocs or FailTime delta.
func (r *Report) Failed() bool {
	for _, d := range r.Deltas {
		if d.Verdict == FailAllocs || d.Verdict == FailTime {
			return true
		}
	}
	return false
}

// Warnings counts WarnTime deltas.
func (r *Report) Warnings() int {
	n := 0
	for _, d := range r.Deltas {
		if d.Verdict == WarnTime {
			n++
		}
	}
	return n
}

// Write renders the report as an aligned text table.
func (r *Report) Write(w io.Writer) error {
	fmt.Fprintf(w, "%-44s %12s %12s %8s %8s  %s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δtime", "allocs", "verdict")
	for _, d := range r.Deltas {
		baseNs, curNs, dt, allocs := "-", "-", "-", "-"
		if d.Base.Name != "" {
			baseNs = fmtNs(d.Base.NsPerOp)
		}
		if d.Cur.Name != "" {
			curNs = fmtNs(d.Cur.NsPerOp)
			if d.Cur.AllocsPerOp >= 0 {
				allocs = strconv.FormatFloat(d.Cur.AllocsPerOp, 'f', -1, 64)
			}
		}
		if d.Base.Name != "" && d.Cur.Name != "" {
			dt = fmt.Sprintf("%+.1f%%", d.TimePct)
		}
		line := fmt.Sprintf("%-44s %12s %12s %8s %8s  %s",
			d.Name, baseNs, curNs, dt, allocs, d.Verdict)
		if d.Detail != "" {
			line += " (" + d.Detail + ")"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if r.Failed() {
		_, err := fmt.Fprintln(w, "perfgate: FAIL")
		return err
	}
	if n := r.Warnings(); n > 0 {
		_, err := fmt.Fprintf(w, "perfgate: ok with %d time warning(s)\n", n)
		return err
	}
	_, err := fmt.Fprintln(w, "perfgate: ok")
	return err
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.3gns", ns)
	}
}
