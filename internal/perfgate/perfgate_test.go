package perfgate

import (
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: ccdem/internal/framebuffer
cpu: some host cpu @ 3.00GHz
BenchmarkGridSample9K-8      	  473623	      4545 ns/op	       7 B/op	       0 allocs/op
BenchmarkGridSample9K-8      	  480000	      4601 ns/op	       7 B/op	       0 allocs/op
BenchmarkGridSample9K-8      	  470000	      4381 ns/op	       7 B/op	       0 allocs/op
BenchmarkDeviceSimulation 	     420	   6183968 ns/op	      1617 virtual-s/s	 7542376 B/op	    1210 allocs/op
BenchmarkObsOverhead/disabled-8 	 100	   123456 ns/op
PASS
ok  	ccdem/internal/framebuffer	4.067s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(rs), rs)
	}
	byName := map[string]Result{}
	for _, r := range rs {
		byName[r.Name] = r
	}

	gs, ok := byName["BenchmarkGridSample9K"]
	if !ok {
		t.Fatalf("GridSample9K missing (proc suffix not stripped?): %+v", rs)
	}
	if gs.Runs != 3 {
		t.Errorf("GridSample9K runs = %d, want 3", gs.Runs)
	}
	if gs.NsPerOp != 4545 { // median of 4381, 4545, 4601
		t.Errorf("GridSample9K ns/op median = %v, want 4545", gs.NsPerOp)
	}
	if gs.AllocsPerOp != 0 || gs.BytesPerOp != 7 {
		t.Errorf("GridSample9K allocs=%v bytes=%v, want 0 and 7", gs.AllocsPerOp, gs.BytesPerOp)
	}

	// Custom ReportMetric columns must not confuse the standard ones.
	ds := byName["BenchmarkDeviceSimulation"]
	if ds.NsPerOp != 6183968 || ds.AllocsPerOp != 1210 {
		t.Errorf("DeviceSimulation = %+v, want ns=6183968 allocs=1210", ds)
	}

	// Without -benchmem figures, allocs/bytes are marked absent.
	obs := byName["BenchmarkObsOverhead/disabled"]
	if obs.NsPerOp != 123456 || obs.AllocsPerOp != -1 || obs.BytesPerOp != -1 {
		t.Errorf("ObsOverhead/disabled = %+v, want ns=123456 allocs=-1 bytes=-1", obs)
	}
}

func TestParseEvenCountMedian(t *testing.T) {
	out := `BenchmarkX-4 	10	100 ns/op	0 B/op	0 allocs/op
BenchmarkX-4 	10	300 ns/op	0 B/op	0 allocs/op
`
	rs, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].NsPerOp != 200 {
		t.Errorf("even-count median = %v, want 200", rs[0].NsPerOp)
	}
}

func base(entries ...Result) *Baseline {
	b := &Baseline{Benchmarks: map[string]Result{}}
	b.Update(entries)
	return b
}

func TestCompareVerdicts(t *testing.T) {
	b := base(
		Result{Name: "BenchmarkFast", NsPerOp: 1000, AllocsPerOp: 0, BytesPerOp: 0},
		Result{Name: "BenchmarkGone", NsPerOp: 50, AllocsPerOp: 0},
		Result{Name: "BenchmarkFleet", NsPerOp: 1e6, AllocsPerOp: 2500},
	)
	cases := []struct {
		name string
		cur  Result
		opts Options
		want Verdict
	}{
		{"within threshold", Result{Name: "BenchmarkFast", NsPerOp: 1080, AllocsPerOp: 0}, Options{}, OK},
		{"improved", Result{Name: "BenchmarkFast", NsPerOp: 500, AllocsPerOp: 0}, Options{}, OK},
		{"time regression", Result{Name: "BenchmarkFast", NsPerOp: 1200, AllocsPerOp: 0}, Options{}, FailTime},
		{"time regression warn mode", Result{Name: "BenchmarkFast", NsPerOp: 1200, AllocsPerOp: 0}, Options{WarnTimeOnly: true}, WarnTime},
		{"custom threshold passes", Result{Name: "BenchmarkFast", NsPerOp: 1200, AllocsPerOp: 0}, Options{Threshold: 0.25}, OK},
		{"alloc growth", Result{Name: "BenchmarkFast", NsPerOp: 900, AllocsPerOp: 2}, Options{}, FailAllocs},
		{"alloc growth beats warn mode", Result{Name: "BenchmarkFast", NsPerOp: 900, AllocsPerOp: 2}, Options{WarnTimeOnly: true}, FailAllocs},
		{"new benchmark", Result{Name: "BenchmarkNew", NsPerOp: 10, AllocsPerOp: 0}, Options{}, Missing},
		// Fleet-scale counts get 1% relative slack (pool-worker runtime
		// jitter); real growth beyond it still fails hard.
		{"alloc jitter within slack", Result{Name: "BenchmarkFleet", NsPerOp: 1e6, AllocsPerOp: 2520}, Options{}, OK},
		{"alloc growth beyond slack", Result{Name: "BenchmarkFleet", NsPerOp: 1e6, AllocsPerOp: 2600}, Options{}, FailAllocs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Compare(b, []Result{tc.cur}, tc.opts)
			if got := rep.Deltas[0].Verdict; got != tc.want {
				t.Errorf("verdict = %v, want %v", got, tc.want)
			}
			wantFail := tc.want == FailTime || tc.want == FailAllocs
			if rep.Failed() != wantFail {
				t.Errorf("Failed() = %v, want %v", rep.Failed(), wantFail)
			}
		})
	}
}

func TestCompareAbsentFromRun(t *testing.T) {
	b := base(Result{Name: "BenchmarkGone", NsPerOp: 50, AllocsPerOp: 0})
	rep := Compare(b, nil, Options{})
	if len(rep.Deltas) != 1 || rep.Deltas[0].Verdict != Missing {
		t.Fatalf("deltas = %+v, want one Missing for BenchmarkGone", rep.Deltas)
	}
	if rep.Failed() {
		t.Error("absent benchmark must not fail the gate")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := base(Result{Name: "BenchmarkX", NsPerOp: 42, AllocsPerOp: 0, BytesPerOp: 7, Runs: 5})
	b.Note = "test host"
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "test host" || got.Benchmarks["BenchmarkX"] != b.Benchmarks["BenchmarkX"] {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReportWrite(t *testing.T) {
	b := base(Result{Name: "BenchmarkFast", NsPerOp: 1000, AllocsPerOp: 0})
	rep := Compare(b, []Result{{Name: "BenchmarkFast", NsPerOp: 2000, AllocsPerOp: 5}}, Options{})
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "FAIL-allocs") || !strings.Contains(out, "perfgate: FAIL") {
		t.Errorf("report missing failure markers:\n%s", out)
	}
}
