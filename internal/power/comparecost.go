package power

import "ccdem/internal/sim"

// CompareCostModel maps a pixel-comparison workload to wall-clock time on
// the paper's target CPU (the Galaxy S3's Exynos 4412). The paper's
// Figure 6 measures this directly on the phone; our host CPU is orders of
// magnitude faster, so benchmarks report measured Go time *and* this model
// recreates the phone-scale feasibility argument: comparing all 921K
// pixels takes ≈40 ms — far beyond the 16.67 ms V-Sync budget at 60 Hz —
// while grid comparison at ≤36K pixels fits easily.
type CompareCostModel struct {
	FixedOverhead sim.Time // buffer map/setup cost per comparison
	PerPixel      float64  // nanoseconds per compared pixel
}

// DefaultCompareCost is fitted to the paper's endpoints: ~40 ms at 921600
// pixels with a small fixed overhead.
func DefaultCompareCost() CompareCostModel {
	return CompareCostModel{
		FixedOverhead: 500 * sim.Microsecond,
		PerPixel:      42.9, // ns/pixel → 921600 px ≈ 40 ms
	}
}

// Duration returns the modeled comparison time for the given number of
// sampled pixels.
func (c CompareCostModel) Duration(pixels int) sim.Time {
	if pixels < 0 {
		panic("power: negative pixel count")
	}
	ns := c.PerPixel * float64(pixels)
	return c.FixedOverhead + sim.Time(ns/1000) // ns → µs
}

// FitsVSyncBudget reports whether a comparison of the given size completes
// within one V-Sync interval at the given refresh rate — the paper's
// feasibility criterion for metering at the maximum frame rate.
func (c CompareCostModel) FitsVSyncBudget(pixels, rateHz int) bool {
	return c.Duration(pixels) < sim.Hz(float64(rateHz))
}
