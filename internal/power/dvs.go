package power

import "fmt"

// DVS models the other major class of display power management in the
// paper's related work (refs [3], [4], [15]): dynamic voltage scaling of
// an OLED panel. Lowering the panel supply voltage saves emission power
// roughly quadratically but dims the panel, i.e. it trades *luminance
// fidelity* for power — precisely the quality compromise the paper's
// content-centric scheme avoids. Implementing it under the same harness
// lets the benches draw the quality-power frontier the paper argues about.

// DVSLevel is one operating point of a voltage-scaled panel.
type DVSLevel struct {
	// VoltageScale is the supply voltage relative to nominal (0 < s ≤ 1).
	VoltageScale float64
}

// PowerScale returns the emission-power multiplier at this level. OLED
// drive power tracks V² to first order.
func (l DVSLevel) PowerScale() float64 { return l.VoltageScale * l.VoltageScale }

// LuminanceScale returns the relative luminance at this level. OLED
// luminance falls slightly faster than linearly with voltage near the
// operating point; the DVS literature linearizes it with a gamma-ish
// exponent. We use L ∝ V^1.3, a middle-ground fit.
func (l DVSLevel) LuminanceScale() float64 {
	v := l.VoltageScale
	// v^1.3 without math.Pow in the hot path precision we need here is
	// fine to compute directly.
	return pow13(v)
}

func pow13(v float64) float64 {
	// v^1.3 = v × v^0.3; v^0.3 via exp/log would drag in math — a 3-term
	// binomial around 1 is accurate to <0.5% over the DVS range [0.7, 1].
	d := v - 1
	v03 := 1 + 0.3*d - 0.105*d*d + 0.0595*d*d*d
	return v * v03
}

// Validate reports configuration errors.
func (l DVSLevel) Validate() error {
	if l.VoltageScale <= 0 || l.VoltageScale > 1 {
		return fmt.Errorf("power: DVS voltage scale %v out of (0,1]", l.VoltageScale)
	}
	return nil
}

// DVSPanel wraps an OLED panel with a voltage-scaled emission stage.
type DVSPanel struct {
	Base  OLEDPanel
	Level DVSLevel
}

// PowerMW implements PanelModel: the emission term scales with V², the
// driver terms are unaffected.
func (p DVSPanel) PowerMW(rateHz int, backlight, meanLuma float64) float64 {
	driver := p.Base.BaseMW + p.Base.PerHzMW*float64(rateHz)
	emission := p.Base.MaxEmissionMW * backlight * (meanLuma / 255) * p.Level.PowerScale()
	return driver + emission
}

// Name implements PanelModel.
func (p DVSPanel) Name() string {
	return fmt.Sprintf("oled-dvs(%.2f)", p.Level.VoltageScale)
}

// LuminanceFidelity returns the panel's luminance relative to nominal —
// the quality metric of the DVS literature (1.0 = undimmed).
func (p DVSPanel) LuminanceFidelity() float64 { return p.Level.LuminanceScale() }

// StandardDVSLevels are the operating points used by the comparison
// experiment, spanning the range the DVS papers report.
var StandardDVSLevels = []DVSLevel{
	{VoltageScale: 1.00},
	{VoltageScale: 0.95},
	{VoltageScale: 0.90},
	{VoltageScale: 0.85},
	{VoltageScale: 0.80},
}
