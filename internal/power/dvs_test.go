package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDVSLevelScales(t *testing.T) {
	nominal := DVSLevel{VoltageScale: 1}
	if nominal.PowerScale() != 1 || math.Abs(nominal.LuminanceScale()-1) > 1e-9 {
		t.Errorf("nominal scales = %v/%v, want 1/1", nominal.PowerScale(), nominal.LuminanceScale())
	}
	l := DVSLevel{VoltageScale: 0.9}
	if got := l.PowerScale(); math.Abs(got-0.81) > 1e-12 {
		t.Errorf("PowerScale(0.9) = %v, want 0.81", got)
	}
	// 0.9^1.3 ≈ 0.8720
	if got := l.LuminanceScale(); math.Abs(got-0.872) > 0.005 {
		t.Errorf("LuminanceScale(0.9) = %v, want ≈0.872", got)
	}
}

func TestDVSLevelValidation(t *testing.T) {
	if err := (DVSLevel{VoltageScale: 0}).Validate(); err == nil {
		t.Error("zero scale accepted")
	}
	if err := (DVSLevel{VoltageScale: 1.2}).Validate(); err == nil {
		t.Error("overvolting accepted")
	}
}

func TestDVSPanelPower(t *testing.T) {
	base := OLEDPanel{BaseMW: 50, PerHzMW: 3, MaxEmissionMW: 700}
	nominal := DVSPanel{Base: base, Level: DVSLevel{VoltageScale: 1}}
	scaled := DVSPanel{Base: base, Level: DVSLevel{VoltageScale: 0.8}}
	pn := nominal.PowerMW(60, 1, 255)
	ps := scaled.PowerMW(60, 1, 255)
	// Emission at full white: 700 mW nominal vs 700×0.64 scaled.
	if want := 700 * (1 - 0.64); math.Abs((pn-ps)-want) > 1e-9 {
		t.Errorf("DVS emission saving = %v, want %v", pn-ps, want)
	}
	// Driver terms unaffected: black screen power identical.
	if nominal.PowerMW(60, 1, 0) != scaled.PowerMW(60, 1, 0) {
		t.Error("DVS changed driver power at black screen")
	}
	if scaled.Name() != "oled-dvs(0.80)" {
		t.Errorf("Name = %q", scaled.Name())
	}
	if f := scaled.LuminanceFidelity(); f >= 1 || f < 0.70 {
		t.Errorf("fidelity at 0.8 V = %v, want ≈0.75", f)
	}
}

func TestStandardDVSLevels(t *testing.T) {
	if len(StandardDVSLevels) != 5 {
		t.Fatalf("levels = %d", len(StandardDVSLevels))
	}
	for i, l := range StandardDVSLevels {
		if err := l.Validate(); err != nil {
			t.Errorf("level %d invalid: %v", i, err)
		}
		if i > 0 && l.VoltageScale >= StandardDVSLevels[i-1].VoltageScale {
			t.Errorf("levels not descending at %d", i)
		}
	}
}

// Property: pow13 approximates v^1.3 within 1% over the DVS range.
func TestPow13AccuracyProperty(t *testing.T) {
	f := func(raw uint16) bool {
		v := 0.7 + 0.3*float64(raw)/65535
		want := math.Pow(v, 1.3)
		got := pow13(v)
		return math.Abs(got-want)/want < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: lower voltage always means less power and less luminance —
// the monotone trade-off the frontier experiment relies on.
func TestDVSMonotoneProperty(t *testing.T) {
	base := OLEDPanel{BaseMW: 50, PerHzMW: 3, MaxEmissionMW: 700}
	f := func(a, b uint16) bool {
		va := 0.7 + 0.3*float64(a)/65535
		vb := 0.7 + 0.3*float64(b)/65535
		if va > vb {
			va, vb = vb, va
		}
		pa := DVSPanel{Base: base, Level: DVSLevel{VoltageScale: va}}
		pb := DVSPanel{Base: base, Level: DVSLevel{VoltageScale: vb}}
		return pa.PowerMW(60, 1, 200) <= pb.PowerMW(60, 1, 200) &&
			pa.LuminanceFidelity() <= pb.LuminanceFidelity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
