package power

import (
	"fmt"

	"ccdem/internal/sim"
)

// Meter is the Monsoon-style power monitor of the paper's methodology: it
// periodically converts the energy accumulated by a Model into an average
// power sample, producing the power traces the figures plot. A hardware
// Monsoon samples at 5 kHz and its samples are averaged over reporting
// windows; we sample the average directly at the reporting interval.
type Meter struct {
	eng      *sim.Engine
	model    *Model
	interval sim.Time

	lastEnergy float64
	samples    []Sample
	ticker     *sim.Ticker
}

// Sample is one averaged power reading.
type Sample struct {
	T  sim.Time // end of the averaging interval
	MW float64  // mean power over the interval
}

// NewMeter attaches a sampler to model with the given reporting interval.
func NewMeter(eng *sim.Engine, model *Model, interval sim.Time) (*Meter, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("power: non-positive meter interval %v", interval)
	}
	return &Meter{eng: eng, model: model, interval: interval}, nil
}

// Reset revalidates the interval and returns the meter to a freshly
// constructed, unstarted state, keeping the sample slice's capacity. The
// engine and model associations are kept; the previous run's ticker, if
// any, is assumed dead (the engine was reset or the ticker stopped).
func (mt *Meter) Reset(interval sim.Time) error {
	if interval <= 0 {
		return fmt.Errorf("power: non-positive meter interval %v", interval)
	}
	mt.interval = interval
	mt.lastEnergy = 0
	mt.samples = mt.samples[:0]
	mt.ticker = nil
	return nil
}

// Start begins sampling, with the first sample one interval from now.
func (mt *Meter) Start() {
	if mt.ticker != nil {
		panic("power: Meter started twice")
	}
	mt.lastEnergy = mt.model.EnergyMJ()
	mt.ticker = mt.eng.Every(mt.eng.Now()+mt.interval, mt.interval, mt.sample)
}

// Stop halts sampling.
func (mt *Meter) Stop() {
	if mt.ticker != nil {
		mt.ticker.Stop()
	}
}

func (mt *Meter) sample() {
	e := mt.model.EnergyMJ()
	mw := (e - mt.lastEnergy) / mt.interval.Seconds()
	mt.lastEnergy = e
	mt.samples = append(mt.samples, Sample{T: mt.eng.Now(), MW: mw})
}

// Samples returns all samples taken so far. The slice is owned by the
// meter.
func (mt *Meter) Samples() []Sample { return mt.samples }

// MeanMW returns the mean of all samples (0 when none).
func (mt *Meter) MeanMW() float64 {
	if len(mt.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range mt.samples {
		sum += s.MW
	}
	return sum / float64(len(mt.samples))
}

// Values returns the sample values in mW, for statistics helpers.
func (mt *Meter) Values() []float64 {
	vs := make([]float64, len(mt.samples))
	for i, s := range mt.samples {
		vs[i] = s.MW
	}
	return vs
}
