// Package power models the energy side of the reproduction: where the
// Galaxy S3's display-path power goes, and how the paper's Monsoon power
// monitor observes it.
//
// The model splits device power into the two terms the paper's scheme
// attacks plus a floor:
//
//   - a refresh-proportional term (panel + display driver dynamic power,
//     paid per Hz regardless of content),
//   - a frame-proportional term (GPU render + composition + memory
//     traffic, paid per latched frame and scaling with rendered pixels),
//   - a floor (SoC base + backlight at the experiment's 50% brightness).
//
// Continuous components integrate over virtual time; per-frame costs are
// energy impulses charged when the surface manager latches a frame. A
// Meter samples accumulated energy at a fixed interval, reproducing how a
// Monsoon monitor's averaged samples are used in the paper.
package power

import (
	"fmt"

	"ccdem/internal/sim"
)

// Component labels an energy consumer for breakdown reporting.
type Component int

// The modeled components.
const (
	SoC       Component = iota // CPU/SoC idle-ish floor while the screen is on
	Panel                      // panel + display driver (refresh-dependent) + backlight
	Render                     // GPU render, composition, framebuffer bus traffic
	MeterOver                  // the content-rate meter's own comparison cost
	numComponents
)

// String implements fmt.Stringer for breakdown tables.
func (c Component) String() string {
	switch c {
	case SoC:
		return "soc"
	case Panel:
		return "panel"
	case Render:
		return "render"
	case MeterOver:
		return "meter"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// PanelModel computes panel power from operating state. Implementations:
// LCDPanel (the Galaxy S3's display) and OLEDPanel (an extension for the
// content-dependent panels discussed in the paper's related work).
type PanelModel interface {
	// PowerMW returns the panel's instantaneous power in mW at the given
	// refresh rate, backlight setting (0..1) and mean screen luminance
	// (0..255; only OLED panels use it).
	PowerMW(rateHz int, backlight, meanLuma float64) float64
	// Name identifies the panel type in reports.
	Name() string
}

// LCDPanel models an LCD: a static panel-logic floor, a per-Hz dynamic
// term for the driver and gate scanning, and a backlight whose power
// depends only on the brightness setting.
type LCDPanel struct {
	BaseMW         float64 // panel logic floor
	PerHzMW        float64 // driver + refresh dynamic power per Hz
	BacklightMaxMW float64 // backlight at 100% brightness
}

// PowerMW implements PanelModel.
func (p LCDPanel) PowerMW(rateHz int, backlight, _ float64) float64 {
	return p.BaseMW + p.PerHzMW*float64(rateHz) + p.BacklightMaxMW*backlight
}

// Name implements PanelModel.
func (p LCDPanel) Name() string { return "lcd" }

// OLEDPanel models an emissive panel: no backlight, per-pixel emission
// power proportional to luminance, plus the same per-Hz driver term.
type OLEDPanel struct {
	BaseMW        float64 // driver floor
	PerHzMW       float64 // scan/driver dynamic power per Hz
	MaxEmissionMW float64 // full-white, full-brightness emission power
}

// PowerMW implements PanelModel.
func (p OLEDPanel) PowerMW(rateHz int, backlight, meanLuma float64) float64 {
	return p.BaseMW + p.PerHzMW*float64(rateHz) + p.MaxEmissionMW*backlight*(meanLuma/255)
}

// Name implements PanelModel.
func (p OLEDPanel) Name() string { return "oled" }

// Params calibrates the device power model. DefaultParams matches the
// reproduction's Galaxy-S3-scale calibration (DESIGN.md §4): the absolute
// numbers are not the authors' testbed, but they place workloads and
// savings in the same regime the paper reports.
type Params struct {
	Panel             PanelModel
	SoCBaseMW         float64 // SoC floor with screen on
	RenderFrameBaseMJ float64 // fixed cost per latched frame (compose, bus setup)
	RenderPerPixelNJ  float64 // GPU+bus energy per rendered pixel
	CPUActiveMW       float64 // CPU power while running meter comparisons
}

// DefaultParams returns the calibrated Galaxy-S3-scale model with the
// paper's experimental 50% brightness assumed by the backlight figure.
func DefaultParams() Params {
	return Params{
		Panel: LCDPanel{
			BaseMW:         60,
			PerHzMW:        3.5, // 60 Hz → 210 mW of refresh-dependent power
			BacklightMaxMW: 440, // 50% brightness → 220 mW
		},
		SoCBaseMW:         240,
		RenderFrameBaseMJ: 1.2,
		RenderPerPixelNJ:  4.0, // full 720×1280 frame ≈ 3.7 mJ
		CPUActiveMW:       300,
	}
}

// Model accumulates energy for a single simulated run.
type Model struct {
	eng    *sim.Engine
	params Params

	rateHz     int
	backlight  float64
	meanLuma   float64
	lastT      sim.Time
	energyMJ   [numComponents]float64
	renderedPx uint64
	frames     uint64
}

// NewModel builds a model attached to eng. Initial state: panel at
// initialRate Hz, the given backlight (0..1), mid-gray content.
func NewModel(eng *sim.Engine, params Params, initialRate int, backlight float64) (*Model, error) {
	m := &Model{eng: eng}
	if err := m.Reset(params, initialRate, backlight); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset revalidates the arguments and returns the model to a freshly
// constructed state — zero accumulated energy, mid-gray content, the
// integration clock at the engine's current time. The engine association
// is kept; callers recycling a whole device reset the engine first so
// both clocks restart at zero together.
func (m *Model) Reset(params Params, initialRate int, backlight float64) error {
	if params.Panel == nil {
		return fmt.Errorf("power: nil panel model")
	}
	if backlight < 0 || backlight > 1 {
		return fmt.Errorf("power: backlight %v out of [0,1]", backlight)
	}
	if initialRate <= 0 {
		return fmt.Errorf("power: non-positive initial rate %d", initialRate)
	}
	m.params = params
	m.rateHz = initialRate
	m.backlight = backlight
	m.meanLuma = 128
	m.lastT = m.eng.Now()
	m.energyMJ = [numComponents]float64{}
	m.renderedPx = 0
	m.frames = 0
	return nil
}

// integrate charges continuous components for the interval since the last
// state change or reading.
func (m *Model) integrate() {
	now := m.eng.Now()
	dt := (now - m.lastT).Seconds()
	if dt <= 0 {
		m.lastT = now
		return
	}
	m.energyMJ[SoC] += m.params.SoCBaseMW * dt
	m.energyMJ[Panel] += m.params.Panel.PowerMW(m.rateHz, m.backlight, m.meanLuma) * dt
	m.lastT = now
}

// SetRefreshRate records a panel refresh-rate change. Call it from a
// display.Panel OnRateChange hook.
func (m *Model) SetRefreshRate(hz int) {
	m.integrate()
	m.rateHz = hz
}

// SetBacklight records a brightness change (0..1).
func (m *Model) SetBacklight(b float64) {
	m.integrate()
	m.backlight = b
}

// SetMeanLuminance records the current mean screen luminance (0..255) for
// content-dependent (OLED) panels.
func (m *Model) SetMeanLuminance(l float64) {
	m.integrate()
	m.meanLuma = l
}

// FrameRendered charges the energy of rendering and composing one latched
// frame covering renderedPixels pixels.
func (m *Model) FrameRendered(renderedPixels int) {
	if renderedPixels < 0 {
		panic("power: negative rendered pixel count")
	}
	m.energyMJ[Render] += m.params.RenderFrameBaseMJ +
		m.params.RenderPerPixelNJ*float64(renderedPixels)*1e-6
	m.renderedPx += uint64(renderedPixels)
	m.frames++
}

// MeterCompare charges the CPU energy of one content-rate comparison that
// took the given modeled duration (see CompareCost).
func (m *Model) MeterCompare(duration sim.Time) {
	m.energyMJ[MeterOver] += m.params.CPUActiveMW * duration.Seconds()
}

// InstantMW returns the current continuous power draw in mW (per-frame
// impulses are not part of the instantaneous figure; they surface through
// sampled energy).
func (m *Model) InstantMW() float64 {
	return m.params.SoCBaseMW + m.params.Panel.PowerMW(m.rateHz, m.backlight, m.meanLuma)
}

// EnergyMJ returns total accumulated energy in millijoules up to now.
func (m *Model) EnergyMJ() float64 {
	m.integrate()
	total := 0.0
	for _, e := range m.energyMJ {
		total += e
	}
	return total
}

// Breakdown returns accumulated energy per component in millijoules.
func (m *Model) Breakdown() map[Component]float64 {
	m.integrate()
	out := make(map[Component]float64, numComponents)
	for c := Component(0); c < numComponents; c++ {
		out[c] = m.energyMJ[c]
	}
	return out
}

// MeanPowerMW returns average power over [0, now] in mW, assuming the model
// was created at t=0 of the measurement.
func (m *Model) MeanPowerMW() float64 {
	m.integrate()
	el := m.eng.Now().Seconds()
	if el <= 0 {
		return m.InstantMW()
	}
	return m.EnergyMJ() / el
}

// Frames returns the number of latched frames charged so far.
func (m *Model) Frames() uint64 { return m.frames }
