package power

import (
	"math"
	"testing"
	"testing/quick"

	"ccdem/internal/sim"
)

func newModel(t *testing.T, eng *sim.Engine) *Model {
	t.Helper()
	m, err := NewModel(eng, DefaultParams(), 60, 0.5)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewModel(eng, Params{}, 60, 0.5); err == nil {
		t.Error("nil panel accepted")
	}
	p := DefaultParams()
	if _, err := NewModel(eng, p, 60, 1.5); err == nil {
		t.Error("backlight > 1 accepted")
	}
	if _, err := NewModel(eng, p, 0, 0.5); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestLCDPanelPower(t *testing.T) {
	p := LCDPanel{BaseMW: 60, PerHzMW: 3, BacklightMaxMW: 440}
	at60 := p.PowerMW(60, 0.5, 128)
	at20 := p.PowerMW(20, 0.5, 128)
	if want := 60 + 180 + 220.0; at60 != want {
		t.Errorf("LCD at 60Hz = %v, want %v", at60, want)
	}
	if got := at60 - at20; got != 120 {
		t.Errorf("60→20 Hz refresh saving = %v mW, want 120", got)
	}
	// Luminance must not matter for LCD.
	if p.PowerMW(60, 0.5, 0) != p.PowerMW(60, 0.5, 255) {
		t.Error("LCD power depends on luminance")
	}
	if p.Name() != "lcd" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestOLEDPanelPower(t *testing.T) {
	p := OLEDPanel{BaseMW: 40, PerHzMW: 2, MaxEmissionMW: 600}
	dark := p.PowerMW(60, 1.0, 0)
	bright := p.PowerMW(60, 1.0, 255)
	if bright-dark != 600 {
		t.Errorf("black→white OLED delta = %v, want 600", bright-dark)
	}
	if got := p.PowerMW(60, 0.5, 255) - dark; got != 300 {
		t.Errorf("half-brightness white delta = %v, want 300", got)
	}
	if p.Name() != "oled" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestModelContinuousIntegration(t *testing.T) {
	eng := sim.NewEngine()
	m := newModel(t, eng)
	eng.RunUntil(2 * sim.Second)
	want := 2 * m.InstantMW() // mJ = mW × s
	if got := m.EnergyMJ(); math.Abs(got-want) > 1e-6 {
		t.Errorf("EnergyMJ after 2s = %v, want %v", got, want)
	}
	if got := m.MeanPowerMW(); math.Abs(got-m.InstantMW()) > 1e-6 {
		t.Errorf("MeanPowerMW = %v, want %v", got, m.InstantMW())
	}
}

func TestModelRateChangeChangesPower(t *testing.T) {
	eng := sim.NewEngine()
	m := newModel(t, eng)
	eng.RunUntil(sim.Second)
	p60 := m.InstantMW()
	m.SetRefreshRate(20)
	p20 := m.InstantMW()
	if p60-p20 != 140 { // 40 Hz × 3.5 mW/Hz with default params
		t.Errorf("refresh power delta = %v, want 140", p60-p20)
	}
	eng.RunUntil(2 * sim.Second)
	want := p60 + p20 // 1 s at each
	if got := m.EnergyMJ(); math.Abs(got-want) > 1e-6 {
		t.Errorf("energy after rate change = %v, want %v", got, want)
	}
}

func TestModelFrameRendered(t *testing.T) {
	eng := sim.NewEngine()
	m := newModel(t, eng)
	m.FrameRendered(921600) // full S3 frame
	bd := m.Breakdown()
	want := 1.2 + 4.0*921600*1e-6 // base + per-pixel
	if got := bd[Render]; math.Abs(got-want) > 1e-9 {
		t.Errorf("render energy = %v mJ, want %v", got, want)
	}
	if m.Frames() != 1 {
		t.Errorf("Frames = %d", m.Frames())
	}
}

func TestModelMeterCompare(t *testing.T) {
	eng := sim.NewEngine()
	m := newModel(t, eng)
	m.MeterCompare(sim.Millisecond)
	bd := m.Breakdown()
	if got := bd[MeterOver]; math.Abs(got-0.3) > 1e-9 { // 300 mW × 1 ms
		t.Errorf("meter energy = %v mJ, want 0.3", got)
	}
}

func TestModelBacklightAndLuminance(t *testing.T) {
	eng := sim.NewEngine()
	params := DefaultParams()
	params.Panel = OLEDPanel{BaseMW: 40, PerHzMW: 2, MaxEmissionMW: 600}
	m, err := NewModel(eng, params, 60, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	before := m.InstantMW()
	m.SetMeanLuminance(255)
	if m.InstantMW() <= before {
		t.Error("raising luminance did not raise OLED power")
	}
	m.SetBacklight(0.1)
	if m.InstantMW() >= before {
		t.Error("dimming did not lower OLED power")
	}
}

func TestComponentString(t *testing.T) {
	names := map[Component]string{SoC: "soc", Panel: "panel", Render: "render", MeterOver: "meter"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if Component(99).String() == "" {
		t.Error("unknown component has empty name")
	}
}

func TestMeterSampling(t *testing.T) {
	eng := sim.NewEngine()
	m := newModel(t, eng)
	mt, err := NewMeter(eng, m, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mt.Start()
	eng.RunUntil(sim.Second)
	if n := len(mt.Samples()); n != 10 {
		t.Fatalf("samples = %d, want 10", n)
	}
	// Pure continuous load: every sample equals the instantaneous power.
	for i, s := range mt.Samples() {
		if math.Abs(s.MW-m.InstantMW()) > 1e-6 {
			t.Errorf("sample %d = %v, want %v", i, s.MW, m.InstantMW())
		}
	}
	if math.Abs(mt.MeanMW()-m.InstantMW()) > 1e-6 {
		t.Errorf("MeanMW = %v", mt.MeanMW())
	}
	mt.Stop()
	eng.RunUntil(2 * sim.Second)
	if len(mt.Samples()) != 10 {
		t.Error("meter sampled after Stop")
	}
}

func TestMeterCapturesImpulses(t *testing.T) {
	eng := sim.NewEngine()
	m := newModel(t, eng)
	mt, err := NewMeter(eng, m, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mt.Start()
	// One 10 mJ impulse inside the third interval.
	eng.At(250*sim.Millisecond, func() { m.FrameRendered(2200000) }) // ≈10 mJ
	eng.RunUntil(sim.Second)
	base := m.InstantMW()
	s := mt.Samples()
	if s[2].MW <= base+50 {
		t.Errorf("impulse interval sample = %v, want well above base %v", s[2].MW, base)
	}
	if math.Abs(s[1].MW-base) > 1e-6 || math.Abs(s[3].MW-base) > 1e-6 {
		t.Error("impulse leaked into neighboring samples")
	}
}

func TestMeterValidation(t *testing.T) {
	eng := sim.NewEngine()
	m := newModel(t, eng)
	if _, err := NewMeter(eng, m, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestCompareCostShape(t *testing.T) {
	c := DefaultCompareCost()
	// Paper's anchor: all 921600 pixels ≈ 40 ms — misses the 60 Hz budget.
	d := c.Duration(921600)
	if d < 35*sim.Millisecond || d > 45*sim.Millisecond {
		t.Errorf("full-frame compare = %v, want ≈40ms", d)
	}
	if c.FitsVSyncBudget(921600, 60) {
		t.Error("921K pixels should not fit the 60 Hz budget")
	}
	// Grid sizes up to 36K fit comfortably.
	for _, px := range []int{2304, 4080, 9216, 36864} {
		if !c.FitsVSyncBudget(px, 60) {
			t.Errorf("%d pixels should fit the 60 Hz budget (got %v)", px, c.Duration(px))
		}
	}
}

// Property: compare cost is monotone in pixel count.
func TestCompareCostMonotoneProperty(t *testing.T) {
	c := DefaultCompareCost()
	f := func(a, b uint32) bool {
		pa, pb := int(a%2000000), int(b%2000000)
		if pa > pb {
			pa, pb = pb, pa
		}
		return c.Duration(pa) <= c.Duration(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total energy equals the sum of the component breakdown, and
// never decreases over time.
func TestEnergyConservationProperty(t *testing.T) {
	eng := sim.NewEngine()
	m := newModel(t, eng)
	prev := 0.0
	for i := 0; i < 50; i++ {
		eng.RunUntil(eng.Now() + 37*sim.Millisecond)
		switch i % 4 {
		case 0:
			m.FrameRendered(10000 * i)
		case 1:
			m.SetRefreshRate(20 + (i%5)*10)
		case 2:
			m.MeterCompare(sim.Time(i) * sim.Microsecond)
		}
		total := m.EnergyMJ()
		if total < prev {
			t.Fatalf("energy decreased: %v < %v", total, prev)
		}
		sum := 0.0
		for _, e := range m.Breakdown() {
			sum += e
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("breakdown sum %v != total %v", sum, total)
		}
		prev = total
	}
}

func BenchmarkModelFrameAccounting(b *testing.B) {
	eng := sim.NewEngine()
	m, _ := NewModel(eng, DefaultParams(), 60, 0.5)
	for i := 0; i < b.N; i++ {
		m.FrameRendered(921600)
	}
}
