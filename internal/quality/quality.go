// Package quality computes display-smoothness metrics from a run's
// recorded traces. The paper's display-quality metric (estimated/actual
// content rate) is a run-level average; users perceive jank as *episodes*
// — stretches of time where frames are dropping — so this package also
// reports how dropping distributes over time: how often it happens, how
// bad the worst second is, and how long the longest episode lasts.
package quality

import (
	"fmt"

	"ccdem"
	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

// Report summarizes smoothness over a run.
type Report struct {
	// ThresholdFPS is the drop rate above which an interval counts as
	// janky (the paper notes users notice ≈3 fps of dropping).
	ThresholdFPS float64

	MeanDropFPS float64
	MaxDropFPS  float64
	// JankyFraction is the fraction of trace intervals above threshold.
	JankyFraction float64
	// LongestEpisode is the longest contiguous janky stretch.
	LongestEpisode sim.Time
	// Episodes is the number of distinct janky stretches.
	Episodes int

	// Drops is the per-interval drop series (intended − displayed, ≥ 0).
	Drops *trace.Series
}

// DefaultThresholdFPS follows the paper's observation that users feel
// uncomfortable above ≈3 fps of frame dropping.
const DefaultThresholdFPS = 3.0

// Analyze computes a smoothness report from recorded traces. thresholdFPS
// ≤ 0 selects DefaultThresholdFPS.
func Analyze(tr ccdem.Traces, thresholdFPS float64) (Report, error) {
	if thresholdFPS <= 0 {
		thresholdFPS = DefaultThresholdFPS
	}
	if tr.Intended == nil || tr.Content == nil {
		return Report{}, fmt.Errorf("quality: traces missing intended/content series")
	}
	if tr.Intended.Len() != tr.Content.Len() {
		return Report{}, fmt.Errorf("quality: series lengths differ (%d vs %d)",
			tr.Intended.Len(), tr.Content.Len())
	}
	if tr.Intended.Len() == 0 {
		return Report{}, fmt.Errorf("quality: empty traces")
	}

	r := Report{ThresholdFPS: thresholdFPS, Drops: trace.NewSeries("dropped fps")}
	var (
		sum          float64
		jankyCount   int
		episodeStart sim.Time = -1
		prevT        sim.Time
	)
	endEpisode := func(endT sim.Time) {
		if episodeStart < 0 {
			return
		}
		r.Episodes++
		if d := endT - episodeStart; d > r.LongestEpisode {
			r.LongestEpisode = d
		}
		episodeStart = -1
	}
	for i := range tr.Intended.Points {
		t := tr.Intended.Points[i].T
		drop := tr.Intended.Points[i].V - tr.Content.Points[i].V
		if drop < 0 {
			drop = 0
		}
		r.Drops.Add(t, drop)
		sum += drop
		if drop > r.MaxDropFPS {
			r.MaxDropFPS = drop
		}
		if drop > thresholdFPS {
			jankyCount++
			if episodeStart < 0 {
				episodeStart = prevT
			}
		} else {
			endEpisode(t)
		}
		prevT = t
	}
	endEpisode(prevT)
	n := tr.Intended.Len()
	r.MeanDropFPS = sum / float64(n)
	r.JankyFraction = float64(jankyCount) / float64(n)
	return r, nil
}

// String renders the report in one paragraph.
func (r Report) String() string {
	return fmt.Sprintf(
		"dropped %.2f fps mean (worst interval %.1f fps); %.1f%% of time above %.1f fps"+
			" across %d episodes (longest %v)",
		r.MeanDropFPS, r.MaxDropFPS, 100*r.JankyFraction, r.ThresholdFPS,
		r.Episodes, r.LongestEpisode)
}
