package quality

import (
	"math"
	"strings"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/input"
	"ccdem/internal/sim"
	"ccdem/internal/trace"
)

// synthetic builds traces with a given drop pattern (one point per 250 ms).
func synthetic(drops []float64) ccdem.Traces {
	intended := trace.NewSeries("intended")
	content := trace.NewSeries("content")
	for i, d := range drops {
		t := sim.Time(i+1) * 250 * sim.Millisecond
		intended.Add(t, 30)
		content.Add(t, 30-d)
	}
	return ccdem.Traces{Intended: intended, Content: content}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(ccdem.Traces{}, 3); err == nil {
		t.Error("empty traces accepted")
	}
	bad := synthetic([]float64{1, 2})
	bad.Content = trace.NewSeries("short")
	bad.Content.Add(sim.Second, 1)
	if _, err := Analyze(bad, 3); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestAnalyzeSmoothRun(t *testing.T) {
	r, err := Analyze(synthetic([]float64{0, 0.5, 1, 0, 0}), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.JankyFraction != 0 || r.Episodes != 0 || r.LongestEpisode != 0 {
		t.Errorf("smooth run reported jank: %+v", r)
	}
	if math.Abs(r.MeanDropFPS-0.3) > 1e-9 {
		t.Errorf("mean drop = %v, want 0.3", r.MeanDropFPS)
	}
	if r.MaxDropFPS != 1 {
		t.Errorf("max drop = %v, want 1", r.MaxDropFPS)
	}
}

func TestAnalyzeEpisodes(t *testing.T) {
	// Two episodes: intervals 2-3 and 6 (0-indexed), threshold 3.
	r, err := Analyze(synthetic([]float64{0, 0, 5, 8, 0, 0, 4, 0}), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Episodes != 2 {
		t.Errorf("episodes = %d, want 2", r.Episodes)
	}
	// First episode spans from the point before interval 2 to interval 4:
	// (0.5s → 1.25s) = 750 ms... measured from previous sample time to the
	// first below-threshold sample.
	if r.LongestEpisode < 500*sim.Millisecond || r.LongestEpisode > 1000*sim.Millisecond {
		t.Errorf("longest episode = %v, want ≈750ms", r.LongestEpisode)
	}
	if math.Abs(r.JankyFraction-3.0/8) > 1e-9 {
		t.Errorf("janky fraction = %v, want 3/8", r.JankyFraction)
	}
	if r.MaxDropFPS != 8 {
		t.Errorf("max = %v", r.MaxDropFPS)
	}
	if !strings.Contains(r.String(), "episodes") {
		t.Error("rendering missing episodes")
	}
}

func TestAnalyzeTrailingEpisodeCloses(t *testing.T) {
	r, err := Analyze(synthetic([]float64{0, 0, 6, 7}), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Episodes != 1 {
		t.Errorf("trailing episode not closed: %d", r.Episodes)
	}
}

func TestAnalyzeDefaultThreshold(t *testing.T) {
	r, err := Analyze(synthetic([]float64{0, 4}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.ThresholdFPS != DefaultThresholdFPS {
		t.Errorf("threshold = %v", r.ThresholdFPS)
	}
}

// TestAnalyzeOnRealRun ties the analyzer to actual device traces: under
// section-only control, an interactive app shows jank episodes; with
// boosting they nearly vanish.
func TestAnalyzeOnRealRun(t *testing.T) {
	run := func(mode ccdem.GovernorMode) Report {
		dev, err := ccdem.NewDevice(ccdem.Config{Governor: mode})
		if err != nil {
			t.Fatal(err)
		}
		p, _ := app.ByName("Facebook")
		if _, err := dev.InstallApp(p); err != nil {
			t.Fatal(err)
		}
		mk, err := input.NewMonkey(6, input.DefaultMonkeyConfig())
		if err != nil {
			t.Fatal(err)
		}
		dev.PlayScript(mk.Script(30*sim.Second, 720, 1280))
		dev.Run(30 * sim.Second)
		r, err := Analyze(dev.Traces(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sect := run(ccdem.GovernorSection)
	boost := run(ccdem.GovernorSectionBoost)
	if sect.Episodes == 0 {
		t.Error("section-only Facebook shows no jank episodes")
	}
	if boost.JankyFraction >= sect.JankyFraction {
		t.Errorf("boost janky fraction %v not below section %v",
			boost.JankyFraction, sect.JankyFraction)
	}
}
