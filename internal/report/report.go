// Package report renders a complete, human-readable session report from a
// device run: configuration, power and quality summary, energy breakdown,
// rate traces and governor activity. It is the artifact a practitioner
// files after a measurement session — cmd/ccdem-run emits one with
// -report.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"ccdem"
	"ccdem/internal/power"
	"ccdem/internal/quality"
	"ccdem/internal/trace"
)

// Session bundles everything a report needs.
type Session struct {
	Title  string
	App    string
	Stats  ccdem.Stats
	Traces ccdem.Traces
	// Notes are free-form lines appended to the report.
	Notes []string
}

// Write renders the report as markdown-ish text.
func Write(w io.Writer, s Session) error {
	if s.Stats.Duration <= 0 {
		return fmt.Errorf("report: session has no duration")
	}
	var sb strings.Builder
	title := s.Title
	if title == "" {
		title = "ccdem session report"
	}
	sb.WriteString(fmt.Sprintf("# %s\n\n", title))
	sb.WriteString(fmt.Sprintf("workload: %s — configuration: %s — duration: %s\n\n",
		orUnknown(s.App), s.Stats.Mode, s.Stats.Duration))

	sb.WriteString("## Power\n\n")
	sb.WriteString(tableString(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "mean power\t%.0f mW (±%.0f)\n", s.Stats.MeanPowerMW, s.Stats.PowerStdMW)
		fmt.Fprintf(tw, "energy\t%.0f mJ\n", s.Stats.EnergyMJ)
		if len(s.Traces.Power) > 1 {
			vals := make([]float64, len(s.Traces.Power))
			for i, p := range s.Traces.Power {
				vals[i] = p.MW
			}
			fmt.Fprintf(tw, "power p5/p95\t%.0f / %.0f mW\n",
				trace.Percentile(vals, 5), trace.Percentile(vals, 95))
			fmt.Fprintf(tw, "mean 95%% CI\t±%.1f mW\n", trace.CI95(vals))
		}
	}))

	sb.WriteString("\n## Energy breakdown\n\n")
	type comp struct {
		c power.Component
		e float64
	}
	var comps []comp
	total := 0.0
	for c, e := range s.Stats.Breakdown {
		comps = append(comps, comp{c, e})
		total += e
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].e > comps[j].e })
	sb.WriteString(tableString(func(tw *tabwriter.Writer) {
		for _, c := range comps {
			share := 0.0
			if total > 0 {
				share = 100 * c.e / total
			}
			fmt.Fprintf(tw, "%s\t%.0f mJ\t%.1f%%\n", c.c, c.e, share)
		}
	}))

	sb.WriteString("\n## Display\n\n")
	sb.WriteString(tableString(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "frame rate\t%.1f fps\n", s.Stats.FrameRate)
		fmt.Fprintf(tw, "content rate\t%.1f fps (of %.1f intended)\n", s.Stats.ContentRate, s.Stats.IntendedRate)
		fmt.Fprintf(tw, "redundant rate\t%.1f fps\n", s.Stats.RedundantRate)
		fmt.Fprintf(tw, "display quality\t%.1f%%\n", 100*s.Stats.DisplayQuality)
		fmt.Fprintf(tw, "frames dropped\t%.2f fps\n", s.Stats.DroppedFPS)
		fmt.Fprintf(tw, "mean refresh\t%.1f Hz (%d switches)\n", s.Stats.MeanRefreshHz, s.Stats.RefreshSwitches)
		if s.Stats.BoostCount > 0 {
			fmt.Fprintf(tw, "touch events boosted\t%d\n", s.Stats.BoostCount)
		}
	}))

	if s.Traces.Intended != nil && s.Traces.Intended.Len() > 0 {
		if q, err := quality.Analyze(s.Traces, 0); err == nil {
			sb.WriteString("\n## Smoothness\n\n")
			sb.WriteString("    " + q.String() + "\n")
		}
	}

	if s.Traces.Content != nil && s.Traces.Content.Len() > 0 {
		sb.WriteString("\n## Traces\n\n")
		width := s.Traces.Content.Len()
		if width > 80 {
			width = 80
		}
		line := func(name string, sr *trace.Series) {
			sb.WriteString(fmt.Sprintf("    %-22s %s\n", name, trace.Sparkline(sr.Values(), width)))
		}
		line("content rate", s.Traces.Content)
		line("frame rate", s.Traces.Frame)
		line("refresh rate", s.Traces.Refresh)
		if len(s.Traces.Power) > 0 {
			ps := trace.NewSeries("power")
			for _, p := range s.Traces.Power {
				ps.Add(p.T, p.MW)
			}
			line("power", ps)
		}
	}

	if len(s.Notes) > 0 {
		sb.WriteString("\n## Notes\n\n")
		for _, n := range s.Notes {
			sb.WriteString(fmt.Sprintf("- %s\n", n))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Comparison renders a paired baseline-vs-managed report section.
type Comparison struct {
	App      string
	Baseline ccdem.Stats
	Managed  ccdem.Stats
}

// WriteComparison renders the paired summary.
func WriteComparison(w io.Writer, c Comparison) error {
	if c.Baseline.Duration <= 0 || c.Managed.Duration <= 0 {
		return fmt.Errorf("report: comparison sessions missing")
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("# Paired comparison: %s\n\n", orUnknown(c.App)))
	saved := c.Baseline.MeanPowerMW - c.Managed.MeanPowerMW
	pct := 0.0
	if c.Baseline.MeanPowerMW > 0 {
		pct = 100 * saved / c.Baseline.MeanPowerMW
	}
	sb.WriteString(tableString(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "\t%s\t%s\n", c.Baseline.Mode, c.Managed.Mode)
		fmt.Fprintf(tw, "mean power\t%.0f mW\t%.0f mW\n", c.Baseline.MeanPowerMW, c.Managed.MeanPowerMW)
		fmt.Fprintf(tw, "mean refresh\t%.1f Hz\t%.1f Hz\n", c.Baseline.MeanRefreshHz, c.Managed.MeanRefreshHz)
		fmt.Fprintf(tw, "frame rate\t%.1f fps\t%.1f fps\n", c.Baseline.FrameRate, c.Managed.FrameRate)
		fmt.Fprintf(tw, "display quality\t%.1f%%\t%.1f%%\n",
			100*c.Baseline.DisplayQuality, 100*c.Managed.DisplayQuality)
	}))
	sb.WriteString(fmt.Sprintf("\nsaved: %.0f mW (%.1f%%)\n", saved, pct))
	_, err := io.WriteString(w, sb.String())
	return err
}

func orUnknown(s string) string {
	if s == "" {
		return "(unknown)"
	}
	return s
}

func tableString(fn func(*tabwriter.Writer)) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fn(tw)
	tw.Flush()
	// Indent as a markdown code block for alignment preservation.
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
