package report

import (
	"bytes"
	"strings"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

func runSession(t *testing.T, mode ccdem.GovernorMode) (ccdem.Stats, ccdem.Traces) {
	t.Helper()
	dev, err := ccdem.NewDevice(ccdem.Config{Governor: mode})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := app.ByName("Jelly Splash")
	if _, err := dev.InstallApp(p); err != nil {
		t.Fatal(err)
	}
	mk, err := input.NewMonkey(2, input.DefaultMonkeyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev.PlayScript(mk.Script(10*sim.Second, 720, 1280))
	dev.Run(10 * sim.Second)
	return dev.Stats(), dev.Traces()
}

func TestWriteSessionReport(t *testing.T) {
	st, tr := runSession(t, ccdem.GovernorSectionBoost)
	var buf bytes.Buffer
	err := Write(&buf, Session{
		Title:  "test session",
		App:    "Jelly Splash",
		Stats:  st,
		Traces: tr,
		Notes:  []string{"seed 2", "short run"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# test session", "Jelly Splash", "section+boost",
		"## Power", "## Energy breakdown", "## Display", "## Smoothness", "## Traces", "## Notes",
		"mean power", "display quality", "refresh rate", "seed 2",
		"panel", "soc", "render",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteEmptySessionErrors(t *testing.T) {
	if err := Write(&bytes.Buffer{}, Session{}); err == nil {
		t.Error("empty session accepted")
	}
}

func TestWriteDefaultTitle(t *testing.T) {
	st, tr := runSession(t, ccdem.GovernorOff)
	var buf bytes.Buffer
	if err := Write(&buf, Session{Stats: st, Traces: tr}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# ccdem session report") {
		t.Error("default title missing")
	}
	if !strings.Contains(buf.String(), "(unknown)") {
		t.Error("unknown app placeholder missing")
	}
}

func TestWriteComparison(t *testing.T) {
	base, _ := runSession(t, ccdem.GovernorOff)
	managed, _ := runSession(t, ccdem.GovernorSectionBoost)
	var buf bytes.Buffer
	err := WriteComparison(&buf, Comparison{App: "Jelly Splash", Baseline: base, Managed: managed})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Paired comparison") || !strings.Contains(out, "saved:") {
		t.Errorf("comparison rendering: %s", out)
	}
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "section+boost") {
		t.Error("mode columns missing")
	}
}

func TestWriteComparisonValidation(t *testing.T) {
	if err := WriteComparison(&bytes.Buffer{}, Comparison{}); err == nil {
		t.Error("empty comparison accepted")
	}
}
