// Package scenario composes multi-phase device sessions: a sequence of
// (foreground app, duration, interaction) phases executed on one device,
// with app switching handled by pausing and resuming workloads. A day of
// phone use is a scenario; the battery and report tooling consume its
// per-phase results.
package scenario

import (
	"fmt"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/input"
	"ccdem/internal/sim"
)

// Phase is one stretch of a session: the named workload runs in the
// foreground for Duration while the optional Monkey seed drives
// interaction.
type Phase struct {
	App      app.Params
	Duration sim.Time
	// Seed generates a phase-local Monkey script; 0 leaves the phase
	// hands-off (video watching, reading).
	Seed int64
}

// Scenario is an ordered list of phases.
type Scenario struct {
	Name   string
	Phases []Phase
}

// Validate reports structural errors.
func (sc Scenario) Validate() error {
	if len(sc.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", sc.Name)
	}
	for i, ph := range sc.Phases {
		if ph.Duration <= 0 {
			return fmt.Errorf("scenario %q: phase %d has non-positive duration", sc.Name, i)
		}
		if err := ph.App.Validate(); err != nil {
			return fmt.Errorf("scenario %q: phase %d: %w", sc.Name, i, err)
		}
	}
	return nil
}

// PhaseResult captures the state delta of one phase.
type PhaseResult struct {
	App      string
	Duration sim.Time
	// MeanPowerMW is the mean power over this phase alone.
	MeanPowerMW float64
	// MeanRefreshHz is approximated from the refresh trace within the
	// phase window.
	MeanRefreshHz float64
}

// Result is a completed scenario run.
type Result struct {
	Scenario string
	Total    ccdem.Stats
	Phases   []PhaseResult
}

// Run executes the scenario on a freshly created device with the given
// configuration. Workloads are installed on first use and paused when
// their phase ends; revisiting an app resumes the same instance with its
// state (scroll position, board) intact.
func Run(cfg ccdem.Config, sc Scenario) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	dev, err := ccdem.NewDevice(cfg)
	if err != nil {
		return nil, err
	}
	models := map[string]*app.Model{}
	res := &Result{Scenario: sc.Name}

	var current *app.Model
	for i, ph := range sc.Phases {
		if current != nil {
			current.Pause()
		}
		m, ok := models[ph.App.Name]
		if !ok {
			m, err = dev.InstallApp(ph.App)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: phase %d: %w", sc.Name, i, err)
			}
			models[ph.App.Name] = m
		} else {
			m.Resume()
		}
		current = m

		if ph.Seed != 0 {
			mk, err := input.NewMonkey(ph.Seed, input.DefaultMonkeyConfig())
			if err != nil {
				return nil, err
			}
			dev.PlayScript(mk.Script(ph.Duration, dev.SurfaceManager().Framebuffer().Width(),
				dev.SurfaceManager().Framebuffer().Height()))
		}

		startEnergy := dev.PowerModel().EnergyMJ()
		startT := dev.Engine().Now()
		dev.Run(ph.Duration)
		phaseEnergy := dev.PowerModel().EnergyMJ() - startEnergy
		refresh := dev.Traces().Refresh.Between(startT, dev.Engine().Now())
		res.Phases = append(res.Phases, PhaseResult{
			App:           ph.App.Name,
			Duration:      ph.Duration,
			MeanPowerMW:   phaseEnergy / ph.Duration.Seconds(),
			MeanRefreshHz: refresh.Mean(),
		})
	}
	res.Total = dev.Stats()
	return res, nil
}

// String renders the per-phase table.
func (r *Result) String() string {
	s := fmt.Sprintf("Scenario %q (%s total, %.0f mW mean):\n",
		r.Scenario, r.Total.Duration, r.Total.MeanPowerMW)
	for i, ph := range r.Phases {
		s += fmt.Sprintf("  phase %d: %-16s %8s  %6.0f mW  %5.1f Hz\n",
			i+1, ph.App, ph.Duration, ph.MeanPowerMW, ph.MeanRefreshHz)
	}
	return s
}
