package scenario

import (
	"strings"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/sim"
)

func mustParams(t *testing.T, name string) app.Params {
	t.Helper()
	p, ok := app.ByName(name)
	if !ok {
		t.Fatalf("%s not in catalog", name)
	}
	return p
}

func TestScenarioValidation(t *testing.T) {
	if err := (Scenario{Name: "empty"}).Validate(); err == nil {
		t.Error("empty scenario accepted")
	}
	bad := Scenario{Name: "bad", Phases: []Phase{{Duration: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-duration phase accepted")
	}
	if _, err := Run(ccdem.Config{}, Scenario{Name: "x"}); err == nil {
		t.Error("Run accepted invalid scenario")
	}
}

func TestScenarioRunPhases(t *testing.T) {
	sc := Scenario{
		Name: "game-then-chat",
		Phases: []Phase{
			{App: mustParams(t, "Jelly Splash"), Duration: 10 * sim.Second, Seed: 4},
			{App: mustParams(t, "KakaoTalk"), Duration: 10 * sim.Second, Seed: 5},
		},
	}
	res, err := Run(ccdem.Config{Governor: ccdem.GovernorSectionBoost}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	if res.Total.Duration != 20*sim.Second {
		t.Errorf("total duration = %v", res.Total.Duration)
	}
	// The game phase burns more power and runs at higher refresh than the
	// messenger phase.
	game, chat := res.Phases[0], res.Phases[1]
	if game.MeanPowerMW <= chat.MeanPowerMW {
		t.Errorf("game %v mW not above chat %v mW", game.MeanPowerMW, chat.MeanPowerMW)
	}
	if game.MeanRefreshHz <= chat.MeanRefreshHz {
		t.Errorf("game %v Hz not above chat %v Hz", game.MeanRefreshHz, chat.MeanRefreshHz)
	}
	// Energy accounting is consistent: phase energies sum to the total.
	sum := 0.0
	for _, ph := range res.Phases {
		sum += ph.MeanPowerMW * ph.Duration.Seconds()
	}
	if diff := sum - res.Total.EnergyMJ; diff > 1 || diff < -1 {
		t.Errorf("phase energy sum %v != total %v", sum, res.Total.EnergyMJ)
	}
	if !strings.Contains(res.String(), "KakaoTalk") {
		t.Error("rendering missing phase app")
	}
}

func TestScenarioRevisitResumesApp(t *testing.T) {
	jelly := mustParams(t, "Jelly Splash")
	kakao := mustParams(t, "KakaoTalk")
	sc := Scenario{
		Name: "revisit",
		Phases: []Phase{
			{App: jelly, Duration: 5 * sim.Second},
			{App: kakao, Duration: 5 * sim.Second},
			{App: jelly, Duration: 5 * sim.Second},
		},
	}
	res, err := Run(ccdem.Config{Governor: ccdem.GovernorSection}, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 3 resumed the same game instance: its power returns to
	// game-like levels (the 60 fps loop restarts).
	if res.Phases[2].MeanPowerMW <= res.Phases[1].MeanPowerMW {
		t.Errorf("resumed game %v mW not above messenger %v mW",
			res.Phases[2].MeanPowerMW, res.Phases[1].MeanPowerMW)
	}
}

func TestScenarioHandsOffPhase(t *testing.T) {
	sc := Scenario{
		Name: "video-night",
		Phases: []Phase{
			{App: mustParams(t, "MX Player"), Duration: 10 * sim.Second}, // no seed: hands-off
		},
	}
	res, err := Run(ccdem.Config{Governor: ccdem.GovernorSection}, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Hands-off video settles at 30 Hz.
	if hz := res.Phases[0].MeanRefreshHz; hz < 28 || hz > 40 {
		t.Errorf("video refresh = %v, want ≈30", hz)
	}
}
