package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ccdem/internal/app"
	"ccdem/internal/sim"
)

// Scenario serialization: sessions as JSON documents, so usage profiles
// can be shared and replayed without recompiling (cmd/ccdem-scenario).
// Phases reference catalog apps by name or embed a custom workload.

type wireScenario struct {
	Version int         `json:"version"`
	Name    string      `json:"name"`
	Phases  []wirePhase `json:"phases"`
}

type wirePhase struct {
	// App names a catalog workload; Workload embeds a custom one.
	// Exactly one must be set.
	App        string          `json:"app,omitempty"`
	Workload   json.RawMessage `json:"workload,omitempty"`
	DurationMS int64           `json:"duration_ms"`
	Seed       int64           `json:"seed,omitempty"`
}

const scenarioWireVersion = 1

// WriteJSON serializes the scenario. Phases whose app exists in the
// catalog are written by name; others are embedded in full.
func (sc Scenario) WriteJSON(w io.Writer) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	ws := wireScenario{Version: scenarioWireVersion, Name: sc.Name}
	for _, ph := range sc.Phases {
		wp := wirePhase{DurationMS: int64(ph.Duration / sim.Millisecond), Seed: ph.Seed}
		if cat, ok := app.ByName(ph.App.Name); ok && cat == ph.App {
			wp.App = ph.App.Name
		} else {
			var buf bytes.Buffer
			if err := app.WriteParams(&buf, []app.Params{ph.App}); err != nil {
				return err
			}
			// WriteParams emits an array; embed its single element.
			var arr []json.RawMessage
			if err := json.Unmarshal(buf.Bytes(), &arr); err != nil || len(arr) != 1 {
				return fmt.Errorf("scenario: embedding workload: %v", err)
			}
			wp.Workload = arr[0]
		}
		ws.Phases = append(ws.Phases, wp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ws)
}

// ReadScenario parses a scenario document, resolving catalog names and
// validating embedded workloads.
func ReadScenario(r io.Reader) (Scenario, error) {
	var ws wireScenario
	if err := json.NewDecoder(r).Decode(&ws); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parsing: %w", err)
	}
	if ws.Version != scenarioWireVersion {
		return Scenario{}, fmt.Errorf("scenario: unsupported version %d", ws.Version)
	}
	sc := Scenario{Name: ws.Name}
	for i, wp := range ws.Phases {
		ph := Phase{Duration: sim.Time(wp.DurationMS) * sim.Millisecond, Seed: wp.Seed}
		switch {
		case wp.App != "" && wp.Workload != nil:
			return Scenario{}, fmt.Errorf("scenario: phase %d sets both app and workload", i)
		case wp.App != "":
			p, ok := app.ByName(wp.App)
			if !ok {
				return Scenario{}, fmt.Errorf("scenario: phase %d: app %q not in catalog", i, wp.App)
			}
			ph.App = p
		case wp.Workload != nil:
			arrJSON := append([]byte("["), wp.Workload...)
			arrJSON = append(arrJSON, ']')
			ps, err := app.ReadParams(bytes.NewReader(arrJSON))
			if err != nil {
				return Scenario{}, fmt.Errorf("scenario: phase %d workload: %w", i, err)
			}
			ph.App = ps[0]
		default:
			return Scenario{}, fmt.Errorf("scenario: phase %d names no workload", i)
		}
		sc.Phases = append(sc.Phases, ph)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}
