package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ccdem"
	"ccdem/internal/app"
	"ccdem/internal/sim"
)

func TestScenarioJSONRoundTripCatalog(t *testing.T) {
	sc := Scenario{
		Name: "rt",
		Phases: []Phase{
			{App: mustParams(t, "Facebook"), Duration: 10 * sim.Second, Seed: 3},
			{App: mustParams(t, "Jelly Splash"), Duration: 20 * sim.Second},
		},
	}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Catalog apps serialize by name, not embedded.
	if !strings.Contains(buf.String(), `"app": "Facebook"`) {
		t.Errorf("catalog app not referenced by name:\n%s", buf.String())
	}
	got, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, got) {
		t.Error("round trip changed the scenario")
	}
}

func TestScenarioJSONEmbedsCustomWorkload(t *testing.T) {
	custom := app.Params{
		Name: "my-widget", Cat: app.General, Style: app.StylePulse,
		IdleContentFPS: 1, IdleInvalidateFPS: 5,
		TouchContentFPS: 10, TouchInvalidateFPS: 20,
	}
	sc := Scenario{Name: "custom", Phases: []Phase{{App: custom, Duration: 5 * sim.Second}}}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"workload"`) || !strings.Contains(buf.String(), "my-widget") {
		t.Errorf("custom workload not embedded:\n%s", buf.String())
	}
	got, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, got) {
		t.Error("round trip changed the custom scenario")
	}
}

func TestReadScenarioValidation(t *testing.T) {
	cases := map[string]string{
		"garbage":     "x",
		"bad version": `{"version":2,"name":"x","phases":[{"app":"Facebook","duration_ms":1000}]}`,
		"no phases":   `{"version":1,"name":"x","phases":[]}`,
		"unknown app": `{"version":1,"name":"x","phases":[{"app":"Nope","duration_ms":1000}]}`,
		"no workload": `{"version":1,"name":"x","phases":[{"duration_ms":1000}]}`,
		"both":        `{"version":1,"name":"x","phases":[{"app":"Facebook","workload":{},"duration_ms":1000}]}`,
		"zero dur":    `{"version":1,"name":"x","phases":[{"app":"Facebook","duration_ms":0}]}`,
		"bad embed":   `{"version":1,"name":"x","phases":[{"workload":{"name":""},"duration_ms":1000}]}`,
	}
	for name, in := range cases {
		if _, err := ReadScenario(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadedScenarioRuns(t *testing.T) {
	in := `{"version":1,"name":"mini","phases":[
		{"app":"Weather","duration_ms":3000,"seed":9},
		{"app":"Tiny Flashlight","duration_ms":3000}
	]}`
	sc, err := ReadScenario(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ccdem.Config{Governor: ccdem.GovernorSection}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 || res.Total.Duration != 6*sim.Second {
		t.Errorf("result = %+v", res)
	}
}
