// Package sim provides the discrete-event simulation core used by every
// other subsystem in ccdem: a virtual microsecond clock and an event queue.
//
// The paper's system runs on a real Galaxy S3; this reproduction runs the
// identical control pipeline against a simulated display stack, so all
// timing (V-Sync, governor control periods, Monkey input scripts, Monsoon
// power samples) is expressed in virtual time. The engine is fully
// deterministic: events scheduled for the same instant fire in scheduling
// order, and nothing reads the host clock.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp or duration in microseconds. Microsecond
// resolution comfortably covers everything the reproduction needs: the
// fastest recurring activity is the Monsoon-style power sampler at 5 kHz
// (200 µs) and the shortest display interval is 1/60 s (16667 µs).
type Time int64

// Convenient duration units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Hz returns the period of a rate given in events per second. Hz(60) is the
// 60 Hz V-Sync interval. It panics on non-positive rates, which are always
// programming errors in this codebase.
func Hz(rate float64) Time {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: non-positive rate %v", rate))
	}
	return Time(float64(Second) / rate)
}

// event is a scheduled callback. Fired and canceled events are recycled
// through the engine's free list, so steady-state scheduling (V-Sync,
// pacers, governor ticks) allocates nothing; gen guards stale Handles
// against acting on a recycled slot.
type event struct {
	at  Time
	seq uint64 // tie-breaker preserving scheduling order
	fn  func()

	index    int // heap index, -1 once popped
	canceled bool
	gen      uint64 // bumped on every recycle; Handles capture it
	nextFree *event // free-list link, nil while scheduled
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use with the clock at t=0.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	free   *event // recycled events, reused by At/After/Every
}

// allocEvent takes an event from the free list, or allocates a fresh one.
func (e *Engine) allocEvent() *event {
	if ev := e.free; ev != nil {
		e.free = ev.nextFree
		ev.nextFree = nil
		return ev
	}
	return &event{}
}

// recycleEvent returns a popped event to the free list. The generation
// bump invalidates any Handle still pointing at it.
func (e *Engine) recycleEvent(ev *event) {
	ev.fn = nil
	ev.canceled = false
	ev.gen++
	ev.nextFree = e.free
	e.free = ev
}

// NewEngine returns a fresh engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Reset returns the engine to its initial state — clock at zero, no
// scheduled events — while keeping the event free list, so a recycled
// engine schedules its next run's events allocation-free. Every
// outstanding Handle and Ticker is invalidated: pending events are
// recycled (generation-bumped), never fired.
func (e *Engine) Reset() {
	for _, ev := range e.events {
		ev.index = -1
		e.recycleEvent(ev)
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-fired events (including
// canceled events that have not been reaped).
func (e *Engine) Pending() int { return len(e.events) }

// Handle identifies a scheduled event and allows cancellation.
type Handle struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op (the event slot may since have been
// recycled for an unrelated event; the generation check keeps a stale
// Handle from touching it). Cancel on a zero Handle is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.canceled = true
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) is an error in simulation logic and panics.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.allocEvent()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev, ev.gen}
}

// After schedules fn to run d microseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn to run first at time start and then every period
// thereafter, until the returned Ticker is stopped. The period must be
// positive.
func (e *Engine) Every(start, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	// Bind the tick method value once: rescheduling with t.tick directly
	// would allocate a fresh bound-method closure on every tick.
	t.tickFn = t.tick
	t.handle = e.At(start, t.tickFn)
	return t
}

// Ticker is a recurring event created by Engine.Every.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	tickFn  func() // t.tick, bound once
	handle  Handle
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have called Stop
		t.handle = t.eng.After(t.period, t.tickFn)
	}
}

// Stop cancels all future ticks. Safe to call multiple times and from
// within the tick callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired (false when the queue is empty).
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			e.recycleEvent(ev)
			continue
		}
		at, fn := ev.at, ev.fn
		// Recycle before firing: fn may schedule new events, which can then
		// reuse this slot; the generation bump keeps stale Handles inert.
		e.recycleEvent(ev)
		e.now = at
		fn()
		return true
	}
	return false
}

// RunUntil fires every event scheduled strictly before or at time t and
// then advances the clock to exactly t. Events scheduled during the run are
// honored if they fall within the horizon.
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is before now %v", t, e.now))
	}
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			e.recycleEvent(next)
			continue
		}
		if next.at > t {
			break
		}
		heap.Pop(&e.events)
		at, fn := next.at, next.fn
		e.recycleEvent(next)
		e.now = at
		fn()
	}
	e.now = t
}

// Run drains the event queue completely. Use with care: recurring tickers
// never drain, so most callers want RunUntil.
func (e *Engine) Run() {
	for e.Step() {
	}
}
