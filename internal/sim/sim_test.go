package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Errorf("FromSeconds(0.25) = %v, want 250ms", got)
	}
	if got := Hz(60); got != Time(16666) {
		t.Errorf("Hz(60) = %d µs, want 16666", got)
	}
	if got := Hz(20); got != 50*Millisecond {
		t.Errorf("Hz(20) = %v, want 50ms", got)
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500s" {
		t.Errorf("String() = %q, want %q", got, "1.500s")
	}
}

func TestHzPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Hz(0) did not panic")
		}
	}()
	Hz(0)
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Millisecond, func() { got = append(got, 3) })
	e.At(10*Millisecond, func() { got = append(got, 1) })
	e.At(20*Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("firing order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30*Millisecond {
		t.Errorf("Now() = %v, want 30ms", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10*Millisecond, func() {
		e.After(5*Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 15*Millisecond {
		t.Errorf("nested After fired at %v, want 15ms", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(10*Millisecond, func() { fired = true })
	h.Cancel()
	h.Cancel() // double-cancel is a no-op
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	Handle{}.Cancel() // zero handle is a no-op
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at * Millisecond
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25 * Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 25*Millisecond {
		t.Errorf("Now() = %v, want 25ms", e.Now())
	}
	e.RunUntil(100 * Millisecond)
	if len(fired) != 4 {
		t.Errorf("fired %d events total, want 4", len(fired))
	}
	if e.Now() != 100*Millisecond {
		t.Errorf("Now() = %v, want 100ms", e.Now())
	}
}

func TestEngineRunUntilIncludesBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(50*Millisecond, func() { fired = true })
	e.RunUntil(50 * Millisecond)
	if !fired {
		t.Error("event at the RunUntil boundary did not fire")
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.RunUntil(10 * Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5*Millisecond, func() {})
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := e.Every(10*Millisecond, 20*Millisecond, func() {
		ticks = append(ticks, e.Now())
	})
	e.RunUntil(75 * Millisecond)
	tk.Stop()
	e.RunUntil(200 * Millisecond)
	want := []Time{10, 30, 50, 70}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want times %v (ms)", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i]*Millisecond {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i]*Millisecond)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.Every(0, 10*Millisecond, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(Second)
	if n != 3 {
		t.Errorf("ticker fired %d times after in-callback Stop, want 3", n)
	}
}

// Property: for any batch of events with random times, the engine fires
// them in non-decreasing time order and the clock matches each event's
// scheduled time.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delaysRaw {
			at := Time(d) * Microsecond
			at2 := at
			e.At(at, func() {
				if e.Now() != at2 {
					t.Errorf("clock %v != scheduled %v", e.Now(), at2)
				}
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving RunUntil horizons never changes the set of fired
// events compared with a single Run, for events within the final horizon.
func TestEngineRunUntilEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		times := make([]Time, 40)
		for i := range times {
			times[i] = Time(rng.Intn(100000))
		}
		run := func(horizons []Time) []Time {
			e := NewEngine()
			var fired []Time
			for _, at := range times {
				at := at
				e.At(at, func() { fired = append(fired, at) })
			}
			for _, h := range horizons {
				e.RunUntil(h)
			}
			return fired
		}
		single := run([]Time{100000})
		split := run([]Time{25000, 50000, 75000, 100000})
		if len(single) != len(split) {
			t.Fatalf("iter %d: single fired %d, split fired %d", iter, len(single), len(split))
		}
		for i := range single {
			if single[i] != split[i] {
				t.Fatalf("iter %d: event %d differs: %v vs %v", iter, i, single[i], split[i])
			}
		}
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.At(20, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("Pending() after Run = %d, want 0", e.Pending())
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97)*Millisecond, func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineSteadyState measures the schedule-fire-recycle cycle the
// simulation actually runs in steady state: a handful of self-rescheduling
// events (V-Sync, pacers, tickers) firing forever. With the event free list
// this path allocates nothing; each iteration is one fired event.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine()
	for j := 0; j < 8; j++ {
		period := Time(j+1) * Millisecond
		var fn func()
		fn = func() { e.After(period, fn) }
		e.After(period, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// TestEngineSteadyStateZeroAlloc pins the event pool's contract: a warmed
// engine running schedule-fire-recycle cycles (the V-Sync / ticker shape)
// allocates nothing per event.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	var fn func()
	fn = func() { e.After(Millisecond, fn) }
	e.After(Millisecond, fn)
	for i := 0; i < 100; i++ { // warm the free list and heap storage
		e.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { e.Step() }); allocs != 0 {
		t.Errorf("steady-state Step allocates %.1f per event, want 0", allocs)
	}
}

// TestTickerSteadyStateZeroAlloc covers the Every path: recurring ticks
// must reuse the bound tick closure and pooled events.
func TestTickerSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Every(Millisecond, Millisecond, func() { n++ })
	for i := 0; i < 100; i++ {
		e.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { e.Step() }); allocs != 0 {
		t.Errorf("steady-state ticker allocates %.1f per tick, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
}
