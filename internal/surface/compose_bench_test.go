package surface

import (
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/sim"
)

// benchClient models the workload tile composition targets: the app
// redraws and damages its whole buffer every frame (the wasteful pattern
// §2 of the paper measures), but only a small region actually changes.
type benchClient struct {
	frame int
}

func (c *benchClient) Render(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int) {
	c.frame++
	x, y := (c.frame*32)%(buf.Width()-32), (c.frame*64)%(buf.Height()-32)
	buf.Fill(framebuffer.Rect{X0: x, Y0: y, X1: x + 32, Y1: y + 32}, framebuffer.Color(c.frame))
	return buf.Bounds(), buf.Width() * buf.Height() // over-reported damage: contract-legal
}

// BenchmarkTileCompose measures one V-Sync latch of a full-screen-damage
// frame with 32×32 pixels of real change, across the three composition
// strategies:
//
//   - direct: sole full-screen surface under ComposeTiles — the buffer is
//     scanned out in place, no copies at all;
//   - tiles: a sole but not full-screen surface — BlitTiled with the
//     generation skip, copying only the tiles that changed;
//   - naive: the brute-force oracle, blitting every damaged pixel.
func BenchmarkTileCompose(b *testing.B) {
	for _, bc := range []struct {
		name       string
		mode       ComposeMode
		fullScreen bool
	}{
		{"direct", ComposeTiles, true},
		{"tiles", ComposeTiles, false},
		{"naive", ComposeNaive, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m := NewManager(sim.NewEngine(), 720, 1280)
			m.SetComposeMode(bc.mode)
			frame := framebuffer.R(0, 0, 720, 1280)
			if !bc.fullScreen {
				frame.Y1 = 1248 // not full-screen: no direct scanout, sole-writer BlitTiled
			}
			s := m.NewSurfaceAt("app", 1, frame, &benchClient{})
			s.RequestFrame()
			m.VSync(0, 60) // first latch: full compose, engages scanout for "direct"
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.RequestFrame()
				m.VSync(sim.Time(i+1)*sim.Hz(60), 60)
			}
		})
	}
}

// TestComposeTiledZeroAlloc pins the steady-state allocation contract of
// tiled composition: after the first latch, a V-Sync — render callback,
// BlitTiled (or direct scanout), frame accounting — allocates nothing,
// in every composition mode.
func TestComposeTiledZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name       string
		mode       ComposeMode
		fullScreen bool
	}{
		{"direct", ComposeTiles, true},
		{"tiles", ComposeTiles, false},
		{"naive", ComposeNaive, true},
	} {
		m := NewManager(sim.NewEngine(), 720, 1280)
		m.SetComposeMode(tc.mode)
		frame := framebuffer.R(0, 0, 720, 1280)
		if !tc.fullScreen {
			frame.Y1 = 1248
		}
		s := m.NewSurfaceAt("app", 1, frame, &benchClient{})
		var i sim.Time
		latch := func() {
			i++
			s.RequestFrame()
			m.VSync(i*sim.Hz(60), 60)
		}
		for n := 0; n < 8; n++ { // settle scratch buffers and scanout
			latch()
		}
		if allocs := testing.AllocsPerRun(200, latch); allocs != 0 {
			t.Errorf("%s: steady-state V-Sync allocates %.1f per frame, want 0", tc.name, allocs)
		}
	}
}
