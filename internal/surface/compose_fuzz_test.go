package surface

import (
	"math/rand"
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/sim"
)

// fuzzClient is a deterministic contract-honoring Client: every paint op
// it performs is covered by the damage it reports, and a frame reported
// as redundant (empty damage) paints nothing. Two instances built from
// the same seed draw identical sequences, so a tile-mode and a
// naive-mode manager given the same stimulus render identical content.
type fuzzClient struct {
	rng *rand.Rand
	aux *framebuffer.Buffer // blit source, never mutated
}

func newFuzzClient(seed int64, w, h int) *fuzzClient {
	rng := rand.New(rand.NewSource(seed))
	aux := framebuffer.New(w, h)
	pix := aux.Pix()
	for i := range pix {
		pix[i] = framebuffer.Color(rng.Uint32() & 0x00ffffff)
	}
	return &fuzzClient{rng: rng, aux: aux}
}

// clientRect draws a rect roughly within (sometimes beyond) w × h,
// including zero-area and inverted shapes — the mutators clamp.
func (c *fuzzClient) clientRect(w, h int) framebuffer.Rect {
	return framebuffer.Rect{
		X0: c.rng.Intn(w+20) - 10,
		Y0: c.rng.Intn(h+20) - 10,
		X1: c.rng.Intn(w+20) - 10,
		Y1: c.rng.Intn(h+20) - 10,
	}
}

func (c *fuzzClient) Render(t sim.Time, buf *framebuffer.Buffer) (framebuffer.Rect, int) {
	w, h := buf.Width(), buf.Height()
	if c.rng.Intn(5) == 0 {
		// Redundant frame: the app re-rendered identical pixels. No
		// mutation, empty damage, but the render cost is still paid.
		return framebuffer.Rect{}, w * h
	}
	var damage framebuffer.Rect
	for n := c.rng.Intn(3) + 1; n > 0; n-- {
		var r framebuffer.Rect
		switch c.rng.Intn(4) {
		case 0:
			r = c.clientRect(w, h)
			buf.Fill(r, framebuffer.Color(c.rng.Uint32()&0x00ffffff))
			r = r.Clamp(buf.Bounds())
		case 1:
			x, y := c.rng.Intn(w), c.rng.Intn(h)
			buf.Set(x, y, framebuffer.Color(c.rng.Uint32()&0x00ffffff))
			r = framebuffer.Rect{X0: x, Y0: y, X1: x + 1, Y1: y + 1}
		case 2:
			// ScrollVert returns the vacated repaint rect; the honest
			// damage is the whole scrolled region.
			r = c.clientRect(w, h)
			buf.ScrollVert(r, c.rng.Intn(2*h+1)-h)
			r = r.Clamp(buf.Bounds())
		default:
			sw, sh := c.aux.Width(), c.aux.Height()
			sr := c.clientRect(sw, sh).Clamp(c.aux.Bounds())
			dx, dy := c.rng.Intn(w+10)-5, c.rng.Intn(h+10)-5
			buf.Blit(c.aux, sr, dx, dy)
			r = framebuffer.Rect{X0: dx, Y0: dy, X1: dx + sr.Dx(), Y1: dy + sr.Dy()}.Clamp(buf.Bounds())
		}
		if r.Empty() {
			continue
		}
		if damage.Empty() {
			damage = r
		} else {
			if r.X0 < damage.X0 {
				damage.X0 = r.X0
			}
			if r.Y0 < damage.Y0 {
				damage.Y0 = r.Y0
			}
			if r.X1 > damage.X1 {
				damage.X1 = r.X1
			}
			if r.Y1 > damage.Y1 {
				damage.Y1 = r.Y1
			}
		}
	}
	return damage, w * h
}

// FuzzTileCompose is the compositor differential fuzzer: the same
// surface stimulus — frame requests, V-Syncs, a mid-run second surface —
// drives a ComposeTiles manager and a ComposeNaive manager in lockstep.
// The visible framebuffer bytes and the FrameInfo stream (sequence,
// timing, dirty-pixel and render accounting) must stay byte-identical
// whatever the fuzzer finds: tile skips, direct scanout and its
// demotion are pure optimizations.
func FuzzTileCompose(f *testing.F) {
	f.Add(int64(1), []byte{0, 5, 0, 5, 0, 5}, uint8(64), uint8(64))
	f.Add(int64(2), []byte{0, 0, 5, 4, 0, 3, 5, 5, 0, 5}, uint8(33), uint8(47))
	f.Add(int64(3), []byte{5, 0, 5, 0, 4, 5, 3, 5, 0, 3, 5, 0, 5}, uint8(96), uint8(40))
	f.Add(int64(4), []byte{0, 5, 4, 5, 0, 5}, uint8(32), uint8(32))
	f.Add(int64(5), []byte{0, 5, 5, 5, 0, 5, 0, 5, 0, 5, 0, 5}, uint8(80), uint8(130))

	f.Fuzz(func(t *testing.T, seed int64, ops []byte, w8, h8 uint8) {
		w := int(w8%100) + 16 // 16..115: mixes tile-aligned and partial-edge screens
		h := int(h8%120) + 16
		if len(ops) > 256 {
			ops = ops[:256]
		}

		mgrT := NewManager(sim.NewEngine(), w, h)
		mgrT.SetComposeMode(ComposeTiles)
		mgrN := NewManager(sim.NewEngine(), w, h)

		sT := mgrT.NewSurface("app", 1, newFuzzClient(seed, w, h))
		sN := mgrN.NewSurface("app", 1, newFuzzClient(seed, w, h))

		var infosT, infosN []FrameInfo
		mgrT.OnFrame(func(fi FrameInfo) { infosT = append(infosT, fi) })
		mgrN.OnFrame(func(fi FrameInfo) { infosN = append(infosN, fi) })

		var barT, barN *Surface // second surface, registered mid-run
		var vsyncs sim.Time
		for step, op := range ops {
			switch op % 8 {
			case 0, 1:
				sT.RequestFrame()
				sN.RequestFrame()
			case 2:
				if barT != nil {
					barT.RequestFrame()
					barN.RequestFrame()
				}
			case 3:
				sT.RequestFrame()
				sN.RequestFrame()
				if barT != nil {
					barT.RequestFrame()
					barN.RequestFrame()
				}
			case 4:
				if barT == nil {
					// A status-bar-like surface at a deliberately
					// tile-misaligned position; registering it demotes
					// direct scanout mid-run.
					fr := framebuffer.Rect{X0: 1, Y0: 1, X1: (w+1)/2 + 1, Y1: (h+1)/2 + 1}
					barT = mgrT.NewSurfaceAt("bar", 2, fr, newFuzzClient(seed^0x5bd1e995, fr.Dx(), fr.Dy()))
					barN = mgrN.NewSurfaceAt("bar", 2, fr, newFuzzClient(seed^0x5bd1e995, fr.Dx(), fr.Dy()))
				}
			default:
				vsyncs++
				tNow := vsyncs * sim.Hz(60)
				mgrT.VSync(tNow, 60)
				mgrN.VSync(tNow, 60)
				if !mgrT.Framebuffer().Equal(mgrN.Framebuffer()) {
					t.Fatalf("step %d (%dx%d): tile framebuffer diverges from naive (scanout=%v)",
						step, w, h, mgrT.DirectScanout())
				}
			}
		}
		if len(infosT) != len(infosN) {
			t.Fatalf("frame count: tiles latched %d, naive %d", len(infosT), len(infosN))
		}
		for i := range infosT {
			if infosT[i] != infosN[i] {
				t.Fatalf("frame %d: tiles %+v, naive %+v", i, infosT[i], infosN[i])
			}
		}
		if mgrT.Frames() != mgrN.Frames() {
			t.Fatalf("Frames(): tiles %d, naive %d", mgrT.Frames(), mgrN.Frames())
		}
	})
}
