package surface

import (
	"testing"

	"ccdem/internal/framebuffer"
	"ccdem/internal/sim"
)

// FuzzPaletteCompose is the palette-layer compositor differential fuzzer:
// the same surface stimulus — frame requests, V-Syncs, a mid-run second
// surface, session resets that recycle pooled buffers — drives a
// ComposeTiles manager with palette compression enabled and one with it
// disabled (the -no-palette oracle) in lockstep. The visible framebuffer
// bytes and the FrameInfo stream (sequence, timing, dirty-pixel and
// render accounting) must stay byte-identical whatever the fuzzer finds:
// palette planes, promotion to raw, nibble-kernel blits and compares, and
// buffer recycling are pure representation changes.
func FuzzPaletteCompose(f *testing.F) {
	f.Add(int64(1), []byte{0, 5, 0, 5, 0, 5}, uint8(64), uint8(64))
	f.Add(int64(2), []byte{0, 0, 5, 4, 0, 3, 5, 5, 0, 5}, uint8(33), uint8(47))
	f.Add(int64(3), []byte{5, 0, 5, 0, 4, 5, 3, 5, 0, 3, 5, 0, 5}, uint8(96), uint8(40))
	f.Add(int64(4), []byte{0, 5, 4, 5, 6, 0, 5, 0, 5}, uint8(32), uint8(32))
	f.Add(int64(5), []byte{0, 5, 5, 5, 6, 0, 5, 4, 0, 5, 6, 0, 5}, uint8(80), uint8(130))

	f.Fuzz(func(t *testing.T, seed int64, ops []byte, w8, h8 uint8) {
		w := int(w8%100) + 16 // 16..115: mixes tile-aligned and partial-edge screens
		h := int(h8%120) + 16
		if len(ops) > 256 {
			ops = ops[:256]
		}

		mgrP := NewManager(sim.NewEngine(), w, h)
		mgrP.SetComposeMode(ComposeTiles)
		mgrP.SetPalettes(true)
		mgrO := NewManager(sim.NewEngine(), w, h)
		mgrO.SetComposeMode(ComposeTiles)

		// Client seeds are derived per session so both managers always
		// see identical draw sequences, including across resets.
		session := seed
		sP := mgrP.NewSurface("app", 1, newFuzzClient(session, w, h))
		sO := mgrO.NewSurface("app", 1, newFuzzClient(session, w, h))

		var infosP, infosO []FrameInfo
		mgrP.OnFrame(func(fi FrameInfo) { infosP = append(infosP, fi) })
		mgrO.OnFrame(func(fi FrameInfo) { infosO = append(infosO, fi) })

		var barP, barO *Surface // second surface, registered mid-run
		var vsyncs sim.Time
		for step, op := range ops {
			switch op % 8 {
			case 0, 1:
				sP.RequestFrame()
				sO.RequestFrame()
			case 2:
				if barP != nil {
					barP.RequestFrame()
					barO.RequestFrame()
				}
			case 3:
				sP.RequestFrame()
				sO.RequestFrame()
				if barP != nil {
					barP.RequestFrame()
					barO.RequestFrame()
				}
			case 4:
				if barP == nil {
					// A status-bar-like surface at a deliberately
					// tile-misaligned position; registering it demotes
					// direct scanout mid-run.
					fr := framebuffer.Rect{X0: 1, Y0: 1, X1: (w+1)/2 + 1, Y1: (h+1)/2 + 1}
					barP = mgrP.NewSurfaceAt("bar", 2, fr, newFuzzClient(session^0x5bd1e995, fr.Dx(), fr.Dy()))
					barO = mgrO.NewSurfaceAt("bar", 2, fr, newFuzzClient(session^0x5bd1e995, fr.Dx(), fr.Dy()))
				}
			case 6:
				// Session reset: surfaces drop, pooled buffers recycle.
				// The palette session's recycled buffers carry palette
				// planes and copy-on-write views; Recycle must neutralize
				// that provenance so the next session stays in lockstep
				// with the oracle's fresh-looking buffers.
				mgrP.Reset()
				mgrO.Reset()
				barP, barO = nil, nil
				session = seed ^ int64(step+1)*0x9e3779b9
				sP = mgrP.NewSurface("app", 1, newFuzzClient(session, w, h))
				sO = mgrO.NewSurface("app", 1, newFuzzClient(session, w, h))
			default:
				vsyncs++
				tNow := vsyncs * sim.Hz(60)
				mgrP.VSync(tNow, 60)
				mgrO.VSync(tNow, 60)
				if !mgrP.Framebuffer().Equal(mgrO.Framebuffer()) {
					t.Fatalf("step %d (%dx%d): palette framebuffer diverges from no-palette oracle (scanout=%v, palTiles=%d)",
						step, w, h, mgrP.DirectScanout(), func() int { n, _ := mgrP.PaletteStats(); return n }())
				}
			}
		}
		if len(infosP) != len(infosO) {
			t.Fatalf("frame count: palettes latched %d, oracle %d", len(infosP), len(infosO))
		}
		for i := range infosP {
			if infosP[i] != infosO[i] {
				t.Fatalf("frame %d: palettes %+v, oracle %+v", i, infosP[i], infosO[i])
			}
		}
		if mgrP.Frames() != mgrO.Frames() {
			t.Fatalf("Frames(): palettes %d, oracle %d", mgrP.Frames(), mgrO.Frames())
		}
	})
}
